"""Fig 7: triple-buffering overlaps PCIe transfers with kernel execution.

Derives per-work-group (HtoD, compute, DtoH) durations from the benchmark
plan through the performance model, schedules them with 1..4 device buffer
sets, and prints the makespans and compute utilisation.  Triple buffering
(the paper's choice) must hide nearly all transfer time; single buffering
degenerates to the serial sum — exactly the contrast Fig 7 illustrates.
"""

import numpy as np
from _util import print_series

from repro.perfmodel.architectures import PASCAL
from repro.perfmodel.opcount import gridder_counts
from repro.perfmodel.roofline import attainable_ops
from repro.perfmodel.streams import schedule_buffers, serial_makespan


def _jobs_from_plan(plan, arch, n_groups=24):
    """(htod, compute, dtoh) per work group, from model rates."""
    counts = gridder_counts(plan)
    rate, _ = attainable_ops(arch, counts)
    compute_total = counts.ops / rate
    # input: visibilities + uvw; output: subgrids
    n = plan.subgrid_size
    bytes_in = counts.visibilities * 32 + counts.visibilities * 12 / plan.n_channels
    bytes_out = plan.n_subgrids * n * n * 32
    bw = arch.pcie_bandwidth_gbs * 1e9
    per_group = [
        (bytes_in / bw / n_groups, compute_total / n_groups, bytes_out / bw / n_groups)
    ] * n_groups
    return per_group


def test_fig07_triple_buffering(benchmark, bench_plan):
    jobs = _jobs_from_plan(bench_plan, PASCAL)
    schedule = benchmark(lambda: schedule_buffers(jobs, n_buffers=3))

    serial = serial_makespan(jobs)
    rows = []
    for buffers in (1, 2, 3, 4):
        s = schedule_buffers(jobs, n_buffers=buffers)
        rows.append(
            (buffers, s.makespan * 1e3, serial / s.makespan,
             100 * s.compute_utilisation())
        )
    print_series(
        "Fig 7: stream scheduling on PASCAL (gridder work groups)",
        ["buffers", "makespan ms", "speedup vs serial", "compute util %"],
        rows,
    )

    assert schedule.makespan < serial
    assert schedule.compute_utilisation() > 0.8
    # triple buffering at least matches double, and beats single clearly
    assert schedule_buffers(jobs, 3).makespan <= schedule_buffers(jobs, 2).makespan + 1e-12
    assert schedule_buffers(jobs, 3).makespan < 0.9 * schedule_buffers(jobs, 1).makespan
