"""Fig 11: roofline analysis with sine/cosine as first-class operations.

Prints, per architecture, the gridder and degridder roofline points —
operational intensity against device memory, the attainable performance,
the binding ceiling, and the fraction of peak — plus each architecture's
dashed rho = 17 sincos bound.  Pinned shapes: both kernels compute-bound
everywhere; PASCAL near peak (74% / 55%); HASWELL and FIJI at their sincos
ceilings.
"""

from _util import print_series

from repro.perfmodel.architectures import ALL_ARCHITECTURES, PASCAL
from repro.perfmodel.opcount import degridder_counts, gridder_counts
from repro.perfmodel.roofline import attainable_ops, device_roofline_point
from repro.perfmodel.sincos import sincos_bound_ops


def test_fig11_roofline(benchmark, bench_plan):
    gc = gridder_counts(bench_plan)
    dc = degridder_counts(bench_plan)

    def build():
        return [
            (arch, counts, device_roofline_point(arch, counts))
            for arch in ALL_ARCHITECTURES
            for counts in (gc, dc)
        ]

    points = benchmark(build)
    rows = []
    for arch, counts, pt in points:
        rows.append(
            (
                arch.name,
                pt.kernel,
                pt.intensity,
                pt.performance_ops / 1e12,
                100 * pt.performance_ops / arch.peak_ops,
                pt.bound,
                sincos_bound_ops(arch) / 1e12,
            )
        )
    print_series(
        "Fig 11: device-memory roofline (op = +,-,*,sin,cos)",
        ["arch", "kernel", "ops/byte", "TOps/s", "% of peak", "bound",
         "rho=17 ceiling TOps/s"],
        rows,
    )

    for arch, counts, pt in points:
        assert pt.bound != "memory"  # compute bound on all architectures
    perf_g, _ = attainable_ops(PASCAL, gc)
    perf_d, _ = attainable_ops(PASCAL, dc)
    assert abs(perf_g / PASCAL.peak_ops - 0.74) < 0.06  # paper: 74%
    assert abs(perf_d / PASCAL.peak_ops - 0.55) < 0.06  # paper: 55%
