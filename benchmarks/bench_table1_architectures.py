"""Table I: the three architectures used in the comparison.

Regenerates the paper's hardware table from the architecture database (the
database *is* the table — this bench pins the published values and prints
them in the paper's layout).
"""

from _util import print_series

from repro.perfmodel.architectures import ALL_ARCHITECTURES, table1_rows


def test_table1(benchmark):
    rows = benchmark(table1_rows)
    print_series(
        "Table I: architectures",
        ["model", "type", "arch", "clock GHz", "#FPUs", "peak TFlops",
         "mem GB", "mem GB/s", "TDP W"],
        [
            (r["model"], r["type"], r["architecture"], r["clock (GHz)"],
             r["#FPUs"], r["peak (TFlops)"], r["mem size (GB)"],
             r["mem bw (GB/s)"], r["TDP (W)"])
            for r in rows
        ],
    )
    assert [r["model"] for r in rows] == [
        "Intel Xeon E5-2697v3", "AMD R9 Fury X", "NVIDIA GTX 1080",
    ]
    # core-config footnote consistency
    for arch in ALL_ARCHITECTURES:
        assert arch.n_fpus > 0
