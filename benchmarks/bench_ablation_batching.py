"""Ablation: visibility batching and SIMD channel alignment (Section V-B).

Two of the paper's CPU optimisation knobs:

* the T_B x C_B batch size ("the computation is performed in batches") —
  measured here as NumPy gridder throughput vs ``vis_batch``: too small and
  per-batch overhead dominates, too large and the phasor working set falls
  out of cache;
* the channel count vs SIMD width ("the vectorization works best when the
  number of channels is a multiple of the SIMD vector width ... wider
  vectors will not necessarily result in higher performance") — the lane
  efficiency model swept over C for 4/8/16-wide vectors.
"""

import numpy as np
from _util import print_series

from repro.core.gridder import grid_work_group
from repro.perfmodel.vectorization import (
    best_simd_width,
    simd_channel_efficiency,
)

BATCHES = [32, 128, 512, 2048]


def test_ablation_vis_batch(benchmark, bench_plan, bench_obs, bench_vis, bench_idg):
    stop = min(12, bench_plan.n_subgrids)
    n_vis = sum(bench_plan.work_item(i).n_visibilities for i in range(stop))

    import time

    def sweep():
        rates = {}
        for batch in BATCHES:
            t0 = time.perf_counter()
            grid_work_group(
                bench_plan, 0, stop, bench_obs.uvw_m, bench_vis, bench_idg.taper,
                lmn=bench_idg.lmn, vis_batch=batch,
            )
            rates[batch] = n_vis / (time.perf_counter() - t0) / 1e6
        return rates

    rates = benchmark(sweep)
    print_series(
        "Ablation: gridder throughput vs vis_batch (measured, this host)",
        ["vis_batch", "MVis/s"],
        [(b, rates[b]) for b in BATCHES],
    )
    # batching matters: the best batch beats the worst measurably
    values = list(rates.values())
    assert max(values) > 1.1 * min(values)
    # and results are identical regardless of batch (correctness is tested
    # in tests/core; here we only pin that the knob is purely performance)


def test_ablation_simd_channel_alignment(benchmark):
    channels = list(range(4, 25))

    table = benchmark(
        lambda: {
            c: {w: simd_channel_efficiency(c, w) for w in (4, 8, 16)}
            for c in channels
        }
    )
    rows = [
        (c, table[c][4], table[c][8], table[c][16], best_simd_width(c))
        for c in channels
    ]
    print_series(
        "Ablation: SIMD lane efficiency vs channel count (Section V-B)",
        ["channels", "width 4", "width 8", "width 16", "best width"],
        rows,
    )
    # the paper's benchmark has 16 channels: every width is fully efficient,
    # widest wins
    assert table[16] == {4: 1.0, 8: 1.0, 16: 1.0}
    assert best_simd_width(16) == 16
    # but e.g. 12 channels favour narrower vectors
    assert best_simd_width(12) == 4
    assert table[12][16] < table[12][4]
    # efficiency dips right after each multiple of the width
    assert table[17][16] < 0.6
