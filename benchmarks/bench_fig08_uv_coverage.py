"""Fig 8: the (u, v)-plane of the benchmark data set.

The paper shows the uv coverage of the SKA1-low set: a dense centre (core
baselines) with elliptical tracks reaching the grid edge.  This bench
rasterises the coverage onto the master grid and prints the radial fill
profile — dense centre, sparse long-baseline tail — plus an ASCII thumbnail
of the plane.
"""

import numpy as np
from _util import print_series

from repro.constants import SPEED_OF_LIGHT


def _coverage_histogram(obs, gridspec, bins=8):
    scale = obs.frequencies_hz / SPEED_OF_LIGHT
    g = gridspec.grid_size
    pu = (obs.uvw_m[:, :, 0, None] * scale * gridspec.image_size + g // 2).ravel()
    pv = (obs.uvw_m[:, :, 1, None] * scale * gridspec.image_size + g // 2).ravel()
    occupied = np.zeros((g, g), dtype=bool)
    iu = np.clip(np.rint(pu).astype(int), 0, g - 1)
    iv = np.clip(np.rint(pv).astype(int), 0, g - 1)
    occupied[iv, iu] = True
    # radial fill fraction
    yy, xx = np.mgrid[0:g, 0:g]
    radius = np.hypot(xx - g // 2, yy - g // 2)
    edges = np.linspace(0, g // 2, bins + 1)
    rows = []
    for lo, hi in zip(edges, edges[1:]):
        annulus = (radius >= lo) & (radius < hi)
        rows.append((f"{int(lo)}-{int(hi)}", float(occupied[annulus].mean())))
    return occupied, rows


def test_fig08_uv_coverage(benchmark, bench_obs, bench_gridspec):
    occupied, rows = benchmark(
        lambda: _coverage_histogram(bench_obs, bench_gridspec)
    )
    print_series(
        "Fig 8: radial uv fill fraction (cells visited)",
        ["radius [cells]", "fill fraction"],
        rows,
    )
    # ASCII thumbnail, 32x32
    g = occupied.shape[0]
    step = g // 32
    thumb = occupied.reshape(32, step, 32, step).any(axis=(1, 3))
    print("\n  uv-plane thumbnail (# = sampled):")
    for line in thumb:
        print("  " + "".join("#" if c else "." for c in line))

    fills = [f for _, f in rows]
    # The Fig 8 *shape*: densest at the centre, an order of magnitude
    # sparser at the long-baseline edge.  (Absolute fill grows with the
    # time/baseline scale — the paper's full set is ~1500x larger; set
    # REPRO_BENCH_SCALE to push it up.)
    assert fills[0] == max(fills)
    assert fills[0] > 10 * fills[-1]
    assert all(f > 0 for f in fills)
