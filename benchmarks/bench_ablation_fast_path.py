"""Ablation: the channel phasor recurrence.

This package's own optimisation in the spirit of the paper's Section V-B
batch sincos precomputation: with evenly spaced channels, the phasor
factorises as ``exp(i s_0 A) * exp(i ds A)**c``, trading one sincos per
(pixel, visibility) for one sincos pair per (pixel, timestep) plus a
complex multiply per channel step — a ~C-fold cut in transcendental work.
On sincos-*limited* architectures (HASWELL, FIJI — the Fig 11 dashed
bounds) the model says this recovers most of the gap to the FMA peak; this
bench measures the real NumPy speedup and pins the accuracy.
"""

import time

import numpy as np
from _util import print_series

from repro.core.gridder import grid_work_group
from repro.perfmodel.architectures import FIJI, HASWELL
from repro.perfmodel.opcount import FMAS_PER_PIXEL_VIS
from repro.perfmodel.sincos import mixed_throughput_ops


def test_ablation_channel_recurrence(benchmark, bench_plan, bench_obs, bench_vis,
                                     bench_idg):
    stop = min(16, bench_plan.n_subgrids)
    n_vis = sum(bench_plan.work_item(i).n_visibilities for i in range(stop))

    def measure():
        results = {}
        grids = {}
        for name, fast in (("direct", False), ("recurrence", True)):
            t0 = time.perf_counter()
            grids[name] = grid_work_group(
                bench_plan, 0, stop, bench_obs.uvw_m, bench_vis, bench_idg.taper,
                lmn=bench_idg.lmn, channel_recurrence=fast,
            )
            results[name] = time.perf_counter() - t0
        scale = float(np.abs(grids["direct"]).max())
        results["max_diff"] = float(
            np.abs(grids["recurrence"] - grids["direct"]).max()
        ) / scale
        return results

    results = benchmark(measure)
    speedup = results["direct"] / results["recurrence"]
    rows = [
        ("direct", results["direct"], n_vis / results["direct"] / 1e6),
        ("recurrence", results["recurrence"], n_vis / results["recurrence"] / 1e6),
    ]
    print_series(
        "Ablation: channel phasor recurrence (measured gridder, this host)",
        ["variant", "seconds", "MVis/s"],
        rows,
    )
    # model-side: the equivalent rho change on sincos-limited architectures.
    c = bench_plan.n_channels
    rho_fast = FMAS_PER_PIXEL_VIS * c + 4.0 * (c - 1)  # FMAs per remaining sincos
    model_rows = []
    for arch in (HASWELL, FIJI):
        before = mixed_throughput_ops(arch, 17.0) / arch.peak_ops
        after = mixed_throughput_ops(arch, rho_fast) / arch.peak_ops
        model_rows.append((arch.name, before, after))
    print_series(
        "Model: peak fraction at the kernel mix, before/after recurrence",
        ["arch", "rho=17", f"rho={rho_fast:.0f}"],
        model_rows,
    )

    assert results["max_diff"] < 1e-5
    assert speedup > 2.0  # the measured win on this host
    # the model agrees the win is biggest for software-sincos architectures
    assert mixed_throughput_ops(HASWELL, rho_fast) > 2 * mixed_throughput_ops(
        HASWELL, 17.0
    )
