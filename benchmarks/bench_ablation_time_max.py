"""Ablation: the plan's T̃_max parameter (paper Section V-A).

"We might additionally require that T̃ <= T̃_max ... to limit the maximal
number of time steps that are associated with a single subgrid.  Such an
approach keeps the amount of computation to be performed for each subgrid
comparable, and the memory required for that computation limited."

The sweep shows the trade: small T̃_max multiplies the subgrid count (more
FFT/adder work and more per-pixel phasor evaluations per visibility),
large T̃_max amortises subgrids better but widens the spread of work-item
sizes (load imbalance) and each item's memory footprint.
"""

import numpy as np
from _util import print_series

from repro.core.plan import Plan
from repro.perfmodel.architectures import PASCAL
from repro.perfmodel.opcount import gridder_counts, subgrid_fft_counts
from repro.perfmodel.runtime import kernel_runtime

TIME_MAX = [8, 32, 128, 512]


def test_ablation_time_max(benchmark, bench_obs, bench_gridspec, bench_schedule):
    baselines = bench_obs.array.baselines()

    def sweep():
        plans = {}
        for tmax in TIME_MAX:
            plans[tmax] = Plan.create(
                bench_obs.uvw_m, bench_obs.frequencies_hz, baselines,
                bench_gridspec, subgrid_size=24, kernel_support=8,
                time_max=tmax, aterm_schedule=bench_schedule,
            )
        return plans

    plans = benchmark(sweep)
    rows = []
    for tmax, plan in plans.items():
        st = plan.statistics
        sizes = np.array([item.n_visibilities for item in plan], dtype=float)
        imbalance = sizes.max() / sizes.mean() if sizes.size else 0.0
        gridder_s = kernel_runtime(PASCAL, gridder_counts(plan)).seconds
        fft_s = kernel_runtime(PASCAL, subgrid_fft_counts(plan)).seconds
        rows.append(
            (tmax, st.n_subgrids, st.mean_visibilities_per_subgrid,
             imbalance, gridder_s * 1e3, fft_s * 1e3)
        )
    print_series(
        "Ablation: plan T_max (subgrid count vs balance vs kernel time)",
        ["T_max", "subgrids", "vis/subgrid", "max/mean item size",
         "gridder ms (PASCAL)", "fft ms"],
        rows,
    )

    stats = {tmax: plan.statistics for tmax, plan in plans.items()}
    # smaller T_max -> strictly more subgrids
    counts = [stats[t].n_subgrids for t in TIME_MAX]
    assert counts == sorted(counts, reverse=True)
    # more subgrids -> more per-visibility gridder work (lower occupancy)
    occ = [stats[t].mean_visibilities_per_subgrid for t in TIME_MAX]
    assert occ == sorted(occ)
    # all plans cover the same visibilities
    covered = {stats[t].n_visibilities_gridded for t in TIME_MAX}
    assert len(covered) == 1
    # the A-term cadence caps the useful T_max: 512 cannot beat 256-limited
    assert all(item.n_times <= 256 for item in plans[512])
