"""Out-of-core gridding: a dataset ~4x the memory budget, flat RSS.

Three subprocess children (each reports one JSON line on stdout; a fresh
process per pass because ``ru_maxrss`` is a process-lifetime high-water
mark that one pass must not inherit from another):

``gen``
    Synthesises the benchmark dataset chunk-at-a-time through
    :class:`repro.data.store.DatasetWriter` — visibility bytes are sized to
    ``OVERSUBSCRIPTION`` x the RSS budget, so the dataset can never fit the
    budget in memory.
``grid-chunked``
    Opens the store read-only and grids through ``store.source()`` on the
    streaming executor: the reader stage prefetches work-group-aligned
    slices from the memory map under the credit gate, retired groups'
    pages are returned with ``madvise(MADV_DONTNEED)``.  **The acceptance
    gates live here**: peak RSS below ``RSS_BUDGET_BYTES`` while gridding
    >= 4x that many visibility bytes, bit-identical grid (sha256) to the
    in-memory pass, and throughput >= ``THROUGHPUT_GATE`` of in-memory.
``grid-inmem``
    The same plan and executor fed a fully materialised ndarray — the
    throughput and correctness baseline.

Writes ``benchmarks/results/BENCH_outofcore.json`` (the CI out-of-core job
asserts the gates from this payload) next to the usual ASCII table.
"""

import hashlib
import json
import math
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import time

import numpy as np

#: Peak-RSS budget for the chunked pass.  Sized well above the interpreter
#: + planning floor (~150 MB here: numpy/scipy, the uvw map, the per-sample
#: flag table and the work-item rows) and well below the dataset.
RSS_BUDGET_BYTES = 256 << 20
#: Visibility payload as a multiple of the budget (the gate requires >= 4).
OVERSUBSCRIPTION = 4.25
#: Chunked throughput must stay within 10% of the in-memory pass.
THROUGHPUT_GATE = 0.9

STATIONS = 12  # 66 baselines
CHANNELS = 16
TIME_CHUNK = 512
GRID_SIZE = 512
SUBGRID = 16
SUPPORT = 4
TIME_MAX = 16
GROUP_SIZE = 64
SEED = 9

_N_BASELINES = STATIONS * (STATIONS - 1) // 2
_BYTES_PER_STEP = _N_BASELINES * CHANNELS * 32  # complex64 2x2 per sample
N_TIMES = (
    math.ceil(OVERSUBSCRIPTION * RSS_BUDGET_BYTES / _BYTES_PER_STEP / TIME_CHUNK)
    * TIME_CHUNK
)


def _observation():
    from repro.telescope.observation import ska1_low_observation

    return ska1_low_observation(
        n_stations=STATIONS, n_times=N_TIMES, n_channels=CHANNELS,
        integration_time_s=2.0, max_radius_m=2000.0, seed=SEED,
    )


def _engine():
    from repro.core.pipeline import IDG, IDGConfig
    from repro.runtime import RuntimeConfig, StreamingIDG

    obs = _observation()
    idg = IDG(
        obs.fitting_gridspec(GRID_SIZE),
        IDGConfig(subgrid_size=SUBGRID, kernel_support=SUPPORT,
                  time_max=TIME_MAX, work_group_size=GROUP_SIZE),
    )
    return obs, StreamingIDG(idg, RuntimeConfig(n_buffers=2))


# ----------------------------------------------------------------- children


def _child_gen(root: str) -> dict:
    from repro.data.store import DatasetWriter
    from repro.telescope.uvw import enu_to_equatorial, synthesize_uvw

    obs = _observation()
    bvec = enu_to_equatorial(
        obs.array.baseline_vectors_enu(), obs.array.latitude_rad
    )
    rng = np.random.default_rng(SEED)
    t0 = time.perf_counter()
    with DatasetWriter(
        root, n_baselines=obs.n_baselines, n_times=N_TIMES,
        n_channels=CHANNELS,
    ) as writer:
        writer.set_frequencies(obs.frequencies_hz)
        writer.set_baselines(obs.array.baselines())
        for start in range(0, N_TIMES, TIME_CHUNK):
            n = min(TIME_CHUNK, N_TIMES - start)
            uvw = synthesize_uvw(
                bvec, obs.hour_angles_rad[start:start + n],
                obs.declination_rad,
            )
            shape = (obs.n_baselines, n, CHANNELS, 2, 2)
            vis = rng.standard_normal(shape, dtype=np.float32) + 1j * (
                rng.standard_normal(shape, dtype=np.float32)
            )
            writer.write_times(start, uvw, vis)
        store = writer.finalize()
    return {
        "wall_s": time.perf_counter() - t0,
        "visibility_bytes": store.visibility_nbytes,
        "n_visibilities": store.n_visibilities,
        "peak_rss_bytes": _peak_rss(),
    }


def _grid_child(root: str, chunked: bool) -> dict:
    from repro.data.store import open_store

    obs, engine = _engine()
    store = open_store(root)
    plan = engine.idg.make_plan(
        store.uvw_m, store.frequencies_hz, store.baselines
    )
    n_vis = int(plan.statistics.n_visibilities_gridded)
    vis = store.source() if chunked else store.source().materialize()
    t0 = time.perf_counter()
    grid = engine.grid(plan, store.uvw_m, vis)
    wall = time.perf_counter() - t0
    tm = engine.last_telemetry
    rss_series = [
        e["args"]["value"]
        for e in tm.chrome_trace()["traceEvents"]
        if e.get("ph") == "C" and e["name"] == "rss_bytes"
    ]
    return {
        "wall_s": wall,
        "mvis_per_s": n_vis / wall / 1e6,
        "n_visibilities": n_vis,
        "grid_sha256": hashlib.sha256(np.ascontiguousarray(grid)).hexdigest(),
        "peak_rss_bytes": _peak_rss(),
        "n_reader_spans": len(tm.spans("reader")),
        "rss_gauge_min": min(rss_series, default=None),
        "rss_gauge_max": max(rss_series, default=None),
    }


def _peak_rss() -> int:
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _run_child(mode: str, root: str) -> dict:
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), mode, root],
        capture_output=True, text=True, env=os.environ.copy(), check=False,
    )
    assert proc.returncode == 0, (
        f"{mode} child failed:\n{proc.stdout}\n{proc.stderr}"
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


# ------------------------------------------------------------------- parent


def test_bench_outofcore():
    from _util import RESULTS_DIR, print_series

    workdir = tempfile.mkdtemp(prefix="bench-outofcore-")
    root = os.path.join(workdir, "dataset.store")
    try:
        gen = _run_child("gen", root)
        chunked = _run_child("grid-chunked", root)
        inmem = _run_child("grid-inmem", root)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    oversub = gen["visibility_bytes"] / RSS_BUDGET_BYTES
    ratio = chunked["mvis_per_s"] / inmem["mvis_per_s"]
    payload = {
        "benchmark": "outofcore",
        "generated_by": "benchmarks/bench_outofcore.py",
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "rss_budget_bytes": RSS_BUDGET_BYTES,
            "oversubscription_target": OVERSUBSCRIPTION,
            "throughput_gate": THROUGHPUT_GATE,
            "n_baselines": _N_BASELINES,
            "n_times": N_TIMES,
            "n_channels": CHANNELS,
            "time_chunk": TIME_CHUNK,
            "grid_size": GRID_SIZE,
            "subgrid_size": SUBGRID,
            "work_group_size": GROUP_SIZE,
            "executor": "streaming (n_buffers=2)",
        },
        "gen": gen,
        "chunked": chunked,
        "inmem": inmem,
        "oversubscription": oversub,
        "throughput_ratio": ratio,
        "gates": {
            "dataset_over_4x_budget": oversub >= 4.0,
            "chunked_peak_under_budget":
                chunked["peak_rss_bytes"] < RSS_BUDGET_BYTES,
            "bit_identical": chunked["grid_sha256"] == inmem["grid_sha256"],
            "throughput_within_10pct": ratio >= THROUGHPUT_GATE,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_outofcore.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    print_series(
        "Out-of-core gridding: chunked store vs in-memory (streaming)",
        ["pass", "wall s", "MVis/s", "peak RSS MB", "vs budget"],
        [
            ("chunked", chunked["wall_s"], chunked["mvis_per_s"],
             chunked["peak_rss_bytes"] / 2**20,
             f"{chunked['peak_rss_bytes'] / RSS_BUDGET_BYTES:.2f}x"),
            ("in-memory", inmem["wall_s"], inmem["mvis_per_s"],
             inmem["peak_rss_bytes"] / 2**20,
             f"{inmem['peak_rss_bytes'] / RSS_BUDGET_BYTES:.2f}x"),
        ],
    )
    print(f"dataset: {gen['visibility_bytes'] / 2**30:.2f} GiB of "
          f"visibilities = {oversub:.2f}x the {RSS_BUDGET_BYTES >> 20} MB "
          f"budget; throughput ratio {ratio:.3f}")

    # Acceptance gates (also re-asserted from the JSON by the CI job).
    assert oversub >= 4.0, f"dataset only {oversub:.2f}x the budget"
    assert chunked["n_reader_spans"] > 0, "reader stage never ran"
    assert chunked["peak_rss_bytes"] < RSS_BUDGET_BYTES, (
        f"chunked peak RSS {chunked['peak_rss_bytes'] / 2**20:.0f} MB "
        f"exceeds the {RSS_BUDGET_BYTES >> 20} MB budget"
    )
    assert chunked["grid_sha256"] == inmem["grid_sha256"], (
        "chunked grid differs from the in-memory grid"
    )
    assert ratio >= THROUGHPUT_GATE, (
        f"chunked throughput {ratio:.2f}x in-memory, below the "
        f"{THROUGHPUT_GATE}x gate"
    )
    # The in-memory pass really did hold the dataset resident — i.e. the
    # chunked pass's bound is meaningful, not just a small workload.
    assert inmem["peak_rss_bytes"] > gen["visibility_bytes"]


if __name__ == "__main__":
    mode, store_root = sys.argv[1], sys.argv[2]
    if mode == "gen":
        result = _child_gen(store_root)
    elif mode == "grid-chunked":
        result = _grid_child(store_root, chunked=True)
    elif mode == "grid-inmem":
        result = _grid_child(store_root, chunked=False)
    else:  # pragma: no cover - driver misuse
        raise SystemExit(f"unknown mode {mode!r}")
    print(json.dumps(result))
