"""idgsan disabled-mode overhead on the streaming runtime, machine-readable.

The sanitizer's contract is that it costs nothing unless installed: importing
:mod:`repro.analysis.sanitizer` patches no runtime class, and the conftest
hook (``maybe_install_from_env``) is a no-op without ``IDG_SANITIZE``.  This
bench turns that claim into a gate by gridding the same bench plan in three
modes:

``baseline``
    The sanitizer module is imported (as it is in every test run via
    conftest) but never installed — the production path.
``disabled``
    ``maybe_install_from_env()`` has been called with the gate off, exactly
    what ``conftest.py`` does on a plain ``pytest`` run.  The acceptance gate
    asserts this stays within 1% of baseline makespan — same classes, same
    methods, zero wrappers.
``enabled``
    A live :func:`~repro.analysis.sanitizer.sanitized` context: tracked
    condition variables, Eraser write checks and the deadlock watchdog all
    on.  Reported for information only (the dynamic half is a debugging
    tool, not a production mode) and asserted to produce zero reports on
    the clean pipeline.

Writes ``benchmarks/results/BENCH_sanitizer.json``.  The CI ``sanitizer``
job asserts the overhead gate from this payload.
"""

import json
import os
import platform

import numpy as np

from _util import RESULTS_DIR, print_series

from repro.analysis import sanitizer
from repro.runtime import RuntimeConfig, StreamingIDG

GROUP_SIZE = 32
N_BUFFERS = 3
#: Repeats per mode (round-robin, best-of); the gate uses the best.
REPEATS = 3
#: Acceptance: the never-installed sanitizer must cost <= 1% makespan.
OVERHEAD_GATE = 1.01


def test_bench_sanitizer_overhead(bench_plan, bench_obs, bench_vis, bench_idg):
    engine_cfg = bench_idg.with_config(work_group_size=GROUP_SIZE)

    def run_once():
        engine = StreamingIDG(engine_cfg, RuntimeConfig(n_buffers=N_BUFFERS))
        grid = engine.grid(bench_plan, bench_obs.uvw_m, bench_vis)
        return grid, engine.last_telemetry.makespan()

    def measure_baseline():
        assert sanitizer.current() is None, "sanitizer already installed"
        return run_once()

    def measure_disabled():
        # exactly the conftest path on a plain (non-IDG_SANITIZE) run
        forced_before = sanitizer._forced
        sanitizer.enable_sanitizer(False)
        try:
            assert sanitizer.maybe_install_from_env() is None
        finally:
            sanitizer._forced = forced_before
        return run_once()

    def measure_enabled():
        with sanitizer.sanitized() as san:
            grid, span = run_once()
            san.raise_if_reports()  # the clean pipeline must stay clean
        return grid, span

    modes = {
        "baseline": measure_baseline,
        "disabled": measure_disabled,
        "enabled": measure_enabled,
    }

    run_once()  # warm up BLAS/FFT
    samples = {name: [] for name in modes}
    grids = {}
    for _ in range(REPEATS):
        for name, measure in modes.items():
            grid, span = measure()
            samples[name].append(span)
            grids[name] = grid

    best = {name: min(vals) for name, vals in samples.items()}
    overhead = {name: best[name] / best["baseline"] for name in modes}

    # All three modes execute the identical kernel sequence.
    assert np.array_equal(grids["disabled"], grids["baseline"])
    assert np.array_equal(grids["enabled"], grids["baseline"])

    payload = {
        "benchmark": "sanitizer_overhead",
        "generated_by": "benchmarks/bench_sanitizer_overhead.py",
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "work_group_size": GROUP_SIZE,
            "n_buffers": N_BUFFERS,
            "repeats": REPEATS,
            "n_subgrids": int(bench_plan.n_subgrids),
            "overhead_gate": OVERHEAD_GATE,
        },
        "modes": {
            name: {
                "makespan_best_s": best[name],
                "makespan_all_s": samples[name],
                "overhead_vs_baseline": overhead[name],
            }
            for name in modes
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_sanitizer.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    print_series(
        "idgsan: streaming makespan overhead by sanitizer mode",
        ["mode", "best ms", "overhead"],
        [(name, best[name] * 1e3, overhead[name]) for name in modes],
    )

    # Acceptance gate: not installing the sanitizer must cost nothing
    # measurable — the module import and the env probe are the entire
    # disabled-mode surface.
    assert overhead["disabled"] <= OVERHEAD_GATE, (
        f"disabled-mode sanitizer costs {100 * (overhead['disabled'] - 1):.2f}% "
        f"(gate: {100 * (OVERHEAD_GATE - 1):.0f}%)"
    )
