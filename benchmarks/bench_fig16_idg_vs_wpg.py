"""Fig 16: IDG versus W-projection gridding as a function of N_W.

Model layer, on PASCAL.  WPG costs ``4 * N_W**2`` complex MACs per
visibility plus the per-cell kernel load and atomic grid update — the
traffic that saturates it even at small supports — so its throughput falls
roughly quadratically with N_W.  IDG's per-visibility cost depends on its
*subgrid* size, which must cover the required support (Section IV): the
sweep therefore shows both the fixed practical configuration (N = 24, the
paper's benchmark) and IDG sized to the support (N = max(24, N_W)).  Pinned
shapes: IDG(24) beats WPG across the practical range N_W <= 24
("IDG outperforms WPG significantly" for small kernels) and support-matched
IDG stays ahead-or-comparable at large N_W, all without storing any kernels.

Measured layer: the same sweep with this package's actual NumPy gridders.
"""

import time

from _util import print_series

from repro.baselines.wprojection import WProjectionGridder
from repro.core.gridder import grid_work_group
from repro.perfmodel.architectures import PASCAL
from repro.perfmodel.opcount import (
    gridder_counts,
    idg_synthetic_counts,
    wprojection_counts,
)
from repro.perfmodel.runtime import throughput_mvis

SUPPORTS = [4, 8, 16, 24, 32, 48, 64]


def test_fig16_modelled_sweep(benchmark, bench_plan):
    plan_counts = gridder_counts(bench_plan)
    n_vis = plan_counts.visibilities
    occupancy = plan_counts.visibilities / max(plan_counts.n_subgrids, 1)

    def build():
        idg24 = throughput_mvis(PASCAL, gridder_counts(bench_plan))
        rows = []
        for s in SUPPORTS:
            wpg = throughput_mvis(PASCAL, wprojection_counts(n_vis, s))
            matched = throughput_mvis(
                PASCAL,
                idg_synthetic_counts(n_vis, max(24, s), visibilities_per_subgrid=occupancy),
            )
            rows.append((s, wpg, idg24, matched))
        return rows

    rows = benchmark(build)
    print_series(
        "Fig 16: modelled throughput on PASCAL (MVis/s)",
        ["N_W", "WPG", "IDG (N=24)", "IDG (N=max(24, N_W))"],
        rows,
    )

    wpg = {s: w for s, w, _, _ in rows}
    idg24 = rows[0][2]
    matched = {s: m for s, _, _, m in rows}
    # WPG falls ~quadratically with support
    assert wpg[8] > 10 * wpg[32]
    # practical regime (the paper: "N_W <= 24 is more common"): IDG wins big
    for s in (8, 16, 24):
        assert idg24 > 2 * wpg[s]
    # large supports: even support-matched IDG stays ahead of WPG
    for s in (32, 48, 64):
        assert matched[s] > wpg[s]
    # and IDG's advantage comes with zero kernel storage (WPG's table for
    # N_W=64, x8 oversampling, is ~2 MB *per w-plane* — and AW-projection
    # would need one per station pair and A-term interval on top)
    from repro.kernels.convolution import OversampledKernel
    import numpy as np

    table = OversampledKernel(
        data=np.zeros((8, 8, 64, 64), dtype=np.complex64), support=64, oversample=8
    )
    assert table.nbytes > 2e6


def test_fig16_measured_python_sweep(benchmark, bench_plan, bench_obs, bench_vis,
                                     bench_idg):
    """Measured NumPy throughput: IDG vs WPG at a few supports."""
    stop = min(12, bench_plan.n_subgrids)
    n_vis_idg = sum(bench_plan.work_item(i).n_visibilities for i in range(stop))

    def idg_run():
        grid_work_group(
            bench_plan, 0, stop, bench_obs.uvw_m, bench_vis, bench_idg.taper,
            lmn=bench_idg.lmn,
        )

    benchmark(idg_run)
    idg_mvis = n_vis_idg / benchmark.stats["mean"] / 1e6

    uvw = bench_obs.uvw_m[:12]
    vis = bench_vis[:12]
    n_vis_wpg = uvw.shape[0] * uvw.shape[1] * bench_obs.n_channels
    rows = []
    for support in (8, 16, 24):
        wpg = WProjectionGridder(bench_idg.gridspec, support=support,
                                 oversample=8, n_w_planes=4)
        wpg.grid(uvw[:2], bench_obs.frequencies_hz, vis[:2])  # warm kernel cache
        t0 = time.perf_counter()
        wpg.grid(uvw, bench_obs.frequencies_hz, vis)
        elapsed = time.perf_counter() - t0
        rows.append((support, n_vis_wpg / elapsed / 1e6))
    rows.append(("IDG N=24", idg_mvis))
    print_series(
        "Fig 16 (measured on this host, NumPy substrate, MVis/s)",
        ["N_W", "MVis/s"],
        rows,
    )
    # the quadratic trend holds for the measured gridder too
    assert rows[0][1] > rows[2][1]
