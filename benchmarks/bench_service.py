"""Multi-tenant service throughput: coalesced vs uncoalesced, gated.

The same duplicate-heavy load (``N_TENANTS`` tenants x ``REQUESTS_PER_TENANT``
imaging requests drawn from ``N_DISTINCT`` distinct payloads on one shared
layout) runs twice through :func:`repro.service.run_load`: once with request
coalescing enabled and once with it disabled.  Both passes share nothing —
each constructs a fresh service with its own plan/A-term caches — so the
comparison isolates submit-time coalescing (single-flight execution with
result fan-out) from the artifact caches, which serve both passes equally.

Gates asserted here and re-checked by the CI ``service`` job from
``benchmarks/results/BENCH_service.json``:

* coalesced throughput >= ``SPEEDUP_GATE`` x uncoalesced on this load
  (the load's ideal is ``n_requests / n_distinct`` = 8x);
* the counter reconciliation identities hold *exactly* in both modes:
  every submit ends in exactly one terminal outcome, executed + coalesced
  + shed == submitted, and plan-cache hits + misses == executions.
"""

import json
import os
import platform

import numpy as np

from _util import RESULTS_DIR, print_series

from repro.core.pipeline import IDGConfig
from repro.service import LoadSpec, ServiceConfig, build_specs, run_load
from repro.telescope.observation import ska1_low_observation

N_TENANTS = 4
REQUESTS_PER_TENANT = 6
N_DISTINCT = 3
N_WORKERS = 2
GRID_SIZE = 256
#: Acceptance: coalescing duplicate requests must at least double
#: throughput (ideal on this load: 24/3 = 8x).
SPEEDUP_GATE = 2.0

IDG_CONFIG = IDGConfig(subgrid_size=16, kernel_support=4, time_max=16)


def _service_config(coalesce: bool) -> ServiceConfig:
    return ServiceConfig(
        n_workers=N_WORKERS,
        max_queue_depth=256,
        tenant_quota=2,
        coalesce=coalesce,
        idg=IDG_CONFIG,
    )


def _report_payload(report) -> dict:
    plans = report.caches["service.plans"]
    return {
        "requests_per_s": report.requests_per_s,
        "p95_latency_s": report.p95_latency_s,
        "mean_latency_s": report.mean_latency_s,
        "makespan_s": report.makespan_s,
        "statuses": report.statuses,
        "n_shed": report.n_shed,
        "counters": {
            key: value
            for key, value in sorted(report.counters.items())
            if key.startswith("jobs.")
        },
        "plan_cache": {
            "hits": plans.hits,
            "misses": plans.misses,
            "evictions": plans.evictions,
            "bytes": plans.current_bytes,
        },
        "reconciliation": report.reconciliation(),
    }


def test_bench_service():
    obs = ska1_low_observation(
        n_stations=10, n_times=32, n_channels=4,
        integration_time_s=240.0, max_radius_m=2000.0, seed=3,
    )
    gridspec = obs.fitting_gridspec(GRID_SIZE)
    baselines = obs.array.baselines()
    rng = np.random.default_rng(7)
    shape = (baselines.shape[0], obs.uvw_m.shape[1], 4, 2, 2)
    visibilities = (
        rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    ).astype(np.complex64)
    load = LoadSpec(
        n_tenants=N_TENANTS,
        requests_per_tenant=REQUESTS_PER_TENANT,
        n_distinct=N_DISTINCT,
    )
    specs = build_specs(
        load, obs.uvw_m, obs.frequencies_hz, baselines, gridspec,
        visibilities,
    )

    # Warm-up pass: JIT/BLAS/FFT setup and the module-level taper/lmn
    # caches, so neither measured pass pays first-touch costs.
    run_load(_service_config(coalesce=True), specs)

    coalesced = run_load(_service_config(coalesce=True), specs)
    uncoalesced = run_load(_service_config(coalesce=False), specs)

    # Every request completed in both modes (nothing shed at this depth).
    n_requests = load.n_requests
    assert coalesced.statuses == {"done": n_requests}, coalesced.statuses
    assert uncoalesced.statuses == {"done": n_requests}, uncoalesced.statuses

    # Exact counter reconciliation in both modes.
    for name, report in (("coalesced", coalesced), ("uncoalesced", uncoalesced)):
        recon = report.reconciliation()
        assert all(recon.values()), f"{name} reconciliation failed: {recon}"
        assert report.counters["jobs.submitted"] == n_requests

    # Coalescing collapsed the duplicates to one execution per distinct
    # payload; the uncoalesced pass executed everything.
    assert coalesced.counters["jobs.executed"] == N_DISTINCT
    assert coalesced.counters["jobs.coalesced"] == n_requests - N_DISTINCT
    assert uncoalesced.counters["jobs.executed"] == n_requests

    speedup = coalesced.requests_per_s / uncoalesced.requests_per_s

    payload = {
        "benchmark": "service",
        "generated_by": "benchmarks/bench_service.py",
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "n_tenants": N_TENANTS,
            "requests_per_tenant": REQUESTS_PER_TENANT,
            "n_distinct": N_DISTINCT,
            "n_workers": N_WORKERS,
            "grid_size": GRID_SIZE,
            "subgrid_size": IDG_CONFIG.subgrid_size,
            "speedup_gate": SPEEDUP_GATE,
        },
        "modes": {
            "coalesced": _report_payload(coalesced),
            "uncoalesced": _report_payload(uncoalesced),
        },
        "speedup": speedup,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_service.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    print_series(
        "Service: coalesced vs uncoalesced duplicate-heavy load",
        ["mode", "req/s", "p95 ms", "executed"],
        [
            ("coalesced", coalesced.requests_per_s,
             coalesced.p95_latency_s * 1e3,
             int(coalesced.counters["jobs.executed"])),
            ("uncoalesced", uncoalesced.requests_per_s,
             uncoalesced.p95_latency_s * 1e3,
             int(uncoalesced.counters["jobs.executed"])),
        ],
    )
    print(f"\ncoalescing speedup: {speedup:.2f}x (gate: {SPEEDUP_GATE}x)")

    assert speedup >= SPEEDUP_GATE, (
        f"coalescing speedup {speedup:.2f}x below the {SPEEDUP_GATE}x gate"
    )
