"""Fault-tolerance overhead and recovery cost, machine-readable.

Four configurations of :class:`repro.runtime.StreamingIDG` grid the same
bench plan:

``disabled``
    ``max_retries=0`` and no fault plan — the retry layer is never
    constructed and the hot loop is the plain streaming path.  This is the
    baseline the acceptance gate compares against.
``armed``
    ``max_retries=2`` with no faults firing — every stage call goes through
    the :class:`~repro.runtime.WorkGroupRunner`, so this is the *worst case*
    for the disabled path's overhead (the runner does strictly more work
    than the branch that skips it).  The gate asserts it stays within 2% of
    the baseline makespan.
``recovery``
    Two transient injected faults (``times=1``, zero backoff) — measures the
    cost of re-executing faulted work groups.
``checkpointed``
    Periodic atomic grid snapshots every other work group — measures the
    serialisation cost of checkpoint/resume.

Writes ``benchmarks/results/BENCH_fault_recovery.json`` with per-repeat
samples next to the usual ASCII table.  The CI fault-recovery smoke job
asserts the overhead gate from this payload.
"""

import json
import os
import platform

import numpy as np

from _util import RESULTS_DIR, print_series

from repro.runtime import FaultPlan, FaultSpec, RuntimeConfig, StreamingIDG

#: Work-group size for this bench: the bench plan's ~270 subgrids become
#: ~9 pipeline work groups.
GROUP_SIZE = 32
N_BUFFERS = 3
#: Repeats per mode (round-robin, best-of); the 2% gate uses the best.
REPEATS = 3
#: Acceptance: the armed-but-idle retry layer must cost <= 2% makespan.
OVERHEAD_GATE = 1.02


def _transient_faults():
    """A fresh fault plan per run — ``FaultPlan`` counts attempts, so a
    ``times=1`` fault only fires on the first run it is handed to."""
    return FaultPlan([
        FaultSpec(stage="gridder", group=2, times=1),
        FaultSpec(stage="subgrid_fft", group=5, times=1),
    ])


def test_bench_fault_recovery(bench_plan, bench_obs, bench_vis, bench_idg,
                              tmp_path):
    plain = bench_idg.with_config(work_group_size=GROUP_SIZE)
    tolerant = bench_idg.with_config(
        work_group_size=GROUP_SIZE, max_retries=2, retry_backoff_s=0.0,
    )
    ckpt = tmp_path / "bench.ckpt.npz"

    def run_disabled():
        return StreamingIDG(plain, RuntimeConfig(n_buffers=N_BUFFERS))

    def run_armed():
        return StreamingIDG(tolerant, RuntimeConfig(n_buffers=N_BUFFERS))

    def run_recovery():
        return StreamingIDG(tolerant, RuntimeConfig(n_buffers=N_BUFFERS),
                            faults=_transient_faults())

    def run_checkpointed():
        return StreamingIDG(plain, RuntimeConfig(
            n_buffers=N_BUFFERS, checkpoint_path=str(ckpt),
            checkpoint_interval=2,
        ))

    factories = {
        "disabled": run_disabled,
        "armed": run_armed,
        "recovery": run_recovery,
        "checkpointed": run_checkpointed,
    }

    def measure(factory):
        engine = factory()
        grid = engine.grid(bench_plan, bench_obs.uvw_m, bench_vis)
        return engine, grid, engine.last_telemetry.makespan()

    # Warm up BLAS/FFT once, then round-robin the modes so slow drift in the
    # host (thermal, page cache) hits every mode equally.
    measure(run_disabled)
    samples = {name: [] for name in factories}
    engines = {}
    grids = {}
    for _ in range(REPEATS):
        for name, factory in factories.items():
            engine, grid, span = measure(factory)
            samples[name].append(span)
            engines[name], grids[name] = engine, grid

    best = {name: min(vals) for name, vals in samples.items()}
    overhead = {
        name: best[name] / best["disabled"] for name in factories
    }

    # The armed run retires work groups in plan order exactly like the
    # disabled run, so a clean pass through the retry layer is bit-exact.
    assert np.array_equal(grids["armed"], grids["disabled"])
    report = engines["recovery"].last_fault_report
    assert report is not None and report.ok
    assert report.n_retries == 2
    np.testing.assert_allclose(grids["recovery"], grids["disabled"],
                               rtol=1e-12, atol=0.0)
    n_checkpoints = engines["checkpointed"].last_telemetry.counters["checkpoints"]
    assert n_checkpoints > 0 and ckpt.exists()

    payload = {
        "benchmark": "fault_recovery",
        "generated_by": "benchmarks/bench_fault_recovery.py",
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "work_group_size": GROUP_SIZE,
            "n_buffers": N_BUFFERS,
            "repeats": REPEATS,
            "max_retries": 2,
            "checkpoint_interval": 2,
            "n_subgrids": int(bench_plan.n_subgrids),
            "overhead_gate": OVERHEAD_GATE,
        },
        "modes": {
            name: {
                "makespan_best_s": best[name],
                "makespan_all_s": samples[name],
                "overhead_vs_disabled": overhead[name],
            }
            for name in factories
        },
        "recovery": {
            "n_retries": report.n_retries,
            "n_dead_letters": report.n_dead_letters,
        },
        "n_checkpoints": n_checkpoints,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_fault_recovery.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    print_series(
        "Fault tolerance: makespan overhead vs plain streaming",
        ["mode", "best ms", "overhead"],
        [(name, best[name] * 1e3, overhead[name]) for name in factories],
    )

    # Acceptance gate: even with the retry layer *armed* (strictly more work
    # than the disabled/PR-4 path, which never constructs it), the clean-run
    # makespan stays within 2% of baseline.
    assert overhead["armed"] <= OVERHEAD_GATE, (
        f"armed retry layer costs {100 * (overhead['armed'] - 1):.2f}% "
        f"(gate: {100 * (OVERHEAD_GATE - 1):.0f}%)"
    )
