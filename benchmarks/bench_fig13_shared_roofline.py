"""Fig 13: roofline against *shared memory* traffic.

The second roofline of the paper's analysis: with operational intensity
computed against bytes moved through GPU shared memory, the gridder and
degridder sit at (PASCAL) or near (FIJI) the shared-memory bandwidth bound —
which is what limits PASCAL below its op-mix ceiling in Fig 11.
"""

from _util import print_series

from repro.perfmodel.architectures import FIJI, PASCAL
from repro.perfmodel.opcount import degridder_counts, gridder_counts
from repro.perfmodel.roofline import shared_roofline_point


def test_fig13_shared_memory_roofline(benchmark, bench_plan):
    gc = gridder_counts(bench_plan)
    dc = degridder_counts(bench_plan)

    points = benchmark(
        lambda: [
            shared_roofline_point(arch, counts)
            for arch in (FIJI, PASCAL)
            for counts in (gc, dc)
        ]
    )
    rows = [
        (
            pt.architecture,
            pt.kernel,
            pt.intensity,
            pt.performance_ops / 1e12,
            pt.ceiling_ops / 1e12,
            pt.performance_ops / pt.ceiling_ops,
        )
        for pt in points
    ]
    print_series(
        "Fig 13: shared-memory roofline",
        ["arch", "kernel", "ops/shared-byte", "TOps/s", "shared ceiling",
         "fraction of shared bound"],
        rows,
    )

    by_key = {(p.architecture, p.kernel): p for p in points}
    # PASCAL kernels ride the shared-memory bound (the Fig 13 finding)
    for kernel in ("gridder", "degridder"):
        pt = by_key[("PASCAL", kernel)]
        assert pt.bound == "shared"
        assert pt.performance_ops / pt.ceiling_ops > 0.99
    # FIJI is sincos-bound but "relatively close" to the shared bound
    for kernel in ("gridder", "degridder"):
        pt = by_key[("FIJI", kernel)]
        assert pt.performance_ops / pt.ceiling_ops > 0.4
