"""Process-sharded executor scaling, machine-readable.

Two sweeps over ``n_procs`` in {1, 2, 4} with the ``fork`` start method:

``emulated``
    Each work group sleeps ``EMULATE_S`` inside the worker
    (``ProcessConfig.emulate_compute_s``) — a stand-in for device compute,
    mirroring ``RuntimeConfig.emulate_pcie_gbs``.  Workers sleep
    concurrently, so this measures the executor's *orchestration* scaling
    (shard partitioning, shm traffic, in-order merge) independent of how
    many cores the host actually has.  **The acceptance gate lives here**:
    4 shards must beat 1 shard by >= 1.5x even after the parent's serial
    merge and respawn-free supervision overhead — the Amdahl bound for the
    measured serial fraction is reported alongside.
``cpu-bound``
    The same plan with real kernels and no sleep — informational only.  On
    hosts with fewer cores than shards (CI runs this on 1 core) process
    parallelism cannot help compute-bound work; the JSON records the host's
    ``cpu_count`` so readers can interpret the numbers.

Every run is asserted bit-identical to the serial executor's grid before
its timing counts.  Writes ``benchmarks/results/BENCH_process_scaling.json``
(the CI process-scaling job asserts the gate from this payload) next to the
usual ASCII table.
"""

import json
import os
import platform
import time

import numpy as np

from _util import RESULTS_DIR, print_series

from repro.core.pipeline import IDG, IDGConfig
from repro.parallel.process import ProcessConfig, ProcessShardedIDG
from repro.sky.sources import random_sky
from repro.sky.simulate import predict_visibilities
from repro.telescope.observation import ska1_low_observation

PROCS = (1, 2, 4)
#: Emulated per-work-group device compute (dominates the tiny real kernels).
EMULATE_S = 0.08
#: Work-group size chosen so the scaling plan has ~12-24 groups.
GROUP_SIZE = 4
#: Acceptance: 4 emulated shards must beat 1 by at least this factor.
SPEEDUP_GATE = 1.5


def _workload():
    """A small observation whose per-group *real* compute is negligible
    next to ``EMULATE_S`` (the emulated sweep isolates orchestration)."""
    obs = ska1_low_observation(
        n_stations=10, n_times=24, n_channels=4, integration_time_s=60.0,
        max_radius_m=1500.0, seed=3,
    )
    gridspec = obs.fitting_gridspec(256)
    sky = random_sky(3, gridspec.image_size, fill_factor=0.4,
                     flux_range=(1.0, 5.0), seed=4)
    vis = predict_visibilities(
        obs.uvw_m, obs.frequencies_hz, sky, baselines=obs.array.baselines(),
    )
    idg = IDG(gridspec, IDGConfig(subgrid_size=16, kernel_support=4,
                                  time_max=8, work_group_size=GROUP_SIZE))
    plan = idg.make_plan(obs.uvw_m, obs.frequencies_hz, obs.array.baselines())
    return obs, idg, plan, vis


def _amdahl(serial_fraction: float, n: int) -> float:
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / n)


def test_bench_process_scaling():
    obs, idg, plan, vis = _workload()
    n_groups = len(list(plan.work_groups(GROUP_SIZE)))
    assert n_groups >= 8, f"scaling plan too small ({n_groups} groups)"
    reference = idg.grid(plan, obs.uvw_m, vis)

    def measure(n_procs: int, emulate_s: float) -> float:
        engine = ProcessShardedIDG(idg, ProcessConfig(
            n_procs=n_procs, start_method="fork", emulate_compute_s=emulate_s,
        ))
        t0 = time.perf_counter()
        grid = engine.grid(plan, obs.uvw_m, vis)
        elapsed = time.perf_counter() - t0
        assert np.array_equal(grid, reference)  # scaling never buys drift
        return elapsed

    measure(1, 0.0)  # warm BLAS/FFT and the fork machinery once
    emulated = {n: measure(n, EMULATE_S) for n in PROCS}
    cpu_bound = {n: measure(n, 0.0) for n in PROCS}

    speedup = {n: emulated[1] / emulated[n] for n in PROCS}
    cpu_speedup = {n: cpu_bound[1] / cpu_bound[n] for n in PROCS}
    # Observed serial fraction from the 4-shard emulated point
    # (s = (n/S - 1)/(n - 1), the Amdahl inversion), and the speedups that
    # fraction would bound at each shard count.
    s_observed = max(0.0, (4.0 / speedup[4] - 1.0) / 3.0)
    amdahl_bound = {n: _amdahl(s_observed, n) for n in PROCS}

    payload = {
        "benchmark": "process_scaling",
        "generated_by": "benchmarks/bench_process_scaling.py",
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "start_method": "fork",
            "work_group_size": GROUP_SIZE,
            "n_groups": n_groups,
            "n_subgrids": int(plan.n_subgrids),
            "emulate_compute_s": EMULATE_S,
            "speedup_gate": SPEEDUP_GATE,
        },
        "emulated": {
            str(n): {"wall_s": emulated[n], "speedup_vs_1": speedup[n]}
            for n in PROCS
        },
        "cpu_bound": {
            str(n): {"wall_s": cpu_bound[n], "speedup_vs_1": cpu_speedup[n]}
            for n in PROCS
        },
        "amdahl": {
            "serial_fraction_observed": s_observed,
            "bound_by_procs": {str(n): amdahl_bound[n] for n in PROCS},
        },
        "speedup_4v1": speedup[4],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_process_scaling.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    print_series(
        "Process-sharded executor scaling (emulated device compute)",
        ["n_procs", "emulated s", "speedup", "amdahl", "cpu-bound s"],
        [(n, emulated[n], speedup[n], amdahl_bound[n], cpu_bound[n])
         for n in PROCS],
    )

    # Acceptance gate: orchestration (shard map, shm slabs, in-order merge)
    # must not eat the parallelism — 4 emulated shards >= 1.5x one shard.
    assert speedup[4] >= SPEEDUP_GATE, (
        f"4-shard emulated speedup {speedup[4]:.2f}x below the "
        f"{SPEEDUP_GATE}x gate"
    )
