"""Fig 12: operation throughput for mixes of FMA and sine/cosine work.

Two layers again:

* the *model* sweep over rho = FMAs/sincos for the three paper
  architectures (shape pinned: PASCAL flat and high thanks to SFUs; FIJI and
  HASWELL degrade as rho shrinks, HASWELL worst);
* a *measured* microbenchmark of the same mix on this host's NumPy — the
  Python analogue of the paper's Fig 12 experiment: fused multiply-adds
  (vectorised a*b+c) against ``np.exp(1j * phi)`` evaluations.
"""

import numpy as np
from _util import print_series

from repro.perfmodel.architectures import ALL_ARCHITECTURES
from repro.perfmodel.sincos import sweep_rho

RHOS = np.array([0.0, 1.0, 2.0, 4.0, 8.0, 17.0, 32.0, 64.0])


def test_fig12_model_sweep(benchmark):
    curves = benchmark(
        lambda: {a.name: sweep_rho(a, RHOS)[1] for a in ALL_ARCHITECTURES}
    )
    rows = []
    for k, rho in enumerate(RHOS):
        rows.append((rho,) + tuple(curves[a.name][k] / 1e12 for a in ALL_ARCHITECTURES))
    print_series(
        "Fig 12: modelled throughput vs rho (TOps/s)",
        ["rho"] + [a.name for a in ALL_ARCHITECTURES],
        rows,
    )
    for a in ALL_ARCHITECTURES:
        curve = curves[a.name]
        assert np.all(np.diff(curve) >= -1e-3)  # monotone
    # PASCAL stays high at small rho; others do not (Section VI-C-1)
    assert curves["PASCAL"][2] / 9.22e12 > 0.5
    assert curves["FIJI"][2] / 8.60e12 < 0.4
    assert curves["HASWELL"][2] / 2.78e12 < 0.2


def _measured_mix(rho: int, n: int = 1 << 18) -> float:
    """Measured host op/s for a mix of rho FMA array passes per exp pass."""
    import time

    rng = np.random.default_rng(0)
    a = rng.standard_normal(n).astype(np.float32)
    b = rng.standard_normal(n).astype(np.float32)
    c = rng.standard_normal(n).astype(np.float32)
    phi = rng.standard_normal(n).astype(np.float32)
    t0 = time.perf_counter()
    reps = 3
    for _ in range(reps):
        for _ in range(rho):
            c = a * b + c  # one FMA per element
        _ = np.exp(1j * phi)  # one sincos per element
    elapsed = time.perf_counter() - t0
    ops = reps * n * (2 * rho + 2)
    return ops / elapsed


def test_fig12_measured_host_mix(benchmark):
    """The host shows the same qualitative degradation as software-sincos
    architectures: throughput falls as rho -> 0."""
    rhos = [0, 2, 8, 17]
    rates = benchmark(lambda: [_measured_mix(r) for r in rhos])
    print_series(
        "Fig 12 (measured on this host via NumPy)",
        ["rho", "GOps/s"],
        [(r, rate / 1e9) for r, rate in zip(rhos, rates)],
    )
    # ops/s at the kernel mix beats the pure-sincos end (software sincos)
    assert rates[3] > rates[0]
