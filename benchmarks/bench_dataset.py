"""Section VI-A: the representative benchmark data set.

Prints the scaled data set's vital statistics next to the paper's full-size
parameters, and pins the plan-level quantities the performance figures
depend on (subgrid occupancy, flagged fraction, A-term interval cuts).
"""

from _util import print_series

from repro.core.plan import Plan


def test_dataset_statistics(benchmark, bench_obs, bench_plan, bench_gridspec,
                            bench_schedule):
    stats = benchmark(lambda: bench_plan.statistics)

    print_series(
        "Section VI-A data set (scaled; paper values in parentheses)",
        ["quantity", "this run", "paper"],
        [
            ("stations", bench_obs.array.n_stations, 150),
            ("baselines", bench_obs.n_baselines, 11_175),
            ("timesteps", bench_obs.n_times, 8_192),
            ("channels", bench_obs.n_channels, 16),
            ("A-term interval", bench_schedule.update_interval, 256),
            ("grid", bench_gridspec.grid_size, 2_048),
            ("subgrid", bench_plan.subgrid_size, 24),
            ("visibilities", stats.n_visibilities_total, 1_465_712_640),
            ("subgrids", stats.n_subgrids, "-"),
            ("vis/subgrid", round(stats.mean_visibilities_per_subgrid, 1), "-"),
            ("flagged fraction",
             round(stats.n_visibilities_flagged / stats.n_visibilities_total, 4),
             "-"),
        ],
    )

    # structure matches the paper exactly
    assert bench_obs.n_channels == 16
    assert bench_plan.subgrid_size == 24
    assert bench_gridspec.grid_size == 2048
    assert bench_schedule.update_interval == 256
    # healthy plan: high coverage, well-filled subgrids
    assert stats.n_visibilities_flagged / stats.n_visibilities_total < 0.01
    assert stats.mean_visibilities_per_subgrid > 100
    # A-term boundaries respected
    for item in bench_plan:
        assert item.time_start // 256 == (item.time_end - 1) // 256
