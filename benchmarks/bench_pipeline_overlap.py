"""Extension bench: end-to-end pipeline predictions (Section V ablations).

Combines the Fig 9 runtime model with the Fig 7 stream scheduler into
end-to-end predictions the paper implies but does not plot:

* the GPU imaging cycle *including PCIe transfers*, with 1-4 device buffer
  sets — quantifying what triple buffering buys end to end;
* the CPU gridder's core scaling under OpenMP-style work-item parallelism
  (Amdahl with a small serial fraction).
"""

from _util import print_series

from repro.perfmodel.architectures import HASWELL, PASCAL
from repro.perfmodel.pipeline_model import cpu_core_scaling, gpu_cycle_with_transfers


def test_gpu_end_to_end_with_transfers(benchmark, bench_plan):
    predictions = benchmark(
        lambda: {
            buffers: gpu_cycle_with_transfers(PASCAL, bench_plan, n_buffers=buffers)
            for buffers in (1, 2, 3, 4)
        }
    )
    rows = []
    for buffers, pred in predictions.items():
        rows.append(
            (
                buffers,
                pred.overlapped_seconds * 1e3,
                pred.overlap_speedup,
                100 * pred.transfer_hidden_fraction,
            )
        )
    print_series(
        "GPU cycle incl. PCIe (PASCAL): buffering ablation",
        ["buffers", "makespan ms", "speedup vs serial", "transfer hidden %"],
        rows,
    )
    triple = predictions[3]
    # transfers almost fully hidden with triple buffering (the Fig 7 design)
    assert triple.transfer_hidden_fraction > 0.8
    assert triple.overlapped_seconds < predictions[1].overlapped_seconds
    # and the end-to-end time stays close to pure compute
    assert triple.overlapped_seconds < 1.2 * triple.compute_seconds


def test_cpu_core_scaling(benchmark, bench_plan):
    points = benchmark(lambda: cpu_core_scaling(HASWELL, bench_plan))
    print_series(
        "CPU gridder core scaling (HASWELL, Amdahl serial fraction 2%)",
        ["cores", "speedup", "efficiency", "seconds"],
        [(p.n_cores, p.speedup, p.efficiency, p.seconds) for p in points],
    )
    by_cores = {p.n_cores: p for p in points}
    assert by_cores[28].speedup > 14  # the dual-socket node still scales well
    assert by_cores[28].efficiency < by_cores[1].efficiency  # but not ideally
