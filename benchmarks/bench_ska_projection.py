"""Extension: project the model to the paper's FULL Section VI-A data set.

The paper's motivation is whether IDG on GPUs can "meet the computational
and energy-efficiency constraints of future telescopes" (the SKA).  This
bench scales the measured per-visibility costs of the benchmark plan to the
full published data set — 11 175 baselines x 8 192 timesteps x 16 channels
(~1.47e9 visibilities) — and prints the projected runtime and energy of one
imaging cycle per architecture, plus how many GPUs one real-time SKA-1 low
subband would need.
"""

from _util import print_series

from repro.perfmodel.architectures import ALL_ARCHITECTURES
from repro.perfmodel.energy import imaging_cycle_energy
from repro.perfmodel.opcount import gridder_counts
from repro.perfmodel.runtime import imaging_cycle_runtime

#: The published full-size data set.
FULL_VISIBILITIES = 11_175 * 8_192 * 16
#: Observation wall-clock of the full set (8192 x 1 s integrations).
OBSERVATION_SECONDS = 8_192.0


def test_ska_scale_projection(benchmark, bench_plan):
    counts = gridder_counts(bench_plan)
    scale = FULL_VISIBILITIES / counts.visibilities

    def project():
        rows = []
        for arch in ALL_ARCHITECTURES:
            cycle_s = imaging_cycle_runtime(arch, bench_plan).total_seconds * scale
            cycle_j = imaging_cycle_energy(arch, bench_plan).total_joules * scale
            realtime = cycle_s / OBSERVATION_SECONDS  # devices per subband
            rows.append((arch.name, cycle_s, cycle_j / 1e3, realtime))
        return rows

    rows = benchmark(project)
    print_series(
        "Projection: one FULL Section VI-A imaging cycle (1.47e9 visibilities)",
        ["arch", "cycle seconds", "cycle kJ", "devices for real-time"],
        rows,
    )

    by_arch = {name: (s, kj, rt) for name, s, kj, rt in rows}
    # the paper's conclusion in numbers: a single PASCAL processes the full
    # cycle in minutes and keeps up with real time on its own ...
    assert by_arch["PASCAL"][0] < 600
    assert by_arch["PASCAL"][2] < 1.0
    # ... while the CPU node needs an order of magnitude more time and energy
    assert by_arch["HASWELL"][0] > 8 * by_arch["PASCAL"][0]
    assert by_arch["HASWELL"][1] > 8 * by_arch["PASCAL"][1]
