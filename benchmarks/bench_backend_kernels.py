"""Per-backend kernel throughput, machine-readable.

Times every registered kernel backend on the same work-group batch and
writes ``benchmarks/results/BENCH_kernels.json`` — per-backend
visibilities/s for gridding and degridding plus the configuration and host
info needed to compare runs across machines — next to the usual ASCII
table.  CI and the acceptance checks read the JSON; humans read the table.
"""

import json
import os
import platform
import time

import numpy as np

from repro.backends import available_backends, get_backend
from repro.backends.jit import HAVE_NUMBA, JitBackend

from _util import RESULTS_DIR, print_series

GROUP = 16
REPEATS = 3

#: The batched-vs-per-item comparison uses more work items (batching pays
#: off across items) and more repeats (CI asserts on the ratio).
BATCHED_GROUP = 64
BATCHED_REPEATS = 5


def _visibilities_in(plan, stop):
    return sum(
        plan.work_item(i).n_times * plan.work_item(i).n_channels
        for i in range(stop)
    )


def _time_best(fn):
    """Best wall-clock of REPEATS runs, after one warmup (jit compiles)."""
    fn()
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _time_repeats(fn, repeats):
    """All wall-clock samples of ``repeats`` runs, after one warmup."""
    fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return samples


def _stats(samples, n_vis):
    best = min(samples)
    mean = sum(samples) / len(samples)
    variance = sum((s - mean) ** 2 for s in samples) / len(samples)
    return {
        "seconds_best": best,
        "seconds_mean": mean,
        "seconds_all": samples,
        "seconds_variance": variance,
        "visibilities_per_s": n_vis / best,
    }


def test_bench_backend_kernels(bench_plan, bench_obs, bench_vis, bench_idg):
    plan, uvw = bench_plan, bench_obs.uvw_m
    stop = min(GROUP, plan.n_subgrids)
    n_vis = _visibilities_in(plan, stop)
    assert n_vis > 0

    backends = {}
    rows = []
    for name in available_backends():
        backend = get_backend(name)
        fallback = isinstance(backend, JitBackend) and backend.is_fallback

        def run_grid(backend=backend):
            return backend.grid_work_group(
                plan, 0, stop, uvw, bench_vis, bench_idg.taper,
                lmn=bench_idg.lmn,
                channel_recurrence=bench_idg.config.channel_recurrence,
            )

        t_grid = _time_best(run_grid)
        subgrids = run_grid()
        images = backend.subgrids_to_image(backend.subgrids_to_fourier(subgrids))
        out = np.zeros_like(bench_vis)

        def run_degrid(backend=backend, images=images, out=out):
            backend.degrid_work_group(
                plan, 0, stop, images, uvw, out, bench_idg.taper,
                lmn=bench_idg.lmn,
                channel_recurrence=bench_idg.config.channel_recurrence,
            )

        t_degrid = _time_best(run_degrid)
        backends[name] = {
            "gridder_seconds": t_grid,
            "gridder_visibilities_per_s": n_vis / t_grid,
            "degridder_seconds": t_degrid,
            "degridder_visibilities_per_s": n_vis / t_degrid,
            "fallback_to": "vectorized" if fallback else None,
        }
        rows.append(
            (name, n_vis / t_grid / 1e6, n_vis / t_degrid / 1e6,
             "vectorized" if fallback else "-")
        )

    if HAVE_NUMBA and not backends["jit"]["fallback_to"]:
        ratio = (
            backends["jit"]["gridder_visibilities_per_s"]
            / backends["vectorized"]["gridder_visibilities_per_s"]
        )
        backends["jit"]["speedup_vs_vectorized"] = ratio

    payload = {
        "benchmark": "backend_kernels",
        "generated_by": "benchmarks/bench_backend_kernels.py",
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "numba_available": HAVE_NUMBA,
        "config": {
            "work_items": stop,
            "n_visibilities": n_vis,
            "subgrid_size": bench_idg.config.subgrid_size,
            "kernel_support": bench_idg.config.kernel_support,
            "time_max": bench_idg.config.time_max,
            "channel_recurrence": bench_idg.config.channel_recurrence,
            "n_baselines": int(uvw.shape[0]),
            "n_times": int(uvw.shape[1]),
            "n_channels": int(plan.n_channels),
            "repeats": REPEATS,
        },
        "backends": backends,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_kernels.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    print_series(
        "Backend kernel throughput",
        ["backend", "grid Mvis/s", "degrid Mvis/s", "fallback"],
        rows,
    )
    assert json.loads(path.read_text())["backends"].keys() == backends.keys()


def test_bench_batched_vs_per_item(bench_plan, bench_obs, bench_vis, bench_idg):
    """Shape-bucketed batched execution vs the per-item kernels.

    Times the ``vectorized`` backend both ways on the same work-group batch
    and writes ``benchmarks/results/BENCH_batched.json`` with per-repeat
    samples (so run-to-run variance is visible next to the ratio).  The CI
    perf-smoke job asserts batched >= per-item from this payload.
    """
    from repro.parallel.bucketing import DEFAULT_BATCH_BYTES

    plan, uvw = bench_plan, bench_obs.uvw_m
    stop = min(BATCHED_GROUP, plan.n_subgrids)
    n_vis = _visibilities_in(plan, stop)
    assert n_vis > 0
    backend = get_backend("vectorized")

    modes = {}
    for batched in (False, True):

        def run_grid(batched=batched):
            return backend.grid_work_group(
                plan, 0, stop, uvw, bench_vis, bench_idg.taper,
                lmn=bench_idg.lmn,
                channel_recurrence=bench_idg.config.channel_recurrence,
                batched=batched,
            )

        grid_samples = _time_repeats(run_grid, BATCHED_REPEATS)
        subgrids = run_grid()
        images = backend.subgrids_to_image(backend.subgrids_to_fourier(subgrids))
        out = np.zeros_like(bench_vis)

        def run_degrid(batched=batched, images=images, out=out):
            backend.degrid_work_group(
                plan, 0, stop, images, uvw, out, bench_idg.taper,
                lmn=bench_idg.lmn,
                channel_recurrence=bench_idg.config.channel_recurrence,
                batched=batched,
            )

        degrid_samples = _time_repeats(run_degrid, BATCHED_REPEATS)
        modes["batched" if batched else "per_item"] = {
            "gridder": _stats(grid_samples, n_vis),
            "degridder": _stats(degrid_samples, n_vis),
        }

    speedup = {
        kernel: (
            modes["batched"][kernel]["visibilities_per_s"]
            / modes["per_item"][kernel]["visibilities_per_s"]
        )
        for kernel in ("gridder", "degridder")
    }

    payload = {
        "benchmark": "batched_vs_per_item",
        "generated_by": "benchmarks/bench_backend_kernels.py",
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "backend": "vectorized",
            "work_items": stop,
            "n_visibilities": n_vis,
            "subgrid_size": bench_idg.config.subgrid_size,
            "kernel_support": bench_idg.config.kernel_support,
            "time_max": bench_idg.config.time_max,
            "channel_recurrence": bench_idg.config.channel_recurrence,
            "batch_bytes": DEFAULT_BATCH_BYTES,
            "n_baselines": int(uvw.shape[0]),
            "n_times": int(uvw.shape[1]),
            "n_channels": int(plan.n_channels),
            "repeats": BATCHED_REPEATS,
        },
        "modes": modes,
        "speedup": speedup,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_batched.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    print_series(
        "Batched vs per-item kernel throughput (vectorized)",
        ["mode", "grid Mvis/s", "degrid Mvis/s"],
        [
            (mode,
             modes[mode]["gridder"]["visibilities_per_s"] / 1e6,
             modes[mode]["degridder"]["visibilities_per_s"] / 1e6)
            for mode in ("per_item", "batched")
        ] + [("speedup", speedup["gridder"], speedup["degridder"])],
    )
    assert speedup["gridder"] >= 1.0 and speedup["degridder"] >= 1.0, (
        f"batched slower than per-item: {speedup}"
    )
