"""Ablation: anti-aliasing taper choice.

The paper uses a prolate spheroidal ("such as a spheroidal, which is used in
our case").  This bench compares it against Kaiser-Bessel windows of varying
beta on two axes:

* **degridding accuracy** — stronger tapers (higher beta) suppress aliasing
  better; with the full 24-pixel subgrid acting as the kernel support, a
  KB(14) even beats the classic Schwab spheroidal (whose rational fit is
  optimised for 6-cell supports);
* **edge amplification** — the price: the grid correction divides the final
  image by the taper, so a taper that decays harder blows up the image
  edges more (the usable field shrinks).

The spheroidal sits on the knee of that trade, which is why production
imagers default to it.
"""

import numpy as np
import pytest
from _util import print_series

from repro.core.pipeline import IDG, IDGConfig
from repro.imaging.image import model_image_to_grid
from repro.sky.model import SkyModel
from repro.sky.simulate import predict_visibilities
from repro.telescope.observation import ska1_low_observation

CONFIGS = [("spheroidal", 0.0), ("kaiser-bessel", 4.0), ("kaiser-bessel", 9.0),
           ("kaiser-bessel", 14.0)]


@pytest.fixture(scope="module")
def workload():
    obs = ska1_low_observation(
        n_stations=12, n_times=48, n_channels=4,
        integration_time_s=180.0, max_radius_m=2_500.0, seed=5,
    )
    gs = obs.fitting_gridspec(256)
    dl = gs.pixel_scale
    l0 = round(0.2 * gs.image_size / dl) * dl
    m0 = round(0.1 * gs.image_size / dl) * dl
    sky = SkyModel.single(l0, m0, flux=1.0)
    bl = obs.array.baselines()
    vis = predict_visibilities(obs.uvw_m, obs.frequencies_hz, sky, baselines=bl)
    g = gs.grid_size
    model = np.zeros((4, g, g), dtype=np.complex128)
    model[0, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = 1.0
    model[3, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = 1.0
    return obs, gs, bl, vis, model


def _edge_amplification(taper, beta):
    """Grid-correction gain at 90% of the image half-width."""
    from repro.kernels.spheroidal import taper_for

    t = taper_for(256, taper, beta=beta)
    centre = 128
    edge = int(round(centre + 0.9 * centre))
    return 1.0 / max(t[centre, edge], 1e-300)


def _accuracy(obs, gs, bl, vis, model, taper, beta):
    idg = IDG(gs, IDGConfig(subgrid_size=24, kernel_support=8, time_max=16,
                            taper=taper, taper_beta=beta))
    plan = idg.make_plan(obs.uvw_m, obs.frequencies_hz, bl)
    mgrid = model_image_to_grid(model, gs, taper=taper, taper_beta=beta)
    pred = idg.degrid(plan, obs.uvw_m, mgrid)
    mask = ~plan.flagged
    sel = mask[..., None, None] & np.ones_like(vis, bool)
    scale = np.sqrt((np.abs(vis[sel]) ** 2).mean())
    return np.sqrt((np.abs(pred[sel] - vis[sel]) ** 2).mean()) / scale


def test_ablation_taper(benchmark, workload):
    obs, gs, bl, vis, model = workload
    rms = benchmark(
        lambda: {
            (taper, beta): _accuracy(obs, gs, bl, vis, model, taper, beta)
            for taper, beta in CONFIGS
        }
    )
    print_series(
        "Ablation: anti-aliasing taper (accuracy vs edge amplification)",
        ["taper", "beta", "degrid rel rms", "edge gain @0.9 FoV"],
        [
            (t, b, rms[(t, b)], _edge_amplification(t, b))
            for t, b in CONFIGS
        ],
    )
    sph = rms[("spheroidal", 0.0)]
    # sub-percent accuracy for the spheroidal default
    assert sph < 2e-3
    # stronger tapers suppress aliasing better ...
    assert rms[("kaiser-bessel", 4.0)] > rms[("kaiser-bessel", 9.0)] > rms[
        ("kaiser-bessel", 14.0)
    ]
    # ... but pay in edge amplification (usable field of view)
    assert _edge_amplification("kaiser-bessel", 14.0) > 10 * _edge_amplification(
        "kaiser-bessel", 4.0
    )
    # the spheroidal beats the weak KB while keeping edge gain moderate
    assert sph < rms[("kaiser-bessel", 4.0)]
    assert _edge_amplification("spheroidal", 0.0) < _edge_amplification(
        "kaiser-bessel", 14.0
    )
