"""Shared ASCII rendering for the figure benchmarks.

Output goes both to stdout (visible with ``pytest -s``) and, because pytest
captures stdout by default, to ``benchmarks/results/<slug>.txt`` so every
figure's series survives a normal ``pytest benchmarks/ --benchmark-only``
run.
"""

from __future__ import annotations

import pathlib
import re

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def print_series(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Uniform ASCII rendering for all figure benchmarks (no matplotlib in
    this environment; EXPERIMENTS.md captures the same numbers)."""
    lines = [f"=== {title} ==="]
    widths = [max(len(h), 12) for h in headers]
    lines.append("  " + "  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        cells = []
        for value, w in zip(row, widths):
            if isinstance(value, float):
                cells.append(f"{value:.4g}".rjust(w))
            else:
                cells.append(str(value).rjust(w))
        lines.append("  " + "  ".join(cells))
    text = "\n".join(lines)
    print("\n" + text)
    if title:
        slug = re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")[:60]
        RESULTS_DIR.mkdir(exist_ok=True)
        with open(RESULTS_DIR / f"{slug}.txt", "w") as fh:
            fh.write(text + "\n")
