"""Measured performance of this package's kernels (pytest-benchmark).

Not a paper figure: these are the honest wall-clock numbers of the Python
substrate itself, per kernel, so regressions in the NumPy implementations
are caught and users know what to expect on a host CPU.
"""

import numpy as np

from repro.core.adder import add_subgrids, split_subgrids
from repro.core.degridder import degrid_work_group
from repro.core.gridder import grid_work_group
from repro.core.plan import Plan
from repro.core.subgrid_fft import subgrids_to_fourier, subgrids_to_image
from repro.parallel.executor import ParallelIDG

GROUP = 16


def test_bench_plan_construction(benchmark, bench_obs, bench_gridspec):
    baselines = bench_obs.array.baselines()
    plan = benchmark(
        Plan.create,
        bench_obs.uvw_m, bench_obs.frequencies_hz, baselines, bench_gridspec,
        24, 8, 128,
    )
    assert plan.n_subgrids > 0


def test_bench_gridder_work_group(benchmark, bench_plan, bench_obs, bench_vis,
                                  bench_idg):
    stop = min(GROUP, bench_plan.n_subgrids)
    out = benchmark(
        grid_work_group,
        bench_plan, 0, stop, bench_obs.uvw_m, bench_vis, bench_idg.taper,
        bench_idg.lmn,
    )
    assert out.shape[0] == stop


def test_bench_degridder_work_group(benchmark, bench_plan, bench_obs, bench_vis,
                                    bench_idg):
    stop = min(GROUP, bench_plan.n_subgrids)
    subgrids = grid_work_group(
        bench_plan, 0, stop, bench_obs.uvw_m, bench_vis, bench_idg.taper,
        lmn=bench_idg.lmn,
    )
    images = subgrids_to_image(subgrids_to_fourier(subgrids))
    out = np.zeros_like(bench_vis)

    def run():
        degrid_work_group(
            bench_plan, 0, stop, images, bench_obs.uvw_m, out, bench_idg.taper,
            lmn=bench_idg.lmn,
        )

    benchmark(run)


def test_bench_subgrid_fft(benchmark, bench_plan):
    rng = np.random.default_rng(0)
    n = bench_plan.subgrid_size
    k = min(256, bench_plan.n_subgrids)
    subgrids = (
        rng.standard_normal((k, n, n, 2, 2)) + 1j * rng.standard_normal((k, n, n, 2, 2))
    ).astype(np.complex64)
    out = benchmark(subgrids_to_fourier, subgrids)
    assert out.shape == subgrids.shape


def test_bench_adder(benchmark, bench_plan):
    rng = np.random.default_rng(1)
    n = bench_plan.subgrid_size
    k = min(256, bench_plan.n_subgrids)
    subgrids = (
        rng.standard_normal((k, n, n, 2, 2)) + 1j * rng.standard_normal((k, n, n, 2, 2))
    ).astype(np.complex64)
    grid = bench_plan.gridspec.allocate_grid()

    benchmark(add_subgrids, grid, bench_plan, subgrids, 0)


def test_bench_splitter(benchmark, bench_plan):
    grid = bench_plan.gridspec.allocate_grid()
    k = min(256, bench_plan.n_subgrids)
    out = benchmark(split_subgrids, grid, bench_plan, 0, k)
    assert out.shape[0] == k


def test_bench_parallel_gridding_speedup(benchmark, bench_plan, bench_obs,
                                         bench_vis, bench_idg):
    """Thread-parallel gridding of a plan slice (4 workers)."""
    import time

    par = ParallelIDG(bench_idg.with_config(work_group_size=16), n_workers=4)

    # restrict to a slice of the plan for bench speed
    sliced = Plan(
        gridspec=bench_plan.gridspec,
        subgrid_size=bench_plan.subgrid_size,
        items=bench_plan.items[: min(48, bench_plan.n_subgrids)],
        flagged=bench_plan.flagged,
        frequencies_hz=bench_plan.frequencies_hz,
        kernel_support=bench_plan.kernel_support,
    )
    out = benchmark(par.grid, sliced, bench_obs.uvw_m, bench_vis)
    assert np.abs(out).max() > 0
