"""End-to-end self-calibration: gain recovery and dynamic-range gates.

A simulated observation is corrupted with known per-station gains
(log-normal amplitudes, ~0.6 rad phases) and handed to
:func:`repro.calibration.self_calibrate`, which closes the loop the paper's
architecture implies: CLEAN model -> degrid (predict) -> StEFCal gain solve
-> gains folded into the gridder as :class:`~repro.aterms.GainATerm`
A-terms -> re-grid.  Gates asserted here and re-checked by the CI
``selfcal`` job from ``benchmarks/results/BENCH_selfcal.json``:

* worst-case gain **amplitude error < 1%** against the injected gains
  (normalised to the reference-station convention — self-cal cannot
  determine the global flux scale, see the amplitude-convention note in
  :func:`repro.calibration.self_calibrate`);
* calibrated **dynamic range >= ``DR_GATE`` x** the uncalibrated dirty
  image's;
* the loop reports convergence within the cycle budget.
"""

import json
import os
import platform
import time

import numpy as np

from _util import RESULTS_DIR, print_series

from repro.calibration.gains import corrupt_with_gains, random_gains
from repro.calibration.selfcal import (
    SelfCalConfig,
    gain_amplitude_error,
    self_calibrate,
)
from repro.core.pipeline import IDG, IDGConfig
from repro.imaging.metrics import dynamic_range
from repro.imaging.pipeline import ImagingContext, invert_2d
from repro.sky.model import SkyModel
from repro.sky.simulate import predict_visibilities
from repro.telescope.observation import ska1_low_observation

N_STATIONS = 8
N_TIMES = 16
N_CHANNELS = 2
GRID_SIZE = 128

#: Acceptance gates (re-checked by CI from BENCH_selfcal.json).
AMPLITUDE_ERROR_GATE = 0.01
DR_GATE = 5.0

IDG_CONFIG = IDGConfig(subgrid_size=16, kernel_support=6, time_max=8)


def test_bench_selfcal():
    obs = ska1_low_observation(
        n_stations=N_STATIONS, n_times=N_TIMES, n_channels=N_CHANNELS,
        integration_time_s=120.0, max_radius_m=2000.0, seed=1,
    )
    gridspec = obs.fitting_gridspec(GRID_SIZE, fill_factor=1.2)
    idg = IDG(gridspec, IDG_CONFIG)
    baselines = obs.array.baselines()
    dl = gridspec.pixel_scale
    sky = SkyModel.single(20 * dl, -14 * dl, flux=5.0)
    vis = predict_visibilities(
        obs.uvw_m, obs.frequencies_hz, sky, baselines=baselines
    )
    true_gains = random_gains(
        N_STATIONS, amplitude_rms=0.2, phase_rms_rad=0.6, seed=3
    )
    # the loop pins the flux scale to |g[reference_station]| = 1; the truth
    # must be normalised identically to be comparable
    true_gains = true_gains / np.abs(true_gains[0])
    corrupted = corrupt_with_gains(vis, true_gains, baselines)

    context = ImagingContext(
        idg=idg, uvw_m=obs.uvw_m, frequencies_hz=obs.frequencies_hz,
        baselines=baselines,
    )
    uncalibrated = invert_2d(context, corrupted).stokes_i
    uncalibrated_dr = float(dynamic_range(uncalibrated))

    start = time.perf_counter()
    result = self_calibrate(
        context, corrupted, N_STATIONS, config=SelfCalConfig(),
        true_gains=true_gains,
    )
    elapsed = time.perf_counter() - start

    amplitude_error = gain_amplitude_error(result.gains, true_gains)
    calibrated_dr = float(
        dynamic_range(result.model_image + result.residual_image)
    )
    dr_improvement = calibrated_dr / uncalibrated_dr

    assert result.converged, "self-cal did not converge in the cycle budget"
    assert amplitude_error < AMPLITUDE_ERROR_GATE, amplitude_error
    assert dr_improvement >= DR_GATE, (calibrated_dr, uncalibrated_dr)

    payload = {
        "benchmark": "selfcal",
        "generated_by": "benchmarks/bench_selfcal.py",
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "n_stations": N_STATIONS,
            "n_times": N_TIMES,
            "n_channels": N_CHANNELS,
            "grid_size": GRID_SIZE,
            "subgrid_size": IDG_CONFIG.subgrid_size,
            "amplitude_error_gate": AMPLITUDE_ERROR_GATE,
            "dr_gate": DR_GATE,
        },
        "converged": result.converged,
        "n_cycles": result.n_cycles,
        "elapsed_s": elapsed,
        "gain_amplitude_error": amplitude_error,
        "uncalibrated_dynamic_range": uncalibrated_dr,
        "calibrated_dynamic_range": calibrated_dr,
        "dr_improvement": dr_improvement,
        "history": [
            {
                "cycle": h.cycle,
                "residual_rms": h.residual_rms,
                "dynamic_range": h.dynamic_range,
                "clean_flux": h.clean_flux,
                "gain_change": h.gain_change,
                "gain_amplitude_error": h.gain_amplitude_error,
                "stefcal_iterations": h.stefcal_iterations,
            }
            for h in result.history
        ],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_selfcal.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    print_series(
        "Self-cal: corrupted-gains recovery (stefcal + GainATerm loop)",
        ["cycle", "resid rms", "DR", "amp err %", "gain change"],
        [
            (
                h.cycle,
                h.residual_rms,
                h.dynamic_range,
                100.0 * h.gain_amplitude_error,
                h.gain_change,
            )
            for h in result.history
        ],
    )
    print(
        f"\nconverged in {result.n_cycles} cycles ({elapsed:.2f} s); "
        f"amplitude error {100 * amplitude_error:.4f}% "
        f"(gate {100 * AMPLITUDE_ERROR_GATE:.0f}%); "
        f"dynamic range {uncalibrated_dr:.1f} -> {calibrated_dr:.1f} "
        f"({dr_improvement:.1f}x, gate {DR_GATE:.0f}x)"
    )
