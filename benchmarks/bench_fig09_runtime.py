"""Fig 9: runtime distribution of one full imaging cycle per architecture.

Feeds the benchmark plan's exact op/byte counts through the performance
model and prints the per-kernel runtime split for HASWELL, FIJI and PASCAL.
The paper's claims pinned here: the gridder and degridder dominate (>93%),
and both GPUs finish almost an order of magnitude faster than the CPU.
"""

from _util import print_series

from repro.perfmodel.architectures import ALL_ARCHITECTURES
from repro.perfmodel.runtime import imaging_cycle_runtime


def test_fig09_runtime_distribution(benchmark, bench_plan):
    cycles = benchmark(
        lambda: {a.name: imaging_cycle_runtime(a, bench_plan)
                 for a in ALL_ARCHITECTURES}
    )

    rows = []
    for name, cycle in cycles.items():
        rows.append(
            (
                name,
                cycle.total_seconds,
                cycle.fraction("gridder"),
                cycle.fraction("degridder"),
                cycle.fraction("subgrid-fft"),
                cycle.fraction("adder") + cycle.fraction("splitter"),
            )
        )
    print_series(
        "Fig 9: one imaging cycle, modelled runtime split",
        ["arch", "total s", "gridder", "degridder", "subgrid FFTs", "adder+splitter"],
        rows,
    )

    t = {name: c.total_seconds for name, c in cycles.items()}
    for cycle in cycles.values():
        assert cycle.gridding_degridding_fraction() > 0.93  # Section VI-B
    assert t["HASWELL"] / t["PASCAL"] > 8  # "almost an order of magnitude"
    assert t["HASWELL"] / t["FIJI"] > 5
