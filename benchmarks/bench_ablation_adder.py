"""Ablation: adder parallelisation strategy (paper Section V-B-d).

"As subgrids might partially overlap in the grid, for the adder,
parallelization over subgrids would imply prohibitive synchronization costs.
Instead, we parallelize over the rows of the grid."  Measured here: the
serial adder vs the lock-free row-partitioned adder at 1/2/4 workers (exact
same results, no locks), plus the GPU-side alternative the paper uses —
atomic adds — represented by its modelled memory cost.
"""

import time

import numpy as np
from _util import print_series

from repro.core.adder import add_subgrids
from repro.parallel.partition import add_subgrids_row_parallel


def test_ablation_adder_strategies(benchmark, bench_plan):
    rng = np.random.default_rng(0)
    n = bench_plan.subgrid_size
    k = min(192, bench_plan.n_subgrids)
    subgrids = (
        rng.standard_normal((k, n, n, 2, 2)) + 1j * rng.standard_normal((k, n, n, 2, 2))
    ).astype(np.complex64)

    def measure():
        results = {}
        grid = bench_plan.gridspec.allocate_grid()
        t0 = time.perf_counter()
        add_subgrids(grid, bench_plan, subgrids, start=0)
        results["serial"] = time.perf_counter() - t0
        reference = grid
        for workers in (1, 2, 4):
            grid = bench_plan.gridspec.allocate_grid()
            t0 = time.perf_counter()
            add_subgrids_row_parallel(
                grid, bench_plan, subgrids, start=0, n_workers=workers
            )
            results[f"rows x{workers}"] = time.perf_counter() - t0
            np.testing.assert_allclose(grid, reference, atol=1e-5)
        return results

    results = benchmark(measure)
    print_series(
        "Ablation: adder strategy (192 subgrids onto the 2048^2 grid)",
        ["strategy", "seconds"],
        [(name, t) for name, t in results.items()],
    )
    # every strategy produced identical grids (asserted inside measure);
    # row partitioning is lock-free so overhead stays bounded
    assert results["rows x4"] < 10 * results["serial"]
