"""Fig 15: energy efficiency of the gridder and degridder kernels.

The paper's numbers: PASCAL 32 / 23 GFlops/W (gridder / degridder), FIJI
about 13, HASWELL about 1.5.  The model reproduces all four within ~15%.
"""

from _util import print_series

from repro.perfmodel.architectures import ALL_ARCHITECTURES, FIJI, HASWELL, PASCAL
from repro.perfmodel.energy import energy_efficiency_gflops_per_watt
from repro.perfmodel.opcount import degridder_counts, gridder_counts


def test_fig15_energy_efficiency(benchmark, bench_plan):
    gc = gridder_counts(bench_plan)
    dc = degridder_counts(bench_plan)
    result = benchmark(
        lambda: {
            a.name: (
                energy_efficiency_gflops_per_watt(a, gc),
                energy_efficiency_gflops_per_watt(a, dc),
            )
            for a in ALL_ARCHITECTURES
        }
    )
    print_series(
        "Fig 15: modelled energy efficiency (GFlops/W)",
        ["arch", "gridder", "degridder", "paper gridder", "paper degridder"],
        [
            ("HASWELL", *result["HASWELL"], 1.5, 1.5),
            ("FIJI", *result["FIJI"], 13.0, 13.0),
            ("PASCAL", *result["PASCAL"], 32.0, 23.0),
        ],
    )

    assert abs(result["PASCAL"][0] - 32) / 32 < 0.15
    assert abs(result["PASCAL"][1] - 23) / 23 < 0.15
    assert abs(result["FIJI"][0] - 13) / 13 < 0.15
    assert abs(result["HASWELL"][0] - 1.5) / 1.5 < 0.25
    # GPUs an order of magnitude more efficient than the CPU
    assert result["PASCAL"][0] / result["HASWELL"][0] > 10
