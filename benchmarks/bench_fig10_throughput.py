"""Fig 10: gridding/degridding throughput in MVisibilities/s.

Two layers: the *model* throughput for the paper's three architectures
(shape pinned: PASCAL > FIJI >> HASWELL, roughly 10x CPU->GPU), and the
*measured* throughput of this package's NumPy kernels on the host — the
honest Python-substrate number a user of this library actually gets.
"""

import numpy as np
from _util import print_series

from repro.core.gridder import grid_work_group
from repro.perfmodel.architectures import ALL_ARCHITECTURES
from repro.perfmodel.opcount import degridder_counts, gridder_counts
from repro.perfmodel.runtime import throughput_mvis


def test_fig10_modelled_throughput(benchmark, bench_plan):
    gc = gridder_counts(bench_plan)
    dc = degridder_counts(bench_plan)
    result = benchmark(
        lambda: {a.name: (throughput_mvis(a, gc), throughput_mvis(a, dc))
                 for a in ALL_ARCHITECTURES}
    )
    print_series(
        "Fig 10: modelled throughput (MVis/s)",
        ["arch", "gridding", "degridding"],
        [(name, g, d) for name, (g, d) in result.items()],
    )
    assert result["PASCAL"][0] > result["FIJI"][0] > result["HASWELL"][0]
    assert result["PASCAL"][0] / result["HASWELL"][0] > 9


def test_fig10_measured_python_gridding(benchmark, bench_plan, bench_obs, bench_vis,
                                        bench_idg):
    """Measured NumPy gridder throughput over a slice of the plan."""
    stop = min(24, bench_plan.n_subgrids)

    def run():
        return grid_work_group(
            bench_plan, 0, stop, bench_obs.uvw_m, bench_vis, bench_idg.taper,
            lmn=bench_idg.lmn,
        )

    benchmark(run)
    n_vis = sum(bench_plan.work_item(i).n_visibilities for i in range(stop))
    mvis = n_vis / benchmark.stats["mean"] / 1e6
    print_series(
        "Fig 10 (measured, this package's NumPy kernels on this host)",
        ["kernel", "MVis/s"],
        [("gridder", mvis)],
    )
    assert mvis > 5e-4  # sanity only: host speed varies widely under suite load
