"""Ablation: subgrid size (paper Section IV).

The paper: "for the LOFAR telescope, subgrids as small as 24 x 24 pixels are
found to provide sufficient accuracy to exceed the accuracy of traditional
gridding".  This bench sweeps the subgrid size and reports, per size,
degridding accuracy against the measurement-equation oracle and the
modelled per-visibility op cost (which grows as N^2) — the accuracy/cost
trade behind the choice of 24.
"""

import numpy as np
import pytest
from _util import print_series

from repro.core.pipeline import IDG, IDGConfig
from repro.imaging.image import model_image_to_grid
from repro.perfmodel.architectures import PASCAL
from repro.perfmodel.opcount import idg_synthetic_counts
from repro.perfmodel.runtime import throughput_mvis
from repro.sky.model import SkyModel
from repro.sky.simulate import predict_visibilities
from repro.telescope.observation import ska1_low_observation

SIZES = [8, 12, 16, 24, 32]


@pytest.fixture(scope="module")
def workload():
    obs = ska1_low_observation(
        n_stations=12, n_times=48, n_channels=4,
        integration_time_s=180.0, max_radius_m=2_500.0, seed=9,
    )
    gs = obs.fitting_gridspec(256)
    dl = gs.pixel_scale
    l0 = round(0.18 * gs.image_size / dl) * dl
    m0 = round(-0.12 * gs.image_size / dl) * dl
    sky = SkyModel.single(l0, m0, flux=1.0)
    bl = obs.array.baselines()
    vis = predict_visibilities(obs.uvw_m, obs.frequencies_hz, sky, baselines=bl)
    g = gs.grid_size
    model = np.zeros((4, g, g), dtype=np.complex128)
    model[0, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = 1.0
    model[3, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = 1.0
    return obs, gs, bl, vis, model


def _accuracy(obs, gs, bl, vis, model, subgrid_size):
    support = max(2, subgrid_size // 3)
    idg = IDG(gs, IDGConfig(subgrid_size=subgrid_size, kernel_support=support,
                            time_max=16))
    plan = idg.make_plan(obs.uvw_m, obs.frequencies_hz, bl)
    mgrid = model_image_to_grid(model, gs)
    pred = idg.degrid(plan, obs.uvw_m, mgrid)
    mask = ~plan.flagged
    sel = mask[..., None, None] & np.ones_like(vis, bool)
    scale = np.sqrt((np.abs(vis[sel]) ** 2).mean())
    return np.sqrt((np.abs(pred[sel] - vis[sel]) ** 2).mean()) / scale


def test_ablation_subgrid_size(benchmark, workload):
    obs, gs, bl, vis, model = workload
    rms = benchmark(
        lambda: {n: _accuracy(obs, gs, bl, vis, model, n) for n in SIZES}
    )
    rows = []
    for n in SIZES:
        cost = throughput_mvis(PASCAL, idg_synthetic_counts(1e6, n))
        rows.append((n, rms[n], 36 * n * n, cost))
    print_series(
        "Ablation: subgrid size (accuracy vs per-visibility cost)",
        ["N", "degrid rel rms", "ops/visibility", "model MVis/s (PASCAL)"],
        rows,
    )
    # accuracy improves monotonically-ish with subgrid size...
    assert rms[24] < rms[8]
    # ...and the paper's choice (24) is already in the high-accuracy regime
    assert rms[24] < 2e-3
    assert rms[32] < 2e-3
    # while cost rises quadratically with N
    cost8 = throughput_mvis(PASCAL, idg_synthetic_counts(1e6, 8))
    cost32 = throughput_mvis(PASCAL, idg_synthetic_counts(1e6, 32))
    assert cost8 > 8 * cost32
