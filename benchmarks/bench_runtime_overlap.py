"""Measured pipeline overlap vs. the Fig 7 stream-schedule model.

The perfmodel benchmarks *simulate* the triple-buffered schedule
(``bench_fig07_streams``, ``bench_pipeline_overlap``); this one executes it:
:class:`repro.runtime.StreamingIDG` grids the bench plan with ``n_buffers``
swept 1-4 and the measured makespan (from the built-in telemetry) is
compared against :func:`repro.perfmodel.streams.schedule_buffers` fed the
*measured* per-stage durations — the same discrete-event model, real inputs.

The host has no accelerator, so the PCIe copies the paper hides behind
compute are emulated: the runtime's ``htod``/``dtoh`` stages occupy the link
for ``bytes / bandwidth`` of real wall time without holding the CPU
(``RuntimeConfig.emulate_pcie_gbs``).  The link speed is calibrated from a
probe run so each one-way transfer costs ~40% of a work group's compute —
the compute:transfer ratio regime where Fig 7's buffering ablation is
visible.  ``n_buffers=1`` forces the serial copy-compute-copy schedule
through the credit gate; three buffers overlap the streams.
"""

import json

from _util import print_series

from repro.perfmodel.streams import schedule_buffers, serial_makespan
from repro.runtime import (
    RuntimeConfig,
    StreamingIDG,
    modeled_schedule_jobs,
)
from repro.runtime.streaming import chunk_transfer_bytes

#: Work-group size for this bench: the bench plan's ~270 subgrids become
#: ~9 pipeline work groups, enough to fill and drain a 4-deep pipeline.
GROUP_SIZE = 32
COMPUTE_STAGES = ("gridder", "subgrid_fft", "adder")
STREAMS = ("htod", COMPUTE_STAGES, "dtoh")
SWEEP = (1, 2, 3, 4)
#: Repeats per point; the strict 3-vs-1 comparison uses the best of each.
REPEATS = 2
#: Target one-way transfer cost as a fraction of per-group compute.
TRANSFER_RATIO = 0.4


def _calibrate_link(idg, plan, obs, vis):
    """Emulated link bandwidth giving transfers ~TRANSFER_RATIO of compute
    (also serves as the BLAS/FFT warm-up run)."""
    probe = StreamingIDG(idg, RuntimeConfig(n_buffers=1))
    probe.grid(plan, obs.uvw_m, vis)
    telemetry = probe.last_telemetry
    jobs = modeled_schedule_jobs(telemetry, ("splitter", COMPUTE_STAGES, "splitter"))
    mean_compute = sum(c for _, c, _ in jobs) / len(jobs)
    chunks = list(plan.work_groups(GROUP_SIZE))
    mean_bytes = sum(
        sum(chunk_transfer_bytes(plan, start, stop)) / 2.0
        for start, stop in chunks
    ) / len(chunks)
    return mean_bytes / (TRANSFER_RATIO * mean_compute) / 1e9


def _measure(idg, plan, obs, vis, n_buffers, link_gbs):
    best = None
    for _ in range(REPEATS):
        engine = StreamingIDG(
            idg, RuntimeConfig(n_buffers=n_buffers, emulate_pcie_gbs=link_gbs)
        )
        engine.grid(plan, obs.uvw_m, vis)
        telemetry = engine.last_telemetry
        if best is None or telemetry.makespan() < best.makespan():
            best = telemetry
    return best


def test_runtime_overlap_sweep(benchmark, bench_idg, bench_plan, bench_obs, bench_vis):
    idg = bench_idg.with_config(work_group_size=GROUP_SIZE)
    link_gbs = _calibrate_link(idg, bench_plan, bench_obs, bench_vis)

    measured = benchmark(
        lambda: {
            n: _measure(idg, bench_plan, bench_obs, bench_vis, n, link_gbs)
            for n in SWEEP
        }
    )

    # Model: the measured per-work-group stream durations of the serial run,
    # scheduled by the Fig 7 discrete-event simulation at each buffer count.
    jobs = modeled_schedule_jobs(measured[1], STREAMS)
    modeled = {n: schedule_buffers(jobs, n_buffers=n).makespan for n in SWEEP}
    serial = serial_makespan(jobs)

    rows = []
    for n in SWEEP:
        span = measured[n].makespan()
        rows.append((
            n,
            span * 1e3,
            modeled[n] * 1e3,
            measured[1].makespan() / span,
            serial / modeled[n],
            measured[n].throughput() / 1e6,
        ))
    print_series(
        "Streaming runtime: measured vs modeled makespan (buffer sweep)",
        ["buffers", "measured ms", "modeled ms", "meas speedup",
         "model speedup", "MVis/s"],
        rows,
    )

    # Acceptance: buffering must beat the serialised schedule outright.
    assert measured[3].makespan() < measured[1].makespan()
    # The model agrees that more buffers never hurt.
    assert modeled[3] <= modeled[1]
    # And measured triple buffering lands within 2x of its prediction (the
    # model has no thread/GIL overheads, so it is a lower bound in spirit).
    assert measured[3].makespan() < 2.0 * modeled[3]

    # The chrome-trace export round-trips through JSON with spans for every
    # stage of the pipeline (source and transfer stages included).
    trace = json.loads(json.dumps(measured[3].chrome_trace()))
    span_names = {
        event["name"] for event in trace["traceEvents"] if event["ph"] == "X"
    }
    assert {"splitter", "htod", "dtoh", *COMPUTE_STAGES} <= span_names


def test_runtime_degrid_trace(bench_idg, bench_plan, bench_obs, bench_vis):
    idg = bench_idg.with_config(work_group_size=GROUP_SIZE)
    engine = StreamingIDG(idg, RuntimeConfig(n_buffers=3))
    grid = engine.grid(bench_plan, bench_obs.uvw_m, bench_vis)
    engine.degrid(bench_plan, bench_obs.uvw_m, grid)
    telemetry = engine.last_telemetry
    trace = json.loads(json.dumps(telemetry.chrome_trace()))
    span_names = {
        event["name"] for event in trace["traceEvents"] if event["ph"] == "X"
    }
    assert {"splitter", "subgrid_split", "subgrid_ifft", "degridder"} <= span_names
    print_series(
        "Streaming degrid: stage busy time",
        ["stage", "busy ms", "items"],
        [
            (stage, telemetry.stage_busy_seconds(stage) * 1e3,
             len(telemetry.spans(stage)))
            for stage in telemetry.stages
        ],
    )
