"""Ablation: W-stacking planes vs subgrid size (paper Section IV).

"Larger subgrids (e.g. up to 64 x 64) can be used in connection with
W-stacking to dramatically limit the number of required W-planes."  On a
wide-field workload where w-terms genuinely alias, this bench sweeps the
(subgrid size, w planes) grid and reports degridding accuracy plus the
W-stacking memory cost — the two axes of the paper's trade.
"""

import numpy as np
import pytest
from _util import print_series

from repro.core.pipeline import IDG, IDGConfig
from repro.core.wstack import WStackedIDG
from repro.kernels.wkernel import required_w_planes
from repro.sky.model import SkyModel
from repro.sky.simulate import predict_visibilities
from repro.telescope.observation import ska1_low_observation


@pytest.fixture(scope="module")
def wide_field():
    obs = ska1_low_observation(
        n_stations=12, n_times=32, n_channels=4,
        integration_time_s=300.0, max_radius_m=600.0, seed=3,
    )
    gs = obs.fitting_gridspec(512)
    dl = gs.pixel_scale
    l0 = round(0.25 * gs.image_size / dl) * dl
    m0 = round(0.20 * gs.image_size / dl) * dl
    sky = SkyModel.single(l0, m0, flux=1.0)
    bl = obs.array.baselines()
    vis = predict_visibilities(obs.uvw_m, obs.frequencies_hz, sky, baselines=bl)
    g = gs.grid_size
    model = np.zeros((4, g, g), dtype=np.complex128)
    model[0, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = 1.0
    model[3, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = 1.0
    return obs, gs, bl, vis, model


def _rms(obs, gs, bl, vis, model, subgrid, planes):
    idg = IDG(gs, IDGConfig(subgrid_size=subgrid,
                            kernel_support=max(2, subgrid // 4), time_max=8))
    ws = WStackedIDG(idg, n_planes=planes)
    layers = ws.make_layers(obs.uvw_m, obs.frequencies_hz, bl)
    pred = ws.predict(model, layers, obs.uvw_m)
    covered = np.zeros(vis.shape[:3], bool)
    for layer in layers:
        for item in layer.plan:
            covered[item.baseline, item.time_start:item.time_end,
                    item.channel_start:item.channel_end] = True
    sel = covered[..., None, None] & np.ones_like(vis, bool)
    scale = np.sqrt((np.abs(vis[sel]) ** 2).mean())
    return np.sqrt((np.abs(pred[sel] - vis[sel]) ** 2).mean()) / scale, ws


def test_ablation_wstacking(benchmark, wide_field):
    obs, gs, bl, vis, model = wide_field
    combos = [(16, 1), (16, 4), (16, 16), (48, 1), (48, 2)]

    results = benchmark(
        lambda: {
            (n, p): _rms(obs, gs, bl, vis, model, n, p) for (n, p) in combos
        }
    )
    rows = []
    for (n, p), (rms, ws) in results.items():
        rows.append((n, p, rms, ws.memory_bytes() / 1e6))
    print_series(
        "Ablation: W-stacking planes x subgrid size (wide field)",
        ["subgrid N", "w planes", "degrid rel rms", "grid-copy MB"],
        rows,
    )

    rms = {k: v[0] for k, v in results.items()}
    # more planes rescue a small subgrid
    assert rms[(16, 16)] < rms[(16, 1)] / 5
    # a large subgrid needs far fewer planes for comparable accuracy
    assert rms[(48, 2)] < 3 * rms[(16, 16)]
    # analytic plane-count estimate agrees in direction: larger support
    # budget -> fewer required planes
    w_max = obs.max_w_wavelengths()
    assert required_w_planes(w_max, gs.image_size, max_support=12) <= \
        required_w_planes(w_max, gs.image_size, max_support=4)
