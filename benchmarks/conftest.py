"""Shared benchmark workload: the Section VI-A data set, scaled.

The paper's set (150 stations, T = 8192, C = 16, 2048^2 grid, 24^2 subgrids)
holds ~1.5e9 visibilities; the scaled default (~1e6 visibilities) keeps one
full benchmark run under a few minutes while preserving the quantities the
figures depend on: channel count, subgrid size/occupancy, A-term cadence and
uv-coverage shape.  Per-visibility metrics converge long before full size
(DESIGN.md, substitutions).

Scale up with ``REPRO_BENCH_SCALE`` (1 = default, 2 = ~4x more data, ...).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.aterms.schedule import ATermSchedule
from repro.core.pipeline import IDG, IDGConfig
from repro.sky.sources import random_sky
from repro.sky.simulate import predict_visibilities
from repro.telescope.observation import ska1_low_observation

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "1"))


@pytest.fixture(scope="session")
def bench_obs():
    """Scaled Section VI-A observation (same structure, fewer samples)."""
    return ska1_low_observation(
        n_stations=20 * min(SCALE, 4),
        n_times=128 * SCALE,
        n_channels=16,
        integration_time_s=max(4.0 // SCALE, 1.0),
        max_radius_m=10_000.0,
        seed=0,
    )


@pytest.fixture(scope="session")
def bench_gridspec(bench_obs):
    # the paper uses a 2048^2 grid
    return bench_obs.fitting_gridspec(2048)


@pytest.fixture(scope="session")
def bench_idg(bench_gridspec):
    # paper parameters: 24x24 subgrids; A-terms updated every 256 timesteps
    return IDG(bench_gridspec, IDGConfig(subgrid_size=24, kernel_support=8,
                                         time_max=128))


@pytest.fixture(scope="session")
def bench_schedule():
    return ATermSchedule(256)


@pytest.fixture(scope="session")
def bench_plan(bench_idg, bench_obs, bench_schedule):
    return bench_idg.make_plan(
        bench_obs.uvw_m, bench_obs.frequencies_hz, bench_obs.array.baselines(),
        aterm_schedule=bench_schedule,
    )


@pytest.fixture(scope="session")
def bench_vis(bench_obs, bench_gridspec):
    """Simulated visibilities of a small random field (oracle-predicted)."""
    sky = random_sky(3, bench_gridspec.image_size, fill_factor=0.4,
                     flux_range=(1.0, 5.0), seed=1)
    return predict_visibilities(
        bench_obs.uvw_m, bench_obs.frequencies_hz, sky,
        baselines=bench_obs.array.baselines(),
    )
