"""Fig 14: energy distribution of one imaging cycle.

Modelled energy per kernel (runtime x measured-equivalent power, host
package+DRAM added for the GPUs as in the paper's measurement setup).
Pinned shapes: most energy in the gridder/degridder; GPUs an order of
magnitude more energy-frugal than the CPU even counting the host.
"""

from _util import print_series

from repro.perfmodel.architectures import ALL_ARCHITECTURES
from repro.perfmodel.energy import imaging_cycle_energy


def test_fig14_energy_distribution(benchmark, bench_plan):
    cycles = benchmark(
        lambda: {a.name: imaging_cycle_energy(a, bench_plan)
                 for a in ALL_ARCHITECTURES}
    )
    rows = []
    for name, cycle in cycles.items():
        rows.append(
            (
                name,
                cycle.total_joules,
                cycle.fraction("gridder"),
                cycle.fraction("degridder"),
                cycle.fraction("subgrid-fft"),
                cycle.host_joules,
            )
        )
    print_series(
        "Fig 14: one imaging cycle, modelled energy split",
        ["arch", "total J", "gridder", "degridder", "subgrid FFTs", "host J"],
        rows,
    )

    e = {name: c.total_joules for name, c in cycles.items()}
    assert e["HASWELL"] / e["PASCAL"] > 8
    assert e["HASWELL"] / e["FIJI"] > 5
    for cycle in cycles.values():
        assert cycle.fraction("gridder") + cycle.fraction("degridder") > 0.9
    assert cycles["HASWELL"].host_joules == 0
    assert cycles["PASCAL"].host_joules > 0
