"""Property-based tests: performance-model and scheduler invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.spheroidal import evaluate_prolate_spheroidal
from repro.kernels.wkernel import n_term
from repro.parallel.batching import chunk_ranges
from repro.perfmodel.architectures import ALL_ARCHITECTURES
from repro.perfmodel.sincos import mixed_throughput_ops
from repro.perfmodel.streams import schedule_buffers, serial_makespan

durations = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
job_lists = st.lists(st.tuples(durations, durations, durations), min_size=0, max_size=20)


@given(job_lists, st.integers(min_value=1, max_value=6))
@settings(max_examples=50, deadline=None)
def test_schedule_bounded_by_serial_and_busiest_stream(jobs, n_buffers):
    sched = schedule_buffers(jobs, n_buffers=n_buffers)
    serial = serial_makespan(jobs)
    assert sched.makespan <= serial + 1e-9
    for stage in ("htod", "compute", "dtoh"):
        assert sched.makespan >= sched.busy_time(stage) - 1e-9


@given(job_lists)
@settings(max_examples=50, deadline=None)
def test_more_buffers_never_slower(jobs):
    previous = float("inf")
    for buffers in (1, 2, 3, 4):
        makespan = schedule_buffers(jobs, n_buffers=buffers).makespan
        assert makespan <= previous + 1e-9
        previous = makespan


@given(job_lists, st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_streams_serialised(jobs, n_buffers):
    sched = schedule_buffers(jobs, n_buffers=n_buffers)
    for stage in ("htod", "compute", "dtoh"):
        events = sorted(sched.stream(stage), key=lambda e: e.start)
        for a, b in zip(events, events[1:]):
            assert a.end <= b.start + 1e-9


@given(
    st.floats(min_value=0.0, max_value=500.0),
    st.floats(min_value=0.0, max_value=500.0),
)
@settings(max_examples=50, deadline=None)
def test_sincos_throughput_monotone(rho_a, rho_b):
    lo, hi = sorted((rho_a, rho_b))
    for arch in ALL_ARCHITECTURES:
        # relative tolerance: the min() against peak_ops introduces sub-ulp
        # wobble between algebraically equal expressions
        assert mixed_throughput_ops(arch, lo) <= mixed_throughput_ops(arch, hi) * (1 + 1e-9)


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=64))
@settings(max_examples=50, deadline=None)
def test_chunk_ranges_exact_partition(total, n_chunks):
    ranges = chunk_ranges(total, n_chunks)
    covered = []
    for a, b in ranges:
        assert a < b
        covered.extend(range(a, b))
    assert covered == list(range(total))
    if ranges:
        sizes = [b - a for a, b in ranges]
        assert max(sizes) - min(sizes) <= 1


@given(st.floats(min_value=-0.7, max_value=0.7), st.floats(min_value=-0.7, max_value=0.7))
@settings(max_examples=50, deadline=None)
def test_n_term_bounds_and_symmetry(l, m):
    n = n_term(l, m)
    assert 0.0 <= n <= 1.0
    np.testing.assert_allclose(n_term(-l, -m), n)
    np.testing.assert_allclose(n_term(m, l), n)


@given(st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=50, deadline=None)
def test_spheroidal_range(nu):
    val = evaluate_prolate_spheroidal(np.array([nu]))[0]
    assert -1e-12 <= val <= 1.0 + 1e-9
