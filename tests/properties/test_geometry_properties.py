"""Property-based tests: grid geometry and uvw synthesis invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridspec import GridSpec
from repro.telescope.uvw import enu_to_equatorial, synthesize_uvw

grid_sizes = st.integers(min_value=2, max_value=512).map(lambda n: 2 * n)
image_sizes = st.floats(min_value=1e-4, max_value=1.5)


@given(grid_sizes, image_sizes)
@settings(max_examples=50, deadline=None)
def test_uv_pixel_roundtrip_everywhere(grid_size, image_size):
    gs = GridSpec(grid_size=grid_size, image_size=image_size)
    rng = np.random.default_rng(grid_size)
    u = rng.uniform(-gs.max_uv, gs.max_uv, 16)
    v = rng.uniform(-gs.max_uv, gs.max_uv, 16)
    pu, pv = gs.uv_to_pixel(u, v)
    u2, v2 = gs.pixel_to_uv(pu, pv)
    np.testing.assert_allclose(u2, u, rtol=1e-9, atol=1e-9 * gs.cell_size)
    np.testing.assert_allclose(v2, v, rtol=1e-9, atol=1e-9 * gs.cell_size)


@given(grid_sizes, image_sizes)
@settings(max_examples=50, deadline=None)
def test_resolution_relation(grid_size, image_size):
    """du * dl = 1/G — the relation the centered FFT pair assumes."""
    gs = GridSpec(grid_size=grid_size, image_size=image_size)
    assert abs(gs.cell_size * gs.pixel_scale * grid_size - 1.0) < 1e-9


@given(
    st.floats(min_value=-np.pi / 2, max_value=np.pi / 2),
    st.floats(min_value=-np.pi, max_value=np.pi),
    st.floats(min_value=-1.4, max_value=1.4),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_uvw_norm_invariant(latitude, hour_angle, declination, seed):
    """The uvw rotation is orthogonal: baseline lengths never change,
    whatever the pointing."""
    rng = np.random.default_rng(seed)
    enu = rng.standard_normal((8, 3)) * 1e4
    bvec = enu_to_equatorial(enu, latitude)
    uvw = synthesize_uvw(bvec, np.array([hour_angle]), declination)
    np.testing.assert_allclose(
        np.linalg.norm(uvw[:, 0, :], axis=1),
        np.linalg.norm(enu, axis=1),
        rtol=1e-9,
    )


@given(
    st.floats(min_value=-1.4, max_value=1.4),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_uvw_antisymmetric_in_baseline(declination, seed):
    """Swapping a baseline's stations negates its uvw at every hour angle."""
    rng = np.random.default_rng(seed)
    bvec = rng.standard_normal((4, 3)) * 5e3
    ha = np.linspace(-0.5, 0.5, 5)
    forward = synthesize_uvw(bvec, ha, declination)
    backward = synthesize_uvw(-bvec, ha, declination)
    np.testing.assert_allclose(backward, -forward, atol=1e-9)


@given(grid_sizes, image_sizes, st.integers(min_value=0, max_value=1000))
@settings(max_examples=50, deadline=None)
def test_contains_uv_consistent_with_pixel_bounds(grid_size, image_size, seed):
    gs = GridSpec(grid_size=grid_size, image_size=image_size)
    rng = np.random.default_rng(seed)
    u = rng.uniform(-1.5 * gs.max_uv, 1.5 * gs.max_uv, 32)
    v = rng.uniform(-1.5 * gs.max_uv, 1.5 * gs.max_uv, 32)
    inside = gs.contains_uv(u, v)
    pu, pv = gs.uv_to_pixel(u, v)
    expected = (pu >= 0) & (pu <= grid_size - 1) & (pv >= 0) & (pv <= grid_size - 1)
    np.testing.assert_array_equal(inside, expected)
