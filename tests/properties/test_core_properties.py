"""Property-based tests: IDG core invariants (adjointness, plan coverage)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.degridder import degridder_subgrid
from repro.core.gridder import gridder_subgrid, subgrid_lmn
from repro.core.plan import Plan
from repro.gridspec import GridSpec
from repro.kernels.spheroidal import spheroidal_taper
from repro.telescope.array import StationArray, baseline_pairs
from repro.telescope.layouts import random_disc_layout
from repro.telescope.observation import Observation


@given(
    n=st.sampled_from([4, 8, 12]),
    m=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_gridder_degridder_adjoint_property(n, m, seed):
    """<gridder(V), S> == <V, degridder(S)> for arbitrary sizes/uvw."""
    rng = np.random.default_rng(seed)
    lmn = subgrid_lmn(n, 0.08)
    taper = spheroidal_taper(n)
    uvw = rng.standard_normal((m, 3)) * 15.0
    vis = (rng.standard_normal((m, 2, 2)) + 1j * rng.standard_normal((m, 2, 2))).astype(
        np.complex64
    )
    sub = (rng.standard_normal((n, n, 2, 2)) + 1j * rng.standard_normal((n, n, 2, 2))).astype(
        np.complex64
    )
    lhs = np.vdot(gridder_subgrid(vis, uvw, lmn, taper).astype(np.complex128), sub)
    rhs = np.vdot(vis, degridder_subgrid(sub, uvw, lmn, taper).astype(np.complex128))
    scale = max(abs(lhs), abs(rhs), 1.0)
    assert abs(lhs - rhs) / scale < 2e-3


@given(
    n_stations=st.integers(min_value=3, max_value=8),
    n_times=st.integers(min_value=2, max_value=24),
    n_channels=st.integers(min_value=1, max_value=6),
    subgrid_size=st.sampled_from([8, 16, 24]),
    time_max=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_plan_covers_each_visibility_exactly_once(
    n_stations, n_times, n_channels, subgrid_size, time_max, seed
):
    """For arbitrary observations, every visibility is covered exactly once
    or flagged — the fundamental plan correctness invariant."""
    array = StationArray(positions_enu=random_disc_layout(n_stations, 3000.0, seed=seed))
    obs = Observation(
        array=array,
        n_times=n_times,
        integration_time_s=60.0,
        frequencies_hz=140e6 + 1e6 * np.arange(n_channels),
    )
    gridspec = obs.fitting_gridspec(128)
    plan = Plan.create(
        obs.uvw_m, obs.frequencies_hz, array.baselines(), gridspec,
        subgrid_size=subgrid_size,
        kernel_support=min(4, subgrid_size - 2),
        time_max=time_max,
    )
    count = np.zeros((array.n_baselines, n_times, n_channels), dtype=int)
    for item in plan:
        count[
            item.baseline, item.time_start : item.time_end,
            item.channel_start : item.channel_end,
        ] += 1
    assert np.all((count == 1) | plan.flagged)
    assert not np.any((count > 0) & plan.flagged)
    # subgrids stay on the master grid
    for row in plan.items:
        assert 0 <= row["corner_u"] <= gridspec.grid_size - subgrid_size
        assert 0 <= row["corner_v"] <= gridspec.grid_size - subgrid_size
    # time_max honoured
    assert all(item.n_times <= time_max for item in plan)


@given(
    n=st.sampled_from([8, 16]),
    m=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    scale=st.floats(min_value=0.1, max_value=5.0),
)
@settings(max_examples=25, deadline=None)
def test_gridder_scaling_homogeneity(n, m, seed, scale):
    """gridder(c * V) == c * gridder(V)."""
    rng = np.random.default_rng(seed)
    lmn = subgrid_lmn(n, 0.08)
    taper = spheroidal_taper(n)
    uvw = rng.standard_normal((m, 3)) * 10.0
    vis = (rng.standard_normal((m, 2, 2)) + 1j * rng.standard_normal((m, 2, 2))).astype(
        np.complex64
    )
    a = gridder_subgrid((scale * vis).astype(np.complex64), uvw, lmn, taper)
    b = gridder_subgrid(vis, uvw, lmn, taper)
    np.testing.assert_allclose(
        a.astype(np.complex128), scale * b.astype(np.complex128), rtol=1e-3, atol=1e-4
    )
