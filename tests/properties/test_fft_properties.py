"""Property-based tests: centered FFT invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.fft import centered_fft2, centered_ifft2


complex_arrays = st.integers(min_value=2, max_value=16).flatmap(
    lambda n: st.tuples(st.just(n), st.integers(min_value=0, max_value=2**31 - 1))
)


def _random_array(n, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((2 * n, 2 * n)) + 1j * rng.standard_normal((2 * n, 2 * n))


@given(complex_arrays)
@settings(max_examples=30, deadline=None)
def test_roundtrip_is_identity(params):
    n, seed = params
    a = _random_array(n, seed)
    np.testing.assert_allclose(centered_ifft2(centered_fft2(a)), a, atol=1e-10)


@given(complex_arrays)
@settings(max_examples=30, deadline=None)
def test_parseval(params):
    """||F x||^2 == N^2 ||x||^2 for the unnormalised forward transform."""
    n, seed = params
    a = _random_array(n, seed)
    lhs = (np.abs(centered_fft2(a)) ** 2).sum()
    rhs = a.size * (np.abs(a) ** 2).sum()
    np.testing.assert_allclose(lhs, rhs, rtol=1e-10)


@given(complex_arrays)
@settings(max_examples=30, deadline=None)
def test_linearity(params):
    n, seed = params
    a = _random_array(n, seed)
    b = _random_array(n, seed + 1)
    np.testing.assert_allclose(
        centered_fft2(2.0 * a - 1.5j * b),
        2.0 * centered_fft2(a) - 1.5j * centered_fft2(b),
        atol=1e-9,
    )


@given(complex_arrays)
@settings(max_examples=30, deadline=None)
def test_adjoint_identity(params):
    """<F x, y> == <x, F^H y> with F^H = N^2 * centered_ifft2."""
    n, seed = params
    x = _random_array(n, seed)
    y = _random_array(n, seed + 7)
    lhs = np.vdot(centered_fft2(x), y)
    rhs = np.vdot(x, x.size * centered_ifft2(y))
    np.testing.assert_allclose(lhs, rhs, rtol=1e-9)
