"""Property-based tests: Jones algebra invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.aterms.jones import (
    apply_adjoint_sandwich,
    apply_sandwich,
    frobenius_norm,
    hermitian,
    identity_jones,
    jones_inverse,
    jones_multiply,
)

finite = st.floats(min_value=-10, max_value=10, allow_nan=False)
jones_matrix = hnp.arrays(
    np.complex128, (2, 2),
    elements=st.builds(complex, finite, finite),
)


@given(jones_matrix, jones_matrix, jones_matrix)
@settings(max_examples=50, deadline=None)
def test_multiply_associative(a, b, c):
    np.testing.assert_allclose(
        jones_multiply(jones_multiply(a, b), c),
        jones_multiply(a, jones_multiply(b, c)),
        atol=1e-8,
    )


@given(jones_matrix)
@settings(max_examples=50, deadline=None)
def test_identity_neutral(a):
    eye = identity_jones()
    np.testing.assert_allclose(jones_multiply(eye, a), a)
    np.testing.assert_allclose(jones_multiply(a, eye), a)


@given(jones_matrix)
@settings(max_examples=50, deadline=None)
def test_hermitian_involution(a):
    np.testing.assert_allclose(hermitian(hermitian(a)), a)


@given(jones_matrix)
@settings(max_examples=50, deadline=None)
def test_inverse_roundtrip(a):
    det = a[0, 0] * a[1, 1] - a[0, 1] * a[1, 0]
    assume(abs(det) > 1e-6)
    np.testing.assert_allclose(
        jones_multiply(a, jones_inverse(a)), np.eye(2), atol=1e-6
    )


@given(jones_matrix, jones_matrix, jones_matrix, jones_matrix)
@settings(max_examples=50, deadline=None)
def test_sandwich_adjoint_pair(a_p, a_q, x, y):
    """<A_p X A_q^H, Y> == <X, A_p^H Y A_q>: gridding is degridding's
    adjoint at the Jones level."""
    lhs = np.vdot(apply_sandwich(a_p, x, a_q), y)
    rhs = np.vdot(x, apply_adjoint_sandwich(a_p, y, a_q))
    np.testing.assert_allclose(lhs, rhs, atol=1e-6 * (1 + abs(lhs)))


@given(jones_matrix)
@settings(max_examples=50, deadline=None)
def test_hermitian_preserves_norm(a):
    np.testing.assert_allclose(frobenius_norm(a), frobenius_norm(hermitian(a)))


@given(jones_matrix, jones_matrix)
@settings(max_examples=50, deadline=None)
def test_norm_submultiplicative(a, b):
    assert frobenius_norm(jones_multiply(a, b)) <= (
        frobenius_norm(a) * frobenius_norm(b) + 1e-9
    )
