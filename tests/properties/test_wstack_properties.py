"""Property-based tests: W-stacking layer partition invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import Plan
from repro.core.wstack import item_mean_w, split_plan_by_w
from repro.telescope.array import StationArray
from repro.telescope.layouts import random_disc_layout
from repro.telescope.observation import Observation


def _plan_for(seed: int, n_stations: int, n_times: int):
    array = StationArray(positions_enu=random_disc_layout(n_stations, 3000.0, seed=seed))
    obs = Observation(
        array=array, n_times=n_times, integration_time_s=120.0,
        frequencies_hz=140e6 + 1e6 * np.arange(3),
    )
    gridspec = obs.fitting_gridspec(128)
    plan = Plan.create(
        obs.uvw_m, obs.frequencies_hz, array.baselines(), gridspec,
        subgrid_size=16, kernel_support=4, time_max=8,
    )
    return plan, obs


@given(
    seed=st.integers(min_value=0, max_value=500),
    n_stations=st.integers(min_value=3, max_value=7),
    n_times=st.integers(min_value=4, max_value=20),
    n_planes=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=20, deadline=None)
def test_layers_partition_items_for_any_plan(seed, n_stations, n_times, n_planes):
    plan, obs = _plan_for(seed, n_stations, n_times)
    layers = split_plan_by_w(plan, obs.uvw_m, n_planes)
    # partition: every item in exactly one layer
    assert sum(layer.plan.n_subgrids for layer in layers) == plan.n_subgrids
    assert 1 <= len(layers) <= n_planes
    # layer w offsets are distinct and sorted-compatible with centres
    centres = [layer.w_centre for layer in layers]
    assert len(set(centres)) == len(centres)
    # every item is assigned to its nearest centre
    all_centres = np.array(centres)
    for layer in layers:
        w_items = item_mean_w(layer.plan, obs.uvw_m)
        for w in w_items:
            nearest = np.abs(w - all_centres).min()
            assert abs(w - layer.w_centre) <= nearest + 1e-9


@given(
    seed=st.integers(min_value=0, max_value=500),
    n_planes=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=15, deadline=None)
def test_layer_residual_w_shrinks_with_planes(seed, n_planes):
    """The per-layer residual |w - w_centre| is bounded by half the layer
    spacing — the quantity that controls W-stacking accuracy."""
    plan, obs = _plan_for(seed, 6, 12)
    layers = split_plan_by_w(plan, obs.uvw_m, n_planes)
    w_all = item_mean_w(plan, obs.uvw_m)
    w_range = w_all.max() - w_all.min()
    if n_planes == 1 or w_range == 0:
        return
    spacing = w_range / (n_planes - 1)
    for layer in layers:
        residual = np.abs(item_mean_w(layer.plan, obs.uvw_m) - layer.w_centre)
        assert residual.max() <= spacing / 2 + 1e-6
