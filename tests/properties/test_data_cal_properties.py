"""Property-based tests: dataset algebra and calibration invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration.gains import apply_gains, corrupt_with_gains, random_gains
from repro.calibration.stefcal import stefcal
from repro.data.dataset import VisibilityDataset
from repro.telescope.array import baseline_pairs


def _random_dataset(n_st, n_times, n_chan, seed):
    rng = np.random.default_rng(seed)
    baselines = baseline_pairs(n_st)
    n_bl = len(baselines)
    uvw = rng.standard_normal((n_bl, n_times, 3)) * 500
    vis = (
        rng.standard_normal((n_bl, n_times, n_chan, 2, 2))
        + 1j * rng.standard_normal((n_bl, n_times, n_chan, 2, 2))
    ).astype(np.complex64)
    return VisibilityDataset(
        uvw_m=uvw, visibilities=vis,
        frequencies_hz=100e6 + 1e6 * np.arange(n_chan), baselines=baselines,
    )


@given(
    n_st=st.integers(min_value=3, max_value=8),
    n_times=st.integers(min_value=2, max_value=12),
    n_chan=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_selection_composition(n_st, n_times, n_chan, seed):
    """Selecting twice equals selecting the composed range."""
    ds = _random_dataset(n_st, n_times, n_chan, seed)
    if n_times >= 4:
        a = ds.select_times(1, n_times - 1).select_times(0, 2)
        b = ds.select_times(1, 3)
        np.testing.assert_array_equal(a.visibilities, b.visibilities)
        np.testing.assert_array_equal(a.uvw_m, b.uvw_m)


@given(
    n_st=st.integers(min_value=3, max_value=6),
    n_times=st.sampled_from([4, 8, 12]),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_time_averaging_preserves_total_flux(n_st, n_times, seed):
    """Unflagged averaging preserves the (weighted) visibility sum."""
    ds = _random_dataset(n_st, n_times, 2, seed)
    avg = ds.average_times(2)
    np.testing.assert_allclose(
        avg.visibilities.sum() * 2, ds.visibilities.sum(), rtol=1e-4, atol=1e-3
    )


@given(
    n_st=st.integers(min_value=3, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
    amp=st.floats(min_value=0.01, max_value=0.4),
    phase=st.floats(min_value=0.0, max_value=1.5),
)
@settings(max_examples=25, deadline=None)
def test_corrupt_apply_roundtrip(n_st, seed, amp, phase):
    ds = _random_dataset(n_st, 3, 2, seed)
    gains = random_gains(n_st, amplitude_rms=amp, phase_rms_rad=phase, seed=seed)
    corrupted = corrupt_with_gains(ds.visibilities, gains, ds.baselines)
    restored = apply_gains(corrupted, gains, ds.baselines)
    np.testing.assert_allclose(restored, ds.visibilities, rtol=1e-3, atol=1e-4)


@given(
    n_st=st.integers(min_value=4, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=15, deadline=None)
def test_stefcal_recovers_random_gains(n_st, seed):
    """For any well-conditioned random problem, StEFCal recovers the gains
    up to a global phase."""
    ds = _random_dataset(n_st, 4, 2, seed)
    truth = random_gains(n_st, amplitude_rms=0.2, phase_rms_rad=0.8, seed=seed + 1)
    corrupted = corrupt_with_gains(ds.visibilities, truth, ds.baselines)
    result = stefcal(corrupted, ds.visibilities, ds.baselines, n_stations=n_st)
    solved = result.gains[0]
    phase_align = np.exp(-1j * np.angle(np.vdot(truth, solved)))
    assert np.abs(solved * phase_align - truth).max() < 1e-3


@given(
    n_st=st.integers(min_value=3, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_corruption_preserves_closure_phase(n_st, seed):
    """Station-based gains cancel in the closure phase
    V_pq V_qr V_rp-conjugate triple product — the classic interferometric
    invariant."""
    ds = _random_dataset(n_st, 1, 1, seed)
    gains = random_gains(n_st, amplitude_rms=0.3, phase_rms_rad=1.2, seed=seed)
    corrupted = corrupt_with_gains(ds.visibilities, gains, ds.baselines)

    # pick the triangle of stations 0, 1, 2
    index = {tuple(pair): k for k, pair in enumerate(map(tuple, ds.baselines))}
    v01 = ds.visibilities[index[(0, 1)], 0, 0, 0, 0]
    v12 = ds.visibilities[index[(1, 2)], 0, 0, 0, 0]
    v02 = ds.visibilities[index[(0, 2)], 0, 0, 0, 0]
    c01 = corrupted[index[(0, 1)], 0, 0, 0, 0]
    c12 = corrupted[index[(1, 2)], 0, 0, 0, 0]
    c02 = corrupted[index[(0, 2)], 0, 0, 0, 0]
    closure_true = np.angle(v01 * v12 * np.conj(v02))
    closure_corrupt = np.angle(c01 * c12 * np.conj(c02))
    assert abs(np.angle(np.exp(1j * (closure_true - closure_corrupt)))) < 1e-4
