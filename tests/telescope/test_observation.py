"""Unit tests for :mod:`repro.telescope.observation`."""

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.telescope.observation import (
    Observation,
    ska1_low_observation,
    subband_frequencies,
)
from repro.telescope.array import StationArray
from repro.telescope.layouts import random_disc_layout


def test_subband_frequencies_defaults():
    f = subband_frequencies()
    assert f.shape == (16,)
    assert f[0] == pytest.approx(150e6)
    np.testing.assert_allclose(np.diff(f), 200e3)


def test_subband_frequencies_validation():
    with pytest.raises(ValueError):
        subband_frequencies(n_channels=0)


def test_ska1_low_defaults_match_paper():
    obs = ska1_low_observation()  # full-size config object (lazy uvw)
    assert obs.array.n_stations == 150
    assert obs.n_baselines == 11_175
    assert obs.n_times == 8192
    assert obs.n_channels == 16
    assert obs.integration_time_s == 1.0
    assert obs.n_visibilities == 11_175 * 8192 * 16


def test_uvw_shape_and_caching(small_obs):
    uvw = small_obs.uvw_m
    assert uvw.shape == (small_obs.n_baselines, small_obs.n_times, 3)
    assert small_obs.uvw_m is uvw  # cached_property


def test_uvw_wavelengths_scaling(small_obs):
    wl0 = small_obs.uvw_wavelengths(0)
    c_last = small_obs.n_channels - 1
    wl1 = small_obs.uvw_wavelengths(c_last)
    ratio = small_obs.frequencies_hz[c_last] / small_obs.frequencies_hz[0]
    np.testing.assert_allclose(wl1, wl0 * ratio, rtol=1e-12)
    np.testing.assert_allclose(
        wl0, small_obs.uvw_m * small_obs.frequencies_hz[0] / SPEED_OF_LIGHT
    )


def test_max_uv_bounds_actual_coordinates(small_obs):
    max_uv = small_obs.max_uv_wavelengths()
    wl = small_obs.uvw_wavelengths(small_obs.n_channels - 1)
    assert np.sqrt((wl[:, :, :2] ** 2).sum(axis=2)).max() <= max_uv + 1e-9


def test_fitting_gridspec_contains_all_uv(small_obs):
    gs = small_obs.fitting_gridspec(256)
    for c in range(small_obs.n_channels):
        wl = small_obs.uvw_wavelengths(c)
        inside = gs.contains_uv(wl[:, :, 0].ravel(), wl[:, :, 1].ravel())
        assert inside.all()


def test_fitting_gridspec_fill_factor(small_obs):
    tight = small_obs.fitting_gridspec(256, fill_factor=0.99)
    loose = small_obs.fitting_gridspec(256, fill_factor=0.5)
    # looser fill -> smaller image -> larger uv cell -> more headroom
    assert loose.image_size < tight.image_size


def test_observation_validation():
    array = StationArray(positions_enu=random_disc_layout(4, seed=0))
    with pytest.raises(ValueError):
        Observation(array=array, n_times=0, integration_time_s=1.0, frequencies_hz=[1e8])
    with pytest.raises(ValueError):
        Observation(array=array, n_times=4, integration_time_s=0.0, frequencies_hz=[1e8])
    with pytest.raises(ValueError):
        Observation(array=array, n_times=4, integration_time_s=1.0, frequencies_hz=[])
    with pytest.raises(ValueError):
        Observation(array=array, n_times=4, integration_time_s=1.0, frequencies_hz=[-1.0])


def test_uvw_tracks_move_with_time(small_obs):
    """Earth rotation: consecutive timesteps give different uv points."""
    uvw = small_obs.uvw_m
    step = np.abs(np.diff(uvw[:, :, :2], axis=1))
    assert step.max() > 0
