"""Unit tests for station layout generators."""

import numpy as np
import pytest

from repro.telescope.layouts import (
    lofar_like_layout,
    random_disc_layout,
    ska1_low_like_layout,
    vla_like_layout,
)


def test_ska1_low_station_count_and_shape():
    pos = ska1_low_like_layout(n_stations=150)
    assert pos.shape == (150, 3)
    assert np.all(pos[:, 2] == 0.0)  # coplanar ENU


def test_ska1_low_deterministic_per_seed():
    a = ska1_low_like_layout(n_stations=60, seed=7)
    b = ska1_low_like_layout(n_stations=60, seed=7)
    np.testing.assert_array_equal(a, b)
    c = ska1_low_like_layout(n_stations=60, seed=8)
    assert np.abs(a - c).max() > 0


def test_ska1_low_core_and_arms_structure():
    """Roughly half the stations must sit in the dense core; arm stations
    must reach close to the maximum radius."""
    pos = ska1_low_like_layout(n_stations=150, core_radius_m=500.0, max_radius_m=40_000.0)
    r = np.hypot(pos[:, 0], pos[:, 1])
    n_core = (r < 3 * 500.0).sum()
    assert 0.4 * 150 <= n_core <= 0.7 * 150
    assert r.max() > 0.8 * 40_000.0
    assert r.max() < 1.5 * 40_000.0


def test_ska1_low_rejects_too_few():
    with pytest.raises(ValueError):
        ska1_low_like_layout(n_stations=1)


def test_lofar_like_radius_spread():
    pos = lofar_like_layout(n_stations=48, max_radius_m=80_000.0, seed=0)
    r = np.hypot(pos[:, 0], pos[:, 1])
    assert pos.shape == (48, 3)
    assert r.max() < 1.2 * 80_000.0
    # core exists: many stations within a few km
    assert (r < 5_000.0).sum() >= 24


def test_vla_like_three_arms():
    pos = vla_like_layout(n_stations=27)
    assert pos.shape == (27, 3)
    angles = np.arctan2(pos[:, 1], pos[:, 0])
    # three distinct arm azimuths ~120 degrees apart
    hist, _ = np.histogram(np.mod(angles, 2 * np.pi), bins=12)
    assert (hist > 0).sum() <= 5  # stations cluster in few azimuth bins


def test_vla_power_law_spacing():
    pos = vla_like_layout(n_stations=27)
    r = np.sort(np.hypot(pos[:, 0], pos[:, 1]))
    # outermost gaps far exceed innermost gaps (power-law stretch)
    inner_gap = np.diff(r[:5]).mean()
    outer_gap = np.diff(r[-5:]).mean()
    assert outer_gap > 3 * inner_gap


def test_random_disc_inside_radius():
    pos = random_disc_layout(n_stations=100, radius_m=5000.0, seed=3)
    r = np.hypot(pos[:, 0], pos[:, 1])
    assert pos.shape == (100, 3)
    assert r.max() <= 5000.0 + 1e-9
