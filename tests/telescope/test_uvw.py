"""Unit tests for the earth-rotation uvw synthesiser."""

import numpy as np
import pytest

from repro.telescope.uvw import (
    EARTH_ROTATION_RATE,
    enu_to_equatorial,
    hour_angle_range,
    synthesize_uvw,
    uvw_rotation_matrix,
)


def test_rotation_matrix_is_orthonormal():
    rot = uvw_rotation_matrix(0.3, -0.7)
    np.testing.assert_allclose(rot @ rot.T, np.eye(3), atol=1e-12)
    assert np.linalg.det(rot) == pytest.approx(1.0)


def test_uvw_preserves_baseline_length():
    rng = np.random.default_rng(0)
    bvec = rng.standard_normal((10, 3)) * 1000
    uvw = synthesize_uvw(bvec, np.linspace(-0.5, 0.5, 7), declination_rad=-0.6)
    lengths = np.linalg.norm(bvec, axis=1)
    for t in range(7):
        np.testing.assert_allclose(np.linalg.norm(uvw[:, t, :], axis=1), lengths, rtol=1e-12)


def test_east_west_baseline_at_zero_hour_angle():
    """A purely east baseline observed at hour angle 0 has u = East length."""
    enu = np.array([[1000.0, 0.0, 0.0]])
    bvec = enu_to_equatorial(enu, latitude_rad=-0.5)
    uvw = synthesize_uvw(bvec, np.array([0.0]), declination_rad=0.0)
    assert uvw[0, 0, 0] == pytest.approx(1000.0)  # u = east
    assert uvw[0, 0, 2] == pytest.approx(0.0, abs=1e-9)  # w = 0 toward equator at HA 0


def test_pole_observation_no_w_variation():
    """Looking at the celestial pole (dec = +-90 deg), w is constant in time."""
    rng = np.random.default_rng(1)
    bvec = rng.standard_normal((5, 3)) * 500
    uvw = synthesize_uvw(bvec, np.linspace(0, 1, 9), declination_rad=np.pi / 2)
    w = uvw[:, :, 2]
    np.testing.assert_allclose(w, np.broadcast_to(w[:, :1], w.shape), atol=1e-9)


def test_tracks_are_elliptical():
    """Over a full sidereal rotation a baseline's (u, v) track is an ellipse:
    u^2 / a^2 + (v - v0)^2 / b^2 = 1 with b = a sin(dec)."""
    bvec = enu_to_equatorial(np.array([[2000.0, 500.0, 0.0]]), latitude_rad=-0.4)
    dec = -0.8
    ha = np.linspace(0, 2 * np.pi, 360)
    uvw = synthesize_uvw(bvec, ha, declination_rad=dec)
    u, v = uvw[0, :, 0], uvw[0, :, 1]
    # fit: for the standard transform, u^2 + ((v - Z cos)/sin)^2 = X^2+Y^2
    x, y, z = bvec[0]
    radius2 = x * x + y * y
    v0 = z * np.cos(dec)
    lhs = u**2 + ((v - v0) / np.sin(dec)) ** 2
    np.testing.assert_allclose(lhs, radius2, rtol=1e-9)


def test_enu_to_equatorial_zenith_at_pole():
    """At the north pole, 'up' points to the celestial pole (Z)."""
    out = enu_to_equatorial(np.array([[0.0, 0.0, 1.0]]), latitude_rad=np.pi / 2)
    np.testing.assert_allclose(out[0], [0.0, 0.0, 1.0], atol=1e-12)


def test_enu_to_equatorial_preserves_norm():
    rng = np.random.default_rng(2)
    enu = rng.standard_normal((20, 3))
    out = enu_to_equatorial(enu, latitude_rad=-0.47)
    np.testing.assert_allclose(
        np.linalg.norm(out, axis=1), np.linalg.norm(enu, axis=1), rtol=1e-12
    )


def test_hour_angle_range_sidereal_rate():
    ha = hour_angle_range(100, 1.0, start_rad=0.1)
    assert ha[0] == pytest.approx(0.1)
    np.testing.assert_allclose(np.diff(ha), EARTH_ROTATION_RATE, rtol=1e-12)


def test_hour_angle_range_validation():
    with pytest.raises(ValueError):
        hour_angle_range(0, 1.0)


def test_synthesize_uvw_shape_validation():
    with pytest.raises(ValueError):
        synthesize_uvw(np.zeros((3, 2)), np.array([0.0]), 0.0)


def test_synthesize_matches_rotation_matrix_single():
    bvec = np.array([[100.0, -200.0, 300.0]])
    ha, dec = 0.7, -0.3
    uvw = synthesize_uvw(bvec, np.array([ha]), dec)
    expected = uvw_rotation_matrix(ha, dec) @ bvec[0]
    np.testing.assert_allclose(uvw[0, 0], expected, atol=1e-12)
