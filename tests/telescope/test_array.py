"""Unit tests for :mod:`repro.telescope.array`."""

import numpy as np
import pytest

from repro.telescope.array import StationArray, baseline_pairs
from repro.telescope.layouts import random_disc_layout


def test_baseline_pairs_count():
    pairs = baseline_pairs(150)
    assert pairs.shape == (11_175, 2)  # the paper's benchmark count


def test_baseline_pairs_ordering_and_uniqueness():
    pairs = baseline_pairs(10)
    assert np.all(pairs[:, 0] < pairs[:, 1])
    assert len(np.unique(pairs, axis=0)) == len(pairs)


def test_baseline_pairs_rejects_single_station():
    with pytest.raises(ValueError):
        baseline_pairs(1)


@pytest.fixture
def array():
    return StationArray(positions_enu=random_disc_layout(8, seed=0), name="test")


def test_station_array_counts(array):
    assert array.n_stations == 8
    assert array.n_baselines == 28


def test_baseline_vectors_antisymmetry_convention(array):
    """Vector of (p, q) is pos[q] - pos[p]."""
    pairs = array.baselines()
    vecs = array.baseline_vectors_enu()
    k = 5
    p, q = pairs[k]
    np.testing.assert_allclose(
        vecs[k], array.positions_enu[q] - array.positions_enu[p]
    )


def test_max_baseline_positive(array):
    assert array.max_baseline_m() > 0


def test_station_array_validation():
    with pytest.raises(ValueError):
        StationArray(positions_enu=np.zeros((5, 2)))
    with pytest.raises(ValueError):
        StationArray(positions_enu=np.zeros((1, 3)))
    with pytest.raises(ValueError):
        StationArray(positions_enu=np.zeros((5, 3)), latitude_rad=2.0)
