"""Baseline round-trip / stale detection, and CLI exit codes."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.cli import main
from repro.analysis.engine import Violation


def _violation(path: str = "core/mod.py", line: int = 10, code: str = "IDG003",
               snippet: str = "buf = np.zeros(n)") -> Violation:
    return Violation(path=path, line=line, col=9, code=code,
                     message="array allocation inside loop", snippet=snippet)


class TestBaselineFile:
    def test_write_then_load_roundtrip(self, tmp_path: Path) -> None:
        path = tmp_path / "baseline.json"
        write_baseline(path, [_violation()])
        entries = load_baseline(path)
        assert len(entries) == 1
        assert entries[0]["path"] == "core/mod.py"
        assert entries[0]["code"] == "IDG003"
        assert entries[0]["snippet"] == "buf = np.zeros(n)"

    def test_load_rejects_unknown_version(self, tmp_path: Path) -> None:
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)

    def test_matching_ignores_line_numbers(self) -> None:
        entries = [{"path": "core/mod.py", "code": "IDG003",
                    "snippet": "buf = np.zeros(n)", "line": 10}]
        # same line of code drifted 30 lines down: still baselined
        new, stale = apply_baseline([_violation(line=40)], entries)
        assert new == [] and stale == []

    def test_new_violation_not_covered(self) -> None:
        entries = [{"path": "core/mod.py", "code": "IDG003",
                    "snippet": "buf = np.zeros(n)", "line": 10}]
        v = _violation(snippet="other = np.empty(n)")
        new, stale = apply_baseline([v], entries)
        assert new == [v]
        assert len(stale) == 1  # the old entry matched nothing

    def test_multiset_matching_needs_one_entry_per_occurrence(self) -> None:
        entries = [{"path": "core/mod.py", "code": "IDG003",
                    "snippet": "buf = np.zeros(n)"}]
        duplicates = [_violation(line=10), _violation(line=20)]
        new, stale = apply_baseline(duplicates, entries)
        assert len(new) == 1 and stale == []

    def test_stale_entries_reported_when_debt_fixed(self) -> None:
        entries = [{"path": "core/mod.py", "code": "IDG003",
                    "snippet": "buf = np.zeros(n)"}]
        new, stale = apply_baseline([], entries)
        assert new == [] and stale == entries


class TestCli:
    @pytest.fixture()
    def project(self, tmp_path: Path) -> Path:
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "dirty.py").write_text(
            "import numpy as np\n"
            "def f(items: list) -> None:\n"
            "    for item in items:\n"
            "        buf = np.zeros(item)\n"
        )
        return tmp_path

    def test_new_violations_exit_1(self, project: Path, capsys) -> None:
        code = main([str(project / "pkg"), "--root", str(project),
                     "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "pkg/dirty.py:4" in out and "IDG003" in out

    def test_clean_tree_exits_0(self, tmp_path: Path, capsys) -> None:
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "clean.py").write_text("X: int = 1\n")
        code = main([str(pkg), "--root", str(tmp_path), "--no-baseline"])
        assert code == 0
        assert "clean:" in capsys.readouterr().out

    def test_write_baseline_then_rerun_is_clean(self, project: Path, capsys) -> None:
        baseline = project / "idglint-baseline.json"
        assert main([str(project / "pkg"), "--root", str(project),
                     "--write-baseline"]) == 0
        assert baseline.exists()
        capsys.readouterr()
        code = main([str(project / "pkg"), "--root", str(project)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 baselined" in out

    def test_fail_stale_exits_1_after_debt_fixed(self, project: Path, capsys) -> None:
        assert main([str(project / "pkg"), "--root", str(project),
                     "--write-baseline"]) == 0
        (project / "pkg" / "dirty.py").write_text("X: int = 1\n")
        capsys.readouterr()
        assert main([str(project / "pkg"), "--root", str(project)]) == 0
        assert main([str(project / "pkg"), "--root", str(project),
                     "--fail-stale"]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_json_format(self, project: Path, capsys) -> None:
        code = main([str(project / "pkg"), "--root", str(project),
                     "--no-baseline", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["baselined"] == 0
        assert [v["code"] for v in payload["violations"]] == ["IDG003"]

    def test_select_filters_rules(self, project: Path, capsys) -> None:
        code = main([str(project / "pkg"), "--root", str(project),
                     "--no-baseline", "--select", "IDG001"])
        assert code == 0
        assert "clean:" in capsys.readouterr().out

    def test_missing_path_is_usage_error(self, tmp_path: Path, capsys) -> None:
        assert main([str(tmp_path / "nope"), "--no-baseline"]) == 2

    def test_list_rules_prints_catalogue(self, capsys) -> None:
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for idx in range(1, 7):
            assert f"IDG00{idx}" in out
