"""Tier-1 gate: the repo's own source must lint clean against its baseline.

This is the enforcement point for the idglint invariants (dtype policy,
hot-loop hygiene, shape-contract/doc agreement): any new violation in
``src/repro`` fails the suite until fixed or deliberately baselined with
``python -m repro.analysis --write-baseline``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.engine import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "idglint-baseline.json"


def _format(violations) -> str:
    return "\n".join(v.format_text() for v in violations)


def test_repo_source_lints_clean() -> None:
    violations = lint_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
    entries = load_baseline(BASELINE) if BASELINE.exists() else []
    new, stale = apply_baseline(violations, entries)
    assert not new, f"new idglint violations:\n{_format(new)}"
    assert not stale, f"stale baseline entries (fixed debt — prune them): {stale}"


def test_baseline_is_empty() -> None:
    """The repo carries zero grandfathered lint debt; keep it that way."""
    assert load_baseline(BASELINE) == []


def test_cli_entry_point_exits_clean() -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src/repro"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 new violation(s)" in proc.stdout


def test_cli_json_output_parses(tmp_path: Path) -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src/repro",
         "--format", "json"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["violations"] == []
    assert payload["stale_baseline"] == []
