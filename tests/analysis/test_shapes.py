"""Unit tests for the idglint shape grammar (parse / canonicalise / match)."""

from __future__ import annotations

import pytest

from repro.analysis.shapes import (
    ELLIPSIS,
    ShapeSpecError,
    canonical_alternatives,
    format_alternatives,
    match_shape,
    parse_shape_spec,
)


class TestParsing:
    def test_fixed_and_symbolic_dims(self) -> None:
        assert parse_shape_spec("(M, 3)") == [("M", 3)]

    def test_alternatives(self) -> None:
        assert parse_shape_spec("(M, 2, 2) | (M, 4)") == [("M", 2, 2), ("M", 4)]

    def test_power(self) -> None:
        assert parse_shape_spec("(N**2, 3)") == [(("pow", "N", 2), 3)]

    def test_product(self) -> None:
        assert parse_shape_spec("(n_times * n_channels, 3)") == [
            (("mul", "n_times", "n_channels"), 3)
        ]

    def test_leading_ellipsis(self) -> None:
        assert parse_shape_spec("(..., 2, 2)") == [(ELLIPSIS, 2, 2)]

    def test_one_tuple(self) -> None:
        assert parse_shape_spec("(C,)") == [("C",)]

    def test_scalar_shape(self) -> None:
        assert parse_shape_spec("()") == [()]

    @pytest.mark.parametrize(
        "bad",
        ["M, 3", "(M, ..., 2)", "(M, )(", "(M + 3,)", "(2**N,)", "(, 3)"],
    )
    def test_rejects_malformed_specs(self, bad: str) -> None:
        with pytest.raises(ShapeSpecError):
            parse_shape_spec(bad)

    def test_canonical_alternatives_normalise_whitespace(self) -> None:
        assert canonical_alternatives("( M,3 )|( M , 4 )") == canonical_alternatives(
            "(M, 3) | (M, 4)"
        )

    def test_format_roundtrip(self) -> None:
        for spec in ["(M, 3)", "(N**2, 3)", "(a*b, 3)", "(..., 2, 2)", "(C,)"]:
            assert format_alternatives(parse_shape_spec(spec)) == spec


class TestMatching:
    def _match(self, shape, spec, env=None):
        env = {} if env is None else env
        ok = match_shape(shape, parse_shape_spec(spec), env)
        return ok, env

    def test_binds_symbol_on_first_use(self) -> None:
        ok, env = self._match((7, 3), "(M, 3)")
        assert ok and env == {"M": 7}

    def test_symbol_must_stay_consistent(self) -> None:
        env = {"M": 7}
        ok, env = self._match((8, 3), "(M, 3)", env)
        assert not ok

    def test_env_shared_across_calls(self) -> None:
        env: dict[str, int] = {}
        assert match_shape((16, 3), parse_shape_spec("(N**2, 3)"), env)
        assert env == {"N": 4}
        assert match_shape((4, 4), parse_shape_spec("(N, N)"), env)
        assert not match_shape((5, 5), parse_shape_spec("(N, N)"), env)

    def test_power_requires_perfect_root(self) -> None:
        ok, _ = self._match((15, 3), "(N**2, 3)")
        assert not ok

    def test_product_binds_free_symbol(self) -> None:
        env = {"n_times": 3}
        ok, env = self._match((12, 3), "(n_times * n_channels, 3)", env)
        assert ok and env["n_channels"] == 4

    def test_product_requires_divisibility(self) -> None:
        env = {"n_times": 5}
        ok, _ = self._match((12, 3), "(n_times * n_channels, 3)", env)
        assert not ok

    def test_ellipsis_matches_any_leading_axes(self) -> None:
        for shape in [(2, 2), (9, 2, 2), (3, 4, 2, 2)]:
            ok, _ = self._match(shape, "(..., 2, 2)")
            assert ok, shape
        ok, _ = self._match((2,), "(..., 2, 2)")
        assert not ok

    def test_alternatives_first_match_commits(self) -> None:
        ok, env = self._match((5, 4), "(M, 2, 2) | (M, 4)")
        assert ok and env == {"M": 5}

    def test_rank_mismatch_fails(self) -> None:
        ok, _ = self._match((5, 3, 1), "(M, 3)")
        assert not ok

    def test_failed_alternative_does_not_pollute_env(self) -> None:
        env: dict[str, int] = {}
        # first alternative binds M=5 then fails on the 3rd dim; the second
        # alternative must start from a clean copy.
        ok = match_shape((5, 2, 7), parse_shape_spec("(M, 2, 2) | (M, 2, K)"), env)
        assert ok and env == {"M": 5, "K": 7}
