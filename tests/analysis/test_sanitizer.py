"""idgsan runtime sanitizer: seeded-bug corpus and clean-run guarantees.

Every test runs under its own ``sanitized()`` context with a private
:class:`Sanitizer`, so seeded races and deadlocks never pollute the session
sanitizer that ``IDG_SANITIZE=1`` runs install via conftest.  The corpus is
paired: each buggy toy has a correctly-synchronised twin that must produce
zero reports — the false-positive budget of the dynamic half is zero.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import (
    Sanitizer,
    SanitizerError,
    TrackedLock,
    sanitized,
    track_class,
)
from repro.runtime.queues import Channel, CreditGate, PipelineAborted


class Toy:
    """An intentionally unsynchronised shared object (Eraser target)."""

    def __init__(self) -> None:
        self.counter = 0


def _in_thread(fn, name: str = "seeded") -> list[BaseException]:
    """Run ``fn`` on a fresh thread to completion; return raised exceptions."""
    errors: list[BaseException] = []

    def body() -> None:
        try:
            fn()
        except BaseException as exc:  # noqa: B036 — tests inspect the error
            errors.append(exc)

    t = threading.Thread(target=body, name=name, daemon=True)
    t.start()
    t.join(timeout=30.0)
    assert not t.is_alive(), f"thread {name} failed to finish"
    return errors


# ------------------------------------------------------------ Eraser lockset


def test_unlocked_cross_thread_write_is_a_race() -> None:
    with sanitized() as san:
        track_class(Toy)
        toy = Toy()  # exclusive phase: main thread owns every field
        toy.counter = 1
        _in_thread(lambda: setattr(toy, "counter", 2))
        races = [r for r in san.reports if r.kind == "race"]
        assert len(races) == 1
        assert "Toy.counter" in races[0].message
        with pytest.raises(SanitizerError):
            san.raise_if_reports()


def test_race_reported_once_per_field() -> None:
    with sanitized() as san:
        track_class(Toy)
        toy = Toy()
        for i in range(5):
            _in_thread(lambda i=i: setattr(toy, "counter", i))
        assert len([r for r in san.reports if r.kind == "race"]) == 1


def test_common_lock_discipline_is_clean() -> None:
    with sanitized() as san:
        track_class(Toy)
        toy = Toy()
        lock = TrackedLock(san, "toy_lock")

        def locked_bump() -> None:
            with lock:
                toy.counter += 1

        locked_bump()
        _in_thread(locked_bump)
        _in_thread(locked_bump, name="seeded-2")
        assert san.reports == []
        san.raise_if_reports()  # must not raise


def test_single_thread_writes_never_race() -> None:
    with sanitized() as san:
        track_class(Toy)
        toy = Toy()
        for i in range(100):
            toy.counter = i
        assert san.reports == []


# -------------------------------------------------------- deadlock watchdog


def test_ab_ba_deadlock_is_reported_and_aborted() -> None:
    with sanitized(stall_timeout=10.0, watchdog_interval=0.05) as san:
        a = TrackedLock(san, "lock_a")
        b = TrackedLock(san, "lock_b")
        barrier = threading.Barrier(2)
        errors: list[BaseException] = []

        def one(first: TrackedLock, second: TrackedLock) -> None:
            try:
                with first:
                    barrier.wait()
                    with second:
                        pass
            except PipelineAborted as exc:
                errors.append(exc)

        t1 = threading.Thread(target=one, args=(a, b), name="ab", daemon=True)
        t2 = threading.Thread(target=one, args=(b, a), name="ba", daemon=True)
        t1.start()
        t2.start()
        t1.join(timeout=30.0)
        t2.join(timeout=30.0)
        assert not t1.is_alive() and not t2.is_alive(), "watchdog failed to abort"
        deadlocks = [r for r in san.reports if r.kind == "deadlock"]
        assert len(deadlocks) == 1
        # the cycle report names both locks and carries stack traces
        assert "lock_a" in deadlocks[0].message
        assert "lock_b" in deadlocks[0].message
        assert "--- thread" in deadlocks[0].details
        # at least one of the two threads was unblocked by force
        assert errors


def test_channel_stall_is_reported_and_aborted() -> None:
    with sanitized(stall_timeout=0.3, watchdog_interval=0.05) as san:
        chan = Channel(name="stalled", capacity=1)
        chan.put(0)  # fills the channel; nobody will ever get()

        errors = _in_thread(lambda: chan.put(1), name="blocked-producer")

        assert len(errors) == 1 and isinstance(errors[0], PipelineAborted)
        stalls = [r for r in san.reports if r.kind == "deadlock"]
        assert len(stalls) == 1
        assert "blocked-producer" in stalls[0].details


def test_draining_pipeline_does_not_trip_the_watchdog() -> None:
    """Steady progress resets the stall clock even per-op slower than the
    timeout window would allow a single blocked thread."""
    with sanitized(stall_timeout=0.5, watchdog_interval=0.05) as san:
        chan = Channel(name="slow", capacity=1)
        done = threading.Event()

        def consumer() -> None:
            for _ in range(8):
                chan.get()
                time.sleep(0.1)
            done.set()

        errors_c = []
        t = threading.Thread(target=consumer, name="slow-consumer", daemon=True)
        t.start()
        for i in range(8):
            chan.put(i)
        assert done.wait(timeout=10.0)
        t.join(timeout=10.0)
        assert san.reports == []
        assert not errors_c


# ------------------------------------------------------------- arena policy


def test_arena_cross_thread_use_is_reported() -> None:
    from repro.core.scratch import ScratchArena

    with sanitized() as san:
        arena = ScratchArena()
        arena.take("k", (4,), float)
        _in_thread(lambda: arena.take("k", (4,), float))
        assert [r.kind for r in san.reports] == ["arena"]


def test_arena_release_resets_ownership() -> None:
    from repro.core.scratch import ScratchArena

    with sanitized() as san:
        arena = ScratchArena()
        arena.take("k", (4,), float)
        arena.release()  # explicit hand-off point
        _in_thread(lambda: arena.take("k", (4,), float))
        assert san.reports == []


def test_thread_arena_is_clean_by_construction() -> None:
    from repro.core.scratch import thread_arena

    with sanitized() as san:
        thread_arena().zeros("k", (8,), complex)
        _in_thread(lambda: thread_arena().zeros("k", (8,), complex))
        assert san.reports == []


# ------------------------------------------------- clean runtime, no blame


def test_clean_stage_graph_produces_no_reports() -> None:
    from repro.runtime.graph import StageGraph

    with sanitized() as san:
        graph = StageGraph(name="sanitized-smoke", n_buffers=2)
        graph.add_source("src", range(16))
        graph.add_stage("square", lambda seq, x: x * x, workers=2)
        out: list[int] = []
        out_lock = threading.Lock()

        def sink(seq: int, x: int) -> int:
            with out_lock:
                out.append(x)
            return x

        graph.add_sink("sink", sink)
        graph.run()
        assert sorted(out) == [i * i for i in range(16)]
        assert san.reports == []
        san.raise_if_reports()


def test_credit_gate_round_trip_is_clean() -> None:
    with sanitized() as san:
        gate = CreditGate(credits=2)
        gate.acquire()
        gate.acquire()
        _in_thread(gate.release)
        gate.release()
        assert san.reports == []


def test_stage_label_attached_to_reports() -> None:
    from repro.runtime.graph import StageGraph

    with sanitized() as san:
        track_class(Toy)
        toy = Toy()
        toy.counter = 1  # main thread takes ownership

        def racy_stage(seq: int, x: int) -> int:
            toy.counter = x
            return x

        graph = StageGraph(name="blamed", n_buffers=2)
        graph.add_source("src", range(4))
        graph.add_sink("racer", racy_stage)
        graph.run()
        races = [r for r in san.reports if r.kind == "race"]
        assert len(races) == 1
        assert races[0].stage == "racer"


# --------------------------------------------------------------- lifecycle


def test_install_patches_and_uninstall_restores() -> None:
    before = Channel.__init__
    had_session = sanitizer.current() is not None
    with sanitized():
        if had_session:
            # patches are idempotent: a nested install must not double-wrap
            assert Channel.__init__ is before
        else:
            assert Channel.__init__ is not before
        chan = Channel(name="tracked", capacity=1)
        assert type(chan._cond).__name__ == "TrackedCondition"
    if had_session:
        # the session sanitizer (IDG_SANITIZE=1) keeps the patches installed
        assert sanitizer.current() is not None
    else:
        assert Channel.__init__ is before
        assert sanitizer.current() is None


def test_sanitized_restores_previous_sanitizer() -> None:
    previous = sanitizer.current()
    with sanitized() as outer:
        assert sanitizer.current() is outer
        with sanitized() as inner:
            assert sanitizer.current() is inner
        assert sanitizer.current() is outer
    assert sanitizer.current() is previous


def test_disabled_mode_installs_nothing() -> None:
    if sanitizer.current() is not None:
        pytest.skip("suite is running with IDG_SANITIZE=1")
    assert not sanitizer._patched
    assert sanitizer.maybe_install_from_env() is None


def test_enable_sanitizer_overrides_environment() -> None:
    forced_before = sanitizer._forced
    try:
        sanitizer.enable_sanitizer(True)
        assert sanitizer.sanitizer_enabled()
        sanitizer.enable_sanitizer(False)
        assert not sanitizer.sanitizer_enabled()
    finally:
        sanitizer._forced = forced_before


def test_report_formatting_is_self_contained() -> None:
    report = sanitizer.SanitizerReport(
        kind="race", message="msg", thread="t0", stage="grid", details="d"
    )
    text = report.format_text()
    assert "idgsan race" in text and "t0" in text and "grid" in text

    empty = Sanitizer()
    empty.raise_if_reports()  # no reports -> no raise
