"""Runtime behaviour of the @shape_checked decorator.

``tests/conftest.py`` sets ``IDGLINT_SHAPE_CHECKS=1`` before any repro
import, so decorating inside these tests produces *enforcing* wrappers; the
disabled-mode test forces checks off for the duration of one decoration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import contracts
from repro.analysis.contracts import (
    ShapeContractError,
    enable_shape_checks,
    shape_checked,
    shape_checks_enabled,
)


def test_checks_enabled_by_test_harness() -> None:
    assert shape_checks_enabled()


def test_accepts_matching_shapes() -> None:
    @shape_checked(uvw="(M, 3)", returns="(M,)")
    def norms(uvw: np.ndarray) -> np.ndarray:
        return np.sqrt((uvw**2).sum(axis=1))

    out = norms(np.zeros((5, 3)))
    assert out.shape == (5,)


def test_rejects_wrong_argument_shape() -> None:
    @shape_checked(uvw="(M, 3)")
    def f(uvw: np.ndarray) -> None:
        return None

    with pytest.raises(ShapeContractError, match="argument 'uvw'"):
        f(np.zeros((5, 4)))


def test_symbols_bind_across_parameters() -> None:
    @shape_checked(lmn="(N**2, 3)", taper="(N, N)")
    def f(lmn: np.ndarray, taper: np.ndarray) -> None:
        return None

    f(np.zeros((16, 3)), np.zeros((4, 4)))  # N = 4, consistent
    with pytest.raises(ShapeContractError, match="taper"):
        f(np.zeros((16, 3)), np.zeros((5, 5)))  # N = 4 vs 5


def test_return_value_uses_same_bindings() -> None:
    @shape_checked(taper="(N, N)", returns="(N, N, 2, 2)")
    def f(taper: np.ndarray, n_out: int) -> np.ndarray:
        return np.zeros((n_out, n_out, 2, 2))

    f(np.zeros((4, 4)), 4)
    with pytest.raises(ShapeContractError, match="return value"):
        f(np.zeros((4, 4)), 5)


def test_alternatives_accept_either_layout() -> None:
    @shape_checked(vis="(M, 2, 2) | (M, 4)")
    def f(vis: np.ndarray) -> None:
        return None

    f(np.zeros((7, 2, 2)))
    f(np.zeros((7, 4)))
    with pytest.raises(ShapeContractError):
        f(np.zeros((7, 3)))


def test_ellipsis_spec_accepts_any_leading_axes() -> None:
    @shape_checked(jones="(..., 2, 2)")
    def f(jones: np.ndarray) -> None:
        return None

    f(np.zeros((2, 2)))
    f(np.zeros((9, 9, 2, 2)))
    with pytest.raises(ShapeContractError):
        f(np.zeros((9, 2, 3)))


def test_product_spec_binds_factors() -> None:
    @shape_checked(uvw="(n_times, 3)", flat="(n_times * n_channels, 3)")
    def f(uvw: np.ndarray, flat: np.ndarray) -> None:
        return None

    f(np.zeros((3, 3)), np.zeros((12, 3)))
    with pytest.raises(ShapeContractError, match="flat"):
        f(np.zeros((5, 3)), np.zeros((12, 3)))  # 12 not divisible by 5


def test_none_arguments_are_skipped() -> None:
    @shape_checked(aterm="(N, N, 2, 2)")
    def f(aterm: np.ndarray | None = None) -> None:
        return None

    f(None)
    f()


def test_spec_name_must_exist_in_signature() -> None:
    with pytest.raises(TypeError, match="not in signature"):
        @shape_checked(nope="(M, 3)")
        def f(uvw: np.ndarray) -> None:
            return None


def test_disabled_mode_returns_function_unchanged() -> None:
    enable_shape_checks(False)
    try:
        def raw(uvw: np.ndarray) -> None:
            return None

        decorated = shape_checked(uvw="(M, 3)")(raw)
        assert decorated is raw
        assert decorated.__shape_spec__ == {"params": {"uvw": "(M, 3)"}, "returns": None}
        decorated(np.zeros((5, 99)))  # no enforcement
    finally:
        contracts._forced = None  # restore defer-to-environment


def test_spec_recorded_on_wrapper_when_enabled() -> None:
    @shape_checked(uvw="(M, 3)", returns="(M,)")
    def f(uvw: np.ndarray) -> np.ndarray:
        return uvw[:, 0]

    assert f.__shape_spec__ == {"params": {"uvw": "(M, 3)"}, "returns": "(M,)"}


def test_error_message_reports_bindings() -> None:
    @shape_checked(lmn="(N**2, 3)", taper="(N, N)")
    def f(lmn: np.ndarray, taper: np.ndarray) -> None:
        return None

    with pytest.raises(ShapeContractError, match=r"bound: N=4"):
        f(np.zeros((16, 3)), np.zeros((3, 3)))
