"""One parametrised test per idglint rule over minimal good/bad fixtures.

Each case pins the *exact* error codes and line numbers the engine must
report, so rule regressions (missed violations or drifted positions) fail
loudly.  Fixtures live in ``tests/analysis/fixtures/`` and are linted with a
config whose kernel scope matches everything, so path-scoped rules
(IDG001/IDG005) apply to them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.engine import LintConfig, lint_paths, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

#: Kernel scope = everything, no phasor allowlist: rules judge fixtures on
#: content alone.
FIXTURE_CONFIG = LintConfig(kernel_roots=("",), phasor_modules=())

CASES = [
    ("idg001_bad.py", "IDG001", [6, 7]),
    ("idg001_good.py", "IDG001", []),
    ("idg002_bad.py", "IDG002", [8, 8, 10]),
    ("idg002_good.py", "IDG002", []),
    ("idg003_bad.py", "IDG003", [8, 9]),
    ("idg003_good.py", "IDG003", []),
    ("idg004_bad.py", "IDG004", [3, 4, 7]),
    ("idg004_good.py", "IDG004", []),
    ("idg005_bad.py", "IDG005", [5, 10]),
    ("idg005_good.py", "IDG005", []),
    ("idg006_bad.py", "IDG006", [5, 5]),
    ("idg006_good.py", "IDG006", []),
]


def _lint_fixture(name: str, code: str) -> list:
    source = (FIXTURES / name).read_text()
    return lint_source(source, name, config=FIXTURE_CONFIG, select=(code,))


@pytest.mark.parametrize("name,code,lines", CASES, ids=[c[0] for c in CASES])
def test_rule_fixture(name: str, code: str, lines: list[int]) -> None:
    violations = _lint_fixture(name, code)
    assert [v.code for v in violations] == [code] * len(lines)
    assert sorted(v.line for v in violations) == lines


def test_every_rule_has_a_failing_fixture() -> None:
    """Acceptance: each of IDG001-IDG006 is demonstrated by >= 1 fixture."""
    demonstrated = {code for _, code, lines in CASES if lines}
    assert demonstrated == {f"IDG00{i}" for i in range(1, 7)}


def test_suppression_comments_silence_codes() -> None:
    violations = lint_source(
        (FIXTURES / "suppressed.py").read_text(), "suppressed.py",
        config=FIXTURE_CONFIG,
    )
    assert violations == []


def test_suppression_is_per_line_and_per_code() -> None:
    source = (
        "import numpy as np\n"
        "def f(items: list) -> None:\n"
        "    for item in items:\n"
        "        a = np.zeros(item)  # idglint: disable=IDG002\n"
        "        b = np.zeros(item)\n"
    )
    violations = lint_source(source, "inline.py", config=FIXTURE_CONFIG)
    # the wrong code suppresses nothing; both allocations are reported
    assert [(v.code, v.line) for v in violations] == [("IDG003", 4), ("IDG003", 5)]


def test_phasor_allowlist_exempts_module() -> None:
    source = (FIXTURES / "idg002_bad.py").read_text()
    allowlisted = LintConfig(
        kernel_roots=("",), phasor_modules=("idg002_bad.py",)
    )
    assert lint_source(source, "idg002_bad.py", config=allowlisted,
                       select=("IDG002",)) == []


def test_kernel_scope_limits_idg001_and_idg005() -> None:
    source = (FIXTURES / "idg001_bad.py").read_text()
    scoped = LintConfig(kernel_roots=("core/",))
    assert lint_source(source, "sky/idg001_bad.py", config=scoped,
                       select=("IDG001", "IDG005")) == []
    hits = lint_source(source, "core/idg001_bad.py", config=scoped,
                       select=("IDG001",))
    assert [v.line for v in hits] == [6, 7]


def test_syntax_error_reported_as_idg000() -> None:
    violations = lint_source("def broken(:\n", "broken.py", config=FIXTURE_CONFIG)
    assert len(violations) == 1
    assert violations[0].code == "IDG000"


def test_lint_paths_walks_directories(tmp_path: Path) -> None:
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("CACHE = {}\n")
    violations = lint_paths([tmp_path], config=FIXTURE_CONFIG, root=tmp_path)
    assert [(v.path, v.code, v.line) for v in violations] == [
        ("pkg/mod.py", "IDG004", 1)
    ]
