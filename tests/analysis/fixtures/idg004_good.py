"""IDG004 fixture: constants declared Final, defaults immutable."""
from typing import Final

CACHE: Final = {"capacity": 128}
NAMES = ("xx", "xy", "yx", "yy")

__all__ = ["append_result"]


def append_result(value: float, results: list | None = None) -> list:
    if results is None:
        results = []
    results.append(value)
    return results
