"""IDG005 fixture: public kernel function without a return annotation."""
import numpy as np


def gridder_entry(visibilities):
    return np.asarray(visibilities)


class KernelStage:
    def run(self, block):
        return block


def _private_helper(x):
    return x
