"""IDG006 fixture: docstring shapes disagree with the @shape_checked spec."""
from repro.analysis.contracts import shape_checked


@shape_checked(uvw="(M, 4)", returns="(M, 2)")
def transform(uvw):
    """Phase-shift one visibility block.

    Parameters
    ----------
    uvw:
        ``(M, 3)`` relative coordinates in wavelengths.

    Returns
    -------
    ``(M, 2, 2)`` predicted visibilities.
    """
    return uvw
