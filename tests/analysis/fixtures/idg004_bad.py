"""IDG004 fixture: mutable defaults and module-level mutable state."""

CACHE = {}
REGISTRY = list()


def append_result(value: float, results=[]) -> list:
    results.append(value)
    return results
