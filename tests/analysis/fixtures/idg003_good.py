"""IDG003 fixture: buffers preallocated outside the loop."""
import numpy as np


def process(work_items: list) -> np.ndarray:
    out = np.empty(len(work_items))
    buffer = np.zeros(max(work_items, default=1))
    for k, item in enumerate(work_items):
        buffer[:item] = item
        out[k] = buffer[:item].sum()
    return out
