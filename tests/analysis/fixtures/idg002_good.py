"""IDG002 fixture: phasors evaluated vectorised, outside any loop."""
import numpy as np


def accumulate(phases: np.ndarray) -> complex:
    phasor = np.exp(1j * phases)
    return complex(phasor.sum())
