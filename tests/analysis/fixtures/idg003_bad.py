"""IDG003 fixture: array allocation inside a per-work-item loop."""
import numpy as np


def process(work_items: list) -> list:
    totals = []
    for item in work_items:
        buffer = np.zeros(item)
        parts = np.concatenate([buffer, buffer])
        totals.append(parts.sum())
    return totals
