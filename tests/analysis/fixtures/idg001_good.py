"""IDG001 fixture: dtype policy routed through repro.constants."""
import numpy as np

from repro.constants import ACCUM_DTYPE, COMPLEX_DTYPE


def make_subgrid(n: int) -> np.ndarray:
    acc = np.zeros((n, n), dtype=ACCUM_DTYPE)
    return acc.astype(COMPLEX_DTYPE)
