"""Suppression fixture: inline disables silence specific codes."""
import numpy as np


def process(work_items: list) -> None:
    for item in work_items:
        buffer = np.zeros(item)  # idglint: disable=IDG003
        np.cos(buffer)  # idglint: disable=all
        np.sin(buffer)  # idglint: disable=IDG001,IDG002
