"""IDG002 fixture: per-visibility sine/cosine inside a Python loop."""
import numpy as np


def accumulate(phases: np.ndarray) -> complex:
    total = 0.0 + 0.0j
    for phase in phases:
        total += np.cos(phase) + 1j * np.sin(phase)
    while abs(total) > 1e6:
        total *= np.exp(-1.0)
    return total
