"""IDG006 fixture: docstring shapes agree with the @shape_checked spec."""
from repro.analysis.contracts import shape_checked


@shape_checked(uvw="(M, 3)", returns="(M, 2, 2)")
def transform(uvw):
    """Phase-shift one visibility block.

    Parameters
    ----------
    uvw:
        ``(M, 3)`` relative coordinates in wavelengths
        (prose parentheticals like this one are ignored).

    Returns
    -------
    ``(M, 2, 2)`` predicted visibilities.
    """
    return uvw
