"""IDG001 fixture: raw complex dtype literals in kernel code."""
import numpy as np


def make_subgrid(n: int) -> np.ndarray:
    acc = np.zeros((n, n), dtype=np.complex128)
    return acc.astype(np.complex64)
