"""IDG005 fixture: public kernel functions declare their return types."""
import numpy as np


def gridder_entry(visibilities) -> np.ndarray:
    return np.asarray(visibilities)


class KernelStage:
    def run(self, block) -> np.ndarray:
        return block


def _private_helper(x):
    return x
