"""Docstring shape extraction used by IDG006."""

from __future__ import annotations

from repro.analysis.docshapes import docstring_shapes

DOC = """Grid one visibility block.

Parameters
----------
visibilities:
    ``(M, 2, 2)`` or ``(M, 4)`` complex visibilities.
aterm_p, aterm_q:
    Optional ``(N, N, 2, 2)`` Jones fields; ``None`` means identity.
frequencies_hz:
    ``(n_channels,)`` channel frequencies in Hz.
w_offset:
    Scalar w offset (no shape documented).

Returns
-------
np.ndarray
    ``(N, N, 2, 2)`` accumulated subgrid image.
"""


def test_extracts_param_shapes() -> None:
    params, _ = docstring_shapes(DOC)
    assert params["visibilities"] == frozenset({"(M, 2, 2)", "(M, 4)"})
    assert params["frequencies_hz"] == frozenset({"(n_channels,)"})


def test_shared_entry_names_share_shapes() -> None:
    params, _ = docstring_shapes(DOC)
    assert params["aterm_p"] == params["aterm_q"] == frozenset({"(N, N, 2, 2)"})


def test_params_without_shapes_are_absent() -> None:
    params, _ = docstring_shapes(DOC)
    assert "w_offset" not in params


def test_extracts_return_shapes() -> None:
    _, returns = docstring_shapes(DOC)
    assert returns == frozenset({"(N, N, 2, 2)"})


def test_prose_parentheticals_and_none_ignored() -> None:
    doc = """Do things.

Parameters
----------
x:
    ``(M, 3)`` coordinates; ``None`` resets (and ``(u - u_mid)`` is prose).
"""
    params, _ = docstring_shapes(doc)
    assert params["x"] == frozenset({"(M, 3)"})


def test_no_docstring() -> None:
    assert docstring_shapes(None) == ({}, frozenset())
    assert docstring_shapes("just a summary line") == ({}, frozenset())
