"""The IDG1xx concurrency rule family: pinned violations and non-violations.

Each case lints an inline source with exactly one rule selected and pins the
reported line numbers, so both missed violations and false positives fail.
The sources are miniatures of the streaming runtime's real patterns
(channels, guarded counters, arenas, hot paths).
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.engine import LintConfig, lint_source

CONFIG = LintConfig(kernel_roots=("",), phasor_modules=())


def lint(code: str, source: str, relpath: str = "mod.py") -> list[int]:
    violations = lint_source(
        textwrap.dedent(source), relpath, config=CONFIG, select=(code,)
    )
    assert all(v.code == code for v in violations)
    return sorted(v.line for v in violations)


# --------------------------------------------------------------------- IDG101


def test_idg101_unlocked_write_to_inferred_guard() -> None:
    lines = lint("IDG101", """\
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.total = 0

            def locked(self):
                with self._lock:
                    self.total += 1

            def unlocked(self):
                self.total += 1
    """)
    assert lines == [13]


def test_idg101_constructors_exempt_and_locked_writes_clean() -> None:
    assert lint("IDG101", """\
        import threading

        class Clean:
            def __init__(self):
                self._lock = threading.Lock()
                self.items = []

            def add(self, x):
                with self._lock:
                    self.items.append(x)
    """) == []


def test_idg101_guarded_by_annotation_creates_guard() -> None:
    lines = lint("IDG101", """\
        import threading

        class Annotated:
            def __init__(self):
                self._lock = threading.Lock()
                self.seen = 0  # idglint: guarded-by(_lock)

            def bump(self):
                self.seen += 1
    """)
    assert lines == [9]


def test_idg101_requires_lock_body_is_locked_and_callsites_checked() -> None:
    lines = lint("IDG101", """\
        import threading

        class Chan:
            def __init__(self):
                self._cond = threading.Condition()
                self.depth = 0

            def _advance(self):  # idglint: requires-lock(_cond)
                self.depth += 1

            def good(self):
                with self._cond:
                    self._advance()

            def bad(self):
                self._advance()
    """)
    assert lines == [16]


def test_idg101_module_global_guarded_by() -> None:
    lines = lint("IDG101", """\
        import threading

        _cache_lock = threading.Lock()
        _cache = {}  # idglint: guarded-by(_cache_lock)

        def good(key, value):
            with _cache_lock:
                _cache[key] = value

        def bad(key, value):
            _cache[key] = value

        def mutator():
            _cache.clear()
    """)
    assert lines == [11, 14]


def test_idg101_in_place_mutation_flagged() -> None:
    lines = lint("IDG101", """\
        import threading

        class Registry:
            def __init__(self):
                self._lock = threading.Lock()
                self.entries = []

            def locked_add(self, x):
                with self._lock:
                    self.entries.append(x)

            def unlocked_add(self, x):
                self.entries.append(x)
    """)
    assert lines == [13]


# --------------------------------------------------------------------- IDG102


def test_idg102_blocking_calls_under_lock() -> None:
    lines = lint("IDG102", """\
        import threading

        class Stage:
            def __init__(self, chan):
                self._lock = threading.Lock()
                self.chan = chan

            def bad(self):
                with self._lock:
                    self.chan.put(1)
                    item = self.chan.get()
                    with open("f") as fh:
                        pass
    """)
    assert lines == [10, 11, 12]


def test_idg102_argful_get_join_are_clean() -> None:
    assert lint("IDG102", """\
        import threading

        class Stats:
            def __init__(self):
                self._lock = threading.Lock()
                self.counts = {}

            def ok(self, key, parts):
                with self._lock:
                    n = self.counts.get(key, 0)
                    label = ",".join(parts)
                    return n, label
    """) == []


def test_idg102_wait_on_held_condition_is_clean() -> None:
    assert lint("IDG102", """\
        import threading

        class Gate:
            def __init__(self):
                self._cond = threading.Condition()
                self.ready = False

            def wait_ready(self):
                with self._cond:
                    while not self.ready:
                        self._cond.wait()
    """) == []


def test_idg102_requires_lock_body_is_a_locked_region() -> None:
    lines = lint("IDG102", """\
        import threading

        class Chan:
            def __init__(self):
                self._cond = threading.Condition()
                self.peer = None

            def _drain(self):  # idglint: requires-lock(_cond)
                self.peer.put(1)
    """)
    assert lines == [9]


def test_idg102_nested_function_not_in_locked_region() -> None:
    assert lint("IDG102", """\
        import threading

        class Deferred:
            def __init__(self, chan):
                self._lock = threading.Lock()
                self.chan = chan

            def schedule(self):
                with self._lock:
                    def later():
                        self.chan.put(1)
                    return later
    """) == []


# --------------------------------------------------------------------- IDG103


def test_idg103_direct_ab_ba_inversion() -> None:
    lines = lint("IDG103", """\
        import threading

        class TwoLocks:
            def __init__(self):
                self._a_lock = threading.Lock()
                self._b_lock = threading.Lock()

            def forward(self):
                with self._a_lock:
                    with self._b_lock:
                        pass

            def backward(self):
                with self._b_lock:
                    with self._a_lock:
                        pass
    """)
    assert len(lines) == 1


def test_idg103_consistent_order_is_clean() -> None:
    assert lint("IDG103", """\
        import threading

        class TwoLocks:
            def __init__(self):
                self._a_lock = threading.Lock()
                self._b_lock = threading.Lock()

            def one(self):
                with self._a_lock:
                    with self._b_lock:
                        pass

            def two(self):
                with self._a_lock:
                    with self._b_lock:
                        pass
    """) == []


def test_idg103_interprocedural_inversion_through_call() -> None:
    lines = lint("IDG103", """\
        import threading

        class TwoLocks:
            def __init__(self):
                self._a_lock = threading.Lock()
                self._b_lock = threading.Lock()

            def takes_b(self):
                with self._b_lock:
                    pass

            def forward(self):
                with self._a_lock:
                    self.takes_b()

            def backward(self):
                with self._b_lock:
                    with self._a_lock:
                        pass
    """)
    assert len(lines) == 1


def test_idg103_nonreentrant_self_acquisition() -> None:
    lines = lint("IDG103", """\
        import threading

        class SelfDeadlock:
            def __init__(self):
                self._lock = threading.Lock()

            def outer(self):
                with self._lock:
                    self.inner()

            def inner(self):
                with self._lock:
                    pass
    """)
    assert len(lines) == 1


def test_idg103_rlock_reentry_is_clean() -> None:
    assert lint("IDG103", """\
        import threading

        class Reentrant:
            def __init__(self):
                self._lock = threading.RLock()

            def outer(self):
                with self._lock:
                    self.inner()

            def inner(self):
                with self._lock:
                    pass
    """) == []


# --------------------------------------------------------------------- IDG104


def test_idg104_returning_self_obtained_arena_view() -> None:
    lines = lint("IDG104", """\
        from repro.core.scratch import thread_arena

        def leaky():
            arena_here = thread_arena()
            view = arena_here.take("k", (4,), float)
            return view
    """)
    assert lines == [6]


def test_idg104_arena_parameter_return_is_the_documented_contract() -> None:
    assert lint("IDG104", """\
        def fast_path(arena, shape):
            out = arena.zeros("acc", shape, complex)
            return out
    """) == []


def test_idg104_yield_and_attribute_store_always_flagged() -> None:
    lines = lint("IDG104", """\
        from repro.core.scratch import thread_arena

        def generator(arena):
            for _ in range(3):
                yield arena.take("k", (4,), float)

        class Holder:
            def stash(self):
                self.buf = thread_arena().take("k", (4,), float)
    """)
    assert lines == [5, 9]


def test_idg104_copies_are_clean() -> None:
    assert lint("IDG104", """\
        from repro.core.scratch import thread_arena

        def safe():
            view = thread_arena().take("k", (4,), float)
            return view.copy()
    """) == []


# --------------------------------------------------------------------- IDG105


def test_idg105_primitive_in_loop_and_hot_path() -> None:
    lines = lint("IDG105", """\
        import threading

        def setup():
            lock = threading.Lock()
            return lock

        def per_batch(items):
            for item in items:
                event = threading.Event()

        def grid_work_group(plan):
            lock = threading.Lock()
            return lock
    """)
    assert lines == [9, 12]


def test_idg105_suppression_with_justification() -> None:
    assert lint("IDG105", """\
        import threading

        def spawn_workers(stages):
            for stage in stages:
                # bounded startup loop, one thread per stage
                t = threading.Thread(target=stage)  # idglint: disable=IDG105
                t.start()
    """) == []


# ----------------------------------------------------------------- plumbing


def test_family_wildcard_in_cli_select() -> None:
    from repro.analysis.cli import main

    assert main(["--list-rules"]) == 0
    # IDG1xx expands to the five concurrency rules; unknown families error
    assert main(["--select", "IDG9xx", "src/repro"]) == 2


def test_all_idg1xx_rules_registered() -> None:
    from repro.analysis.rules import RULES_BY_CODE

    assert {f"IDG10{i}" for i in range(1, 6)} <= set(RULES_BY_CODE)


@pytest.mark.parametrize("code", ["IDG101", "IDG102", "IDG103", "IDG104", "IDG105"])
def test_idg1xx_suppressible(code: str) -> None:
    """Every IDG1xx violation respects per-line suppression comments."""
    sources = {
        "IDG101": """\
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0
                def locked(self):
                    with self._lock:
                        self.n += 1
                def bare(self):
                    self.n += 1  # idglint: disable=IDG101
        """,
        "IDG102": """\
            import threading

            class C:
                def __init__(self, chan):
                    self._lock = threading.Lock()
                    self.chan = chan
                def f(self):
                    with self._lock:
                        self.chan.put(1)  # idglint: disable=IDG102
        """,
        "IDG103": """\
            import threading

            class C:
                def __init__(self):
                    self._a_lock = threading.Lock()
                    self._b_lock = threading.Lock()
                def one(self):
                    with self._a_lock:
                        with self._b_lock:  # idglint: disable=IDG103
                            pass
                def two(self):
                    with self._b_lock:
                        with self._a_lock:
                            pass
        """,
        "IDG104": """\
            from repro.core.scratch import thread_arena

            def f():
                v = thread_arena().take("k", (4,), float)
                return v  # idglint: disable=IDG104
        """,
        "IDG105": """\
            import threading

            def f(items):
                for i in items:
                    lock = threading.Lock()  # idglint: disable=IDG105
        """,
    }
    assert lint(code, sources[code]) == []
