"""Golden end-to-end test: the full pipeline of the paper's Fig 1.

simulate (sky + gains + RFI + noise) -> RFI flagging -> gain calibration ->
imaging major cycle (IDG gridding + CLEAN + IDG degridding) -> catalogue,
with quality gates at every stage.  This is the system-level test a
downstream user's workflow depends on; if it passes, the parts compose.
"""

import numpy as np
import pytest

from repro.calibration import apply_gains, corrupt_with_gains, random_gains, stefcal
from repro.core.pipeline import IDG, IDGConfig
from repro.data.dataset import VisibilityDataset
from repro.data.noise import add_thermal_noise
from repro.data.rfi import flag_rfi, inject_rfi
from repro.imaging.cycle import ImagingCycle
from repro.imaging.image import find_peak
from repro.imaging.metrics import dynamic_range
from repro.sky.model import SkyModel
from repro.telescope.observation import ska1_low_observation


@pytest.fixture(scope="module")
def pipeline_run():
    # --- truth
    obs = ska1_low_observation(
        n_stations=14, n_times=64, n_channels=6,
        integration_time_s=120.0, max_radius_m=2_500.0, seed=42,
    )
    baselines = obs.array.baselines()
    gridspec = obs.fitting_gridspec(grid_size=384)
    dl, g = gridspec.pixel_scale, gridspec.grid_size
    sources = [
        (round(0.15 * gridspec.image_size / dl) * dl,
         round(-0.10 * gridspec.image_size / dl) * dl, 6.0),
        (round(-0.12 * gridspec.image_size / dl) * dl,
         round(0.18 * gridspec.image_size / dl) * dl, 3.0),
    ]
    sky = SkyModel(
        l=np.array([s[0] for s in sources]),
        m=np.array([s[1] for s in sources]),
        brightness=np.stack([s[2] * np.eye(2, dtype=complex) for s in sources]),
    )

    # --- corruption: gains, RFI, thermal noise
    truth_gains = random_gains(obs.array.n_stations, amplitude_rms=0.15,
                               phase_rms_rad=0.6, seed=7)
    dataset = VisibilityDataset.simulate(obs, sky)
    dataset = dataset.with_visibilities(
        corrupt_with_gains(dataset.visibilities, truth_gains, baselines)
    )
    dataset, rfi_mask = inject_rfi(dataset, fraction=0.003,
                                   amplitude_factor=100.0, seed=8)
    dataset = add_thermal_noise(dataset, sefd_jy=1_500.0,
                                channel_width_hz=200e3,
                                integration_time_s=120.0, seed=9)

    # --- stage 1: RFI flagging
    dataset = flag_rfi(dataset, threshold=6.0)

    # --- stage 2: calibration against the brightest catalogue source
    idg = IDG(gridspec, IDGConfig(subgrid_size=24, kernel_support=8, time_max=16))
    cycle = ImagingCycle(idg, obs.uvw_m, obs.frequencies_hz, baselines)
    row0 = round(sources[0][1] / dl) + g // 2
    col0 = round(sources[0][0] / dl) + g // 2
    cal_model = np.zeros((g, g))
    cal_model[row0, col0] = sources[0][2]
    model_vis = cycle.predict(cal_model)
    solution = stefcal(dataset.visibilities, model_vis, baselines,
                       n_stations=obs.array.n_stations)
    calibrated = apply_gains(dataset.visibilities, solution.gains[0], baselines)
    # keep RFI flags applied: zero flagged samples
    calibrated = np.where(dataset.flags[..., None, None], 0, calibrated)

    # --- stage 3: imaging major cycle
    result = cycle.run(calibrated, n_major=4, minor_iterations=250,
                       threshold_factor=2.0)
    return {
        "obs": obs, "gridspec": gridspec, "sources": sources,
        "truth_gains": truth_gains, "solution": solution,
        "rfi_mask": rfi_mask, "flags": dataset.flags,
        "result": result,
    }


def test_rfi_was_caught(pipeline_run):
    flags = pipeline_run["flags"]
    truth = pipeline_run["rfi_mask"]
    assert flags[truth].mean() > 0.9  # recall
    assert flags[~truth].mean() < 0.02  # false positives


def test_gains_recovered(pipeline_run):
    solved = pipeline_run["solution"].gains[0]
    truth = pipeline_run["truth_gains"]
    phase = np.exp(-1j * np.angle(np.vdot(truth, solved)))
    # The calibration model holds only the brightest source, so the second
    # source (half its flux) acts as unmodelled signal; plus thermal noise.
    # ~0.07 max gain error is the expected floor of that regime — enough to
    # restore imaging (the source-recovery tests below are the real gate).
    assert np.abs(solved * phase - truth).max() < 0.15


def test_both_sources_recovered(pipeline_run):
    result = pipeline_run["result"]
    gridspec = pipeline_run["gridspec"]
    dl, g = gridspec.pixel_scale, gridspec.grid_size
    for l0, m0, flux in pipeline_run["sources"]:
        row, col = round(m0 / dl) + g // 2, round(l0 / dl) + g // 2
        recovered = result.model_image[row - 2 : row + 3, col - 2 : col + 3].sum()
        assert recovered == pytest.approx(flux, rel=0.1)


def test_residual_converged(pipeline_run):
    rms = pipeline_run["result"].residual_rms_history
    assert rms[-1] < rms[0]


def test_final_dynamic_range(pipeline_run):
    """Peak / residual-noise of model+residual: the end-product quality."""
    result = pipeline_run["result"]
    restored = result.model_image + result.residual_image
    assert dynamic_range(restored) > 30


def test_brightest_component_position(pipeline_run):
    result = pipeline_run["result"]
    gridspec = pipeline_run["gridspec"]
    dl, g = gridspec.pixel_scale, gridspec.grid_size
    l0, m0, _ = pipeline_run["sources"][0]
    row, col, _ = find_peak(result.model_image)
    assert abs(row - (round(m0 / dl) + g // 2)) <= 1
    assert abs(col - (round(l0 / dl) + g // 2)) <= 1
