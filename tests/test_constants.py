"""Unit tests for :mod:`repro.constants`."""

import numpy as np
import pytest

from repro.constants import (
    SPEED_OF_LIGHT,
    metres_to_wavelengths,
    wavenumbers,
)


def test_speed_of_light_value():
    assert SPEED_OF_LIGHT == pytest.approx(2.99792458e8)


def test_wavenumbers_scalar_relation():
    freqs = np.array([150e6])
    k = wavenumbers(freqs)
    # lambda = c/f ~ 2 m at 150 MHz; k = 2 pi / lambda
    assert k[0] == pytest.approx(2 * np.pi * 150e6 / SPEED_OF_LIGHT)


def test_wavenumbers_monotone_in_frequency():
    freqs = np.linspace(100e6, 200e6, 16)
    k = wavenumbers(freqs)
    assert np.all(np.diff(k) > 0)


def test_metres_to_wavelengths_roundtrip():
    uvw = np.array([[100.0, -50.0, 25.0]])
    wl = metres_to_wavelengths(uvw, 150e6)
    assert wl.shape == uvw.shape
    np.testing.assert_allclose(wl * SPEED_OF_LIGHT / 150e6, uvw)


def test_metres_to_wavelengths_broadcasts_channels():
    u = np.array([1000.0, 2000.0])  # (2,)
    freqs = np.array([100e6, 200e6, 300e6])  # (3,)
    wl = metres_to_wavelengths(u[:, np.newaxis], freqs[np.newaxis, :])
    assert wl.shape == (2, 3)
    assert wl[1, 2] == pytest.approx(2000.0 * 300e6 / SPEED_OF_LIGHT)
