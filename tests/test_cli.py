"""End-to-end tests for the command-line interface.

Drives the full simulate -> info -> image -> clean -> predict loop through
``repro.cli.main`` on small workloads in a temp directory.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.data.io import load_dataset

SIM_ARGS = [
    "--stations", "10", "--times", "24", "--channels", "4",
    "--integration", "240", "--radius", "2000", "--sources", "2",
    "--grid-size", "256", "--seed", "3",
]


@pytest.fixture(scope="module")
def sim_dataset(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "sim.npz"
    assert main(["simulate", str(path)] + SIM_ARGS) == 0
    return path


def test_simulate_writes_dataset(sim_dataset):
    ds = load_dataset(sim_dataset)
    assert ds.n_baselines == 45
    assert ds.n_times == 24
    assert ds.n_channels == 4
    assert np.abs(ds.visibilities).max() > 0


def test_simulate_with_noise(tmp_path):
    clean_path = tmp_path / "clean.npz"
    noisy_path = tmp_path / "noisy.npz"
    assert main(["simulate", str(clean_path)] + SIM_ARGS) == 0
    assert main(["simulate", str(noisy_path)] + SIM_ARGS + ["--noise-sefd", "500"]) == 0
    a = load_dataset(clean_path).visibilities
    b = load_dataset(noisy_path).visibilities
    assert np.abs(a - b).max() > 0


def test_info(sim_dataset, capsys):
    assert main(["info", str(sim_dataset)]) == 0
    out = capsys.readouterr().out
    assert "baselines: 45" in out
    assert "channels: 4" in out


def test_image_command(sim_dataset, tmp_path, capsys):
    out_path = tmp_path / "dirty.npz"
    assert main(["image", str(sim_dataset), str(out_path),
                 "--grid-size", "256"]) == 0
    with np.load(out_path) as archive:
        image = archive["image"]
    assert image.shape == (256, 256)
    assert np.abs(image).max() > 0.1  # sources visible


def test_image_uniform_weighting(sim_dataset, tmp_path):
    nat_path = tmp_path / "nat.npz"
    uni_path = tmp_path / "uni.npz"
    assert main(["image", str(sim_dataset), str(nat_path), "--grid-size", "256"]) == 0
    assert main(["image", str(sim_dataset), str(uni_path), "--grid-size", "256",
                 "--weighting", "uniform"]) == 0
    with np.load(nat_path) as a, np.load(uni_path) as b:
        assert np.abs(a["image"] - b["image"]).max() > 1e-6


def test_clean_command(sim_dataset, tmp_path, capsys):
    out_path = tmp_path / "clean.npz"
    assert main(["clean", str(sim_dataset), str(out_path),
                 "--grid-size", "256", "--major-cycles", "2",
                 "--minor-iterations", "60"]) == 0
    with np.load(out_path) as archive:
        model, residual, psf = archive["model"], archive["residual"], archive["psf"]
    assert model.shape == residual.shape == psf.shape == (256, 256)
    assert model.sum() > 0  # flux was extracted
    assert psf[128, 128] == pytest.approx(1.0)


def test_image_streaming_matches_serial(sim_dataset, tmp_path, capsys):
    """--executor streaming produces the identical image and writes a valid
    chrome trace with spans for every pipeline stage."""
    import json

    serial_path = tmp_path / "serial.npz"
    stream_path = tmp_path / "stream.npz"
    trace_path = tmp_path / "trace.json"
    assert main(["image", str(sim_dataset), str(serial_path),
                 "--grid-size", "256"]) == 0
    assert main(["image", str(sim_dataset), str(stream_path),
                 "--grid-size", "256", "--executor", "streaming",
                 "--n-buffers", "3", "--trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "makespan" in out and "chrome trace written" in out
    with np.load(serial_path) as a, np.load(stream_path) as b:
        np.testing.assert_array_equal(a["image"], b["image"])
    with open(trace_path) as fh:
        trace = json.load(fh)
    span_names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
    assert {"splitter", "gridder", "subgrid_fft", "adder"} <= span_names


def test_image_backend_flag(sim_dataset, tmp_path, monkeypatch):
    """--backend and IDG_BACKEND select the kernel backend; unknown names
    exit with the registry's helpful message instead of a traceback."""
    default_path = tmp_path / "default.npz"
    jit_path = tmp_path / "jit.npz"
    env_path = tmp_path / "env.npz"
    assert main(["image", str(sim_dataset), str(default_path),
                 "--grid-size", "256"]) == 0
    assert main(["image", str(sim_dataset), str(jit_path),
                 "--grid-size", "256", "--backend", "jit"]) == 0
    monkeypatch.setenv("IDG_BACKEND", "vectorized")
    assert main(["image", str(sim_dataset), str(env_path),
                 "--grid-size", "256"]) == 0
    with np.load(default_path) as a, np.load(jit_path) as b, \
            np.load(env_path) as c:
        np.testing.assert_allclose(b["image"], a["image"], atol=2e-4)
        np.testing.assert_array_equal(c["image"], a["image"])
    with pytest.raises(SystemExit, match="unknown kernel backend"):
        main(["image", str(sim_dataset), str(tmp_path / "x.npz"),
              "--grid-size", "256", "--backend", "cuda"])


def test_image_threads_executor(sim_dataset, tmp_path):
    serial_path = tmp_path / "serial.npz"
    threads_path = tmp_path / "threads.npz"
    assert main(["image", str(sim_dataset), str(serial_path),
                 "--grid-size", "256"]) == 0
    assert main(["image", str(sim_dataset), str(threads_path),
                 "--grid-size", "256", "--executor", "threads",
                 "--workers", "3"]) == 0
    with np.load(serial_path) as a, np.load(threads_path) as b:
        # in-order retirement makes the thread executor bit-exact
        np.testing.assert_array_equal(a["image"], b["image"])


def test_image_processes_executor(sim_dataset, tmp_path):
    """--executor processes (spawn default: full pickle round trip) is
    bit-identical to serial from the CLI too."""
    serial_path = tmp_path / "serial.npz"
    procs_path = tmp_path / "procs.npz"
    assert main(["image", str(sim_dataset), str(serial_path),
                 "--grid-size", "256"]) == 0
    assert main(["image", str(sim_dataset), str(procs_path),
                 "--grid-size", "256", "--executor", "processes",
                 "--workers", "2"]) == 0
    with np.load(serial_path) as a, np.load(procs_path) as b:
        np.testing.assert_array_equal(a["image"], b["image"])


def test_predict_roundtrip(sim_dataset, tmp_path):
    """clean -> predict: predicted model visibilities correlate strongly
    with the simulated data."""
    clean_path = tmp_path / "clean.npz"
    pred_path = tmp_path / "pred.npz"
    assert main(["clean", str(sim_dataset), str(clean_path),
                 "--grid-size", "256", "--major-cycles", "3",
                 "--minor-iterations", "150"]) == 0
    assert main(["predict", str(sim_dataset), str(clean_path),
                 str(pred_path)]) == 0
    truth = load_dataset(sim_dataset).visibilities
    pred = load_dataset(pred_path).visibilities
    x = truth[..., 0, 0].ravel()
    y = pred[..., 0, 0].ravel()
    corr = np.abs(np.vdot(x, y)) / (np.linalg.norm(x) * np.linalg.norm(y))
    assert corr > 0.9
    # the streaming executor degrids to the identical prediction
    stream_path = tmp_path / "pred_stream.npz"
    assert main(["predict", str(sim_dataset), str(clean_path),
                 str(stream_path), "--executor", "streaming"]) == 0
    np.testing.assert_array_equal(
        load_dataset(stream_path).visibilities, pred
    )


def test_perfmodel_command(sim_dataset, capsys):
    assert main(["perfmodel", str(sim_dataset), "--grid-size", "512"]) == 0
    out = capsys.readouterr().out
    assert "HASWELL" in out and "PASCAL" in out and "FIJI" in out
    assert "rho = 17" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_flag_command(sim_dataset, tmp_path, capsys):
    from repro.data.rfi import inject_rfi

    ds = load_dataset(sim_dataset)
    corrupted, _ = inject_rfi(ds, fraction=0.01, amplitude_factor=100.0, seed=5)
    from repro.data.io import save_dataset

    rfi_path = tmp_path / "rfi.npz"
    save_dataset(corrupted, rfi_path)
    out_path = tmp_path / "flagged.npz"
    assert main(["flag", str(rfi_path), str(out_path), "--threshold", "6"]) == 0
    flagged = load_dataset(out_path)
    assert flagged.flags.sum() > 0
    assert "flagged" in capsys.readouterr().out


def test_calibrate_command(tmp_path, capsys):
    """simulate a single calibrator, corrupt gains on disk, calibrate back."""
    import repro
    from repro.calibration import corrupt_with_gains, random_gains
    from repro.data.dataset import VisibilityDataset
    from repro.data.io import save_dataset
    from repro.sky.model import SkyModel

    obs = repro.ska1_low_observation(
        n_stations=8, n_times=16, n_channels=4,
        integration_time_s=240.0, max_radius_m=2000.0, seed=4,
    )
    gridspec = obs.fitting_gridspec(256)
    dl = gridspec.pixel_scale
    l0 = round(0.1 * gridspec.image_size / dl) * dl
    m0 = round(0.05 * gridspec.image_size / dl) * dl
    sky = SkyModel.single(l0, m0, flux=3.0)
    ds = VisibilityDataset.simulate(obs, sky)
    truth = random_gains(8, seed=6)
    corrupted = ds.with_visibilities(
        corrupt_with_gains(ds.visibilities, truth, ds.baselines)
    )
    in_path = tmp_path / "corrupted.npz"
    out_path = tmp_path / "calibrated.npz"
    save_dataset(corrupted, in_path)

    assert main(["calibrate", str(in_path), str(out_path),
                 "--model-l", str(l0), "--model-m", str(m0),
                 "--model-flux", "3.0"]) == 0
    calibrated = load_dataset(out_path)
    err = np.abs(calibrated.visibilities - ds.visibilities)
    assert err.max() / np.abs(ds.visibilities).max() < 1e-3


def test_report_command(sim_dataset, tmp_path, capsys):
    out_path = tmp_path / "report.txt"
    assert main(["report", str(sim_dataset), "--grid-size", "512",
                 "--output", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "Fig 16" in out
    assert out_path.exists()


def test_serve_command(sim_dataset, capsys):
    assert main(["serve", str(sim_dataset), "--grid-size", "256",
                 "--subgrid-size", "16", "--tenants", "2", "--requests", "3",
                 "--distinct", "2"]) == 0
    out = capsys.readouterr().out
    assert "req/s" in out
    assert "tenant-0" in out and "tenant-1" in out
    assert "counter reconciliation: exact" in out


def test_bench_service_command(sim_dataset, tmp_path, capsys):
    out_path = tmp_path / "service.json"
    assert main(["bench-service", str(sim_dataset), "--grid-size", "256",
                 "--subgrid-size", "16", "--tenants", "2", "--requests", "3",
                 "--distinct", "2", "--output", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "coalesced" in out and "uncoalesced" in out
    import json

    payload = json.loads(out_path.read_text())
    assert payload["speedup"] > 0
    for mode in ("coalesced", "uncoalesced"):
        assert payload[mode]["requests_per_s"] > 0
        assert all(payload[mode]["reconciliation"].values())
