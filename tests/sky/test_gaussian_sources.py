"""Tests for extended (Gaussian) sources in the sky model and oracle."""

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.kernels.wkernel import n_term
from repro.sky.model import GaussianSource, PointSource, SkyModel
from repro.sky.simulate import predict_baseline, predict_visibilities


def test_gaussian_source_validation():
    with pytest.raises(ValueError):
        GaussianSource(0.0, 0.0, sigma=0.0, brightness=np.eye(2))
    with pytest.raises(ValueError):
        GaussianSource(0.9, 0.9, sigma=0.01, brightness=np.eye(2))


def test_sky_model_sigma_defaults_to_point():
    sky = SkyModel.single(0.01, 0.0)
    assert not sky.has_extended_sources
    np.testing.assert_array_equal(sky.sigma, [0.0])


def test_sky_model_sigma_validation():
    with pytest.raises(ValueError):
        SkyModel(l=[0.0], m=[0.0], brightness=np.eye(2),
                 sigma=np.array([-0.1]))
    with pytest.raises(ValueError):
        SkyModel(l=[0.0, 0.01], m=[0.0, 0.0],
                 brightness=np.stack([np.eye(2)] * 2), sigma=np.array([0.1]))


def test_from_sources_mixed_types():
    sky = SkyModel.from_sources([
        PointSource(0.01, 0.0, np.eye(2)),
        GaussianSource(-0.01, 0.005, 0.002, 2.0 * np.eye(2)),
    ])
    assert sky.has_extended_sources
    back = list(sky)
    assert isinstance(back[0], PointSource)
    assert isinstance(back[1], GaussianSource)
    assert back[1].sigma == 0.002


def test_oracle_matches_analytic_gaussian_visibility():
    l0, m0, sigma, flux = 0.01, -0.005, 0.002, 3.0
    sky = SkyModel.single_gaussian(l0, m0, sigma, flux=flux)
    uvw = np.array([[100.0, -50.0, 10.0]])
    freq = np.array([SPEED_OF_LIGHT])  # 1 m = 1 wavelength
    vis = predict_baseline(uvw, freq, sky)[0, 0, 0, 0]
    n0 = n_term(l0, m0)
    expected = (
        flux
        * np.exp(-2 * np.pi**2 * sigma**2 * (100.0**2 + 50.0**2))
        * np.exp(-2j * np.pi * (100.0 * l0 - 50.0 * m0 + 10.0 * n0))
    )
    assert vis == pytest.approx(expected, rel=1e-5)


def test_zero_baseline_sees_total_flux():
    sky = SkyModel.single_gaussian(0.01, 0.02, 0.003, flux=7.0)
    vis = predict_baseline(np.zeros((1, 3)), np.array([150e6]), sky)
    assert vis[0, 0, 0, 0] == pytest.approx(7.0, rel=1e-5)


def test_long_baselines_resolve_the_source():
    """Visibility amplitude decays with baseline length — the source is
    resolved out, unlike a point source."""
    sigma = 0.003
    gauss = SkyModel.single_gaussian(0.0, 0.0, sigma, flux=1.0)
    point = SkyModel.single(0.0, 0.0, flux=1.0)
    freq = np.array([SPEED_OF_LIGHT])
    lengths = np.array([10.0, 50.0, 100.0, 200.0])
    uvw = np.zeros((4, 3))
    uvw[:, 0] = lengths
    amp_gauss = np.abs(predict_baseline(uvw, freq, gauss)[:, 0, 0, 0])
    amp_point = np.abs(predict_baseline(uvw, freq, point)[:, 0, 0, 0])
    np.testing.assert_allclose(amp_point, 1.0, rtol=1e-5)
    assert np.all(np.diff(amp_gauss) < 0)
    assert amp_gauss[-1] < 0.1


def test_idg_images_resolved_source(small_obs, small_baselines, small_gridspec,
                                    small_idg):
    """IDG imaging of a Gaussian source: peak lower than total flux, flux
    spread over ~the source area, integrated flux preserved."""
    from repro.imaging.image import dirty_image_from_grid, stokes_i_image

    gs = small_gridspec
    dl = gs.pixel_scale
    sigma = 3.0 * dl  # resolved: 3 image pixels
    l0 = round(0.1 * gs.image_size / dl) * dl
    m0 = round(0.05 * gs.image_size / dl) * dl
    sky = SkyModel.single_gaussian(l0, m0, sigma, flux=4.0)
    vis = predict_visibilities(small_obs.uvw_m, small_obs.frequencies_hz, sky,
                               baselines=small_baselines)
    plan = small_idg.make_plan(small_obs.uvw_m, small_obs.frequencies_hz,
                               small_baselines)
    grid = small_idg.grid(plan, small_obs.uvw_m, vis)
    image = stokes_i_image(dirty_image_from_grid(
        grid, gs, weight_sum=plan.statistics.n_visibilities_gridded
    ))
    g = gs.grid_size
    row, col = round(m0 / dl) + g // 2, round(l0 / dl) + g // 2
    peak = image[row, col]
    assert 0 < peak < 4.0  # resolved: peak (Jy/beam) below total flux
    # integrated flux over a generous box ~ total flux (dirty-beam sidelobe
    # leakage keeps this loose)
    box = image[row - 12 : row + 13, col - 12 : col + 13].sum()
    # compare against the same box for an equal-flux point source
    point_vis = predict_visibilities(
        small_obs.uvw_m, small_obs.frequencies_hz,
        SkyModel.single(l0, m0, flux=4.0), baselines=small_baselines,
    )
    point_grid = small_idg.grid(plan, small_obs.uvw_m, point_vis)
    point_image = stokes_i_image(dirty_image_from_grid(
        point_grid, gs, weight_sum=plan.statistics.n_visibilities_gridded
    ))
    point_box = point_image[row - 12 : row + 13, col - 12 : col + 13].sum()
    assert box == pytest.approx(point_box, rel=0.1)
    assert peak < point_image[row, col]
