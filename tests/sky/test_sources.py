"""Unit tests for source-catalogue generators."""

import numpy as np
import pytest

from repro.sky.sources import grid_test_sky, random_sky


def test_random_sky_counts_and_bounds():
    sky = random_sky(50, image_size=0.1, fill_factor=0.5, seed=0)
    assert sky.n_sources == 50
    r = np.hypot(sky.l, sky.m)
    assert r.max() <= 0.5 * 0.1 * 0.5 + 1e-12


def test_random_sky_flux_range():
    sky = random_sky(200, image_size=0.1, flux_range=(0.5, 2.0), seed=1)
    flux = sky.brightness[:, 0, 0].real
    assert flux.min() >= 0.5 - 1e-9
    assert flux.max() <= 2.0 + 1e-9


def test_random_sky_deterministic():
    a = random_sky(10, 0.1, seed=42)
    b = random_sky(10, 0.1, seed=42)
    np.testing.assert_array_equal(a.l, b.l)
    np.testing.assert_array_equal(a.brightness, b.brightness)


def test_random_sky_polarized_fraction():
    unpol = random_sky(50, 0.1, polarized_fraction=0.0, seed=2)
    pol = random_sky(50, 0.1, polarized_fraction=1.0, seed=2)
    # unpolarised: XX == YY everywhere; polarised: they differ for most sources
    assert np.allclose(unpol.brightness[:, 0, 0], unpol.brightness[:, 1, 1])
    diff = np.abs(pol.brightness[:, 0, 0] - pol.brightness[:, 1, 1])
    assert (diff > 1e-12).sum() > 25


def test_random_sky_validation():
    with pytest.raises(ValueError):
        random_sky(0, 0.1)
    with pytest.raises(ValueError):
        random_sky(5, 0.1, fill_factor=0.0)


def test_grid_test_sky_lattice():
    sky = grid_test_sky(image_size=0.1, n_per_side=3)
    assert sky.n_sources == 9
    # lattice is symmetric about the origin
    assert sorted(np.round(sky.l, 12)) == sorted(np.round(-sky.l, 12))
    assert 0.0 in np.round(sky.l, 12)


def test_grid_test_sky_validation():
    with pytest.raises(ValueError):
        grid_test_sky(0.1, n_per_side=0)
