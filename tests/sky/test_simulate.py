"""Unit tests for the direct measurement-equation predictor (the oracle)."""

import numpy as np
import pytest

from repro.aterms.generators import GaussianBeamATerm, IdentityATerm, IonosphereATerm
from repro.aterms.jones import apply_sandwich
from repro.aterms.schedule import ATermSchedule
from repro.constants import SPEED_OF_LIGHT
from repro.sky.model import SkyModel
from repro.sky.simulate import predict_baseline, predict_visibilities


def test_single_visibility_analytic():
    """One source, one baseline, one channel: match the formula by hand."""
    l0, m0, flux = 0.01, -0.02, 3.0
    freq = 150e6
    uvw_m = np.array([[500.0, -300.0, 120.0]])
    sky = SkyModel.single(l0, m0, flux=flux)
    vis = predict_baseline(uvw_m, np.array([freq]), sky)
    n0 = 1.0 - np.sqrt(1 - l0 * l0 - m0 * m0)
    u, v, w = uvw_m[0] * freq / SPEED_OF_LIGHT
    expected = flux * np.exp(-2j * np.pi * (u * l0 + v * m0 + w * n0))
    assert vis.shape == (1, 1, 2, 2)
    assert vis[0, 0, 0, 0] == pytest.approx(expected, rel=1e-5)
    assert vis[0, 0, 1, 1] == pytest.approx(expected, rel=1e-5)
    assert vis[0, 0, 0, 1] == 0


def test_source_at_phase_centre_gives_constant_visibility():
    sky = SkyModel.single(0.0, 0.0, flux=1.5)
    rng = np.random.default_rng(0)
    uvw_m = rng.standard_normal((16, 3)) * 1000
    vis = predict_baseline(uvw_m, np.array([100e6, 200e6]), sky)
    np.testing.assert_allclose(vis[..., 0, 0], 1.5, atol=1e-5)


def test_conjugate_symmetry_for_real_sky():
    """V(-u, -v, -w) = conj(V(u, v, w)) for Hermitian brightness."""
    sky = SkyModel.single(0.02, 0.01, flux=2.0)
    uvw_m = np.array([[700.0, 200.0, -50.0]])
    freqs = np.array([150e6])
    v_pos = predict_baseline(uvw_m, freqs, sky)
    v_neg = predict_baseline(-uvw_m, freqs, sky)
    np.testing.assert_allclose(v_neg, np.conj(v_pos), rtol=1e-5)


def test_superposition_over_sources():
    freqs = np.array([150e6])
    uvw_m = np.random.default_rng(1).standard_normal((8, 3)) * 800
    s1 = SkyModel.single(0.01, 0.0, flux=1.0)
    s2 = SkyModel.single(-0.005, 0.02, flux=2.0)
    both = SkyModel(
        l=np.concatenate([s1.l, s2.l]),
        m=np.concatenate([s1.m, s2.m]),
        brightness=np.concatenate([s1.brightness, s2.brightness]),
    )
    np.testing.assert_allclose(
        predict_baseline(uvw_m, freqs, both),
        predict_baseline(uvw_m, freqs, s1) + predict_baseline(uvw_m, freqs, s2),
        atol=1e-4,
    )


def test_time_chunking_invariance():
    sky = SkyModel.single(0.01, 0.005, flux=1.0)
    uvw_m = np.random.default_rng(2).standard_normal((50, 3)) * 500
    freqs = np.array([120e6, 180e6])
    a = predict_baseline(uvw_m, freqs, sky, time_chunk=7)
    b = predict_baseline(uvw_m, freqs, sky, time_chunk=50)
    np.testing.assert_allclose(a, b, atol=1e-6)


def test_predict_visibilities_shape(small_obs, small_baselines, single_source_sky):
    vis = predict_visibilities(
        small_obs.uvw_m, small_obs.frequencies_hz, single_source_sky,
        baselines=small_baselines,
    )
    assert vis.shape == (
        small_obs.n_baselines, small_obs.n_times, small_obs.n_channels, 2, 2
    )
    assert vis.dtype == np.complex64


def test_identity_aterms_match_no_aterms(small_obs, small_baselines, single_source_sky):
    plain = predict_visibilities(
        small_obs.uvw_m[:4], small_obs.frequencies_hz, single_source_sky,
        baselines=small_baselines[:4],
    )
    ident = predict_visibilities(
        small_obs.uvw_m[:4], small_obs.frequencies_hz, single_source_sky,
        baselines=small_baselines[:4], aterms=IdentityATerm(),
    )
    np.testing.assert_array_equal(plain, ident)


def test_aterms_required_baselines():
    sky = SkyModel.single(0.01, 0.0)
    uvw = np.zeros((2, 3, 3))
    with pytest.raises(ValueError):
        predict_visibilities(
            uvw, np.array([1e8]), sky,
            aterms=GaussianBeamATerm(fwhm=0.1, gain_drift_rms=0.1),
        )


def test_aterm_corruption_matches_manual_sandwich():
    """With a beam A-term, the predicted visibility must equal the manual
    A_p B A_q^H corruption followed by the plain phase sum."""
    beam = GaussianBeamATerm(fwhm=0.05, gain_drift_rms=0.2, seed=5)
    sky = SkyModel.single(0.012, -0.008, flux=2.0)
    uvw_m = np.array([[[300.0, 100.0, 20.0], [310.0, 90.0, 22.0]]])  # 1 baseline, 2 t
    freqs = np.array([150e6])
    baselines = np.array([[3, 7]])
    vis = predict_visibilities(
        uvw_m, freqs, sky, baselines=baselines, aterms=beam,
        schedule=ATermSchedule(0),
    )
    a_p = beam.evaluate(3, 0, sky.l, sky.m)
    a_q = beam.evaluate(7, 0, sky.l, sky.m)
    corrupted = apply_sandwich(a_p, sky.brightness, a_q)
    expected = predict_baseline(uvw_m[0], freqs, sky, corrupted_brightness=corrupted)
    np.testing.assert_allclose(vis[0], expected, atol=1e-5)


def test_aterm_schedule_changes_between_intervals():
    """With a drifting beam and a 2-step schedule, visibilities in different
    intervals see different gains."""
    beam = GaussianBeamATerm(fwhm=0.05, gain_drift_rms=0.3, seed=6)
    sky = SkyModel.single(0.0, 0.0, flux=1.0)  # phase centre: pure gain effect
    uvw_m = np.zeros((1, 4, 3))
    freqs = np.array([150e6])
    vis = predict_visibilities(
        uvw_m, freqs, sky, baselines=np.array([[0, 1]]), aterms=beam,
        schedule=ATermSchedule(2),
    )
    xx = vis[0, :, 0, 0, 0]
    assert xx[0] == pytest.approx(xx[1])  # same interval
    assert abs(xx[0] - xx[2]) > 1e-6  # interval boundary at t=2


def test_ionosphere_aterm_pure_phase_preserves_amplitude():
    iono = IonosphereATerm(rms_rad=1.0, field_of_view=0.1, seed=7)
    sky = SkyModel.single(0.01, 0.01, flux=2.0)
    uvw_m = np.zeros((1, 1, 3))
    vis = predict_visibilities(
        uvw_m, np.array([150e6]), sky, baselines=np.array([[0, 1]]), aterms=iono
    )
    assert abs(vis[0, 0, 0, 0, 0]) == pytest.approx(2.0, rel=1e-5)


def test_shape_validation():
    sky = SkyModel.single(0.0, 0.0)
    with pytest.raises(ValueError):
        predict_visibilities(np.zeros((2, 3)), np.array([1e8]), sky)
    with pytest.raises(ValueError):
        predict_baseline(
            np.zeros((3, 3)), np.array([1e8]), sky,
            corrupted_brightness=np.zeros((2, 2, 2)),
        )
