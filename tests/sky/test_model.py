"""Unit tests for sky models."""

import numpy as np
import pytest

from repro.sky.model import (
    PointSource,
    SkyModel,
    brightness_from_stokes,
    brightness_unpolarized_unit,
)


def test_brightness_from_stokes_unpolarized():
    b = brightness_from_stokes(2.0)
    np.testing.assert_allclose(b, np.diag([1.0, 1.0]))


def test_brightness_from_stokes_hermitian():
    b = brightness_from_stokes(1.0, 0.2, 0.1, 0.05)
    np.testing.assert_allclose(b, b.conj().T)


def test_brightness_from_stokes_recovers_stokes():
    i, q, u, v = 2.0, 0.3, -0.2, 0.1
    b = brightness_from_stokes(i, q, u, v)
    assert (b[0, 0] + b[1, 1]).real == pytest.approx(i)
    assert (b[0, 0] - b[1, 1]).real == pytest.approx(q)
    assert (b[0, 1] + b[1, 0]).real == pytest.approx(u)
    assert ((b[0, 1] - b[1, 0]) / 1j).real == pytest.approx(v)


def test_point_source_validation():
    with pytest.raises(ValueError):
        PointSource(0.8, 0.8, brightness_unpolarized_unit())
    with pytest.raises(ValueError):
        PointSource(0.0, 0.0, np.eye(3))


def test_sky_model_single():
    sky = SkyModel.single(0.01, -0.02, flux=3.0)
    assert sky.n_sources == 1
    assert sky.total_flux_xx() == pytest.approx(3.0)


def test_sky_model_from_sources_roundtrip():
    sources = [
        PointSource(0.01, 0.0, brightness_unpolarized_unit(1.0)),
        PointSource(-0.02, 0.015, brightness_from_stokes(2.0, 0.1)),
    ]
    sky = SkyModel.from_sources(sources)
    assert sky.n_sources == 2
    back = list(sky)
    assert back[1].l == pytest.approx(-0.02)
    np.testing.assert_allclose(back[1].brightness, sources[1].brightness)


def test_sky_model_from_sources_empty():
    with pytest.raises(ValueError):
        SkyModel.from_sources([])


def test_sky_model_shape_validation():
    with pytest.raises(ValueError):
        SkyModel(l=np.array([0.0, 0.1]), m=np.array([0.0]), brightness=np.zeros((2, 2, 2)))
    with pytest.raises(ValueError):
        SkyModel(l=np.array([0.0]), m=np.array([0.0]), brightness=np.zeros((3, 2, 2)))


def test_sky_model_rejects_horizon_sources():
    with pytest.raises(ValueError):
        SkyModel(l=np.array([0.9]), m=np.array([0.9]), brightness=np.zeros((1, 2, 2)))


def test_to_image_places_flux_at_nearest_pixel():
    sky = SkyModel.single(0.0, 0.0, flux=2.5)
    img = sky.to_image(64, 0.05)
    assert img.shape == (4, 64, 64)
    assert img[0, 32, 32] == pytest.approx(2.5)
    assert img[3, 32, 32] == pytest.approx(2.5)
    assert img[1].sum() == 0  # XY empty for unpolarised


def test_to_image_offcentre_position():
    image_size, n = 0.064, 64
    dl = image_size / n
    sky = SkyModel.single(3 * dl, -5 * dl, flux=1.0)
    img = sky.to_image(n, image_size)
    assert img[0, 32 - 5, 32 + 3] == pytest.approx(1.0)


def test_to_image_accumulates_coincident_sources():
    dl = 0.05 / 64
    sky = SkyModel(
        l=np.array([0.0, 0.2 * dl]),  # both round to the same pixel
        m=np.array([0.0, 0.0]),
        brightness=np.stack([np.eye(2), np.eye(2)]).astype(complex),
    )
    img = sky.to_image(64, 0.05)
    assert img[0, 32, 32] == pytest.approx(2.0)


def test_to_image_rejects_out_of_field():
    sky = SkyModel.single(0.2, 0.0, flux=1.0)
    with pytest.raises(ValueError):
        sky.to_image(64, 0.05)
