"""Property-based cross-backend equivalence.

Hypothesis draws random observation geometries and plan parameters; every
registered backend grids and degrids the same draw and the outputs must
agree pairwise.  The ``jit`` backend without numba is just ``vectorized``
behind a warning, so its draws are only compared where numba is importable
(the dedicated skip-marked test); the reference/vectorized comparison runs
everywhere.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import available_backends, get_backend
from repro.backends.jit import HAVE_NUMBA
from repro.core.pipeline import IDG, IDGConfig
from repro.telescope.observation import ska1_low_observation

RTOL = 1e-5

#: Backends worth comparing: jit-without-numba is vectorized by delegation.
COMPARED = tuple(
    name
    for name in available_backends()
    if HAVE_NUMBA or not get_backend(name).__class__.__name__ == "JitBackend"
)


def _draw_outputs(backend_name, n_stations, n_times, n_channels, subgrid_size,
                  w_offset, seed):
    obs = ska1_low_observation(
        n_stations=n_stations,
        n_times=n_times,
        n_channels=n_channels,
        integration_time_s=45.0,
        max_radius_m=300.0,
        seed=seed,
    )
    idg = IDG(
        obs.fitting_gridspec(128),
        IDGConfig(
            subgrid_size=subgrid_size,
            kernel_support=2,
            time_max=4,
            work_group_size=4,
            backend=backend_name,
        ),
    )
    plan = idg.make_plan(
        obs.uvw_m, obs.frequencies_hz, obs.array.baselines(), w_offset=w_offset
    )
    rng = np.random.default_rng(seed)
    shape = (obs.array.n_baselines, n_times, n_channels, 2, 2)
    vis = (
        rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    ).astype(np.complex64)
    stop = min(4, plan.n_subgrids)
    subgrids = idg.backend.grid_work_group(
        plan, 0, stop, obs.uvw_m, vis, idg.taper,
        lmn=idg.lmn, channel_recurrence=idg.config.channel_recurrence,
    )
    grid = idg.grid(plan, obs.uvw_m, vis)
    degridded = idg.degrid(plan, obs.uvw_m, grid)
    return subgrids, grid, degridded


@given(
    n_stations=st.integers(min_value=3, max_value=5),
    n_times=st.integers(min_value=1, max_value=5),
    n_channels=st.sampled_from([1, 2, 4]),
    subgrid_size=st.sampled_from([8, 12]),
    w_offset=st.sampled_from([0.0, 12.0]),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=10, deadline=None)
def test_backends_equivalent_on_random_plans(
    n_stations, n_times, n_channels, subgrid_size, w_offset, seed
):
    """Work-group subgrids, master grids and degridded visibilities agree
    pairwise between all compared backends on arbitrary draws."""
    outputs = {
        name: _draw_outputs(
            name, n_stations, n_times, n_channels, subgrid_size, w_offset, seed
        )
        for name in COMPARED
    }
    for a, b in itertools.combinations(COMPARED, 2):
        for what, x, y in zip(
            ("subgrids", "grid", "degridded"), outputs[a], outputs[b]
        ):
            scale = max(float(np.abs(x).max()), 1e-12)
            np.testing.assert_allclose(
                y, x, rtol=RTOL, atol=RTOL * scale,
                err_msg=f"{what}: {a} vs {b} (seed={seed})",
            )


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=5, deadline=None)
def test_jit_matches_vectorized_on_random_plans(seed):
    """The compiled jit kernels agree with the BLAS fast path draw-for-draw."""
    jit = _draw_outputs("jit", 4, 3, 4, 8, 0.0, seed)
    vec = _draw_outputs("vectorized", 4, 3, 4, 8, 0.0, seed)
    for what, x, y in zip(("subgrids", "grid", "degridded"), vec, jit):
        scale = max(float(np.abs(x).max()), 1e-12)
        np.testing.assert_allclose(
            y, x, rtol=RTOL, atol=RTOL * scale, err_msg=f"{what} (seed={seed})"
        )
