"""The shared differential corpus for the cross-backend harness.

Every registered kernel backend runs the same corpus of small but
structurally varied plans — a plain observation, a w-offset plan, an A-term
schedule, a wideband (C = 512) subband exercising the channel-phasor
recurrence, and a degenerate single-visibility plan — and the tests in this
directory hold all backends to pairwise agreement at ``rtol = 1e-5`` plus
per-backend gridder/degridder adjointness.

Running a case through a backend is expensive (the ``reference`` oracle is a
direct sum), so results are computed once per ``(case, backend)`` and cached
for the whole session in :class:`Corpus`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.aterms.generators import GaussianBeamATerm
from repro.aterms.schedule import ATermSchedule
from repro.backends import available_backends
from repro.core.pipeline import IDG, IDGConfig
from repro.telescope.observation import ska1_low_observation


@dataclass(frozen=True)
class Case:
    """One corpus entry: an observation geometry plus plan parameters."""

    name: str
    n_stations: int = 5
    n_times: int = 6
    n_channels: int = 4
    grid_size: int = 128
    subgrid_size: int = 12
    kernel_support: int = 4
    time_max: int = 4
    max_radius_m: float = 400.0
    #: ``fitting_gridspec`` fill factor; > 1 shrinks the representable uv
    #: extent so the longest baselines are flagged (exercises plan flags).
    fill_factor: float = 0.9
    w_offset: float = 0.0
    aterm_interval: int | None = None
    seed: int = 0


CASES = (
    Case("baseline", seed=11),
    Case("w-offset", w_offset=15.0, fill_factor=1.4, seed=12),
    Case("aterms", aterm_interval=3, seed=13),
    Case(
        "wideband",
        n_stations=3,
        n_times=2,
        n_channels=512,
        subgrid_size=8,
        kernel_support=2,
        max_radius_m=250.0,
        seed=14,
    ),
    Case(
        "single-visibility",
        n_stations=3,
        n_times=1,
        n_channels=1,
        subgrid_size=8,
        kernel_support=2,
        time_max=1,
        max_radius_m=250.0,
        seed=15,
    ),
)

#: Registered backends, captured at collection time.
BACKENDS = available_backends()


class Corpus:
    """Builds and caches per-case workloads and per-(case, backend) results."""

    def __init__(self) -> None:
        self._workloads: dict[str, dict] = {}
        self._results: dict[tuple[str, str], dict] = {}

    def workload(self, case: Case) -> dict:
        """Observation, visibilities, model grid and A-terms of a case."""
        if case.name not in self._workloads:
            obs = ska1_low_observation(
                n_stations=case.n_stations,
                n_times=case.n_times,
                n_channels=case.n_channels,
                integration_time_s=60.0,
                max_radius_m=case.max_radius_m,
                seed=case.seed,
            )
            gridspec = obs.fitting_gridspec(
                case.grid_size, fill_factor=case.fill_factor
            )
            rng = np.random.default_rng(case.seed)
            vis_shape = (
                obs.array.n_baselines, case.n_times, case.n_channels, 2, 2
            )
            vis = (
                rng.standard_normal(vis_shape)
                + 1j * rng.standard_normal(vis_shape)
            ).astype(np.complex64)
            model_shape = (4, case.grid_size, case.grid_size)
            model = (
                rng.standard_normal(model_shape)
                + 1j * rng.standard_normal(model_shape)
            ).astype(np.complex64)
            aterms = schedule = None
            if case.aterm_interval is not None:
                aterms = GaussianBeamATerm(
                    fwhm=1.5 * gridspec.image_size, gain_drift_rms=0.05
                )
                schedule = ATermSchedule(case.aterm_interval)
            self._workloads[case.name] = {
                "obs": obs,
                "gridspec": gridspec,
                "vis": vis,
                "model": model,
                "aterms": aterms,
                "schedule": schedule,
            }
        return self._workloads[case.name]

    def results(self, case: Case, backend_name: str) -> dict:
        """Grid and degrid the case's workload through one backend (cached)."""
        key = (case.name, backend_name)
        if key not in self._results:
            w = self.workload(case)
            obs = w["obs"]
            idg = IDG(
                w["gridspec"],
                IDGConfig(
                    subgrid_size=case.subgrid_size,
                    kernel_support=case.kernel_support,
                    time_max=case.time_max,
                    work_group_size=8,
                    backend=backend_name,
                ),
            )
            plan = idg.make_plan(
                obs.uvw_m,
                obs.frequencies_hz,
                obs.array.baselines(),
                aterm_schedule=w["schedule"],
                w_offset=case.w_offset,
            )
            assert plan.statistics.n_visibilities_gridded > 0
            grid = idg.grid(plan, obs.uvw_m, w["vis"], aterms=w["aterms"])
            degridded = idg.degrid(plan, obs.uvw_m, w["model"], aterms=w["aterms"])
            self._results[key] = {
                "idg": idg,
                "plan": plan,
                "fields": idg.aterm_fields(plan, w["aterms"]),
                "grid": grid,
                "degridded": degridded,
            }
        return self._results[key]


@pytest.fixture(scope="session")
def corpus():
    return Corpus()


@pytest.fixture(params=CASES, ids=lambda c: c.name)
def case(request):
    return request.param
