"""Batched vs per-item execution on the full differential corpus.

The ``vectorized`` backend dispatches to the shape-bucketed batched drivers
when ``batched=True`` (the default) and to the per-item kernels otherwise.
Both paths must agree on every corpus case — including the A-term case
(stacked Jones sandwiches) and the wideband C = 512 case (batched
channel-phasor recurrence with renormalisation) — at the harness tolerance.
"""

import numpy as np
import pytest

RTOL = 1e-5


def _run(case, corpus, batched):
    """Grid and degrid one corpus case through vectorized work-group calls."""
    r = corpus.results(case, "vectorized")
    w = corpus.workload(case)
    idg, plan, fields = r["idg"], r["plan"], r["fields"]
    backend = idg.backend
    obs, vis = w["obs"], w["vis"]
    stop = plan.n_subgrids

    subgrids = backend.grid_work_group(
        plan, 0, stop, obs.uvw_m, vis, idg.taper,
        lmn=idg.lmn, aterm_fields=fields,
        channel_recurrence=idg.config.channel_recurrence,
        batched=batched,
    )

    rng = np.random.default_rng(42)
    probe = (
        rng.standard_normal(subgrids.shape)
        + 1j * rng.standard_normal(subgrids.shape)
    ).astype(np.complex64)
    predicted = np.zeros_like(vis)
    backend.degrid_work_group(
        plan, 0, stop, probe, obs.uvw_m, predicted, idg.taper,
        lmn=idg.lmn, aterm_fields=fields,
        channel_recurrence=idg.config.channel_recurrence,
        batched=batched,
    )
    return subgrids, predicted


def _assert_close(batched, per_item, label):
    scale = float(np.abs(per_item).max())
    assert scale > 0, f"{label}: degenerate all-zero per-item output"
    np.testing.assert_allclose(
        batched, per_item, rtol=RTOL, atol=RTOL * scale, err_msg=label
    )


def test_batched_grid_and_degrid_match_per_item(case, corpus):
    batched_grid, batched_vis = _run(case, corpus, batched=True)
    per_item_grid, per_item_vis = _run(case, corpus, batched=False)
    _assert_close(batched_grid, per_item_grid, f"{case.name}: grid")
    _assert_close(batched_vis, per_item_vis, f"{case.name}: degrid")


def test_batched_pipeline_matches_per_item_pipeline(case, corpus):
    """End to end through ``IDG.grid``/``IDG.degrid`` with the config knob."""
    from repro.core.pipeline import IDG, IDGConfig

    w = corpus.workload(case)
    obs = w["obs"]
    results = {}
    for batched in (True, False):
        idg = IDG(
            w["gridspec"],
            IDGConfig(
                subgrid_size=case.subgrid_size,
                kernel_support=case.kernel_support,
                time_max=case.time_max,
                work_group_size=8,
                backend="vectorized",
                batched=batched,
            ),
        )
        plan = idg.make_plan(
            obs.uvw_m, obs.frequencies_hz, obs.array.baselines(),
            aterm_schedule=w["schedule"], w_offset=case.w_offset,
        )
        grid = idg.grid(plan, obs.uvw_m, w["vis"], aterms=w["aterms"])
        degridded = idg.degrid(plan, obs.uvw_m, w["model"], aterms=w["aterms"])
        results[batched] = (grid, degridded)
    _assert_close(results[True][0], results[False][0], f"{case.name}: grid")
    _assert_close(results[True][1], results[False][1], f"{case.name}: degrid")


def test_default_config_is_batched():
    from repro.core.pipeline import IDGConfig

    assert IDGConfig().batched is True
