"""Backend registry: lookup, resolution order, fallback, Listing-1 loops."""

import logging

import numpy as np
import pytest

from repro.backends import (
    DEFAULT_BACKEND,
    IDG_BACKEND_ENV,
    JitBackend,
    KernelBackend,
    VectorizedBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.backends.jit import (
    HAVE_NUMBA,
    _channel_step,
    _degridder_accumulate_py,
    _gridder_accumulate_py,
)
from repro.core.degridder import degridder_subgrid_fast
from repro.core.gridder import gridder_subgrid_fast, subgrid_lmn
from repro.core.pipeline import IDG, IDGConfig
from repro.gridspec import GridSpec
from repro.kernels.spheroidal import spheroidal_taper
from repro.telescope.observation import ska1_low_observation


def test_builtin_backends_registered():
    assert {"reference", "vectorized", "jit"} <= set(available_backends())


def test_get_backend_unknown_name_lists_available():
    with pytest.raises(KeyError, match="vectorized"):
        get_backend("no-such-backend")


def test_register_rejects_abstract_name():
    with pytest.raises(ValueError):
        register_backend(KernelBackend())


def test_register_and_replace():
    from repro.backends import registry

    class Double(VectorizedBackend):
        name = "test-double"

    first = register_backend(Double())
    try:
        assert get_backend("test-double") is first
        second = register_backend(Double())
        assert get_backend("test-double") is second  # replacement is deliberate
    finally:
        del registry._REGISTRY["test-double"]


def test_resolve_backend_precedence(monkeypatch):
    monkeypatch.delenv(IDG_BACKEND_ENV, raising=False)
    assert resolve_backend(None).name == DEFAULT_BACKEND
    monkeypatch.setenv(IDG_BACKEND_ENV, "reference")
    assert resolve_backend(None).name == "reference"
    # an explicit name beats the environment
    assert resolve_backend("vectorized").name == "vectorized"
    # an instance passes through unregistered
    mine = VectorizedBackend()
    assert resolve_backend(mine) is mine


def test_idg_config_consults_environment(monkeypatch):
    gridspec = GridSpec(grid_size=64, image_size=0.1)
    monkeypatch.setenv(IDG_BACKEND_ENV, "reference")
    assert IDG(gridspec, IDGConfig(subgrid_size=8, kernel_support=2)).backend.name == "reference"
    monkeypatch.delenv(IDG_BACKEND_ENV)
    assert IDG(gridspec, IDGConfig(subgrid_size=8, kernel_support=2)).backend.name == DEFAULT_BACKEND
    named = IDG(gridspec, IDGConfig(subgrid_size=8, kernel_support=2, backend="jit"))
    assert named.backend.name == "jit"


def test_unknown_backend_raises_helpfully():
    gridspec = GridSpec(grid_size=64, image_size=0.1)
    with pytest.raises(KeyError, match="available"):
        IDG(gridspec, IDGConfig(subgrid_size=8, kernel_support=2, backend="cuda"))


def test_jit_fallback_is_logged_on_first_use(caplog):
    """Without numba the jit backend delegates with a warning — on first
    *use*, not at import, so merely registering it stays silent."""
    with caplog.at_level(logging.WARNING, logger="repro.backends.jit"):
        backend = JitBackend()
    assert backend.is_fallback == (not HAVE_NUMBA)
    assert "falls back" not in caplog.text  # construction is silent
    if HAVE_NUMBA:
        return
    obs = ska1_low_observation(
        n_stations=3, n_times=2, n_channels=1, integration_time_s=30.0,
        max_radius_m=200.0, seed=1,
    )
    idg = IDG(
        obs.fitting_gridspec(64),
        IDGConfig(subgrid_size=8, kernel_support=2, backend=backend),
    )
    plan = idg.make_plan(obs.uvw_m, obs.frequencies_hz, obs.array.baselines())
    vis = np.zeros((obs.array.n_baselines, 2, 1, 2, 2), dtype=np.complex64)
    with caplog.at_level(logging.WARNING, logger="repro.backends.jit"):
        idg.grid(plan, obs.uvw_m, vis)
        idg.grid(plan, obs.uvw_m, vis)
    warnings = [r for r in caplog.records if "falls back" in r.message]
    assert len(warnings) == 1  # warned exactly once, not per call


def test_channel_step():
    assert _channel_step(np.array([0.5])) == 0.0
    assert _channel_step(np.array([0.5, 0.6, 0.7])) == pytest.approx(0.1)
    with pytest.raises(ValueError):
        _channel_step(np.array([0.5, 0.6, 0.9]))


@pytest.fixture(scope="module")
def listing1_problem():
    """A tiny subgrid problem shared by the pure-Python loop tests."""
    rng = np.random.default_rng(7)
    n, n_times, n_channels = 6, 3, 5
    lmn = subgrid_lmn(n, 0.1)
    uvw = rng.standard_normal((n_times, 3)) * 50.0
    scales = (150e6 + 0.2e6 * np.arange(n_channels)) / 299792458.0
    offset = np.array([3.0, -2.0, 1.5])
    taper = spheroidal_taper(n)
    vis = rng.standard_normal((n_times, n_channels, 4)) + 1j * rng.standard_normal(
        (n_times, n_channels, 4)
    )
    return n, lmn, uvw, scales, offset, taper, vis


def test_listing1_gridder_loop_matches_vectorized(listing1_problem):
    """The pure-Python Listing-1 gridder agrees with the BLAS fast path,
    so the numba-compiled version computes the same math when available."""
    n, lmn, uvw, scales, offset, taper, vis = listing1_problem
    n_times, n_channels = vis.shape[:2]
    acc = np.zeros((n * n, 4), dtype=np.complex128)
    _gridder_accumulate_py(
        lmn, uvw, float(scales[0]), float(np.diff(scales)[0]), offset, vis, acc
    )
    mine = (acc.reshape(n, n, 2, 2) * taper[:, :, None, None]).astype(np.complex64)
    fast = gridder_subgrid_fast(
        vis.reshape(n_times, n_channels, 2, 2).astype(np.complex64),
        uvw, scales, offset, lmn, taper,
    )
    np.testing.assert_allclose(mine, fast, rtol=1e-5, atol=1e-5 * np.abs(fast).max())


def test_listing1_degridder_loop_matches_vectorized(listing1_problem):
    n, lmn, uvw, scales, offset, taper, vis = listing1_problem
    n_times, n_channels = vis.shape[:2]
    rng = np.random.default_rng(8)
    subgrid = (
        rng.standard_normal((n, n, 2, 2)) + 1j * rng.standard_normal((n, n, 2, 2))
    ).astype(np.complex64)
    tapered = (subgrid * taper[:, :, None, None]).astype(np.complex128)
    out = np.zeros((n_times, n_channels, 4), dtype=np.complex128)
    _degridder_accumulate_py(
        lmn, uvw, float(scales[0]), float(np.diff(scales)[0]), offset,
        np.ascontiguousarray(tapered.reshape(n * n, 4)), out,
    )
    fast = degridder_subgrid_fast(subgrid, uvw, scales, offset, lmn, taper)
    got = out.reshape(n_times, n_channels, 2, 2).astype(np.complex64)
    np.testing.assert_allclose(got, fast, rtol=1e-5, atol=1e-5 * np.abs(fast).max())


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
def test_compiled_kernels_match_pure_python(listing1_problem):
    """With numba present, the compiled loops agree with their _py originals."""
    from repro.backends.jit import _degridder_accumulate, _gridder_accumulate

    n, lmn, uvw, scales, offset, taper, vis = listing1_problem
    s0, ds = float(scales[0]), float(np.diff(scales)[0])
    acc_py = np.zeros((n * n, 4), dtype=np.complex128)
    acc_nb = np.zeros((n * n, 4), dtype=np.complex128)
    _gridder_accumulate_py(lmn, uvw, s0, ds, offset, vis, acc_py)
    _gridder_accumulate(lmn, uvw, s0, ds, offset, vis, acc_nb)
    np.testing.assert_allclose(acc_nb, acc_py, rtol=1e-6, atol=1e-6 * np.abs(acc_py).max())

    pixels = np.ascontiguousarray(acc_py)
    out_py = np.zeros_like(vis)
    out_nb = np.zeros_like(vis)
    _degridder_accumulate_py(lmn, uvw, s0, ds, offset, pixels, out_py)
    _degridder_accumulate(lmn, uvw, s0, ds, offset, pixels, out_nb)
    np.testing.assert_allclose(out_nb, out_py, rtol=1e-6, atol=1e-6 * np.abs(out_py).max())
