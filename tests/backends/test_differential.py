"""The cross-backend differential harness.

Every registered backend runs the shared corpus (see ``conftest.py``) and is
held to two contracts:

* **pairwise equivalence** — master grids and degridded visibilities agree
  between every pair of backends to ``rtol = 1e-5`` (absolute floor scaled
  to the array's peak magnitude, since both outputs span many orders of
  magnitude);
* **adjointness** — each backend's gridder and degridder form an adjoint
  pair, ``<grid(V), S> == <V, degrid(S)>``, including taper and A-terms.
"""

import itertools

import numpy as np
import pytest

from repro.backends import available_backends

BACKENDS = available_backends()
PAIRS = list(itertools.combinations(BACKENDS, 2))
RTOL = 1e-5


def _assert_equivalent(a, b, label):
    scale = float(np.abs(a).max())
    assert scale > 0, f"{label}: degenerate all-zero output"
    np.testing.assert_allclose(
        b, a, rtol=RTOL, atol=RTOL * scale, err_msg=label
    )


def test_every_backend_registered_and_covered():
    """The corpus really runs every registered backend."""
    assert {"reference", "vectorized", "jit"} <= set(BACKENDS)
    covered = {name for pair in PAIRS for name in pair}
    assert covered == set(BACKENDS)


@pytest.mark.parametrize("pair", PAIRS, ids="-vs-".join)
def test_grids_agree_pairwise(case, corpus, pair):
    a, b = (corpus.results(case, name) for name in pair)
    _assert_equivalent(
        a["grid"], b["grid"], f"{case.name}: grid {pair[0]} vs {pair[1]}"
    )


@pytest.mark.parametrize("pair", PAIRS, ids="-vs-".join)
def test_degridded_visibilities_agree_pairwise(case, corpus, pair):
    a, b = (corpus.results(case, name) for name in pair)
    _assert_equivalent(
        a["degridded"],
        b["degridded"],
        f"{case.name}: degrid {pair[0]} vs {pair[1]}",
    )


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_gridder_degridder_adjoint(case, corpus, backend_name):
    """``<grid(V), S> == <V, degrid(S)>`` per backend, on real work groups.

    ``grid_work_group`` reads only the visibility slices its work items
    cover and ``degrid_work_group`` writes only those same slices, so the
    full-array inner products reduce to the covered entries on both sides.
    """
    r = corpus.results(case, backend_name)
    w = corpus.workload(case)
    idg, plan, fields = r["idg"], r["plan"], r["fields"]
    backend = idg.backend
    obs, vis = w["obs"], w["vis"]
    stop = min(8, plan.n_subgrids)

    subgrids = backend.grid_work_group(
        plan, 0, stop, obs.uvw_m, vis, idg.taper,
        lmn=idg.lmn, aterm_fields=fields,
        channel_recurrence=idg.config.channel_recurrence,
    )
    rng = np.random.default_rng(99)
    shape = subgrids.shape
    probe = (
        rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    ).astype(np.complex64)
    predicted = np.zeros_like(vis)
    backend.degrid_work_group(
        plan, 0, stop, probe, obs.uvw_m, predicted, idg.taper,
        lmn=idg.lmn, aterm_fields=fields,
        channel_recurrence=idg.config.channel_recurrence,
    )
    lhs = np.vdot(subgrids.astype(np.complex128), probe)
    rhs = np.vdot(vis, predicted.astype(np.complex128))
    scale = max(abs(lhs), abs(rhs), 1.0)
    assert abs(lhs - rhs) / scale < 2e-3, (
        f"{case.name}/{backend_name}: <grid(V), S>={lhs} != <V, degrid(S)>={rhs}"
    )


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_flagged_entries_stay_zero(case, corpus, backend_name):
    """Degridded output is zero exactly where the plan flagged samples."""
    r = corpus.results(case, backend_name)
    flagged = r["plan"].flagged
    if not flagged.any():
        pytest.skip("plan flags nothing for this case")
    assert not r["degridded"][flagged].any()
