"""Integration tests for the IDG facade: accuracy against the oracle."""

import numpy as np
import pytest

from repro.aterms.generators import GaussianBeamATerm, IonosphereATerm
from repro.aterms.schedule import ATermSchedule
from repro.core.pipeline import IDG, IDGConfig
from repro.imaging.image import (
    dirty_image_from_grid,
    find_peak,
    model_image_to_grid,
    stokes_i_image,
)
from repro.sky.simulate import predict_visibilities


def test_config_validation():
    with pytest.raises(ValueError):
        IDGConfig(subgrid_size=23)
    with pytest.raises(ValueError):
        IDGConfig(kernel_support=24, subgrid_size=24)
    with pytest.raises(ValueError):
        IDGConfig(time_max=0)


def test_with_config_returns_modified_copy(small_idg):
    other = small_idg.with_config(subgrid_size=32)
    assert other.config.subgrid_size == 32
    assert small_idg.config.subgrid_size == 24
    assert other.taper.shape == (32, 32)


def test_grid_shape_and_dtype(small_idg, small_plan, small_obs, single_source_vis):
    grid = small_idg.grid(small_plan, small_obs.uvw_m, single_source_vis)
    g = small_idg.gridspec.grid_size
    assert grid.shape == (4, g, g)
    assert grid.dtype == np.complex64
    assert np.abs(grid).max() > 0


def test_grid_input_validation(small_idg, small_plan, small_obs, single_source_vis):
    with pytest.raises(ValueError):
        small_idg.grid(small_plan, small_obs.uvw_m, single_source_vis[:, :, :2])
    with pytest.raises(ValueError):
        small_idg.grid(small_plan, small_obs.uvw_m[..., :2], single_source_vis)


def test_dirty_image_recovers_source_position_and_flux(
    small_idg, small_plan, small_obs, single_source_vis, snapped_source, small_gridspec
):
    l0, m0, flux = snapped_source
    grid = small_idg.grid(small_plan, small_obs.uvw_m, single_source_vis)
    image = stokes_i_image(
        dirty_image_from_grid(
            grid, small_gridspec,
            weight_sum=small_plan.statistics.n_visibilities_gridded,
        )
    )
    row, col, value = find_peak(image)
    g = small_gridspec.grid_size
    dl = small_gridspec.pixel_scale
    assert (row, col) == (round(m0 / dl) + g // 2, round(l0 / dl) + g // 2)
    assert value == pytest.approx(flux, rel=0.01)


def test_degrid_matches_direct_measurement_equation(
    small_idg, small_plan, small_obs, single_source_vis, snapped_source, small_gridspec
):
    """The headline accuracy test: IDG degridding of a point-source model must
    reproduce the analytic measurement equation to sub-percent error."""
    l0, m0, flux = snapped_source
    g = small_gridspec.grid_size
    dl = small_gridspec.pixel_scale
    model = np.zeros((4, g, g), dtype=np.complex128)
    model[0, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = flux
    model[3, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = flux
    mgrid = model_image_to_grid(model, small_gridspec)
    predicted = small_idg.degrid(small_plan, small_obs.uvw_m, mgrid)
    mask = ~small_plan.flagged
    err = np.abs(predicted[mask] - single_source_vis[mask])
    scale = np.abs(single_source_vis[mask]).max()
    assert err.max() / scale < 5e-3
    rms = np.sqrt((err**2).mean()) / np.sqrt((np.abs(single_source_vis[mask]) ** 2).mean())
    assert rms < 1e-3


def test_degrid_flagged_entries_zero(small_idg, small_obs, small_baselines, small_gridspec):
    config = IDGConfig(subgrid_size=4, kernel_support=2, time_max=4)
    idg = IDG(small_gridspec, config)
    plan = idg.make_plan(small_obs.uvw_m, small_obs.frequencies_hz, small_baselines)
    if not plan.flagged.any():
        pytest.skip("tiny subgrid produced no flagged visibilities")
    g = small_gridspec.grid_size
    grid = np.ones((4, g, g), dtype=np.complex64)
    out = idg.degrid(plan, small_obs.uvw_m, grid)
    assert np.all(out[plan.flagged] == 0)


def test_grid_accumulate_into_existing(small_idg, small_plan, small_obs, single_source_vis):
    g1 = small_idg.grid(small_plan, small_obs.uvw_m, single_source_vis)
    g2 = small_idg.grid(small_plan, small_obs.uvw_m, single_source_vis, grid=g1.copy())
    np.testing.assert_allclose(g2, 2 * g1, atol=1e-4)


def test_work_group_size_invariance(small_idg, small_plan, small_obs, single_source_vis):
    grid_a = small_idg.grid(small_plan, small_obs.uvw_m, single_source_vis)
    idg_b = small_idg.with_config(work_group_size=3)
    grid_b = idg_b.grid(small_plan, small_obs.uvw_m, single_source_vis)
    np.testing.assert_allclose(grid_a, grid_b, atol=1e-5)


def test_grid_with_beam_aterms_accuracy(small_obs, small_baselines, small_gridspec):
    """Degridding with a non-trivial A-term must match the corrupted oracle."""
    beam = GaussianBeamATerm(fwhm=1.2 * small_gridspec.image_size, gain_drift_rms=0.05, seed=9)
    schedule = ATermSchedule(8)
    gs = small_gridspec
    dl = gs.pixel_scale
    l0 = round(0.1 * gs.image_size / dl) * dl
    m0 = round(0.12 * gs.image_size / dl) * dl
    from repro.sky.model import SkyModel

    sky = SkyModel.single(l0, m0, flux=1.0)
    vis = predict_visibilities(
        small_obs.uvw_m, small_obs.frequencies_hz, sky,
        baselines=small_baselines, aterms=beam, schedule=schedule,
    )
    idg = IDG(gs, IDGConfig(subgrid_size=24, kernel_support=8, time_max=16))
    plan = idg.make_plan(
        small_obs.uvw_m, small_obs.frequencies_hz, small_baselines, aterm_schedule=schedule
    )
    g = gs.grid_size
    model = np.zeros((4, g, g), dtype=np.complex128)
    model[0, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = 1.0
    model[3, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = 1.0
    mgrid = model_image_to_grid(model, gs)
    predicted = idg.degrid(plan, small_obs.uvw_m, mgrid, aterms=beam)
    mask = ~plan.flagged
    err = np.abs(predicted[mask] - vis[mask])
    rms = np.sqrt((err**2).mean()) / np.sqrt((np.abs(vis[mask]) ** 2).mean())
    assert rms < 5e-3


def test_aterm_fields_cache_identity_fast_path(small_idg, small_plan):
    from repro.aterms.generators import IdentityATerm

    assert small_idg.aterm_fields(small_plan, None) is None
    assert small_idg.aterm_fields(small_plan, IdentityATerm()) is None


def test_aterm_fields_covers_all_plan_stations(small_idg, small_plan):
    beam = GaussianBeamATerm(fwhm=0.1)
    fields = small_idg.aterm_fields(small_plan, beam)
    needed = set()
    for row in small_plan.items:
        needed.add((int(row["station_p"]), int(row["aterm_interval"])))
        needed.add((int(row["station_q"]), int(row["aterm_interval"])))
    assert set(fields.keys()) == needed
    n = small_plan.subgrid_size
    for field in fields.values():
        assert field.shape == (n, n, 2, 2)


def test_grid_with_flags_zeros_samples(small_idg, small_plan, small_obs,
                                       single_source_vis):
    """Data flags (RFI) zero the flagged samples' contribution."""
    flags = np.zeros(single_source_vis.shape[:3], dtype=bool)
    flags[:, ::4, :] = True  # flag every 4th timestep
    flagged_grid = small_idg.grid(
        small_plan, small_obs.uvw_m, single_source_vis, flags=flags
    )
    zeroed = np.where(flags[..., None, None], 0, single_source_vis)
    manual_grid = small_idg.grid(small_plan, small_obs.uvw_m, zeroed)
    np.testing.assert_allclose(flagged_grid, manual_grid, atol=1e-6)
    # flagging removed flux
    plain = small_idg.grid(small_plan, small_obs.uvw_m, single_source_vis)
    assert np.abs(flagged_grid).sum() < np.abs(plain).sum()


def test_grid_flags_shape_validation(small_idg, small_plan, small_obs,
                                     single_source_vis):
    with pytest.raises(ValueError):
        small_idg.grid(
            small_plan, small_obs.uvw_m, single_source_vis,
            flags=np.zeros((2, 2), dtype=bool),
        )
