"""Unit tests for the scratch-buffer arena behind the batched kernels."""

import threading

import numpy as np

from repro.core.scratch import ScratchArena, clear_thread_arena, thread_arena


def _base(view):
    buffer = view
    while buffer.base is not None:
        buffer = buffer.base
    return buffer


def test_take_reuses_backing_buffer_across_calls():
    arena = ScratchArena()
    first = arena.take("phase", (4, 9), np.complex128)
    second = arena.take("phase", (4, 9), np.complex128)
    assert _base(first) is _base(second)
    # a smaller request also reuses (and aliases the front of) the buffer
    smaller = arena.take("phase", (2, 9), np.complex128)
    assert _base(smaller) is _base(first)
    assert smaller.shape == (2, 9)


def test_take_grows_once_then_stays():
    arena = ScratchArena()
    arena.take("acc", (8,), np.float64)
    nbytes_small = arena.nbytes
    grown = arena.take("acc", (64,), np.float64)
    assert arena.nbytes > nbytes_small
    # equal and smaller requests after growth never reallocate
    assert _base(arena.take("acc", (64,), np.float64)) is _base(grown)
    assert _base(arena.take("acc", (3,), np.float64)) is _base(grown)
    assert arena.nbytes == 64 * 8


def test_dtype_change_reallocates():
    arena = ScratchArena()
    as_float = arena.take("buf", (16,), np.float64)
    as_complex = arena.take("buf", (16,), np.complex128)
    assert as_complex.dtype == np.complex128
    assert _base(as_float) is not _base(as_complex)


def test_distinct_keys_never_alias():
    arena = ScratchArena()
    a = arena.take("a", (32,), np.float64)
    b = arena.take("b", (32,), np.float64)
    a.fill(1.0)
    b.fill(2.0)
    assert not np.shares_memory(a, b)
    np.testing.assert_array_equal(a, 1.0)


def test_zeros_is_zero_filled_view():
    arena = ScratchArena()
    view = arena.take("z", (10,), np.complex128)
    view.fill(3 + 4j)
    zeroed = arena.zeros("z", (10,), np.complex128)
    assert _base(zeroed) is _base(view)
    np.testing.assert_array_equal(zeroed, 0)


def test_keys_and_clear():
    arena = ScratchArena()
    arena.take("b", (4,), np.float64)
    arena.take("a", (4,), np.float64)
    assert arena.keys == ("a", "b")
    arena.clear()
    assert arena.keys == ()
    assert arena.nbytes == 0


def test_thread_arena_is_per_thread():
    """Concurrent workers each see a private arena — same key, no aliasing."""
    main = thread_arena()
    assert thread_arena() is main  # stable within a thread

    results = {}

    def worker(name):
        arena = thread_arena()
        view = arena.take("shared-key", (1024,), np.float64)
        view.fill(hash(name) % 97)
        results[name] = (arena, view)

    threads = [threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    arenas = [arena for arena, _ in results.values()] + [main]
    assert len({id(a) for a in arenas}) == len(arenas)
    views = [view for _, view in results.values()]
    for i in range(len(views)):
        for j in range(i + 1, len(views)):
            assert not np.shares_memory(views[i], views[j])
        np.testing.assert_array_equal(views[i], views[i][0])

    for arena, _ in results.values():
        arena.clear()


def test_clear_thread_arena_releases_buffers():
    arena = thread_arena()
    arena.take("tmp", (256,), np.complex128)
    assert arena.nbytes > 0
    clear_thread_arena()
    assert arena.nbytes == 0
    assert thread_arena() is arena  # the arena object itself survives
