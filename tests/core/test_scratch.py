"""Unit tests for the scratch-buffer arena behind the batched kernels."""

import threading

import numpy as np

from repro.core.scratch import ScratchArena, clear_thread_arena, thread_arena


def _base(view):
    buffer = view
    while buffer.base is not None:
        buffer = buffer.base
    return buffer


def test_take_reuses_backing_buffer_across_calls():
    arena = ScratchArena()
    first = arena.take("phase", (4, 9), np.complex128)
    second = arena.take("phase", (4, 9), np.complex128)
    assert _base(first) is _base(second)
    # a smaller request also reuses (and aliases the front of) the buffer
    smaller = arena.take("phase", (2, 9), np.complex128)
    assert _base(smaller) is _base(first)
    assert smaller.shape == (2, 9)


def test_take_grows_once_then_stays():
    arena = ScratchArena()
    arena.take("acc", (8,), np.float64)
    nbytes_small = arena.nbytes
    grown = arena.take("acc", (64,), np.float64)
    assert arena.nbytes > nbytes_small
    # equal and smaller requests after growth never reallocate
    assert _base(arena.take("acc", (64,), np.float64)) is _base(grown)
    assert _base(arena.take("acc", (3,), np.float64)) is _base(grown)
    assert arena.nbytes == 64 * 8


def test_dtype_change_reallocates():
    arena = ScratchArena()
    as_float = arena.take("buf", (16,), np.float64)
    as_complex = arena.take("buf", (16,), np.complex128)
    assert as_complex.dtype == np.complex128
    assert _base(as_float) is not _base(as_complex)


def test_distinct_keys_never_alias():
    arena = ScratchArena()
    a = arena.take("a", (32,), np.float64)
    b = arena.take("b", (32,), np.float64)
    a.fill(1.0)
    b.fill(2.0)
    assert not np.shares_memory(a, b)
    np.testing.assert_array_equal(a, 1.0)


def test_zeros_is_zero_filled_view():
    arena = ScratchArena()
    view = arena.take("z", (10,), np.complex128)
    view.fill(3 + 4j)
    zeroed = arena.zeros("z", (10,), np.complex128)
    assert _base(zeroed) is _base(view)
    np.testing.assert_array_equal(zeroed, 0)


def test_keys_and_clear():
    arena = ScratchArena()
    arena.take("b", (4,), np.float64)
    arena.take("a", (4,), np.float64)
    assert arena.keys == ("a", "b")
    arena.clear()
    assert arena.keys == ()
    assert arena.nbytes == 0


def test_thread_arena_is_per_thread():
    """Concurrent workers each see a private arena — same key, no aliasing."""
    main = thread_arena()
    assert thread_arena() is main  # stable within a thread

    results = {}

    def worker(name):
        arena = thread_arena()
        view = arena.take("shared-key", (1024,), np.float64)
        view.fill(hash(name) % 97)
        results[name] = (arena, view)

    threads = [threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    arenas = [arena for arena, _ in results.values()] + [main]
    assert len({id(a) for a in arenas}) == len(arenas)
    views = [view for _, view in results.values()]
    for i in range(len(views)):
        for j in range(i + 1, len(views)):
            assert not np.shares_memory(views[i], views[j])
        np.testing.assert_array_equal(views[i], views[i][0])

    for arena, _ in results.values():
        arena.clear()


def test_clear_thread_arena_releases_buffers():
    arena = thread_arena()
    arena.take("tmp", (256,), np.complex128)
    assert arena.nbytes > 0
    clear_thread_arena()
    assert arena.nbytes == 0
    assert thread_arena() is arena  # the arena object itself survives


def test_trim_shrinks_to_high_water_mark():
    arena = ScratchArena()
    arena.take("phase", (1 << 16,), np.float64)  # one oversized early bucket
    assert arena.nbytes == (1 << 16) * 8
    # a later phase only ever needs small buffers
    arena.trim()  # reset marks; next phase starts fresh
    arena.take("phase", (64,), np.float64)
    arena.take("phase", (128,), np.float64)
    freed = arena.trim()
    assert freed > 0
    assert arena.nbytes == 128 * 8  # shrunk to the phase's high-water mark
    # the shrunk buffer still serves requests up to the mark without growing
    view = arena.take("phase", (128,), np.float64)
    assert view.shape == (128,)


def test_trim_drops_untouched_keys():
    arena = ScratchArena()
    arena.take("a", (100,), np.float32)
    arena.take("b", (100,), np.float32)
    arena.trim()
    arena.take("a", (50,), np.float32)  # "b" goes unused this phase
    arena.trim()
    assert arena.keys == ("a",)


def test_trim_never_grows_and_is_idempotent_within_a_phase():
    arena = ScratchArena()
    arena.take("k", (100,), np.float64)
    before = arena.nbytes
    assert arena.trim() == 0  # buffer exactly at its mark: nothing to free
    assert arena.nbytes == before


def test_release_drops_everything_and_reports_bytes():
    arena = ScratchArena()
    arena.take("a", (256,), np.complex64)
    arena.take("b", (64,), np.float64)
    held = arena.nbytes
    assert arena.release() == held
    assert arena.nbytes == 0
    assert arena.keys == ()


def test_stats_tracks_peak_and_trims():
    from repro.core.scratch import ArenaStats

    arena = ScratchArena()
    assert arena.stats() == ArenaStats(
        thread=threading.current_thread().name,
        nbytes=0, peak_nbytes=0, n_keys=0, n_trims=0, trimmed_bytes=0,
    )
    arena.take("a", (1 << 12,), np.float64)
    arena.take("b", (1 << 10,), np.float64)
    high = arena.nbytes
    stats = arena.stats()
    assert stats.nbytes == stats.peak_nbytes == high
    assert stats.n_keys == 2

    # Trim down to a smaller phase: nbytes drops, peak stays.
    arena.trim()
    arena.take("a", (64,), np.float64)
    freed = arena.trim()
    stats = arena.stats()
    assert stats.nbytes == 64 * 8 < high
    assert stats.peak_nbytes == high
    assert stats.n_trims == 2
    assert stats.trimmed_bytes == freed + 0  # first trim freed nothing
    assert stats.n_keys == 1

    # Growing again past the old peak raises the peak.
    arena.take("a", (1 << 13,), np.float64)
    assert arena.stats().peak_nbytes == arena.nbytes > high


def test_arena_stats_snapshots_all_threads():
    from repro.core.scratch import arena_stats, total_arena_nbytes

    mine = thread_arena()
    mine.release()
    mine.take("obs", (512,), np.float64)

    keep = {}

    def worker():
        arena = thread_arena()
        arena.release()
        arena.take("obs", (256,), np.float64)
        keep["arena"] = arena

    thread = threading.Thread(target=worker, name="stats-worker")
    thread.start()
    thread.join()

    snapshots = arena_stats()
    assert [s.thread for s in snapshots] == sorted(s.thread for s in snapshots)
    by_thread = {s.thread: s for s in snapshots}
    assert by_thread[threading.current_thread().name].nbytes >= 512 * 8
    assert by_thread["stats-worker"].nbytes == 256 * 8
    assert total_arena_nbytes() == sum(s.nbytes for s in snapshots)

    keep["arena"].release()
    mine.release()


def test_trim_thread_arenas_reaches_all_live_arenas():
    from repro.core.scratch import trim_thread_arenas

    mine = thread_arena()
    mine.take("big", (1 << 14,), np.float64)
    mine.trim()  # reset the mark so the next trim can drop "big"

    other_nbytes = {}

    def worker():
        arena = thread_arena()
        arena.take("worker-buf", (1 << 12,), np.float64)
        arena.trim()
        other_nbytes["arena"] = arena  # keep it alive past thread exit

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()

    freed = trim_thread_arenas()
    assert freed >= (1 << 14) * 8 + (1 << 12) * 8
    assert mine.nbytes == 0
    assert other_nbytes["arena"].nbytes == 0
