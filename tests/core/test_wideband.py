"""Wide-band regression for the channel-recurrence fast path.

At hundreds of channels the recurrence multiplies hundreds of unit phasors
together, so its rounding error compounds multiplicatively; the fast kernels
renormalise the phasor magnitude every
:data:`repro.core.gridder.PHASOR_RENORM_INTERVAL` channel steps to keep the
drift at single-precision levels.  These tests pin fast-vs-direct agreement
at 512 channels — eight renormalisation intervals deep.
"""

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.core.degridder import degridder_subgrid, degridder_subgrid_fast
from repro.core.gridder import (
    PHASOR_RENORM_INTERVAL,
    gridder_subgrid,
    gridder_subgrid_fast,
    relative_uvw_wavelengths,
    subgrid_lmn,
)
from repro.kernels.spheroidal import spheroidal_taper

N = 10
IMAGE_SIZE = 0.06
T, C = 3, 512


def _setup():
    rng = np.random.default_rng(7)
    lmn = subgrid_lmn(N, IMAGE_SIZE)
    taper = spheroidal_taper(N)
    uvw_m = rng.standard_normal((T, 3)) * 50.0
    freqs = 120e6 + 150e3 * np.arange(C)
    vis = (
        rng.standard_normal((T, C, 2, 2)) + 1j * rng.standard_normal((T, C, 2, 2))
    ).astype(np.complex64)
    offset = np.array([2.1, -0.8, 0.3])
    return lmn, taper, uvw_m, freqs, vis, offset


def test_wideband_spans_several_renorm_intervals():
    assert C >= 8 * PHASOR_RENORM_INTERVAL


def test_wideband_gridder_fast_matches_direct():
    lmn, taper, uvw_m, freqs, vis, offset = _setup()
    rel = relative_uvw_wavelengths(uvw_m, freqs, offset[0], offset[1], offset[2])
    direct = gridder_subgrid(vis.reshape(-1, 2, 2), rel, lmn, taper)
    fast = gridder_subgrid_fast(
        vis, uvw_m, freqs / SPEED_OF_LIGHT, offset, lmn, taper
    )
    scale = np.abs(direct).max()
    assert np.abs(fast - direct).max() < 1e-5 * scale


def test_wideband_degridder_fast_matches_direct():
    lmn, taper, uvw_m, freqs, vis, offset = _setup()
    rng = np.random.default_rng(8)
    sub = (
        rng.standard_normal((N, N, 2, 2)) + 1j * rng.standard_normal((N, N, 2, 2))
    ).astype(np.complex64)
    rel = relative_uvw_wavelengths(uvw_m, freqs, offset[0], offset[1], offset[2])
    direct = degridder_subgrid(sub, rel, lmn, taper).reshape(T, C, 2, 2)
    fast = degridder_subgrid_fast(
        sub, uvw_m, freqs / SPEED_OF_LIGHT, offset, lmn, taper
    )
    scale = np.abs(direct).max()
    assert np.abs(fast - direct).max() < 1e-5 * scale


def test_renorm_interval_boundary_exact():
    """Channel counts at and just past the renormalisation interval agree
    with the direct kernel — the modulo boundary must not skip or double a
    channel's contribution."""
    lmn, taper, uvw_m, freqs, vis, offset = _setup()
    for c in (PHASOR_RENORM_INTERVAL, PHASOR_RENORM_INTERVAL + 1):
        rel = relative_uvw_wavelengths(
            uvw_m, freqs[:c], offset[0], offset[1], offset[2]
        )
        direct = gridder_subgrid(vis[:, :c].reshape(-1, 2, 2), rel, lmn, taper)
        fast = gridder_subgrid_fast(
            vis[:, :c], uvw_m, freqs[:c] / SPEED_OF_LIGHT, offset, lmn, taper
        )
        scale = np.abs(direct).max()
        assert np.abs(fast - direct).max() < 1e-5 * scale
