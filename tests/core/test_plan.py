"""Unit tests for the execution plan (greedy subgrid partitioner)."""

import numpy as np
import pytest

from repro.aterms.schedule import ATermSchedule
from repro.constants import SPEED_OF_LIGHT
from repro.core.plan import Plan, WORK_ITEM_DTYPE
from repro.gridspec import GridSpec


def coverage_count(plan, n_bl, n_times, n_chan):
    """How many work items cover each (baseline, time, channel)."""
    count = np.zeros((n_bl, n_times, n_chan), dtype=int)
    for item in plan:
        count[
            item.baseline, item.time_start : item.time_end,
            item.channel_start : item.channel_end,
        ] += 1
    return count


def test_plan_covers_every_visibility_exactly_once(small_plan, small_obs):
    count = coverage_count(
        small_plan, small_obs.n_baselines, small_obs.n_times, small_obs.n_channels
    )
    covered = count == 1
    flagged = small_plan.flagged
    assert np.all(covered | flagged)
    assert not np.any(covered & flagged)


def test_plan_statistics_consistency(small_plan, small_obs):
    st = small_plan.statistics
    assert st.n_subgrids == small_plan.n_subgrids
    assert (
        st.n_visibilities_gridded + st.n_visibilities_flagged
        == small_obs.n_baselines * small_obs.n_times * small_obs.n_channels
    )
    assert st.max_timesteps_per_subgrid <= 16  # fixture time_max


def test_subgrids_inside_grid(small_plan):
    g = small_plan.gridspec.grid_size
    n = small_plan.subgrid_size
    for row in small_plan.items:
        assert 0 <= row["corner_u"] <= g - n
        assert 0 <= row["corner_v"] <= g - n


def test_visibilities_fit_their_subgrid(small_plan, small_obs):
    """Every covered visibility's pixel coordinate (plus kernel half-support)
    must lie inside its subgrid — the covering property of Fig 5."""
    gs = small_plan.gridspec
    scale = small_plan.frequencies_hz / SPEED_OF_LIGHT
    half_support = small_plan.kernel_support / 2
    n = small_plan.subgrid_size
    for item in small_plan:
        uvw = small_obs.uvw_m[item.baseline, item.time_start : item.time_end]
        freqs = scale[item.channel_start : item.channel_end]
        pu = uvw[:, 0, np.newaxis] * freqs * gs.image_size + gs.grid_size // 2
        pv = uvw[:, 1, np.newaxis] * freqs * gs.image_size + gs.grid_size // 2
        assert pu.min() >= item.corner_u + half_support - 1e-6
        assert pu.max() <= item.corner_u + n - 1 - half_support + 1e-6
        assert pv.min() >= item.corner_v + half_support - 1e-6
        assert pv.max() <= item.corner_v + n - 1 - half_support + 1e-6


def test_time_max_respected(small_plan):
    for item in small_plan:
        assert 1 <= item.n_times <= 16


def test_aterm_boundaries_cut_subgrids(small_obs, small_baselines, small_gridspec):
    schedule = ATermSchedule(8)
    plan = Plan.create(
        small_obs.uvw_m, small_obs.frequencies_hz, small_baselines, small_gridspec,
        subgrid_size=24, kernel_support=8, time_max=32, aterm_schedule=schedule,
    )
    for item in plan:
        assert item.time_start // 8 == (item.time_end - 1) // 8
        assert item.aterm_interval == item.time_start // 8


def test_stations_recorded(small_plan, small_baselines):
    for item in small_plan:
        assert item.station_p == small_baselines[item.baseline, 0]
        assert item.station_q == small_baselines[item.baseline, 1]


def test_longer_baselines_make_more_subgrids(small_obs, small_baselines, small_gridspec):
    """Faster-moving uv tracks (longer baselines, finer cells) need more
    subgrids — checked indirectly by shrinking time_max."""
    many = Plan.create(
        small_obs.uvw_m, small_obs.frequencies_hz, small_baselines, small_gridspec,
        subgrid_size=24, kernel_support=8, time_max=2,
    )
    few = Plan.create(
        small_obs.uvw_m, small_obs.frequencies_hz, small_baselines, small_gridspec,
        subgrid_size=24, kernel_support=8, time_max=32,
    )
    assert many.n_subgrids > few.n_subgrids


def test_tiny_subgrid_forces_channel_splits_or_flags(small_obs, small_baselines, small_gridspec):
    plan = Plan.create(
        small_obs.uvw_m, small_obs.frequencies_hz, small_baselines, small_gridspec,
        subgrid_size=4, kernel_support=2, time_max=16,
    )
    # everything is either flagged or covered exactly once, even here
    count = coverage_count(
        plan, small_obs.n_baselines, small_obs.n_times, small_obs.n_channels
    )
    assert np.all((count == 1) | plan.flagged)
    # with a 4-pixel subgrid at this uv scale, some items cover < all channels
    assert any(item.n_channels < small_obs.n_channels for item in plan) or plan.flagged.any()


def test_work_groups_partition_items(small_plan):
    ranges = list(small_plan.work_groups(7))
    assert ranges[0][0] == 0
    assert ranges[-1][1] == small_plan.n_subgrids
    for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
        assert a1 == b0
        assert a1 - a0 == 7
    with pytest.raises(ValueError):
        next(small_plan.work_groups(0))


def test_subgrid_centre_uv_matches_cells(small_plan):
    gs = small_plan.gridspec
    u_mid, v_mid = small_plan.subgrid_centre_uv(0)
    row = small_plan.items[0]
    pu, pv = gs.uv_to_pixel(u_mid, v_mid)
    assert pu == pytest.approx(row["corner_u"] + small_plan.subgrid_size // 2)
    assert pv == pytest.approx(row["corner_v"] + small_plan.subgrid_size // 2)


def test_create_validation(small_obs, small_baselines, small_gridspec):
    uvw = small_obs.uvw_m
    freqs = small_obs.frequencies_hz
    with pytest.raises(ValueError):
        Plan.create(uvw[:, :, :2], freqs, small_baselines, small_gridspec)
    with pytest.raises(ValueError):
        Plan.create(uvw, freqs, small_baselines[:3], small_gridspec)
    with pytest.raises(ValueError):
        Plan.create(uvw, freqs, small_baselines, small_gridspec, subgrid_size=23)
    with pytest.raises(ValueError):
        Plan.create(uvw, freqs, small_baselines, small_gridspec, kernel_support=24)
    with pytest.raises(ValueError):
        Plan.create(uvw, freqs, small_baselines, small_gridspec, time_max=0)
    with pytest.raises(ValueError):
        Plan.create(
            uvw, freqs, small_baselines,
            GridSpec(grid_size=16, image_size=small_gridspec.image_size),
            subgrid_size=24,
        )


def test_empty_items_table_dtype():
    plan_items = np.empty(0, dtype=WORK_ITEM_DTYPE)
    assert plan_items.dtype.names[0] == "baseline"


def test_plan_save_load_roundtrip(small_plan, tmp_path):
    path = tmp_path / "plan.npz"
    small_plan.save(path)
    from repro.core.plan import Plan

    back = Plan.load(path)
    assert back.gridspec == small_plan.gridspec
    assert back.subgrid_size == small_plan.subgrid_size
    assert back.kernel_support == small_plan.kernel_support
    assert back.w_offset == small_plan.w_offset
    np.testing.assert_array_equal(back.items, small_plan.items)
    np.testing.assert_array_equal(back.flagged, small_plan.flagged)
    np.testing.assert_array_equal(back.frequencies_hz, small_plan.frequencies_hz)
    # a loaded plan drives the gridder identically
    assert back.statistics.n_subgrids == small_plan.statistics.n_subgrids


def test_plan_load_rejects_future_version(small_plan, tmp_path):
    path = tmp_path / "plan.npz"
    np.savez_compressed(
        path, plan_version=np.int64(99),
        grid_size=np.int64(small_plan.gridspec.grid_size),
        image_size=np.float64(small_plan.gridspec.image_size),
        subgrid_size=np.int64(24), kernel_support=np.int64(8),
        w_offset=np.float64(0.0), items=small_plan.items,
        flagged=small_plan.flagged, frequencies_hz=small_plan.frequencies_hz,
    )
    from repro.core.plan import Plan

    with pytest.raises(ValueError):
        Plan.load(path)
