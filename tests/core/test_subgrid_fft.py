"""Unit tests for the batched subgrid FFTs."""

import numpy as np
import pytest

from repro.core.subgrid_fft import subgrids_to_fourier, subgrids_to_image
from repro.kernels.fft import centered_fft2


def _random_subgrids(k=3, n=16, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((k, n, n, 2, 2)) + 1j * rng.standard_normal((k, n, n, 2, 2))
    ).astype(np.complex64)


def test_forward_matches_per_pol_fft():
    subs = _random_subgrids()
    out = subgrids_to_fourier(subs)
    n = subs.shape[1]
    for k in range(subs.shape[0]):
        for p in range(2):
            for q in range(2):
                np.testing.assert_allclose(
                    out[k, :, :, p, q],
                    (centered_fft2(subs[k, :, :, p, q].astype(np.complex128)) / n**2).astype(
                        np.complex64
                    ),
                    atol=1e-5,
                )


def test_constant_image_becomes_central_delta():
    """A constant image (on-centre visibility) transforms to a single uv cell
    holding exactly the constant — the flux-preservation convention."""
    n = 16
    subs = np.zeros((1, n, n, 2, 2), dtype=np.complex64)
    subs[0, :, :, 0, 0] = 2.5
    out = subgrids_to_fourier(subs)
    assert out[0, n // 2, n // 2, 0, 0] == pytest.approx(2.5)
    mask = np.ones((n, n), dtype=bool)
    mask[n // 2, n // 2] = False
    assert np.abs(out[0, :, :, 0, 0][mask]).max() < 1e-6


def test_adjoint_identity():
    """<F x, y> == <x, F^H y> with F^H = subgrids_to_image."""
    x = _random_subgrids(1, 8, seed=1).astype(np.complex128)
    y = _random_subgrids(1, 8, seed=2).astype(np.complex128)
    lhs = np.vdot(subgrids_to_fourier(x.astype(np.complex64)).astype(np.complex128), y)
    rhs = np.vdot(x, subgrids_to_image(y.astype(np.complex64)).astype(np.complex128))
    assert lhs == pytest.approx(rhs, rel=1e-5)


def test_composition_scale():
    """to_image(to_fourier(x)) = x / N**2 (adjoint pair, not inverse)."""
    subs = _random_subgrids(2, 8, seed=3)
    back = subgrids_to_image(subgrids_to_fourier(subs))
    np.testing.assert_allclose(back, subs / 64.0, atol=1e-6)


def test_preserves_dtype_and_shape():
    subs = _random_subgrids(4, 12, seed=4)
    out = subgrids_to_fourier(subs)
    assert out.shape == subs.shape
    assert out.dtype == subs.dtype
    back = subgrids_to_image(out)
    assert back.shape == subs.shape
    assert back.dtype == subs.dtype
