"""Unit tests for the adder and splitter."""

import numpy as np
import pytest

from repro.core.adder import add_subgrids, split_subgrids


def _subgrids_like(plan, count, seed=0):
    n = plan.subgrid_size
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((count, n, n, 2, 2)) + 1j * rng.standard_normal((count, n, n, 2, 2))
    ).astype(np.complex64)


def test_add_places_subgrid_at_corner(small_plan):
    grid = small_plan.gridspec.allocate_grid()
    subs = np.zeros((1, small_plan.subgrid_size, small_plan.subgrid_size, 2, 2), np.complex64)
    subs[0, 3, 5, 0, 0] = 7.0  # y=3, x=5, pol XX
    add_subgrids(grid, small_plan, subs, start=0)
    row = small_plan.items[0]
    assert grid[0, row["corner_v"] + 3, row["corner_u"] + 5] == pytest.approx(7.0)
    assert np.count_nonzero(grid) == 1


def test_add_accumulates_overlaps(small_plan):
    grid = small_plan.gridspec.allocate_grid()
    subs = _subgrids_like(small_plan, 1, seed=1)
    add_subgrids(grid, small_plan, subs, start=0)
    total_once = grid.sum()
    add_subgrids(grid, small_plan, subs, start=0)
    assert grid.sum() == pytest.approx(2 * total_once, rel=1e-5)


def test_flux_conservation(small_plan):
    """Total grid sum equals the sum of all added subgrids (addition only
    relocates flux)."""
    grid = small_plan.gridspec.allocate_grid()
    count = min(10, small_plan.n_subgrids)
    subs = _subgrids_like(small_plan, count, seed=2)
    add_subgrids(grid, small_plan, subs, start=0)
    # compare per polarisation: grid is pol-major, subs pol-minor
    grid_sum = grid.sum(axis=(1, 2))
    subs_sum = subs.sum(axis=(0, 1, 2)).reshape(4)
    np.testing.assert_allclose(grid_sum, subs_sum, rtol=1e-4)


def test_split_inverts_add_for_disjoint_subgrid(small_plan):
    grid = small_plan.gridspec.allocate_grid()
    subs = _subgrids_like(small_plan, 1, seed=3)
    add_subgrids(grid, small_plan, subs, start=0)
    back = split_subgrids(grid, small_plan, 0, 1)
    np.testing.assert_allclose(back, subs, atol=1e-6)


def test_split_is_read_only(small_plan):
    grid = small_plan.gridspec.allocate_grid()
    grid += (1.0 + 1.0j)
    before = grid.copy()
    split_subgrids(grid, small_plan, 0, min(5, small_plan.n_subgrids))
    np.testing.assert_array_equal(grid, before)


def test_adder_splitter_adjoint(small_plan):
    """<add(S), G> == <S, split(G)> over a batch of work items."""
    count = min(8, small_plan.n_subgrids)
    subs = _subgrids_like(small_plan, count, seed=4).astype(np.complex128)
    rng = np.random.default_rng(5)
    g = small_plan.gridspec.grid_size
    grid_y = rng.standard_normal((4, g, g)) + 1j * rng.standard_normal((4, g, g))
    grid_x = np.zeros((4, g, g), dtype=np.complex128)
    add_subgrids(grid_x, small_plan, subs, start=0)
    lhs = np.vdot(grid_x, grid_y)
    rhs = np.vdot(subs, split_subgrids(grid_y, small_plan, 0, count))
    assert lhs == pytest.approx(rhs, rel=1e-9)


def test_shape_validation(small_plan):
    bad_grid = np.zeros((4, 8, 8), dtype=np.complex64)
    subs = _subgrids_like(small_plan, 1)
    with pytest.raises(ValueError):
        add_subgrids(bad_grid, small_plan, subs)
    with pytest.raises(ValueError):
        split_subgrids(bad_grid, small_plan, 0, 1)
