"""Unit tests for the vectorised degridder kernel vs the literal Algorithm 2."""

import numpy as np
import pytest

from repro.core.degridder import degridder_subgrid
from repro.core.gridder import gridder_subgrid, subgrid_lmn
from repro.core.reference import reference_degridder
from repro.kernels.spheroidal import spheroidal_taper


N = 8
IMAGE_SIZE = 0.08


@pytest.fixture(scope="module")
def lmn():
    return subgrid_lmn(N, IMAGE_SIZE)


@pytest.fixture(scope="module")
def taper():
    return spheroidal_taper(N)


def _random_subgrid(seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((N, N, 2, 2)) + 1j * rng.standard_normal((N, N, 2, 2))
    ).astype(np.complex64)


def _random_uvw(m, seed=1, uv_scale=20.0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, 3)) * np.array([uv_scale, uv_scale, uv_scale / 4])


def test_degridder_matches_reference_no_aterms(lmn, taper):
    sub = _random_subgrid(0)
    uvw = _random_uvw(10, seed=1)
    fast = degridder_subgrid(sub, uvw, lmn, taper)
    slow = reference_degridder(sub, uvw, IMAGE_SIZE, taper)
    np.testing.assert_allclose(fast, slow.astype(np.complex64), rtol=2e-4, atol=2e-4)


def test_degridder_matches_reference_with_aterms(lmn, taper):
    rng = np.random.default_rng(2)
    sub = _random_subgrid(3)
    uvw = _random_uvw(5, seed=4)
    a_p = rng.standard_normal((N, N, 2, 2)) + 1j * rng.standard_normal((N, N, 2, 2))
    a_q = rng.standard_normal((N, N, 2, 2)) + 1j * rng.standard_normal((N, N, 2, 2))
    fast = degridder_subgrid(sub, uvw, lmn, taper, aterm_p=a_p, aterm_q=a_q)
    slow = reference_degridder(sub, uvw, IMAGE_SIZE, taper, aterm_p=a_p, aterm_q=a_q)
    np.testing.assert_allclose(fast, slow.astype(np.complex64), rtol=1e-3, atol=1e-3)


def test_degridder_batching_invariance(lmn, taper):
    sub = _random_subgrid(5)
    uvw = _random_uvw(29, seed=6)
    a = degridder_subgrid(sub, uvw, lmn, taper, vis_batch=4)
    b = degridder_subgrid(sub, uvw, lmn, taper, vis_batch=100)
    np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-5)


def test_degridder_linearity_in_subgrid(lmn, taper):
    s1, s2 = _random_subgrid(7), _random_subgrid(8)
    uvw = _random_uvw(6, seed=9)
    v1 = degridder_subgrid(s1, uvw, lmn, taper).astype(np.complex128)
    v2 = degridder_subgrid(s2, uvw, lmn, taper).astype(np.complex128)
    v12 = degridder_subgrid(s1 + s2, uvw, lmn, taper).astype(np.complex128)
    np.testing.assert_allclose(v12, v1 + v2, rtol=1e-3, atol=1e-4)


def test_zero_uvw_sums_pixels(lmn, taper):
    sub = _random_subgrid(10)
    uvw = np.zeros((4, 3))
    out = degridder_subgrid(sub, uvw, lmn, taper)
    expected = (sub * taper[:, :, np.newaxis, np.newaxis]).sum(axis=(0, 1))
    for k in range(4):
        np.testing.assert_allclose(out[k], expected.astype(np.complex64), rtol=1e-4)


def test_gridder_degridder_adjoint_identity(lmn, taper):
    """<gridder(V), S> == <V, degridder(S)> — kernel-level adjointness."""
    rng = np.random.default_rng(11)
    m = 9
    vis = rng.standard_normal((m, 2, 2)) + 1j * rng.standard_normal((m, 2, 2))
    sub = rng.standard_normal((N, N, 2, 2)) + 1j * rng.standard_normal((N, N, 2, 2))
    a_p = rng.standard_normal((N, N, 2, 2)) + 1j * rng.standard_normal((N, N, 2, 2))
    a_q = rng.standard_normal((N, N, 2, 2)) + 1j * rng.standard_normal((N, N, 2, 2))
    uvw = _random_uvw(m, seed=12)
    gridded = gridder_subgrid(
        vis.astype(np.complex64), uvw, lmn, taper, aterm_p=a_p, aterm_q=a_q
    )
    degridded = degridder_subgrid(
        sub.astype(np.complex64), uvw, lmn, taper, aterm_p=a_p, aterm_q=a_q
    )
    lhs = np.vdot(gridded.astype(np.complex128), sub)
    rhs = np.vdot(vis, degridded.astype(np.complex128))
    assert lhs == pytest.approx(rhs, rel=1e-3)


def test_degridder_shape_validation(lmn, taper):
    sub = _random_subgrid(13)
    with pytest.raises(ValueError):
        degridder_subgrid(sub[:4], _random_uvw(3), lmn, taper)
    with pytest.raises(ValueError):
        degridder_subgrid(sub, _random_uvw(3), lmn[:10], taper)
