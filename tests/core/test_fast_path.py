"""Tests for the channel-recurrence fast path.

The fast kernels replace one sincos per (pixel, visibility) with one sincos
pair per (pixel, timestep) plus per-channel complex multiplies — valid for
evenly spaced channels.  These tests pin exact agreement with the direct
kernels and the fallback/validation behaviour.
"""

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.core.degridder import degridder_subgrid, degridder_subgrid_fast
from repro.core.gridder import (
    gridder_subgrid,
    gridder_subgrid_fast,
    relative_uvw_wavelengths,
    subgrid_lmn,
)
from repro.kernels.spheroidal import spheroidal_taper

N = 12
IMAGE_SIZE = 0.08
T, C = 7, 8


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    lmn = subgrid_lmn(N, IMAGE_SIZE)
    taper = spheroidal_taper(N)
    uvw_m = rng.standard_normal((T, 3)) * 40.0
    freqs = 150e6 + 200e3 * np.arange(C)
    scales = freqs / SPEED_OF_LIGHT
    vis = (rng.standard_normal((T, C, 2, 2))
           + 1j * rng.standard_normal((T, C, 2, 2))).astype(np.complex64)
    offset = np.array([3.7, -1.2, 0.4])
    return lmn, taper, uvw_m, freqs, scales, vis, offset


def _relative(uvw_m, freqs, offset):
    return relative_uvw_wavelengths(uvw_m, freqs, offset[0], offset[1], offset[2])


def test_fast_gridder_matches_direct(setup):
    lmn, taper, uvw_m, freqs, scales, vis, offset = setup
    rel = _relative(uvw_m, freqs, offset)
    direct = gridder_subgrid(vis.reshape(-1, 2, 2), rel, lmn, taper)
    fast = gridder_subgrid_fast(vis, uvw_m, scales, offset, lmn, taper)
    np.testing.assert_allclose(fast, direct, rtol=2e-4, atol=2e-4)


def test_fast_gridder_with_aterms(setup):
    lmn, taper, uvw_m, freqs, scales, vis, offset = setup
    rng = np.random.default_rng(1)
    a_p = rng.standard_normal((N, N, 2, 2)) + 1j * rng.standard_normal((N, N, 2, 2))
    a_q = rng.standard_normal((N, N, 2, 2)) + 1j * rng.standard_normal((N, N, 2, 2))
    rel = _relative(uvw_m, freqs, offset)
    direct = gridder_subgrid(vis.reshape(-1, 2, 2), rel, lmn, taper,
                             aterm_p=a_p, aterm_q=a_q)
    fast = gridder_subgrid_fast(vis, uvw_m, scales, offset, lmn, taper,
                                aterm_p=a_p, aterm_q=a_q)
    np.testing.assert_allclose(fast, direct, rtol=1e-3, atol=1e-3)


def test_fast_degridder_matches_direct(setup):
    lmn, taper, uvw_m, freqs, scales, vis, offset = setup
    rng = np.random.default_rng(2)
    sub = (rng.standard_normal((N, N, 2, 2))
           + 1j * rng.standard_normal((N, N, 2, 2))).astype(np.complex64)
    rel = _relative(uvw_m, freqs, offset)
    direct = degridder_subgrid(sub, rel, lmn, taper).reshape(T, C, 2, 2)
    fast = degridder_subgrid_fast(sub, uvw_m, scales, offset, lmn, taper)
    np.testing.assert_allclose(fast, direct, rtol=2e-4, atol=2e-4)


def test_single_channel_works(setup):
    lmn, taper, uvw_m, freqs, scales, vis, offset = setup
    fast = gridder_subgrid_fast(
        vis[:, :1], uvw_m, scales[:1], offset, lmn, taper
    )
    rel = _relative(uvw_m, freqs[:1], offset)
    direct = gridder_subgrid(vis[:, :1].reshape(-1, 2, 2), rel, lmn, taper)
    np.testing.assert_allclose(fast, direct, rtol=2e-4, atol=2e-4)


def test_uneven_channels_rejected(setup):
    lmn, taper, uvw_m, freqs, scales, vis, offset = setup
    bad = scales.copy()
    bad[3] *= 1.01
    with pytest.raises(ValueError):
        gridder_subgrid_fast(vis, uvw_m, bad, offset, lmn, taper)
    rng = np.random.default_rng(3)
    sub = (rng.standard_normal((N, N, 2, 2)) + 0j).astype(np.complex64)
    with pytest.raises(ValueError):
        degridder_subgrid_fast(sub, uvw_m, bad, offset, lmn, taper)


def test_pipeline_fast_matches_slow(small_obs, small_baselines, single_source_vis,
                                    small_gridspec):
    """End to end: both IDGConfig settings produce the same grid and the
    same predictions."""
    from repro.core.pipeline import IDG, IDGConfig
    from repro.imaging.image import model_image_to_grid

    slow = IDG(small_gridspec, IDGConfig(subgrid_size=24, kernel_support=8,
                                         time_max=16, channel_recurrence=False))
    fast = IDG(small_gridspec, IDGConfig(subgrid_size=24, kernel_support=8,
                                         time_max=16, channel_recurrence=True))
    plan = slow.make_plan(small_obs.uvw_m, small_obs.frequencies_hz, small_baselines)
    grid_slow = slow.grid(plan, small_obs.uvw_m, single_source_vis)
    grid_fast = fast.grid(plan, small_obs.uvw_m, single_source_vis)
    scale = np.abs(grid_slow).max()
    assert np.abs(grid_fast - grid_slow).max() < 1e-5 * scale

    g = small_gridspec.grid_size
    model = np.ones((4, g, g), dtype=np.complex128) * 0.001
    mgrid = model_image_to_grid(model, small_gridspec)
    pred_slow = slow.degrid(plan, small_obs.uvw_m, mgrid)
    pred_fast = fast.degrid(plan, small_obs.uvw_m, mgrid)
    np.testing.assert_allclose(pred_fast, pred_slow, atol=1e-4)


def test_recurrence_drift_bounded():
    """The recurrence multiplies C-1 unit phasors; verify the accumulated
    float drift stays tiny even for many channels."""
    rng = np.random.default_rng(4)
    lmn = subgrid_lmn(8, 0.05)
    taper = spheroidal_taper(8)
    t, c = 3, 64
    uvw_m = rng.standard_normal((t, 3)) * 30.0
    freqs = 150e6 + 200e3 * np.arange(c)
    vis = (rng.standard_normal((t, c, 2, 2)) + 0j).astype(np.complex64)
    offset = np.zeros(3)
    rel = relative_uvw_wavelengths(uvw_m, freqs, 0.0, 0.0, 0.0)
    direct = gridder_subgrid(vis.reshape(-1, 2, 2), rel, lmn, taper)
    fast = gridder_subgrid_fast(vis, uvw_m, freqs / SPEED_OF_LIGHT, offset,
                                lmn, taper)
    scale = np.abs(direct).max()
    assert np.abs(fast - direct).max() < 1e-4 * scale
