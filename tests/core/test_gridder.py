"""Unit tests for the vectorised gridder kernel vs the literal Algorithm 1."""

import numpy as np
import pytest

from repro.core.gridder import (
    grid_work_group,
    gridder_subgrid,
    relative_uvw_wavelengths,
    subgrid_lmn,
)
from repro.core.reference import reference_gridder
from repro.kernels.spheroidal import spheroidal_taper
from repro.kernels.wkernel import n_term


N = 8
IMAGE_SIZE = 0.08


@pytest.fixture(scope="module")
def lmn():
    return subgrid_lmn(N, IMAGE_SIZE)


@pytest.fixture(scope="module")
def taper():
    return spheroidal_taper(N)


def _random_block(m, seed=0, uv_scale=20.0):
    rng = np.random.default_rng(seed)
    vis = (rng.standard_normal((m, 2, 2)) + 1j * rng.standard_normal((m, 2, 2))).astype(
        np.complex64
    )
    uvw = rng.standard_normal((m, 3)) * np.array([uv_scale, uv_scale, uv_scale / 4])
    return vis, uvw


def test_subgrid_lmn_structure(lmn):
    assert lmn.shape == (N * N, 3)
    centre = (N // 2) * N + N // 2
    np.testing.assert_allclose(lmn[centre], [0.0, 0.0, 0.0], atol=1e-15)
    # n column equals n_term of the l, m columns
    np.testing.assert_allclose(lmn[:, 2], n_term(lmn[:, 0], lmn[:, 1]))


def test_relative_uvw_layout():
    uvw_m = np.array([[10.0, 20.0, 30.0], [40.0, 50.0, 60.0]])
    freqs = np.array([1e8, 2e8])
    rel = relative_uvw_wavelengths(uvw_m, freqs, u_mid=1.0, v_mid=2.0, w_offset=3.0)
    assert rel.shape == (4, 3)
    from repro.constants import SPEED_OF_LIGHT

    # time-major, channel fastest: row 1 is (t=0, c=1)
    np.testing.assert_allclose(
        rel[1], uvw_m[0] * 2e8 / SPEED_OF_LIGHT - np.array([1.0, 2.0, 3.0])
    )


def test_gridder_matches_reference_no_aterms(lmn, taper):
    vis, uvw = _random_block(12, seed=1)
    fast = gridder_subgrid(vis, uvw, lmn, taper)
    slow = reference_gridder(vis, uvw, N, IMAGE_SIZE, taper)
    np.testing.assert_allclose(fast, slow.astype(np.complex64), rtol=2e-4, atol=2e-4)


def test_gridder_matches_reference_with_aterms(lmn, taper):
    rng = np.random.default_rng(2)
    vis, uvw = _random_block(6, seed=3)
    a_p = rng.standard_normal((N, N, 2, 2)) + 1j * rng.standard_normal((N, N, 2, 2))
    a_q = rng.standard_normal((N, N, 2, 2)) + 1j * rng.standard_normal((N, N, 2, 2))
    fast = gridder_subgrid(vis, uvw, lmn, taper, aterm_p=a_p, aterm_q=a_q)
    slow = reference_gridder(vis, uvw, N, IMAGE_SIZE, taper, aterm_p=a_p, aterm_q=a_q)
    np.testing.assert_allclose(fast, slow.astype(np.complex64), rtol=1e-3, atol=1e-3)


def test_gridder_batching_invariance(lmn, taper):
    vis, uvw = _random_block(33, seed=4)
    a = gridder_subgrid(vis, uvw, lmn, taper, vis_batch=5)
    b = gridder_subgrid(vis, uvw, lmn, taper, vis_batch=1000)
    np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-5)


def test_gridder_linearity_in_visibilities(lmn, taper):
    vis1, uvw = _random_block(10, seed=5)
    vis2, _ = _random_block(10, seed=6)
    s1 = gridder_subgrid(vis1, uvw, lmn, taper).astype(np.complex128)
    s2 = gridder_subgrid(vis2, uvw, lmn, taper).astype(np.complex128)
    s12 = gridder_subgrid(vis1 + vis2, uvw, lmn, taper).astype(np.complex128)
    np.testing.assert_allclose(s12, s1 + s2, rtol=1e-3, atol=1e-4)


def test_zero_uvw_accumulates_plain_sum(lmn, taper):
    """With all uvw = 0 the phasor is 1: the subgrid is taper * sum(V)."""
    vis, _ = _random_block(7, seed=7)
    uvw = np.zeros((7, 3))
    out = gridder_subgrid(vis, uvw, lmn, taper)
    expected = taper[:, :, np.newaxis, np.newaxis] * vis.sum(axis=0)
    np.testing.assert_allclose(out, expected.astype(np.complex64), rtol=1e-5, atol=1e-5)


def test_single_polarization_isolation(lmn, taper):
    """A visibility with only XY set must populate only the XY plane."""
    vis = np.zeros((3, 2, 2), dtype=np.complex64)
    vis[:, 0, 1] = 1.0 + 2.0j
    _, uvw = _random_block(3, seed=8)
    out = gridder_subgrid(vis, uvw, lmn, taper)
    assert np.abs(out[..., 0, 0]).max() == 0
    assert np.abs(out[..., 1, 0]).max() == 0
    assert np.abs(out[..., 1, 1]).max() == 0
    assert np.abs(out[..., 0, 1]).max() > 0


def test_gridder_shape_validation(lmn, taper):
    vis, uvw = _random_block(4, seed=9)
    with pytest.raises(ValueError):
        gridder_subgrid(vis, uvw[:3], lmn, taper)
    with pytest.raises(ValueError):
        gridder_subgrid(vis, uvw, lmn[: N * N - 3], taper)


def test_grid_work_group_end_to_end(small_plan, small_obs, single_source_vis, small_idg):
    """The work-group driver must agree with calling the kernel manually."""
    out = grid_work_group(
        small_plan, 0, 3, small_obs.uvw_m, single_source_vis, small_idg.taper,
        lmn=small_idg.lmn,
    )
    assert out.shape == (3, 24, 24, 2, 2)
    item = small_plan.work_item(1)
    u_mid, v_mid = small_plan.subgrid_centre_uv(1)
    freqs = small_plan.frequencies_hz[item.channel_start : item.channel_end]
    rel = relative_uvw_wavelengths(
        small_obs.uvw_m[item.baseline, item.time_start : item.time_end],
        freqs, u_mid, v_mid,
    )
    vis_block = single_source_vis[
        item.baseline, item.time_start : item.time_end,
        item.channel_start : item.channel_end,
    ].reshape(-1, 2, 2)
    manual = gridder_subgrid(vis_block, rel, small_idg.lmn, small_idg.taper)
    np.testing.assert_allclose(out[1], manual, atol=1e-6)
