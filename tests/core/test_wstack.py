"""Unit/integration tests for W-stacked IDG (paper Section IV)."""

import numpy as np
import pytest

from repro.core.pipeline import IDG, IDGConfig
from repro.core.wstack import WStackedIDG, item_mean_w, split_plan_by_w
from repro.imaging.image import find_peak, stokes_i_image
from repro.sky.model import SkyModel
from repro.sky.simulate import predict_visibilities
from repro.telescope.observation import ska1_low_observation


@pytest.fixture(scope="module")
def wide_field():
    """A compact, wide-field observation where w-terms genuinely bite
    (w kernel support ~6 cells against a 16-pixel subgrid)."""
    obs = ska1_low_observation(
        n_stations=14, n_times=48, n_channels=4,
        integration_time_s=300.0, max_radius_m=600.0, seed=3,
    )
    gs = obs.fitting_gridspec(512)
    dl = gs.pixel_scale
    l0 = round(0.25 * gs.image_size / dl) * dl
    m0 = round(0.20 * gs.image_size / dl) * dl
    sky = SkyModel.single(l0, m0, flux=1.0)
    bl = obs.array.baselines()
    vis = predict_visibilities(obs.uvw_m, obs.frequencies_hz, sky, baselines=bl)
    idg = IDG(gs, IDGConfig(subgrid_size=16, kernel_support=4, time_max=8))
    g = gs.grid_size
    model = np.zeros((4, g, g), dtype=np.complex128)
    model[0, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = 1.0
    model[3, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = 1.0
    return obs, gs, idg, bl, vis, model, (l0, m0)


def _coverage(layers, shape):
    covered = np.zeros(shape, dtype=int)
    for layer in layers:
        for item in layer.plan:
            covered[
                item.baseline, item.time_start : item.time_end,
                item.channel_start : item.channel_end,
            ] += 1
    return covered


def _predict_rms(ws, layers, uvw, vis, model):
    pred = ws.predict(model, layers, uvw)
    covered = _coverage(layers, vis.shape[:3]) > 0
    sel = covered[..., None, None] & np.ones_like(vis, bool)
    scale = np.sqrt((np.abs(vis[sel]) ** 2).mean())
    return np.sqrt((np.abs(pred[sel] - vis[sel]) ** 2).mean()) / scale


def test_layers_partition_work_items(wide_field):
    obs, gs, idg, bl, vis, model, _ = wide_field
    ws = WStackedIDG(idg, n_planes=6)
    layers = ws.make_layers(obs.uvw_m, obs.frequencies_hz, bl)
    base_plan = idg.make_plan(obs.uvw_m, obs.frequencies_hz, bl)
    assert sum(layer.n_subgrids for layer in layers) == base_plan.n_subgrids
    # every covered visibility is covered exactly once across layers
    covered = _coverage(layers, vis.shape[:3])
    assert np.all((covered == 1) | base_plan.flagged)


def test_items_assigned_to_nearest_plane(wide_field):
    obs, gs, idg, bl, *_ = wide_field
    plan = idg.make_plan(obs.uvw_m, obs.frequencies_hz, bl)
    layers = split_plan_by_w(plan, obs.uvw_m, n_planes=8)
    centres = np.array([layer.w_centre for layer in layers])
    for layer in layers:
        w_items = item_mean_w(layer.plan, obs.uvw_m)
        for w in w_items:
            assert np.abs(w - layer.w_centre) == pytest.approx(
                np.abs(w - centres).min(), abs=1e-9
            )
        assert layer.plan.w_offset == layer.w_centre


def test_more_planes_improve_prediction(wide_field):
    """The Section IV trade: more w planes -> smaller residual w per subgrid
    -> higher accuracy at fixed (small) subgrid size."""
    obs, gs, idg, bl, vis, model, _ = wide_field
    rms = {}
    for planes in (1, 4, 16):
        ws = WStackedIDG(idg, n_planes=planes)
        layers = ws.make_layers(obs.uvw_m, obs.frequencies_hz, bl)
        rms[planes] = _predict_rms(ws, layers, obs.uvw_m, vis, model)
    assert rms[4] < rms[1] / 3
    assert rms[16] < rms[4] / 2
    assert rms[16] < 1e-3


def test_larger_subgrids_substitute_for_planes(wide_field):
    """The other side of the trade (the paper's headline for Section IV):
    a larger subgrid with few planes matches a small subgrid with many."""
    obs, gs, idg, bl, vis, model, _ = wide_field
    small_many = WStackedIDG(idg, n_planes=16)
    layers_sm = small_many.make_layers(obs.uvw_m, obs.frequencies_hz, bl)
    rms_small_many = _predict_rms(small_many, layers_sm, obs.uvw_m, vis, model)

    big_idg = IDG(gs, IDGConfig(subgrid_size=48, kernel_support=12, time_max=8))
    big_few = WStackedIDG(big_idg, n_planes=2)
    layers_bf = big_few.make_layers(obs.uvw_m, obs.frequencies_hz, bl)
    rms_big_few = _predict_rms(big_few, layers_bf, obs.uvw_m, vis, model)
    assert rms_big_few < 3 * rms_small_many
    assert rms_big_few < 2e-3


def test_image_recovers_source(wide_field):
    obs, gs, idg, bl, vis, model, (l0, m0) = wide_field
    ws = WStackedIDG(idg, n_planes=8)
    layers = ws.make_layers(obs.uvw_m, obs.frequencies_hz, bl)
    image = stokes_i_image(ws.image(layers, obs.uvw_m, vis))
    row, col, value = find_peak(image)
    g, dl = gs.grid_size, gs.pixel_scale
    assert (row, col) == (round(m0 / dl) + g // 2, round(l0 / dl) + g // 2)
    assert value == pytest.approx(1.0, rel=0.02)


def test_single_plane_matches_plain_idg_when_w_small(small_idg, small_obs,
                                                     small_baselines,
                                                     single_source_vis):
    """With one plane the stack degenerates to plain IDG up to the constant
    w shift, which the layer correction exactly undoes."""
    from repro.imaging.image import dirty_image_from_grid

    ws = WStackedIDG(small_idg, n_planes=1)
    layers = ws.make_layers(small_obs.uvw_m, small_obs.frequencies_hz, small_baselines)
    stacked = stokes_i_image(ws.image(layers, small_obs.uvw_m, single_source_vis))

    plan = small_idg.make_plan(small_obs.uvw_m, small_obs.frequencies_hz, small_baselines)
    grid = small_idg.grid(plan, small_obs.uvw_m, single_source_vis)
    plain = stokes_i_image(
        dirty_image_from_grid(
            grid, small_idg.gridspec,
            weight_sum=plan.statistics.n_visibilities_gridded,
        )
    )
    g = small_idg.gridspec.grid_size
    inner = slice(g // 8, -g // 8)
    np.testing.assert_allclose(stacked[inner, inner], plain[inner, inner], atol=5e-3)


def test_validation(small_idg, wide_field):
    obs, gs, idg, bl, vis, model, _ = wide_field
    with pytest.raises(ValueError):
        WStackedIDG(small_idg, n_planes=0)
    ws = WStackedIDG(idg, n_planes=2)
    layers = ws.make_layers(obs.uvw_m, obs.frequencies_hz, bl)
    with pytest.raises(ValueError):
        ws.predict(np.zeros((4, 16, 16)), layers, obs.uvw_m)
    with pytest.raises(ValueError):
        ws.predict(model, [], obs.uvw_m)
    with pytest.raises(ValueError):
        split_plan_by_w(layers[0].plan, obs.uvw_m, 0)


def test_memory_scales_with_planes(small_idg):
    two = WStackedIDG(small_idg, n_planes=2)
    eight = WStackedIDG(small_idg, n_planes=8)
    assert eight.memory_bytes() == 4 * two.memory_bytes()
