"""Unit tests for dataset I/O and thermal noise."""

import numpy as np
import pytest

from repro.data.dataset import VisibilityDataset
from repro.data.io import (
    SCHEMA_VERSION,
    DatasetFormatError,
    load_dataset,
    open_dataset,
    save_dataset,
)
from repro.data.noise import add_thermal_noise, thermal_noise_sigma


@pytest.fixture
def dataset(small_obs, small_baselines, single_source_vis):
    ds = VisibilityDataset(
        uvw_m=small_obs.uvw_m,
        visibilities=single_source_vis.copy(),
        frequencies_hz=small_obs.frequencies_hz,
        baselines=small_baselines,
    )
    ds.flags[0, 0, 0] = True
    return ds


def test_save_load_roundtrip(dataset, tmp_path):
    path = tmp_path / "data.npz"
    save_dataset(dataset, path)
    back = load_dataset(path)
    np.testing.assert_array_equal(back.uvw_m, dataset.uvw_m)
    np.testing.assert_array_equal(back.visibilities, dataset.visibilities)
    np.testing.assert_array_equal(back.frequencies_hz, dataset.frequencies_hz)
    np.testing.assert_array_equal(back.baselines, dataset.baselines)
    np.testing.assert_array_equal(back.flags, dataset.flags)


def test_load_rejects_future_schema(dataset, tmp_path):
    path = tmp_path / "data.npz"
    np.savez_compressed(
        path, schema_version=np.int64(SCHEMA_VERSION + 1),
        uvw_m=dataset.uvw_m, visibilities=dataset.visibilities,
        frequencies_hz=dataset.frequencies_hz, baselines=dataset.baselines,
        flags=dataset.flags,
    )
    with pytest.raises(ValueError):
        load_dataset(path)


def test_load_rejects_missing_keys(dataset, tmp_path):
    path = tmp_path / "short.npz"
    np.savez_compressed(
        path, schema_version=np.int64(SCHEMA_VERSION),
        uvw_m=dataset.uvw_m, visibilities=dataset.visibilities,
        frequencies_hz=dataset.frequencies_hz, baselines=dataset.baselines,
        # flags omitted
    )
    with pytest.raises(DatasetFormatError, match="missing"):
        load_dataset(path)


def test_load_rejects_unexpected_keys(dataset, tmp_path):
    path = tmp_path / "extra.npz"
    np.savez_compressed(
        path, schema_version=np.int64(SCHEMA_VERSION),
        uvw_m=dataset.uvw_m, visibilities=dataset.visibilities,
        frequencies_hz=dataset.frequencies_hz, baselines=dataset.baselines,
        flags=dataset.flags, bogus=np.zeros(3),
    )
    with pytest.raises(DatasetFormatError, match="unexpected"):
        load_dataset(path)


def test_open_dataset_autodetects_format(dataset, tmp_path):
    from repro.data.store import ChunkedStore, write_store

    npz = tmp_path / "data.npz"
    save_dataset(dataset, npz)
    loaded = open_dataset(npz)
    assert isinstance(loaded, VisibilityDataset)
    np.testing.assert_array_equal(loaded.visibilities, dataset.visibilities)

    store_path = tmp_path / "data.store"
    write_store(dataset, store_path)
    opened = open_dataset(store_path)
    assert isinstance(opened, ChunkedStore)
    np.testing.assert_array_equal(opened.visibilities[:], dataset.visibilities)


def test_open_dataset_typed_errors(tmp_path):
    with pytest.raises(DatasetFormatError):
        open_dataset(tmp_path / "nothing-here.npz")
    (tmp_path / "empty-dir").mkdir()
    with pytest.raises(DatasetFormatError):
        open_dataset(tmp_path / "empty-dir")


def test_save_creates_parent_directories(dataset, tmp_path):
    path = tmp_path / "deep" / "nested" / "run" / "data.npz"
    written = save_dataset(dataset, path)
    assert written == path
    assert load_dataset(path).n_baselines == dataset.n_baselines


def test_save_appends_npz_suffix(dataset, tmp_path):
    written = save_dataset(dataset, tmp_path / "data")
    assert written == tmp_path / "data.npz"
    assert load_dataset(written).n_times == dataset.n_times


def test_save_leaves_no_temp_files(dataset, tmp_path):
    save_dataset(dataset, tmp_path / "data.npz")
    save_dataset(dataset, tmp_path / "data.npz")  # overwrite path too
    assert sorted(p.name for p in tmp_path.iterdir()) == ["data.npz"]


def test_crashed_save_preserves_existing_file(dataset, tmp_path, monkeypatch):
    """A failure mid-write must leave the previous complete dataset intact
    (write-to-temp + atomic rename), not a truncated archive."""
    import repro.atomicio as atomicio

    path = tmp_path / "data.npz"
    save_dataset(dataset, path)

    real_savez = atomicio.np.savez_compressed

    def dying_savez(fh, **arrays):
        fh.write(b"partial garbage")  # simulate dying mid-stream
        raise OSError("disk went away")

    monkeypatch.setattr(atomicio.np, "savez_compressed", dying_savez)
    with pytest.raises(OSError):
        save_dataset(dataset, path)
    monkeypatch.setattr(atomicio.np, "savez_compressed", real_savez)

    # original survives, fully readable, and no temp litter remains
    back = load_dataset(path)
    np.testing.assert_array_equal(back.visibilities, dataset.visibilities)
    assert sorted(p.name for p in tmp_path.iterdir()) == ["data.npz"]


def test_thermal_noise_sigma_radiometer():
    # sigma = SEFD / (eta * sqrt(2 dnu tau))
    sigma = thermal_noise_sigma(1000.0, 200e3, 1.0, efficiency=1.0)
    assert sigma == pytest.approx(1000.0 / np.sqrt(2 * 200e3))
    # quadrupling bandwidth halves the noise
    assert thermal_noise_sigma(1000.0, 800e3, 1.0) == pytest.approx(
        thermal_noise_sigma(1000.0, 200e3, 1.0) / 2
    )


def test_thermal_noise_sigma_validation():
    with pytest.raises(ValueError):
        thermal_noise_sigma(-1.0, 200e3, 1.0)
    with pytest.raises(ValueError):
        thermal_noise_sigma(1000.0, 200e3, 1.0, efficiency=0.0)


def test_add_thermal_noise_statistics(dataset):
    noisy = add_thermal_noise(dataset, sefd_jy=2000.0, channel_width_hz=200e3,
                              integration_time_s=1.0, seed=3)
    sigma = thermal_noise_sigma(2000.0, 200e3, 1.0)
    delta = (noisy.visibilities - dataset.visibilities).ravel()
    assert delta.real.std() == pytest.approx(sigma, rel=0.05)
    assert delta.imag.std() == pytest.approx(sigma, rel=0.05)
    assert abs(delta.mean()) < 3 * sigma / np.sqrt(delta.size)


def test_add_thermal_noise_deterministic(dataset):
    a = add_thermal_noise(dataset, 1000.0, 200e3, 1.0, seed=7)
    b = add_thermal_noise(dataset, 1000.0, 200e3, 1.0, seed=7)
    np.testing.assert_array_equal(a.visibilities, b.visibilities)
    c = add_thermal_noise(dataset, 1000.0, 200e3, 1.0, seed=8)
    assert np.abs(a.visibilities - c.visibilities).max() > 0


def test_noise_preserves_metadata(dataset):
    noisy = add_thermal_noise(dataset, 1000.0, 200e3, 1.0)
    assert noisy.uvw_m is dataset.uvw_m
    np.testing.assert_array_equal(noisy.flags, dataset.flags)
