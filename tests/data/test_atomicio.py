"""atomic_savez_compressed under concurrent same-path writers.

The atomicity contract (tempfile + fsync + ``os.replace``) means N racing
writers to one path must end with the file holding exactly one writer's
complete payload — last writer wins, never a torn or mixed archive — and
no stray temp files left behind.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.atomicio import atomic_savez_compressed

N_WRITERS = 8
N_ROUNDS = 3


def _payload(writer: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(writer)
    return {
        "grid": rng.standard_normal((32, 32)).astype(np.complex64),
        "tag": np.full(4, writer, dtype=np.int64),
    }


def test_concurrent_writers_last_writer_wins(tmp_path):
    path = tmp_path / "artifact.npz"
    barrier = threading.Barrier(N_WRITERS)
    errors = []

    def writer(i: int) -> None:
        try:
            for _ in range(N_ROUNDS):
                barrier.wait()
                atomic_savez_compressed(path, **_payload(i))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(i,)) for i in range(N_WRITERS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors

    # The surviving file is one writer's payload, complete and coherent.
    with np.load(path) as archive:
        assert sorted(archive.files) == ["grid", "tag"]
        tag = archive["tag"]
        winner = int(tag[0])
        assert np.array_equal(tag, np.full(4, winner, dtype=np.int64))
        expected = _payload(winner)
        assert np.array_equal(archive["grid"], expected["grid"])

    # No torn temp files left in the directory.
    leftovers = [p for p in tmp_path.iterdir() if p.name != "artifact.npz"]
    assert leftovers == []


def test_appends_npz_suffix(tmp_path):
    written = atomic_savez_compressed(tmp_path / "plain", x=np.arange(3))
    assert written.suffix == ".npz"
    with np.load(written) as archive:
        assert np.array_equal(archive["x"], np.arange(3))


def test_failed_write_leaves_no_temp(tmp_path):
    path = tmp_path / "bad.npz"

    class Unpicklable:
        def __reduce__(self):
            raise RuntimeError("nope")

    try:
        atomic_savez_compressed(path, bad=np.array(Unpicklable(), dtype=object))
    except Exception:
        pass
    assert list(tmp_path.iterdir()) == []
