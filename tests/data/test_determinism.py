"""Determinism regression: same seed, same bits.

The differential harness, the calibration tests and EXPERIMENTS.md all rely
on dataset synthesis being a pure function of its seeds.  These tests pin
that down at the bit level — two generations with equal seeds must be
byte-identical, and distinct seeds must actually change the noise.
"""

import numpy as np

from repro.data.dataset import VisibilityDataset
from repro.data.noise import add_thermal_noise
from repro.sky.sources import random_sky
from repro.telescope.observation import ska1_low_observation

NOISE_KWARGS = dict(
    sefd_jy=1600.0, channel_width_hz=100e3, integration_time_s=30.0
)


def _make_dataset(obs_seed=7, sky_seed=3, noise_seed=5):
    obs = ska1_low_observation(
        n_stations=5,
        n_times=4,
        n_channels=2,
        integration_time_s=30.0,
        max_radius_m=300.0,
        seed=obs_seed,
    )
    gridspec = obs.fitting_gridspec(64)
    sky = random_sky(4, gridspec.image_size, seed=sky_seed)
    dataset = VisibilityDataset.simulate(obs, sky)
    return add_thermal_noise(dataset, seed=noise_seed, **NOISE_KWARGS)


def test_same_seeds_are_bit_identical():
    a = _make_dataset()
    b = _make_dataset()
    assert a.visibilities.tobytes() == b.visibilities.tobytes()
    assert a.uvw_m.tobytes() == b.uvw_m.tobytes()
    assert a.frequencies_hz.tobytes() == b.frequencies_hz.tobytes()
    assert np.array_equal(a.baselines, b.baselines)
    assert np.array_equal(a.flags, b.flags)


def test_different_noise_seed_changes_only_visibilities():
    a = _make_dataset(noise_seed=5)
    b = _make_dataset(noise_seed=6)
    assert not np.array_equal(a.visibilities, b.visibilities)
    assert a.uvw_m.tobytes() == b.uvw_m.tobytes()


def test_different_sky_seed_changes_visibilities():
    a = _make_dataset(sky_seed=3)
    b = _make_dataset(sky_seed=4)
    assert not np.array_equal(a.visibilities, b.visibilities)


def test_different_layout_seed_changes_uvw():
    a = _make_dataset(obs_seed=7)
    b = _make_dataset(obs_seed=8)
    assert not np.array_equal(a.uvw_m, b.uvw_m)


def test_random_sky_is_deterministic():
    a = random_sky(6, 0.1, seed=42)
    b = random_sky(6, 0.1, seed=42)
    assert a.l.tobytes() == b.l.tobytes()
    assert a.m.tobytes() == b.m.tobytes()
    assert a.brightness.tobytes() == b.brightness.tobytes()
