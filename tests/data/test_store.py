"""Schema-v2 chunked store: round trips, crash safety, typed errors, and
the work-group-aligned slice grammar (including the Hypothesis property that
arbitrary plans reassemble the visibilities bit-exactly)."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import COMPLEX_DTYPE
from repro.data.dataset import VisibilityDataset
from repro.data.store import (
    MANIFEST_NAME,
    ChunkedVisibilitySource,
    DatasetWriter,
    StoreError,
    is_store,
    open_store,
    write_store,
)

N_BL, N_TIMES, N_CHANNELS = 6, 12, 5


def _dataset(seed=0, flag_fraction=0.2):
    rng = np.random.default_rng(seed)
    shape = (N_BL, N_TIMES, N_CHANNELS, 2, 2)
    vis = (
        rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    ).astype(COMPLEX_DTYPE)
    ds = VisibilityDataset(
        uvw_m=rng.standard_normal((N_BL, N_TIMES, 3)),
        visibilities=vis,
        frequencies_hz=1e8 + 2e5 * np.arange(N_CHANNELS),
        baselines=np.array(
            [(p, q) for p in range(4) for q in range(p + 1, 4)]
        )[:N_BL],
    )
    if flag_fraction:
        ds.flags[rng.random(shape[:3]) < flag_fraction] = True
        assert ds.flags.any() and not ds.flags.all()
    return ds


@pytest.fixture
def dataset():
    return _dataset()


# ----------------------------------------------------------------- round trip


def test_write_store_roundtrip(dataset, tmp_path):
    store = write_store(dataset, tmp_path / "ds.store", time_chunk=5)
    assert is_store(tmp_path / "ds.store")
    np.testing.assert_array_equal(store.uvw_m[:], dataset.uvw_m)
    np.testing.assert_array_equal(store.visibilities[:], dataset.visibilities)
    np.testing.assert_array_equal(store.flags[:], dataset.flags)
    np.testing.assert_array_equal(store.frequencies_hz, dataset.frequencies_hz)
    np.testing.assert_array_equal(store.baselines, dataset.baselines)
    assert store.manifest.any_flags
    assert store.n_visibilities == dataset.n_visibilities


def test_open_store_verify_hash(dataset, tmp_path):
    path = tmp_path / "ds.store"
    write_store(dataset, path)
    open_store(path, verify=True)  # intact store passes
    vis_file = path / "visibilities.npy"
    raw = bytearray(vis_file.read_bytes())
    raw[-1] ^= 0xFF
    vis_file.write_bytes(bytes(raw))
    with pytest.raises(StoreError):
        open_store(path, verify=True)


def test_as_dataset_is_lazy_view(dataset, tmp_path):
    store = write_store(dataset, tmp_path / "ds.store")
    ds = store.as_dataset()
    # No materialising copy: the dataset columns alias the mmaps.
    assert not ds.visibilities.flags.owndata
    assert np.shares_memory(ds.visibilities, store.visibilities)
    np.testing.assert_array_equal(ds.visibilities, dataset.visibilities)


# ---------------------------------------------------------------- crash safety


def test_directory_without_manifest_is_refused(dataset, tmp_path):
    """The manifest is written last; a crash mid-write leaves a directory
    that must never open as a valid store."""
    path = tmp_path / "partial.store"
    writer = DatasetWriter(
        path, n_baselines=N_BL, n_times=N_TIMES, n_channels=N_CHANNELS
    )
    writer.write_times(
        0, dataset.uvw_m[:, :4], dataset.visibilities[:, :4],
        flags=dataset.flags[:, :4],
    )
    writer.close()  # simulated crash: no finalize, no manifest
    assert not is_store(path)
    with pytest.raises(StoreError):
        open_store(path)


def test_writer_enforces_full_coverage(dataset, tmp_path):
    with DatasetWriter(
        tmp_path / "gap.store", n_baselines=N_BL, n_times=N_TIMES,
        n_channels=N_CHANNELS,
    ) as writer:
        writer.set_frequencies(dataset.frequencies_hz)
        writer.set_baselines(dataset.baselines)
        writer.write_times(0, dataset.uvw_m[:, :4], dataset.visibilities[:, :4])
        # timesteps [4, 12) never written
        with pytest.raises(StoreError, match="never written"):
            writer.finalize()


def test_writer_rejects_overlapping_slabs(dataset, tmp_path):
    with DatasetWriter(
        tmp_path / "dup.store", n_baselines=N_BL, n_times=N_TIMES,
        n_channels=N_CHANNELS,
    ) as writer:
        writer.write_times(0, dataset.uvw_m[:, :6], dataset.visibilities[:, :6])
        with pytest.raises(StoreError, match="overlaps"):
            writer.write_times(
                4, dataset.uvw_m[:, 4:8], dataset.visibilities[:, 4:8]
            )


def test_writer_refuses_existing_store(dataset, tmp_path):
    path = tmp_path / "ds.store"
    write_store(dataset, path)
    with pytest.raises(StoreError, match="refusing to overwrite"):
        DatasetWriter(
            path, n_baselines=N_BL, n_times=N_TIMES, n_channels=N_CHANNELS
        )


# ---------------------------------------------------------------- typed errors


def test_open_store_rejects_missing_column(dataset, tmp_path):
    path = tmp_path / "ds.store"
    write_store(dataset, path)
    (path / "flags.npy").unlink()
    with pytest.raises(StoreError, match="missing"):
        open_store(path)


def test_open_store_rejects_manifest_shape_mismatch(dataset, tmp_path):
    path = tmp_path / "ds.store"
    write_store(dataset, path)
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    manifest["arrays"]["visibilities"]["shape"][1] += 1
    (path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(StoreError, match="does not match"):
        open_store(path)


def test_open_store_rejects_future_schema(dataset, tmp_path):
    path = tmp_path / "ds.store"
    write_store(dataset, path)
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    manifest["schema_version"] = 99
    (path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(StoreError, match="schema"):
        open_store(path)


# ----------------------------------------------------- source slice grammar


def test_source_masks_flags_lazily(dataset, tmp_path):
    store = write_store(dataset, tmp_path / "ds.store")
    source = store.source()
    eager = np.where(
        dataset.flags[..., None, None], 0, dataset.visibilities
    ).astype(COMPLEX_DTYPE)
    block = source[2, slice(3, 9), slice(1, 4)]
    np.testing.assert_array_equal(block, eager[2, 3:9, 1:4])
    # flat grammar (shape bucketing's view)
    flat = source.reshape(N_BL, N_TIMES, N_CHANNELS, 4)
    np.testing.assert_array_equal(
        flat[2, slice(3, 9), slice(1, 4)],
        eager.reshape(N_BL, N_TIMES, N_CHANNELS, 4)[2, 3:9, 1:4],
    )


def test_source_rejects_fancy_indexing(dataset, tmp_path):
    source = write_store(dataset, tmp_path / "ds.store").source()
    with pytest.raises(TypeError):
        source[0]
    with pytest.raises(TypeError):
        source[:, 0, 0]
    with pytest.raises(TypeError):
        source.reshape(-1)


def test_with_flags_combines_masks(dataset, tmp_path):
    store = write_store(dataset, tmp_path / "ds.store")
    extra = np.zeros((N_BL, N_TIMES, N_CHANNELS), dtype=bool)
    extra[0, 0, :] = True
    combined = store.source().with_flags(extra)
    eager = np.where(
        (dataset.flags | extra)[..., None, None], 0, dataset.visibilities
    ).astype(COMPLEX_DTYPE)
    np.testing.assert_array_equal(combined.materialize(), eager)
    # extra flags cannot ride along through a store path re-open, so the
    # combined source must drop it (process executor falls back to shm).
    assert store.source().store_path is not None
    assert combined.store_path is None


# ----------------------------------------------- property: slices reassemble


#: The plan-item fields the slice grammar reads (a real ``Plan.items`` is a
#: structured array carrying these among others).
_ITEM_DTYPE = np.dtype([
    ("baseline", np.int64),
    ("time_start", np.int64), ("time_end", np.int64),
    ("channel_start", np.int64), ("channel_end", np.int64),
])


class _FakePlan:
    def __init__(self, items: np.ndarray):
        self.items = items


@st.composite
def _plans(draw):
    n_items = draw(st.integers(1, 12))
    items = np.zeros(n_items, dtype=_ITEM_DTYPE)
    for k in range(n_items):
        t0 = draw(st.integers(0, N_TIMES - 1))
        c0 = draw(st.integers(0, N_CHANNELS - 1))
        items[k] = (
            draw(st.integers(0, N_BL - 1)),
            t0, draw(st.integers(t0 + 1, N_TIMES)),
            c0, draw(st.integers(c0 + 1, N_CHANNELS)),
        )
    return _FakePlan(items)


@settings(max_examples=60, deadline=None)
@given(plan=_plans(), data=st.data())
def test_group_blocks_reassemble_bit_exactly(tmp_path_factory, plan, data):
    """For arbitrary work-group-aligned plans and chunk sizes, the blocks a
    source yields equal the eagerly masked array's slices bit-for-bit, and
    a prefetched group serves the identical bytes from memory."""
    tmp_path = tmp_path_factory.mktemp("prop")
    seed = data.draw(st.integers(0, 3))
    chunk = data.draw(st.integers(1, N_TIMES))
    ds = _dataset(seed=seed)
    store = write_store(ds, tmp_path / f"p{seed}c{chunk}.store",
                        time_chunk=chunk)
    eager = np.where(
        ds.flags[..., None, None], 0, ds.visibilities
    ).astype(COMPLEX_DTYPE)
    source = store.source()
    start = data.draw(st.integers(0, len(plan.items) - 1))
    stop = data.draw(st.integers(start + 1, len(plan.items)))
    prefetched = source.prefetch_group(plan, start, stop)
    for index, block in source.group_blocks(plan, start, stop):
        item = plan.items[index]
        bl = int(item["baseline"])
        t = slice(int(item["time_start"]), int(item["time_end"]))
        c = slice(int(item["channel_start"]), int(item["channel_end"]))
        expected = eager[bl, t, c]
        np.testing.assert_array_equal(block, expected)
        np.testing.assert_array_equal(prefetched[bl, t, c], expected)


def test_source_grammar_matches_ndarray_contract(dataset, tmp_path):
    """A ChunkedVisibilitySource built from a plain array (no store) behaves
    exactly like the masked ndarray under the kernel grammar."""
    source = ChunkedVisibilitySource(
        dataset.visibilities, flags=dataset.flags
    )
    assert source.shape == dataset.visibilities.shape
    assert source.dtype == dataset.visibilities.dtype
    assert source.ndim == 5
    assert len(source) == N_BL
    eager = np.where(
        dataset.flags[..., None, None], 0, dataset.visibilities
    ).astype(COMPLEX_DTYPE)
    np.testing.assert_array_equal(source.materialize(), eager)
