"""Tests for the sigma-clipping RFI flagger."""

import numpy as np
import pytest

from repro.data.dataset import VisibilityDataset
from repro.data.rfi import flag_rfi, inject_rfi, sigma_clip_flags


@pytest.fixture
def dataset(small_obs, small_baselines, single_source_vis):
    rng = np.random.default_rng(0)
    noise = 0.02 * (
        rng.standard_normal(single_source_vis.shape)
        + 1j * rng.standard_normal(single_source_vis.shape)
    ).astype(np.complex64)
    return VisibilityDataset(
        uvw_m=small_obs.uvw_m,
        visibilities=single_source_vis + noise,
        frequencies_hz=small_obs.frequencies_hz,
        baselines=small_baselines,
    )


def test_clean_data_mostly_unflagged(dataset):
    flags = sigma_clip_flags(dataset.visibilities, threshold=6.0)
    assert flags.mean() < 0.01


def test_injected_rfi_detected(dataset):
    corrupted, truth_mask = inject_rfi(dataset, fraction=0.005,
                                       amplitude_factor=100.0, seed=1)
    flags = sigma_clip_flags(corrupted.visibilities, threshold=6.0)
    # essentially all injected samples found ...
    recall = flags[truth_mask].mean()
    assert recall > 0.95
    # ... with few false positives
    false_positive_rate = flags[~truth_mask].mean()
    assert false_positive_rate < 0.01


def test_flag_rfi_preserves_existing_flags(dataset):
    dataset.flags[0, 0, 0] = True
    corrupted, _ = inject_rfi(dataset, fraction=0.002, seed=2)
    corrupted.flags[0, 0, 0] = True
    out = flag_rfi(corrupted, threshold=6.0)
    assert out.flags[0, 0, 0]
    assert out.flags.sum() >= corrupted.flags.sum()


def test_validation(dataset):
    with pytest.raises(ValueError):
        sigma_clip_flags(dataset.visibilities, threshold=0.0)
    with pytest.raises(ValueError):
        inject_rfi(dataset, fraction=1.5)


def test_flagged_imaging_removes_rfi_artifacts(dataset, small_idg, small_plan,
                                               small_obs, snapped_source,
                                               small_gridspec):
    """End to end: RFI wrecks the image; flag + grid with flags restores it."""
    from repro.imaging.image import dirty_image_from_grid, stokes_i_image

    l0, m0, flux = snapped_source
    corrupted, truth_mask = inject_rfi(dataset, fraction=0.01,
                                       amplitude_factor=200.0, seed=3)
    flagged = flag_rfi(corrupted, threshold=6.0)

    g, dl = small_gridspec.grid_size, small_gridspec.pixel_scale
    row, col = round(m0 / dl) + g // 2, round(l0 / dl) + g // 2

    def peak_value(vis, flags, n_used):
        grid = small_idg.grid(small_plan, small_obs.uvw_m, vis, flags=flags)
        img = stokes_i_image(
            dirty_image_from_grid(grid, small_gridspec, weight_sum=n_used)
        )
        return img[row, col]

    n_total = small_plan.statistics.n_visibilities_gridded
    raw_peak = peak_value(corrupted.visibilities, None, n_total)
    n_clean = n_total - int(flagged.flags.sum())
    fixed_peak = peak_value(flagged.visibilities, flagged.flags, n_clean)
    assert abs(fixed_peak - flux) < abs(raw_peak - flux)
    assert fixed_peak == pytest.approx(flux, rel=0.05)
