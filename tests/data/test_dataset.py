"""Unit tests for the visibility dataset container."""

import numpy as np
import pytest

from repro.data.dataset import VisibilityDataset


@pytest.fixture
def dataset(small_obs, small_baselines, single_source_vis):
    return VisibilityDataset(
        uvw_m=small_obs.uvw_m,
        visibilities=single_source_vis.copy(),
        frequencies_hz=small_obs.frequencies_hz,
        baselines=small_baselines,
    )


def test_shapes_and_counts(dataset, small_obs):
    assert dataset.n_baselines == small_obs.n_baselines
    assert dataset.n_times == small_obs.n_times
    assert dataset.n_channels == small_obs.n_channels
    assert dataset.n_visibilities == small_obs.n_visibilities
    assert dataset.n_unflagged == dataset.n_visibilities
    assert dataset.flag_fraction() == 0.0


def test_validation():
    with pytest.raises(ValueError):
        VisibilityDataset(
            uvw_m=np.zeros((2, 3)), visibilities=np.zeros((2, 3, 1, 2, 2)),
            frequencies_hz=[1e8], baselines=np.zeros((2, 2), int),
        )
    with pytest.raises(ValueError):
        VisibilityDataset(
            uvw_m=np.zeros((2, 3, 3)), visibilities=np.zeros((2, 3, 2, 2, 2)),
            frequencies_hz=[1e8], baselines=np.zeros((2, 2), int),
        )
    with pytest.raises(ValueError):
        VisibilityDataset(
            uvw_m=np.zeros((2, 3, 3)), visibilities=np.zeros((2, 3, 1, 2, 2)),
            frequencies_hz=[1e8], baselines=np.zeros((3, 2), int),
        )
    with pytest.raises(ValueError):
        VisibilityDataset(
            uvw_m=np.zeros((2, 3, 3)), visibilities=np.zeros((2, 3, 1, 2, 2)),
            frequencies_hz=[1e8], baselines=np.zeros((2, 2), int),
            flags=np.zeros((2, 3, 2), bool),
        )


def test_select_times(dataset):
    sub = dataset.select_times(4, 12)
    assert sub.n_times == 8
    np.testing.assert_array_equal(sub.uvw_m, dataset.uvw_m[:, 4:12])
    np.testing.assert_array_equal(sub.visibilities, dataset.visibilities[:, 4:12])
    with pytest.raises(ValueError):
        dataset.select_times(5, 5)


def test_select_channels(dataset):
    sub = dataset.select_channels(1, 3)
    assert sub.n_channels == 2
    np.testing.assert_array_equal(sub.frequencies_hz, dataset.frequencies_hz[1:3])
    with pytest.raises(ValueError):
        dataset.select_channels(-1, 2)


def test_select_baselines(dataset):
    sub = dataset.select_baselines(np.array([0, 5, 7]))
    assert sub.n_baselines == 3
    np.testing.assert_array_equal(sub.baselines, dataset.baselines[[0, 5, 7]])


def test_select_max_baseline(dataset):
    lengths = np.linalg.norm(dataset.uvw_m, axis=2).mean(axis=1)
    cutoff = np.median(lengths)
    sub = dataset.select_max_baseline(cutoff)
    assert 0 < sub.n_baselines < dataset.n_baselines
    sub_lengths = np.linalg.norm(sub.uvw_m, axis=2).mean(axis=1)
    assert sub_lengths.max() <= cutoff


def test_average_channels_preserves_constant_signal(dataset):
    avg = dataset.average_channels(2)
    assert avg.n_channels == dataset.n_channels // 2
    # frequencies are group means
    np.testing.assert_allclose(
        avg.frequencies_hz, dataset.frequencies_hz.reshape(-1, 2).mean(axis=1)
    )
    # averaging 2 nearly identical channels ~ either one
    np.testing.assert_allclose(
        avg.visibilities[..., 0, 0],
        0.5 * (dataset.visibilities[:, :, 0::2, 0, 0]
               + dataset.visibilities[:, :, 1::2, 0, 0]),
        atol=1e-5,
    )


def test_average_channels_respects_flags(dataset):
    flagged = VisibilityDataset(
        uvw_m=dataset.uvw_m, visibilities=dataset.visibilities,
        frequencies_hz=dataset.frequencies_hz, baselines=dataset.baselines,
        flags=dataset.flags.copy(),
    )
    flagged.flags[:, :, 0] = True  # kill channel 0
    avg = flagged.average_channels(2)
    # first output channel = channel 1 only
    np.testing.assert_allclose(
        avg.visibilities[:, :, 0], dataset.visibilities[:, :, 1], atol=1e-6
    )
    # both inputs flagged -> output flagged
    flagged.flags[:, :, 1] = True
    avg2 = flagged.average_channels(2)
    assert avg2.flags[:, :, 0].all()
    assert np.all(avg2.visibilities[:, :, 0] == 0)


def test_average_times(dataset):
    avg = dataset.average_times(2)
    assert avg.n_times == dataset.n_times // 2
    np.testing.assert_allclose(
        avg.uvw_m, dataset.uvw_m.reshape(dataset.n_baselines, -1, 2, 3).mean(axis=2)
    )


def test_average_validation(dataset):
    with pytest.raises(ValueError):
        dataset.average_channels(3)  # 4 channels not divisible by 3
    with pytest.raises(ValueError):
        dataset.average_times(7)


def test_with_visibilities(dataset):
    new = dataset.with_visibilities(np.zeros_like(dataset.visibilities))
    assert new.visibilities.sum() == 0
    assert new.uvw_m is dataset.uvw_m


def test_simulate_classmethod(small_obs, single_source_sky, single_source_vis):
    ds = VisibilityDataset.simulate(small_obs, single_source_sky)
    np.testing.assert_allclose(ds.visibilities, single_source_vis, atol=1e-6)
    assert ds.n_baselines == small_obs.n_baselines
