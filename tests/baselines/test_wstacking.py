"""Unit tests for the W-stacking baseline."""

import numpy as np
import pytest

from repro.baselines.wstacking import WStackingGridder
from repro.imaging.image import find_peak, stokes_i_image


@pytest.fixture(scope="module")
def ws(small_gridspec):
    return WStackingGridder(small_gridspec, n_planes=8, support=10, inner_w_planes=8)


@pytest.fixture(scope="module")
def point_model(snapped_source, small_gridspec):
    l0, m0, flux = snapped_source
    g, dl = small_gridspec.grid_size, small_gridspec.pixel_scale
    model = np.zeros((4, g, g), dtype=np.complex128)
    model[0, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = flux
    model[3, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = flux
    return model


def test_constructor_validation(small_gridspec):
    with pytest.raises(ValueError):
        WStackingGridder(small_gridspec, n_planes=0)


def test_image_recovers_source(ws, small_obs, single_source_vis, snapped_source,
                               small_gridspec):
    l0, m0, flux = snapped_source
    image = stokes_i_image(
        ws.image(small_obs.uvw_m, small_obs.frequencies_hz, single_source_vis)
    )
    row, col, value = find_peak(image)
    g, dl = small_gridspec.grid_size, small_gridspec.pixel_scale
    assert (row, col) == (round(m0 / dl) + g // 2, round(l0 / dl) + g // 2)
    assert value == pytest.approx(flux, rel=0.02)


def test_predict_matches_oracle(ws, small_obs, single_source_vis, point_model):
    pred = ws.predict(point_model, small_obs.uvw_m, small_obs.frequencies_hz)
    # residual dominated by the oversampled-kernel quantisation (~4%)
    nonzero = np.abs(pred[..., 0, 0]) > 0
    err = np.abs(pred[nonzero[..., None, None] & (np.abs(single_source_vis) > 0)]
                 - single_source_vis[nonzero[..., None, None] & (np.abs(single_source_vis) > 0)])
    scale = np.sqrt((np.abs(single_source_vis) ** 2).mean())
    assert np.sqrt((err**2).mean()) / scale < 0.08


def test_more_planes_improve_prediction(small_obs, single_source_vis, point_model,
                                        small_gridspec):
    def rms(planes):
        ws = WStackingGridder(small_gridspec, n_planes=planes, support=10,
                              inner_w_planes=2)
        pred = ws.predict(point_model, small_obs.uvw_m, small_obs.frequencies_hz)
        mask = np.abs(pred[..., 0, 0]) > 0
        sel = mask[..., None, None] & np.ones_like(pred, bool)
        return np.sqrt((np.abs(pred[sel] - single_source_vis[sel]) ** 2).mean())

    assert rms(8) < rms(1) * 1.05  # more planes never hurt; usually much better


def test_predict_shape_validation(ws, small_obs):
    with pytest.raises(ValueError):
        ws.predict(np.zeros((4, 16, 16)), small_obs.uvw_m, small_obs.frequencies_hz)


def test_memory_scales_with_planes(small_gridspec):
    one = WStackingGridder(small_gridspec, n_planes=1)
    eight = WStackingGridder(small_gridspec, n_planes=8)
    assert eight.memory_bytes() == 8 * one.memory_bytes()
    g = small_gridspec.grid_size
    assert one.memory_bytes() == 4 * g * g * 8  # complex64


def test_single_plane_image_still_works(small_obs, single_source_vis, snapped_source,
                                        small_gridspec):
    """n_planes=1 degenerates to plain W-projection around the mid w."""
    ws = WStackingGridder(small_gridspec, n_planes=1, support=10, inner_w_planes=8)
    image = stokes_i_image(
        ws.image(small_obs.uvw_m, small_obs.frequencies_hz, single_source_vis)
    )
    l0, m0, flux = snapped_source
    g, dl = small_gridspec.grid_size, small_gridspec.pixel_scale
    row, col, value = find_peak(image)
    assert (row, col) == (round(m0 / dl) + g // 2, round(l0 / dl) + g // 2)
    assert value == pytest.approx(flux, rel=0.05)
