"""Unit tests for the W-stacking baseline."""

import numpy as np
import pytest

from repro.baselines.wstacking import WStackingGridder
from repro.imaging.image import find_peak, stokes_i_image


@pytest.fixture(scope="module")
def ws(small_gridspec):
    return WStackingGridder(small_gridspec, n_planes=8, support=10, inner_w_planes=8)


@pytest.fixture(scope="module")
def point_model(snapped_source, small_gridspec):
    l0, m0, flux = snapped_source
    g, dl = small_gridspec.grid_size, small_gridspec.pixel_scale
    model = np.zeros((4, g, g), dtype=np.complex128)
    model[0, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = flux
    model[3, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = flux
    return model


def test_constructor_validation(small_gridspec):
    with pytest.raises(ValueError):
        WStackingGridder(small_gridspec, n_planes=0)


def test_image_recovers_source(ws, small_obs, single_source_vis, snapped_source,
                               small_gridspec):
    l0, m0, flux = snapped_source
    image = stokes_i_image(
        ws.image(small_obs.uvw_m, small_obs.frequencies_hz, single_source_vis)
    )
    row, col, value = find_peak(image)
    g, dl = small_gridspec.grid_size, small_gridspec.pixel_scale
    assert (row, col) == (round(m0 / dl) + g // 2, round(l0 / dl) + g // 2)
    assert value == pytest.approx(flux, rel=0.02)


def test_predict_matches_oracle(ws, small_obs, single_source_vis, point_model):
    pred = ws.predict(point_model, small_obs.uvw_m, small_obs.frequencies_hz)
    # residual dominated by the oversampled-kernel quantisation (~4%)
    nonzero = np.abs(pred[..., 0, 0]) > 0
    err = np.abs(pred[nonzero[..., None, None] & (np.abs(single_source_vis) > 0)]
                 - single_source_vis[nonzero[..., None, None] & (np.abs(single_source_vis) > 0)])
    scale = np.sqrt((np.abs(single_source_vis) ** 2).mean())
    assert np.sqrt((err**2).mean()) / scale < 0.08


def test_more_planes_improve_prediction(small_obs, single_source_vis, point_model,
                                        small_gridspec):
    def rms(planes):
        ws = WStackingGridder(small_gridspec, n_planes=planes, support=10,
                              inner_w_planes=2)
        pred = ws.predict(point_model, small_obs.uvw_m, small_obs.frequencies_hz)
        mask = np.abs(pred[..., 0, 0]) > 0
        sel = mask[..., None, None] & np.ones_like(pred, bool)
        return np.sqrt((np.abs(pred[sel] - single_source_vis[sel]) ** 2).mean())

    assert rms(8) < rms(1) * 1.05  # more planes never hurt; usually much better


def test_predict_shape_validation(ws, small_obs):
    with pytest.raises(ValueError):
        ws.predict(np.zeros((4, 16, 16)), small_obs.uvw_m, small_obs.frequencies_hz)


def test_memory_scales_with_planes(small_gridspec):
    one = WStackingGridder(small_gridspec, n_planes=1)
    eight = WStackingGridder(small_gridspec, n_planes=8)
    assert eight.memory_bytes() == 8 * one.memory_bytes()
    g = small_gridspec.grid_size
    assert one.memory_bytes() == 4 * g * g * 8  # complex64


def test_single_plane_image_still_works(small_obs, single_source_vis, snapped_source,
                                        small_gridspec):
    """n_planes=1 degenerates to plain W-projection around the mid w."""
    ws = WStackingGridder(small_gridspec, n_planes=1, support=10, inner_w_planes=8)
    image = stokes_i_image(
        ws.image(small_obs.uvw_m, small_obs.frequencies_hz, single_source_vis)
    )
    l0, m0, flux = snapped_source
    g, dl = small_gridspec.grid_size, small_gridspec.pixel_scale
    row, col, value = find_peak(image)
    assert (row, col) == (round(m0 / dl) + g // 2, round(l0 / dl) + g // 2)
    assert value == pytest.approx(flux, rel=0.05)


def test_image_shape_validation(ws, small_obs):
    """Regression: a mis-shaped visibility array used to broadcast silently
    through the plane masking ``np.where``."""
    bad = np.zeros(
        (small_obs.n_baselines, small_obs.n_times, 2, 2), dtype=np.complex64
    )
    with pytest.raises(ValueError):
        ws.image(small_obs.uvw_m, small_obs.frequencies_hz, bad)


def test_plane_partition_normalisation_matches_single_plane():
    """Regression: each plane's inner gridder used to set its w-kernel
    quantisation range from *all* residual w values — including the
    zero-filled off-plane ones — so in-plane visibilities were gridded with
    kernels tabulated for far-off w, losing ~40% of an off-centre source's
    flux in this wide-field setup.  The per-plane residual range must make
    the partitioned stack agree with a single-plane reference."""
    from repro.sky.model import SkyModel
    from repro.sky.simulate import predict_visibilities
    from repro.telescope.observation import ska1_low_observation

    obs = ska1_low_observation(
        n_stations=8, n_times=16, n_channels=2, integration_time_s=120.0,
        max_radius_m=2000.0, seed=1,
    )
    gs = obs.fitting_gridspec(128, fill_factor=1.6)  # wide field: w matters
    dl = gs.pixel_scale
    l0 = round(0.35 * gs.image_size / dl) * dl
    m0 = round(-0.30 * gs.image_size / dl) * dl
    vis = predict_visibilities(
        obs.uvw_m, obs.frequencies_hz, SkyModel.single(l0, m0, flux=2.0),
        baselines=obs.array.baselines(),
    )
    row = round(m0 / dl) + gs.grid_size // 2
    col = round(l0 / dl) + gs.grid_size // 2

    def source_flux(n_planes, inner_w_planes):
        ws = WStackingGridder(gs, n_planes=n_planes, support=8,
                              inner_w_planes=inner_w_planes)
        img = stokes_i_image(ws.image(obs.uvw_m, obs.frequencies_hz, vis))
        return img[row, col]

    reference = source_flux(1, 8)
    partitioned = source_flux(4, 2)
    assert reference == pytest.approx(2.0, rel=0.05)
    # coarse inner quantisation is fine once each plane's residual range is
    # its own — the partition must not change the recovered flux materially
    assert partitioned == pytest.approx(reference, rel=0.05)
