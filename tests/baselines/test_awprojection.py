"""Unit tests for the AW-projection baseline."""

import numpy as np
import pytest

from repro.aterms.generators import GaussianBeamATerm, IdentityATerm, PointingErrorATerm
from repro.aterms.schedule import ATermSchedule
from repro.baselines.awprojection import AWProjectionGridder
from repro.baselines.wprojection import WProjectionGridder
from repro.imaging.image import model_image_to_grid
from repro.sky.model import SkyModel
from repro.sky.simulate import predict_visibilities


def test_identity_aterms_match_plain_wprojection(small_obs, small_baselines,
                                                 single_source_vis, small_gridspec):
    aw = AWProjectionGridder(
        small_gridspec, aterms=IdentityATerm(), support=12, oversample=4, n_w_planes=8
    )
    plain = WProjectionGridder(small_gridspec, support=12, oversample=4, n_w_planes=8)
    grid_aw = aw.grid_aw(
        small_obs.uvw_m, small_obs.frequencies_hz, single_source_vis, small_baselines
    )
    grid_plain = plain.grid(small_obs.uvw_m, small_obs.frequencies_hz, single_source_vis)
    np.testing.assert_allclose(grid_aw, grid_plain, atol=1e-4)


def test_beam_aterm_degrid_matches_corrupted_oracle(small_obs, small_baselines,
                                                    small_gridspec, snapped_source):
    """AW-degridding of a point model must approximate the beam-corrupted
    measurement equation (to the oversampling quantisation floor)."""
    beam = GaussianBeamATerm(fwhm=1.5 * small_gridspec.image_size)
    schedule = ATermSchedule(16)
    l0, m0, flux = snapped_source
    sky = SkyModel.single(l0, m0, flux=flux)
    vis = predict_visibilities(
        small_obs.uvw_m, small_obs.frequencies_hz, sky,
        baselines=small_baselines, aterms=beam, schedule=schedule,
    )
    g, dl = small_gridspec.grid_size, small_gridspec.pixel_scale
    model = np.zeros((4, g, g), dtype=np.complex128)
    model[0, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = flux
    model[3, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = flux
    mgrid = model_image_to_grid(model, small_gridspec)

    aw = AWProjectionGridder(
        small_gridspec, aterms=beam, schedule=schedule,
        support=16, oversample=8, n_w_planes=32,
    )
    pred = aw.degrid_aw(small_obs.uvw_m, small_obs.frequencies_hz, mgrid, small_baselines)
    mask = ~aw.flagged_mask(small_obs.uvw_m, small_obs.frequencies_hz)
    sel = mask[..., np.newaxis, np.newaxis] & np.ones_like(pred, bool)
    err = np.abs(pred[sel] - vis[sel])
    rel_rms = np.sqrt((err**2).mean()) / np.sqrt((np.abs(vis[sel]) ** 2).mean())
    assert rel_rms < 0.08


def test_kernel_count_explosion(small_obs, small_baselines, single_source_vis,
                                small_gridspec):
    """The Section VI-E story: AW kernels are per (baseline, interval, plane),
    so the cache grows far beyond plain W-projection's per-plane tables."""
    beam = PointingErrorATerm(fwhm=small_gridspec.image_size, pointing_rms=0.002)
    schedule = ATermSchedule(32)
    aw = AWProjectionGridder(
        small_gridspec, aterms=beam, schedule=schedule,
        support=8, oversample=4, n_w_planes=4, kernel_raster=32,
    )
    aw.grid_aw(small_obs.uvw_m, small_obs.frequencies_hz, single_source_vis, small_baselines)
    plain = WProjectionGridder(small_gridspec, support=8, oversample=4, n_w_planes=4)
    plain.grid(small_obs.uvw_m, small_obs.frequencies_hz, single_source_vis)
    assert aw.kernel_count() > 5 * len(plain._tables)
    assert aw.kernel_storage_bytes() > 5 * plain.kernel_storage_bytes()


def test_nonscalar_aterm_rejected(small_gridspec):
    class FullJones(GaussianBeamATerm):
        def evaluate(self, station, interval, l, m):
            out = super().evaluate(station, interval, l, m)
            out[..., 0, 1] = 0.1  # leakage term -> not scalar
            return out

    aw = AWProjectionGridder(small_gridspec, aterms=FullJones(fwhm=0.1), support=8)
    aw.set_w_range(0.0, 1.0)
    with pytest.raises(NotImplementedError):
        aw._scalar_aterm(0, 0)
