"""Unit tests for the W-projection baseline gridder."""

import numpy as np
import pytest

from repro.baselines.wprojection import WProjectionGridder
from repro.constants import SPEED_OF_LIGHT
from repro.gridspec import GridSpec
from repro.imaging.image import (
    dirty_image_from_grid,
    find_peak,
    model_image_to_grid,
    stokes_i_image,
)


@pytest.fixture(scope="module")
def flat_gs():
    return GridSpec(grid_size=128, image_size=0.05)


def _fringe_set(gs, l0, m0, m=300, seed=0, uv_fraction=0.6):
    """Random w=0 visibilities of a unit source at (l0, m0)."""
    rng = np.random.default_rng(seed)
    u = rng.uniform(-gs.max_uv * uv_fraction, gs.max_uv * uv_fraction, m)
    v = rng.uniform(-gs.max_uv * uv_fraction, gs.max_uv * uv_fraction, m)
    uvw = np.zeros((1, m, 3))
    uvw[0, :, 0], uvw[0, :, 1] = u, v
    fringe = np.exp(-2j * np.pi * (u * l0 + v * m0))
    vis = np.zeros((1, m, 1, 2, 2), np.complex64)
    vis[0, :, 0, 0, 0] = fringe
    vis[0, :, 0, 1, 1] = fringe
    return uvw, np.array([SPEED_OF_LIGHT]), vis, fringe


def test_constructor_validation(flat_gs):
    with pytest.raises(ValueError):
        WProjectionGridder(flat_gs, support=0)
    with pytest.raises(ValueError):
        WProjectionGridder(flat_gs, oversample=0)
    with pytest.raises(ValueError):
        WProjectionGridder(flat_gs, n_w_planes=0)
    with pytest.raises(ValueError):
        WProjectionGridder(flat_gs, support=32, kernel_raster=16)


def test_grid_recovers_source(flat_gs):
    dl = flat_gs.pixel_scale
    l0, m0 = -10 * dl, 14 * dl
    uvw, freqs, vis, _ = _fringe_set(flat_gs, l0, m0)
    wpg = WProjectionGridder(flat_gs, support=10, oversample=8, n_w_planes=1)
    grid = wpg.grid(uvw, freqs, vis)
    image = stokes_i_image(dirty_image_from_grid(grid, flat_gs, weight_sum=300))
    row, col, value = find_peak(image)
    assert (row, col) == (64 + 14, 64 - 10)
    assert value == pytest.approx(1.0, abs=0.02)


def test_degrid_matches_analytic_fringe(flat_gs):
    dl = flat_gs.pixel_scale
    l0, m0 = 8 * dl, -6 * dl
    uvw, freqs, _, fringe = _fringe_set(flat_gs, l0, m0, seed=1)
    model = np.zeros((4, 128, 128), dtype=np.complex128)
    model[0, 64 - 6, 64 + 8] = 1.0
    mgrid = model_image_to_grid(model, flat_gs)
    wpg = WProjectionGridder(flat_gs, support=10, oversample=16, n_w_planes=1)
    pred = wpg.degrid(uvw, freqs, mgrid)[0, :, 0, 0, 0]
    err = np.abs(pred - fringe)
    assert np.sqrt((err**2).mean()) < 0.02  # oversample-16 quantisation floor


def test_oversampling_improves_accuracy(flat_gs):
    """Higher oversampling must reduce degridding error (the trade Fig 16's
    WPG pays in kernel storage)."""
    dl = flat_gs.pixel_scale
    l0, m0 = 12 * dl, 5 * dl
    uvw, freqs, _, fringe = _fringe_set(flat_gs, l0, m0, seed=2)
    model = np.zeros((4, 128, 128), dtype=np.complex128)
    model[0, 64 + 5, 64 + 12] = 1.0
    mgrid = model_image_to_grid(model, flat_gs)

    def rms(oversample):
        wpg = WProjectionGridder(flat_gs, support=10, oversample=oversample, n_w_planes=1)
        pred = wpg.degrid(uvw, freqs, mgrid)[0, :, 0, 0, 0]
        return np.sqrt((np.abs(pred - fringe) ** 2).mean())

    assert rms(16) < rms(4) < rms(2)


def test_grid_degrid_adjoint(flat_gs):
    """<grid(V), G> == <V, degrid(G)> — including w kernels."""
    rng = np.random.default_rng(3)
    m = 64
    uvw = np.zeros((1, m, 3))
    uvw[0, :, 0] = rng.uniform(-1000, 1000, m)
    uvw[0, :, 1] = rng.uniform(-1000, 1000, m)
    uvw[0, :, 2] = rng.uniform(-50, 50, m)
    freqs = np.array([SPEED_OF_LIGHT])
    vis = (rng.standard_normal((1, m, 1, 2, 2)) + 1j * rng.standard_normal((1, m, 1, 2, 2))).astype(
        np.complex64
    )
    wpg = WProjectionGridder(flat_gs, support=8, oversample=4, n_w_planes=8)
    gridded = wpg.grid(uvw, freqs, vis).astype(np.complex128)
    g = flat_gs.grid_size
    other = rng.standard_normal((4, g, g)) + 1j * rng.standard_normal((4, g, g))
    degridded = wpg.degrid(uvw, freqs, other.astype(np.complex64)).astype(np.complex128)
    mask = ~wpg.flagged_mask(uvw, freqs)
    lhs = np.vdot(gridded, other)
    rhs = np.vdot(vis[mask[..., np.newaxis, np.newaxis] * np.ones((1, m, 1, 2, 2), bool)],
                  degridded[mask[..., np.newaxis, np.newaxis] * np.ones((1, m, 1, 2, 2), bool)])
    assert lhs == pytest.approx(rhs, rel=1e-3)


def test_w_planes_reduce_w_error(small_obs, small_baselines, single_source_vis,
                                 snapped_source, small_gridspec):
    """More w planes must improve degridding accuracy on real w-heavy data."""
    l0, m0, flux = snapped_source
    g, dl = small_gridspec.grid_size, small_gridspec.pixel_scale
    model = np.zeros((4, g, g), dtype=np.complex128)
    model[0, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = flux
    model[3, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = flux
    mgrid = model_image_to_grid(model, small_gridspec)

    def rms(planes):
        wpg = WProjectionGridder(small_gridspec, support=16, oversample=8, n_w_planes=planes)
        pred = wpg.degrid(small_obs.uvw_m, small_obs.frequencies_hz, mgrid)
        mask = ~wpg.flagged_mask(small_obs.uvw_m, small_obs.frequencies_hz)
        err = np.abs(pred[mask] - single_source_vis[mask])
        return np.sqrt((err**2).mean())

    assert rms(64) < rms(1)


def test_flagged_mask_marks_edge_footprints(flat_gs):
    wpg = WProjectionGridder(flat_gs, support=16, n_w_planes=1)
    uvw = np.zeros((1, 2, 3))
    uvw[0, 0, 0] = flat_gs.max_uv * 0.999  # footprint off the edge
    uvw[0, 1, 0] = 0.0
    mask = wpg.flagged_mask(uvw, np.array([SPEED_OF_LIGHT]))
    assert mask[0, 0, 0]
    assert not mask[0, 1, 0]


def test_kernel_storage_grows_with_planes(flat_gs):
    uvw = np.zeros((1, 16, 3))
    uvw[0, :, 2] = np.linspace(-100, 100, 16)
    uvw[0, :, 0] = np.linspace(-500, 500, 16)
    freqs = np.array([SPEED_OF_LIGHT])
    vis = np.zeros((1, 16, 1, 2, 2), np.complex64)
    few = WProjectionGridder(flat_gs, support=8, n_w_planes=2)
    few.grid(uvw, freqs, vis)
    many = WProjectionGridder(flat_gs, support=8, n_w_planes=16)
    many.grid(uvw, freqs, vis)
    assert many.kernel_storage_bytes() > few.kernel_storage_bytes()


def test_operations_per_visibility_quadratic(flat_gs):
    small = WProjectionGridder(flat_gs, support=8)
    large = WProjectionGridder(flat_gs, support=16)
    assert large.operations_per_visibility() == 4 * small.operations_per_visibility()


def test_set_w_range_validation(flat_gs):
    wpg = WProjectionGridder(flat_gs)
    with pytest.raises(ValueError):
        wpg.set_w_range(10.0, -10.0)


def test_w_offset_shifts_plane_assignment(flat_gs):
    """Gridding with w_offset equal to the (constant) w must match gridding
    the same data with w = 0."""
    rng = np.random.default_rng(4)
    m = 40
    uvw = np.zeros((1, m, 3))
    uvw[0, :, 0] = rng.uniform(-800, 800, m)
    uvw[0, :, 1] = rng.uniform(-800, 800, m)
    uvw[0, :, 2] = 123.0
    freqs = np.array([SPEED_OF_LIGHT])
    vis = (rng.standard_normal((1, m, 1, 2, 2)) + 0j).astype(np.complex64)

    with_offset = WProjectionGridder(flat_gs, support=8, n_w_planes=4)
    with_offset.set_w_range(-1.0, 1.0)
    grid_a = with_offset.grid(uvw, freqs, vis, w_offset=123.0)

    uvw0 = uvw.copy()
    uvw0[0, :, 2] = 0.0
    plain = WProjectionGridder(flat_gs, support=8, n_w_planes=4)
    plain.set_w_range(-1.0, 1.0)
    grid_b = plain.grid(uvw0, freqs, vis)
    np.testing.assert_allclose(grid_a, grid_b, atol=1e-5)
