"""End-to-end: the same ImagingCycle runs with IDG or W-projection."""

import numpy as np
import pytest

from repro.aterms.generators import GaussianBeamATerm
from repro.aterms.schedule import ATermSchedule
from repro.baselines.adapter import WProjectionImager
from repro.imaging.cycle import ImagingCycle
from repro.imaging.image import find_peak


@pytest.fixture(scope="module")
def wpg_cycle(small_gridspec, small_obs, small_baselines):
    imager = WProjectionImager(small_gridspec, support=16, oversample=8,
                               n_w_planes=64)
    return ImagingCycle(imager, small_obs.uvw_m, small_obs.frequencies_hz,
                        small_baselines)


def test_wpg_cycle_recovers_source(wpg_cycle, single_source_vis, snapped_source,
                                   small_gridspec):
    result = wpg_cycle.run(single_source_vis, n_major=3, minor_iterations=150,
                           threshold_factor=1.5)
    l0, m0, flux = snapped_source
    g, dl = small_gridspec.grid_size, small_gridspec.pixel_scale
    row, col, _ = find_peak(result.model_image)
    assert abs(row - (round(m0 / dl) + g // 2)) <= 1
    assert abs(col - (round(l0 / dl) + g // 2)) <= 1
    recovered = result.model_image[row - 2 : row + 3, col - 2 : col + 3].sum()
    assert recovered == pytest.approx(flux, rel=0.15)


def test_idg_and_wpg_dirty_images_agree(wpg_cycle, small_idg, small_obs,
                                        small_baselines, single_source_vis,
                                        small_gridspec):
    """The two gridders, run through identical imaging code, produce
    consistent dirty images (to the WPG oversampling floor)."""
    idg_cycle = ImagingCycle(small_idg, small_obs.uvw_m,
                             small_obs.frequencies_hz, small_baselines)
    img_idg = idg_cycle.make_dirty_image(single_source_vis)
    img_wpg = wpg_cycle.make_dirty_image(single_source_vis)
    g = small_gridspec.grid_size
    inner = slice(g // 8, -g // 8)
    diff = np.abs(img_idg[inner, inner] - img_wpg[inner, inner]).max()
    assert diff < 0.05 * np.abs(img_idg[inner, inner]).max()


def test_wpg_adapter_rejects_aterms(wpg_cycle, small_obs, small_baselines,
                                    single_source_vis, small_gridspec):
    """The capability boundary of Section VI-E, visible at the API level."""
    imager = WProjectionImager(small_gridspec)
    with pytest.raises(NotImplementedError):
        imager.make_plan(small_obs.uvw_m, small_obs.frequencies_hz,
                         small_baselines, aterm_schedule=ATermSchedule(8))
    plan = imager.make_plan(small_obs.uvw_m, small_obs.frequencies_hz,
                            small_baselines)
    beam = GaussianBeamATerm(fwhm=0.1)
    with pytest.raises(NotImplementedError):
        imager.grid(plan, small_obs.uvw_m, single_source_vis, aterms=beam)
    with pytest.raises(NotImplementedError):
        imager.degrid(plan, small_obs.uvw_m,
                      small_gridspec.allocate_grid(), aterms=beam)
