"""Unit tests for grid <-> image conversions."""

import numpy as np
import pytest

from repro.gridspec import GridSpec
from repro.imaging.image import (
    dirty_image_from_grid,
    find_peak,
    model_image_to_grid,
    stokes_i_image,
)


@pytest.fixture
def gs():
    return GridSpec(grid_size=64, image_size=0.05)


def test_flat_grid_is_central_point_source(gs):
    """A constant grid is the transform of a delta at the image centre."""
    grid = np.ones((4, 64, 64), dtype=np.complex64)
    image = dirty_image_from_grid(grid, gs, weight_sum=64 * 64, correct_taper=False)
    peak = np.abs(image[0]).max()
    assert image[0, 32, 32].real == pytest.approx(peak)
    assert image[0, 32, 32].real == pytest.approx(1.0)


def test_weight_sum_normalises(gs):
    grid = np.ones((4, 64, 64), dtype=np.complex64)
    a = dirty_image_from_grid(grid, gs, weight_sum=100.0, correct_taper=False)
    b = dirty_image_from_grid(grid, gs, weight_sum=200.0, correct_taper=False)
    np.testing.assert_allclose(a, 2 * b, atol=1e-6)


def test_weight_sum_validation(gs):
    with pytest.raises(ValueError):
        dirty_image_from_grid(np.ones((4, 64, 64), np.complex64), gs, weight_sum=0.0)


def test_taper_correction_no_nans(gs):
    grid = np.ones((4, 64, 64), dtype=np.complex64)
    image = dirty_image_from_grid(grid, gs, weight_sum=1.0, correct_taper=True)
    assert np.all(np.isfinite(image) | (image == 0))


def test_model_image_to_grid_is_corrected_fft(gs):
    """model_image_to_grid = centered_fft2(model / grid_correction)."""
    from repro.kernels.fft import centered_fft2
    from repro.kernels.spheroidal import grid_correction

    model = np.zeros((4, 64, 64), dtype=np.complex128)
    model[0, 40, 20] = 3.0
    grid = model_image_to_grid(model, gs)
    expected = centered_fft2(model / grid_correction(64), axes=(-2, -1))
    np.testing.assert_allclose(grid, expected.astype(np.complex64), atol=1e-3)


def test_fft_roundtrip_without_corrections(gs):
    """grid -> image with matching normalisation inverts a plain FFT."""
    from repro.kernels.fft import centered_fft2

    model = np.zeros((4, 64, 64), dtype=np.complex128)
    model[0, 40, 20] = 3.0
    model[3, 10, 50] = -1.0
    grid = centered_fft2(model, axes=(-2, -1))
    image = dirty_image_from_grid(grid, gs, weight_sum=64 * 64, correct_taper=False)
    np.testing.assert_allclose(image, model, atol=1e-9)


def test_model_image_to_grid_shape_validation(gs):
    with pytest.raises(ValueError):
        model_image_to_grid(np.zeros((4, 32, 32)), gs)


def test_stokes_i_combines_xx_yy():
    img = np.zeros((4, 8, 8), dtype=np.complex128)
    img[0] = 2.0 + 1.0j
    img[3] = 4.0 - 1.0j
    out = stokes_i_image(img)
    np.testing.assert_allclose(out, 3.0)
    assert out.dtype.kind == "f"


def test_stokes_i_validation():
    with pytest.raises(ValueError):
        stokes_i_image(np.zeros((2, 8, 8)))


def test_find_peak():
    img = np.zeros((16, 16))
    img[3, 12] = -5.0  # absolute peak, negative
    img[8, 8] = 4.0
    row, col, val = find_peak(img)
    assert (row, col) == (3, 12)
    assert val == -5.0


def test_stokes_images_recover_polarized_source(small_obs, small_baselines,
                                                small_gridspec, small_idg):
    """A linearly polarised source's I, Q, U are all recovered at its pixel."""
    from repro.imaging.image import stokes_images
    from repro.sky.model import SkyModel, brightness_from_stokes
    from repro.sky.simulate import predict_visibilities

    gsp = small_gridspec
    dl = gsp.pixel_scale
    l0 = round(0.1 * gsp.image_size / dl) * dl
    m0 = round(0.05 * gsp.image_size / dl) * dl
    i_true, q_true, u_true, v_true = 4.0, 1.0, -0.6, 0.2
    sky = SkyModel(
        l=np.array([l0]), m=np.array([m0]),
        brightness=brightness_from_stokes(i_true, q_true, u_true, v_true)[None],
    )
    vis = predict_visibilities(small_obs.uvw_m, small_obs.frequencies_hz, sky,
                               baselines=small_baselines)
    plan = small_idg.make_plan(small_obs.uvw_m, small_obs.frequencies_hz,
                               small_baselines)
    grid = small_idg.grid(plan, small_obs.uvw_m, vis)
    image4 = dirty_image_from_grid(
        grid, gsp, weight_sum=plan.statistics.n_visibilities_gridded
    )
    stokes = stokes_images(image4)
    gsize = gsp.grid_size
    row, col = round(m0 / dl) + gsize // 2, round(l0 / dl) + gsize // 2
    assert stokes["I"][row, col] == pytest.approx(i_true, rel=0.02)
    assert stokes["Q"][row, col] == pytest.approx(q_true, rel=0.05)
    assert stokes["U"][row, col] == pytest.approx(u_true, rel=0.05)
    assert stokes["V"][row, col] == pytest.approx(v_true, abs=0.05)


def test_stokes_images_validation():
    from repro.imaging.image import stokes_images

    with pytest.raises(ValueError):
        stokes_images(np.zeros((2, 8, 8)))


def test_stokes_i_consistent_with_full_stokes():
    from repro.imaging.image import stokes_images

    rng = np.random.default_rng(0)
    img = rng.standard_normal((4, 8, 8)) + 1j * rng.standard_normal((4, 8, 8))
    np.testing.assert_allclose(
        stokes_images(img)["I"], 2.0 * stokes_i_image(img), atol=1e-12
    )
