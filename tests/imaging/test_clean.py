"""Unit tests for Hogbom CLEAN."""

import numpy as np
import pytest

from repro.imaging.clean import hogbom_clean


def _gaussian_psf(g=64, sigma=2.0):
    y, x = np.mgrid[0:g, 0:g]
    c = g // 2
    psf = np.exp(-((x - c) ** 2 + (y - c) ** 2) / (2 * sigma**2))
    # add a sidelobe ring to make deconvolution non-trivial
    r = np.hypot(x - c, y - c)
    psf += 0.1 * np.exp(-((r - 8.0) ** 2) / 4.0)
    return psf / psf[c, c]


@pytest.fixture(scope="module")
def psf():
    return _gaussian_psf()


def _dirty_from_components(psf, components):
    g = psf.shape[0]
    c = g // 2
    dirty = np.zeros_like(psf)
    for row, col, flux in components:
        shifted = np.roll(np.roll(psf, row - c, axis=0), col - c, axis=1)
        dirty += flux * shifted
    return dirty


def test_single_source_recovered(psf):
    dirty = _dirty_from_components(psf, [(40, 22, 5.0)])
    res = hogbom_clean(dirty, psf, gain=0.2, threshold=0.05, max_iterations=500)
    assert res.converged
    peak = np.unravel_index(np.argmax(res.model_image), res.model_image.shape)
    assert peak == (40, 22)
    assert res.component_flux() == pytest.approx(5.0, rel=0.05)
    assert np.abs(res.residual).max() <= 0.05 + 1e-9


def test_two_sources_fluxes(psf):
    dirty = _dirty_from_components(psf, [(20, 20, 4.0), (44, 40, 2.0)])
    res = hogbom_clean(dirty, psf, gain=0.2, threshold=0.05, max_iterations=2000)
    # flux in a small box around each source
    def box_flux(img, r, c, half=3):
        return img[r - half : r + half + 1, c - half : c + half + 1].sum()

    assert box_flux(res.model_image, 20, 20) == pytest.approx(4.0, rel=0.1)
    assert box_flux(res.model_image, 44, 40) == pytest.approx(2.0, rel=0.1)


def test_negative_source_cleaned(psf):
    dirty = _dirty_from_components(psf, [(30, 30, -3.0)])
    res = hogbom_clean(dirty, psf, gain=0.2, threshold=0.05, max_iterations=500)
    assert res.component_flux() == pytest.approx(-3.0, rel=0.05)


def test_window_restricts_components(psf):
    dirty = _dirty_from_components(psf, [(10, 10, 5.0), (50, 50, 4.0)])
    window = np.zeros_like(dirty, dtype=bool)
    window[40:60, 40:60] = True
    res = hogbom_clean(dirty, psf, gain=0.2, threshold=0.1, max_iterations=500, window=window)
    rows = res.components[:, 0]
    cols = res.components[:, 1]
    assert np.all((rows >= 40) & (rows < 60) & (cols >= 40) & (cols < 60))


def test_zero_image_converges_immediately(psf):
    res = hogbom_clean(np.zeros_like(psf), psf, threshold=0.01)
    assert res.converged
    assert res.n_iterations == 0
    assert len(res.components) == 0


def test_iteration_cap_reported(psf):
    dirty = _dirty_from_components(psf, [(32, 32, 10.0)])
    res = hogbom_clean(dirty, psf, gain=0.05, threshold=1e-6, max_iterations=10)
    assert res.n_iterations == 10
    assert not res.converged


def test_model_plus_residual_consistency(psf):
    """dirty == model (*) psf + residual, by construction of the subtraction."""
    dirty = _dirty_from_components(psf, [(25, 35, 3.0)])
    res = hogbom_clean(dirty, psf, gain=0.3, threshold=0.02, max_iterations=1000)
    reconstructed = _dirty_from_components(
        psf, [(int(r), int(c), f) for r, c, f in res.components]
    )
    np.testing.assert_allclose(reconstructed + res.residual, dirty, atol=1e-9)


def test_validation(psf):
    dirty = np.zeros_like(psf)
    with pytest.raises(ValueError):
        hogbom_clean(dirty[:32], psf)
    with pytest.raises(ValueError):
        hogbom_clean(dirty, psf[:32, :32])
    with pytest.raises(ValueError):
        hogbom_clean(dirty, psf, gain=0.0)
    with pytest.raises(ValueError):
        hogbom_clean(dirty, psf * 0.5)  # peak not 1
