"""Facet geometry: tiling, phase rotation and the uvw shift."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gridspec import GridSpec
from repro.imaging.facets import (
    Facet,
    embed_tile,
    extract_tile,
    facet_rotation_phasor,
    facet_shifted_uvw,
    plan_facets,
)
from repro.kernels.wkernel import n_term


@pytest.fixture(scope="module")
def master():
    return GridSpec(grid_size=128, image_size=0.1)


def test_plan_facets_tiles_cover_master(master):
    scheme = plan_facets(master, 2)
    assert len(scheme.facets) == 4
    assert scheme.tile_size == 64
    covered = np.zeros((128, 128), dtype=int)
    for facet in scheme.facets:
        covered[
            facet.row0 : facet.row0 + scheme.tile_size,
            facet.col0 : facet.col0 + scheme.tile_size,
        ] += 1
    assert (covered == 1).all()


def test_plan_facets_centres_on_pixel_grid(master):
    scheme = plan_facets(master, 2)
    dl = master.pixel_scale
    for facet in scheme.facets:
        # centres are exact multiples of the pixel scale, offset from centre
        assert abs(facet.l0 / dl - round(facet.l0 / dl)) < 1e-9
        assert abs(facet.m0 / dl - round(facet.m0 / dl)) < 1e-9
    # facets are distinct directions
    centres = {(f.l0, f.m0) for f in scheme.facets}
    assert len(centres) == 4


def test_plan_facets_validates(master):
    with pytest.raises(ValueError):
        plan_facets(master, 0)
    with pytest.raises(ValueError):
        plan_facets(master, 3)  # 128 not divisible by 3
    with pytest.raises(ValueError):
        plan_facets(master, 2, padding=0.5)


def test_facet_grid_shares_pixel_scale(master):
    scheme = plan_facets(master, 2, padding=1.5)
    assert scheme.gridspec.pixel_scale == pytest.approx(master.pixel_scale)
    assert scheme.gridspec.grid_size >= scheme.tile_size


def test_extract_embed_round_trip(master):
    scheme = plan_facets(master, 2)
    rng = np.random.default_rng(5)
    model = rng.standard_normal((128, 128))
    for facet in scheme.facets:
        lifted = embed_tile(model, scheme, facet)
        assert lifted.shape == (
            scheme.gridspec.grid_size,
            scheme.gridspec.grid_size,
        )
        back = extract_tile(lifted, scheme, facet)
        t = scheme.tile_size
        np.testing.assert_array_equal(
            back,
            model[facet.row0 : facet.row0 + t, facet.col0 : facet.col0 + t],
        )


def test_rotation_phasor_matches_package_convention():
    """The phasor is the exact conjugate of the measurement-equation phase
    at the facet centre: rotating a point source at (l0, m0) makes its
    visibilities flat (the source lands at the rotated phase centre)."""
    from repro.sky.model import SkyModel
    from repro.sky.simulate import predict_visibilities
    from repro.telescope.observation import ska1_low_observation

    obs = ska1_low_observation(
        n_stations=5, n_times=4, n_channels=2, integration_time_s=120.0,
        max_radius_m=1500.0, seed=2,
    )
    baselines = obs.array.baselines()
    l0, m0 = 0.02, -0.015
    vis = predict_visibilities(
        obs.uvw_m, obs.frequencies_hz, SkyModel.single(l0, m0, flux=1.0),
        baselines=baselines,
    )
    phasor = facet_rotation_phasor(
        obs.uvw_m, obs.frequencies_hz, l0, m0, sign=+1.0
    )
    rotated = vis[..., 0, 0] * phasor
    # flat visibilities: every sample equals the source flux
    np.testing.assert_allclose(rotated, 1.0, atol=1e-6)


def test_rotation_phasor_signs_are_inverse():
    uvw = np.random.default_rng(0).standard_normal((3, 4, 3)) * 100.0
    freqs = np.array([150e6, 160e6])
    fwd = facet_rotation_phasor(uvw, freqs, 0.01, 0.02, sign=+1.0)
    back = facet_rotation_phasor(uvw, freqs, 0.01, 0.02, sign=-1.0)
    np.testing.assert_allclose(fwd * back, 1.0, atol=1e-12)


def test_shifted_uvw_identity_at_field_centre():
    uvw = np.random.default_rng(1).standard_normal((3, 4, 3))
    centre = Facet(index=(0, 0), l0=0.0, m0=0.0, row0=0, col0=0)
    assert facet_shifted_uvw(uvw, centre) is uvw


def test_shifted_uvw_applies_tangent_slope():
    uvw = np.zeros((1, 1, 3))
    uvw[0, 0] = (10.0, 20.0, 40.0)
    l0, m0 = 0.03, -0.04
    facet = Facet(index=(0, 0), l0=l0, m0=m0, row0=0, col0=0)
    out = facet_shifted_uvw(uvw, facet)
    s0 = np.sqrt(1.0 - l0 * l0 - m0 * m0)
    assert out[0, 0, 0] == pytest.approx(10.0 + 40.0 * l0 / s0)
    assert out[0, 0, 1] == pytest.approx(20.0 + 40.0 * m0 / s0)
    assert out[0, 0, 2] == 40.0
    # input untouched
    assert uvw[0, 0, 0] == 10.0
    # slope is d n_term / dl at the facet centre
    eps = 1e-7
    slope = (n_term(l0 + eps, m0) - n_term(l0 - eps, m0)) / (2 * eps)
    assert l0 / s0 == pytest.approx(float(slope), rel=1e-5)
