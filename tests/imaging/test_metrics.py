"""Unit tests for image-quality metrics."""

import numpy as np
import pytest

from repro.imaging.metrics import (
    BeamFit,
    dynamic_range,
    fit_beam,
    image_rms,
    model_fidelity,
)


def _gaussian_psf(g=128, sigma_x=3.0, sigma_y=3.0, angle=0.0):
    y, x = np.mgrid[0:g, 0:g].astype(float)
    x -= g // 2
    y -= g // 2
    ca, sa = np.cos(angle), np.sin(angle)
    xr = ca * x + sa * y
    yr = -sa * x + ca * y
    return np.exp(-0.5 * ((xr / sigma_x) ** 2 + (yr / sigma_y) ** 2))


def test_image_rms_basic():
    img = np.full((8, 8), 2.0)
    assert image_rms(img) == pytest.approx(2.0)


def test_image_rms_exclusion():
    img = np.zeros((32, 32))
    img[10, 12] = 100.0
    assert image_rms(img) > 1.0
    assert image_rms(img, exclude_box=(10, 12, 2)) == 0.0


def test_dynamic_range_increases_with_cleaner_image():
    rng = np.random.default_rng(0)
    noisy = rng.standard_normal((64, 64)) * 0.1
    noisy[32, 32] = 10.0
    cleaner = rng.standard_normal((64, 64)) * 0.01
    cleaner[32, 32] = 10.0
    assert dynamic_range(cleaner) > 5 * dynamic_range(noisy)


def test_dynamic_range_perfect_image():
    img = np.zeros((32, 32))
    img[16, 16] = 1.0
    assert dynamic_range(img) == float("inf")


def test_fit_beam_circular():
    sigma = 3.0
    fit = fit_beam(_gaussian_psf(sigma_x=sigma, sigma_y=sigma))
    expected_fwhm = sigma * 2 * np.sqrt(2 * np.log(2))
    assert fit.fwhm_major_px == pytest.approx(expected_fwhm, rel=0.15)
    assert fit.fwhm_minor_px == pytest.approx(expected_fwhm, rel=0.15)


def test_fit_beam_elliptical_axes_ordered():
    fit = fit_beam(_gaussian_psf(sigma_x=5.0, sigma_y=2.0))
    assert fit.fwhm_major_px > fit.fwhm_minor_px
    # major axis along x: position angle ~ 0 or pi
    assert min(abs(fit.position_angle_rad) % np.pi,
               np.pi - abs(fit.position_angle_rad) % np.pi) < 0.2
    ratio = fit.fwhm_major_px / fit.fwhm_minor_px
    assert ratio == pytest.approx(2.5, rel=0.2)


def test_fit_beam_area():
    fit = BeamFit(fwhm_major_px=4.0, fwhm_minor_px=2.0, position_angle_rad=0.0)
    assert fit.area_px == pytest.approx(np.pi * 8.0 / (4 * np.log(2)))


def test_fit_beam_requires_central_peak():
    psf = np.zeros((32, 32))
    psf[3, 3] = 1.0
    with pytest.raises(ValueError):
        fit_beam(psf)


def test_fit_beam_ignores_disconnected_sidelobes():
    psf = _gaussian_psf(sigma_x=2.0, sigma_y=2.0)
    psf[5:8, 5:8] = 0.9  # bright disconnected blob
    fit = fit_beam(psf)
    expected_fwhm = 2.0 * 2 * np.sqrt(2 * np.log(2))
    assert fit.fwhm_major_px == pytest.approx(expected_fwhm, rel=0.2)


def test_model_fidelity():
    truth = np.zeros((16, 16))
    truth[8, 8] = 2.0
    assert model_fidelity(truth, truth) == pytest.approx(1.0)
    assert model_fidelity(np.zeros_like(truth), truth) == pytest.approx(0.0)
    half = truth * 0.5
    assert model_fidelity(half, truth) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        model_fidelity(truth, np.zeros_like(truth))


def test_real_psf_beam_size(small_idg, small_obs, small_baselines):
    """The fitted beam of the real PSF is ~the diffraction limit:
    lambda / (max baseline) in pixels."""
    from repro.imaging.cycle import ImagingCycle

    cycle = ImagingCycle(small_idg, small_obs.uvw_m, small_obs.frequencies_hz,
                         small_baselines)
    psf = cycle.make_psf()
    fit = fit_beam(psf)
    gs = small_idg.gridspec
    resolution_px = (1.0 / small_obs.max_uv_wavelengths()) / gs.pixel_scale
    assert 0.5 * resolution_px < fit.fwhm_major_px < 4 * resolution_px
