"""Tests for multi-subband (spectral) imaging."""

import numpy as np
import pytest

from repro.core.pipeline import IDG, IDGConfig
from repro.imaging.image import find_peak
from repro.imaging.spectral import (
    SpectralImager,
    SubbandImage,
    fit_spectral_index,
    make_subbands,
)
from repro.sky.model import SkyModel
from repro.sky.simulate import predict_visibilities
from repro.telescope.observation import ska1_low_observation


@pytest.fixture(scope="module")
def spectral_setup():
    base = ska1_low_observation(
        n_stations=12, n_times=32, n_channels=4,
        integration_time_s=240.0, max_radius_m=2_000.0,
        start_frequency_hz=120e6, seed=6,
    )
    subbands = make_subbands(base, n_subbands=3, subband_width_hz=30e6)
    # grid sized to the HIGHEST subband (largest uv extent)
    gridspec = subbands[-1].fitting_gridspec(256)
    idg = IDG(gridspec, IDGConfig(subgrid_size=24, kernel_support=8, time_max=8))
    dl = gridspec.pixel_scale
    l0 = round(0.12 * gridspec.image_size / dl) * dl
    m0 = round(0.08 * gridspec.image_size / dl) * dl
    return base, subbands, gridspec, idg, (l0, m0)


def test_make_subbands_contiguous(spectral_setup):
    base, subbands, *_ = spectral_setup
    assert len(subbands) == 3
    for sb in subbands:
        assert sb.n_channels == base.n_channels
        assert sb.array is base.array
    # contiguous coverage: each subband starts 30 MHz after the previous
    starts = [sb.frequencies_hz[0] for sb in subbands]
    np.testing.assert_allclose(np.diff(starts), 30e6)


def test_make_subbands_validation(spectral_setup):
    base, *_ = spectral_setup
    with pytest.raises(ValueError):
        make_subbands(base, 0)


def _flat_spectrum_images(spectral_setup, alpha=0.0, flux=2.0):
    base, subbands, gridspec, idg, (l0, m0) = spectral_setup
    imager = SpectralImager(idg)
    nu0 = subbands[0].frequencies_hz.mean()
    images = []
    for sb in subbands:
        scale = (sb.frequencies_hz.mean() / nu0) ** alpha
        sky = SkyModel.single(l0, m0, flux=flux * scale)
        vis = predict_visibilities(
            sb.uvw_m, sb.frequencies_hz, sky, baselines=sb.array.baselines()
        )
        images.append(imager.image_subband(sb, vis))
    return images


def test_subband_images_recover_source(spectral_setup):
    base, subbands, gridspec, idg, (l0, m0) = spectral_setup
    images = _flat_spectrum_images(spectral_setup)
    g, dl = gridspec.grid_size, gridspec.pixel_scale
    expected = (round(m0 / dl) + g // 2, round(l0 / dl) + g // 2)
    for sub in images:
        row, col, value = find_peak(sub.image)
        assert (row, col) == expected
        assert value == pytest.approx(2.0, rel=0.02)


def test_mfs_combines_with_weights(spectral_setup):
    _, _, gridspec, idg, (l0, m0) = spectral_setup
    images = _flat_spectrum_images(spectral_setup)
    imager = SpectralImager(idg)
    mfs = imager.mfs_image(images)
    g, dl = gridspec.grid_size, gridspec.pixel_scale
    assert mfs[round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] == pytest.approx(
        2.0, rel=0.02
    )
    with pytest.raises(ValueError):
        imager.mfs_image([])


def test_spectral_index_recovered(spectral_setup):
    _, _, gridspec, idg, (l0, m0) = spectral_setup
    alpha_true = -0.8  # typical synchrotron slope
    images = _flat_spectrum_images(spectral_setup, alpha=alpha_true)
    alpha_map = fit_spectral_index(images, threshold=0.5)
    g, dl = gridspec.grid_size, gridspec.pixel_scale
    alpha_at_source = alpha_map[round(m0 / dl) + g // 2, round(l0 / dl) + g // 2]
    assert alpha_at_source == pytest.approx(alpha_true, abs=0.1)
    # pixels below threshold are NaN
    assert np.isnan(alpha_map[5, 5])


def test_spectral_index_validation(spectral_setup):
    images = _flat_spectrum_images(spectral_setup)
    with pytest.raises(ValueError):
        fit_spectral_index(images[:1], threshold=0.1)


def test_ftprocessor_kind_matches_direct_path(spectral_setup):
    """kind="2d" routes through the FTProcessor pipeline but computes the
    same image as the direct gridding path."""
    base, subbands, gridspec, idg, (l0, m0) = spectral_setup
    sb = subbands[0]
    sky = SkyModel.single(l0, m0, flux=2.0)
    vis = predict_visibilities(
        sb.uvw_m, sb.frequencies_hz, sky, baselines=sb.array.baselines()
    )
    direct = SpectralImager(idg).image_subband(sb, vis)
    piped = SpectralImager(idg, kind="2d").image_subband(sb, vis)
    np.testing.assert_allclose(piped.image, direct.image, atol=1e-6)
    assert piped.weight == pytest.approx(direct.weight)
    assert piped.frequency_hz == direct.frequency_hz


def test_wstack_kind_recovers_source(spectral_setup):
    base, subbands, gridspec, idg, (l0, m0) = spectral_setup
    sb = subbands[0]
    sky = SkyModel.single(l0, m0, flux=2.0)
    vis = predict_visibilities(
        sb.uvw_m, sb.frequencies_hz, sky, baselines=sb.array.baselines()
    )
    image = SpectralImager(idg, kind="wstack", n_w_planes=4).image_subband(
        sb, vis
    ).image
    _, _, peak_value = find_peak(image)
    assert peak_value == pytest.approx(2.0, rel=0.05)


def test_uniform_weights_cancel_in_both_paths(spectral_setup):
    base, subbands, gridspec, idg, (l0, m0) = spectral_setup
    sb = subbands[0]
    sky = SkyModel.single(l0, m0, flux=2.0)
    vis = predict_visibilities(
        sb.uvw_m, sb.frequencies_hz, sky, baselines=sb.array.baselines()
    )
    weights = np.full(vis.shape[:3], 3.0)
    for imager in (SpectralImager(idg), SpectralImager(idg, kind="2d")):
        plain = imager.image_subband(sb, vis)
        weighted = imager.image_subband(sb, vis, weights=weights)
        # complex64 rounding: the weights scale the visibilities before
        # gridding, so cancellation is exact only to float32 precision
        np.testing.assert_allclose(weighted.image, plain.image, atol=1e-3)
        assert weighted.weight == pytest.approx(3.0 * plain.weight)
