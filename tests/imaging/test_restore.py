"""Tests for CLEAN image restoration."""

import numpy as np
import pytest

from repro.imaging.metrics import BeamFit
from repro.imaging.restore import gaussian_beam_kernel, restore_image


def _beam(fwhm=4.0):
    return BeamFit(fwhm_major_px=fwhm, fwhm_minor_px=fwhm, position_angle_rad=0.0)


def test_kernel_unit_peak_and_symmetry():
    k = gaussian_beam_kernel(_beam())
    c = k.shape[0] // 2
    assert k[c, c] == pytest.approx(1.0)
    np.testing.assert_allclose(k, k[::-1, ::-1])
    np.testing.assert_allclose(k, k.T)


def test_kernel_fwhm():
    k = gaussian_beam_kernel(_beam(fwhm=6.0), size=31)
    c = 15
    profile = k[c]
    # half power at +- fwhm/2 = 3 px
    assert profile[c + 3] == pytest.approx(0.5, abs=0.02)


def test_kernel_elliptical_orientation():
    beam = BeamFit(fwhm_major_px=8.0, fwhm_minor_px=3.0,
                   position_angle_rad=0.0)
    k = gaussian_beam_kernel(beam, size=33)
    c = 16
    # wider along x (position angle 0 = major axis along +x)
    assert k[c, c + 3] > k[c + 3, c]


def test_kernel_odd_size_required():
    with pytest.raises(ValueError):
        gaussian_beam_kernel(_beam(), size=8)


def test_restore_single_component():
    g = 64
    model = np.zeros((g, g))
    model[40, 20] = 5.0
    residual = np.zeros((g, g))
    restored, beam = restore_image(model, residual, beam=_beam(fwhm=4.0))
    # peak flux preserved (unit-peak kernel)
    assert restored[40, 20] == pytest.approx(5.0, rel=1e-6)
    # spread over the beam: neighbours pick up flux
    assert restored[40, 22] > 1.0
    # total flux scales by the beam area
    assert restored.sum() == pytest.approx(5.0 * beam.area_px, rel=0.01)


def test_restore_adds_residual():
    g = 32
    model = np.zeros((g, g))
    residual = np.full((g, g), 0.1)
    restored, _ = restore_image(model, residual, beam=_beam())
    np.testing.assert_allclose(restored, 0.1)


def test_restore_fits_beam_from_psf():
    g = 64
    y, x = np.mgrid[0:g, 0:g]
    psf = np.exp(-((x - 32) ** 2 + (y - 32) ** 2) / (2 * 2.0**2))
    model = np.zeros((g, g))
    model[32, 32] = 1.0
    restored, beam = restore_image(model, np.zeros((g, g)), psf=psf)
    expected_fwhm = 2.0 * 2 * np.sqrt(2 * np.log(2))
    assert beam.fwhm_major_px == pytest.approx(expected_fwhm, rel=0.15)
    assert restored[32, 32] == pytest.approx(1.0, rel=1e-6)


def test_restore_validation():
    with pytest.raises(ValueError):
        restore_image(np.zeros((8, 8)), np.zeros((4, 4)), beam=_beam())
    with pytest.raises(ValueError):
        restore_image(np.zeros((8, 8)), np.zeros((8, 8)))


def test_end_to_end_restored_flux(small_idg, small_obs, small_baselines,
                                  single_source_vis, snapped_source,
                                  small_gridspec):
    """CLEAN then restore: the restored image reads the source flux at its
    pixel (Jy/beam with a unit-peak clean beam)."""
    from repro.imaging.cycle import ImagingCycle

    cycle = ImagingCycle(small_idg, small_obs.uvw_m, small_obs.frequencies_hz,
                         small_baselines)
    result = cycle.run(single_source_vis, n_major=4, minor_iterations=200,
                       threshold_factor=1.5)
    restored, beam = restore_image(result.model_image, result.residual_image,
                                   psf=result.psf)
    l0, m0, flux = snapped_source
    g, dl = small_gridspec.grid_size, small_gridspec.pixel_scale
    row, col = round(m0 / dl) + g // 2, round(l0 / dl) + g // 2
    # the restored peak reads ~the flux (model is compact vs the beam)
    assert restored[row, col] == pytest.approx(flux, rel=0.1)


def test_restore_broad_beam_on_small_grid():
    """Regression: a fitted beam kernel larger than the image used to slice
    ``padded`` with negative bounds, wrapping/corrupting the output.  The
    kernel must be cropped to the grid instead."""
    g = 16
    model = np.zeros((g, g))
    model[g // 2, g // 2] = 5.0
    beam = BeamFit(fwhm_major_px=20.0, fwhm_minor_px=20.0,
                   position_angle_rad=0.0)  # ~51 px kernel >> 16 px grid
    restored, _ = restore_image(model, np.zeros((g, g)), beam=beam)
    # unit-peak kernel: the component's pixel still reads its flux
    assert restored[g // 2, g // 2] == pytest.approx(5.0, rel=1e-6)
    # the restored beam is a single central blob — the peak sits on the
    # component and the corners are strictly dimmer (no wrapped kernel)
    r, c = np.unravel_index(np.argmax(restored), restored.shape)
    assert (r, c) == (g // 2, g // 2)
    assert restored[0, 0] < restored[g // 2, g // 2]
    # a broad positive Gaussian cannot produce negative pixels (FFT roundoff
    # aside) — wrapped kernel corners used to inject O(1) negative ghosts
    assert restored.min() >= -1e-9


def test_restore_offcentre_component_with_broad_beam():
    """The cropped-kernel path must stay a *centred* convolution: an
    off-centre component reads its flux at its own pixel."""
    g = 16
    model = np.zeros((g, g))
    model[4, 11] = 2.0
    beam = BeamFit(fwhm_major_px=18.0, fwhm_minor_px=18.0,
                   position_angle_rad=0.0)
    restored, _ = restore_image(model, np.zeros((g, g)), beam=beam)
    assert restored[4, 11] == pytest.approx(2.0, rel=1e-6)
