"""Integration tests for the imaging major cycle (paper Fig 2)."""

import numpy as np
import pytest

from repro.imaging.cycle import ImagingCycle
from repro.imaging.image import find_peak
from repro.sky.model import SkyModel
from repro.sky.simulate import predict_visibilities


@pytest.fixture(scope="module")
def cycle(small_idg, small_obs, small_baselines):
    return ImagingCycle(
        small_idg, small_obs.uvw_m, small_obs.frequencies_hz, small_baselines
    )


def test_psf_properties(cycle, small_gridspec):
    psf = cycle.make_psf()
    g = small_gridspec.grid_size
    assert psf.shape == (g, g)
    assert psf[g // 2, g // 2] == pytest.approx(1.0)
    assert np.abs(psf).max() == pytest.approx(1.0)


def test_dirty_image_peak(cycle, single_source_vis, snapped_source, small_gridspec):
    l0, m0, flux = snapped_source
    dirty = cycle.make_dirty_image(single_source_vis)
    row, col, value = find_peak(dirty)
    g, dl = small_gridspec.grid_size, small_gridspec.pixel_scale
    assert (row, col) == (round(m0 / dl) + g // 2, round(l0 / dl) + g // 2)
    assert value == pytest.approx(flux, rel=0.01)


def test_predict_of_point_model_matches_oracle(cycle, snapped_source, small_obs,
                                               small_baselines, small_gridspec):
    l0, m0, flux = snapped_source
    g, dl = small_gridspec.grid_size, small_gridspec.pixel_scale
    model = np.zeros((g, g))
    model[round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = flux
    predicted = cycle.predict(model)
    oracle = predict_visibilities(
        small_obs.uvw_m, small_obs.frequencies_hz,
        SkyModel.single(l0, m0, flux=flux), baselines=small_baselines,
    )
    mask = ~cycle.plan.flagged
    rms = np.sqrt((np.abs(predicted[mask] - oracle[mask]) ** 2).mean())
    assert rms / np.sqrt((np.abs(oracle[mask]) ** 2).mean()) < 1e-3


def test_major_cycle_reduces_residual(cycle, single_source_vis):
    result = cycle.run(single_source_vis, n_major=3, minor_iterations=100)
    rms = result.residual_rms_history
    assert len(rms) >= 2
    assert rms[-1] < rms[0]
    assert result.n_major_cycles <= 3


def test_major_cycle_locates_source(cycle, single_source_vis, snapped_source, small_gridspec):
    l0, m0, _ = snapped_source
    result = cycle.run(single_source_vis, n_major=3, minor_iterations=100)
    row, col, _ = find_peak(result.model_image)
    g, dl = small_gridspec.grid_size, small_gridspec.pixel_scale
    assert abs(row - (round(m0 / dl) + g // 2)) <= 1
    assert abs(col - (round(l0 / dl) + g // 2)) <= 1


def test_major_cycle_recovers_most_flux(cycle, single_source_vis, snapped_source):
    _, _, flux = snapped_source
    result = cycle.run(
        single_source_vis, n_major=6, minor_iterations=300, threshold_factor=1.5
    )
    recovered = result.total_clean_flux()
    assert 0.7 * flux <= recovered <= 1.3 * flux


def test_noise_only_input_cleans_nothing_much(cycle, single_source_vis):
    rng = np.random.default_rng(0)
    noise = (
        0.001 * (rng.standard_normal(single_source_vis.shape)
                 + 1j * rng.standard_normal(single_source_vis.shape))
    ).astype(np.complex64)
    result = cycle.run(noise, n_major=2, minor_iterations=50)
    assert abs(result.total_clean_flux()) < 0.05


def test_restored_product(cycle, single_source_vis, snapped_source, small_gridspec):
    """MajorCycleResult.restored: peak reads the flux, beam is sane."""
    result = cycle.run(single_source_vis, n_major=3, minor_iterations=150,
                       threshold_factor=1.5)
    restored, beam = result.restored()
    l0, m0, flux = snapped_source
    g, dl = small_gridspec.grid_size, small_gridspec.pixel_scale
    row, col = round(m0 / dl) + g // 2, round(l0 / dl) + g // 2
    assert restored[row, col] == pytest.approx(flux, rel=0.1)
    assert beam.fwhm_major_px >= beam.fwhm_minor_px > 0
