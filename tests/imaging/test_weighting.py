"""Unit tests for visibility weighting."""

import numpy as np
import pytest

from repro.imaging.weighting import apply_weights, natural_weights, uniform_weights


def test_natural_weights_are_unit(small_obs):
    w = natural_weights(small_obs.uvw_m, small_obs.n_channels)
    assert w.shape == (small_obs.n_baselines, small_obs.n_times, small_obs.n_channels)
    assert np.all(w == 1.0)


def test_uniform_weights_shape_and_range(small_obs, small_gridspec):
    w = uniform_weights(small_obs.uvw_m, small_obs.frequencies_hz, small_gridspec)
    assert w.shape == (small_obs.n_baselines, small_obs.n_times, small_obs.n_channels)
    assert np.all(w >= 0)
    assert np.all(w <= 1.0)


def test_uniform_weights_cell_sums_are_one(small_obs, small_gridspec):
    """Summed over the visibilities of one occupied cell, uniform weights
    give exactly 1 — the density-flattening property."""
    from repro.constants import SPEED_OF_LIGHT

    gs = small_gridspec
    w = uniform_weights(small_obs.uvw_m, small_obs.frequencies_hz, gs)
    scale = small_obs.frequencies_hz / SPEED_OF_LIGHT
    g = gs.grid_size
    iu = np.rint(small_obs.uvw_m[:, :, 0, None] * scale * gs.image_size + g // 2).astype(int)
    iv = np.rint(small_obs.uvw_m[:, :, 1, None] * scale * gs.image_size + g // 2).astype(int)
    # pick the cell of the very first visibility and sum its weights
    cell = (iv.flat[0], iu.flat[0])
    mask = (iv == cell[0]) & (iu == cell[1])
    assert w[mask].sum() == pytest.approx(1.0)


def test_uniform_weights_isolated_sample_gets_unit_weight():
    uvw = np.zeros((1, 1, 3))
    uvw[0, 0] = [1000.0, 2000.0, 0.0]
    from repro.gridspec import GridSpec

    gs = GridSpec(grid_size=64, image_size=0.01)
    w = uniform_weights(uvw, np.array([150e6]), gs)
    assert w[0, 0, 0] == pytest.approx(1.0)


def test_uniform_weights_offgrid_zero():
    uvw = np.zeros((1, 1, 3))
    uvw[0, 0] = [1e9, 0.0, 0.0]  # far outside any grid
    from repro.gridspec import GridSpec

    gs = GridSpec(grid_size=64, image_size=0.01)
    w = uniform_weights(uvw, np.array([150e6]), gs)
    assert w[0, 0, 0] == 0.0


def test_apply_weights_scales_visibilities():
    vis = np.ones((2, 3, 4, 2, 2), dtype=np.complex64)
    w = np.full((2, 3, 4), 0.5)
    out = apply_weights(vis, w)
    np.testing.assert_allclose(out, 0.5)
    assert out.dtype == np.complex64


def test_apply_weights_shape_validation():
    vis = np.ones((2, 3, 4, 2, 2), dtype=np.complex64)
    with pytest.raises(ValueError):
        apply_weights(vis, np.ones((2, 3)))


def test_briggs_interpolates_natural_uniform(small_obs, small_gridspec):
    """Briggs robust=+2 ~ natural (flat weights); robust=-2 ~ uniform
    (density-inverse); intermediate values interpolate."""
    from repro.imaging.weighting import briggs_weights

    natural_like = briggs_weights(
        small_obs.uvw_m, small_obs.frequencies_hz, small_gridspec, robust=2.0
    )
    uniform_like = briggs_weights(
        small_obs.uvw_m, small_obs.frequencies_hz, small_gridspec, robust=-2.0
    )
    uni = uniform_weights(small_obs.uvw_m, small_obs.frequencies_hz, small_gridspec)

    # robust=+2: weights nearly equal everywhere (like natural)
    inside = natural_like > 0
    spread = natural_like[inside].std() / natural_like[inside].mean()
    assert spread < 0.1
    # robust=-2: correlates strongly with uniform weights
    x = uniform_like[inside]
    y = uni[inside]
    corr = np.corrcoef(x, y)[0, 1]
    assert corr > 0.95


def test_briggs_monotone_in_robust(small_obs, small_gridspec):
    """More negative robust pushes weights of dense cells further down."""
    from repro.constants import SPEED_OF_LIGHT
    from repro.imaging.weighting import briggs_weights

    w_pos = briggs_weights(small_obs.uvw_m, small_obs.frequencies_hz,
                           small_gridspec, robust=1.0)
    w_neg = briggs_weights(small_obs.uvw_m, small_obs.frequencies_hz,
                           small_gridspec, robust=-1.0)
    inside = w_pos > 0
    # normalised weight dispersion grows as robust decreases
    disp_pos = w_pos[inside].std() / w_pos[inside].mean()
    disp_neg = w_neg[inside].std() / w_neg[inside].mean()
    assert disp_neg > disp_pos


def test_briggs_offgrid_zero(small_gridspec):
    from repro.imaging.weighting import briggs_weights

    uvw = np.zeros((1, 2, 3))
    uvw[0, 0] = [1e9, 0.0, 0.0]  # far outside
    uvw[0, 1] = [10.0, 10.0, 0.0]
    w = briggs_weights(uvw, np.array([150e6]), small_gridspec, robust=0.0)
    assert w[0, 0, 0] == 0.0
    assert w[0, 1, 0] > 0.0


def test_uniform_weighting_lowers_psf_sidelobes(small_idg, small_obs,
                                                small_baselines, small_gridspec):
    """Integration: uniform weighting trades sensitivity for a cleaner PSF —
    peak sidelobes drop relative to natural weighting."""
    from repro.imaging.image import dirty_image_from_grid, stokes_i_image

    plan = small_idg.make_plan(small_obs.uvw_m, small_obs.frequencies_hz,
                               small_baselines)
    shape = plan.flagged.shape + (2, 2)
    unit = np.zeros(shape, dtype=np.complex64)
    unit[..., 0, 0] = 1.0
    unit[..., 1, 1] = 1.0

    def psf_with(weights, wsum):
        vis = apply_weights(unit, weights)
        grid = small_idg.grid(plan, small_obs.uvw_m, vis)
        img = stokes_i_image(dirty_image_from_grid(grid, small_gridspec,
                                                   weight_sum=wsum))
        return img / img[small_gridspec.grid_size // 2,
                         small_gridspec.grid_size // 2]

    nat = natural_weights(small_obs.uvw_m, small_obs.n_channels)
    uni = uniform_weights(small_obs.uvw_m, small_obs.frequencies_hz,
                          small_gridspec)
    psf_nat = psf_with(nat, nat.sum())
    psf_uni = psf_with(uni, uni.sum())

    g = small_gridspec.grid_size
    c = g // 2

    def peak_sidelobe(psf):
        masked = np.abs(psf).copy()
        masked[c - 4 : c + 5, c - 4 : c + 5] = 0  # mask the main lobe
        inner = masked[g // 8 : -g // 8, g // 8 : -g // 8]
        return inner.max()

    assert peak_sidelobe(psf_uni) < peak_sidelobe(psf_nat)


def test_briggs_empty_grid_raises_typed_error():
    """Regression: all samples off-grid used to give 0/0 -> NaN weights."""
    from repro.gridspec import GridSpec
    from repro.imaging.weighting import WeightingError, briggs_weights

    uvw = np.zeros((1, 1, 3))
    uvw[0, 0] = [1e9, 0.0, 0.0]  # far outside any grid
    gs = GridSpec(grid_size=64, image_size=0.01)
    with pytest.raises(WeightingError):
        briggs_weights(uvw, np.array([150e6]), gs, robust=0.0)
    # WeightingError is a ValueError, so generic handlers still catch it
    assert issubclass(WeightingError, ValueError)


def test_briggs_all_flagged_raises_typed_error():
    from repro.gridspec import GridSpec
    from repro.imaging.weighting import WeightingError, briggs_weights

    uvw = np.zeros((1, 1, 3))
    uvw[0, 0] = [1000.0, 2000.0, 0.0]
    gs = GridSpec(grid_size=64, image_size=0.01)
    flags = np.ones((1, 1, 1), dtype=bool)
    with pytest.raises(WeightingError):
        briggs_weights(uvw, np.array([150e6]), gs, flags=flags)


def test_uniform_weights_respect_flags():
    """A flagged visibility must not inflate its cell's count (regression:
    flags used to be ignored, halving the live sample's weight here)."""
    from repro.gridspec import GridSpec

    uvw = np.zeros((2, 1, 3))
    uvw[0, 0] = [1000.0, 2000.0, 0.0]
    uvw[1, 0] = [1000.0, 2000.0, 0.0]  # same cell
    gs = GridSpec(grid_size=64, image_size=0.01)
    flags = np.zeros((2, 1, 1), dtype=bool)
    flags[1] = True
    w = uniform_weights(uvw, np.array([150e6]), gs, flags=flags)
    assert w[0, 0, 0] == pytest.approx(1.0)  # alone in its cell once flagged
    assert w[1, 0, 0] == 0.0  # flagged sample gets no weight


def test_briggs_weights_respect_flags(small_obs, small_gridspec):
    """Flagging a block of samples must reproduce the weights computed on
    the reduced set (flags equivalent to removal, not zero-weighting)."""
    from repro.imaging.weighting import briggs_weights

    flags = np.zeros(
        (small_obs.n_baselines, small_obs.n_times, small_obs.n_channels),
        dtype=bool,
    )
    flags[:, : small_obs.n_times // 2] = True
    w_flagged = briggs_weights(
        small_obs.uvw_m, small_obs.frequencies_hz, small_gridspec, flags=flags
    )
    half = small_obs.n_times // 2
    w_reduced = briggs_weights(
        small_obs.uvw_m[:, half:], small_obs.frequencies_hz, small_gridspec
    )
    assert np.all(w_flagged[:, :half] == 0.0)
    np.testing.assert_allclose(w_flagged[:, half:], w_reduced)


def test_weighting_flags_shape_validation(small_obs, small_gridspec):
    from repro.imaging.weighting import briggs_weights

    bad = np.zeros((1, 2, 3), dtype=bool)
    with pytest.raises(ValueError):
        uniform_weights(small_obs.uvw_m, small_obs.frequencies_hz,
                        small_gridspec, flags=bad)
    with pytest.raises(ValueError):
        briggs_weights(small_obs.uvw_m, small_obs.frequencies_hz,
                       small_gridspec, flags=bad)
