"""FTProcessor variants: 2-D, w-stacked, faceted, and their predict duals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import IDG, IDGConfig
from repro.imaging.cycle import ImagingCycle
from repro.imaging.pipeline import (
    ImagingContext,
    invert_2d,
    invert_facets,
    invert_wstack,
    invert_wstack_facets,
    make_ftprocessor,
    plan_coverage,
    predict_2d,
    predict_facets,
    predict_wstack,
    predict_wstack_facets,
)
from repro.sky.model import SkyModel
from repro.sky.simulate import predict_visibilities
from repro.telescope.observation import ska1_low_observation

GRID = 128
KINDS = ("2d", "wstack", "facets", "wstack_facets")


@pytest.fixture(scope="module")
def setup():
    obs = ska1_low_observation(
        n_stations=8, n_times=16, n_channels=2, integration_time_s=120.0,
        max_radius_m=2000.0, seed=1,
    )
    gridspec = obs.fitting_gridspec(GRID, fill_factor=1.2)
    idg = IDG(gridspec, IDGConfig(subgrid_size=16, kernel_support=6, time_max=8))
    baselines = obs.array.baselines()
    dl = gridspec.pixel_scale
    # off-centre so the source sits in a non-central facet
    sky = SkyModel.single(20 * dl, -14 * dl, flux=5.0)
    vis = predict_visibilities(obs.uvw_m, obs.frequencies_hz, sky,
                               baselines=baselines)
    return obs, idg, baselines, sky, vis


def _context(setup, zero_w: bool = False) -> ImagingContext:
    obs, idg, baselines, _, _ = setup
    uvw = obs.uvw_m
    if zero_w:
        uvw = np.array(uvw, copy=True)
        uvw[:, :, 2] = 0.0
    return ImagingContext(
        idg=idg, uvw_m=uvw, frequencies_hz=obs.frequencies_hz,
        baselines=baselines,
    )


def _source_pixel(setup):
    _, idg, _, sky, _ = setup
    dl = idg.gridspec.pixel_scale
    row = int(round(sky.m[0] / dl)) + GRID // 2
    col = int(round(sky.l[0] / dl)) + GRID // 2
    return row, col


INVERTS = {
    "2d": invert_2d,
    "wstack": invert_wstack,
    "facets": invert_facets,
    "wstack_facets": invert_wstack_facets,
}
PREDICTS = {
    "2d": predict_2d,
    "wstack": predict_wstack,
    "facets": predict_facets,
    "wstack_facets": predict_wstack_facets,
}


@pytest.mark.parametrize("kind", KINDS)
def test_invert_recovers_source_flux(setup, kind):
    ctx = _context(setup)
    image = INVERTS[kind](ctx, setup[4]).stokes_i
    row, col = _source_pixel(setup)
    peak = image[row, col]
    assert peak == pytest.approx(5.0, rel=0.05)
    # the source pixel is the image maximum
    assert np.unravel_index(np.argmax(image), image.shape) == (row, col)


@pytest.mark.parametrize("kind", ("wstack", "facets", "wstack_facets"))
def test_invert_agrees_with_2d_at_zero_w(setup, kind):
    """All wide-field decompositions degenerate to plain IDG when w == 0.

    The w-stack screen is unity at w = 0, so that variant matches the master
    image everywhere.  Faceted dirty images wrap sidelobes that fall outside
    the (smaller) facet field — inherent to mosaicing dirty images — so the
    facet variants are held to tight agreement in the signal region around
    the source and loose agreement globally.
    """
    ctx = _context(setup, zero_w=True)
    reference = invert_2d(ctx, setup[4]).stokes_i
    image = INVERTS[kind](ctx, setup[4]).stokes_i
    peak = float(np.abs(reference).max())
    difference = np.abs(image - reference)
    if kind == "wstack":
        assert difference.max() < 0.02 * peak
    else:
        row, col = _source_pixel(setup)
        assert difference[row - 10 : row + 10, col - 10 : col + 10].max() < 0.005 * peak
        assert difference.max() < 0.25 * peak


@pytest.mark.parametrize("kind", ("wstack", "facets", "wstack_facets"))
def test_predict_agrees_with_2d_at_zero_w(setup, kind):
    ctx = _context(setup, zero_w=True)
    row, col = _source_pixel(setup)
    model = np.zeros((GRID, GRID))
    model[row, col] = 5.0
    processor = make_ftprocessor(ctx, kind="2d")
    covered = plan_coverage(processor.plan)
    reference = processor.predict(model)[..., 0, 0][covered]
    predicted = PREDICTS[kind](ctx, model)[..., 0, 0][covered]
    assert np.abs(predicted - reference).max() < 0.02 * np.abs(reference).max()


@pytest.mark.parametrize("kind", KINDS)
def test_predict_matches_direct_evaluation(setup, kind):
    """Degridding a point-source model reproduces Eq.-1 visibilities on the
    samples the plan covers."""
    ctx = _context(setup)
    row, col = _source_pixel(setup)
    model = np.zeros((GRID, GRID))
    model[row, col] = 5.0
    processor = make_ftprocessor(ctx, kind=kind)
    covered = plan_coverage(processor.plan)
    predicted = processor.predict(model)[..., 0, 0][covered]
    truth = setup[4][..., 0, 0][covered]
    err = np.abs(predicted - truth).max() / np.abs(truth).max()
    assert err < 0.02


def test_invert_matches_imaging_cycle_dirty_path(setup):
    """The 2-D processor is the same math as ImagingCycle's direct path."""
    obs, idg, baselines, _, vis = setup
    ctx = _context(setup)
    cycle = ImagingCycle(idg, obs.uvw_m, obs.frequencies_hz, baselines)
    direct = cycle.make_dirty_image(vis)
    result = invert_2d(ctx, vis)
    np.testing.assert_allclose(result.stokes_i, direct, atol=1e-6)
    assert result.weight_sum == pytest.approx(
        float(cycle.plan.statistics.n_visibilities_gridded)
    )


def test_imaging_cycle_delegates_to_processor(setup):
    obs, idg, baselines, _, vis = setup
    ctx = _context(setup)
    processor = make_ftprocessor(ctx, kind="2d")
    cycle = ImagingCycle(
        idg, obs.uvw_m, obs.frequencies_hz, baselines, processor=processor
    )
    np.testing.assert_array_equal(
        cycle.make_dirty_image(vis), processor.invert(vis).stokes_i
    )
    row, col = _source_pixel(setup)
    model = np.zeros((GRID, GRID))
    model[row, col] = 5.0
    np.testing.assert_array_equal(cycle.predict(model), processor.predict(model))


def test_uniform_weights_cancel_in_normalisation(setup):
    ctx = _context(setup)
    vis = setup[4]
    plain = invert_2d(ctx, vis)
    weights = np.full(vis.shape[:3], 2.0)
    weighted = invert_2d(ctx, vis, weights=weights)
    np.testing.assert_allclose(
        weighted.stokes_i, plain.stokes_i, atol=1e-6
    )
    assert weighted.weight_sum == pytest.approx(2.0 * plain.weight_sum)


def test_flags_exclude_samples(setup):
    ctx = _context(setup)
    vis = np.array(setup[4], copy=True)
    flags = np.zeros(vis.shape[:3], dtype=bool)
    flags[0] = True
    # corrupt the flagged block: it must not leak into the image
    vis[0] = 1e6
    image = invert_2d(ctx, vis, flags=flags).stokes_i
    row, col = _source_pixel(setup)
    assert image[row, col] == pytest.approx(5.0, rel=0.05)


def test_make_ftprocessor_rejects_unknown_kind(setup):
    ctx = _context(setup)
    with pytest.raises(ValueError, match="kind"):
        make_ftprocessor(ctx, kind="chirp-z")


def test_context_rejects_unknown_executor(setup):
    obs, idg, baselines, _, _ = setup
    with pytest.raises(ValueError, match="executor"):
        ImagingContext(
            idg=idg, uvw_m=obs.uvw_m, frequencies_hz=obs.frequencies_hz,
            baselines=baselines, executor="gpu",
        )
