"""ArtifactCache: byte-bounded LRU, exact accounting, single-flight."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.cache import ArtifactCache, all_cache_stats, default_nbytes


def test_get_or_create_and_hit_accounting():
    cache = ArtifactCache(max_bytes=1024, name="t.basic")
    calls = []
    value = cache.get_or_create("k", lambda: calls.append(1) or "v")
    assert value == "v"
    assert cache.get_or_create("k", lambda: calls.append(1) or "v2") == "v"
    assert cache.get("k") == "v"
    assert cache.get("absent", default="d") == "d"
    assert len(calls) == 1
    stats = cache.stats()
    # Every lookup incremented exactly one of hits/misses.
    assert (stats.hits, stats.misses) == (2, 2)
    assert stats.lookups == 4
    assert stats.hit_rate == 0.5
    assert stats.entries == len(cache) == 1
    assert "k" in cache and "absent" not in cache


def test_lru_eviction_by_bytes():
    cache = ArtifactCache(max_bytes=100, name="t.lru")
    cache.put("a", "A", nbytes=40)
    cache.put("b", "B", nbytes=40)
    assert cache.get("a") == "A"  # refresh a: b becomes LRU
    cache.put("c", "C", nbytes=40)
    assert cache.get("b") is None  # evicted
    assert cache.get("a") == "A" and cache.get("c") == "C"
    stats = cache.stats()
    assert stats.evictions == 1
    assert stats.current_bytes == 80 <= stats.max_bytes


def test_replacement_updates_bytes():
    cache = ArtifactCache(max_bytes=100, name="t.replace")
    cache.put("a", "A", nbytes=30)
    cache.put("a", "A2", nbytes=50)
    stats = cache.stats()
    assert stats.current_bytes == 50
    assert stats.entries == 1
    assert cache.get("a") == "A2"


def test_oversize_value_returned_but_not_stored():
    cache = ArtifactCache(max_bytes=10, name="t.oversize")
    value = cache.get_or_create("big", lambda: "x" * 100, nbytes=100)
    assert value == "x" * 100
    stats = cache.stats()
    assert stats.oversize_rejections == 1
    assert stats.entries == 0 and stats.current_bytes == 0
    # A later lookup is a fresh miss (the value was never cached).
    assert cache.get("big") is None


def test_clear_keeps_counters():
    cache = ArtifactCache(max_bytes=1024, name="t.clear")
    cache.put("a", np.zeros(8))
    freed = cache.clear()
    assert freed == 64
    stats = cache.stats()
    assert stats.entries == 0 and stats.current_bytes == 0
    assert stats.insertions == 1


def test_single_flight_runs_factory_once():
    cache = ArtifactCache(max_bytes=1 << 20, name="t.flight")
    n_threads = 8
    barrier = threading.Barrier(n_threads)
    calls = []
    call_lock = threading.Lock()

    def factory():
        with call_lock:
            calls.append(threading.current_thread().name)
        return np.arange(16)

    results = [None] * n_threads

    def worker(i):
        barrier.wait()
        results[i] = cache.get_or_create("k", factory)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(calls) == 1, f"factory ran {len(calls)} times"
    first = results[0]
    assert all(r is first for r in results), "followers must share the value"
    stats = cache.stats()
    assert stats.misses == 1 and stats.hits == n_threads - 1


def test_single_flight_leader_failure_lets_follower_retry():
    cache = ArtifactCache(max_bytes=1 << 20, name="t.flightfail")
    attempts = []
    attempt_lock = threading.Lock()

    def factory():
        with attempt_lock:
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("first leader dies")
        return "ok"

    outcomes = []
    outcome_lock = threading.Lock()
    barrier = threading.Barrier(4)

    def worker():
        barrier.wait()
        try:
            value = cache.get_or_create("k", factory)
        except RuntimeError:
            value = "raised"
        with outcome_lock:
            outcomes.append(value)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Exactly one caller saw the failure; everyone else got the value from
    # a retried factory (or the cache once it succeeded).
    assert outcomes.count("raised") == 1
    assert outcomes.count("ok") == 3
    assert cache.get("k") == "ok"


def test_default_nbytes():
    assert default_nbytes(np.zeros((4, 4))) == 128
    assert default_nbytes({"a": np.zeros(4), "b": np.zeros(4)}) == 64
    assert default_nbytes([np.zeros(2), np.zeros(2)]) == 32
    assert default_nbytes("x") > 0


def test_rejects_nonpositive_budget():
    with pytest.raises(ValueError):
        ArtifactCache(max_bytes=0)


def test_registry_snapshot_sorted():
    cache_b = ArtifactCache(max_bytes=64, name="t.zz-registry")
    cache_a = ArtifactCache(max_bytes=64, name="t.aa-registry")
    names = [s.name for s in all_cache_stats()]
    assert "t.aa-registry" in names and "t.zz-registry" in names
    assert names == sorted(names)
    # keep references alive until the assertion ran
    del cache_a, cache_b
