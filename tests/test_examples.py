"""Smoke tests: the shipped examples must run and self-verify.

Each example asserts its own quality gates internally (source positions,
flux errors, residual nulls); these tests run a fast subset end to end in a
subprocess so a broken public API or a regression in any example is caught
by ``pytest tests/``.  The slowest examples are exercised by their own
dedicated integration tests instead (imaging cycle, W-stacking, selfcal all
have equivalents under tests/).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, timeout: int = 420) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )


def test_examples_exist():
    expected = {
        "quickstart.py", "ska1_low_imaging.py", "aterm_correction.py",
        "compare_gridders.py", "performance_model.py",
        "widefield_wstacking.py", "selfcal.py", "spectral_mfs.py",
    }
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert expected <= present


def test_quickstart_runs():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "OK" in result.stdout


def test_performance_model_runs():
    result = _run("performance_model.py")
    assert result.returncode == 0, result.stderr
    assert "PASCAL" in result.stdout
    assert "GF/W" in result.stdout or "GFlops" in result.stdout or "GF" in result.stdout


@pytest.mark.slow
def test_selfcal_runs():
    result = _run("selfcal.py")
    assert result.returncode == 0, result.stderr
    assert "OK" in result.stdout
