"""Unit tests for the FMA/sincos mix throughput model (Fig 12)."""

import numpy as np
import pytest

from repro.perfmodel.architectures import ALL_ARCHITECTURES, FIJI, HASWELL, PASCAL
from repro.perfmodel.sincos import (
    mixed_throughput_ops,
    peak_fraction,
    sincos_bound_ops,
    sweep_rho,
)


def test_large_rho_approaches_peak():
    for arch in ALL_ARCHITECTURES:
        assert mixed_throughput_ops(arch, 1e6) == pytest.approx(arch.peak_ops, rel=1e-3)


def test_throughput_monotone_in_rho():
    for arch in ALL_ARCHITECTURES:
        rhos, ops = sweep_rho(arch)
        assert np.all(np.diff(ops) >= -1e-6)


def test_never_exceeds_peak():
    for arch in ALL_ARCHITECTURES:
        _, ops = sweep_rho(arch)
        assert np.all(ops <= arch.peak_ops + 1e-6)


def test_pascal_stays_high_at_small_rho():
    """Section VI-C-1: 'the performance of PASCAL stays high when rho
    decreases' — in contrast to FIJI and HASWELL."""
    assert peak_fraction(PASCAL, 4.0) > 0.5
    assert peak_fraction(FIJI, 4.0) < 0.4
    assert peak_fraction(HASWELL, 4.0) < 0.2


def test_pascal_hits_peak_at_rho17():
    """With SFUs, the kernels' rho = 17 mix is not sincos-limited at all."""
    assert sincos_bound_ops(PASCAL) == pytest.approx(PASCAL.peak_ops, rel=0.05)


def test_fiji_and_haswell_limited_at_rho17():
    """The dashed bounds of Fig 11 sit well below the peak."""
    assert sincos_bound_ops(FIJI) < 0.6 * FIJI.peak_ops
    assert sincos_bound_ops(HASWELL) < 0.3 * HASWELL.peak_ops


def test_ordering_of_degradation():
    """At every mix, PASCAL keeps the largest fraction of its peak and
    HASWELL the smallest (software sincos is the slowest)."""
    for rho in (0.0, 1.0, 8.0, 17.0, 32.0):
        assert (
            peak_fraction(PASCAL, rho)
            >= peak_fraction(FIJI, rho)
            >= peak_fraction(HASWELL, rho)
        )


def test_rho_zero_pure_sincos():
    # serial: 2 ops per sincos_slots instruction times
    expected = 2.0 / FIJI.sincos_slots * FIJI.fma_instruction_rate
    assert mixed_throughput_ops(FIJI, 0.0) == pytest.approx(expected)


def test_negative_rho_rejected():
    with pytest.raises(ValueError):
        mixed_throughput_ops(PASCAL, -1.0)


def test_sweep_default_range():
    rhos, ops = sweep_rho(PASCAL)
    assert rhos[0] == 0.0
    assert rhos[-1] == 128.0
    assert ops.shape == rhos.shape
