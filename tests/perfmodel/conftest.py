"""Perfmodel fixtures: a plan with paper-like subgrid occupancy.

The performance-model claims (>93% of runtime in the gridding kernels,
negligible A-term cost, rho = 17) assume the benchmark data set's occupancy
— C = 16 channels and long per-subgrid time runs.  The generic ``small_plan``
fixture is deliberately tiny (4 channels, time_max 16) and under-fills its
subgrids, so the perfmodel tests build a scaled version of the Section VI-A
set instead (building a plan needs uvw only, no visibilities, so this stays
cheap).
"""

import pytest

from repro.core.pipeline import IDG, IDGConfig
from repro.telescope.observation import ska1_low_observation


@pytest.fixture(scope="package")
def paper_like_plan():
    obs = ska1_low_observation(
        n_stations=20, n_times=256, n_channels=16, integration_time_s=4.0,
        max_radius_m=10_000.0, seed=0,
    )
    idg = IDG(
        obs.fitting_gridspec(2048),
        IDGConfig(subgrid_size=24, kernel_support=8, time_max=128),
    )
    return idg.make_plan(obs.uvw_m, obs.frequencies_hz, obs.array.baselines())
