"""Unit tests for the triple-buffering stream scheduler (Fig 7)."""

import pytest

from repro.perfmodel.streams import (
    schedule_buffers,
    serial_makespan,
    transfer_times,
)


def _uniform_jobs(n=9, h=1.0, c=2.0, d=1.0):
    return [(h, c, d)] * n


def test_causality_within_each_job():
    sched = schedule_buffers(_uniform_jobs(), n_buffers=3)
    for j in range(9):
        stages = {e.stage: e for e in sched.events if e.job == j}
        assert stages["htod"].end <= stages["compute"].start + 1e-12
        assert stages["compute"].end <= stages["dtoh"].start + 1e-12


def test_streams_never_overlap_themselves():
    sched = schedule_buffers(_uniform_jobs(), n_buffers=3)
    for stage in ("htod", "compute", "dtoh"):
        events = sorted(sched.stream(stage), key=lambda e: e.start)
        for a, b in zip(events, events[1:]):
            assert a.end <= b.start + 1e-12


def test_buffer_constraint_limits_pipelining():
    """Job j's input copy may not start before job j-3 released its buffer."""
    sched = schedule_buffers(_uniform_jobs(), n_buffers=3)
    by_job = {
        (e.job, e.stage): e for e in sched.events
    }
    for j in range(3, 9):
        assert by_job[(j, "htod")].start >= by_job[(j - 3, "dtoh")].end - 1e-12


def test_triple_buffering_hides_transfers():
    """The Fig 7 effect: with compute the longest stage, the makespan is near
    the pure compute time, not the serial sum."""
    jobs = _uniform_jobs(n=12, h=1.0, c=2.0, d=1.0)
    sched = schedule_buffers(jobs, n_buffers=3)
    serial = serial_makespan(jobs)
    assert serial == pytest.approx(48.0)
    # perfect pipeline: ~ h + 12*c + d = 27
    assert sched.makespan < 0.6 * serial
    assert sched.compute_utilisation() > 0.85


def test_single_buffer_degenerates_to_serial():
    jobs = _uniform_jobs(n=6)
    sched = schedule_buffers(jobs, n_buffers=1)
    assert sched.makespan == pytest.approx(serial_makespan(jobs))


def test_more_buffers_never_slower():
    jobs = [(0.5, 2.0, 0.7), (1.5, 0.3, 0.2), (0.1, 1.0, 1.0)] * 4
    times = [schedule_buffers(jobs, n_buffers=b).makespan for b in (1, 2, 3, 4)]
    for a, b in zip(times, times[1:]):
        assert b <= a + 1e-12


def test_makespan_lower_bound_is_busiest_stream():
    jobs = [(1.0, 0.1, 0.1)] * 10  # transfer-dominated
    sched = schedule_buffers(jobs, n_buffers=3)
    assert sched.makespan >= 10 * 1.0 - 1e-9


def test_empty_and_invalid_inputs():
    assert schedule_buffers([], n_buffers=3).makespan == 0.0
    with pytest.raises(ValueError):
        schedule_buffers([(1.0, 1.0, 1.0)], n_buffers=0)
    with pytest.raises(ValueError):
        schedule_buffers([(-1.0, 1.0, 1.0)])


def test_transfer_times_helper():
    h, c, d = transfer_times(16.0, bytes_in=16e9, bytes_out=8e9, compute_seconds=3.0)
    assert h == pytest.approx(1.0)
    assert c == 3.0
    assert d == pytest.approx(0.5)
    # CPU path: no transfers
    assert transfer_times(0.0, 1e9, 1e9, 2.0) == (0.0, 2.0, 0.0)
