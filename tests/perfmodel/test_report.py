"""Tests for the one-shot evaluation report."""

import pytest

from repro.perfmodel.report import evaluation_report


@pytest.fixture(scope="module")
def report(paper_like_plan):
    return evaluation_report(paper_like_plan)


def test_report_contains_every_section(report):
    assert "Table I: architectures" in report
    assert "Figs 11/13: rooflines" in report
    assert "Fig 12: throughput vs rho" in report
    assert "Figs 9/10/14/15" in report
    assert "Fig 16: IDG vs W-projection" in report


def test_report_contains_all_architectures(report):
    for name in ("HASWELL", "FIJI", "PASCAL"):
        assert name in report
    for model in ("Intel Xeon E5-2697v3", "AMD R9 Fury X", "NVIDIA GTX 1080"):
        assert model in report


def test_report_mentions_workload(report):
    assert "vis/subgrid" in report
    assert "2048^2 grid" in report


def test_report_with_aterms_differs(paper_like_plan, report):
    with_a = evaluation_report(paper_like_plan, with_aterms=True)
    assert with_a != report  # byte counts change slightly
    assert "Table I" in with_a


def test_report_is_plain_text(report):
    # parsable, multi-line, no stray format artefacts
    lines = report.splitlines()
    assert len(lines) > 30
    assert all(isinstance(line, str) for line in lines)
    assert "{" not in report
