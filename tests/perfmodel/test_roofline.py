"""Unit tests for the modified roofline model (Figs 11 and 13)."""

import pytest

from repro.perfmodel.architectures import ALL_ARCHITECTURES, FIJI, HASWELL, PASCAL
from repro.perfmodel.opcount import (
    adder_counts,
    degridder_counts,
    gridder_counts,
)
from repro.perfmodel.roofline import (
    attainable_ops,
    device_roofline_point,
    roofline_ceiling,
    shared_roofline_point,
)
from repro.perfmodel.sincos import sincos_bound_ops


def test_ceiling_is_min_of_peak_and_bandwidth():
    assert roofline_ceiling(PASCAL, 1e-6) == pytest.approx(320e9 * 1e-6)
    assert roofline_ceiling(PASCAL, 1e6) == PASCAL.peak_ops
    with pytest.raises(ValueError):
        roofline_ceiling(PASCAL, -1.0)


def test_gridder_degridder_compute_bound_everywhere(paper_like_plan):
    """Section VI-B: 'On all architectures, both kernels are compute bound'
    — device-memory bandwidth is never the binding limit."""
    for arch in ALL_ARCHITECTURES:
        for counts in (gridder_counts(paper_like_plan), degridder_counts(paper_like_plan)):
            _, bound = attainable_ops(arch, counts)
            assert bound != "memory"


def test_pascal_fractions_match_paper(paper_like_plan):
    """The headline Fig 11 numbers: 74% (gridder) and 55% (degridder) of
    peak on PASCAL, limited by shared memory."""
    perf_g, bound_g = attainable_ops(PASCAL, gridder_counts(paper_like_plan))
    perf_d, bound_d = attainable_ops(PASCAL, degridder_counts(paper_like_plan))
    assert bound_g == "shared"
    assert bound_d == "shared"
    assert perf_g / PASCAL.peak_ops == pytest.approx(0.74, abs=0.06)
    assert perf_d / PASCAL.peak_ops == pytest.approx(0.55, abs=0.06)


def test_haswell_fiji_sincos_bound(paper_like_plan):
    """Fig 11: HASWELL and FIJI sit at the dashed sincos ceilings."""
    for arch in (HASWELL, FIJI):
        perf, bound = attainable_ops(arch, gridder_counts(paper_like_plan))
        assert bound == "sincos"
        assert perf == pytest.approx(sincos_bound_ops(arch), rel=0.01)


def test_gpus_order_of_magnitude_faster(paper_like_plan):
    """Section VI-B: GPUs complete 'almost an order of magnitude faster'."""
    counts = gridder_counts(paper_like_plan)
    perf_h, _ = attainable_ops(HASWELL, counts)
    perf_f, _ = attainable_ops(FIJI, counts)
    perf_p, _ = attainable_ops(PASCAL, counts)
    assert perf_f / perf_h > 5
    assert perf_p / perf_h > 9


def test_adder_memory_bound(paper_like_plan):
    for arch in ALL_ARCHITECTURES:
        _, bound = attainable_ops(arch, adder_counts(paper_like_plan))
        assert bound == "memory"


def test_roofline_points_consistent(paper_like_plan):
    counts = gridder_counts(paper_like_plan)
    pt = device_roofline_point(PASCAL, counts)
    assert pt.performance_ops <= pt.ceiling_ops + 1e-6
    assert pt.kernel == "gridder"
    spt = shared_roofline_point(PASCAL, counts)
    assert spt.intensity < pt.intensity
    # in the shared plot the kernel sits at its ceiling (shared-bw bound)
    assert spt.performance_ops == pytest.approx(spt.ceiling_ops, rel=0.01)


def test_fiji_near_shared_bound_too(paper_like_plan):
    """Section VI-C-2: 'the kernels on FIJI are also relatively close to
    hitting the shared memory bandwidth limit'."""
    counts = gridder_counts(paper_like_plan)
    perf, _ = attainable_ops(FIJI, counts)
    shared_limit = FIJI.shared_bandwidth_tbs * 1e12 * counts.shared_intensity
    assert perf > 0.5 * shared_limit
