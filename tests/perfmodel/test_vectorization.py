"""Unit tests for the SIMD channel-alignment model (paper Section V-B)."""

import numpy as np
import pytest

from repro.perfmodel.vectorization import (
    best_simd_width,
    effective_peak_ops,
    simd_channel_efficiency,
    sweep_channel_efficiency,
)


def test_multiple_of_width_is_fully_efficient():
    assert simd_channel_efficiency(16, 8) == 1.0
    assert simd_channel_efficiency(8, 8) == 1.0
    assert simd_channel_efficiency(32, 16) == 1.0


def test_remainder_channels_waste_lanes():
    # 9 channels on 8-wide vectors: 2 iterations, 16 lanes, 9 useful
    assert simd_channel_efficiency(9, 8) == pytest.approx(9 / 16)
    # 1 channel on 16-wide: worst case
    assert simd_channel_efficiency(1, 16) == pytest.approx(1 / 16)


def test_efficiency_bounds():
    for c in range(1, 40):
        for w in (4, 8, 16):
            eff = simd_channel_efficiency(c, w)
            assert 0 < eff <= 1


def test_wider_vectors_not_always_better():
    """The paper's observation: for C = 12, 4-wide vectors beat 8- and
    16-wide (12 divides by 4 only)."""
    assert best_simd_width(12) == 4
    assert best_simd_width(16) == 16
    # paper's benchmark: C = 16 is a multiple of every width -> widest wins
    assert simd_channel_efficiency(16, 16) == 1.0


def test_effective_peak_scales():
    assert effective_peak_ops(1e12, 9, 8) == pytest.approx(1e12 * 9 / 16)


def test_sweep_shape_and_sawtooth():
    counts, eff = sweep_channel_efficiency(8)
    assert counts.shape == eff.shape
    # efficiency peaks exactly at multiples of the width
    multiples = counts % 8 == 0
    assert np.all(eff[multiples] == 1.0)
    assert np.all(eff[~multiples] < 1.0)


def test_validation():
    with pytest.raises(ValueError):
        simd_channel_efficiency(0, 8)
    with pytest.raises(ValueError):
        simd_channel_efficiency(8, 0)
    with pytest.raises(ValueError):
        best_simd_width(0)
