"""Unit tests for operation/byte counting."""

import numpy as np
import pytest

from repro.perfmodel.opcount import (
    FMAS_PER_PIXEL_VIS,
    adder_counts,
    degridder_counts,
    gridder_counts,
    splitter_counts,
    subgrid_fft_counts,
    wprojection_counts,
)


def _total_pixel_vis(plan):
    n2 = plan.subgrid_size**2
    return n2 * sum(item.n_visibilities for item in plan)


def test_gridder_sincos_count_is_pixel_vis_products(paper_like_plan):
    counts = gridder_counts(paper_like_plan)
    assert counts.sincos_evals == _total_pixel_vis(paper_like_plan)


def test_gridder_rho_is_seventeen(paper_like_plan):
    """The Algorithm 1 caption: 17 FMAs per sincos (plus small corrections)."""
    counts = gridder_counts(paper_like_plan)
    assert counts.rho == pytest.approx(FMAS_PER_PIXEL_VIS, rel=0.01)


def test_gridder_degridder_symmetric_core(paper_like_plan):
    g = gridder_counts(paper_like_plan)
    d = degridder_counts(paper_like_plan)
    assert g.sincos_evals == d.sincos_evals
    assert g.fmas == d.fmas
    assert g.visibilities == d.visibilities


def test_ops_metric_definition(paper_like_plan):
    counts = gridder_counts(paper_like_plan)
    assert counts.ops == 2 * counts.fmas + 2 * counts.sincos_evals
    assert counts.flops == 2 * counts.fmas


def test_gridder_compute_bound(paper_like_plan):
    """Section VI-B: both kernels are compute bound — OI in the hundreds."""
    assert gridder_counts(paper_like_plan).operational_intensity > 50
    assert degridder_counts(paper_like_plan).operational_intensity > 50


def test_shared_intensity_order_unity(paper_like_plan):
    """Fig 13: shared-memory OI is O(1) ops/byte, far below the device OI."""
    g = gridder_counts(paper_like_plan)
    assert 0.1 < g.shared_intensity < 5
    assert g.shared_intensity < g.operational_intensity


def test_aterms_add_work_and_bytes(paper_like_plan):
    plain = gridder_counts(paper_like_plan, with_aterms=False)
    with_a = gridder_counts(paper_like_plan, with_aterms=True)
    assert with_a.fmas > plain.fmas
    assert with_a.bytes_device > plain.bytes_device
    # and the relative increase is small — the paper's "negligible cost"
    assert with_a.ops / plain.ops < 1.05


def test_fft_counts_scale(paper_like_plan):
    counts = subgrid_fft_counts(paper_like_plan)
    n = paper_like_plan.subgrid_size
    k = paper_like_plan.n_subgrids
    assert counts.flops == pytest.approx(k * 4 * 10 * n * n * np.log2(n))
    assert counts.sincos_evals == 0


def test_adder_splitter_memory_dominated(paper_like_plan):
    a = adder_counts(paper_like_plan)
    s = splitter_counts(paper_like_plan)
    assert a.operational_intensity < 1.0
    assert s.ops == 0
    assert a.bytes_device == pytest.approx(1.5 * s.bytes_device)  # r/w vs copy


def test_visibility_totals_match_plan(paper_like_plan):
    st = paper_like_plan.statistics
    assert gridder_counts(paper_like_plan).visibilities == st.n_visibilities_gridded


def test_wprojection_counts_quadratic_in_support():
    small = wprojection_counts(1000, support=8)
    large = wprojection_counts(1000, support=16)
    assert large.fmas == 4 * small.fmas
    assert large.bytes_device == 4 * small.bytes_device
    assert small.sincos_evals == 0
    assert small.rho == float("inf")


def test_wprojection_validation():
    with pytest.raises(ValueError):
        wprojection_counts(10, support=0)
