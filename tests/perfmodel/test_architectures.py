"""Unit tests for the Table I architecture database."""

import pytest

from repro.perfmodel.architectures import (
    ALL_ARCHITECTURES,
    FIJI,
    HASWELL,
    PASCAL,
    by_name,
    table1_rows,
)


def test_table1_values_match_paper():
    assert HASWELL.peak_tflops == 2.78
    assert HASWELL.mem_bandwidth_gbs == 136.0
    assert HASWELL.tdp_w == 290.0
    assert HASWELL.n_fpus == 448
    assert FIJI.peak_tflops == 8.60
    assert FIJI.mem_bandwidth_gbs == 512.0
    assert FIJI.n_fpus == 4096
    assert PASCAL.peak_tflops == 9.22
    assert PASCAL.mem_bandwidth_gbs == 320.0
    assert PASCAL.tdp_w == 180.0
    assert PASCAL.n_fpus == 2560


def test_core_config_products():
    # Table I footnote: #ICs x #compute units x FPU instr/cycle x vector size
    assert 2 * 14 * 2 * 8 == HASWELL.n_fpus
    assert 1 * 64 * 1 * 64 == FIJI.n_fpus
    assert 1 * 40 * 2 * 32 == PASCAL.n_fpus


def test_peak_ops_and_fma_rate():
    assert PASCAL.peak_ops == pytest.approx(9.22e12)
    assert PASCAL.fma_instruction_rate == pytest.approx(4.61e12)


def test_gpu_flags():
    assert not HASWELL.is_gpu
    assert FIJI.is_gpu and PASCAL.is_gpu


def test_sincos_execution_models():
    assert PASCAL.sincos_parallel  # SFUs [28]
    assert not FIJI.sincos_parallel  # same ALUs at quarter rate [29]
    assert not HASWELL.sincos_parallel  # SVML in software


def test_by_name_lookup():
    assert by_name("pascal") is PASCAL
    assert by_name("HASWELL") is HASWELL
    with pytest.raises(KeyError):
        by_name("volta")


def test_table1_rows_complete():
    rows = table1_rows()
    assert len(rows) == 3
    assert rows[0]["model"] == "Intel Xeon E5-2697v3"
    for row in rows:
        assert set(row) == {
            "model", "type", "architecture", "clock (GHz)", "#FPUs",
            "peak (TFlops)", "mem size (GB)", "mem bw (GB/s)", "TDP (W)",
        }


def test_order_matches_paper():
    assert [a.name for a in ALL_ARCHITECTURES] == ["HASWELL", "FIJI", "PASCAL"]
