"""Unit tests for the runtime (Figs 9-10) and energy (Figs 14-15) models."""

import pytest

from repro.perfmodel.architectures import ALL_ARCHITECTURES, FIJI, HASWELL, PASCAL
from repro.perfmodel.energy import (
    energy_efficiency_gflops_per_watt,
    imaging_cycle_energy,
    kernel_energy,
)
from repro.perfmodel.opcount import degridder_counts, gridder_counts, wprojection_counts
from repro.perfmodel.runtime import (
    imaging_cycle_runtime,
    kernel_runtime,
    throughput_mvis,
)


def test_cycle_dominated_by_gridding_kernels(paper_like_plan):
    """Section VI-B: 'runtime is dominated by the gridder and degridder
    kernels (more than 93%)'."""
    for arch in ALL_ARCHITECTURES:
        cycle = imaging_cycle_runtime(arch, paper_like_plan)
        assert cycle.gridding_degridding_fraction() > 0.93


def test_cycle_kernel_composition(paper_like_plan):
    cycle = imaging_cycle_runtime(PASCAL, paper_like_plan)
    names = [k.kernel for k in cycle.kernels]
    assert names == [
        "gridder", "subgrid-fft", "adder", "splitter", "subgrid-fft", "degridder",
    ]
    assert cycle.total_seconds > 0


def test_gpus_order_of_magnitude_faster_cycle(paper_like_plan):
    t = {a.name: imaging_cycle_runtime(a, paper_like_plan).total_seconds
         for a in ALL_ARCHITECTURES}
    assert t["HASWELL"] / t["PASCAL"] > 8
    assert t["HASWELL"] / t["FIJI"] > 5


def test_throughput_ordering_fig10(paper_like_plan):
    counts = gridder_counts(paper_like_plan)
    mvis = {a.name: throughput_mvis(a, counts) for a in ALL_ARCHITECTURES}
    assert mvis["PASCAL"] > mvis["FIJI"] > mvis["HASWELL"]
    assert mvis["PASCAL"] / mvis["HASWELL"] > 9


def test_kernel_runtime_positive_and_rate_bounded(paper_like_plan):
    for arch in ALL_ARCHITECTURES:
        rt = kernel_runtime(arch, gridder_counts(paper_like_plan))
        assert rt.seconds > 0
        assert rt.ops_per_second <= arch.peak_ops * (1 + 1e-9)


def test_energy_efficiency_matches_paper(paper_like_plan):
    """Section VI-D: PASCAL 32/23 GFlops/W (gridder/degridder), FIJI ~13,
    HASWELL ~1.5."""
    g = gridder_counts(paper_like_plan)
    d = degridder_counts(paper_like_plan)
    assert energy_efficiency_gflops_per_watt(PASCAL, g) == pytest.approx(32, rel=0.15)
    assert energy_efficiency_gflops_per_watt(PASCAL, d) == pytest.approx(23, rel=0.15)
    assert energy_efficiency_gflops_per_watt(FIJI, g) == pytest.approx(13, rel=0.15)
    assert energy_efficiency_gflops_per_watt(HASWELL, g) == pytest.approx(1.5, rel=0.25)


def test_gpu_total_energy_order_of_magnitude_lower(paper_like_plan):
    """Fig 14: 'also in terms of total energy consumption, the GPUs
    outperform the CPU by an order of magnitude ... even when the power
    consumption of the host is taken into account'."""
    e = {a.name: imaging_cycle_energy(a, paper_like_plan).total_joules
         for a in ALL_ARCHITECTURES}
    assert e["HASWELL"] / e["PASCAL"] > 8
    assert e["HASWELL"] / e["FIJI"] > 5


def test_energy_mostly_in_gridding_kernels(paper_like_plan):
    """Fig 14: 'most energy is naturally spent in these kernels'."""
    for arch in ALL_ARCHITECTURES:
        cycle = imaging_cycle_energy(arch, paper_like_plan)
        frac = cycle.fraction("gridder") + cycle.fraction("degridder")
        assert frac > 0.9


def test_host_energy_only_for_gpus(paper_like_plan):
    assert imaging_cycle_energy(HASWELL, paper_like_plan).host_joules == 0
    assert imaging_cycle_energy(PASCAL, paper_like_plan).host_joules > 0


def test_kernel_energy_is_power_times_time(paper_like_plan):
    counts = gridder_counts(paper_like_plan)
    rt = kernel_runtime(PASCAL, counts)
    en = kernel_energy(PASCAL, counts)
    assert en.joules_device == pytest.approx(rt.seconds * PASCAL.compute_power_w)
    assert en.joules_host == pytest.approx(rt.seconds * PASCAL.host_power_w)


def test_include_host_lowers_efficiency(paper_like_plan):
    counts = gridder_counts(paper_like_plan)
    assert energy_efficiency_gflops_per_watt(
        PASCAL, counts, include_host=True
    ) < energy_efficiency_gflops_per_watt(PASCAL, counts, include_host=False)


def test_wpg_throughput_drops_with_support():
    """The Fig 16 mechanism: WPG MVis/s falls ~quadratically with N_W while
    IDG is support-independent."""
    rates = [throughput_mvis(PASCAL, wprojection_counts(1e6, s)) for s in (8, 16, 32)]
    assert rates[0] > 3 * rates[1] > 9 * rates[2] / 4
