"""Unit tests for the end-to-end pipeline predictions."""

import pytest

from repro.perfmodel.architectures import FIJI, HASWELL, PASCAL
from repro.perfmodel.pipeline_model import (
    cpu_core_scaling,
    gpu_cycle_with_transfers,
)
from repro.perfmodel.runtime import imaging_cycle_runtime


def test_gpu_cycle_requires_gpu(paper_like_plan):
    with pytest.raises(ValueError):
        gpu_cycle_with_transfers(HASWELL, paper_like_plan)


def test_triple_buffering_hides_most_transfer(paper_like_plan):
    pred = gpu_cycle_with_transfers(PASCAL, paper_like_plan, n_buffers=3)
    assert pred.transfer_hidden_fraction > 0.8
    # makespan close to pure compute: the Fig 7 point
    assert pred.overlapped_seconds < 1.15 * pred.compute_seconds


def test_single_buffer_exposes_transfers(paper_like_plan):
    single = gpu_cycle_with_transfers(PASCAL, paper_like_plan, n_buffers=1)
    triple = gpu_cycle_with_transfers(PASCAL, paper_like_plan, n_buffers=3)
    assert single.overlapped_seconds == pytest.approx(single.serial_seconds)
    assert triple.overlapped_seconds < single.overlapped_seconds
    assert triple.overlap_speedup > 1.0


def test_compute_matches_cycle_model(paper_like_plan):
    pred = gpu_cycle_with_transfers(FIJI, paper_like_plan)
    assert pred.compute_seconds == pytest.approx(
        imaging_cycle_runtime(FIJI, paper_like_plan).total_seconds
    )


def test_gpu_cycle_validation(paper_like_plan):
    with pytest.raises(ValueError):
        gpu_cycle_with_transfers(PASCAL, paper_like_plan, n_work_groups=0)


def test_cpu_scaling_monotone_with_diminishing_returns(paper_like_plan):
    points = cpu_core_scaling(HASWELL, paper_like_plan)
    speedups = [p.speedup for p in points]
    assert speedups == sorted(speedups)
    efficiencies = [p.efficiency for p in points]
    assert efficiencies == sorted(efficiencies, reverse=True)
    assert points[0].speedup == pytest.approx(1.0)
    # Amdahl: 28 cores with 2% serial fraction land well below 28x
    last = points[-1]
    assert last.n_cores == 28
    assert 14 < last.speedup < 28


def test_cpu_scaling_validation(paper_like_plan):
    with pytest.raises(ValueError):
        cpu_core_scaling(PASCAL, paper_like_plan)
    with pytest.raises(ValueError):
        cpu_core_scaling(HASWELL, paper_like_plan, serial_fraction=1.0)
    with pytest.raises(ValueError):
        cpu_core_scaling(HASWELL, paper_like_plan, core_counts=(0, 2))


def test_zero_serial_fraction_is_linear(paper_like_plan):
    points = cpu_core_scaling(HASWELL, paper_like_plan, serial_fraction=0.0)
    for p in points:
        assert p.speedup == pytest.approx(p.n_cores)
        assert p.efficiency == pytest.approx(1.0)
