"""Unit tests for :mod:`repro.gridspec`."""

import numpy as np
import pytest

from repro.gridspec import GridSpec


@pytest.fixture
def gs():
    return GridSpec(grid_size=512, image_size=0.05)


def test_pixel_scale_and_cell_size_are_reciprocal(gs):
    # du * dl = 1 / grid_size: the centered-FFT resolution relation.
    assert gs.cell_size * gs.pixel_scale == pytest.approx(1.0 / gs.grid_size)


def test_rejects_odd_grid_size():
    with pytest.raises(ValueError):
        GridSpec(grid_size=511, image_size=0.05)


def test_rejects_nonpositive_grid_size():
    with pytest.raises(ValueError):
        GridSpec(grid_size=0, image_size=0.05)


def test_rejects_unphysical_image_size():
    with pytest.raises(ValueError):
        GridSpec(grid_size=512, image_size=2.5)
    with pytest.raises(ValueError):
        GridSpec(grid_size=512, image_size=0.0)


def test_uv_to_pixel_origin_is_grid_centre(gs):
    pu, pv = gs.uv_to_pixel(0.0, 0.0)
    assert pu == gs.grid_size // 2
    assert pv == gs.grid_size // 2


def test_uv_pixel_roundtrip(gs):
    u = np.array([-1000.0, 0.0, 333.3])
    v = np.array([50.0, -20.0, 0.0])
    pu, pv = gs.uv_to_pixel(u, v)
    u2, v2 = gs.pixel_to_uv(pu, pv)
    np.testing.assert_allclose(u2, u, atol=1e-9)
    np.testing.assert_allclose(v2, v, atol=1e-9)


def test_one_cell_equals_cell_size(gs):
    pu0, _ = gs.uv_to_pixel(0.0, 0.0)
    pu1, _ = gs.uv_to_pixel(gs.cell_size, 0.0)
    assert pu1 - pu0 == pytest.approx(1.0)


def test_coordinates_match_pixel_mapping(gs):
    u = gs.u_coordinates()
    # cell i sits at uv that maps back to pixel i
    pu, _ = gs.uv_to_pixel(u, np.zeros_like(u))
    np.testing.assert_allclose(pu, np.arange(gs.grid_size), atol=1e-6)


def test_l_coordinates_centered(gs):
    l = gs.l_coordinates()
    assert l[gs.grid_size // 2] == 0.0
    assert l[0] == pytest.approx(-gs.image_size / 2)


def test_contains_uv_margin(gs):
    edge_u = gs.max_uv - 0.5 * gs.cell_size  # just inside
    assert gs.contains_uv(np.array([0.0]), np.array([0.0]))[0]
    assert not gs.contains_uv(np.array([gs.max_uv + gs.cell_size]), np.array([0.0]))[0]
    # a margin pushes the boundary inward
    assert not gs.contains_uv(np.array([edge_u]), np.array([0.0]), margin_cells=4)[0]


def test_allocate_grid_shape_dtype(gs):
    grid = gs.allocate_grid()
    assert grid.shape == (4, gs.grid_size, gs.grid_size)
    assert grid.dtype == np.complex64
    assert not grid.any()
