"""Shared fixtures: a small but fully realistic observation.

The fixtures are session-scoped because synthesising visibilities through the
direct measurement equation is the most expensive part of the suite; tests
must treat them as read-only.
"""

from __future__ import annotations

import os

# Runtime shape contracts (repro.analysis.contracts) are decoration-time
# gated; enable them before any repro module is imported so every kernel
# call in the suite is validated against its @shape_checked spec.
os.environ.setdefault("IDGLINT_SHAPE_CHECKS", "1")

import numpy as np
import pytest

# idgsan (repro.analysis.sanitizer) is opt-in: IDG_SANITIZE=1 pytest runs
# the whole suite with lockset race detection and the deadlock watchdog on.
from repro.analysis import sanitizer as _sanitizer

_sanitizer.maybe_install_from_env()


@pytest.fixture(autouse=True)
def _idgsan_no_new_reports():
    """Under IDG_SANITIZE=1, fail any test whose execution produced a
    sanitizer report (race/deadlock/arena violation); a no-op otherwise.

    Tests that *seed* violations on purpose (tests/analysis/test_sanitizer)
    run under their own ``sanitized()`` context, which swaps the active
    sanitizer, so their reports never land on the session instance."""
    session_sanitizer = _sanitizer.current()
    before = len(session_sanitizer.reports) if session_sanitizer else 0
    yield
    if session_sanitizer is not None:
        fresh = session_sanitizer.reports[before:]
        assert not fresh, "idgsan reports during test:\n" + "\n".join(
            r.format_text() for r in fresh
        )

from repro.core.pipeline import IDG, IDGConfig
from repro.sky.model import SkyModel
from repro.sky.simulate import predict_visibilities
from repro.telescope.observation import ska1_low_observation


@pytest.fixture(scope="session")
def small_obs():
    """12 stations (66 baselines), 64 x 2-minute integrations (a ~2-hour
    synthesis, matching the paper's 8192 x 1 s span), 4 channels, 2 km array.

    The long time span matters: earth rotation sweeps real uv arcs, giving a
    PSF with low enough sidelobes for the CLEAN-based integration tests."""
    return ska1_low_observation(
        n_stations=12, n_times=64, n_channels=4, integration_time_s=120.0,
        max_radius_m=2000.0, seed=1,
    )


@pytest.fixture(scope="session")
def small_gridspec(small_obs):
    return small_obs.fitting_gridspec(256)


@pytest.fixture(scope="session")
def small_baselines(small_obs):
    return small_obs.array.baselines()


@pytest.fixture(scope="session")
def snapped_source(small_gridspec):
    """(l, m, flux) of a single source snapped to a fine image pixel."""
    gs = small_gridspec
    dl = gs.pixel_scale
    l0 = round(0.15 * gs.image_size / dl) * dl
    m0 = round(-0.10 * gs.image_size / dl) * dl
    return (l0, m0, 2.0)


@pytest.fixture(scope="session")
def single_source_sky(snapped_source):
    l0, m0, flux = snapped_source
    return SkyModel.single(l0, m0, flux=flux)


@pytest.fixture(scope="session")
def single_source_vis(small_obs, small_baselines, single_source_sky):
    return predict_visibilities(
        small_obs.uvw_m, small_obs.frequencies_hz, single_source_sky,
        baselines=small_baselines,
    )


@pytest.fixture(scope="session")
def small_idg(small_gridspec):
    return IDG(small_gridspec, IDGConfig(subgrid_size=24, kernel_support=8, time_max=16))


@pytest.fixture(scope="session")
def small_plan(small_idg, small_obs, small_baselines):
    return small_idg.make_plan(small_obs.uvw_m, small_obs.frequencies_hz, small_baselines)
