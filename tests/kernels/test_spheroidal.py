"""Unit tests for the anti-aliasing tapers."""

import numpy as np
import pytest

from repro.kernels.spheroidal import (
    evaluate_prolate_spheroidal,
    grid_correction,
    kaiser_bessel_taper,
    spheroidal_taper,
    taper_for,
)


def test_spheroidal_peak_is_one():
    assert evaluate_prolate_spheroidal(np.array([0.0]))[0] == pytest.approx(1.0)


def test_spheroidal_even_symmetry():
    nu = np.linspace(0, 1, 33)
    np.testing.assert_allclose(
        evaluate_prolate_spheroidal(nu), evaluate_prolate_spheroidal(-nu)
    )


def test_spheroidal_monotone_decreasing():
    nu = np.linspace(0, 1, 101)
    vals = evaluate_prolate_spheroidal(nu)
    assert np.all(np.diff(vals) <= 1e-12)


def test_spheroidal_zero_outside_support():
    assert evaluate_prolate_spheroidal(np.array([1.5]))[0] == 0.0


def test_spheroidal_continuous_at_piece_boundary():
    # The rational fit switches pieces at nu = 0.75.
    lo = evaluate_prolate_spheroidal(np.array([0.75 - 1e-9]))[0]
    hi = evaluate_prolate_spheroidal(np.array([0.75 + 1e-9]))[0]
    assert lo == pytest.approx(hi, rel=1e-4)


def test_taper_2d_is_separable_outer_product():
    t = spheroidal_taper(24)
    row = evaluate_prolate_spheroidal((np.arange(24) - 12) / 12.0)
    np.testing.assert_allclose(t, np.outer(row, row), atol=1e-12)


def test_taper_symmetry_under_transpose():
    t = spheroidal_taper(32)
    np.testing.assert_allclose(t, t.T)


def test_taper_centre_is_one():
    t = spheroidal_taper(24)
    assert t[12, 12] == pytest.approx(1.0)


def test_kaiser_bessel_properties():
    t = kaiser_bessel_taper(24, beta=9.0)
    assert t.shape == (24, 24)
    assert t[12, 12] == pytest.approx(1.0)
    assert np.all(t >= 0)
    assert np.all(t <= 1 + 1e-12)


def test_kaiser_beta_controls_width():
    narrow = kaiser_bessel_taper(24, beta=12.0)
    wide = kaiser_bessel_taper(24, beta=4.0)
    # higher beta concentrates energy: smaller value at mid-radius
    assert narrow[12, 6] < wide[12, 6]


def test_grid_correction_reciprocal_of_taper():
    corr = grid_correction(24)
    t = spheroidal_taper(24)
    interior = t > 1e-3
    np.testing.assert_allclose(corr[interior], t[interior])
    # dividing by the correction never produces NaN
    assert np.all(np.isfinite(1.0 / corr) | (corr == np.inf))


def test_grid_correction_zeros_map_to_inf():
    corr = grid_correction(24)
    assert not np.any(corr == 0.0)


def test_taper_for_dispatch():
    np.testing.assert_allclose(taper_for(16, "spheroidal"), spheroidal_taper(16))
    np.testing.assert_allclose(
        taper_for(16, "kaiser-bessel", beta=7.0), kaiser_bessel_taper(16, beta=7.0)
    )
    with pytest.raises(ValueError):
        taper_for(16, "hann")
    with pytest.raises(ValueError):
        grid_correction(16, taper="hann")


def test_taper_fourier_decay_controls_aliasing():
    """The taper's uv transform must concentrate energy: >99% of the kernel
    energy inside a quarter-width support (the anti-aliasing property IDG's
    accuracy rests on)."""
    from repro.kernels.fft import centered_fft2

    n = 64
    t = spheroidal_taper(n)
    kernel = np.abs(centered_fft2(t)) ** 2
    total = kernel.sum()
    half = n // 2
    s = n // 8
    inner = kernel[half - s : half + s + 1, half - s : half + s + 1].sum()
    assert inner / total > 0.99
