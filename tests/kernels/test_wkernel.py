"""Unit tests for w-term handling."""

import numpy as np
import pytest

from repro.kernels.fft import centered_fft2
from repro.kernels.spheroidal import spheroidal_taper
from repro.kernels.wkernel import (
    n_term,
    required_w_planes,
    w_kernel_fourier,
    w_kernel_image,
    w_kernel_support,
)


def test_n_term_zero_at_phase_centre():
    assert n_term(0.0, 0.0) == 0.0


def test_n_term_matches_formula():
    l, m = 0.1, -0.05
    assert n_term(l, m) == pytest.approx(1.0 - np.sqrt(1 - l * l - m * m))


def test_n_term_nonnegative_and_small_angle():
    l = np.linspace(-0.3, 0.3, 21)
    n = n_term(l, np.zeros_like(l))
    assert np.all(n >= 0)
    # small-angle: n ~ l^2 / 2
    np.testing.assert_allclose(n, l * l / 2, rtol=0.05)


def test_n_term_clamps_outside_unit_sphere():
    assert n_term(1.0, 1.0) == 1.0


def test_w_zero_screen_is_unity():
    screen = w_kernel_image(0.0, 16, 0.1)
    np.testing.assert_allclose(screen, np.ones((16, 16)))


def test_w_screen_unit_modulus():
    screen = w_kernel_image(123.4, 32, 0.1)
    np.testing.assert_allclose(np.abs(screen), 1.0, atol=1e-12)


def test_w_screen_sign_conjugate():
    a = w_kernel_image(50.0, 16, 0.1, sign=-1.0)
    b = w_kernel_image(50.0, 16, 0.1, sign=+1.0)
    np.testing.assert_allclose(a, np.conj(b), atol=1e-12)


def test_w_screen_opposite_w_is_conjugate():
    a = w_kernel_image(50.0, 16, 0.1)
    b = w_kernel_image(-50.0, 16, 0.1)
    np.testing.assert_allclose(a, np.conj(b), atol=1e-12)


def test_w_kernel_fourier_sums_to_one():
    taper = spheroidal_taper(32)
    k = w_kernel_fourier(200.0, 32, 0.1, taper=taper)
    assert k.sum() == pytest.approx(1.0 + 0j, abs=1e-9)


def test_w_kernel_fourier_w0_matches_taper_transform():
    taper = spheroidal_taper(32)
    k = w_kernel_fourier(0.0, 32, 0.1, taper=taper)
    expected = centered_fft2(taper.astype(complex))
    expected /= expected.sum()
    np.testing.assert_allclose(k, expected, atol=1e-12)


def test_w_kernel_fourier_rejects_mismatched_taper():
    with pytest.raises(ValueError):
        w_kernel_fourier(0.0, 32, 0.1, taper=spheroidal_taper(16))


def test_w_kernel_width_grows_with_w():
    """Larger |w| must spread the kernel: compare energy inside a fixed box."""
    taper = spheroidal_taper(64)

    def inner_energy(w):
        k = np.abs(w_kernel_fourier(w, 64, 0.2, taper=taper)) ** 2
        c = 32
        return k[c - 4 : c + 5, c - 4 : c + 5].sum() / k.sum()

    assert inner_energy(0.0) > inner_energy(500.0) > inner_energy(2000.0)


def test_w_kernel_support_monotone_in_w():
    s = [w_kernel_support(w, 0.1) for w in (0.0, 100.0, 1000.0, 10000.0)]
    assert s == sorted(s)
    assert s[0] >= 1


def test_w_kernel_support_grows_with_field():
    assert w_kernel_support(1000.0, 0.2) > w_kernel_support(1000.0, 0.05)


def test_required_w_planes_inverse_of_support():
    image_size = 0.1
    w_max = 5000.0
    planes = required_w_planes(w_max, image_size, max_support=8)
    # per-plane residual w must then need <= the capped support
    residual = w_max / planes
    assert w_kernel_support(residual, image_size) <= 8 + 1  # padding slack


def test_required_w_planes_edge_cases():
    assert required_w_planes(0.0, 0.1, 8) == 1
    assert required_w_planes(10.0, 0.1, 1000) == 1
