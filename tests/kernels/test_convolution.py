"""Unit tests for oversampled convolution kernels (W-projection substrate)."""

import numpy as np
import pytest

from repro.kernels.convolution import (
    OversampledKernel,
    build_aw_kernel,
    build_w_projection_kernel,
)
from repro.kernels.spheroidal import spheroidal_taper


@pytest.fixture(scope="module")
def w0_kernel():
    return build_w_projection_kernel(w=0.0, support=8, image_size=0.1, oversample=8)


def test_kernel_shape_and_metadata(w0_kernel):
    assert w0_kernel.data.shape == (8, 8, 8, 8)
    assert w0_kernel.support == 8
    assert w0_kernel.oversample == 8
    assert w0_kernel.w == 0.0


def test_kernel_rejects_bad_shape():
    with pytest.raises(ValueError):
        OversampledKernel(data=np.zeros((2, 2, 4, 4), dtype=complex), support=5, oversample=2)


def test_zero_offset_kernel_sums_to_one(w0_kernel):
    assert w0_kernel.data[0, 0].sum() == pytest.approx(1.0 + 0j, abs=1e-9)


def test_zero_offset_kernel_peak_at_centre(w0_kernel):
    k = np.abs(w0_kernel.data[0, 0])
    peak = np.unravel_index(np.argmax(k), k.shape)
    assert peak == (4, 4)


def test_w0_kernel_is_real_symmetric(w0_kernel):
    k = w0_kernel.data[0, 0]
    assert np.abs(k.imag).max() < 1e-9
    # even symmetry about the centre cell
    np.testing.assert_allclose(k[4 - 3 : 4 + 4, 4], k[4 + 3 : 4 - 4 : -1, 4], atol=1e-9)


def test_lookup_zero_offset(w0_kernel):
    np.testing.assert_allclose(w0_kernel.lookup(0.0, 0.0), w0_kernel.data[0, 0])


def test_lookup_negative_fraction_wraps(w0_kernel):
    k = w0_kernel.lookup(-0.25, 0.0)  # r = -2 -> index 6
    np.testing.assert_allclose(k, w0_kernel.data[0, 6])


def test_fractional_shift_moves_centroid(w0_kernel):
    """A +0.25-cell fractional offset must shift the kernel centroid by
    ~+0.25 cells along u."""
    cells = np.arange(8) - 4

    def centroid_u(k):
        w = np.abs(k) ** 2
        return (w * cells[np.newaxis, :]).sum() / w.sum()

    c0 = centroid_u(w0_kernel.lookup(0.0, 0.0))
    c1 = centroid_u(w0_kernel.lookup(0.25, 0.0))
    assert c1 - c0 == pytest.approx(0.25, abs=0.1)


def test_nbytes_scales_quadratically_with_support_and_oversample():
    small = build_w_projection_kernel(0.0, support=4, image_size=0.1, oversample=4)
    big = build_w_projection_kernel(0.0, support=8, image_size=0.1, oversample=8)
    assert big.nbytes == small.nbytes * 16  # (2x support)^2 * (2x oversample)^2 / ... = 4*4


def test_w_kernel_differs_from_w0():
    k0 = build_w_projection_kernel(0.0, support=16, image_size=0.2, oversample=4)
    kw = build_w_projection_kernel(800.0, support=16, image_size=0.2, oversample=4)
    assert np.abs(k0.data[0, 0] - kw.data[0, 0]).max() > 1e-3


def test_support_larger_than_raster_rejected():
    with pytest.raises(ValueError):
        build_w_projection_kernel(0.0, support=64, image_size=0.1, oversample=2, raster=32)


def test_aw_kernel_identity_aterm_matches_w_kernel():
    raster = 32
    taper = spheroidal_taper(raster)
    ones = np.ones((raster, raster), dtype=complex)
    aw = build_aw_kernel(100.0, ones, support=8, image_size=0.1, oversample=4, taper=taper)
    w = build_w_projection_kernel(
        100.0, support=8, image_size=0.1, oversample=4, taper=taper, raster=raster
    )
    np.testing.assert_allclose(aw.data, w.data, atol=1e-12)


def test_aw_kernel_scalar_gain_scales_out_in_normalisation():
    """A constant scalar A-term is removed by the sum-to-one normalisation."""
    raster = 32
    gain = np.full((raster, raster), 2.0, dtype=complex)
    aw = build_aw_kernel(0.0, gain, support=8, image_size=0.1, oversample=4)
    ident = build_aw_kernel(0.0, np.ones_like(gain), support=8, image_size=0.1, oversample=4)
    np.testing.assert_allclose(aw.data, ident.data, atol=1e-9)


def test_aw_kernel_rejects_nonsquare():
    with pytest.raises(ValueError):
        build_aw_kernel(0.0, np.ones((8, 16), dtype=complex), support=4, image_size=0.1)
