"""Unit tests for the centered FFT helpers."""

import numpy as np
import pytest

from repro.kernels.fft import (
    centered_fft2,
    centered_ifft2,
    fft_grid_to_image,
    fft_image_to_grid,
    fourier_coordinates,
    image_coordinates,
    subgrid_to_grid_offset,
)


def test_centered_delta_transforms_to_ones():
    a = np.zeros((16, 16), dtype=complex)
    a[8, 8] = 1.0
    np.testing.assert_allclose(centered_fft2(a), np.ones((16, 16)), atol=1e-12)


def test_roundtrip_identity():
    rng = np.random.default_rng(0)
    a = rng.standard_normal((12, 12)) + 1j * rng.standard_normal((12, 12))
    np.testing.assert_allclose(centered_ifft2(centered_fft2(a)), a, atol=1e-12)


def test_centered_fft_matches_explicit_centered_dft():
    """The helper must equal the literal centered-phase double sum."""
    rng = np.random.default_rng(1)
    n = 8
    a = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    out = centered_fft2(a)
    x = np.arange(n) - n // 2
    expected = np.zeros((n, n), dtype=complex)
    for q in range(n):
        for p in range(n):
            phase = np.exp(
                -2j * np.pi * ((p - n // 2) * x[np.newaxis, :] + (q - n // 2) * x[:, np.newaxis]) / n
            )
            expected[q, p] = (a * phase).sum()
    np.testing.assert_allclose(out, expected, atol=1e-9)


def test_batched_axes_match_loop():
    rng = np.random.default_rng(2)
    a = rng.standard_normal((3, 10, 10)) + 1j * rng.standard_normal((3, 10, 10))
    batched = centered_fft2(a)
    for k in range(3):
        np.testing.assert_allclose(batched[k], centered_fft2(a[k]), atol=1e-12)


def test_point_source_at_centre_gives_flat_real_grid():
    image = np.zeros((32, 32), dtype=complex)
    image[16, 16] = 3.0
    grid = fft_image_to_grid(image)
    np.testing.assert_allclose(grid, 3.0 * np.ones((32, 32)), atol=1e-12)


def test_grid_to_image_inverts_image_to_grid():
    rng = np.random.default_rng(3)
    image = rng.standard_normal((20, 20)) + 0j
    np.testing.assert_allclose(fft_grid_to_image(fft_image_to_grid(image)), image, atol=1e-12)


def test_offcentre_source_phase_sign():
    """Measurement-equation convention: source at +l gives exp(-2 pi i u l)."""
    n = 64
    image_size = 0.1
    image = np.zeros((n, n), dtype=complex)
    shift = 5
    image[n // 2, n // 2 + shift] = 1.0  # l = shift * dl
    grid = fft_image_to_grid(image)
    u = fourier_coordinates(n, image_size)
    l0 = shift * image_size / n
    expected = np.exp(-2j * np.pi * u * l0)
    np.testing.assert_allclose(grid[n // 2, :], expected, atol=1e-9)


def test_image_coordinates_basic():
    c = image_coordinates(8, 0.08)
    assert c[4] == 0.0
    assert c[5] - c[4] == pytest.approx(0.01)


def test_fourier_coordinates_spacing():
    u = fourier_coordinates(8, 0.05)
    assert u[4] == 0.0
    assert u[5] - u[4] == pytest.approx(1.0 / 0.05)


def test_subgrid_to_grid_offset_centre():
    # A subgrid whose corner puts its centre cell on the grid centre has
    # u_mid = v_mid = 0.
    grid_size, n = 128, 16
    corner = (grid_size // 2 - n // 2, grid_size // 2 - n // 2)
    u_mid, v_mid = subgrid_to_grid_offset(corner, n, grid_size, image_size=0.05)
    assert u_mid == pytest.approx(0.0)
    assert v_mid == pytest.approx(0.0)


def test_subgrid_to_grid_offset_one_cell():
    grid_size, n, image_size = 128, 16, 0.05
    base = (grid_size // 2 - n // 2, grid_size // 2 - n // 2)
    u1, _ = subgrid_to_grid_offset((base[0] + 1, base[1]), n, grid_size, image_size)
    assert u1 == pytest.approx(1.0 / image_size)
