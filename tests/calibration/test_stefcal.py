"""Unit/integration tests for the StEFCal gain solver."""

import numpy as np
import pytest

from repro.calibration.gains import apply_gains, corrupt_with_gains, random_gains
from repro.calibration.stefcal import stefcal


def _gain_error(solved, truth):
    """Max |g_solved - g_true| after aligning the global phase."""
    phase = np.exp(-1j * np.angle(np.vdot(truth, solved)))
    return float(np.abs(solved * phase - truth).max())


def test_recovers_known_gains(small_obs, small_baselines, single_source_vis):
    truth = random_gains(small_obs.array.n_stations, seed=4)
    corrupted = corrupt_with_gains(single_source_vis, truth, small_baselines)
    result = stefcal(
        corrupted, single_source_vis, small_baselines,
        n_stations=small_obs.array.n_stations,
    )
    assert result.n_intervals == 1
    assert result.converged.all()
    assert _gain_error(result.gains[0], truth) < 1e-5


def test_identity_data_gives_unit_gains(small_obs, small_baselines, single_source_vis):
    result = stefcal(
        single_source_vis, single_source_vis, small_baselines,
        n_stations=small_obs.array.n_stations,
    )
    np.testing.assert_allclose(result.gains[0], 1.0, atol=1e-6)
    # clean problem converges fast
    assert result.n_iterations[0] < 30


def test_calibration_restores_data(small_obs, small_baselines, single_source_vis):
    """corrupt -> solve -> apply: the calibrated data match the truth."""
    truth = random_gains(small_obs.array.n_stations, seed=9)
    corrupted = corrupt_with_gains(single_source_vis, truth, small_baselines)
    result = stefcal(
        corrupted, single_source_vis, small_baselines,
        n_stations=small_obs.array.n_stations,
    )
    calibrated = apply_gains(corrupted, result.gains[0], small_baselines)
    err = np.abs(calibrated - single_source_vis)
    assert err.max() / np.abs(single_source_vis).max() < 1e-4


def test_solution_intervals_track_changing_gains(small_obs, small_baselines,
                                                 single_source_vis):
    """Gains that jump mid-observation are recovered per interval."""
    n_st = small_obs.array.n_stations
    g_a = random_gains(n_st, seed=1)
    g_b = random_gains(n_st, seed=2)
    half = small_obs.n_times // 2
    corrupted = single_source_vis.copy()
    corrupted[:, :half] = corrupt_with_gains(
        single_source_vis[:, :half], g_a, small_baselines
    )
    corrupted[:, half:] = corrupt_with_gains(
        single_source_vis[:, half:], g_b, small_baselines
    )
    result = stefcal(
        corrupted, single_source_vis, small_baselines, n_stations=n_st,
        solution_interval=half,
    )
    assert result.n_intervals == 2
    assert _gain_error(result.gains[0], g_a) < 1e-4
    assert _gain_error(result.gains[1], g_b) < 1e-4


def test_noise_robustness(small_obs, small_baselines, single_source_vis):
    """Moderate noise degrades but does not break the solution."""
    rng = np.random.default_rng(0)
    n_st = small_obs.array.n_stations
    truth = random_gains(n_st, seed=3)
    corrupted = corrupt_with_gains(single_source_vis, truth, small_baselines)
    noise = 0.05 * np.abs(single_source_vis).mean()
    noisy = corrupted + noise * (
        rng.standard_normal(corrupted.shape) + 1j * rng.standard_normal(corrupted.shape)
    ).astype(np.complex64)
    result = stefcal(noisy, single_source_vis, small_baselines, n_stations=n_st)
    assert result.converged.all()
    assert _gain_error(result.gains[0], truth) < 0.05


def test_validation(small_obs, small_baselines, single_source_vis):
    n_st = small_obs.array.n_stations
    with pytest.raises(ValueError):
        stefcal(single_source_vis, single_source_vis[:5], small_baselines, n_st)
    with pytest.raises(ValueError):
        stefcal(single_source_vis[..., 0, 0], single_source_vis[..., 0, 0],
                small_baselines, n_st)
    with pytest.raises(ValueError):
        stefcal(single_source_vis, single_source_vis, small_baselines[:3], n_st)
    with pytest.raises(ValueError):
        stefcal(single_source_vis, single_source_vis, small_baselines, n_st,
                reference_station=n_st)
    with pytest.raises(ValueError):
        stefcal(single_source_vis, single_source_vis, small_baselines, n_st,
                solution_interval=-1)


def test_selfcal_loop_with_idg(small_idg, small_obs, small_baselines,
                               single_source_vis, snapped_source, small_gridspec):
    """A one-round self-calibration loop: predict a model with IDG
    degridding, solve gains against it, calibrate, image — the peak flux is
    restored."""
    from repro.imaging.image import (
        dirty_image_from_grid, model_image_to_grid, stokes_i_image,
    )

    n_st = small_obs.array.n_stations
    truth = random_gains(n_st, amplitude_rms=0.2, phase_rms_rad=0.8, seed=11)
    corrupted = corrupt_with_gains(single_source_vis, truth, small_baselines)

    # model: the known source position/flux, predicted through IDG
    l0, m0, flux = snapped_source
    g, dl = small_gridspec.grid_size, small_gridspec.pixel_scale
    model = np.zeros((4, g, g), dtype=np.complex128)
    model[0, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = flux
    model[3, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = flux
    plan = small_idg.make_plan(small_obs.uvw_m, small_obs.frequencies_hz,
                               small_baselines)
    predicted = small_idg.degrid(
        plan, small_obs.uvw_m, model_image_to_grid(model, small_gridspec)
    )

    solution = stefcal(corrupted, predicted, small_baselines, n_stations=n_st)
    calibrated = apply_gains(corrupted, solution.gains[0], small_baselines)

    grid = small_idg.grid(plan, small_obs.uvw_m, calibrated)
    image = stokes_i_image(dirty_image_from_grid(
        grid, small_gridspec, weight_sum=plan.statistics.n_visibilities_gridded
    ))
    peak = image[round(m0 / dl) + g // 2, round(l0 / dl) + g // 2]
    assert peak == pytest.approx(flux, rel=0.02)


@pytest.mark.parametrize("dropped", [1, 3, 5])
def test_dropped_station_reports_unconstrained(dropped):
    """Regression corpus: a station absent from every baseline used to keep
    a silent 0/0 row in the normal matrices.  It must come back as exactly
    unit gain, flagged unconstrained, with the interval not converged."""
    n_stations = 6
    full = np.array(
        [(p, q) for p in range(n_stations) for q in range(p + 1, n_stations)]
    )
    keep = (full[:, 0] != dropped) & (full[:, 1] != dropped)
    baselines = full[keep]
    rng = np.random.default_rng(7)
    shape = (len(baselines), 4, 2, 2, 2)
    model = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    truth = random_gains(n_stations, seed=5)
    data = corrupt_with_gains(model, truth, baselines)

    result = stefcal(data, model, baselines, n_stations=n_stations)
    assert result.gains.shape == (1, n_stations)
    assert result.gains[0, dropped] == 1.0 + 0.0j
    assert not result.converged[0]
    expected_constrained = np.ones(n_stations, dtype=bool)
    expected_constrained[dropped] = False
    np.testing.assert_array_equal(result.constrained[0], expected_constrained)
    # the constrained stations are still solved to the truth
    others = np.flatnonzero(expected_constrained)
    err = np.abs(result.gains[0, others] - truth[others]).max()
    assert err < 1e-6


def test_all_stations_constrained_flag(small_obs, small_baselines,
                                       single_source_vis):
    result = stefcal(
        single_source_vis, single_source_vis, small_baselines,
        n_stations=small_obs.array.n_stations,
    )
    assert result.constrained.all()
