"""Unit tests for gain application/corruption."""

import numpy as np
import pytest

from repro.calibration.gains import apply_gains, corrupt_with_gains, random_gains


def test_random_gains_shape_and_reference():
    g = random_gains(12, seed=1)
    assert g.shape == (12,)
    assert np.angle(g[0]) == pytest.approx(0.0, abs=1e-12)
    assert np.abs(np.abs(g) - 1.0).max() < 0.5  # amplitudes near unity


def test_random_gains_deterministic():
    np.testing.assert_array_equal(random_gains(8, seed=5), random_gains(8, seed=5))
    assert np.abs(random_gains(8, seed=5) - random_gains(8, seed=6)).max() > 0


def test_random_gains_validation():
    with pytest.raises(ValueError):
        random_gains(0)


def test_corrupt_formula():
    rng = np.random.default_rng(0)
    vis = (rng.standard_normal((3, 2, 1, 2, 2))
           + 1j * rng.standard_normal((3, 2, 1, 2, 2))).astype(np.complex64)
    gains = np.array([1.0 + 0.5j, 0.8 - 0.2j, 1.2 + 0.1j, 0.9 + 0.9j])
    baselines = np.array([[0, 1], [0, 2], [1, 3]])
    out = corrupt_with_gains(vis, gains, baselines)
    for k, (p, q) in enumerate(baselines):
        np.testing.assert_allclose(
            out[k], vis[k] * gains[p] * np.conj(gains[q]), rtol=1e-6
        )


def test_apply_inverts_corrupt():
    rng = np.random.default_rng(1)
    vis = (rng.standard_normal((6, 4, 2, 2, 2))
           + 1j * rng.standard_normal((6, 4, 2, 2, 2))).astype(np.complex64)
    gains = random_gains(4, seed=2)
    baselines = np.array([[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]])
    corrupted = corrupt_with_gains(vis, gains, baselines)
    restored = apply_gains(corrupted, gains, baselines)
    np.testing.assert_allclose(restored, vis, rtol=1e-4, atol=1e-5)


def test_apply_rejects_zero_gain():
    vis = np.ones((1, 1, 1, 2, 2), np.complex64)
    with pytest.raises(ValueError):
        apply_gains(vis, np.array([0.0, 1.0]), np.array([[0, 1]]))


def test_unit_gains_are_identity():
    vis = np.ones((1, 2, 3, 2, 2), np.complex64)
    out = corrupt_with_gains(vis, np.ones(2, complex), np.array([[0, 1]]))
    np.testing.assert_array_equal(out, vis)
