"""Closed-loop self-calibration: gain recovery and the loop's contracts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration.gains import corrupt_with_gains, random_gains
from repro.calibration.selfcal import (
    SelfCalConfig,
    corrupt_with_interval_gains,
    gain_amplitude_error,
    self_calibrate,
    selfcal_schedule,
)
from repro.core.pipeline import IDG, IDGConfig
from repro.imaging.metrics import dynamic_range
from repro.imaging.pipeline import ImagingContext, invert_2d
from repro.sky.model import SkyModel
from repro.sky.simulate import predict_visibilities
from repro.telescope.observation import ska1_low_observation

N_STATIONS = 8
GRID = 128


@pytest.fixture(scope="module")
def harness():
    """A corrupted-gains observation with known truth.

    The injected gains are normalised to the loop's amplitude convention
    (reference station 0 has unit amplitude) — self-cal cannot determine the
    global flux scale, so that is the only scale it can recover.
    """
    obs = ska1_low_observation(
        n_stations=N_STATIONS, n_times=16, n_channels=2,
        integration_time_s=120.0, max_radius_m=2000.0, seed=1,
    )
    gridspec = obs.fitting_gridspec(GRID, fill_factor=1.2)
    idg = IDG(gridspec, IDGConfig(subgrid_size=16, kernel_support=6, time_max=8))
    baselines = obs.array.baselines()
    dl = gridspec.pixel_scale
    sky = SkyModel.single(20 * dl, -14 * dl, flux=5.0)
    vis = predict_visibilities(obs.uvw_m, obs.frequencies_hz, sky,
                               baselines=baselines)
    true_gains = random_gains(
        N_STATIONS, amplitude_rms=0.2, phase_rms_rad=0.6, seed=3
    )
    true_gains = true_gains / np.abs(true_gains[0])
    corrupted = corrupt_with_gains(vis, true_gains, baselines)
    context = ImagingContext(
        idg=idg, uvw_m=obs.uvw_m, frequencies_hz=obs.frequencies_hz,
        baselines=baselines,
    )
    return context, corrupted, true_gains


@pytest.fixture(scope="module")
def result(harness):
    context, corrupted, true_gains = harness
    return self_calibrate(
        context, corrupted, N_STATIONS, true_gains=true_gains
    )


def test_recovers_injected_gain_amplitudes(result, harness):
    """The ISSUE gate: < 1% worst-case amplitude error against the
    (reference-normalised) injected gains."""
    _, _, true_gains = harness
    assert result.converged
    assert gain_amplitude_error(result.gains, true_gains) < 0.01


def test_recovers_injected_gain_phases(result, harness):
    _, _, true_gains = harness
    relative = result.gains[0] * np.conj(true_gains)
    phase_error = np.abs(np.angle(relative * np.conj(relative[0])))
    assert phase_error.max() < 0.01


def test_telemetry_shows_contraction(result):
    errors = [h.gain_amplitude_error for h in result.history]
    assert all(e is not None for e in errors)
    # the loop must improve on its bootstrap by an order of magnitude
    assert errors[-1] < errors[0] / 10
    assert all(h.stefcal_converged for h in result.history)
    assert [h.cycle for h in result.history] == list(range(len(result.history)))


def test_calibration_beats_uncalibrated_dynamic_range(result, harness):
    context, corrupted, _ = harness
    uncalibrated = invert_2d(context, corrupted).stokes_i
    calibrated = result.model_image + result.residual_image
    assert dynamic_range(calibrated) > 3.0 * dynamic_range(uncalibrated)


def test_model_captures_source_flux(result):
    # CLEAN stops at ~3x the residual rms, so a few percent of the flux
    # legitimately stays in the residual
    assert result.model_image.sum() == pytest.approx(5.0, rel=0.1)
    assert result.n_cycles == len(result.history)


def test_empty_model_raises(harness):
    context, corrupted, _ = harness
    config = SelfCalConfig(threshold_factor=1e9, n_cycles=1)
    with pytest.raises(RuntimeError, match="empty model"):
        self_calibrate(context, corrupted, N_STATIONS, config=config)


def test_interval_solutions(harness):
    """Per-interval solving returns one gain row per interval, each
    recovering the (static) truth."""
    context, corrupted, true_gains = harness
    config = SelfCalConfig(solution_interval=8)
    res = self_calibrate(
        context, corrupted, N_STATIONS, config=config, true_gains=true_gains
    )
    assert res.gains.shape == (2, N_STATIONS)
    # each interval solves against half the data, so the error floor is
    # higher than the whole-observation solve's < 1%
    assert gain_amplitude_error(res.gains, true_gains) < 0.05


# ------------------------------------------------------------------- units


def test_corrupt_with_interval_gains_single_row(harness):
    context, corrupted, true_gains = harness
    direct = corrupt_with_gains(corrupted, true_gains, context.baselines)
    interval = corrupt_with_interval_gains(
        corrupted, true_gains, context.baselines, solution_interval=0
    )
    np.testing.assert_array_equal(interval, direct)


def test_corrupt_with_interval_gains_uses_row_per_interval(harness):
    context, corrupted, _ = harness
    n_times = corrupted.shape[1]
    rows = np.stack([
        np.full(N_STATIONS, 2.0 + 0.0j),
        np.full(N_STATIONS, 1.0 - 1.0j),
    ])
    out = corrupt_with_interval_gains(
        corrupted, rows, context.baselines, solution_interval=n_times // 2
    )
    half = n_times // 2
    np.testing.assert_array_equal(
        out[:, :half],
        corrupt_with_gains(corrupted[:, :half], rows[0], context.baselines),
    )
    np.testing.assert_array_equal(
        out[:, half:],
        corrupt_with_gains(corrupted[:, half:], rows[1], context.baselines),
    )


def test_gain_amplitude_error_broadcasts():
    true = np.array([1.0, 2.0, 0.5 + 0.5j])
    solved = np.stack([true, 1.1 * true])  # second interval 10% high
    assert gain_amplitude_error(solved, true) == pytest.approx(0.1)
    assert gain_amplitude_error(true, true) == 0.0
    # phase differences do not contribute
    assert gain_amplitude_error(true * np.exp(0.3j), true) == pytest.approx(
        0.0, abs=1e-12
    )


def test_selfcal_schedule_matches_solution_interval():
    schedule = selfcal_schedule(SelfCalConfig(solution_interval=4))
    assert schedule.n_intervals(16) == 4
    whole = selfcal_schedule(SelfCalConfig(solution_interval=0))
    assert whole.n_intervals(16) == 1


def test_config_validation():
    with pytest.raises(ValueError):
        SelfCalConfig(n_cycles=0)
    with pytest.raises(ValueError):
        SelfCalConfig(n_major_per_cycle=0)
    with pytest.raises(ValueError):
        SelfCalConfig(solution_interval=-1)
    with pytest.raises(ValueError):
        SelfCalConfig(major_gain=0.0)


def test_rejects_wrong_visibility_shape(harness):
    context, corrupted, _ = harness
    with pytest.raises(ValueError, match="n_bl"):
        self_calibrate(context, corrupted[..., 0, 0], N_STATIONS)
