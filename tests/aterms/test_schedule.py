"""Unit tests for the A-term update schedule."""

import numpy as np
import pytest

from repro.aterms.schedule import ATermSchedule


def test_zero_interval_means_single_interval():
    s = ATermSchedule(0)
    assert s.interval_of(0) == 0
    assert s.interval_of(10_000) == 0
    assert s.n_intervals(8192) == 1
    assert s.boundaries(8192).size == 0


def test_paper_cadence_256():
    s = ATermSchedule(256)
    assert s.interval_of(0) == 0
    assert s.interval_of(255) == 0
    assert s.interval_of(256) == 1
    assert s.n_intervals(8192) == 32
    np.testing.assert_array_equal(
        s.boundaries(1024), np.array([256, 512, 768])
    )


def test_n_intervals_rounds_up():
    s = ATermSchedule(100)
    assert s.n_intervals(101) == 2
    assert s.n_intervals(100) == 1


def test_interval_of_array():
    s = ATermSchedule(4)
    out = s.interval_of(np.arange(10))
    np.testing.assert_array_equal(out, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2])


def test_same_interval():
    s = ATermSchedule(8)
    assert s.same_interval(0, 7)
    assert not s.same_interval(7, 8)


def test_negative_interval_rejected():
    with pytest.raises(ValueError):
        ATermSchedule(-1)
