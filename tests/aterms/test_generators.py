"""Unit tests for A-term generators."""

import numpy as np
import pytest

from repro.aterms.generators import (
    GainATerm,
    GaussianBeamATerm,
    IdentityATerm,
    IonosphereATerm,
    PointingErrorATerm,
    ProductATerm,
)


def test_identity_aterm_everywhere():
    gen = IdentityATerm()
    assert gen.is_identity
    out = gen.evaluate(0, 0, np.array([0.0, 0.01]), np.array([0.0, -0.01]))
    assert out.shape == (2, 2, 2)
    np.testing.assert_allclose(out[0], np.eye(2))
    np.testing.assert_allclose(out[1], np.eye(2))


def test_evaluate_raster_shape_and_centre():
    gen = GaussianBeamATerm(fwhm=0.05)
    field = gen.evaluate_raster(0, 0, 16, 0.04)
    assert field.shape == (16, 16, 2, 2)
    np.testing.assert_allclose(field[8, 8], np.eye(2))  # beam peak at centre


def test_gaussian_beam_fwhm_definition():
    gen = GaussianBeamATerm(fwhm=0.05)
    out = gen.evaluate(0, 0, np.array([0.025]), np.array([0.0]))
    assert out[0, 0, 0].real == pytest.approx(0.5, rel=1e-6)  # half power at fwhm/2


def test_gaussian_beam_deterministic_per_station_interval():
    gen = GaussianBeamATerm(fwhm=0.05, gain_drift_rms=0.1, seed=1)
    l = np.array([0.0])
    m = np.array([0.0])
    a = gen.evaluate(2, 3, l, m)
    b = gen.evaluate(2, 3, l, m)
    np.testing.assert_array_equal(a, b)
    c = gen.evaluate(2, 4, l, m)
    assert np.abs(a - c).max() > 0


def test_gaussian_beam_validation():
    with pytest.raises(ValueError):
        GaussianBeamATerm(fwhm=0.0)


def test_pointing_error_shifts_beam_peak():
    gen = PointingErrorATerm(fwhm=0.05, pointing_rms=0.01, seed=2)
    dl, dm = gen._offset(0, 0)
    at_offset = gen.evaluate(0, 0, np.array([dl]), np.array([dm]))
    at_centre = gen.evaluate(0, 0, np.array([0.0]), np.array([0.0]))
    assert at_offset[0, 0, 0].real == pytest.approx(1.0)
    assert at_centre[0, 0, 0].real < 1.0


def test_pointing_error_differs_between_stations():
    gen = PointingErrorATerm(fwhm=0.05, pointing_rms=0.01, seed=3)
    assert gen._offset(0, 0) != gen._offset(1, 0)


def test_ionosphere_unit_modulus():
    gen = IonosphereATerm(rms_rad=0.8, field_of_view=0.1, seed=4)
    field = gen.evaluate_raster(5, 2, 12, 0.1)
    np.testing.assert_allclose(np.abs(field[..., 0, 0]), 1.0, atol=1e-12)
    np.testing.assert_allclose(field[..., 0, 1], 0.0)


def test_ionosphere_zero_phase_at_centre():
    gen = IonosphereATerm(rms_rad=0.8, field_of_view=0.1, seed=4)
    phi = gen.phase(0, 0, np.array([0.0]), np.array([0.0]))
    assert phi[0] == pytest.approx(0.0)


def test_ionosphere_rms_scaling():
    weak = IonosphereATerm(rms_rad=0.1, field_of_view=0.1, seed=5)
    strong = IonosphereATerm(rms_rad=1.0, field_of_view=0.1, seed=5)
    l = np.linspace(-0.05, 0.05, 32)
    m = np.zeros_like(l)
    np.testing.assert_allclose(
        strong.phase(0, 0, l, m), 10.0 * weak.phase(0, 0, l, m), rtol=1e-9
    )


def test_ionosphere_validation():
    with pytest.raises(ValueError):
        IonosphereATerm(rms_rad=0.5, field_of_view=0.0)


def test_non_identity_generators_report_not_identity():
    for gen in (
        GaussianBeamATerm(fwhm=0.1),
        PointingErrorATerm(fwhm=0.1, pointing_rms=0.01),
        IonosphereATerm(rms_rad=0.1, field_of_view=0.1),
        GainATerm(np.array([1.0 + 1.0j, 2.0])),
    ):
        assert not gen.is_identity


# ------------------------------------------------------------ gain A-terms


def test_gain_aterm_corrupt_is_flat_scaled_identity():
    gains = np.array([0.5 + 0.5j, 2.0 - 1.0j])
    gen = GainATerm(gains, mode="corrupt")
    l = np.linspace(-0.01, 0.01, 4)
    out = gen.evaluate(1, 0, l, np.zeros_like(l))
    assert out.shape == (4, 2, 2)
    # direction-independent: the same g * I everywhere on the sky
    np.testing.assert_allclose(
        out, np.broadcast_to(gains[1] * np.eye(2), (4, 2, 2)), atol=1e-7
    )


def test_gain_aterm_calibrate_is_inverse_conjugate():
    gains = np.array([0.5 + 0.5j, 2.0 - 1.0j])
    gen = GainATerm(gains, mode="calibrate")
    out = gen.evaluate(0, 0, np.array([0.0]), np.array([0.0]))
    np.testing.assert_allclose(
        out[0], (1.0 / np.conj(gains[0])) * np.eye(2), atol=1e-7
    )


def test_gain_aterm_clamps_interval_to_last_solution():
    gains = np.array([[1.0, 2.0], [3.0, 4.0]])
    gen = GainATerm(gains, mode="corrupt")
    point = (np.array([0.0]), np.array([0.0]))
    np.testing.assert_allclose(gen.evaluate(0, 1, *point)[0], 3.0 * np.eye(2))
    # intervals beyond the solutions reuse the final row; negatives clamp to 0
    np.testing.assert_allclose(gen.evaluate(0, 99, *point)[0], 3.0 * np.eye(2))
    np.testing.assert_allclose(gen.evaluate(1, -1, *point)[0], 2.0 * np.eye(2))


def test_gain_aterm_validation():
    with pytest.raises(ValueError):
        GainATerm(np.ones(3), mode="invert")
    with pytest.raises(ValueError):
        GainATerm(np.array([1.0, 0.0]), mode="calibrate")
    with pytest.raises(ValueError):
        GainATerm(np.ones(2)).evaluate(5, 0, np.array([0.0]), np.array([0.0]))


def test_gain_aterm_corrupt_degrid_matches_post_corruption():
    """Degridding through a corrupt-mode GainATerm equals predicting clean
    and corrupting the visibilities afterwards — the A-term sandwich applies
    exactly ``g_p M conj(g_q)``."""
    from repro.calibration.gains import corrupt_with_gains, random_gains
    from repro.core.pipeline import IDG, IDGConfig
    from repro.imaging.pipeline import ImagingContext, make_ftprocessor
    from repro.telescope.observation import ska1_low_observation

    obs = ska1_low_observation(
        n_stations=6, n_times=8, n_channels=1, integration_time_s=120.0,
        max_radius_m=1500.0, seed=4,
    )
    gridspec = obs.fitting_gridspec(64, fill_factor=1.2)
    idg = IDG(gridspec, IDGConfig(subgrid_size=16, kernel_support=6, time_max=8))
    baselines = obs.array.baselines()
    context = ImagingContext(
        idg=idg, uvw_m=obs.uvw_m, frequencies_hz=obs.frequencies_hz,
        baselines=baselines,
    )
    processor = make_ftprocessor(context, kind="2d")
    model = np.zeros((64, 64))
    model[32 - 5, 32 + 6] = 3.0
    clean = processor.predict(model, aterms=None)
    gains = random_gains(6, amplitude_rms=0.2, phase_rms_rad=0.6, seed=7)
    corrupted = processor.predict(model, aterms=GainATerm(gains, mode="corrupt"))
    expected = corrupt_with_gains(clean, gains, baselines)
    scale = np.abs(expected).max()
    np.testing.assert_allclose(corrupted, expected, atol=2e-3 * scale)


def test_product_aterm_composes_in_order():
    gains = np.array([2.0 + 0.0j])
    beam = GaussianBeamATerm(fwhm=0.05)
    product = ProductATerm(GainATerm(gains), beam)
    l = np.array([0.01])
    m = np.array([-0.005])
    expected = GainATerm(gains).evaluate(0, 0, l, m) @ beam.evaluate(0, 0, l, m)
    np.testing.assert_allclose(product.evaluate(0, 0, l, m), expected)
    assert not product.is_identity
    assert ProductATerm(IdentityATerm(), IdentityATerm()).is_identity
    with pytest.raises(ValueError):
        ProductATerm()
