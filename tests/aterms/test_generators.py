"""Unit tests for A-term generators."""

import numpy as np
import pytest

from repro.aterms.generators import (
    GaussianBeamATerm,
    IdentityATerm,
    IonosphereATerm,
    PointingErrorATerm,
)


def test_identity_aterm_everywhere():
    gen = IdentityATerm()
    assert gen.is_identity
    out = gen.evaluate(0, 0, np.array([0.0, 0.01]), np.array([0.0, -0.01]))
    assert out.shape == (2, 2, 2)
    np.testing.assert_allclose(out[0], np.eye(2))
    np.testing.assert_allclose(out[1], np.eye(2))


def test_evaluate_raster_shape_and_centre():
    gen = GaussianBeamATerm(fwhm=0.05)
    field = gen.evaluate_raster(0, 0, 16, 0.04)
    assert field.shape == (16, 16, 2, 2)
    np.testing.assert_allclose(field[8, 8], np.eye(2))  # beam peak at centre


def test_gaussian_beam_fwhm_definition():
    gen = GaussianBeamATerm(fwhm=0.05)
    out = gen.evaluate(0, 0, np.array([0.025]), np.array([0.0]))
    assert out[0, 0, 0].real == pytest.approx(0.5, rel=1e-6)  # half power at fwhm/2


def test_gaussian_beam_deterministic_per_station_interval():
    gen = GaussianBeamATerm(fwhm=0.05, gain_drift_rms=0.1, seed=1)
    l = np.array([0.0])
    m = np.array([0.0])
    a = gen.evaluate(2, 3, l, m)
    b = gen.evaluate(2, 3, l, m)
    np.testing.assert_array_equal(a, b)
    c = gen.evaluate(2, 4, l, m)
    assert np.abs(a - c).max() > 0


def test_gaussian_beam_validation():
    with pytest.raises(ValueError):
        GaussianBeamATerm(fwhm=0.0)


def test_pointing_error_shifts_beam_peak():
    gen = PointingErrorATerm(fwhm=0.05, pointing_rms=0.01, seed=2)
    dl, dm = gen._offset(0, 0)
    at_offset = gen.evaluate(0, 0, np.array([dl]), np.array([dm]))
    at_centre = gen.evaluate(0, 0, np.array([0.0]), np.array([0.0]))
    assert at_offset[0, 0, 0].real == pytest.approx(1.0)
    assert at_centre[0, 0, 0].real < 1.0


def test_pointing_error_differs_between_stations():
    gen = PointingErrorATerm(fwhm=0.05, pointing_rms=0.01, seed=3)
    assert gen._offset(0, 0) != gen._offset(1, 0)


def test_ionosphere_unit_modulus():
    gen = IonosphereATerm(rms_rad=0.8, field_of_view=0.1, seed=4)
    field = gen.evaluate_raster(5, 2, 12, 0.1)
    np.testing.assert_allclose(np.abs(field[..., 0, 0]), 1.0, atol=1e-12)
    np.testing.assert_allclose(field[..., 0, 1], 0.0)


def test_ionosphere_zero_phase_at_centre():
    gen = IonosphereATerm(rms_rad=0.8, field_of_view=0.1, seed=4)
    phi = gen.phase(0, 0, np.array([0.0]), np.array([0.0]))
    assert phi[0] == pytest.approx(0.0)


def test_ionosphere_rms_scaling():
    weak = IonosphereATerm(rms_rad=0.1, field_of_view=0.1, seed=5)
    strong = IonosphereATerm(rms_rad=1.0, field_of_view=0.1, seed=5)
    l = np.linspace(-0.05, 0.05, 32)
    m = np.zeros_like(l)
    np.testing.assert_allclose(
        strong.phase(0, 0, l, m), 10.0 * weak.phase(0, 0, l, m), rtol=1e-9
    )


def test_ionosphere_validation():
    with pytest.raises(ValueError):
        IonosphereATerm(rms_rad=0.5, field_of_view=0.0)


def test_non_identity_generators_report_not_identity():
    for gen in (
        GaussianBeamATerm(fwhm=0.1),
        PointingErrorATerm(fwhm=0.1, pointing_rms=0.01),
        IonosphereATerm(rms_rad=0.1, field_of_view=0.1),
    ):
        assert not gen.is_identity
