"""Tests for the full-2x2 leakage A-term and its end-to-end IDG handling."""

import numpy as np
import pytest

from repro.aterms.generators import LeakageATerm
from repro.aterms.schedule import ATermSchedule
from repro.core.pipeline import IDG, IDGConfig
from repro.imaging.image import model_image_to_grid
from repro.sky.model import SkyModel
from repro.sky.simulate import predict_visibilities


def test_leakage_has_offdiagonal_terms():
    gen = LeakageATerm(leakage_rms=0.1, field_of_view=0.1, seed=1)
    field = gen.evaluate_raster(0, 0, 8, 0.1)
    assert np.abs(field[..., 0, 1]).max() > 0
    assert np.abs(field[..., 1, 0]).max() > 0
    np.testing.assert_allclose(field[..., 0, 0], 1.0)
    np.testing.assert_allclose(field[..., 1, 1], 1.0)


def test_leakage_deterministic_and_station_dependent():
    gen = LeakageATerm(leakage_rms=0.1, field_of_view=0.1, seed=2)
    l = np.array([0.01])
    m = np.array([0.0])
    np.testing.assert_array_equal(gen.evaluate(3, 1, l, m), gen.evaluate(3, 1, l, m))
    assert np.abs(gen.evaluate(3, 1, l, m) - gen.evaluate(4, 1, l, m)).max() > 0


def test_leakage_scales_with_rms():
    weak = LeakageATerm(leakage_rms=0.01, field_of_view=0.1, seed=3)
    strong = LeakageATerm(leakage_rms=0.1, field_of_view=0.1, seed=3)
    l = np.linspace(-0.05, 0.05, 16)
    m = np.zeros_like(l)
    np.testing.assert_allclose(
        strong.evaluate(0, 0, l, m)[..., 0, 1],
        10.0 * weak.evaluate(0, 0, l, m)[..., 0, 1],
        rtol=1e-9,
    )


def test_leakage_validation():
    with pytest.raises(ValueError):
        LeakageATerm(leakage_rms=0.1, field_of_view=0.0)
    with pytest.raises(ValueError):
        LeakageATerm(leakage_rms=-0.1, field_of_view=0.1)


def test_leakage_couples_polarizations(small_obs, small_baselines):
    """An unpolarised source observed through leakage produces non-zero
    cross-hand (XY/YX) visibilities."""
    gen = LeakageATerm(leakage_rms=0.1, field_of_view=0.1, seed=4)
    sky = SkyModel.single(0.01, 0.005, flux=1.0)
    vis = predict_visibilities(
        small_obs.uvw_m[:4], small_obs.frequencies_hz, sky,
        baselines=small_baselines[:4], aterms=gen,
    )
    assert np.abs(vis[..., 0, 1]).max() > 1e-3
    assert np.abs(vis[..., 1, 0]).max() > 1e-3


def test_idg_degrids_leakage_corrupted_data(small_obs, small_baselines,
                                            small_gridspec, snapped_source):
    """The full-Jones IDG path: degridding with the leakage A-term matches
    the corrupted oracle including the cross-hand products."""
    gen = LeakageATerm(leakage_rms=0.08, field_of_view=small_gridspec.image_size,
                       seed=5)
    schedule = ATermSchedule(16)
    l0, m0, flux = snapped_source
    sky = SkyModel.single(l0, m0, flux=flux)
    vis = predict_visibilities(
        small_obs.uvw_m, small_obs.frequencies_hz, sky,
        baselines=small_baselines, aterms=gen, schedule=schedule,
    )
    idg = IDG(small_gridspec, IDGConfig(subgrid_size=24, kernel_support=8,
                                        time_max=16))
    plan = idg.make_plan(small_obs.uvw_m, small_obs.frequencies_hz,
                         small_baselines, aterm_schedule=schedule)
    g, dl = small_gridspec.grid_size, small_gridspec.pixel_scale
    model = np.zeros((4, g, g), dtype=np.complex128)
    model[0, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = flux
    model[3, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = flux
    pred = idg.degrid(plan, small_obs.uvw_m,
                      model_image_to_grid(model, small_gridspec), aterms=gen)
    mask = ~plan.flagged
    sel = mask[..., None, None] & np.ones_like(vis, bool)
    err = np.abs(pred[sel] - vis[sel])
    rms = np.sqrt((err**2).mean()) / np.sqrt((np.abs(vis[sel]) ** 2).mean())
    assert rms < 5e-3
    # the cross-hands specifically are reproduced, not just the diagonals
    xy_err = np.abs(pred[..., 0, 1][mask] - vis[..., 0, 1][mask])
    assert xy_err.max() < 0.05 * np.abs(vis[..., 0, 0][mask]).max()


def test_awprojection_rejects_leakage(small_gridspec):
    """The scalar AW-projection baseline cannot handle leakage — the
    capability boundary the paper's Section VI-E argument rests on."""
    from repro.baselines.awprojection import AWProjectionGridder

    gen = LeakageATerm(leakage_rms=0.1, field_of_view=0.1, seed=6)
    aw = AWProjectionGridder(small_gridspec, aterms=gen, support=8)
    aw.set_w_range(0.0, 1.0)
    with pytest.raises(NotImplementedError):
        aw._scalar_aterm(0, 0)
