"""Unit tests for 2x2 Jones algebra."""

import numpy as np
import pytest

from repro.aterms.jones import (
    apply_adjoint_sandwich,
    apply_sandwich,
    frobenius_norm,
    hermitian,
    identity_jones,
    jones_inverse,
    jones_multiply,
)


def _random_field(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape + (2, 2)) + 1j * rng.standard_normal(shape + (2, 2))


def test_identity_jones_shape_and_value():
    eye = identity_jones((3, 4))
    assert eye.shape == (3, 4, 2, 2)
    np.testing.assert_allclose(eye[1, 2], np.eye(2))


def test_multiply_matches_matmul():
    a, b = _random_field((5,), 1), _random_field((5,), 2)
    out = jones_multiply(a, b)
    for k in range(5):
        np.testing.assert_allclose(out[k], a[k] @ b[k])


def test_multiply_broadcasts():
    a = _random_field((), 3)  # single matrix
    b = _random_field((4, 4), 4)
    out = jones_multiply(a, b)
    assert out.shape == (4, 4, 2, 2)
    np.testing.assert_allclose(out[2, 2], a @ b[2, 2])


def test_hermitian_involution():
    a = _random_field((6,), 5)
    np.testing.assert_allclose(hermitian(hermitian(a)), a)


def test_hermitian_reverses_products():
    a, b = _random_field((), 6), _random_field((), 7)
    np.testing.assert_allclose(
        hermitian(jones_multiply(a, b)), jones_multiply(hermitian(b), hermitian(a))
    )


def test_sandwich_identity_is_noop():
    b = _random_field((8,), 8)
    eye = identity_jones((8,))
    np.testing.assert_allclose(apply_sandwich(eye, b, eye), b)


def test_adjoint_sandwich_is_adjoint_of_sandwich():
    """<A_p X A_q^H, Y> == <X, A_p^H Y A_q> under the Frobenius inner
    product — the identity that makes gridding the adjoint of degridding."""
    a_p, a_q = _random_field((), 9), _random_field((), 10)
    x, y = _random_field((), 11), _random_field((), 12)
    lhs = np.vdot(apply_sandwich(a_p, x, a_q), y)
    rhs = np.vdot(x, apply_adjoint_sandwich(a_p, y, a_q))
    assert lhs == pytest.approx(rhs)


def test_inverse_multiplies_to_identity():
    a = _random_field((10,), 13)
    inv = jones_inverse(a)
    prod = jones_multiply(a, inv)
    np.testing.assert_allclose(prod, identity_jones((10,)), atol=1e-10)


def test_inverse_rejects_singular():
    singular = np.zeros((2, 2), dtype=complex)
    with pytest.raises(np.linalg.LinAlgError):
        jones_inverse(singular)


def test_frobenius_norm():
    a = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=complex)
    assert frobenius_norm(a) == pytest.approx(np.sqrt(2))
    field = _random_field((3,), 14)
    np.testing.assert_allclose(
        frobenius_norm(field), [np.linalg.norm(field[k]) for k in range(3)]
    )
