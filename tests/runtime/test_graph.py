"""StageGraph execution: results, overlap plumbing, error propagation."""

import threading
import time

import pytest

from repro.runtime import CreditGate, StageGraph, Telemetry


def _run_with_watchdog(graph, timeout=30.0):
    """Run a graph on a worker thread; fail the test on deadlock instead of
    hanging the suite."""
    result = {}

    def target():
        try:
            result["telemetry"] = graph.run()
        except BaseException as exc:  # noqa: B036 — test captures everything
            result["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout)
    assert not thread.is_alive(), "pipeline deadlocked"
    return result


def test_linear_pipeline_computes():
    out = []
    graph = StageGraph("p", n_buffers=2)
    graph.add_source("src", range(10))
    graph.add_stage("double", lambda seq, x: 2 * x)
    graph.add_stage("inc", lambda seq, x: x + 1)
    graph.add_sink("collect", lambda seq, x: out.append((seq, x)))
    telemetry = graph.run()
    assert sorted(out) == [(k, 2 * k + 1) for k in range(10)]
    assert telemetry.stages == ("src", "double", "inc", "collect")
    for stage in telemetry.stages:
        assert len(telemetry.spans(stage)) == 10


def test_multi_worker_stage_preserves_payloads():
    lock = threading.Lock()
    out = []

    def slow_square(seq, x):
        time.sleep(0.001 * (x % 3))
        return x * x

    def collect(seq, x):
        with lock:
            out.append((seq, x))

    graph = StageGraph("p", n_buffers=4)
    graph.add_source("src", range(20))
    graph.add_stage("square", slow_square, workers=3)
    graph.add_sink("collect", collect)
    graph.run()
    assert sorted(out) == [(k, k * k) for k in range(20)]


def test_empty_source_completes():
    graph = StageGraph("p")
    graph.add_source("src", [])
    graph.add_sink("sink", lambda seq, x: x)
    telemetry = graph.run()
    assert telemetry.spans() == ()


def test_stage_error_propagates_and_unblocks():
    def explode(seq, x):
        if x == 5:
            raise RuntimeError("work group 5 failed")
        time.sleep(0.002)
        return x

    graph = StageGraph("p", n_buffers=2)
    graph.add_source("src", range(100))
    graph.add_stage("maybe", explode)
    graph.add_sink("sink", lambda seq, x: x)
    result = _run_with_watchdog(graph)
    assert isinstance(result.get("error"), RuntimeError)
    assert "work group 5" in str(result["error"])


def test_sink_error_unblocks_gated_source():
    """A failing terminal stage must tear down a credit-gated producer too."""
    gate = CreditGate(2)

    def gated():
        for k in range(50):
            gate.acquire()
            yield k

    def bad_sink(seq, x):
        raise ValueError("sink down")  # never releases credits

    graph = StageGraph("p", n_buffers=2)
    graph.add_abortable(gate)
    graph.add_source("src", gated())
    graph.add_stage("id", lambda seq, x: x)
    graph.add_sink("sink", bad_sink)
    result = _run_with_watchdog(graph)
    assert isinstance(result.get("error"), ValueError)


def test_source_error_propagates():
    def items():
        yield 1
        raise OSError("source died")

    graph = StageGraph("p")
    graph.add_source("src", items())
    graph.add_sink("sink", lambda seq, x: x)
    result = _run_with_watchdog(graph)
    assert isinstance(result.get("error"), OSError)


def test_run_collects_queue_stats():
    graph = StageGraph("p", n_buffers=2, telemetry=Telemetry())
    graph.add_source("src", range(5))
    graph.add_sink("sink", lambda seq, x: x)
    telemetry = graph.run()
    assert [q.name for q in telemetry.queues] == ["src->sink"]
    assert telemetry.queues[0].n_put == 5
    assert telemetry.queues[0].n_get == 5


def test_graph_validation():
    graph = StageGraph("p")
    with pytest.raises(ValueError):
        graph.add_stage("s", lambda seq, x: x)  # no source yet
    graph.add_source("src", [])
    with pytest.raises(ValueError):
        graph.add_source("src2", [])  # only one source
    with pytest.raises(ValueError):
        graph.add_stage("s", lambda seq, x: x, workers=0)
    with pytest.raises(ValueError):
        graph.run()  # no downstream stage
    with pytest.raises(ValueError):
        StageGraph("p", n_buffers=0)


def test_run_is_single_shot():
    graph = StageGraph("p")
    graph.add_source("src", range(3))
    graph.add_sink("sink", lambda seq, x: x)
    graph.run()
    with pytest.raises(RuntimeError):
        graph.run()


def test_causal_error_wins_shutdown_race():
    """The first *causal* exception must be re-raised even when another
    thread loses the teardown unwind race and raises afterwards: here the
    consumer fails first, and the producer then trips over state the abort
    invalidated.  Regression for the shutdown-ordering race where whichever
    thread happened to record its exception first won."""
    graph = StageGraph("p", n_buffers=1)

    def items():
        yield 0
        # Block until the teardown (triggered by the sink's failure) is in
        # flight, then fail "because" of it — deterministically losing the
        # old record-first race.
        assert graph._aborting.wait(10.0)
        raise RuntimeError("secondary: tripped over teardown")

    graph.add_source("src", items())
    graph.add_stage("passthrough", lambda seq, x: x)

    def sink(seq, x):
        raise ValueError("causal consumer failure")

    graph.add_sink("sink", sink)
    result = _run_with_watchdog(graph)
    assert isinstance(result.get("error"), ValueError)
    assert "causal" in str(result["error"])
    # the secondary exception is kept for debugging, not raised
    assert any(
        isinstance(exc, RuntimeError) and "secondary" in str(exc)
        for exc in graph.secondary_errors
    )


def test_worker_error_during_teardown_is_secondary():
    """A stage worker that fails after the abort began is classified as
    secondary; the sink's causal error still wins."""
    graph = StageGraph("p", n_buffers=2)
    graph.add_source("src", range(8))

    def stage(seq, x):
        if seq >= 1:
            assert graph._aborting.wait(10.0)
            raise OSError("secondary: shared state torn down")
        return x

    graph.add_stage("stage", stage, workers=2)

    def sink(seq, x):
        raise KeyError("causal")

    graph.add_sink("sink", sink)
    result = _run_with_watchdog(graph)
    assert isinstance(result.get("error"), KeyError)
    assert any(isinstance(exc, OSError) for exc in graph.secondary_errors)


def test_external_abort_raises_pipeline_aborted():
    """An abort with no recorded cause must surface as PipelineAborted, not
    return a silently-partial result."""
    from repro.runtime import PipelineAborted

    started = threading.Event()

    def items():
        yield 0
        started.set()
        while True:
            yield 1
            time.sleep(0.001)

    graph = StageGraph("p", n_buffers=1)
    graph.add_source("src", items())
    graph.add_sink("sink", lambda seq, x: x)
    result = {}

    def target():
        try:
            result["telemetry"] = graph.run()
        except BaseException as exc:  # noqa: B036
            result["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    assert started.wait(10.0)
    graph.abort()
    thread.join(10.0)
    assert not thread.is_alive(), "abort did not unwind the pipeline"
    assert isinstance(result.get("error"), PipelineAborted)


def test_concurrent_run_admits_exactly_one_thread():
    """Regression: the single-shot guard is check-and-set under a lock, so
    two threads racing into run() cannot both pass it (idgsan-reported
    TOCTOU — both used to observe _ran=False and run the pipeline twice)."""
    graph = StageGraph("p", n_buffers=1)
    graph.add_source("src", range(8))
    graph.add_sink("sink", lambda seq, x: x)

    barrier = threading.Barrier(4)
    outcomes = []
    outcomes_lock = threading.Lock()

    def racer():
        barrier.wait()
        try:
            graph.run()
            with outcomes_lock:
                outcomes.append("ran")
        except RuntimeError:
            with outcomes_lock:
                outcomes.append("rejected")

    threads = [
        threading.Thread(target=racer, daemon=True) for _ in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(10.0)
    assert not any(t.is_alive() for t in threads)
    assert sorted(outcomes) == ["ran", "rejected", "rejected", "rejected"]
