"""Unit tests for the fault-injection harness and the retry/quarantine layer
(:mod:`repro.runtime.faults`, :mod:`repro.runtime.recovery`)."""

import pytest

from repro.runtime import (
    CorruptDataError,
    DeadLetter,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    Quarantined,
    RetryPolicy,
    Telemetry,
    WorkGroupRunner,
)

# --------------------------------------------------------------- FaultSpec


def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(stage="gridder", group=0, kind="explode")
    with pytest.raises(ValueError):
        FaultSpec(stage="gridder", group=0, times=0)
    with pytest.raises(ValueError):
        FaultSpec(stage="gridder", group=0, times=-2)
    with pytest.raises(ValueError):
        FaultSpec(stage="gridder", group=0, kind="delay", delay_s=-1.0)
    assert FaultSpec(stage="gridder", group=0, times=-1).times == -1


def test_fault_plan_rejects_duplicate_targets():
    spec = FaultSpec(stage="gridder", group=3)
    with pytest.raises(ValueError):
        FaultPlan([spec, FaultSpec(stage="gridder", group=3, kind="corrupt")])


# --------------------------------------------------------------- FaultPlan


def test_fire_counts_attempts_and_expires():
    plan = FaultPlan.single("gridder", 2, times=2)
    with pytest.raises(InjectedFault):
        plan.fire("gridder", 2)
    with pytest.raises(InjectedFault):
        plan.fire("gridder", 2)
    plan.fire("gridder", 2)  # third attempt succeeds
    assert plan.attempts("gridder", 2) == 3
    # untargeted keys are never counted and never fault
    plan.fire("adder", 2)
    plan.fire("gridder", 0)
    assert plan.attempts("adder", 2) == 0


def test_permanent_fault_never_expires():
    plan = FaultPlan.single("adder", 0, times=-1)
    for _ in range(5):
        with pytest.raises(InjectedFault):
            plan.fire("adder", 0)


def test_corrupt_fault_arms_result_screen():
    plan = FaultPlan.single("subgrid_fft", 1, kind="corrupt", times=1)
    plan.fire("subgrid_fft", 1)  # no raise at entry
    with pytest.raises(CorruptDataError):
        plan.screen("subgrid_fft", 1, "payload")
    # second attempt is clean and the screen passes the result through
    plan.fire("subgrid_fft", 1)
    assert plan.screen("subgrid_fft", 1, "payload") == "payload"


def test_delay_fault_succeeds(monkeypatch):
    naps = []
    import repro.runtime.faults as faults_mod

    monkeypatch.setattr(faults_mod.time, "sleep", naps.append)
    plan = FaultPlan.single("gridder", 0, kind="delay", delay_s=0.25)
    plan.fire("gridder", 0)
    assert naps == [0.25]


def test_crash_fault_is_base_exception():
    plan = FaultPlan.single("gridder", 0, kind="crash")
    with pytest.raises(InjectedCrash):
        plan.fire("gridder", 0)
    assert not issubclass(InjectedCrash, Exception)


def test_random_plan_is_seed_deterministic():
    kwargs = dict(stages=("gridder", "adder"), n_groups=40, rate=0.3,
                  kinds=("raise", "corrupt"))
    a = FaultPlan.random(7, **kwargs)
    b = FaultPlan.random(7, **kwargs)
    assert a.specs == b.specs
    assert len(a.specs) > 0
    assert FaultPlan.random(7, stages=("gridder",), n_groups=50, rate=0.0).specs == ()
    everything = FaultPlan.random(7, stages=("gridder",), n_groups=9, rate=1.0)
    assert len(everything.specs) == 9


# -------------------------------------------------------------- RetryPolicy


def test_retry_policy_backoff_schedule():
    policy = RetryPolicy(max_retries=4, backoff_s=0.1, backoff_factor=2.0,
                         max_backoff_s=0.3)
    assert policy.enabled
    assert policy.backoff(1) == pytest.approx(0.1)
    assert policy.backoff(2) == pytest.approx(0.2)
    assert policy.backoff(3) == pytest.approx(0.3)  # capped
    assert policy.backoff(4) == pytest.approx(0.3)
    with pytest.raises(ValueError):
        policy.backoff(0)


def test_retry_policy_validation():
    assert not RetryPolicy().enabled
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_s=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)


# ---------------------------------------------------------- WorkGroupRunner


def _fast_policy(max_retries):
    return RetryPolicy(max_retries=max_retries, backoff_s=0.0)


def test_runner_recovers_from_transient_fault():
    faults = FaultPlan.single("gridder", 0, times=2)
    telemetry = Telemetry()
    runner = WorkGroupRunner(_fast_policy(3), faults=faults, telemetry=telemetry)
    result = runner.run("gridder", 0, lambda: "ok",
                        start=0, stop=4, n_visibilities=64)
    assert result == "ok"
    assert runner.report.ok
    assert runner.report.n_retries == 2
    assert telemetry.counters["retries"] == 2


def test_runner_quarantines_on_budget_exhaustion():
    faults = FaultPlan.single("gridder", 1, times=-1)
    telemetry = Telemetry()
    runner = WorkGroupRunner(_fast_policy(2), faults=faults, telemetry=telemetry)
    result = runner.run("gridder", 1, lambda: "never",
                        start=4, stop=8, n_visibilities=128)
    assert isinstance(result, Quarantined)
    assert (result.group, result.start, result.stop) == (1, 4, 8)
    report = runner.report
    assert not report.ok
    assert report.n_dead_letters == 1
    letter = report.dead_letters[0]
    assert isinstance(letter, DeadLetter)
    assert letter.stage == "gridder"
    assert letter.attempts == 3  # first try + 2 retries
    assert letter.n_visibilities == 128
    assert "InjectedFault" in letter.error
    assert report.n_visibilities_lost == 128
    assert report.excluded_items() == ((4, 8),)
    assert telemetry.counters["dead_letters"] == 1


def test_runner_quarantines_real_exceptions_too():
    calls = []

    def flaky():
        calls.append(1)
        raise ValueError("genuine bug")

    runner = WorkGroupRunner(_fast_policy(1))
    result = runner.run("adder", 0, flaky, start=0, stop=2, n_visibilities=8)
    assert isinstance(result, Quarantined)
    assert len(calls) == 2
    assert "ValueError" in runner.report.dead_letters[0].error


def test_runner_never_swallows_crash():
    faults = FaultPlan.single("gridder", 0, kind="crash")
    runner = WorkGroupRunner(_fast_policy(5), faults=faults)
    with pytest.raises(InjectedCrash):
        runner.run("gridder", 0, lambda: "ok", start=0, stop=1,
                   n_visibilities=4)
    assert runner.report.ok  # a crash is not a dead letter


def test_report_weight_adjustment_and_summary():
    faults = FaultPlan.single("degridder", 0, times=-1)
    runner = WorkGroupRunner(_fast_policy(1), faults=faults)
    runner.run("degridder", 0, lambda: None, start=0, stop=3, n_visibilities=100)
    report = runner.report
    assert report.adjusted_weight_sum(1000.0) == pytest.approx(900.0)
    assert report.adjusted_weight_sum(50.0) == 0.0  # floored
    text = report.summary()
    assert "1 dead-lettered" in text
    assert "degridder" in text
