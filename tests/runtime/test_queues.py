"""Channel and CreditGate semantics: backpressure, shutdown, abort."""

import threading
import time

import pytest

from repro.runtime import Channel, ChannelClosed, CreditGate, PipelineAborted
from repro.runtime.telemetry import Telemetry


def test_channel_fifo_and_close():
    ch = Channel("t", capacity=4)
    for k in range(3):
        ch.put(k)
    ch.producer_done()
    assert [ch.get(), ch.get(), ch.get()] == [0, 1, 2]
    with pytest.raises(ChannelClosed):
        ch.get()
    assert ch.closed


def test_channel_validation():
    with pytest.raises(ValueError):
        Channel("t", capacity=0)
    with pytest.raises(ValueError):
        Channel("t", capacity=1, n_producers=0)


def test_channel_backpressure_blocks_put():
    ch = Channel("t", capacity=1)
    ch.put(0)
    unblocked = threading.Event()

    def producer():
        ch.put(1)  # must block until the consumer drains
        unblocked.set()

    thread = threading.Thread(target=producer, daemon=True)
    thread.start()
    time.sleep(0.05)
    assert not unblocked.is_set(), "put returned despite a full channel"
    assert ch.get() == 0
    thread.join(5.0)
    assert unblocked.is_set()
    assert ch.get() == 1


def test_channel_multiple_producers_close_after_last():
    ch = Channel("t", capacity=8, n_producers=2)
    ch.put("a")
    ch.producer_done()
    assert ch.get() == "a"
    assert not ch.closed  # one producer still live
    ch.producer_done()
    with pytest.raises(ChannelClosed):
        ch.get()


def test_channel_abort_wakes_blocked_get():
    ch = Channel("t", capacity=1)
    result = {}

    def consumer():
        try:
            ch.get()
        except PipelineAborted as exc:
            result["exc"] = exc

    thread = threading.Thread(target=consumer, daemon=True)
    thread.start()
    time.sleep(0.05)
    ch.abort()
    thread.join(5.0)
    assert not thread.is_alive()
    assert isinstance(result["exc"], PipelineAborted)


def test_channel_abort_wakes_blocked_put():
    ch = Channel("t", capacity=1)
    ch.put(0)
    result = {}

    def producer():
        try:
            ch.put(1)
        except PipelineAborted as exc:
            result["exc"] = exc

    thread = threading.Thread(target=producer, daemon=True)
    thread.start()
    time.sleep(0.05)
    ch.abort()
    thread.join(5.0)
    assert not thread.is_alive()
    assert isinstance(result["exc"], PipelineAborted)


def test_channel_stats_and_gauges():
    tm = Telemetry()
    ch = Channel("grid->fft", capacity=2, telemetry=tm)
    ch.put(0)
    ch.put(1)
    ch.get()
    ch.get()
    ch.producer_done()
    stats = ch.stats()
    assert stats.name == "grid->fft"
    assert stats.capacity == 2
    assert stats.n_put == 2 and stats.n_get == 2
    assert stats.max_depth == 2
    assert 0.0 <= stats.occupancy <= 1.0
    # depth gauges were recorded for every put/get
    names = {g.name for g in tm._gauges}
    assert names == {"queue:grid->fft"}


def test_credit_gate_bounds_in_flight():
    gate = CreditGate(2)
    gate.acquire()
    gate.acquire()
    assert gate.in_flight() == 2
    acquired = threading.Event()

    def third():
        gate.acquire()
        acquired.set()

    thread = threading.Thread(target=third, daemon=True)
    thread.start()
    time.sleep(0.05)
    assert not acquired.is_set(), "gate handed out more credits than it has"
    gate.release()
    thread.join(5.0)
    assert acquired.is_set()
    assert gate.in_flight() == 2


def test_credit_gate_abort_wakes_acquire():
    gate = CreditGate(1)
    gate.acquire()
    result = {}

    def blocked():
        try:
            gate.acquire()
        except PipelineAborted as exc:
            result["exc"] = exc

    thread = threading.Thread(target=blocked, daemon=True)
    thread.start()
    time.sleep(0.05)
    gate.abort()
    thread.join(5.0)
    assert not thread.is_alive()
    assert isinstance(result["exc"], PipelineAborted)


def test_credit_gate_validation():
    with pytest.raises(ValueError):
        CreditGate(0)


# ------------------------------------------------------ waiter introspection


def test_channel_waiters_empty_when_idle():
    ch = Channel("t", capacity=2)
    snapshot = ch.waiters()
    assert snapshot.put == () and snapshot.get == ()
    assert snapshot.owner is None


def test_channel_waiters_reports_blocked_put():
    ch = Channel("t", capacity=1)
    ch.put(0)
    parked = threading.Event()

    def producer():
        try:
            ch.put(1)
        except PipelineAborted:
            pass

    thread = threading.Thread(target=producer, name="blocked-put", daemon=True)
    thread.start()
    deadline = time.monotonic() + 5.0
    while not ch.waiters().put and time.monotonic() < deadline:
        time.sleep(0.005)
    snapshot = ch.waiters()
    assert len(snapshot.put) == 1
    info = snapshot.put[0]
    assert info.ident == thread.ident
    assert info.name == "blocked-put"
    assert snapshot.get == ()
    ch.abort()
    thread.join(5.0)
    assert ch.waiters().put == ()


def test_channel_waiters_reports_blocked_get():
    ch = Channel("t", capacity=1)
    result = {}

    def consumer():
        try:
            result["item"] = ch.get()
        except PipelineAborted:
            pass

    thread = threading.Thread(target=consumer, name="blocked-get", daemon=True)
    thread.start()
    deadline = time.monotonic() + 5.0
    while not ch.waiters().get and time.monotonic() < deadline:
        time.sleep(0.005)
    snapshot = ch.waiters()
    assert [w.name for w in snapshot.get] == ["blocked-get"]
    ch.put(41)
    thread.join(5.0)
    assert result["item"] == 41
    assert ch.waiters().get == ()


def test_channel_waiters_is_nonblocking_while_lock_held():
    """The watchdog must be able to snapshot a channel whose lock is held —
    exactly the state it inspects during a suspected deadlock."""
    ch = Channel("t", capacity=1)
    with ch._cond:  # simulate a thread wedged inside a locked region
        snapshot = ch.waiters()  # must return, not deadlock
        assert snapshot.owner is None or isinstance(snapshot.owner, int)


def test_channel_waiter_since_is_call_start():
    ch = Channel("t", capacity=1)
    ch.put(0)
    t_before = time.monotonic()

    def producer():
        try:
            ch.put(1)
        except PipelineAborted:
            pass

    thread = threading.Thread(target=producer, daemon=True)
    thread.start()
    deadline = time.monotonic() + 5.0
    while not ch.waiters().put and time.monotonic() < deadline:
        time.sleep(0.005)
    time.sleep(0.1)
    info = ch.waiters().put[0]
    # `since` anchors at the start of the blocking call, so age keeps
    # growing across the internal wait loop's re-registrations
    assert time.monotonic() - info.since >= 0.1
    assert info.since >= t_before - 1.0
    ch.abort()
    thread.join(5.0)


def test_credit_gate_waiters():
    gate = CreditGate(1)
    gate.acquire()
    assert gate.waiters() == ()

    def blocked():
        try:
            gate.acquire()
        except PipelineAborted:
            pass

    thread = threading.Thread(target=blocked, name="blocked-credit", daemon=True)
    thread.start()
    deadline = time.monotonic() + 5.0
    while not gate.waiters() and time.monotonic() < deadline:
        time.sleep(0.005)
    assert [w.name for w in gate.waiters()] == ["blocked-credit"]
    gate.release()
    thread.join(5.0)
    assert gate.waiters() == ()
