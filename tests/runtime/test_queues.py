"""Channel and CreditGate semantics: backpressure, shutdown, abort."""

import threading
import time

import pytest

from repro.runtime import Channel, ChannelClosed, CreditGate, PipelineAborted
from repro.runtime.telemetry import Telemetry


def test_channel_fifo_and_close():
    ch = Channel("t", capacity=4)
    for k in range(3):
        ch.put(k)
    ch.producer_done()
    assert [ch.get(), ch.get(), ch.get()] == [0, 1, 2]
    with pytest.raises(ChannelClosed):
        ch.get()
    assert ch.closed


def test_channel_validation():
    with pytest.raises(ValueError):
        Channel("t", capacity=0)
    with pytest.raises(ValueError):
        Channel("t", capacity=1, n_producers=0)


def test_channel_backpressure_blocks_put():
    ch = Channel("t", capacity=1)
    ch.put(0)
    unblocked = threading.Event()

    def producer():
        ch.put(1)  # must block until the consumer drains
        unblocked.set()

    thread = threading.Thread(target=producer, daemon=True)
    thread.start()
    time.sleep(0.05)
    assert not unblocked.is_set(), "put returned despite a full channel"
    assert ch.get() == 0
    thread.join(5.0)
    assert unblocked.is_set()
    assert ch.get() == 1


def test_channel_multiple_producers_close_after_last():
    ch = Channel("t", capacity=8, n_producers=2)
    ch.put("a")
    ch.producer_done()
    assert ch.get() == "a"
    assert not ch.closed  # one producer still live
    ch.producer_done()
    with pytest.raises(ChannelClosed):
        ch.get()


def test_channel_abort_wakes_blocked_get():
    ch = Channel("t", capacity=1)
    result = {}

    def consumer():
        try:
            ch.get()
        except PipelineAborted as exc:
            result["exc"] = exc

    thread = threading.Thread(target=consumer, daemon=True)
    thread.start()
    time.sleep(0.05)
    ch.abort()
    thread.join(5.0)
    assert not thread.is_alive()
    assert isinstance(result["exc"], PipelineAborted)


def test_channel_abort_wakes_blocked_put():
    ch = Channel("t", capacity=1)
    ch.put(0)
    result = {}

    def producer():
        try:
            ch.put(1)
        except PipelineAborted as exc:
            result["exc"] = exc

    thread = threading.Thread(target=producer, daemon=True)
    thread.start()
    time.sleep(0.05)
    ch.abort()
    thread.join(5.0)
    assert not thread.is_alive()
    assert isinstance(result["exc"], PipelineAborted)


def test_channel_stats_and_gauges():
    tm = Telemetry()
    ch = Channel("grid->fft", capacity=2, telemetry=tm)
    ch.put(0)
    ch.put(1)
    ch.get()
    ch.get()
    ch.producer_done()
    stats = ch.stats()
    assert stats.name == "grid->fft"
    assert stats.capacity == 2
    assert stats.n_put == 2 and stats.n_get == 2
    assert stats.max_depth == 2
    assert 0.0 <= stats.occupancy <= 1.0
    # depth gauges were recorded for every put/get
    names = {g.name for g in tm._gauges}
    assert names == {"queue:grid->fft"}


def test_credit_gate_bounds_in_flight():
    gate = CreditGate(2)
    gate.acquire()
    gate.acquire()
    assert gate.in_flight() == 2
    acquired = threading.Event()

    def third():
        gate.acquire()
        acquired.set()

    thread = threading.Thread(target=third, daemon=True)
    thread.start()
    time.sleep(0.05)
    assert not acquired.is_set(), "gate handed out more credits than it has"
    gate.release()
    thread.join(5.0)
    assert acquired.is_set()
    assert gate.in_flight() == 2


def test_credit_gate_abort_wakes_acquire():
    gate = CreditGate(1)
    gate.acquire()
    result = {}

    def blocked():
        try:
            gate.acquire()
        except PipelineAborted as exc:
            result["exc"] = exc

    thread = threading.Thread(target=blocked, daemon=True)
    thread.start()
    time.sleep(0.05)
    gate.abort()
    thread.join(5.0)
    assert not thread.is_alive()
    assert isinstance(result["exc"], PipelineAborted)


def test_credit_gate_validation():
    with pytest.raises(ValueError):
        CreditGate(0)
