"""StreamingIDG: error propagation without deadlock and telemetry output.

Bit-exact serial equivalence (with A-terms, flags, w-offsets, wideband, and
multi-worker reordering) is pinned by the cross-executor conformance suite
in ``tests/parallel/test_executor_conformance.py``."""

import json
import threading

import numpy as np
import pytest

from repro.aterms.generators import GaussianBeamATerm
from repro.runtime import RuntimeConfig, StreamingIDG, modeled_schedule_jobs

GRID_STAGES = ("splitter", "gridder", "subgrid_fft", "adder")
DEGRID_STAGES = ("splitter", "subgrid_split", "subgrid_ifft", "degridder")


@pytest.fixture(scope="module")
def beam(small_gridspec):
    return GaussianBeamATerm(fwhm=1.5 * small_gridspec.image_size)


@pytest.fixture(scope="module")
def serial_grid(small_idg, small_plan, small_obs, single_source_vis, beam):
    return small_idg.grid(small_plan, small_obs.uvw_m, single_source_vis, aterms=beam)


def test_config_validation(small_idg):
    with pytest.raises(ValueError):
        RuntimeConfig(n_buffers=0)
    with pytest.raises(ValueError):
        RuntimeConfig(gridder_workers=-1)
    assert StreamingIDG(small_idg).config.n_buffers == 3


def test_emulated_transfers_bit_exact_with_extra_stages(
    small_idg, small_plan, small_obs, single_source_vis, beam, serial_grid
):
    """PCIe emulation inserts htod/dtoh stages without changing results."""
    engine = StreamingIDG(
        small_idg.with_config(work_group_size=5),
        RuntimeConfig(n_buffers=3, emulate_pcie_gbs=1000.0),
    )
    streamed = engine.grid(
        small_plan, small_obs.uvw_m, single_source_vis, aterms=beam
    )
    assert np.array_equal(streamed, serial_grid)
    assert engine.last_telemetry.stages == (
        "splitter", "htod", "gridder", "subgrid_fft", "dtoh", "adder"
    )
    degridded = engine.degrid(small_plan, small_obs.uvw_m, serial_grid, aterms=beam)
    assert np.array_equal(
        degridded, small_idg.degrid(small_plan, small_obs.uvw_m, serial_grid,
                                    aterms=beam)
    )
    assert engine.last_telemetry.stages == (
        "splitter", "subgrid_split", "htod", "subgrid_ifft", "degridder", "dtoh"
    )


def test_emulated_bandwidth_validation():
    with pytest.raises(ValueError):
        RuntimeConfig(emulate_pcie_gbs=0.0)


def test_chunk_transfer_bytes_positive(small_plan):
    from repro.runtime.streaming import chunk_transfer_bytes

    bytes_in, bytes_out = chunk_transfer_bytes(small_plan, 0, 5)
    assert bytes_in > 0 and bytes_out > 0
    n = small_plan.subgrid_size
    assert bytes_out == 5 * n * n * 4 * 8  # five complex64 subgrid quads


def test_grid_accepts_flags_and_existing_grid(small_idg, small_plan, small_obs,
                                              single_source_vis):
    flags = np.zeros(single_source_vis.shape[:3], dtype=bool)
    flags[0, :, :] = True
    serial = small_idg.grid(
        small_plan, small_obs.uvw_m, single_source_vis, flags=flags
    )
    engine = StreamingIDG(small_idg.with_config(work_group_size=5))
    out = small_idg.gridspec.allocate_grid(dtype=serial.dtype)
    returned = engine.grid(
        small_plan, small_obs.uvw_m, single_source_vis, grid=out, flags=flags
    )
    assert returned is out
    assert np.array_equal(out, serial)


def test_failing_work_group_propagates_without_deadlock(
    small_idg, small_plan, small_obs, single_source_vis, monkeypatch
):
    """Satellite: inject a failing work group; the run must re-raise promptly
    with every queue drained (no hung threads)."""
    backend_cls = type(small_idg.backend)
    real = backend_cls.grid_work_group

    def failing(self, plan, start, stop, *args, **kwargs):
        if start >= 10:
            raise RuntimeError(f"injected failure at work group {start}")
        return real(self, plan, start, stop, *args, **kwargs)

    monkeypatch.setattr(backend_cls, "grid_work_group", failing)
    engine = StreamingIDG(
        small_idg.with_config(work_group_size=5), RuntimeConfig(n_buffers=2)
    )
    result = {}

    def target():
        try:
            engine.grid(small_plan, small_obs.uvw_m, single_source_vis)
        except BaseException as exc:  # noqa: B036 — test captures everything
            result["error"] = exc

    before = threading.active_count()
    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(60.0)
    assert not thread.is_alive(), "streaming grid deadlocked after stage failure"
    assert isinstance(result.get("error"), RuntimeError)
    assert "injected failure" in str(result["error"])
    assert threading.active_count() <= before + 1  # no orphaned stage threads


def test_grid_shape_validation(small_idg, small_plan, small_obs, single_source_vis):
    engine = StreamingIDG(small_idg)
    with pytest.raises(ValueError):
        engine.grid(small_plan, small_obs.uvw_m, single_source_vis[:, :, :1])


def test_telemetry_spans_and_trace(small_idg, small_plan, small_obs,
                                   single_source_vis):
    engine = StreamingIDG(small_idg.with_config(work_group_size=5))
    engine.grid(small_plan, small_obs.uvw_m, single_source_vis)
    telemetry = engine.last_telemetry
    assert telemetry.stages == GRID_STAGES
    n_groups = len(list(small_plan.work_groups(5)))
    for stage in GRID_STAGES:
        assert len(telemetry.spans(stage)) == n_groups
    assert telemetry.counters["visibilities"] > 0
    assert telemetry.throughput() > 0
    # queue stats for both inter-stage hops plus gauges for the credit gate
    assert {q.name for q in telemetry.queues} == {
        "splitter->gridder", "gridder->subgrid_fft", "subgrid_fft->adder",
    }
    trace = json.loads(json.dumps(telemetry.chrome_trace()))
    span_names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
    assert set(GRID_STAGES) <= span_names
    gauge_names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "C"}
    assert "in_flight" in gauge_names


def test_degrid_telemetry_stages(small_idg, small_plan, small_obs, serial_grid):
    engine = StreamingIDG(small_idg.with_config(work_group_size=5))
    engine.degrid(small_plan, small_obs.uvw_m, serial_grid)
    assert engine.last_telemetry.stages == DEGRID_STAGES


def test_modeled_schedule_jobs_bridge(small_idg, small_plan, small_obs,
                                      single_source_vis):
    from repro.perfmodel.streams import schedule_buffers

    engine = StreamingIDG(
        small_idg.with_config(work_group_size=5), RuntimeConfig(n_buffers=1)
    )
    engine.grid(small_plan, small_obs.uvw_m, single_source_vis)
    jobs = modeled_schedule_jobs(
        engine.last_telemetry, ("gridder", "subgrid_fft", "adder")
    )
    assert len(jobs) == len(list(small_plan.work_groups(5)))
    assert all(h >= 0 and c >= 0 and d >= 0 for h, c, d in jobs)
    schedule = schedule_buffers(jobs, n_buffers=3)
    assert schedule.makespan > 0
