"""Failure-injection matrix: {serial, threads, streaming, processes}
executors x {gridder, subgrid_fft, adder} fault sites, plus the
process-executor kill matrix (worker SIGKILL mid-shard).

For every cell: a permanent fault on one work group, retries exhausted, must
yield exactly one dead letter with exact plan/visibility accounting, and the
surviving output must equal a clean run over the remaining work groups —
dropping a whole group leaves every other group's floating-point work
untouched, and every executor retires groups in plan order, so the
comparison is tight (rtol 1e-12).

The kill matrix covers the failure mode only processes have: the worker
*dies* (``kind="crash"`` faults SIGKILL the worker from inside).  A death
within the retry budget respawns the worker and converges to the bit-exact
clean result; an exhausted budget quarantines the in-flight group as a
``stage="worker"`` dead letter; an external SIGKILL without a tolerance
layer aborts fail-fast, leaving a prefix-closed checkpoint that resumes
bit-exactly (DESIGN.md §14)."""

import multiprocessing as mp
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.constants import COMPLEX_DTYPE
from repro.parallel import ParallelIDG
from repro.parallel.process import ProcessConfig, ProcessShardedIDG
from repro.runtime import (
    FaultPlan,
    RuntimeConfig,
    StreamingIDG,
    group_visibility_count,
)
from repro.runtime.checkpoint import load_checkpoint

WORK_GROUP_SIZE = 5
STAGES = ("gridder", "subgrid_fft", "adder")
EXECUTORS = ("serial", "threads", "streaming", "processes")
FAULT_GROUP = 1
MAX_RETRIES = 2


@pytest.fixture(scope="module")
def tolerant_idg(small_idg):
    return small_idg.with_config(
        work_group_size=WORK_GROUP_SIZE, max_retries=MAX_RETRIES,
        retry_backoff_s=0.0,
    )


@pytest.fixture(scope="module")
def groups(tolerant_idg, small_plan):
    return list(small_plan.work_groups(WORK_GROUP_SIZE))


def grid_excluding(idg, plan, uvw_m, vis, skip=()):
    """Reference result: the plain serial accumulation with the given work
    groups left out (what a run with those groups dead-lettered must equal)."""
    backend = idg.backend
    grid = idg.gridspec.allocate_grid(dtype=COMPLEX_DTYPE)
    for group, (start, stop) in enumerate(plan.work_groups(idg.config.work_group_size)):
        if group in skip:
            continue
        subgrids = backend.grid_work_group(
            plan, start, stop, uvw_m, vis, idg.taper,
            lmn=idg.lmn, aterm_fields=None, vis_batch=idg.config.vis_batch,
            channel_recurrence=idg.config.channel_recurrence,
            batched=idg.config.batched,
        )
        backend.add_subgrids(
            grid, plan, backend.subgrids_to_fourier(subgrids), start=start
        )
    return grid


def process_engine(idg, faults=None, **overrides):
    overrides.setdefault("n_procs", 2)
    overrides.setdefault("start_method", "fork")
    return ProcessShardedIDG(idg, ProcessConfig(**overrides), faults=faults)


def run_gridding(executor, idg, plan, uvw_m, vis, faults):
    if executor == "serial":
        grid = idg.grid(plan, uvw_m, vis, faults=faults)
        return grid, idg.last_fault_report
    if executor == "threads":
        engine = ParallelIDG(idg, n_workers=2, faults=faults)
        return engine.grid(plan, uvw_m, vis), engine.last_fault_report
    if executor == "processes":
        engine = process_engine(idg, faults=faults)
        return engine.grid(plan, uvw_m, vis), engine.last_fault_report
    engine = StreamingIDG(idg, RuntimeConfig(n_buffers=2), faults=faults)
    return engine.grid(plan, uvw_m, vis), engine.last_fault_report


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("stage", STAGES)
def test_matrix_dead_letter_accounting_and_surviving_output(
    executor, stage, tolerant_idg, small_plan, small_obs, single_source_vis,
    groups,
):
    faults = FaultPlan.single(stage, FAULT_GROUP, times=-1)
    grid, report = run_gridding(
        executor, tolerant_idg, small_plan, small_obs.uvw_m,
        single_source_vis, faults,
    )

    # exact dead-letter accounting
    assert report is not None
    assert report.n_dead_letters == 1
    letter = report.dead_letters[0]
    start, stop = groups[FAULT_GROUP]
    assert letter.stage == stage
    assert letter.group == FAULT_GROUP
    assert (letter.start, letter.stop) == (start, stop)
    assert letter.attempts == 1 + MAX_RETRIES
    assert letter.n_visibilities == group_visibility_count(small_plan, start, stop)
    assert report.n_retries == MAX_RETRIES
    assert report.n_groups == len(groups)
    assert report.n_groups_completed == len(groups) - 1
    if executor != "processes":
        # the injected fault consumed exactly the budgeted attempts (the
        # process executor's worker-side counters live in the children, so
        # the parent plan object never sees them)
        assert faults.attempts(stage, FAULT_GROUP) == 1 + MAX_RETRIES

    # surviving output == clean run over the unaffected work groups (every
    # executor retires groups in plan order, so the comparison is tight)
    expected = grid_excluding(
        tolerant_idg, small_plan, small_obs.uvw_m, single_source_vis,
        skip={FAULT_GROUP},
    )
    np.testing.assert_allclose(grid, expected, rtol=1e-12, atol=0.0)


@pytest.mark.parametrize("executor", EXECUTORS)
def test_transient_fault_retries_to_bit_exact_result(
    executor, tolerant_idg, small_plan, small_obs, single_source_vis,
):
    """A fault that clears within the retry budget must leave no trace in
    the output: bit-identical to the clean run."""
    clean, _ = run_gridding(
        executor, tolerant_idg, small_plan, small_obs.uvw_m,
        single_source_vis, faults=None,
    )
    faults = FaultPlan.single("gridder", 2, times=MAX_RETRIES)
    recovered, report = run_gridding(
        executor, tolerant_idg, small_plan, small_obs.uvw_m,
        single_source_vis, faults,
    )
    assert report.ok
    assert report.n_retries == MAX_RETRIES
    assert np.array_equal(recovered, clean)


@pytest.mark.parametrize("kind", ["raise", "corrupt"])
def test_corrupt_and_raise_kinds_both_quarantine(
    kind, tolerant_idg, small_plan, small_obs, single_source_vis, groups,
):
    faults = FaultPlan.single("subgrid_fft", 0, kind=kind, times=-1)
    engine = StreamingIDG(tolerant_idg, RuntimeConfig(n_buffers=2), faults=faults)
    engine.grid(small_plan, small_obs.uvw_m, single_source_vis)
    report = engine.last_fault_report
    assert report.n_dead_letters == 1
    expected_error = "CorruptDataError" if kind == "corrupt" else "InjectedFault"
    assert expected_error in report.dead_letters[0].error


@pytest.mark.parametrize("executor", EXECUTORS)
def test_degrid_dead_letter_leaves_block_zero(
    executor, tolerant_idg, small_plan, small_obs, groups,
):
    """A quarantined degrid work group leaves its visibility block zero and
    every other block identical to the clean prediction."""
    rng = np.random.default_rng(5)
    g = tolerant_idg.gridspec.grid_size
    model_grid = (
        rng.standard_normal((4, g, g)) + 1j * rng.standard_normal((4, g, g))
    ).astype(COMPLEX_DTYPE)
    clean = tolerant_idg.degrid(small_plan, small_obs.uvw_m, model_grid)

    faults = FaultPlan.single("degridder", FAULT_GROUP, times=-1)
    if executor == "serial":
        predicted = tolerant_idg.degrid(
            small_plan, small_obs.uvw_m, model_grid, faults=faults
        )
        report = tolerant_idg.last_fault_report
    elif executor == "threads":
        engine = ParallelIDG(tolerant_idg, n_workers=2, faults=faults)
        predicted = engine.degrid(small_plan, small_obs.uvw_m, model_grid)
        report = engine.last_fault_report
    elif executor == "processes":
        engine = process_engine(tolerant_idg, faults=faults)
        predicted = engine.degrid(small_plan, small_obs.uvw_m, model_grid)
        report = engine.last_fault_report
    else:
        engine = StreamingIDG(tolerant_idg, RuntimeConfig(n_buffers=2), faults=faults)
        predicted = engine.degrid(small_plan, small_obs.uvw_m, model_grid)
        report = engine.last_fault_report

    assert report.n_dead_letters == 1
    start, stop = groups[FAULT_GROUP]
    assert report.excluded_items() == ((start, stop),)

    # zero exactly the excluded items' blocks in the clean prediction
    expected = clean.copy()
    for row in small_plan.items[start:stop]:
        expected[
            row["baseline"],
            row["time_start"]:row["time_end"],
            row["channel_start"]:row["channel_end"],
        ] = 0
    np.testing.assert_allclose(predicted, expected, rtol=1e-12, atol=0.0)


# ------------------------------------------------------ process kill matrix


def test_worker_sigkill_within_budget_respawns_to_bit_exact(
    tolerant_idg, small_plan, small_obs, single_source_vis,
):
    """A ``crash`` fault SIGKILLs the worker mid-shard; one death is within
    the retry budget, so the parent respawns the shard, the replacement
    re-runs the in-flight group, and the result is bit-identical to clean."""
    clean = tolerant_idg.grid(small_plan, small_obs.uvw_m, single_source_vis)
    faults = FaultPlan.single("gridder", FAULT_GROUP, kind="crash", times=1)
    engine = process_engine(tolerant_idg, faults=faults)
    recovered = engine.grid(small_plan, small_obs.uvw_m, single_source_vis)
    report = engine.last_fault_report
    assert report is not None and report.ok
    assert report.n_retries >= 1  # the death charged one attempt
    assert engine.last_telemetry.counters["worker_respawns"] == 1
    assert np.array_equal(recovered, clean)


def test_worker_sigkill_budget_exhausted_dead_letters_exactly(
    tolerant_idg, small_plan, small_obs, single_source_vis, groups,
):
    """A worker that dies on every attempt exhausts the budget: exactly one
    ``stage="worker"`` dead letter for the in-flight group, exact attempt
    accounting, and the survivors equal the clean run without that group."""
    faults = FaultPlan.single("gridder", FAULT_GROUP, kind="crash", times=-1)
    engine = process_engine(tolerant_idg, faults=faults)
    grid = engine.grid(small_plan, small_obs.uvw_m, single_source_vis)
    report = engine.last_fault_report
    assert report is not None
    assert report.n_dead_letters == 1
    letter = report.dead_letters[0]
    start, stop = groups[FAULT_GROUP]
    assert letter.stage == "worker"
    assert letter.group == FAULT_GROUP
    assert (letter.start, letter.stop) == (start, stop)
    assert letter.attempts == 1 + MAX_RETRIES
    assert letter.n_visibilities == group_visibility_count(small_plan, start, stop)
    assert report.n_groups_completed == len(groups) - 1
    # every death respawned the shard: budgeted attempts, then quarantine
    assert engine.last_telemetry.counters["worker_respawns"] == 1 + MAX_RETRIES
    expected = grid_excluding(
        tolerant_idg, small_plan, small_obs.uvw_m, single_source_vis,
        skip={FAULT_GROUP},
    )
    assert np.array_equal(grid, expected)


def test_external_kill_failfast_checkpoint_is_prefix_closed_and_resumes(
    small_idg, small_plan, small_obs, single_source_vis, tmp_path,
):
    """SIGKILL a worker from outside with no tolerance layer: the run aborts
    fail-fast (so the master grid stops at a plan-order *prefix*), the abort
    checkpoint's completed set is prefix-closed, and resuming from it
    reproduces the uninterrupted serial grid bit-exactly (DESIGN.md §14 —
    only prefix-closed completed sets can resume without reassociating the
    floating-point accumulation)."""
    idg = small_idg.with_config(work_group_size=WORK_GROUP_SIZE)
    assert idg.config.max_retries == 0  # fail-fast: no runner, no respawn
    clean = idg.grid(small_plan, small_obs.uvw_m, single_source_vis)
    n_groups = len(list(small_plan.work_groups(WORK_GROUP_SIZE)))
    path = str(tmp_path / "killed.npz")
    engine = process_engine(
        idg, checkpoint_path=path, checkpoint_interval=1,
        emulate_compute_s=0.15,
    )
    before = set(mp.active_children())
    outcome = {}

    def target():
        try:
            engine.grid(small_plan, small_obs.uvw_m, single_source_vis)
            outcome["error"] = None
        except Exception as exc:
            outcome["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    deadline = time.monotonic() + 30.0
    victim = None
    while victim is None and time.monotonic() < deadline:
        workers = [p for p in mp.active_children() if p not in before]
        if workers:
            victim = workers[0]
        else:
            time.sleep(0.01)
    assert victim is not None, "no worker process appeared to kill"
    time.sleep(0.4)  # let a few groups retire so the prefix is non-trivial
    os.kill(victim.pid, signal.SIGKILL)
    thread.join(60.0)
    assert not thread.is_alive(), "executor hung after worker SIGKILL"
    assert outcome["error"] is not None, "worker death did not abort the run"
    assert "died" in str(outcome["error"])

    checkpoint = load_checkpoint(path)
    completed = checkpoint.completed_set
    assert completed == set(range(len(completed))), "not prefix-closed"
    assert len(completed) < n_groups

    resumed = process_engine(idg, resume_from=path).grid(
        small_plan, small_obs.uvw_m, single_source_vis
    )
    assert np.array_equal(resumed, clean)
