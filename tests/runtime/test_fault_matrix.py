"""Failure-injection matrix: {serial, threads, streaming} executors x
{gridder, subgrid_fft, adder} fault sites.

For every cell: a permanent fault on one work group, retries exhausted, must
yield exactly one dead letter with exact plan/visibility accounting, and the
surviving output must equal a clean run over the remaining work groups —
dropping a whole group leaves every other group's floating-point work
untouched, so the comparison is tight (rtol 1e-12; the thread-pool executor
merges in completion order, so it gets the differential-test tolerance
instead)."""

import numpy as np
import pytest

from repro.constants import COMPLEX_DTYPE
from repro.parallel import ParallelIDG
from repro.runtime import (
    FaultPlan,
    RuntimeConfig,
    StreamingIDG,
    group_visibility_count,
)

WORK_GROUP_SIZE = 5
STAGES = ("gridder", "subgrid_fft", "adder")
FAULT_GROUP = 1
MAX_RETRIES = 2


@pytest.fixture(scope="module")
def tolerant_idg(small_idg):
    return small_idg.with_config(
        work_group_size=WORK_GROUP_SIZE, max_retries=MAX_RETRIES,
        retry_backoff_s=0.0,
    )


@pytest.fixture(scope="module")
def groups(tolerant_idg, small_plan):
    return list(small_plan.work_groups(WORK_GROUP_SIZE))


def grid_excluding(idg, plan, uvw_m, vis, skip=()):
    """Reference result: the plain serial accumulation with the given work
    groups left out (what a run with those groups dead-lettered must equal)."""
    backend = idg.backend
    grid = idg.gridspec.allocate_grid(dtype=COMPLEX_DTYPE)
    for group, (start, stop) in enumerate(plan.work_groups(idg.config.work_group_size)):
        if group in skip:
            continue
        subgrids = backend.grid_work_group(
            plan, start, stop, uvw_m, vis, idg.taper,
            lmn=idg.lmn, aterm_fields=None, vis_batch=idg.config.vis_batch,
            channel_recurrence=idg.config.channel_recurrence,
            batched=idg.config.batched,
        )
        backend.add_subgrids(
            grid, plan, backend.subgrids_to_fourier(subgrids), start=start
        )
    return grid


def run_gridding(executor, idg, plan, uvw_m, vis, faults):
    if executor == "serial":
        grid = idg.grid(plan, uvw_m, vis, faults=faults)
        return grid, idg.last_fault_report
    if executor == "threads":
        engine = ParallelIDG(idg, n_workers=2, faults=faults)
        return engine.grid(plan, uvw_m, vis), engine.last_fault_report
    engine = StreamingIDG(idg, RuntimeConfig(n_buffers=2), faults=faults)
    return engine.grid(plan, uvw_m, vis), engine.last_fault_report


@pytest.mark.parametrize("executor", ["serial", "threads", "streaming"])
@pytest.mark.parametrize("stage", STAGES)
def test_matrix_dead_letter_accounting_and_surviving_output(
    executor, stage, tolerant_idg, small_plan, small_obs, single_source_vis,
    groups,
):
    faults = FaultPlan.single(stage, FAULT_GROUP, times=-1)
    grid, report = run_gridding(
        executor, tolerant_idg, small_plan, small_obs.uvw_m,
        single_source_vis, faults,
    )

    # exact dead-letter accounting
    assert report is not None
    assert report.n_dead_letters == 1
    letter = report.dead_letters[0]
    start, stop = groups[FAULT_GROUP]
    assert letter.stage == stage
    assert letter.group == FAULT_GROUP
    assert (letter.start, letter.stop) == (start, stop)
    assert letter.attempts == 1 + MAX_RETRIES
    assert letter.n_visibilities == group_visibility_count(small_plan, start, stop)
    assert report.n_retries == MAX_RETRIES
    assert report.n_groups == len(groups)
    assert report.n_groups_completed == len(groups) - 1
    # the injected fault consumed exactly the budgeted attempts
    assert faults.attempts(stage, FAULT_GROUP) == 1 + MAX_RETRIES

    # surviving output == clean run over the unaffected work groups
    expected = grid_excluding(
        tolerant_idg, small_plan, small_obs.uvw_m, single_source_vis,
        skip={FAULT_GROUP},
    )
    if executor == "threads":
        # completion-order merge: same data, different FP summation order
        np.testing.assert_allclose(grid, expected, atol=2e-4)
    else:
        np.testing.assert_allclose(grid, expected, rtol=1e-12, atol=0.0)


@pytest.mark.parametrize("executor", ["serial", "streaming"])
def test_transient_fault_retries_to_bit_exact_result(
    executor, tolerant_idg, small_plan, small_obs, single_source_vis,
):
    """A fault that clears within the retry budget must leave no trace in
    the output: bit-identical to the clean run."""
    clean, _ = run_gridding(
        executor, tolerant_idg, small_plan, small_obs.uvw_m,
        single_source_vis, faults=None,
    )
    faults = FaultPlan.single("gridder", 2, times=MAX_RETRIES)
    recovered, report = run_gridding(
        executor, tolerant_idg, small_plan, small_obs.uvw_m,
        single_source_vis, faults,
    )
    assert report.ok
    assert report.n_retries == MAX_RETRIES
    assert np.array_equal(recovered, clean)


@pytest.mark.parametrize("kind", ["raise", "corrupt"])
def test_corrupt_and_raise_kinds_both_quarantine(
    kind, tolerant_idg, small_plan, small_obs, single_source_vis, groups,
):
    faults = FaultPlan.single("subgrid_fft", 0, kind=kind, times=-1)
    engine = StreamingIDG(tolerant_idg, RuntimeConfig(n_buffers=2), faults=faults)
    engine.grid(small_plan, small_obs.uvw_m, single_source_vis)
    report = engine.last_fault_report
    assert report.n_dead_letters == 1
    expected_error = "CorruptDataError" if kind == "corrupt" else "InjectedFault"
    assert expected_error in report.dead_letters[0].error


@pytest.mark.parametrize("executor", ["serial", "threads", "streaming"])
def test_degrid_dead_letter_leaves_block_zero(
    executor, tolerant_idg, small_plan, small_obs, groups,
):
    """A quarantined degrid work group leaves its visibility block zero and
    every other block identical to the clean prediction."""
    rng = np.random.default_rng(5)
    g = tolerant_idg.gridspec.grid_size
    model_grid = (
        rng.standard_normal((4, g, g)) + 1j * rng.standard_normal((4, g, g))
    ).astype(COMPLEX_DTYPE)
    clean = tolerant_idg.degrid(small_plan, small_obs.uvw_m, model_grid)

    faults = FaultPlan.single("degridder", FAULT_GROUP, times=-1)
    if executor == "serial":
        predicted = tolerant_idg.degrid(
            small_plan, small_obs.uvw_m, model_grid, faults=faults
        )
        report = tolerant_idg.last_fault_report
    elif executor == "threads":
        engine = ParallelIDG(tolerant_idg, n_workers=2, faults=faults)
        predicted = engine.degrid(small_plan, small_obs.uvw_m, model_grid)
        report = engine.last_fault_report
    else:
        engine = StreamingIDG(tolerant_idg, RuntimeConfig(n_buffers=2), faults=faults)
        predicted = engine.degrid(small_plan, small_obs.uvw_m, model_grid)
        report = engine.last_fault_report

    assert report.n_dead_letters == 1
    start, stop = groups[FAULT_GROUP]
    assert report.excluded_items() == ((start, stop),)

    # zero exactly the excluded items' blocks in the clean prediction
    expected = clean.copy()
    for row in small_plan.items[start:stop]:
        expected[
            row["baseline"],
            row["time_start"]:row["time_end"],
            row["channel_start"]:row["channel_end"],
        ] = 0
    np.testing.assert_allclose(predicted, expected, rtol=1e-12, atol=0.0)
