"""Telemetry self-consistency: the numbers a run reports must add up.

The streaming engine's telemetry drives the performance-model comparison
(paper Fig 9/10), so its invariants are load-bearing: per-stage busy time
can never exceed the run's wall clock, every item put into an inter-stage
channel must come out again, and the visibility counter must match the
plan's own statistics.
"""

import pytest

from repro.runtime import RuntimeConfig, StreamingIDG

GROUP = 5


@pytest.fixture(scope="module")
def grid_run(small_idg, small_plan, small_obs, single_source_vis):
    """One streaming grid run (single worker per stage) plus its telemetry."""
    engine = StreamingIDG(small_idg.with_config(work_group_size=GROUP))
    engine.grid(small_plan, small_obs.uvw_m, single_source_vis)
    return engine.last_telemetry


@pytest.fixture(scope="module")
def degrid_run(small_idg, small_plan, small_obs, single_source_vis):
    engine = StreamingIDG(
        small_idg.with_config(work_group_size=GROUP), RuntimeConfig(n_buffers=2)
    )
    grid = small_idg.grid(small_plan, small_obs.uvw_m, single_source_vis)
    engine.degrid(small_plan, small_obs.uvw_m, grid)
    return engine.last_telemetry


@pytest.mark.parametrize("run", ["grid_run", "degrid_run"])
def test_stage_busy_time_fits_in_makespan(run, request):
    """With one worker per stage, a stage's span total cannot exceed the
    wall clock (spans of one stage never overlap themselves)."""
    telemetry = request.getfixturevalue(run)
    makespan = telemetry.makespan()
    assert makespan > 0
    for stage in telemetry.stages:
        busy = telemetry.stage_busy_seconds(stage)
        assert 0 < busy <= makespan * (1 + 1e-9), (
            f"{stage}: busy {busy}s exceeds makespan {makespan}s"
        )
        assert busy == pytest.approx(
            sum(telemetry.stage_durations(stage))
        )


@pytest.mark.parametrize("run", ["grid_run", "degrid_run"])
def test_spans_lie_within_the_run(run, request):
    telemetry = request.getfixturevalue(run)
    spans = telemetry.spans()
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    assert telemetry.makespan() == pytest.approx(t1 - t0)
    for span in spans:
        assert span.end >= span.start


@pytest.mark.parametrize("run", ["grid_run", "degrid_run"])
def test_every_stage_saw_every_work_group(run, request, small_plan):
    telemetry = request.getfixturevalue(run)
    n_groups = len(list(small_plan.work_groups(GROUP)))
    for stage in telemetry.stages:
        assert len(telemetry.spans(stage)) == n_groups, stage


@pytest.mark.parametrize("run", ["grid_run", "degrid_run"])
def test_queue_items_in_equals_items_out(run, request, small_plan):
    """Every channel drains completely: puts == gets == work groups, and the
    observed depth never exceeds the configured capacity."""
    telemetry = request.getfixturevalue(run)
    n_groups = len(list(small_plan.work_groups(GROUP)))
    assert telemetry.queues, "no queue stats recorded"
    for q in telemetry.queues:
        assert q.n_put == q.n_get == n_groups, q.name
        assert 0 < q.max_depth <= q.capacity, q.name
        assert 0.0 <= q.occupancy <= 1.0, q.name
        assert q.blocked_put_seconds >= 0 and q.blocked_get_seconds >= 0, q.name


def test_visibility_counter_matches_plan(grid_run, small_plan):
    assert (
        grid_run.counters["visibilities"]
        == small_plan.statistics.n_visibilities_gridded
    )


def test_throughput_consistent_with_counter_and_makespan(grid_run):
    assert grid_run.throughput() == pytest.approx(
        grid_run.counters["visibilities"] / grid_run.makespan()
    )
