"""Checkpoint/resume: periodic atomic snapshots while gridding, bit-exact
resume, signature guarding, and the kill-and-resume round trip."""

import numpy as np
import pytest

from repro.runtime import (
    FaultPlan,
    InjectedCrash,
    RuntimeConfig,
    StreamingIDG,
    load_checkpoint,
    plan_signature,
    save_checkpoint,
)

WORK_GROUP_SIZE = 5


@pytest.fixture(scope="module")
def idg(small_idg):
    return small_idg.with_config(work_group_size=WORK_GROUP_SIZE)


@pytest.fixture(scope="module")
def clean_grid(idg, small_plan, small_obs, single_source_vis):
    return StreamingIDG(idg, RuntimeConfig(n_buffers=2)).grid(
        small_plan, small_obs.uvw_m, single_source_vis
    )


@pytest.fixture(scope="module")
def n_groups(small_plan):
    return len(list(small_plan.work_groups(WORK_GROUP_SIZE)))


def test_completed_run_checkpoint_is_total(idg, small_plan, small_obs,
                                           single_source_vis, clean_grid,
                                           n_groups, tmp_path):
    ckpt = tmp_path / "run.ckpt.npz"
    engine = StreamingIDG(idg, RuntimeConfig(
        n_buffers=2, checkpoint_path=str(ckpt), checkpoint_interval=2,
    ))
    grid = engine.grid(small_plan, small_obs.uvw_m, single_source_vis)
    assert np.array_equal(grid, clean_grid)
    snap = load_checkpoint(ckpt, signature=plan_signature(small_plan,
                                                          WORK_GROUP_SIZE))
    assert snap.completed_set == frozenset(range(n_groups))
    assert snap.n_retired == n_groups
    np.testing.assert_array_equal(snap.grid, clean_grid)
    # periodic snapshots actually happened along the way
    assert engine.last_telemetry.counters["checkpoints"] >= n_groups // 2


def test_resume_from_partial_checkpoint_is_bit_exact(
    idg, small_plan, small_obs, single_source_vis, clean_grid, n_groups,
    tmp_path,
):
    """Hand-build a mid-run snapshot (the prefix sum of groups 0..k-1) and
    resume: the final grid must be bit-identical to the uninterrupted run."""
    backend = idg.backend
    k = n_groups // 2
    partial = idg.gridspec.allocate_grid(dtype=clean_grid.dtype)
    groups = list(small_plan.work_groups(WORK_GROUP_SIZE))
    for start, stop in groups[:k]:
        subgrids = backend.grid_work_group(
            small_plan, start, stop, small_obs.uvw_m, single_source_vis,
            idg.taper, lmn=idg.lmn, aterm_fields=None,
            vis_batch=idg.config.vis_batch,
            channel_recurrence=idg.config.channel_recurrence,
            batched=idg.config.batched,
        )
        backend.add_subgrids(
            partial, small_plan, backend.subgrids_to_fourier(subgrids),
            start=start,
        )
    ckpt = tmp_path / "partial.npz"
    save_checkpoint(ckpt, partial, range(k),
                    plan_signature(small_plan, WORK_GROUP_SIZE))

    engine = StreamingIDG(idg, RuntimeConfig(n_buffers=2, resume_from=str(ckpt)))
    resumed = engine.grid(small_plan, small_obs.uvw_m, single_source_vis)
    assert np.array_equal(resumed, clean_grid)


def test_kill_and_resume_round_trip(idg, small_plan, small_obs,
                                    single_source_vis, clean_grid, n_groups,
                                    tmp_path):
    """Crash the pipeline mid-run (InjectedCrash escapes the retry layer),
    then resume from the surviving snapshot: bit-identical final grid, and
    the completed groups are genuinely skipped."""
    assert n_groups >= 6, "fixture too small for a mid-run crash"
    ckpt = tmp_path / "crash.npz"
    crash = FaultPlan.single("gridder", n_groups - 2, kind="crash")
    engine = StreamingIDG(
        idg,
        RuntimeConfig(n_buffers=2, checkpoint_path=str(ckpt),
                      checkpoint_interval=1),
        faults=crash,
    )
    with pytest.raises(InjectedCrash):
        engine.grid(small_plan, small_obs.uvw_m, single_source_vis)

    snap = load_checkpoint(ckpt)
    assert 0 < len(snap.completed_set) < n_groups

    resume = StreamingIDG(idg, RuntimeConfig(n_buffers=2, resume_from=str(ckpt)))
    resumed = resume.grid(small_plan, small_obs.uvw_m, single_source_vis)
    assert np.array_equal(resumed, clean_grid)
    # only the remaining groups were gridded on resume
    spans = resume.last_telemetry.spans("gridder")
    assert len(spans) == n_groups - len(snap.completed_set)


def test_resume_rejects_mismatched_plan(idg, small_plan, small_obs,
                                        single_source_vis, tmp_path):
    ckpt = tmp_path / "wrong.npz"
    engine = StreamingIDG(idg, RuntimeConfig(
        n_buffers=1, checkpoint_path=str(ckpt), checkpoint_interval=1000,
    ))
    engine.grid(small_plan, small_obs.uvw_m, single_source_vis)
    # a different work-group partition must refuse the checkpoint
    other = StreamingIDG(
        idg.with_config(work_group_size=WORK_GROUP_SIZE + 1),
        RuntimeConfig(n_buffers=1, resume_from=str(ckpt)),
    )
    with pytest.raises(ValueError, match="refusing to resume"):
        other.grid(small_plan, small_obs.uvw_m, single_source_vis)


def test_checkpoint_versioning_and_signature_api(tmp_path, small_plan):
    sig = plan_signature(small_plan, 5)
    assert sig == plan_signature(small_plan, 5)
    assert sig != plan_signature(small_plan, 6)
    grid = np.zeros((4, 8, 8), dtype=np.complex64)
    path = save_checkpoint(tmp_path / "c", grid, [0, 2], sig)
    assert path.suffix == ".npz"
    snap = load_checkpoint(path, signature=sig)
    assert snap.completed_set == frozenset({0, 2})
    with pytest.raises(ValueError, match="refusing"):
        load_checkpoint(path, signature="deadbeef")
    # future versions are rejected, not misread
    save_checkpoint(path, grid, [0], sig)
    data = dict(np.load(path))
    data["checkpoint_version"] = np.int64(999)
    np.savez_compressed(path, **data)
    with pytest.raises(ValueError, match="version"):
        load_checkpoint(path)


def test_checkpoint_write_is_atomic(tmp_path, small_plan, monkeypatch):
    """A crash mid-snapshot leaves the previous complete snapshot intact."""
    import repro.atomicio as atomicio

    sig = plan_signature(small_plan, 5)
    grid = np.full((4, 8, 8), 1 + 1j, dtype=np.complex64)
    path = save_checkpoint(tmp_path / "c.npz", grid, [0, 1], sig)

    def dying_savez(fh, **arrays):
        fh.write(b"partial")
        raise OSError("power loss")

    monkeypatch.setattr(atomicio.np, "savez_compressed", dying_savez)
    with pytest.raises(OSError):
        save_checkpoint(path, grid, [0, 1, 2], sig)
    monkeypatch.undo()

    snap = load_checkpoint(path, signature=sig)
    assert snap.completed_set == frozenset({0, 1})
    assert sorted(p.name for p in tmp_path.iterdir()) == ["c.npz"]


def test_quarantined_groups_are_not_marked_completed(
    idg, small_plan, small_obs, single_source_vis, n_groups, tmp_path,
):
    """Dead-lettered groups must be retried on resume, so they may not enter
    the checkpoint's completed set."""
    ckpt = tmp_path / "dead.npz"
    faults = FaultPlan.single("gridder", 1, times=-1)
    engine = StreamingIDG(
        idg.with_config(max_retries=1, retry_backoff_s=0.0),
        RuntimeConfig(n_buffers=2, checkpoint_path=str(ckpt),
                      checkpoint_interval=1),
        faults=faults,
    )
    engine.grid(small_plan, small_obs.uvw_m, single_source_vis)
    assert engine.last_fault_report.n_dead_letters == 1
    snap = load_checkpoint(ckpt)
    assert 1 not in snap.completed_set
    assert snap.completed_set == frozenset(range(n_groups)) - {1}
    # Resuming with the fault cleared completes the quarantined group.  The
    # group is re-added after its plan-order successors, so the result is
    # FP-reassociated relative to the clean run — numerically equal, not
    # bit-exact (bit-exactness holds when the completed set is a plan-order
    # prefix, i.e. the crash/kill case; see DESIGN.md §11).
    resume = StreamingIDG(idg, RuntimeConfig(n_buffers=2, resume_from=str(ckpt)))
    resumed = resume.grid(small_plan, small_obs.uvw_m, single_source_vis)
    clean = StreamingIDG(idg, RuntimeConfig(n_buffers=2)).grid(
        small_plan, small_obs.uvw_m, single_source_vis
    )
    np.testing.assert_allclose(resumed, clean, rtol=1e-4, atol=1e-6)
