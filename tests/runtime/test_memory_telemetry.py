"""Memory gauges: rss/peak-rss/arena sampling and their export as Chrome
trace counter events."""

import numpy as np

from repro.runtime import peak_rss_bytes, record_memory_gauges, rss_bytes
from repro.runtime.telemetry import Telemetry


def test_rss_probes_report_plausible_values():
    rss = rss_bytes()
    peak = peak_rss_bytes()
    # A running CPython interpreter holds at least a few MB and the peak
    # high-water mark can never undercut current residency (modulo the
    # probes reading /proc and getrusage at slightly different instants).
    assert rss > 1 << 20
    assert peak > 1 << 20
    assert peak >= rss // 2


def test_rss_tracks_a_large_allocation():
    before = rss_bytes()
    ballast = np.ones(32 << 20, dtype=np.uint8)  # 32 MB, touched
    grown = rss_bytes()
    assert grown - before > 16 << 20
    del ballast


def test_record_memory_gauges_exports_counter_events():
    tm = Telemetry()
    record_memory_gauges(tm)
    record_memory_gauges(tm)  # gauges are time series, not single samples
    trace = tm.chrome_trace()
    counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
    by_name = {}
    for event in counters:
        by_name.setdefault(event["name"], []).append(event)
    for name in ("rss_bytes", "peak_rss_bytes", "arena_bytes"):
        assert len(by_name[name]) == 2, f"gauge {name} missing from trace"
        for event in by_name[name]:
            (value,) = event["args"].values()
            assert value >= 0


def test_record_memory_gauges_tolerates_no_telemetry():
    record_memory_gauges(None)  # must be a no-op, not an AttributeError
