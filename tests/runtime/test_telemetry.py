"""Telemetry recorder: spans, counters, summaries, Chrome trace export."""

import json

from repro.runtime.telemetry import QueueStats, Telemetry


def _stocked() -> Telemetry:
    tm = Telemetry()
    t0 = tm.t0
    tm.record_span("gridder", 0, t0 + 0.00, t0 + 0.10, "gridder-0")
    tm.record_span("gridder", 1, t0 + 0.10, t0 + 0.25, "gridder-0")
    tm.record_span("fft", 0, t0 + 0.10, t0 + 0.12, "fft-0")
    tm.record_gauge("queue:g->f", 1)
    tm.add_counter("visibilities", 1000)
    tm.record_queue(QueueStats(
        name="g->f", capacity=3, n_put=2, n_get=2, max_depth=1,
        blocked_put_seconds=0.0, blocked_get_seconds=0.01, occupancy=0.2,
    ))
    return tm


def test_span_queries():
    tm = _stocked()
    assert tm.stages == ("gridder", "fft")
    assert len(tm.spans()) == 3
    assert len(tm.spans("gridder")) == 2
    assert tm.stage_durations("gridder") == [
        tm.spans("gridder")[0].duration, tm.spans("gridder")[1].duration
    ]
    assert abs(tm.stage_busy_seconds("gridder") - 0.25) < 1e-9
    assert abs(tm.makespan() - 0.25) < 1e-9


def test_throughput_counter():
    tm = _stocked()
    assert abs(tm.throughput() - 1000 / 0.25) < 1e-6
    assert Telemetry().throughput() == 0.0


def test_chrome_trace_round_trips():
    tm = _stocked()
    doc = json.loads(json.dumps(tm.chrome_trace()))
    assert doc["displayTimeUnit"] == "ms"
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert {e["name"] for e in spans} == {"gridder", "fft"}
    # timestamps are microseconds relative to the epoch, durations positive
    assert all(e["dur"] > 0 for e in spans)
    first = min(spans, key=lambda e: e["ts"])
    assert abs(first["ts"]) < 1.0
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert counters and counters[0]["name"] == "queue:g->f"
    metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert {e["args"]["name"] for e in metadata} == {"gridder-0", "fft-0"}
    assert doc["otherData"]["counters"]["visibilities"] == 1000
    assert doc["otherData"]["queues"][0]["occupancy"] == 0.2


def test_write_chrome_trace(tmp_path):
    tm = _stocked()
    path = tmp_path / "trace.json"
    tm.write_chrome_trace(str(path))
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["traceEvents"]


def test_summary_mentions_stages_and_queues():
    text = _stocked().summary()
    assert "gridder" in text
    assert "fft" in text
    assert "queue g->f" in text
    assert "MVis/s" in text


def test_empty_telemetry():
    tm = Telemetry()
    assert tm.makespan() == 0.0
    assert tm.stages == ()
    assert tm.chrome_trace()["traceEvents"] == []
    assert "makespan" in tm.summary()
