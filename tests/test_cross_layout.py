"""Integration: IDG imaging works across telescope layout families.

The plan's greedy covering and the gridder make no assumption about the
array geometry; these tests pin that by imaging the same source through a
LOFAR-like, a VLA-like and a uniform-random array.
"""

import numpy as np
import pytest

from repro.core.pipeline import IDG, IDGConfig
from repro.imaging.image import dirty_image_from_grid, find_peak, stokes_i_image
from repro.sky.model import SkyModel
from repro.sky.simulate import predict_visibilities
from repro.telescope.array import StationArray
from repro.telescope.layouts import (
    lofar_like_layout,
    random_disc_layout,
    vla_like_layout,
)
from repro.telescope.observation import Observation, subband_frequencies

LAYOUTS = {
    "lofar": lambda: lofar_like_layout(n_stations=14, max_radius_m=8_000.0, seed=2),
    "vla": lambda: vla_like_layout(n_stations=15, arm_length_m=6_000.0, seed=2),
    "random": lambda: random_disc_layout(n_stations=14, radius_m=4_000.0, seed=2),
}


@pytest.mark.parametrize("layout_name", sorted(LAYOUTS))
def test_point_source_recovered_on_every_layout(layout_name):
    array = StationArray(positions_enu=LAYOUTS[layout_name](), name=layout_name)
    obs = Observation(
        array=array, n_times=48, integration_time_s=180.0,
        frequencies_hz=subband_frequencies(150e6, 4, 400e3),
    )
    gridspec = obs.fitting_gridspec(256)
    dl, g = gridspec.pixel_scale, gridspec.grid_size
    l0 = round(0.12 * gridspec.image_size / dl) * dl
    m0 = round(-0.08 * gridspec.image_size / dl) * dl
    sky = SkyModel.single(l0, m0, flux=2.0)
    baselines = array.baselines()
    vis = predict_visibilities(obs.uvw_m, obs.frequencies_hz, sky,
                               baselines=baselines)

    idg = IDG(gridspec, IDGConfig(subgrid_size=24, kernel_support=8, time_max=16))
    plan = idg.make_plan(obs.uvw_m, obs.frequencies_hz, baselines)
    # plan covers everything on every geometry
    assert plan.statistics.n_visibilities_flagged == 0
    grid = idg.grid(plan, obs.uvw_m, vis)
    image = stokes_i_image(dirty_image_from_grid(
        grid, gridspec, weight_sum=plan.statistics.n_visibilities_gridded
    ))
    row, col, value = find_peak(image)
    assert (row, col) == (round(m0 / dl) + g // 2, round(l0 / dl) + g // 2)
    assert value == pytest.approx(2.0, rel=0.02)
