"""Out-of-core conformance: chunked-store inputs are bit-identical to the
in-memory corpus runs on every executor.

The corpus cases (plain, w-offset, A-terms, wideband, flagged) are written
to schema-v2 chunked stores in small time slabs; each executor then grids
from ``store.source()`` — blocks streamed from the memory map, flags masked
lazily per block — and must reproduce the in-memory serial reference
**bit-identically** (``np.array_equal``, no tolerance).  Degrid writes its
prediction straight into a zeroed store map through ``out=`` and must match
the same way.  The streaming path additionally survives a mid-run crash and
resumes from its checkpoint without changing a single bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.store import DatasetWriter, write_store
from repro.runtime import (
    FaultPlan,
    InjectedCrash,
    RuntimeConfig,
    StreamingIDG,
    load_checkpoint,
)

EXECUTORS = ("serial", "threads", "streaming", "processes")

#: Small on purpose: slabs must straddle work-item time ranges so the
#: store's chunking cannot accidentally align with the plan's.
TIME_CHUNK = 2


@pytest.fixture(scope="session")
def store_for(conformance, tmp_path_factory):
    """Builds (and caches) the chunked store of a corpus case."""
    root = tmp_path_factory.mktemp("conformance-stores")
    stores = {}

    def build(case):
        if case.name not in stores:
            w = conformance.workload(case)
            obs, vis = w["obs"], w["vis"]
            with DatasetWriter(
                root / f"{case.name}.store",
                n_baselines=obs.array.n_baselines,
                n_times=case.n_times,
                n_channels=case.n_channels,
            ) as writer:
                writer.set_frequencies(obs.frequencies_hz)
                writer.set_baselines(obs.array.baselines())
                for t0 in range(0, case.n_times, TIME_CHUNK):
                    t1 = min(t0 + TIME_CHUNK, case.n_times)
                    writer.write_times(
                        t0, obs.uvw_m[:, t0:t1], vis[:, t0:t1],
                        flags=None if w["flags"] is None
                        else w["flags"][:, t0:t1],
                    )
                stores[case.name] = writer.finalize()
        return stores[case.name]

    return build


def _engine(executor, idg):
    if executor == "serial":
        return idg
    if executor == "threads":
        from repro.parallel.executor import ParallelIDG

        return ParallelIDG(idg, n_workers=2)
    if executor == "streaming":
        return StreamingIDG(
            idg, RuntimeConfig(n_buffers=3, gridder_workers=2, fft_workers=2,
                               degridder_workers=2),
        )
    from repro.parallel.process import ProcessConfig, ProcessShardedIDG

    return ProcessShardedIDG(idg, ProcessConfig(n_procs=2, start_method="fork"))


@pytest.mark.parametrize("executor", EXECUTORS)
def test_grid_from_store_bit_identical(conformance, conformance_case,
                                       store_for, executor):
    w = conformance.workload(conformance_case)
    store = store_for(conformance_case)
    reference = conformance.reference(conformance_case)["grid"]
    engine = _engine(executor, w["idg"])
    # No eager flags argument: the store carries the case's flags and the
    # source masks them lazily per block.
    result = engine.grid(
        w["plan"], w["obs"].uvw_m, store.source(), aterms=w["aterms"]
    )
    assert result.dtype == reference.dtype
    assert np.array_equal(result, reference)


@pytest.mark.parametrize("executor", EXECUTORS)
def test_degrid_into_store_bit_identical(conformance, conformance_case,
                                         store_for, executor, tmp_path):
    w = conformance.workload(conformance_case)
    obs = w["obs"]
    reference = conformance.reference(conformance_case)["degrid"]
    engine = _engine(executor, w["idg"])
    with DatasetWriter(
        tmp_path / f"pred-{executor}.store",
        n_baselines=obs.array.n_baselines,
        n_times=conformance_case.n_times,
        n_channels=conformance_case.n_channels,
    ) as writer:
        writer.set_frequencies(obs.frequencies_hz)
        writer.set_baselines(obs.array.baselines())
        writer.uvw_m[:] = obs.uvw_m
        writer.mark_written(0, conformance_case.n_times)
        result = engine.degrid(
            w["plan"], obs.uvw_m, w["model"], aterms=w["aterms"],
            out=writer.visibilities,
        )
        assert result is writer.visibilities
        store = writer.finalize()
    assert np.array_equal(store.visibilities[:], reference)


def test_streaming_kill_and_resume_from_store(conformance, store_for,
                                              tmp_path):
    """Crash the streaming reader pipeline mid-run while gridding from the
    store, resume from the surviving checkpoint: bit-identical final grid."""
    case = next(c for c in conformance.cases if c.name == "baseline")
    w = conformance.workload(case)
    store = store_for(case)
    reference = conformance.reference(case)["grid"]
    n_groups = len(list(w["plan"].work_groups(w["idg"].config.work_group_size)))
    assert n_groups >= 3, "corpus case too small for a mid-run crash"

    ckpt = tmp_path / "oc-crash.npz"
    crash = FaultPlan.single("gridder", n_groups - 1, kind="crash")
    engine = StreamingIDG(
        w["idg"],
        RuntimeConfig(n_buffers=2, checkpoint_path=str(ckpt),
                      checkpoint_interval=1),
        faults=crash,
    )
    with pytest.raises(InjectedCrash):
        engine.grid(w["plan"], w["obs"].uvw_m, store.source())

    snap = load_checkpoint(ckpt)
    assert 0 < len(snap.completed_set) < n_groups

    resume = StreamingIDG(
        w["idg"], RuntimeConfig(n_buffers=2, resume_from=str(ckpt))
    )
    resumed = resume.grid(w["plan"], w["obs"].uvw_m, store.source())
    assert np.array_equal(resumed, reference)
    # only the remaining groups were re-read and re-gridded on resume
    assert len(resume.last_telemetry.spans("reader")) == (
        n_groups - len(snap.completed_set)
    )


def test_store_equals_npz_dataset_roundtrip(conformance, store_for, tmp_path):
    """The store holds byte-identical columns to the in-memory workload (the
    v1 archive's contract carried over to v2)."""
    case = next(c for c in conformance.cases if c.name == "flagged")
    w = conformance.workload(case)
    store = store_for(case)
    np.testing.assert_array_equal(store.visibilities[:], w["vis"])
    np.testing.assert_array_equal(store.flags[:], w["flags"])
    np.testing.assert_array_equal(store.uvw_m[:], w["obs"].uvw_m)
    # and survives a v2 -> v2 copy through the writer API
    copy = write_store(store.as_dataset(), tmp_path / "copy.store",
                       time_chunk=3)
    np.testing.assert_array_equal(copy.visibilities[:], w["vis"])
    assert copy.manifest.content_hash == store.manifest.content_hash
