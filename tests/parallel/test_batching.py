"""Unit tests for work-splitting helpers."""

import pytest

from repro.parallel.batching import chunk_ranges, interleaved_ranges


def test_chunk_ranges_partition():
    ranges = chunk_ranges(10, 3)
    assert ranges == [(0, 4), (4, 7), (7, 10)]
    covered = [i for a, b in ranges for i in range(a, b)]
    assert covered == list(range(10))


def test_chunk_ranges_more_chunks_than_items():
    ranges = chunk_ranges(2, 5)
    assert ranges == [(0, 1), (1, 2)]


def test_chunk_ranges_empty_total():
    assert chunk_ranges(0, 4) == []


def test_chunk_ranges_validation():
    with pytest.raises(ValueError):
        chunk_ranges(-1, 2)
    with pytest.raises(ValueError):
        chunk_ranges(5, 0)


def test_interleaved_ranges_cover_exactly_once():
    total, group, workers = 23, 4, 3
    seen = []
    for w in range(workers):
        for a, b in interleaved_ranges(total, group, w, workers):
            seen.extend(range(a, b))
    assert sorted(seen) == list(range(total))


def test_interleaved_round_robin_order():
    assert list(interleaved_ranges(20, 4, 0, 2)) == [(0, 4), (8, 12), (16, 20)]
    assert list(interleaved_ranges(20, 4, 1, 2)) == [(4, 8), (12, 16)]


def test_interleaved_validation():
    with pytest.raises(ValueError):
        list(interleaved_ranges(10, 0, 0, 1))
    with pytest.raises(ValueError):
        list(interleaved_ranges(10, 2, 3, 2))
