"""SharedArena lifecycle: no /dev/shm segment survives any exit path.

POSIX shared memory is not reclaimed on process exit — a leaked segment
holds RAM until reboot — so the arena's contract is absolute: the owning
process unlinks every segment on success, on failure and on
``KeyboardInterrupt``, and the class-level :meth:`SharedArena.live_segments`
registry (plus a literal ``/dev/shm`` scan) must drain to empty.  Worker
SIGKILL paths are exercised by the fault matrix; this module pins the
owner-side paths and the attach protocol.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.executor import WorkGroupError
from repro.parallel.process import ProcessConfig, ProcessShardedIDG
from repro.parallel.shm import SharedArena, shm_dir_entries


def _assert_no_leaks(prefix: str | None = None) -> None:
    assert SharedArena.live_segments() == frozenset()
    if prefix is not None:
        assert shm_dir_entries(prefix) == ()


# ----------------------------------------------------------------- unit level


def test_allocate_attach_roundtrip():
    with SharedArena() as arena:
        block = arena.allocate("vis", (4, 3), np.complex64)
        assert not block.any()  # zero-initialised
        block[:] = np.arange(12, dtype=np.complex64).reshape(4, 3)
        attached = SharedArena.attach(arena.spec())
        try:
            assert np.array_equal(attached["vis"], block)
            attached["vis"][0, 0] = 99.0  # same physical pages
            assert block[0, 0] == 99.0
        finally:
            attached.close()
        assert arena.keys() == ("vis",)
    _assert_no_leaks(arena.prefix)


def test_duplicate_key_and_attacher_restrictions():
    with SharedArena() as arena:
        arena.allocate("a", (2,), np.float64)
        with pytest.raises(ValueError, match="duplicate"):
            arena.allocate("a", (2,), np.float64)
        attached = SharedArena.attach(arena.spec())
        try:
            with pytest.raises(RuntimeError, match="owning"):
                attached.allocate("b", (2,), np.float64)
            with pytest.raises(RuntimeError, match="owning"):
                attached.unlink()
        finally:
            attached.close()
    _assert_no_leaks(arena.prefix)


def test_unlink_on_failure_and_keyboard_interrupt():
    for exc_type in (RuntimeError, KeyboardInterrupt):
        prefix = None
        with pytest.raises(exc_type):
            with SharedArena() as arena:
                prefix = arena.prefix
                arena.allocate("grid", (8, 8), np.complex128)
                assert shm_dir_entries(prefix) != ()
                raise exc_type("mid-run abort")
        _assert_no_leaks(prefix)


def test_unlink_is_idempotent():
    arena = SharedArena()
    arena.allocate("x", (1,), np.uint8)
    arena.close_and_unlink()
    arena.close_and_unlink()  # second teardown is a no-op
    _assert_no_leaks(arena.prefix)


# ------------------------------------------------------------- executor level


def test_executor_success_leaves_no_segments(conformance):
    case = next(c for c in conformance.cases if c.name == "baseline")
    w = conformance.workload(case)
    engine = ProcessShardedIDG(
        w["idg"], ProcessConfig(n_procs=2, start_method="fork")
    )
    engine.grid(w["plan"], w["obs"].uvw_m, w["vis"])
    engine.degrid(w["plan"], w["obs"].uvw_m, w["model"])
    _assert_no_leaks()
    assert shm_dir_entries() == ()  # any idgshm- prefix, not just ours


def test_executor_failure_leaves_no_segments(conformance, monkeypatch):
    """A fail-fast worker error aborts the run through the arena's context
    manager: the error propagates AND the segments are gone."""
    case = next(c for c in conformance.cases if c.name == "baseline")
    w = conformance.workload(case)
    backend_cls = type(w["idg"].backend)

    def failing(self, plan, start, stop, *args, **kwargs):
        raise RuntimeError("poisoned kernel")

    monkeypatch.setattr(backend_cls, "grid_work_group", failing)
    engine = ProcessShardedIDG(
        w["idg"], ProcessConfig(n_procs=2, start_method="fork")
    )
    with pytest.raises(WorkGroupError):
        engine.grid(w["plan"], w["obs"].uvw_m, w["vis"])
    _assert_no_leaks()
    assert shm_dir_entries() == ()
