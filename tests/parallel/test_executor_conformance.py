"""Cross-executor conformance: every executor, one corpus, bit-identical.

The contract (DESIGN.md §14): all four executors run the same kernels on the
same work groups and accumulate work groups onto the master grid in
ascending plan order, so their grids — and degridded visibilities — are
**bit-identical**, not merely close.  ``np.array_equal`` with no tolerance
is the whole assertion; any reassociation of the floating-point sums is a
regression.
"""

from __future__ import annotations

import numpy as np
import pytest

PARALLEL_EXECUTORS = ("threads", "streaming", "processes")


@pytest.mark.parametrize("executor", PARALLEL_EXECUTORS)
def test_grid_bit_identical_to_serial(conformance, conformance_case, executor):
    reference = conformance.reference(conformance_case)["grid"]
    result = conformance.run(executor, conformance_case, "grid")
    assert result.dtype == reference.dtype
    assert np.array_equal(result, reference)


@pytest.mark.parametrize("executor", PARALLEL_EXECUTORS)
def test_degrid_bit_identical_to_serial(conformance, conformance_case, executor):
    reference = conformance.reference(conformance_case)["degrid"]
    result = conformance.run(executor, conformance_case, "degrid")
    assert result.dtype == reference.dtype
    assert np.array_equal(result, reference)


def test_corpus_is_structurally_varied(conformance):
    """The corpus actually exercises w-offsets, A-terms, wideband and flags
    (guards against a future edit silently neutering a case)."""
    by_name = {c.name: c for c in conformance.cases}
    assert by_name["w-offset"].w_offset != 0.0
    assert by_name["aterms"].aterm_interval is not None
    assert by_name["wideband"].n_channels == 512
    assert by_name["flagged"].flag_fraction > 0.0
    flagged = conformance.workload(by_name["flagged"])
    assert flagged["flags"] is not None and flagged["flags"].any()
    # Flags must change the answer, or the flagged case proves nothing.
    w = flagged
    unflagged = w["idg"].grid(w["plan"], w["obs"].uvw_m, w["vis"])
    assert not np.array_equal(
        unflagged, conformance.reference(by_name["flagged"])["grid"]
    )
