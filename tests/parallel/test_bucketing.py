"""Unit tests for the shape-bucketing pass and its gather/scatter plumbing."""

import numpy as np
import pytest

from repro.core.scratch import ScratchArena
from repro.parallel.bucketing import (
    bucket_work_items,
    degrid_work_group_batched,
    gather_rel_uvw,
    gather_scale0,
    gather_uvw,
    gather_visibilities,
    grid_work_group_batched,
    iter_bucket_chunks,
    max_bucket_items,
    scatter_visibilities,
    uniform_channel_step,
)
from repro.constants import SPEED_OF_LIGHT


# --------------------------------------------------------------- bucketing


def test_every_item_lands_in_exactly_one_bucket(small_plan):
    start, stop = 0, small_plan.n_subgrids
    buckets = bucket_work_items(small_plan, start, stop)
    gathered = np.concatenate([b.indices for b in buckets])
    assert len(gathered) == stop - start
    assert sorted(gathered.tolist()) == list(range(start, stop))


def test_bucket_shapes_match_their_items(small_plan):
    buckets = bucket_work_items(small_plan, 0, small_plan.n_subgrids)
    items = small_plan.items
    for bucket in buckets:
        rows = items[bucket.indices]
        np.testing.assert_array_equal(
            rows["time_end"] - rows["time_start"], bucket.n_times
        )
        np.testing.assert_array_equal(
            rows["channel_end"] - rows["channel_start"], bucket.n_channels
        )
        assert bucket.n_visibilities == (
            bucket.n_items * bucket.n_times * bucket.n_channels
        )


def test_bucket_indices_ascend_and_subranges_cover(small_plan):
    """Bucketing a sub-range only sees that range, in ascending plan order."""
    start, stop = 3, min(17, small_plan.n_subgrids)
    buckets = bucket_work_items(small_plan, start, stop)
    for bucket in buckets:
        assert (np.diff(bucket.indices) > 0).all()
        assert bucket.indices.min() >= start
        assert bucket.indices.max() < stop
    gathered = sorted(np.concatenate([b.indices for b in buckets]).tolist())
    assert gathered == list(range(start, stop))


def test_iter_bucket_chunks_partitions_in_order(small_plan):
    (bucket, *_rest) = bucket_work_items(small_plan, 0, small_plan.n_subgrids)
    chunks = list(iter_bucket_chunks(bucket, 3))
    assert all(len(c) <= 3 for c in chunks)
    np.testing.assert_array_equal(np.concatenate(chunks), bucket.indices)
    with pytest.raises(ValueError):
        list(iter_bucket_chunks(bucket, 0))


def test_max_bucket_items_respects_budget():
    # 576 pixels x 16 phase steps x 16 B = 147456 B per item
    assert max_bucket_items(576, 16, budget_bytes=2**20) == 7
    assert max_bucket_items(576, 16, budget_bytes=1) == 1  # floor of 1
    assert max_bucket_items(0, 0, budget_bytes=2**20) >= 1


def test_uniform_channel_step():
    uniform = np.array([1.0e8, 1.1e8, 1.2e8, 1.3e8])
    step = uniform_channel_step(uniform)
    assert step == pytest.approx(0.1e8 / SPEED_OF_LIGHT)
    assert uniform_channel_step(np.array([1.0e8])) == 0.0
    ragged = np.array([1.0e8, 1.1e8, 1.25e8])
    assert uniform_channel_step(ragged) is None


# ----------------------------------------------------------- gather/scatter


def test_gather_uvw_and_scale0_match_plan_slices(small_plan, small_obs):
    arena = ScratchArena()
    buckets = bucket_work_items(small_plan, 0, small_plan.n_subgrids)
    bucket = max(buckets, key=lambda b: b.n_items)
    stacked = gather_uvw(small_plan, bucket.indices, small_obs.uvw_m, arena)
    scale0 = gather_scale0(small_plan, bucket.indices)
    assert stacked.shape == (bucket.n_items, bucket.n_times, 3)
    for g, idx in enumerate(bucket.indices):
        row = small_plan.items[idx]
        np.testing.assert_array_equal(
            stacked[g],
            small_obs.uvw_m[row["baseline"], row["time_start"]:row["time_end"]],
        )
        expected = (
            small_plan.frequencies_hz[row["channel_start"]] / SPEED_OF_LIGHT
        )
        assert scale0[g] == pytest.approx(expected)


def test_gather_scatter_visibilities_round_trip(small_plan, single_source_vis):
    arena = ScratchArena()
    restored = np.zeros_like(single_source_vis)
    for bucket in bucket_work_items(small_plan, 0, small_plan.n_subgrids):
        block = gather_visibilities(
            small_plan, bucket.indices, single_source_vis, arena
        )
        assert block.shape == (bucket.n_items, bucket.n_times, bucket.n_channels, 4)
        scatter_visibilities(small_plan, bucket.indices, block.copy(), restored)
    # every unflagged visibility the plan covers survives the round trip
    covered = np.zeros(single_source_vis.shape[:3], dtype=bool)
    for row in small_plan.items:
        covered[
            row["baseline"],
            row["time_start"]:row["time_end"],
            row["channel_start"]:row["channel_end"],
        ] = True
    np.testing.assert_array_equal(
        restored[covered], single_source_vis.reshape(*covered.shape, 2, 2)[covered]
    )
    assert not restored[~covered].any()


def test_gather_visibilities_rejects_malformed_input(small_plan, single_source_vis):
    arena = ScratchArena()
    bucket = bucket_work_items(small_plan, 0, small_plan.n_subgrids)[0]
    bad = single_source_vis[:, :, :1]  # wrong channel count vs the plan
    with pytest.raises(ValueError, match="does not match"):
        gather_visibilities(small_plan, bucket.indices, bad, arena)


def test_gather_rel_uvw_matches_per_item(small_plan, small_obs):
    from repro.core.gridder import relative_uvw_wavelengths

    arena = ScratchArena()
    bucket = bucket_work_items(small_plan, 0, small_plan.n_subgrids)[0]
    stacked = gather_rel_uvw(small_plan, bucket.indices, small_obs.uvw_m, arena)
    for g, idx in enumerate(bucket.indices):
        row = small_plan.items[idx]
        u_mid, v_mid = small_plan.subgrid_centre_uv(int(idx))
        expected = relative_uvw_wavelengths(
            small_obs.uvw_m[row["baseline"], row["time_start"]:row["time_end"]],
            small_plan.frequencies_hz[row["channel_start"]:row["channel_end"]],
            u_mid, v_mid, small_plan.w_offset,
        )
        np.testing.assert_allclose(stacked[g], expected, rtol=1e-12)


# ------------------------------------------------------- batched == per-item


@pytest.mark.parametrize("channel_recurrence", [False, True],
                         ids=["direct", "recurrence"])
def test_grid_batched_matches_per_item_driver(small_idg, small_plan, small_obs,
                                              single_source_vis,
                                              channel_recurrence):
    from repro.core.gridder import grid_work_group

    stop = min(24, small_plan.n_subgrids)
    per_item = grid_work_group(
        small_plan, 0, stop, small_obs.uvw_m, single_source_vis,
        small_idg.taper, lmn=small_idg.lmn,
        channel_recurrence=channel_recurrence,
    )
    batched = grid_work_group_batched(
        small_plan, 0, stop, small_obs.uvw_m, single_source_vis,
        small_idg.taper, lmn=small_idg.lmn,
        channel_recurrence=channel_recurrence,
    )
    scale = float(np.abs(per_item).max())
    np.testing.assert_allclose(
        batched, per_item, rtol=1e-5, atol=1e-5 * scale
    )


def test_degrid_batched_matches_per_item_driver(small_idg, small_plan,
                                                small_obs, single_source_vis):
    from repro.core.degridder import degrid_work_group

    stop = min(24, small_plan.n_subgrids)
    rng = np.random.default_rng(7)
    n = small_plan.subgrid_size
    shape = (stop, n, n, 2, 2)
    images = (
        rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    ).astype(np.complex64)

    per_item = np.zeros_like(single_source_vis)
    degrid_work_group(
        small_plan, 0, stop, images, small_obs.uvw_m, per_item,
        small_idg.taper, lmn=small_idg.lmn, channel_recurrence=True,
    )
    batched = np.zeros_like(single_source_vis)
    degrid_work_group_batched(
        small_plan, 0, stop, images, small_obs.uvw_m, batched,
        small_idg.taper, lmn=small_idg.lmn, channel_recurrence=True,
    )
    scale = float(np.abs(per_item).max())
    np.testing.assert_allclose(
        batched, per_item, rtol=1e-5, atol=1e-5 * scale
    )


def test_tiny_batch_budget_still_matches(small_idg, small_plan, small_obs,
                                         single_source_vis):
    """Forcing one-item chunks exercises the chunk loop without changing
    results."""
    stop = min(12, small_plan.n_subgrids)
    roomy = grid_work_group_batched(
        small_plan, 0, stop, small_obs.uvw_m, single_source_vis,
        small_idg.taper, lmn=small_idg.lmn, channel_recurrence=True,
    )
    chunked = grid_work_group_batched(
        small_plan, 0, stop, small_obs.uvw_m, single_source_vis,
        small_idg.taper, lmn=small_idg.lmn, channel_recurrence=True,
        batch_bytes=1,
    )
    np.testing.assert_allclose(chunked, roomy, rtol=1e-12)
