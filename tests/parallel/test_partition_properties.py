"""Property tests for the LPT shard partitioner (hypothesis).

The process-sharded executor's correctness leans on three properties of
:func:`repro.parallel.partition.partition_work_groups`:

* **exactly-once** — every work group lands on exactly one shard (shards
  jointly cover the plan, no group is duplicated or dropped);
* **balance bound** — no shard carries more than ``total/n_shards`` plus one
  maximal group (the classic greedy-LPT guarantee the scaling benchmark's
  Amdahl comparison assumes);
* **stability** — the assignment is a pure function of the weights:
  deterministic across calls, and for distinct weights a permutation of the
  input permutes the assignment identically (shard choice follows the
  weight, not the position).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.partition import (
    partition_work_groups,
    plan_group_weights,
)

weights_st = st.lists(st.integers(min_value=0, max_value=10_000), max_size=64)
shards_st = st.integers(min_value=1, max_value=8)


@settings(deadline=None)
@given(weights=weights_st, n_shards=shards_st)
def test_every_group_assigned_exactly_once(weights, n_shards):
    assignment = partition_work_groups(weights, n_shards)
    assert assignment.n_groups == len(weights)
    assert all(0 <= s < n_shards for s in assignment.shard_of)
    covered = sorted(
        g for s in range(n_shards) for g in assignment.groups_for(s)
    )
    assert covered == list(range(len(weights)))
    for shard in range(n_shards):
        groups = assignment.groups_for(shard)
        assert list(groups) == sorted(groups)  # ascending plan order


@settings(deadline=None)
@given(weights=weights_st, n_shards=shards_st)
def test_lpt_balance_bound(weights, n_shards):
    assignment = partition_work_groups(weights, n_shards)
    loads = assignment.loads()
    assert sum(loads) == sum(weights)
    assert max(loads, default=0) <= assignment.balance_bound()


@settings(deadline=None)
@given(weights=weights_st, n_shards=shards_st)
def test_assignment_is_deterministic(weights, n_shards):
    first = partition_work_groups(weights, n_shards)
    second = partition_work_groups(list(weights), n_shards)
    assert first == second


@settings(deadline=None)
@given(
    weights=st.lists(
        st.integers(min_value=1, max_value=10_000), max_size=32, unique=True
    ),
    n_shards=shards_st,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_permutation_stability_for_distinct_weights(weights, n_shards, seed):
    """With distinct weights the placement order is weight-only, so shard
    choice follows the weight wherever it sits in the input."""
    assignment = partition_work_groups(weights, n_shards)
    perm = np.random.default_rng(seed).permutation(len(weights))
    permuted = partition_work_groups([weights[p] for p in perm], n_shards)
    for i, p in enumerate(perm):
        assert permuted.shard_of[i] == assignment.shard_of[p]


@settings(deadline=None)
@given(n_shards=st.integers(max_value=0))
def test_invalid_shard_count_rejected(n_shards):
    try:
        partition_work_groups([1, 2, 3], n_shards)
    except ValueError:
        return
    raise AssertionError("n_shards <= 0 must be rejected")


def test_negative_weights_rejected():
    import pytest

    with pytest.raises(ValueError):
        partition_work_groups([3, -1], 2)


def test_plan_group_weights_cover_the_plan(conformance):
    case = next(c for c in conformance.cases if c.name == "baseline")
    plan = conformance.workload(case)["plan"]
    weights = plan_group_weights(plan, 8)
    assert len(weights) == len(list(plan.work_groups(8)))
    assert all(w >= 1 for w in weights)  # empty groups still get assigned
