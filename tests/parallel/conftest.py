"""The shared corpus for the cross-executor conformance harness.

Every executor — serial :class:`~repro.core.IDG`, thread-parallel
:class:`~repro.parallel.ParallelIDG`, pipelined
:class:`~repro.runtime.StreamingIDG`, process-sharded
:class:`~repro.parallel.process.ProcessShardedIDG` — runs the same corpus of
small but structurally varied plans (plain, w-offset, A-term schedule,
wideband C = 512, flagged visibilities) and must reproduce the serial
executor's grids and visibilities **bit-identically** (``np.array_equal``,
no tolerance).  This replaces the ad-hoc pairwise bit-exactness checks that
used to live in ``tests/runtime/test_streaming.py`` and
``tests/parallel/test_executor.py``.

Workloads and serial references are computed once per case and cached for
the whole session in :class:`ConformanceCorpus` (synthesising the wideband
case is the expensive part).  The process executor runs with the ``fork``
start method so the harness stays fast on single-core CI hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.aterms.generators import GaussianBeamATerm
from repro.aterms.schedule import ATermSchedule
from repro.core.pipeline import IDG, IDGConfig
from repro.telescope.observation import ska1_low_observation

#: Executors held to bit-identical agreement with ``serial``.
EXECUTORS = ("serial", "threads", "streaming", "processes")


@dataclass(frozen=True)
class ConformanceCase:
    """One corpus entry: an observation geometry plus plan parameters."""

    name: str
    n_stations: int = 5
    n_times: int = 6
    n_channels: int = 4
    grid_size: int = 128
    subgrid_size: int = 12
    kernel_support: int = 4
    time_max: int = 4
    max_radius_m: float = 400.0
    fill_factor: float = 0.9
    w_offset: float = 0.0
    aterm_interval: int | None = None
    #: Fraction of (baseline, time, channel) samples flagged at random.
    flag_fraction: float = 0.0
    seed: int = 0


CONFORMANCE_CASES = (
    ConformanceCase("baseline", seed=11),
    ConformanceCase("w-offset", w_offset=15.0, fill_factor=1.4, seed=12),
    ConformanceCase("aterms", aterm_interval=3, seed=13),
    ConformanceCase(
        "wideband",
        n_stations=3,
        n_times=2,
        n_channels=512,
        subgrid_size=8,
        kernel_support=2,
        max_radius_m=250.0,
        seed=14,
    ),
    ConformanceCase("flagged", flag_fraction=0.25, seed=16),
)


class ConformanceCorpus:
    """Builds and caches per-case workloads and per-(case, executor) runs."""

    #: The case table, reachable from the ``conformance`` fixture (test
    #: modules in this directory have no package, so they cannot import
    #: this conftest directly).
    cases: tuple[ConformanceCase, ...] = ()  # filled in below

    def __init__(self) -> None:
        self._workloads: dict[str, dict] = {}
        self._references: dict[str, dict] = {}

    # -------------------------------------------------------------- workload

    def workload(self, case: ConformanceCase) -> dict:
        """Observation, plan, visibilities, model grid and flags of a case."""
        if case.name not in self._workloads:
            obs = ska1_low_observation(
                n_stations=case.n_stations,
                n_times=case.n_times,
                n_channels=case.n_channels,
                integration_time_s=60.0,
                max_radius_m=case.max_radius_m,
                seed=case.seed,
            )
            gridspec = obs.fitting_gridspec(
                case.grid_size, fill_factor=case.fill_factor
            )
            rng = np.random.default_rng(case.seed)
            vis_shape = (
                obs.array.n_baselines, case.n_times, case.n_channels, 2, 2
            )
            vis = (
                rng.standard_normal(vis_shape)
                + 1j * rng.standard_normal(vis_shape)
            ).astype(np.complex64)
            model_shape = (4, case.grid_size, case.grid_size)
            model = (
                rng.standard_normal(model_shape)
                + 1j * rng.standard_normal(model_shape)
            ).astype(np.complex64)
            aterms = schedule = None
            if case.aterm_interval is not None:
                aterms = GaussianBeamATerm(
                    fwhm=1.5 * gridspec.image_size, gain_drift_rms=0.05
                )
                schedule = ATermSchedule(case.aterm_interval)
            flags = None
            if case.flag_fraction > 0.0:
                flags = rng.random(vis_shape[:3]) < case.flag_fraction
                assert flags.any() and not flags.all()
            idg = IDG(
                gridspec,
                IDGConfig(
                    subgrid_size=case.subgrid_size,
                    kernel_support=case.kernel_support,
                    time_max=case.time_max,
                    work_group_size=8,
                ),
            )
            plan = idg.make_plan(
                obs.uvw_m,
                obs.frequencies_hz,
                obs.array.baselines(),
                aterm_schedule=schedule,
                w_offset=case.w_offset,
            )
            assert plan.statistics.n_visibilities_gridded > 0
            self._workloads[case.name] = {
                "obs": obs,
                "idg": idg,
                "plan": plan,
                "vis": vis,
                "model": model,
                "aterms": aterms,
                "flags": flags,
            }
        return self._workloads[case.name]

    # ------------------------------------------------------------- execution

    def reference(self, case: ConformanceCase) -> dict:
        """Serial grid and degrid results of a case (the oracle)."""
        if case.name not in self._references:
            self._references[case.name] = {
                "grid": self.run("serial", case, "grid"),
                "degrid": self.run("serial", case, "degrid"),
            }
        return self._references[case.name]

    def run(self, executor: str, case: ConformanceCase, kind: str) -> np.ndarray:
        """One (executor, case, kind) execution; returns the value array."""
        w = self.workload(case)
        idg, plan, obs = w["idg"], w["plan"], w["obs"]
        if executor == "serial":
            if kind == "grid":
                return idg.grid(
                    plan, obs.uvw_m, w["vis"],
                    aterms=w["aterms"], flags=w["flags"],
                )
            return idg.degrid(plan, obs.uvw_m, w["model"], aterms=w["aterms"])
        if executor == "threads":
            from repro.parallel.executor import ParallelIDG

            engine = ParallelIDG(idg, n_workers=2)
            if kind == "grid":
                return engine.grid(
                    plan, obs.uvw_m, w["vis"],
                    aterms=w["aterms"], flags=w["flags"],
                )
            return engine.degrid(plan, obs.uvw_m, w["model"], aterms=w["aterms"])
        if executor == "streaming":
            from repro.runtime import RuntimeConfig, StreamingIDG

            engine = StreamingIDG(
                idg,
                RuntimeConfig(
                    n_buffers=3, gridder_workers=2, fft_workers=2,
                    degridder_workers=2,
                ),
            )
            if kind == "grid":
                return engine.grid(
                    plan, obs.uvw_m, w["vis"],
                    aterms=w["aterms"], flags=w["flags"],
                )
            return engine.degrid(plan, obs.uvw_m, w["model"], aterms=w["aterms"])
        if executor == "processes":
            from repro.parallel.process import ProcessConfig, ProcessShardedIDG

            engine = ProcessShardedIDG(
                idg, ProcessConfig(n_procs=2, start_method="fork")
            )
            if kind == "grid":
                return engine.grid(
                    plan, obs.uvw_m, w["vis"],
                    aterms=w["aterms"], flags=w["flags"],
                )
            return engine.degrid(plan, obs.uvw_m, w["model"], aterms=w["aterms"])
        raise ValueError(f"unknown executor {executor!r}")


ConformanceCorpus.cases = CONFORMANCE_CASES


@pytest.fixture(scope="session")
def conformance():
    return ConformanceCorpus()


@pytest.fixture(params=CONFORMANCE_CASES, ids=lambda c: c.name)
def conformance_case(request):
    return request.param
