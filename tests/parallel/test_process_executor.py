"""ProcessShardedIDG: config validation, reductions, telemetry, checkpoints.

Cross-executor bit-exactness is pinned by ``test_executor_conformance.py``;
this module covers the process executor's own contract — the LPT shard map,
per-shard telemetry, the tree reduction's determinism, the fail-fast error
text, spawn-method support and checkpoint/resume.
"""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro.parallel.executor import WorkGroupError
from repro.parallel.process import ProcessConfig, ProcessShardedIDG


@pytest.fixture(scope="module")
def baseline(conformance):
    """The conformance corpus's baseline workload plus serial references."""
    case = next(c for c in conformance.cases if c.name == "baseline")
    w = conformance.workload(case)
    ref = conformance.reference(case)
    return {**w, "ref_grid": ref["grid"], "ref_degrid": ref["degrid"]}


def _engine(baseline, **kwargs):
    kwargs.setdefault("n_procs", 2)
    kwargs.setdefault("start_method", "fork")
    return ProcessShardedIDG(baseline["idg"], ProcessConfig(**kwargs))


# ------------------------------------------------------------- configuration


def test_config_validation():
    with pytest.raises(ValueError):
        ProcessConfig(n_procs=0)
    with pytest.raises(ValueError):
        ProcessConfig(reduction="bogus")
    with pytest.raises(ValueError):
        ProcessConfig(start_method="bogus")
    with pytest.raises(ValueError):
        ProcessConfig(poll_interval_s=-0.1)
    with pytest.raises(ValueError):
        ProcessConfig(checkpoint_interval=0)
    with pytest.raises(ValueError):
        ProcessConfig(emulate_compute_s=-1.0)
    assert ProcessConfig().reduction == "exact"


def test_checkpoint_refused_for_tree_reduction(tmp_path):
    """Tree-reduced shard grids are not a plan-order prefix sum, so a
    checkpoint taken from them could never resume bit-exactly."""
    path = str(tmp_path / "ck.npz")
    with pytest.raises(ValueError, match="exact reduction"):
        ProcessConfig(reduction="tree", checkpoint_path=path)
    with pytest.raises(ValueError, match="exact reduction"):
        ProcessConfig(reduction="tree", resume_from=path)


def test_n_procs_shorthand(baseline):
    engine = ProcessShardedIDG(baseline["idg"], n_procs=3)
    assert engine.config.n_procs == 3
    # shorthand overrides an explicit config's shard count too
    overridden = ProcessShardedIDG(baseline["idg"], ProcessConfig(), n_procs=3)
    assert overridden.config.n_procs == 3


# ---------------------------------------------------------------- reductions


def test_three_shards_bit_exact(baseline):
    """More shards than the conformance default; grid and degrid both."""
    engine = _engine(baseline, n_procs=3)
    obs = baseline["obs"]
    grid = engine.grid(baseline["plan"], obs.uvw_m, baseline["vis"])
    assert np.array_equal(grid, baseline["ref_grid"])
    degridded = engine.degrid(baseline["plan"], obs.uvw_m, baseline["model"])
    assert np.array_equal(degridded, baseline["ref_degrid"])


def test_spawn_start_method_bit_exact(baseline):
    """The portable default start method round-trips the shard task through
    pickle (fresh interpreters, nothing inherited by fork)."""
    engine = _engine(baseline, start_method="spawn")
    obs = baseline["obs"]
    grid = engine.grid(baseline["plan"], obs.uvw_m, baseline["vis"])
    assert np.array_equal(grid, baseline["ref_grid"])


def test_tree_reduction_deterministic_and_close(baseline):
    """Tree mode reassociates the shard sums (so only *close* to serial) but
    the pinned pairwise reduction order makes it deterministic run-to-run."""
    obs = baseline["obs"]
    first = _engine(baseline, n_procs=3, reduction="tree").grid(
        baseline["plan"], obs.uvw_m, baseline["vis"]
    )
    second = _engine(baseline, n_procs=3, reduction="tree").grid(
        baseline["plan"], obs.uvw_m, baseline["vis"]
    )
    assert np.array_equal(first, second)
    np.testing.assert_allclose(first, baseline["ref_grid"], rtol=1e-5, atol=1e-5)


# ------------------------------------------------- assignment and telemetry


def test_assignment_covers_every_group_once(baseline):
    engine = _engine(baseline, n_procs=3)
    obs = baseline["obs"]
    engine.grid(baseline["plan"], obs.uvw_m, baseline["vis"])
    assignment = engine.last_assignment
    assert assignment is not None and assignment.n_shards == 3
    n_groups = len(list(baseline["plan"].work_groups(8)))
    assert assignment.n_groups == n_groups
    all_groups = [g for s in range(3) for g in assignment.groups_for(s)]
    assert sorted(all_groups) == list(range(n_groups))
    assert max(assignment.loads()) <= assignment.balance_bound()


def test_per_shard_telemetry(baseline):
    engine = _engine(baseline, n_procs=2)
    obs = baseline["obs"]
    engine.grid(baseline["plan"], obs.uvw_m, baseline["vis"])
    telemetry = engine.last_telemetry
    assert telemetry is not None
    n_groups = len(list(baseline["plan"].work_groups(8)))
    # every work group produced one worker-side compute span...
    assert len(telemetry.spans("shard_compute")) == n_groups
    # ...attributed to a shard whose group counter adds up
    shard_groups = sum(
        int(telemetry.counters.get(f"shard{k}.groups", 0)) for k in range(2)
    )
    assert shard_groups == n_groups
    # and the parent retired every group through the adder, in plan order
    assert len(telemetry.spans("adder")) == n_groups
    assert telemetry.counters["visibilities"] > 0


# ------------------------------------------------------------------ failures


def test_failfast_error_names_group_and_shard(baseline, monkeypatch):
    """Without a fault-tolerance layer, a worker-side failure aborts the run
    with the plan range and shard in the message (fork inherits the patch)."""
    backend_cls = type(baseline["idg"].backend)
    real = backend_cls.grid_work_group

    def failing(self, plan, start, stop, *args, **kwargs):
        if start >= 8:
            raise RuntimeError("injected kernel failure")
        return real(self, plan, start, stop, *args, **kwargs)

    monkeypatch.setattr(backend_cls, "grid_work_group", failing)
    engine = _engine(baseline)
    obs = baseline["obs"]
    with pytest.raises(WorkGroupError) as err:
        engine.grid(baseline["plan"], obs.uvw_m, baseline["vis"])
    assert re.search(
        r"work group \d+ \(plan items \[\d+, \d+\)\) failed in shard \d",
        str(err.value),
    )
    assert "injected kernel failure" in str(err.value)


# ---------------------------------------------------------------- checkpoint


def test_checkpoint_and_resume_bit_exact(baseline, tmp_path):
    """A checkpointed run leaves a final snapshot; resuming from any snapshot
    of it reproduces the uninterrupted grid bit-exactly."""
    obs = baseline["obs"]
    path = str(tmp_path / "ck.npz")
    first = _engine(baseline, checkpoint_path=path, checkpoint_interval=2).grid(
        baseline["plan"], obs.uvw_m, baseline["vis"]
    )
    assert np.array_equal(first, baseline["ref_grid"])
    resumed = _engine(baseline, resume_from=path).grid(
        baseline["plan"], obs.uvw_m, baseline["vis"]
    )
    assert np.array_equal(resumed, baseline["ref_grid"])


def test_resume_rejects_mismatched_plan(baseline, conformance, tmp_path):
    """A checkpoint is bound to its plan signature; resuming a different
    plan must fail loudly rather than blend two observations."""
    obs = baseline["obs"]
    path = str(tmp_path / "ck.npz")
    _engine(baseline, checkpoint_path=path).grid(
        baseline["plan"], obs.uvw_m, baseline["vis"]
    )
    other_case = next(c for c in conformance.cases if c.name == "w-offset")
    other = conformance.workload(other_case)
    engine = ProcessShardedIDG(
        other["idg"],
        ProcessConfig(n_procs=2, start_method="fork", resume_from=path),
    )
    with pytest.raises(ValueError):
        engine.grid(other["plan"], other["obs"].uvw_m, other["vis"])
