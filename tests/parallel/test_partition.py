"""Unit tests for the row-partitioned adder."""

import numpy as np
import pytest

from repro.core.adder import add_subgrids
from repro.parallel.partition import RowPartition, add_subgrids_row_parallel


def test_row_partition_disjoint_and_complete():
    for workers in (1, 2, 3, 7):
        part = RowPartition.create(256, workers)
        assert part.covers_all_rows()
        assert len(part.bands) <= workers


def _random_subgrids(plan, count, seed=0):
    n = plan.subgrid_size
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((count, n, n, 2, 2)) + 1j * rng.standard_normal((count, n, n, 2, 2))
    ).astype(np.complex64)


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_row_parallel_matches_serial_adder(small_plan, n_workers):
    count = min(16, small_plan.n_subgrids)
    subs = _random_subgrids(small_plan, count, seed=n_workers)
    serial = small_plan.gridspec.allocate_grid()
    add_subgrids(serial, small_plan, subs, start=0)
    parallel = small_plan.gridspec.allocate_grid()
    add_subgrids_row_parallel(parallel, small_plan, subs, start=0, n_workers=n_workers)
    np.testing.assert_allclose(parallel, serial, atol=1e-6)


def test_row_parallel_shape_validation(small_plan):
    subs = _random_subgrids(small_plan, 1)
    with pytest.raises(ValueError):
        add_subgrids_row_parallel(np.zeros((4, 8, 8), np.complex64), small_plan, subs)
