"""ParallelIDG failure semantics and configuration.

Serial-equivalence (now bit-exact, not allclose) is pinned for every
executor by ``test_executor_conformance.py``; this module keeps the
thread-executor-specific behaviours — error attribution, early
cancellation, fault-report plumbing.
"""

import pytest

from repro.parallel.executor import ParallelIDG


def test_n_workers_validation(small_idg):
    with pytest.raises(ValueError):
        ParallelIDG(small_idg, n_workers=0)


def test_n_workers_defaults_to_cpu_count(small_idg):
    import os

    assert ParallelIDG(small_idg).n_workers == (os.cpu_count() or 1)


def test_worker_exceptions_surface(small_idg, small_plan, small_obs,
                                   single_source_vis):
    """A failing work group raises out of grid/degrid, not silently hangs."""
    bad_vis = single_source_vis[:, :, :1]  # wrong channel count
    par = ParallelIDG(small_idg.with_config(work_group_size=5), n_workers=2)
    with pytest.raises(Exception):
        par.grid(small_plan, small_obs.uvw_m, bad_vis)


def test_worker_error_names_the_work_group(small_idg, small_plan, small_obs,
                                           single_source_vis, monkeypatch):
    """A failing work group must be identifiable from the exception message
    (group index + plan item range), with the original error chained."""
    from repro.parallel.executor import WorkGroupError

    idg = small_idg.with_config(work_group_size=5)
    backend_cls = type(idg.backend)
    original = backend_cls.grid_work_group

    def failing(self, plan, start, stop, *args, **kwargs):
        if start == 10:
            raise ValueError("synthetic kernel failure")
        return original(self, plan, start, stop, *args, **kwargs)

    monkeypatch.setattr(backend_cls, "grid_work_group", failing)
    par = ParallelIDG(idg, n_workers=2)
    with pytest.raises(WorkGroupError, match=r"work group 2 \(plan items \[10, 15\)\)") as info:
        par.grid(small_plan, small_obs.uvw_m, single_source_vis)
    assert isinstance(info.value.__cause__, ValueError)


def test_first_failure_cancels_remaining_work(small_idg, small_plan,
                                              small_obs, single_source_vis,
                                              monkeypatch):
    """After the first work-group failure the executor must stop launching
    the remaining (doomed) work groups instead of grinding through them."""
    import threading
    import time as _time

    from repro.parallel.executor import WorkGroupError

    idg = small_idg.with_config(work_group_size=2)
    n_groups = len(list(small_plan.work_groups(2)))
    assert n_groups >= 8
    backend_cls = type(idg.backend)
    original = backend_cls.grid_work_group
    calls = []
    lock = threading.Lock()

    def instrumented(self, plan, start, stop, *args, **kwargs):
        with lock:
            calls.append(start)
        if start == 0:
            raise ValueError("first group fails immediately")
        _time.sleep(0.05)  # give the failure time to surface
        return original(self, plan, start, stop, *args, **kwargs)

    monkeypatch.setattr(backend_cls, "grid_work_group", instrumented)
    par = ParallelIDG(idg, n_workers=2)
    with pytest.raises(WorkGroupError):
        par.grid(small_plan, small_obs.uvw_m, single_source_vis)
    assert len(calls) < n_groups, (
        f"all {n_groups} work groups ran despite an early failure"
    )


def test_tolerant_mode_reports_on_last_fault_report(small_idg, small_plan,
                                                    small_obs,
                                                    single_source_vis):
    from repro.runtime import FaultPlan

    idg = small_idg.with_config(work_group_size=5, max_retries=1,
                                retry_backoff_s=0.0)
    par = ParallelIDG(idg, n_workers=2,
                      faults=FaultPlan.single("gridder", 0, times=-1))
    par.grid(small_plan, small_obs.uvw_m, single_source_vis)
    report = par.last_fault_report
    assert report is not None and report.n_dead_letters == 1
    assert report.dead_letters[0].group == 0
    # without tolerance the report stays None
    par_plain = ParallelIDG(small_idg, n_workers=2)
    par_plain.grid(small_plan, small_obs.uvw_m, single_source_vis)
    assert par_plain.last_fault_report is None
