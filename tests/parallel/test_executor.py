"""Integration tests: the parallel pipeline must match the serial one."""

import numpy as np
import pytest

from repro.aterms.generators import GaussianBeamATerm
from repro.parallel.executor import ParallelIDG


def test_n_workers_validation(small_idg):
    with pytest.raises(ValueError):
        ParallelIDG(small_idg, n_workers=0)


def test_n_workers_defaults_to_cpu_count(small_idg):
    import os

    assert ParallelIDG(small_idg).n_workers == (os.cpu_count() or 1)


def test_worker_exceptions_surface(small_idg, small_plan, small_obs,
                                   single_source_vis):
    """A failing work group raises out of grid/degrid, not silently hangs."""
    bad_vis = single_source_vis[:, :, :1]  # wrong channel count
    par = ParallelIDG(small_idg.with_config(work_group_size=5), n_workers=2)
    with pytest.raises(Exception):
        par.grid(small_plan, small_obs.uvw_m, bad_vis)


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_parallel_grid_matches_serial(small_idg, small_plan, small_obs,
                                      single_source_vis, n_workers):
    serial = small_idg.grid(small_plan, small_obs.uvw_m, single_source_vis)
    par = ParallelIDG(small_idg.with_config(work_group_size=5), n_workers=n_workers)
    parallel = par.grid(small_plan, small_obs.uvw_m, single_source_vis)
    np.testing.assert_allclose(parallel, serial, atol=2e-4)


@pytest.mark.parametrize("n_workers", [1, 3])
def test_parallel_degrid_matches_serial(small_idg, small_plan, small_obs,
                                        single_source_vis, n_workers):
    grid = small_idg.grid(small_plan, small_obs.uvw_m, single_source_vis)
    serial = small_idg.degrid(small_plan, small_obs.uvw_m, grid)
    par = ParallelIDG(small_idg.with_config(work_group_size=7), n_workers=n_workers)
    parallel = par.degrid(small_plan, small_obs.uvw_m, grid)
    np.testing.assert_allclose(parallel, serial, atol=2e-4)


def test_parallel_with_aterms(small_idg, small_plan, small_obs, single_source_vis,
                              small_gridspec):
    beam = GaussianBeamATerm(fwhm=1.5 * small_gridspec.image_size)
    serial = small_idg.grid(small_plan, small_obs.uvw_m, single_source_vis, aterms=beam)
    par = ParallelIDG(small_idg.with_config(work_group_size=4), n_workers=3)
    parallel = par.grid(small_plan, small_obs.uvw_m, single_source_vis, aterms=beam)
    np.testing.assert_allclose(parallel, serial, atol=2e-4)
