"""Executor conformance for the FTProcessor pipeline.

The PR 8 corpus pins bit-identical grids/predictions across the four
executors for the raw IDG surface; this extends the guarantee one layer up:
a full pipeline invert/predict (including w-stacking and faceting, whose
post-processing is plain numpy) is ``np.array_equal`` across executors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import IDG, IDGConfig
from repro.imaging.pipeline import EXECUTORS, ImagingContext, make_ftprocessor
from repro.sky.model import SkyModel
from repro.sky.simulate import predict_visibilities
from repro.telescope.observation import ska1_low_observation

GRID = 64
KINDS = ("2d", "wstack", "facets", "wstack_facets")


@pytest.fixture(scope="module")
def workload():
    obs = ska1_low_observation(
        n_stations=6, n_times=8, n_channels=1, integration_time_s=120.0,
        max_radius_m=1500.0, seed=4,
    )
    gridspec = obs.fitting_gridspec(GRID, fill_factor=1.2)
    idg = IDG(gridspec, IDGConfig(subgrid_size=16, kernel_support=6, time_max=8))
    baselines = obs.array.baselines()
    dl = gridspec.pixel_scale
    sky = SkyModel.single(6 * dl, -5 * dl, flux=3.0)
    vis = predict_visibilities(obs.uvw_m, obs.frequencies_hz, sky,
                               baselines=baselines)
    model = np.zeros((GRID, GRID))
    model[GRID // 2 - 5, GRID // 2 + 6] = 3.0
    return obs, idg, baselines, vis, model


def _run(workload, executor: str, kind: str):
    obs, idg, baselines, vis, model = workload
    context = ImagingContext(
        idg=idg, uvw_m=obs.uvw_m, frequencies_hz=obs.frequencies_hz,
        baselines=baselines, executor=executor, executor_workers=2,
        start_method="fork",
    )
    processor = make_ftprocessor(context, kind=kind)
    return processor.invert(vis).image, processor.predict(model)


@pytest.fixture(scope="module")
def references(workload):
    return {kind: _run(workload, "serial", kind) for kind in KINDS}


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("executor", [e for e in EXECUTORS if e != "serial"])
def test_pipeline_bit_identical_across_executors(
    workload, references, executor, kind
):
    image, predicted = _run(workload, executor, kind)
    reference_image, reference_predicted = references[kind]
    assert np.array_equal(image, reference_image)
    assert np.array_equal(predicted, reference_predicted)
