"""Fault isolation: a poisoned request must not take the service down.

The acceptance scenario from the issue: one tenant submits a request whose
execution is fault-injected, concurrent tenants submit clean requests, and

* the poisoned request is retried, then quarantined per PR 5 dead-letter
  semantics — a ``DEAD_LETTERED`` result carrying the
  :class:`~repro.runtime.recovery.FaultReport`, never a service crash;
* the clean tenants' results are bit-identical to library-direct
  execution;
* even an injected *crash* (``InjectedCrash`` derives from
  ``BaseException`` so the retry layer never masks it) fails only its own
  job, and the worker thread survives to execute later jobs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import IDGConfig
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.service import (
    GriddingService,
    JobKind,
    JobSpec,
    JobStatus,
    ServiceConfig,
)


@pytest.fixture()
def tolerant_idg_config(small_idg):
    return IDGConfig(
        subgrid_size=small_idg.config.subgrid_size,
        kernel_support=small_idg.config.kernel_support,
        time_max=small_idg.config.time_max,
        max_retries=1,
        retry_backoff_s=0.0,
    )


@pytest.fixture()
def make_spec(small_obs, small_baselines, small_gridspec, single_source_vis):
    def build(tenant, scale=1.0, faults=None):
        return JobSpec(
            kind=JobKind.IMAGE,
            tenant=tenant,
            uvw_m=small_obs.uvw_m,
            frequencies_hz=small_obs.frequencies_hz,
            baselines=small_baselines,
            gridspec=small_gridspec,
            visibilities=(
                single_source_vis if scale == 1.0
                else single_source_vis * scale
            ),
            faults=faults,
        )

    return build


def test_poisoned_request_dead_lettered_others_bit_identical(
    small_idg, small_plan, small_obs, single_source_vis, make_spec,
    tolerant_idg_config,
):
    direct = small_idg.grid(small_plan, small_obs.uvw_m, single_source_vis)
    poison = FaultPlan([FaultSpec("gridder", 0, times=-1)])  # permanent
    config = ServiceConfig(
        n_workers=2, idg=tolerant_idg_config, autostart=False
    )
    service = GriddingService(config)
    bad = service.submit(make_spec("mallory", faults=poison))
    clean = [service.submit(make_spec(f"tenant-{k}")) for k in range(3)]
    service.start()
    bad_result = bad.result(timeout=300)
    clean_results = [handle.result(timeout=300) for handle in clean]
    service.close()

    # Quarantined, not fatal: the report accounts for the lost work group.
    assert bad_result.status is JobStatus.DEAD_LETTERED
    report = bad_result.fault_report
    assert report is not None and not report.ok
    assert report.n_dead_letters >= 1
    assert report.n_visibilities_lost > 0
    assert bad_result.retries >= 1
    # The partial grid excludes the dead-lettered group but still exists.
    assert bad_result.value is not None
    assert not np.array_equal(bad_result.value, direct)

    # Concurrent tenants: bit-identical to library-direct execution.
    for result in clean_results:
        assert result.status is JobStatus.DONE
        assert result.fault_report is not None and result.fault_report.ok
        assert np.array_equal(result.value, direct)

    counters = service.metrics.counters
    assert counters["jobs.dead_lettered"] == 1
    assert counters["tenant.mallory.dead_lettered"] == 1
    assert counters["jobs.done"] == 3


def test_injected_crash_fails_job_but_worker_survives(
    make_spec, tolerant_idg_config
):
    crash = FaultPlan([FaultSpec("gridder", 0, kind="crash", times=-1)])
    config = ServiceConfig(
        n_workers=1, idg=tolerant_idg_config, autostart=False
    )
    service = GriddingService(config)
    crashed = service.submit(make_spec("mallory", faults=crash))
    service.start()
    result = crashed.result(timeout=300)
    assert result.status is JobStatus.FAILED
    assert "injected crash" in result.error
    assert result.value is None

    # The single worker survived the BaseException: later jobs complete.
    after = service.submit(make_spec("alice"))
    assert after.result(timeout=300).status is JobStatus.DONE
    service.close()
    counters = service.metrics.counters
    assert counters["jobs.failed"] == 1
    assert counters["jobs.done"] == 1


def test_transient_fault_recovers_to_done(make_spec, tolerant_idg_config):
    transient = FaultPlan([FaultSpec("gridder", 0, times=1)])
    config = ServiceConfig(
        n_workers=1, idg=tolerant_idg_config, autostart=False
    )
    service = GriddingService(config)
    handle = service.submit(make_spec("alice", faults=transient))
    service.start()
    result = handle.result(timeout=300)
    service.close()
    assert result.status is JobStatus.DONE
    assert result.retries == 1
    assert result.fault_report is not None and result.fault_report.ok
