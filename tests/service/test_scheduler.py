"""GriddingService: admission control, quotas, priorities, lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service import (
    GriddingService,
    JobKind,
    JobSpec,
    JobStatus,
    Overloaded,
    ServiceConfig,
)


@pytest.fixture()
def make_spec(small_obs, small_baselines, small_gridspec, single_source_vis):
    """Factory for IMAGE specs on the shared small observation; ``scale``
    varies the payload bytes so specs with different scales never coalesce."""

    def build(tenant="t0", scale=1.0, priority=0, faults=None):
        return JobSpec(
            kind=JobKind.IMAGE,
            tenant=tenant,
            uvw_m=small_obs.uvw_m,
            frequencies_hz=small_obs.frequencies_hz,
            baselines=small_baselines,
            gridspec=small_gridspec,
            visibilities=(
                single_source_vis if scale == 1.0
                else single_source_vis * scale
            ),
            priority=priority,
            faults=faults,
        )

    return build


def _service_config(small_idg, **kwargs):
    kwargs.setdefault("idg", small_idg.config)
    kwargs.setdefault("n_workers", 2)
    return ServiceConfig(**kwargs)


def test_image_job_bit_identical_to_library_direct(
    small_idg, small_plan, small_obs, single_source_vis, make_spec
):
    direct = small_idg.grid(small_plan, small_obs.uvw_m, single_source_vis)
    with GriddingService(_service_config(small_idg)) as service:
        result = service.submit(make_spec()).result(timeout=300)
    assert result.status is JobStatus.DONE
    assert np.array_equal(result.value, direct)
    assert not result.value.flags.writeable


def test_predict_job_bit_identical_to_library_direct(
    small_idg, small_plan, small_obs, small_baselines, small_gridspec,
    single_source_vis,
):
    model = small_idg.grid(small_plan, small_obs.uvw_m, single_source_vis)
    direct = small_idg.degrid(small_plan, small_obs.uvw_m, model)
    spec = JobSpec(
        kind=JobKind.PREDICT,
        tenant="t0",
        uvw_m=small_obs.uvw_m,
        frequencies_hz=small_obs.frequencies_hz,
        baselines=small_baselines,
        gridspec=small_gridspec,
        model_grid=model,
    )
    with GriddingService(_service_config(small_idg)) as service:
        result = service.submit(spec).result(timeout=300)
    assert result.status is JobStatus.DONE
    assert np.array_equal(result.value, direct)


def test_queue_full_sheds_with_typed_error(small_idg, make_spec):
    config = _service_config(
        small_idg, max_queue_depth=2, autostart=False
    )
    service = GriddingService(config)
    try:
        service.submit(make_spec(scale=1.0))
        service.submit(make_spec(scale=2.0))
        with pytest.raises(Overloaded) as excinfo:
            service.submit(make_spec(scale=3.0))
        assert excinfo.value.reason == "queue_full"
        assert excinfo.value.tenant == "t0"
        assert service.metrics.counters["jobs.shed"] == 1
        assert service.metrics.counters["tenant.t0.shed"] == 1
    finally:
        service.close(drain=False)


def test_tenant_backlog_sheds_only_the_backlogged_tenant(small_idg, make_spec):
    config = _service_config(
        small_idg, max_queue_depth=64, tenant_backlog=1, autostart=False
    )
    service = GriddingService(config)
    try:
        service.submit(make_spec(tenant="a", scale=1.0))
        with pytest.raises(Overloaded) as excinfo:
            service.submit(make_spec(tenant="a", scale=2.0))
        assert excinfo.value.reason == "tenant_backlog"
        # The other tenant still has room.
        service.submit(make_spec(tenant="b", scale=3.0))
    finally:
        service.close(drain=False)


def test_priority_order_with_single_worker(small_idg, make_spec):
    config = _service_config(
        small_idg, n_workers=1, autostart=False, coalesce=False
    )
    service = GriddingService(config)
    handles = [
        service.submit(make_spec(scale=1.0 + k, priority=k)) for k in range(3)
    ]
    service.start()
    for handle in handles:
        assert handle.result(timeout=300).status is JobStatus.DONE
    service.close()
    spans = sorted(
        service.metrics.telemetry.spans("service:exec"), key=lambda s: s.start
    )
    # seq == submission index; highest priority (last submitted) ran first.
    assert [span.item for span in spans] == [2, 1, 0]


def test_tenant_quota_serialises_one_tenants_jobs(small_idg, make_spec):
    config = _service_config(
        small_idg, n_workers=2, tenant_quota=1, autostart=False,
        coalesce=False,
    )
    service = GriddingService(config)
    handles = [
        service.submit(make_spec(tenant="a", scale=1.0 + k)) for k in range(2)
    ]
    service.start()
    for handle in handles:
        assert handle.result(timeout=300).status is JobStatus.DONE
    service.close()
    spans = sorted(
        service.metrics.telemetry.spans("service:exec"), key=lambda s: s.start
    )
    assert len(spans) == 2
    # quota 1: the tenant's executions must never overlap, even with two
    # idle workers available.
    assert spans[1].start >= spans[0].end


def test_close_drain_false_fails_pending(small_idg, make_spec):
    service = GriddingService(_service_config(small_idg, autostart=False))
    handle = service.submit(make_spec())
    service.close(drain=False)
    result = handle.result(timeout=10)
    assert result.status is JobStatus.FAILED
    assert "closed" in result.error
    with pytest.raises(RuntimeError):
        service.submit(make_spec())


def test_close_drain_completes_queued_jobs(small_idg, make_spec):
    service = GriddingService(_service_config(small_idg))
    handle = service.submit(make_spec())
    service.close(drain=True)
    assert handle.result(timeout=10).status is JobStatus.DONE


def test_result_timeout(small_idg, make_spec):
    service = GriddingService(_service_config(small_idg, autostart=False))
    handle = service.submit(make_spec())
    try:
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.05)
    finally:
        service.close(drain=False)


def test_config_validation():
    with pytest.raises(ValueError):
        ServiceConfig(n_workers=0)
    with pytest.raises(ValueError):
        ServiceConfig(max_queue_depth=0)
    with pytest.raises(ValueError):
        ServiceConfig(tenant_backlog=0)


def test_spec_validation(small_obs, small_baselines, small_gridspec):
    with pytest.raises(ValueError):
        JobSpec(
            kind=JobKind.IMAGE,
            tenant="t",
            uvw_m=small_obs.uvw_m,
            frequencies_hz=small_obs.frequencies_hz,
            baselines=small_baselines,
            gridspec=small_gridspec,
        )
    with pytest.raises(ValueError):
        JobSpec(
            kind=JobKind.PREDICT,
            tenant="t",
            uvw_m=small_obs.uvw_m,
            frequencies_hz=small_obs.frequencies_hz,
            baselines=small_baselines,
            gridspec=small_gridspec,
        )


# ----------------------------------------------------------------- selfcal


def test_selfcal_job_end_to_end(small_idg):
    """A SELFCAL job runs the whole loop in a worker and returns the gain
    solutions with imaging telemetry in the metadata."""
    from repro.calibration.gains import corrupt_with_gains, random_gains
    from repro.calibration.selfcal import SelfCalConfig, gain_amplitude_error
    from repro.sky.model import SkyModel
    from repro.sky.simulate import predict_visibilities
    from repro.telescope.observation import ska1_low_observation

    obs = ska1_low_observation(
        n_stations=8, n_times=16, n_channels=2, integration_time_s=120.0,
        max_radius_m=2000.0, seed=1,
    )
    gridspec = obs.fitting_gridspec(64, fill_factor=1.2)
    baselines = obs.array.baselines()
    dl = gridspec.pixel_scale
    sky = SkyModel.single(6 * dl, -5 * dl, flux=3.0)
    vis = predict_visibilities(obs.uvw_m, obs.frequencies_hz, sky,
                               baselines=baselines)
    true_gains = random_gains(8, amplitude_rms=0.15, phase_rms_rad=0.5, seed=7)
    true_gains = true_gains / np.abs(true_gains[0])
    spec = JobSpec(
        kind=JobKind.SELFCAL,
        tenant="t0",
        uvw_m=obs.uvw_m,
        frequencies_hz=obs.frequencies_hz,
        baselines=baselines,
        gridspec=gridspec,
        visibilities=corrupt_with_gains(vis, true_gains, baselines),
        n_stations=8,
        selfcal=SelfCalConfig(n_cycles=12),
    )
    with GriddingService(_service_config(small_idg)) as service:
        result = service.submit(spec).result(timeout=300)
    assert result.status is JobStatus.DONE
    assert result.value.shape == (1, 8)
    assert gain_amplitude_error(result.value, true_gains) < 0.01
    for key in ("n_cycles", "converged", "residual_rms", "dynamic_range",
                "model_image", "residual_image", "history"):
        assert key in result.metadata
    assert result.metadata["model_image"].shape == (64, 64)
    assert len(result.metadata["history"]) == result.metadata["n_cycles"]


def test_selfcal_spec_validation(small_obs, small_baselines, small_gridspec,
                                 single_source_vis):
    with pytest.raises(ValueError, match="n_stations"):
        JobSpec(
            kind=JobKind.SELFCAL,
            tenant="t",
            uvw_m=small_obs.uvw_m,
            frequencies_hz=small_obs.frequencies_hz,
            baselines=small_baselines,
            gridspec=small_gridspec,
            visibilities=single_source_vis,
        )
    with pytest.raises(ValueError, match="visibilities"):
        JobSpec(
            kind=JobKind.SELFCAL,
            tenant="t",
            uvw_m=small_obs.uvw_m,
            frequencies_hz=small_obs.frequencies_hz,
            baselines=small_baselines,
            gridspec=small_gridspec,
            n_stations=12,
        )
