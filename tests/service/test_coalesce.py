"""Request coalescing and content-hash identity keys."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aterms.generators import GaussianBeamATerm, IdentityATerm
from repro.core.pipeline import IDGConfig
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.service import (
    GriddingService,
    JobKind,
    JobSpec,
    JobStatus,
    ServiceConfig,
    aterm_signature,
    execution_key,
    plan_key,
)
from repro.service.coalesce import IDENTITY_ATERM_SIGNATURE


@pytest.fixture()
def make_spec(small_obs, small_baselines, small_gridspec, single_source_vis):
    def build(tenant="t0", scale=1.0, faults=None, aterms=None, kind=JobKind.IMAGE):
        payload = (
            single_source_vis if scale == 1.0 else single_source_vis * scale
        )
        return JobSpec(
            kind=kind,
            tenant=tenant,
            uvw_m=small_obs.uvw_m,
            frequencies_hz=small_obs.frequencies_hz,
            baselines=small_baselines,
            gridspec=small_gridspec,
            visibilities=payload if kind is JobKind.IMAGE else None,
            model_grid=(
                np.zeros((4, small_gridspec.grid_size,
                          small_gridspec.grid_size), dtype=np.complex64)
                if kind is JobKind.PREDICT else None
            ),
            aterms=aterms,
            faults=faults,
        )

    return build


# ------------------------------------------------------------------- keys


class TestKeys:
    def test_plan_key_shared_across_payloads(self, make_spec, small_idg):
        config = small_idg.config
        assert plan_key(make_spec(scale=1.0), config) == plan_key(
            make_spec(scale=2.0), config
        )

    def test_plan_key_sensitive_to_plan_parameters(self, make_spec, small_idg):
        base = plan_key(make_spec(), small_idg.config)
        other = IDGConfig(
            subgrid_size=small_idg.config.subgrid_size,
            kernel_support=small_idg.config.kernel_support,
            time_max=small_idg.config.time_max * 2,
        )
        assert plan_key(make_spec(), other) != base

    def test_execution_key_separates_payloads_and_kinds(
        self, make_spec, small_idg
    ):
        config = small_idg.config
        spec_a = make_spec(scale=1.0)
        spec_b = make_spec(scale=2.0)
        pkey = plan_key(spec_a, config)
        assert execution_key(spec_a, pkey, config) == execution_key(
            make_spec(scale=1.0), pkey, config
        )
        assert execution_key(spec_a, pkey, config) != execution_key(
            spec_b, pkey, config
        )
        predict = make_spec(kind=JobKind.PREDICT)
        assert execution_key(predict, pkey, config) != execution_key(
            spec_a, pkey, config
        )

    def test_faulted_jobs_never_get_a_key(self, make_spec, small_idg):
        spec = make_spec(faults=FaultPlan([FaultSpec("gridder", 0)]))
        pkey = plan_key(spec, small_idg.config)
        assert execution_key(spec, pkey, small_idg.config) is None

    def test_aterm_signature(self, make_spec):
        assert aterm_signature(make_spec()) == IDENTITY_ATERM_SIGNATURE
        assert (
            aterm_signature(make_spec(aterms=IdentityATerm()))
            == IDENTITY_ATERM_SIGNATURE
        )
        beam_a = aterm_signature(make_spec(aterms=GaussianBeamATerm(0.5)))
        beam_b = aterm_signature(make_spec(aterms=GaussianBeamATerm(0.5)))
        assert beam_a == beam_b != IDENTITY_ATERM_SIGNATURE
        assert beam_a != aterm_signature(
            make_spec(aterms=GaussianBeamATerm(0.25))
        )


# -------------------------------------------------------------- behaviour


def _config(small_idg, **kwargs):
    kwargs.setdefault("idg", small_idg.config)
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("autostart", False)
    return ServiceConfig(**kwargs)


def test_identical_requests_share_one_execution(small_idg, make_spec):
    service = GriddingService(_config(small_idg))
    handles = [service.submit(make_spec(tenant=f"t{k}")) for k in range(4)]
    service.start()
    results = [handle.result(timeout=300) for handle in handles]
    service.close()
    assert all(r.status is JobStatus.DONE for r in results)
    first = results[0]
    # One execution fanned out: every waiter holds THE SAME array object.
    assert all(r.value is first.value for r in results[1:])
    assert not first.coalesced
    assert all(r.coalesced for r in results[1:])
    counters = service.metrics.counters
    assert counters["jobs.executed"] == 1
    assert counters["jobs.coalesced"] == 3
    assert counters["jobs.submitted"] == 4


def test_plan_shared_across_distinct_payloads(small_idg, make_spec):
    service = GriddingService(_config(small_idg))
    h1 = service.submit(make_spec(scale=1.0))
    h2 = service.submit(make_spec(scale=2.0))
    service.start()
    r1, r2 = h1.result(timeout=300), h2.result(timeout=300)
    service.close()
    assert r1.status is JobStatus.DONE and r2.status is JobStatus.DONE
    assert r1.value is not r2.value  # different payloads: two executions
    plans = service.stats()["plan_cache"]
    # Two executions, one shared layout: first misses, second hits.
    assert (plans.misses, plans.hits) == (1, 1)


def test_coalesce_disabled_executes_equal_requests_separately(
    small_idg, make_spec
):
    service = GriddingService(_config(small_idg, coalesce=False))
    h1 = service.submit(make_spec())
    h2 = service.submit(make_spec())
    service.start()
    r1, r2 = h1.result(timeout=300), h2.result(timeout=300)
    service.close()
    assert service.metrics.counters["jobs.executed"] == 2
    assert r1.value is not r2.value
    # ...but determinism still makes them bit-identical.
    assert np.array_equal(r1.value, r2.value)


def test_faulted_jobs_do_not_coalesce(small_idg, make_spec):
    config = _config(
        small_idg,
        idg=IDGConfig(
            subgrid_size=small_idg.config.subgrid_size,
            kernel_support=small_idg.config.kernel_support,
            time_max=small_idg.config.time_max,
            max_retries=2,
            retry_backoff_s=0.0,
        ),
    )
    service = GriddingService(config)
    # Transient fault plans are stateful: identical-looking requests must
    # never share an execution.
    h1 = service.submit(
        make_spec(faults=FaultPlan([FaultSpec("gridder", 0, times=1)]))
    )
    h2 = service.submit(
        make_spec(faults=FaultPlan([FaultSpec("gridder", 0, times=1)]))
    )
    service.start()
    r1, r2 = h1.result(timeout=300), h2.result(timeout=300)
    service.close()
    assert service.metrics.counters["jobs.executed"] == 2
    assert service.metrics.counters.get("jobs.coalesced", 0) == 0
    # Both recovered via retries independently.
    assert r1.status is JobStatus.DONE and r2.status is JobStatus.DONE
    assert r1.retries >= 1 and r2.retries >= 1


def test_selfcal_jobs_never_get_an_execution_key(
    small_obs, small_baselines, small_gridspec, single_source_vis, small_idg
):
    """Iterative solves are excluded from coalescing by construction."""
    spec = JobSpec(
        kind=JobKind.SELFCAL,
        tenant="t0",
        uvw_m=small_obs.uvw_m,
        frequencies_hz=small_obs.frequencies_hz,
        baselines=small_baselines,
        gridspec=small_gridspec,
        visibilities=single_source_vis,
        n_stations=12,
    )
    key = plan_key(spec, small_idg.config)
    assert execution_key(spec, key, small_idg.config) is None
