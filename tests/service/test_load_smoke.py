"""Load smoke: run_load drives the service end-to-end and reconciles."""

from __future__ import annotations

import pytest

from repro.service import LoadSpec, ServiceConfig, build_specs, run_load


@pytest.fixture()
def specs_for(small_obs, small_baselines, small_gridspec, single_source_vis):
    def build(load):
        return build_specs(
            load,
            uvw_m=small_obs.uvw_m,
            frequencies_hz=small_obs.frequencies_hz,
            baselines=small_baselines,
            gridspec=small_gridspec,
            visibilities=single_source_vis,
        )

    return build


def test_load_smoke_all_done_and_reconciles(small_idg, specs_for):
    load = LoadSpec(n_tenants=3, requests_per_tenant=4, n_distinct=2)
    config = ServiceConfig(n_workers=2, idg=small_idg.config)
    report = run_load(config, specs_for(load))

    assert report.n_requests == load.n_requests == 12
    assert report.n_shed == 0
    assert report.n_completed == 12
    assert report.statuses == {"done": 12}
    assert report.requests_per_s > 0
    assert report.p95_latency_s >= report.mean_latency_s > 0
    assert all(report.reconciliation().values()), report.reconciliation()

    # Per-tenant counters are present for every synthetic tenant.
    for t in range(load.n_tenants):
        assert report.counters[f"tenant.tenant-{t}.submitted"] == 4
        assert report.counters[f"tenant.tenant-{t}.done"] == 4

    # Coalescing kicked in: only the distinct payloads executed.
    assert report.counters["jobs.executed"] == load.n_distinct
    assert report.counters["jobs.coalesced"] == 12 - load.n_distinct

    # Cache stats rode along in the report.
    assert "service.plans" in report.caches
    plans = report.caches["service.plans"]
    assert plans.hits + plans.misses == report.counters["jobs.executed"]


def test_load_smoke_with_shedding_still_reconciles(small_idg, specs_for):
    load = LoadSpec(n_tenants=2, requests_per_tenant=4, n_distinct=8)
    config = ServiceConfig(
        n_workers=1, max_queue_depth=2, coalesce=False, idg=small_idg.config
    )
    report = run_load(config, specs_for(load))

    assert report.n_shed == report.n_requests - report.n_completed > 0
    assert report.statuses.get("done", 0) == report.n_completed
    assert all(report.reconciliation().values()), report.reconciliation()
    assert report.counters["jobs.shed"] == report.n_shed
    assert report.counters.get("jobs.coalesced", 0) == 0


def test_load_spec_validation():
    with pytest.raises(ValueError):
        LoadSpec(n_tenants=0)
    with pytest.raises(ValueError):
        LoadSpec(n_distinct=0)
