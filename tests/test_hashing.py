"""Shared content hashing: type-tagged digests + the checkpoint byte stream.

The regression that matters most here: ``plan_signature`` moved from an
inline hashlib implementation onto :class:`repro.hashing.ContentHasher`, and
checkpoints written by earlier builds must keep validating — so a known
plan's digest is pinned verbatim.
"""

from __future__ import annotations

import dataclasses
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.plan import WORK_ITEM_DTYPE
from repro.gridspec import GridSpec
from repro.hashing import ContentHasher, content_hash
from repro.runtime.checkpoint import plan_signature

#: Digest of _pinned_plan() at work_group_size=7, captured from the
#: pre-refactor inline implementation.  If this changes, old checkpoints
#: stop resuming — do not update without a checkpoint-format version bump.
PINNED_SIGNATURE = (
    "8e5d18a8791c37658a83d1bf41615da8270ec4c2c8bd632744ac809618f1258b"
)


def _pinned_plan():
    items = np.zeros(3, dtype=WORK_ITEM_DTYPE)
    for k in range(3):
        items[k] = (k, k, k + 1, 2 * k, 2 * k + 2, 0, 3, 10 + k, 20 - k, 0)
    return SimpleNamespace(
        items=items,
        frequencies_hz=np.array([1.0e8, 1.1e8, 1.2e8]),
        subgrid_size=16,
        kernel_support=4,
        gridspec=GridSpec(128, 0.05),
        w_offset=0.25,
        flagged=np.zeros((3, 6, 3), dtype=bool),
    )


class TestPlanSignature:
    def test_pinned_digest_unchanged(self):
        assert plan_signature(_pinned_plan(), 7) == PINNED_SIGNATURE

    def test_varies_with_work_group_size(self):
        plan = _pinned_plan()
        assert plan_signature(plan, 7) != plan_signature(plan, 8)

    def test_varies_with_items(self):
        plan = _pinned_plan()
        base = plan_signature(plan, 7)
        plan.items["corner_u"][0] += 1
        assert plan_signature(plan, 7) != base


class TestContentHasher:
    def test_deterministic_and_order_sensitive(self):
        a = ContentHasher()
        a.update_ints(1, 2)
        b = ContentHasher()
        b.update_ints(2, 1)
        c = ContentHasher()
        c.update_ints(1, 2)
        assert a.hexdigest() == c.hexdigest()
        assert a.hexdigest() != b.hexdigest()

    def test_array_bytes_untagged(self):
        """The checkpoint stream hashes raw C-order bytes (historical
        format): same bytes, same digest, dtype/shape notwithstanding."""
        a = ContentHasher()
        a.update_array(np.zeros(4, dtype=np.int32))
        b = ContentHasher()
        b.update_array(np.zeros(2, dtype=np.int64))
        assert a.hexdigest() == b.hexdigest()


class TestContentHash:
    def test_stable_across_calls(self):
        arr = np.arange(6, dtype=np.float32).reshape(2, 3)
        assert content_hash("x", arr, 1.5) == content_hash("x", arr, 1.5)

    def test_type_tagged(self):
        """Unlike the checkpoint stream, the cache key *is* type-tagged:
        equal bytes with different dtype/shape must not collide."""
        a = np.zeros(4, dtype=np.int32)
        b = np.zeros(2, dtype=np.int64)
        assert content_hash(a) != content_hash(b)
        assert content_hash(np.zeros((2, 3))) != content_hash(np.zeros((3, 2)))
        assert content_hash(1) != content_hash(1.0)
        assert content_hash(True) != content_hash(1)
        assert content_hash("1") != content_hash(1)
        assert content_hash(None) != content_hash(0)

    def test_scalars_and_containers(self):
        assert content_hash((1, 2)) == content_hash([1, 2])
        assert content_hash({"a": 1, "b": 2}) == content_hash({"b": 2, "a": 1})
        assert content_hash({"a": 1}) != content_hash({"a": 2})
        assert content_hash(1 + 2j) == content_hash(complex(1, 2))

    def test_dataclasses(self):
        assert content_hash(GridSpec(128, 0.05)) == content_hash(
            GridSpec(128, 0.05)
        )
        assert content_hash(GridSpec(128, 0.05)) != content_hash(
            GridSpec(128, 0.06)
        )

        @dataclasses.dataclass(frozen=True)
        class Other:
            grid_size: int = 128
            image_size: float = 0.05

        # Same field names/values but a different class: distinct keys.
        assert content_hash(Other()) != content_hash(GridSpec(128, 0.05))

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            content_hash(object())
