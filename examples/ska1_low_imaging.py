#!/usr/bin/env python
"""Full imaging pipeline on an SKA1-low-like synthesis observation.

Reproduces the workload of the paper's Fig 2 end to end: simulate a random
point-source field, run the CLEAN major cycle (grid -> image -> CLEAN ->
predict -> subtract, iterated), and compare the recovered catalogue against
the truth.  The observation is a scaled version of the Section VI-A
benchmark set (the full 150-station / 8192-timestep set holds ~10^9
visibilities; per-visibility behaviour is identical — see DESIGN.md).

Run:  python examples/ska1_low_imaging.py
"""

import time

import numpy as np

import repro
from repro.imaging.image import find_peak


def main() -> None:
    obs = repro.ska1_low_observation(
        n_stations=20, n_times=96, n_channels=8,
        integration_time_s=90.0, max_radius_m=4_000.0, seed=11,
    )
    baselines = obs.array.baselines()
    gridspec = obs.fitting_gridspec(grid_size=512)
    print(f"observation: {obs.n_visibilities:,} visibilities; "
          f"field of view {np.degrees(gridspec.image_size):.2f} deg")

    # --- truth: a random field of 6 sources, snapped to image pixels
    raw_sky = repro.random_sky(
        6, gridspec.image_size, fill_factor=0.5, flux_range=(1.0, 8.0), seed=3
    )
    dl = gridspec.pixel_scale
    sky = repro.SkyModel(
        l=np.round(raw_sky.l / dl) * dl,
        m=np.round(raw_sky.m / dl) * dl,
        brightness=raw_sky.brightness,
    )
    visibilities = repro.predict_visibilities(
        obs.uvw_m, obs.frequencies_hz, sky, baselines=baselines
    )

    # --- CLEAN major cycle driven by IDG
    idg = repro.IDG(gridspec)
    cycle = repro.ImagingCycle(idg, obs.uvw_m, obs.frequencies_hz, baselines)
    print(f"plan: {cycle.plan.n_subgrids} subgrids")

    t0 = time.perf_counter()
    result = cycle.run(visibilities, n_major=5, minor_iterations=400,
                       threshold_factor=2.0)
    elapsed = time.perf_counter() - t0
    print(f"\n{result.n_major_cycles} major cycles in {elapsed:.1f} s; "
          f"residual rms history: "
          + " -> ".join(f"{r:.4f}" for r in result.residual_rms_history))

    # --- compare recovered model against the truth
    g = gridspec.grid_size
    print(f"\n{'true flux':>10} {'recovered':>10} {'pixel':>12}")
    total_err = 0.0
    for k in range(sky.n_sources):
        row = round(float(sky.m[k]) / dl) + g // 2
        col = round(float(sky.l[k]) / dl) + g // 2
        # integrate the model in a small box (CLEAN may split flux over
        # neighbouring pixels)
        recovered = result.model_image[row - 2 : row + 3, col - 2 : col + 3].sum()
        true_flux = float(sky.brightness[k, 0, 0].real)
        total_err += abs(recovered - true_flux)
        print(f"{true_flux:10.2f} {recovered:10.2f} {(row, col)!s:>12}")
    print(f"\ntotal CLEANed flux {result.total_clean_flux():.2f} "
          f"(truth {sky.total_flux_xx():.2f}); "
          f"sum |flux error| = {total_err:.2f}")

    peak_row, peak_col, _ = find_peak(result.model_image)
    brightest = int(np.argmax(sky.brightness[:, 0, 0].real))
    expected = (round(float(sky.m[brightest]) / dl) + g // 2,
                round(float(sky.l[brightest]) / dl) + g // 2)
    status = "OK" if (peak_row, peak_col) == expected else "MISMATCH"
    print(f"brightest recovered component at ({peak_row}, {peak_col}), "
          f"expected {expected} — {status}")


if __name__ == "__main__":
    main()
