#!/usr/bin/env python
"""Direction-dependent effects: what IDG's A-term correction buys.

The paper's headline functional claim is that IDG applies A-term (DDE)
corrections "at negligible additional cost" (Section VI-E) — something
traditional W-projection cannot do without exploding its kernel storage.
This example demonstrates the *accuracy* side of that claim with per-station
pointing errors (drifting primary beams, a classic DDE):

1. imaging: the A-term-corrected dirty image, normalised by the average
   beam response (the standard primary-beam normalisation, as in WSClean),
   recovers the intrinsic source flux; the uncorrected image is biased by
   the mean beam gain.
2. prediction: degridding a model through the same A-terms reproduces the
   corrupted visibilities almost exactly — the model-subtraction step of a
   DD-calibration loop — while prediction without A-terms leaves a large
   residual.
3. cost: gridding with and without A-terms takes nearly the same time.

Run:  python examples/aterm_correction.py
"""

import time

import numpy as np

import repro
from repro.imaging.image import model_image_to_grid


def average_beam_squared(beam, schedule, plan, baselines, gridspec, n_times):
    """Mean squared beam response on the image raster.

    The adjoint-corrected dirty image of a source of flux F reads
    ``F * mean((g_p g_q)^2)``; dividing by this image (the 'average primary
    beam' normalisation) restores intrinsic flux.  Averages over the
    (baseline, A-term interval) pairs weighted by their visibility counts.
    """
    g = gridspec.grid_size
    n_intervals = schedule.n_intervals(n_times)
    # per-station scalar gain fields on the fine raster
    gains = {}
    for station in np.unique(baselines):
        for itv in range(n_intervals):
            field = beam.evaluate_raster(int(station), itv, g, gridspec.image_size)
            gains[(int(station), itv)] = field[..., 0, 0].real
    acc = np.zeros((g, g))
    count = 0
    for p, q in baselines:
        for itv in range(n_intervals):
            acc += (gains[(int(p), itv)] * gains[(int(q), itv)]) ** 2
            count += 1
    return acc / count


def main() -> None:
    obs = repro.ska1_low_observation(
        n_stations=14, n_times=64, n_channels=6,
        integration_time_s=120.0, max_radius_m=2_500.0, seed=5,
    )
    baselines = obs.array.baselines()
    gridspec = obs.fitting_gridspec(grid_size=384)
    dl = gridspec.pixel_scale
    g = gridspec.grid_size

    # one bright source well off-centre, where beam errors bite hardest
    l0 = round(0.25 * gridspec.image_size / dl) * dl
    m0 = round(0.18 * gridspec.image_size / dl) * dl
    flux = 4.0
    sky = repro.SkyModel.single(l0, m0, flux=flux)

    beam = repro.PointingErrorATerm(
        fwhm=0.9 * gridspec.image_size, pointing_rms=0.03 * gridspec.image_size,
        seed=21,
    )
    schedule = repro.ATermSchedule(16)
    visibilities = repro.predict_visibilities(
        obs.uvw_m, obs.frequencies_hz, sky,
        baselines=baselines, aterms=beam, schedule=schedule,
    )

    idg = repro.IDG(gridspec)
    plan = idg.make_plan(obs.uvw_m, obs.frequencies_hz, baselines,
                         aterm_schedule=schedule)
    weight = plan.statistics.n_visibilities_gridded
    row, col = round(m0 / dl) + g // 2, round(l0 / dl) + g // 2

    def image_with(aterms):
        grid = idg.grid(plan, obs.uvw_m, visibilities, aterms=aterms)
        return repro.stokes_i_image(
            repro.dirty_image_from_grid(grid, gridspec, weight_sum=weight)
        )

    # --- 1. imaging with beam normalisation
    image_with(None)  # warm-up (BLAS/FFT initialisation), keeps timings fair
    t0 = time.perf_counter()
    uncorrected = image_with(None)
    t_plain = time.perf_counter() - t0
    t0 = time.perf_counter()
    corrected = image_with(beam)
    t_aterm = time.perf_counter() - t0

    beam_sq = average_beam_squared(beam, schedule, plan, baselines, gridspec,
                                   obs.n_times)
    normalised = corrected / np.maximum(beam_sq, 1e-3)

    print(f"true flux at ({row}, {col}): {flux:.2f}")
    print(f"  uncorrected image:               {uncorrected[row, col]:.3f} "
          f"({100 * (uncorrected[row, col] / flux - 1):+.1f}% bias)")
    print(f"  A-term corrected + beam-normed:  {normalised[row, col]:.3f} "
          f"({100 * (normalised[row, col] / flux - 1):+.1f}% bias)")

    # --- 2. prediction: the DD-calibration model-subtraction test
    model = np.zeros((4, g, g), dtype=np.complex128)
    model[0, row, col] = flux
    model[3, row, col] = flux
    mgrid = model_image_to_grid(model, gridspec)
    mask = ~plan.flagged
    scale = np.sqrt((np.abs(visibilities[mask]) ** 2).mean())

    pred_plain = idg.degrid(plan, obs.uvw_m, mgrid)
    resid_plain = np.sqrt((np.abs(pred_plain[mask] - visibilities[mask]) ** 2).mean())
    pred_aterm = idg.degrid(plan, obs.uvw_m, mgrid, aterms=beam)
    resid_aterm = np.sqrt((np.abs(pred_aterm[mask] - visibilities[mask]) ** 2).mean())
    print(f"\nmodel-subtraction residual (relative rms):")
    print(f"  predicted without A-terms: {resid_plain / scale:.3f}")
    print(f"  predicted with A-terms:    {resid_aterm / scale:.5f}")

    # --- 3. cost
    print(f"\ngridding time: {t_plain:.2f} s plain, {t_aterm:.2f} s with "
          f"A-terms ({100 * (t_aterm / t_plain - 1):+.0f}% — the paper's "
          f"'negligible additional cost')")

    assert abs(normalised[row, col] - flux) < abs(uncorrected[row, col] - flux)
    assert resid_aterm < 0.1 * resid_plain
    print("\nA-term correction recovers flux and nulls the model residual — OK")


if __name__ == "__main__":
    main()
