#!/usr/bin/env python
"""Wide-field imaging: when w-terms bite and W-stacking rescues them.

Paper Section IV: IDG handles the w-term exactly per visibility, but the
image-domain w screen widens the effective kernel with |w - w_offset|; once
it outgrows the subgrid's anti-aliasing headroom, accuracy degrades.  The
remedies are larger subgrids or W-stacking — "larger subgrids (e.g. up to
64 x 64) can be used in connection with W-stacking to dramatically limit
the number of required W-planes".

This example builds a compact, *wide-field* observation (a 0.6 km array
imaged over ~8 degrees, where the w kernel support reaches ~6 uv cells),
then sweeps both remedies and prints the accuracy/cost matrix.

Run:  python examples/widefield_wstacking.py
"""

import time

import numpy as np

import repro
from repro.core.wstack import WStackedIDG
from repro.kernels.wkernel import required_w_planes, w_kernel_support


def main() -> None:
    obs = repro.ska1_low_observation(
        n_stations=14, n_times=48, n_channels=4,
        integration_time_s=300.0, max_radius_m=600.0, seed=3,
    )
    gridspec = obs.fitting_gridspec(512)
    w_max = obs.max_w_wavelengths()
    print(f"field of view {np.degrees(gridspec.image_size):.1f} deg, "
          f"max |w| = {w_max:.0f} wavelengths")
    print(f"w kernel support at w_max: {w_kernel_support(w_max, gridspec.image_size)} "
          f"uv cells; analytic plane count to cap support at 4 cells: "
          f"{required_w_planes(w_max, gridspec.image_size, max_support=4)}")

    dl = gridspec.pixel_scale
    l0 = round(0.25 * gridspec.image_size / dl) * dl
    m0 = round(0.20 * gridspec.image_size / dl) * dl
    sky = repro.SkyModel.single(l0, m0, flux=1.0)
    baselines = obs.array.baselines()
    vis = repro.predict_visibilities(obs.uvw_m, obs.frequencies_hz, sky,
                                     baselines=baselines)
    g = gridspec.grid_size
    model = np.zeros((4, g, g), dtype=np.complex128)
    model[0, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = 1.0
    model[3, round(m0 / dl) + g // 2, round(l0 / dl) + g // 2] = 1.0

    print(f"\n{'subgrid':>8} {'w planes':>9} {'degrid rel rms':>15} "
          f"{'predict [s]':>12}")
    for subgrid, planes in ((16, 1), (16, 4), (16, 16), (48, 1), (48, 2)):
        idg = repro.IDG(gridspec, repro.IDGConfig(
            subgrid_size=subgrid, kernel_support=max(2, subgrid // 4), time_max=8,
        ))
        stack = WStackedIDG(idg, n_planes=planes)
        layers = stack.make_layers(obs.uvw_m, obs.frequencies_hz, baselines)
        t0 = time.perf_counter()
        predicted = stack.predict(model, layers, obs.uvw_m)
        elapsed = time.perf_counter() - t0
        covered = np.zeros(vis.shape[:3], dtype=bool)
        for layer in layers:
            for item in layer.plan:
                covered[item.baseline, item.time_start:item.time_end,
                        item.channel_start:item.channel_end] = True
        sel = covered[..., None, None] & np.ones_like(vis, bool)
        scale = np.sqrt((np.abs(vis[sel]) ** 2).mean())
        rms = np.sqrt((np.abs(predicted[sel] - vis[sel]) ** 2).mean()) / scale
        print(f"{subgrid:>8} {planes:>9} {rms:>15.5f} {elapsed:>12.2f}")

    print("\nBoth remedies work: 16 planes rescue the 16-pixel subgrid, and a "
          "48-pixel subgrid needs only 2 planes\n— the Section IV trade between "
          "subgrid arithmetic and grid-copy memory.")


if __name__ == "__main__":
    main()
