#!/usr/bin/env python
"""Self-calibration with IDG in the loop (the paper's Fig 1/2 pipeline).

The full chain of the paper's introduction: corrupted data -> calibration ->
imaging, with IDG performing both the gridding (imaging) and degridding
(model prediction) steps:

1. corrupt simulated visibilities with random per-station complex gains and
   thermal noise,
2. image the raw data: the source is smeared and its flux is wrong,
3. predict model visibilities for the known calibrator source with IDG
   degridding (initial calibration against a catalogue model, as real
   pipelines do with bright calibrators),
4. solve the gains with StEFCal against that model, apply,
5. re-image: the source flux and the image dynamic range recover.

Run:  python examples/selfcal.py
"""

import numpy as np

import repro
from repro.calibration import apply_gains, corrupt_with_gains, random_gains, stefcal
from repro.data.dataset import VisibilityDataset
from repro.data.noise import add_thermal_noise
from repro.imaging.cycle import ImagingCycle
from repro.imaging.metrics import dynamic_range
from repro.imaging.image import find_peak


def main() -> None:
    obs = repro.ska1_low_observation(
        n_stations=14, n_times=64, n_channels=6,
        integration_time_s=120.0, max_radius_m=2_500.0, seed=8,
    )
    baselines = obs.array.baselines()
    gridspec = obs.fitting_gridspec(grid_size=384)
    dl, g = gridspec.pixel_scale, gridspec.grid_size

    l0 = round(0.15 * gridspec.image_size / dl) * dl
    m0 = round(-0.10 * gridspec.image_size / dl) * dl
    flux = 5.0
    sky = repro.SkyModel.single(l0, m0, flux=flux)
    row, col = round(m0 / dl) + g // 2, round(l0 / dl) + g // 2

    # --- corrupt: station gains + thermal noise
    truth_gains = random_gains(obs.array.n_stations, amplitude_rms=0.25,
                               phase_rms_rad=1.0, seed=17)
    dataset = VisibilityDataset.simulate(obs, sky)
    corrupted = dataset.with_visibilities(
        corrupt_with_gains(dataset.visibilities, truth_gains, baselines)
    )
    corrupted = add_thermal_noise(corrupted, sefd_jy=2_000.0,
                                  channel_width_hz=200e3,
                                  integration_time_s=120.0, seed=18)

    idg = repro.IDG(gridspec)
    cycle = ImagingCycle(idg, obs.uvw_m, obs.frequencies_hz, baselines)

    raw_image = cycle.make_dirty_image(corrupted.visibilities)
    print(f"true source: {flux:.1f} Jy at ({row}, {col})")
    print(f"raw (uncalibrated) image: peak {raw_image[row, col]:.2f} Jy at the "
          f"source pixel, dynamic range {dynamic_range(raw_image):.0f}")

    # --- step 1: predict the calibrator model through IDG degridding
    model_image = np.zeros((g, g))
    model_image[row, col] = flux
    model_vis = cycle.predict(model_image)

    # --- step 2: StEFCal against the catalogue model
    solution = stefcal(
        corrupted.visibilities, model_vis, baselines,
        n_stations=obs.array.n_stations, solution_interval=0,
    )
    gain_err = np.abs(
        solution.gains[0] * np.exp(-1j * np.angle(
            np.vdot(truth_gains, solution.gains[0]))) - truth_gains
    ).max()
    print(f"\nStEFCal: converged={bool(solution.converged.all())} in "
          f"{int(solution.n_iterations[0])} iterations; "
          f"max gain error {gain_err:.3f}")

    # --- step 3: apply and re-image
    calibrated = apply_gains(corrupted.visibilities, solution.gains[0], baselines)
    cal_image = cycle.make_dirty_image(calibrated)
    print(f"calibrated image: peak {cal_image[row, col]:.2f} Jy at the source "
          f"pixel, dynamic range {dynamic_range(cal_image):.0f}")

    peak_row, peak_col, _ = find_peak(cal_image)
    assert (peak_row, peak_col) == (row, col)
    assert abs(cal_image[row, col] - flux) < abs(raw_image[row, col] - flux)
    print("\nself-calibration restored the source flux — OK")


if __name__ == "__main__":
    main()
