#!/usr/bin/env python
"""Drive the hardware performance & energy model over the paper's workload.

Builds a scaled Section VI-A execution plan, counts the exact operations and
bytes each kernel moves, and prints the model's predictions for the three
Table I architectures: the roofline position, the runtime split of one
imaging cycle, visibility throughput, and energy efficiency — i.e. the
numbers behind Figs 9-15 (see EXPERIMENTS.md for paper-vs-model values).

Run:  python examples/performance_model.py
"""

import numpy as np

import repro
from repro.perfmodel import (
    ALL_ARCHITECTURES,
    attainable_ops,
    degridder_counts,
    energy_efficiency_gflops_per_watt,
    gridder_counts,
    imaging_cycle_energy,
    imaging_cycle_runtime,
    sweep_rho,
    throughput_mvis,
)


def main() -> None:
    obs = repro.ska1_low_observation(
        n_stations=24, n_times=256, n_channels=16,
        integration_time_s=4.0, max_radius_m=10_000.0, seed=0,
    )
    idg = repro.IDG(obs.fitting_gridspec(2048))
    plan = idg.make_plan(obs.uvw_m, obs.frequencies_hz, obs.array.baselines())
    st = plan.statistics
    print(f"workload: {st.n_visibilities_gridded:,} visibilities on "
          f"{st.n_subgrids:,} subgrids "
          f"({st.mean_visibilities_per_subgrid:.0f} vis/subgrid)\n")

    gc = gridder_counts(plan)
    dc = degridder_counts(plan)
    print(f"gridder:   {gc.ops / 1e12:.2f} Tops, rho = {gc.rho:.1f}, "
          f"{gc.operational_intensity:.0f} ops/device-byte, "
          f"{gc.shared_intensity:.2f} ops/shared-byte")
    print(f"degridder: {dc.ops / 1e12:.2f} Tops (same mix)\n")

    print(f"{'arch':<8} {'gridder':>22} {'degridder':>22}")
    for arch in ALL_ARCHITECTURES:
        pg, bg = attainable_ops(arch, gc)
        pd, bd = attainable_ops(arch, dc)
        print(f"{arch.name:<8} "
              f"{pg / 1e12:6.2f} Tops ({100 * pg / arch.peak_ops:3.0f}%, {bg:<6}) "
              f"{pd / 1e12:6.2f} Tops ({100 * pd / arch.peak_ops:3.0f}%, {bd:<6})")

    print("\nimaging-cycle runtime split (Fig 9) and throughput (Fig 10):")
    print(f"{'arch':<8} {'total':>9} {'grid+degrid':>12} "
          f"{'gridding MVis/s':>16} {'degridding':>11}")
    for arch in ALL_ARCHITECTURES:
        cycle = imaging_cycle_runtime(arch, plan)
        print(f"{arch.name:<8} {cycle.total_seconds:8.3f}s "
              f"{100 * cycle.gridding_degridding_fraction():11.1f}% "
              f"{throughput_mvis(arch, gc):16.0f} {throughput_mvis(arch, dc):11.0f}")

    print("\nenergy (Figs 14-15):")
    print(f"{'arch':<8} {'cycle energy':>13} {'gridder GF/W':>13} "
          f"{'degridder GF/W':>15}")
    for arch in ALL_ARCHITECTURES:
        energy = imaging_cycle_energy(arch, plan)
        print(f"{arch.name:<8} {energy.total_joules:11.1f} J "
              f"{energy_efficiency_gflops_per_watt(arch, gc):13.1f} "
              f"{energy_efficiency_gflops_per_watt(arch, dc):15.1f}")

    print("\noperation mix sweep (Fig 12), fraction of peak at selected rho:")
    rhos = np.array([0.0, 2.0, 8.0, 17.0, 32.0, 128.0])
    header = "  rho:    " + "".join(f"{r:8.0f}" for r in rhos)
    print(header)
    for arch in ALL_ARCHITECTURES:
        _, ops = sweep_rho(arch, rhos)
        print(f"  {arch.name:<8}" + "".join(f"{o / arch.peak_ops:8.2f}" for o in ops))


if __name__ == "__main__":
    main()
