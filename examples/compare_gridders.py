#!/usr/bin/env python
"""IDG versus the traditional gridders (the Section VI-E comparison).

Runs the same synthesis data set through Image-Domain Gridding,
W-projection (the WPG comparator of Fig 16) and W-stacking, and reports for
each: dirty-image peak accuracy, degridding/prediction error against the
analytic measurement equation, wall-clock time of this package's NumPy
implementations, and — for the traditional gridders — the kernel-storage
cost IDG avoids entirely.

Run:  python examples/compare_gridders.py
"""

import time

import numpy as np

import repro
from repro.baselines.wprojection import WProjectionGridder
from repro.baselines.wstacking import WStackingGridder
from repro.imaging.image import (
    dirty_image_from_grid,
    find_peak,
    model_image_to_grid,
    stokes_i_image,
)


def main() -> None:
    obs = repro.ska1_low_observation(
        n_stations=16, n_times=64, n_channels=8,
        integration_time_s=120.0, max_radius_m=3_000.0, seed=2,
    )
    baselines = obs.array.baselines()
    gridspec = obs.fitting_gridspec(grid_size=512)
    g, dl = gridspec.grid_size, gridspec.pixel_scale

    l0 = round(0.15 * gridspec.image_size / dl) * dl
    m0 = round(-0.10 * gridspec.image_size / dl) * dl
    flux = 2.0
    sky = repro.SkyModel.single(l0, m0, flux=flux)
    vis = repro.predict_visibilities(obs.uvw_m, obs.frequencies_hz, sky,
                                     baselines=baselines)
    row, col = round(m0 / dl) + g // 2, round(l0 / dl) + g // 2

    model = np.zeros((4, g, g), dtype=np.complex128)
    model[0, row, col] = flux
    model[3, row, col] = flux
    mgrid = model_image_to_grid(model, gridspec)
    oracle_scale = np.sqrt((np.abs(vis) ** 2).mean())

    rows = []

    # ---------------------------------------------------------------- IDG
    idg = repro.IDG(gridspec)
    plan = idg.make_plan(obs.uvw_m, obs.frequencies_hz, baselines)
    weight = plan.statistics.n_visibilities_gridded
    t0 = time.perf_counter()
    grid = idg.grid(plan, obs.uvw_m, vis)
    t_grid = time.perf_counter() - t0
    image = stokes_i_image(dirty_image_from_grid(grid, gridspec, weight_sum=weight))
    t0 = time.perf_counter()
    pred = idg.degrid(plan, obs.uvw_m, mgrid)
    t_degrid = time.perf_counter() - t0
    mask = ~plan.flagged
    rms = np.sqrt((np.abs(pred[mask] - vis[mask]) ** 2).mean()) / oracle_scale
    rows.append(("IDG (24x24 subgrids)", image[row, col], rms, t_grid, t_degrid, 0))

    # ------------------------------------------------------- W-projection
    wpg = WProjectionGridder(gridspec, support=16, oversample=8, n_w_planes=64)
    t0 = time.perf_counter()
    grid = wpg.grid(obs.uvw_m, obs.frequencies_hz, vis)
    t_grid = time.perf_counter() - t0
    flagged = wpg.flagged_mask(obs.uvw_m, obs.frequencies_hz)
    image = stokes_i_image(
        dirty_image_from_grid(grid, gridspec, weight_sum=(~flagged).sum())
    )
    t0 = time.perf_counter()
    pred = wpg.degrid(obs.uvw_m, obs.frequencies_hz, mgrid)
    t_degrid = time.perf_counter() - t0
    mask = ~flagged
    rms = np.sqrt((np.abs(pred[mask] - vis[mask]) ** 2).mean()) / oracle_scale
    rows.append(
        ("W-projection (N_W=16)", image[row, col], rms, t_grid, t_degrid,
         wpg.kernel_storage_bytes())
    )

    # --------------------------------------------------------- W-stacking
    ws = WStackingGridder(gridspec, n_planes=8, support=10, inner_w_planes=8)
    t0 = time.perf_counter()
    image = stokes_i_image(ws.image(obs.uvw_m, obs.frequencies_hz, vis))
    t_grid = time.perf_counter() - t0
    t0 = time.perf_counter()
    pred = ws.predict(model, obs.uvw_m, obs.frequencies_hz)
    t_degrid = time.perf_counter() - t0
    nz = np.abs(pred[..., 0, 0]) > 0
    sel = nz[..., None, None] & np.ones_like(pred, bool)
    rms = np.sqrt((np.abs(pred[sel] - vis[sel]) ** 2).mean()) / oracle_scale
    rows.append(
        ("W-stacking (8 planes)", image[row, col], rms, t_grid, t_degrid,
         ws.memory_bytes())
    )

    # ---------------------------------------------------------------- out
    print(f"true source: flux {flux} at pixel ({row}, {col})\n")
    print(f"{'gridder':<24} {'peak':>7} {'predict rms':>12} "
          f"{'grid [s]':>9} {'degrid [s]':>10} {'extra mem':>10}")
    for name, peak, rms, tg, td, mem in rows:
        mem_str = "-" if mem == 0 else f"{mem / 1e6:.0f} MB"
        print(f"{name:<24} {peak:7.3f} {rms:12.2e} {tg:9.2f} {td:10.2f} "
              f"{mem_str:>10}")
    print("\nIDG matches the traditional gridders' image quality, predicts "
          "visibilities 1-2 orders of magnitude more accurately\n(no kernel "
          "oversampling quantisation), and stores no convolution kernels at all.")


if __name__ == "__main__":
    main()
