#!/usr/bin/env python
"""Quickstart: simulate a small observation, grid it with IDG, make an image.

This is the smallest end-to-end use of the public API:

1. build a synthetic SKA1-low-like observation (stations, uvw tracks),
2. predict visibilities for a two-source sky through the measurement
   equation,
3. grid them with Image-Domain Gridding,
4. inverse-FFT + grid-correct into a dirty image and locate the sources.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.imaging.image import find_peak


def main() -> None:
    # --- observation: 16 stations, ~2 h synthesis, one 8-channel subband
    obs = repro.ska1_low_observation(
        n_stations=16, n_times=64, n_channels=8,
        integration_time_s=120.0, max_radius_m=3_000.0, seed=7,
    )
    baselines = obs.array.baselines()
    print(f"observation: {obs.n_baselines} baselines x {obs.n_times} times "
          f"x {obs.n_channels} channels = {obs.n_visibilities:,} visibilities")

    # --- grid geometry sized to the array's uv extent
    gridspec = obs.fitting_gridspec(grid_size=512)
    print(f"grid: {gridspec.grid_size}^2 cells, field of view "
          f"{np.degrees(gridspec.image_size):.2f} deg")

    # --- a two-source sky, snapped to image pixels for easy checking
    dl = gridspec.pixel_scale
    sources = [
        (round(0.12 * gridspec.image_size / dl) * dl,
         round(-0.08 * gridspec.image_size / dl) * dl, 3.0),
        (round(-0.20 * gridspec.image_size / dl) * dl,
         round(0.15 * gridspec.image_size / dl) * dl, 1.5),
    ]
    sky = repro.SkyModel(
        l=np.array([s[0] for s in sources]),
        m=np.array([s[1] for s in sources]),
        brightness=np.stack([s[2] * np.eye(2, dtype=complex) for s in sources]),
    )
    visibilities = repro.predict_visibilities(
        obs.uvw_m, obs.frequencies_hz, sky, baselines=baselines
    )

    # --- IDG: plan, grid, image
    idg = repro.IDG(gridspec)
    plan = idg.make_plan(obs.uvw_m, obs.frequencies_hz, baselines)
    stats = plan.statistics
    print(f"plan: {stats.n_subgrids} subgrids of {stats.subgrid_size}^2 pixels, "
          f"{stats.mean_visibilities_per_subgrid:.0f} visibilities/subgrid")

    grid = idg.grid(plan, obs.uvw_m, visibilities)
    image = repro.stokes_i_image(
        repro.dirty_image_from_grid(
            grid, gridspec, weight_sum=stats.n_visibilities_gridded
        )
    )

    # --- verify: each source appears at its pixel with its flux
    g = gridspec.grid_size
    print("\nsource recovery (dirty-image peak at the source pixel):")
    for l0, m0, flux in sources:
        row = round(m0 / dl) + g // 2
        col = round(l0 / dl) + g // 2
        print(f"  true flux {flux:.2f} at pixel ({row}, {col}): "
              f"image reads {image[row, col]:.3f}")

    peak_row, peak_col, peak_val = find_peak(image)
    assert (peak_row, peak_col) == (
        round(sources[0][1] / dl) + g // 2, round(sources[0][0] / dl) + g // 2
    ), "brightest source not at the expected pixel"
    print(f"\nbrightest pixel: {peak_val:.3f} at ({peak_row}, {peak_col}) — OK")


if __name__ == "__main__":
    main()
