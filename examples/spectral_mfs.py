#!/usr/bin/env python
"""Wide-band imaging: the outer loop of the paper's Fig 2, across subbands.

The imaging step runs "for a single subband"; a real wide-band observation
iterates it.  This example images three 30-MHz subbands of a source with a
synchrotron-like spectrum (I ~ nu^-0.8) through IDG, combines them into a
multi-frequency-synthesis (MFS) image, and fits the per-pixel spectral
index back out of the subband images.

Run:  python examples/spectral_mfs.py
"""

import numpy as np

import repro
from repro.imaging.image import find_peak
from repro.imaging.spectral import SpectralImager, fit_spectral_index, make_subbands


def main() -> None:
    base = repro.ska1_low_observation(
        n_stations=14, n_times=48, n_channels=6,
        integration_time_s=240.0, max_radius_m=2_500.0,
        start_frequency_hz=120e6, seed=12,
    )
    subbands = make_subbands(base, n_subbands=3, subband_width_hz=30e6)
    # size the shared grid to the highest subband (largest uv extent)
    gridspec = subbands[-1].fitting_gridspec(grid_size=384)
    idg = repro.IDG(gridspec)
    imager = SpectralImager(idg)

    dl, g = gridspec.pixel_scale, gridspec.grid_size
    l0 = round(0.12 * gridspec.image_size / dl) * dl
    m0 = round(0.08 * gridspec.image_size / dl) * dl
    alpha_true = -0.8
    flux0 = 5.0
    nu0 = subbands[0].frequencies_hz.mean()

    print(f"{'subband':>8} {'centre MHz':>11} {'true flux':>10} "
          f"{'image peak':>11}")
    subband_images = []
    for k, sb in enumerate(subbands):
        nu = sb.frequencies_hz.mean()
        flux = flux0 * (nu / nu0) ** alpha_true
        sky = repro.SkyModel.single(l0, m0, flux=flux)
        vis = repro.predict_visibilities(sb.uvw_m, sb.frequencies_hz, sky,
                                         baselines=sb.array.baselines())
        sub = imager.image_subband(sb, vis)
        subband_images.append(sub)
        row, col, peak = find_peak(sub.image)
        print(f"{k:>8} {nu / 1e6:>11.1f} {flux:>10.3f} {peak:>11.3f}")

    mfs = imager.mfs_image(subband_images)
    row, col, peak = find_peak(mfs)
    expected = (round(m0 / dl) + g // 2, round(l0 / dl) + g // 2)
    print(f"\nMFS image: peak {peak:.3f} at {(row, col)} "
          f"(expected {expected})")

    alpha_map = fit_spectral_index(subband_images, threshold=0.3)
    alpha_fit = alpha_map[row, col]
    print(f"fitted spectral index at the source: {alpha_fit:+.3f} "
          f"(truth {alpha_true:+.1f})")

    assert (row, col) == expected
    assert abs(alpha_fit - alpha_true) < 0.1
    print("\nwide-band imaging and spectral-index recovery — OK")


if __name__ == "__main__":
    main()
