"""Size-bounded, thread-safe LRU artifact cache keyed by content hash.

IDG's economics reward sharing aggressively: plans, taper/spheroidal tables,
``subgrid_lmn`` matrices and A-term Jones fields are expensive to derive but
reusable across any requests that share a telescope layout and gridspec.
:class:`ArtifactCache` is the one cache type behind all of them — the former
per-function ``functools.lru_cache`` seeds (PR 4) migrated onto module-level
instances here, and the serving layer (:mod:`repro.service`) keys its plan
and A-term caches by :func:`repro.hashing.content_hash`.

Properties:

* **byte-bounded** — eviction is by total payload bytes (LRU order), not
  entry count, so one cache budget covers artifacts of wildly different
  sizes; a value larger than the whole budget is returned but never stored;
* **thread-safe** — one internal lock; factories run *outside* it;
* **single-flight creation** — concurrent ``get_or_create`` calls for the
  same missing key run the factory once; followers block on the leader's
  completion and then read the cached value (if the leader's factory
  raises, one follower retries);
* **accounted** — hit/miss/eviction/byte counters (:class:`CacheStats`)
  reconcile exactly: every ``get``/``get_or_create`` increments exactly one
  of ``hits``/``misses``.  The service's telemetry and the
  ``BENCH_service.json`` gate audit that identity.

Shared values must be treated as immutable by callers (arrays handed out by
the kernel caches are marked read-only).
"""

from __future__ import annotations

import sys
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "all_cache_stats",
    "default_nbytes",
]


def default_nbytes(value: Any) -> int:
    """Best-effort payload size in bytes of a cached artifact.

    Arrays report ``nbytes``; containers sum their elements (dicts sum
    values); anything else falls back to ``sys.getsizeof``.
    """
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(value, dict):
        return sum(default_nbytes(v) for v in value.values())
    if isinstance(value, (tuple, list, set, frozenset)):
        return sum(default_nbytes(v) for v in value)
    return int(sys.getsizeof(value))


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of one cache's lifetime accounting.

    ``hits + misses`` equals the number of lookups (``get`` +
    ``get_or_create``); ``insertions - evictions`` equals ``entries`` while
    nothing is replaced or cleared.
    """

    name: str
    hits: int
    misses: int
    evictions: int
    insertions: int
    oversize_rejections: int
    current_bytes: int
    max_bytes: int
    entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when nothing was looked up)."""
        total = self.lookups
        return self.hits / total if total else 0.0


class _InFlight:
    """Leader/follower rendezvous for one in-progress factory call."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


class ArtifactCache:
    """Thread-safe byte-bounded LRU mapping content-hash keys to artifacts."""

    # Every live cache, so service telemetry can snapshot all of them
    # (module-level kernel caches included) without holding references.
    _registry: "weakref.WeakSet[ArtifactCache]" = weakref.WeakSet()
    _registry_lock = threading.Lock()

    def __init__(self, max_bytes: int, name: str = "artifacts") -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.name = name
        self._max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        # LRU order: oldest first.  All fields below are
        # idglint: guarded-by(_lock)
        self._entries: "OrderedDict[str, tuple[Any, int]]" = OrderedDict()
        self._inflight: dict[str, _InFlight] = {}
        self._current_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._insertions = 0
        self._oversize = 0
        with ArtifactCache._registry_lock:
            ArtifactCache._registry.add(self)

    # -------------------------------------------------------------- lookups

    def get(self, key: str, default: Any = None) -> Any:
        """The cached value for ``key`` (marks it most recently used), or
        ``default`` on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def get_or_create(
        self,
        key: str,
        factory: Callable[[], Any],
        nbytes: int | Callable[[Any], int] | None = None,
    ) -> Any:
        """The cached value for ``key``, creating it with ``factory`` on a
        miss (single-flight: concurrent callers for the same missing key run
        the factory exactly once).

        ``nbytes`` sizes the payload for the byte budget: an int, a callable
        applied to the created value, or ``None`` for
        :func:`default_nbytes`.  A value larger than the cache's whole
        budget is returned but not stored (counted as an oversize
        rejection).
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return entry[0]
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    self._misses += 1
                    leader = True
                else:
                    leader = False
            if not leader:
                # Outside the lock: wait for the leader, then re-check (a
                # hit if it succeeded; this thread becomes leader if not).
                flight.event.wait()
                continue
            try:
                value = factory()
            except BaseException:
                with self._lock:
                    self._inflight.pop(key, None)
                flight.event.set()
                raise
            if callable(nbytes):
                size = int(nbytes(value))
            elif nbytes is not None:
                size = int(nbytes)
            else:
                size = default_nbytes(value)
            with self._lock:
                self._insert(key, value, size)
                self._inflight.pop(key, None)
            flight.event.set()
            return value

    def put(self, key: str, value: Any, nbytes: int | None = None) -> Any:
        """Insert (or replace) ``key`` directly; returns ``value``."""
        size = default_nbytes(value) if nbytes is None else int(nbytes)
        with self._lock:
            self._insert(key, value, size)
        return value

    # ----------------------------------------------------------- accounting

    def stats(self) -> CacheStats:
        """A consistent snapshot of the cache's counters."""
        with self._lock:
            return CacheStats(
                name=self.name,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                insertions=self._insertions,
                oversize_rejections=self._oversize,
                current_bytes=self._current_bytes,
                max_bytes=self._max_bytes,
                entries=len(self._entries),
            )

    @property
    def max_bytes(self) -> int:
        return self._max_bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> int:
        """Drop every entry (counters keep accumulating); returns the bytes
        released."""
        with self._lock:
            freed = self._current_bytes
            self._entries.clear()
            self._current_bytes = 0
            return freed

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"<ArtifactCache {self.name!r} entries={stats.entries} "
            f"bytes={stats.current_bytes}/{stats.max_bytes} "
            f"hits={stats.hits} misses={stats.misses}>"
        )

    # ------------------------------------------------------------- internal

    def _insert(self, key: str, value: Any, size: int) -> None:  # idglint: requires-lock(_lock)
        if size > self._max_bytes:
            self._oversize += 1
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._current_bytes -= old[1]
        self._entries[key] = (value, size)
        self._current_bytes += size
        self._insertions += 1
        while self._current_bytes > self._max_bytes and self._entries:
            _, (_, evicted_size) = self._entries.popitem(last=False)
            self._current_bytes -= evicted_size
            self._evictions += 1


def all_cache_stats() -> tuple[CacheStats, ...]:
    """Stats snapshots of every live :class:`ArtifactCache`, sorted by name
    (module-level kernel caches and per-service caches alike)."""
    with ArtifactCache._registry_lock:
        caches = list(ArtifactCache._registry)
    return tuple(sorted((c.stats() for c in caches), key=lambda s: s.name))
