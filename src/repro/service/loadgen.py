"""Deterministic multi-tenant load generation for tests, CI and the CLI.

``build_specs`` fabricates a many-client workload over one observation:
``n_tenants`` tenants each submit ``requests_per_tenant`` imaging requests
drawn round-robin from ``n_distinct`` distinct visibility payloads on a
*shared* telescope layout — the shape a shared facility actually sees
(many clients asking for overlapping products).  Duplicate payloads
exercise request coalescing; the shared layout exercises the plan cache
even across distinct payloads.

``run_load`` submits the whole batch against a *stopped* service, then
starts the workers — admission decisions (coalescing, sheds) are thereby
deterministic, independent of worker timing — and reports throughput,
latency percentiles and the exact counter reconciliation the
``BENCH_service.json`` gate audits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.gridspec import GridSpec
from repro.runtime.telemetry import Telemetry, monotonic
from repro.service.jobs import JobKind, JobSpec, JobStatus, Overloaded
from repro.service.scheduler import GriddingService, JobHandle, ServiceConfig

__all__ = [
    "LoadReport",
    "LoadSpec",
    "build_specs",
    "run_load",
]


@dataclass(frozen=True)
class LoadSpec:
    """Shape of a synthetic multi-tenant workload.

    ``n_distinct`` payload variants are spread round-robin over all
    ``n_tenants * requests_per_tenant`` requests, so the duplicate ratio is
    ``1 - n_distinct / n_requests``; ``priority_levels > 1`` cycles request
    priorities to exercise priority scheduling.
    """

    n_tenants: int = 4
    requests_per_tenant: int = 6
    n_distinct: int = 3
    priority_levels: int = 1

    def __post_init__(self) -> None:
        if min(self.n_tenants, self.requests_per_tenant, self.n_distinct,
               self.priority_levels) <= 0:
            raise ValueError("all LoadSpec fields must be positive")

    @property
    def n_requests(self) -> int:
        return self.n_tenants * self.requests_per_tenant


def build_specs(
    load: LoadSpec,
    uvw_m: np.ndarray,
    frequencies_hz: np.ndarray,
    baselines: np.ndarray,
    gridspec: GridSpec,
    visibilities: np.ndarray,
) -> list[JobSpec]:
    """The workload as concrete :class:`~repro.service.jobs.JobSpec`\\ s.

    Distinct payload variant ``j`` is ``visibilities * (1 + j/8)`` — cheap,
    dtype-preserving, and different *bytes*, so variants never coalesce
    while identical variants always do.
    """
    variants = [
        visibilities * (1.0 + 0.125 * j) for j in range(load.n_distinct)
    ]
    specs: list[JobSpec] = []
    for t in range(load.n_tenants):
        for i in range(load.requests_per_tenant):
            k = t * load.requests_per_tenant + i
            specs.append(
                JobSpec(
                    kind=JobKind.IMAGE,
                    tenant=f"tenant-{t}",
                    uvw_m=uvw_m,
                    frequencies_hz=frequencies_hz,
                    baselines=baselines,
                    gridspec=gridspec,
                    visibilities=variants[k % load.n_distinct],
                    priority=i % load.priority_levels,
                )
            )
    return specs


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one :func:`run_load` pass.

    ``requests_per_s`` counts *completed* requests (every waiter that got a
    result) over the makespan from worker start to last retirement;
    ``p95_latency_s`` is the 95th percentile of per-request latency
    (queue wait + execution, from each request's own submit).  ``counters``
    is the service telemetry counter snapshot; ``caches`` maps cache name
    to its :class:`~repro.cache.CacheStats`.
    """

    n_requests: int
    n_shed: int
    n_completed: int
    statuses: dict[str, int]
    requests_per_s: float
    p95_latency_s: float
    mean_latency_s: float
    makespan_s: float
    counters: dict[str, float]
    caches: dict[str, Any]

    def reconciliation(self) -> dict[str, bool]:
        """The exact counter identities the service guarantees.

        * every submit ends in exactly one of shed / terminal outcome;
        * every accepted request was either executed (primary) or
          coalesced onto a primary;
        * every execution did exactly one plan-cache lookup, so plan
          hits + misses equals executions.
        """
        c = self.counters
        submitted = c.get("jobs.submitted", 0.0)
        shed = c.get("jobs.shed", 0.0)
        outcomes = (
            c.get("jobs.done", 0.0)
            + c.get("jobs.dead_lettered", 0.0)
            + c.get("jobs.failed", 0.0)
        )
        executed = c.get("jobs.executed", 0.0)
        coalesced = c.get("jobs.coalesced", 0.0)
        plans = self.caches.get("service.plans")
        return {
            "submit_outcomes": submitted == shed + outcomes,
            "execution_split": submitted == executed + coalesced + shed,
            "plan_lookups": (
                plans is not None and plans.hits + plans.misses == executed
            ),
        }


def run_load(
    config: ServiceConfig,
    specs: list[JobSpec],
    telemetry: Telemetry | None = None,
    timeout_s: float = 600.0,
) -> LoadReport:
    """Submit ``specs`` as one deterministic batch and run it to completion.

    The service is constructed stopped, every spec is submitted (sheds are
    caught and counted), the worker pool starts, and all surviving handles
    are awaited.  The service is always closed before returning.
    """
    service = GriddingService(replace(config, autostart=False), telemetry)
    handles: list[JobHandle] = []
    n_shed = 0
    try:
        for spec in specs:
            try:
                handles.append(service.submit(spec))
            except Overloaded:
                n_shed += 1
        t0 = monotonic()
        service.start()
        results = [handle.result(timeout=timeout_s) for handle in handles]
        makespan = monotonic() - t0
    finally:
        service.close(drain=False)
    statuses: dict[str, int] = {}
    for result in results:
        statuses[result.status.value] = statuses.get(result.status.value, 0) + 1
    latencies = np.array(
        [r.queue_wait_s + r.execution_s for r in results], dtype=float
    )
    n_completed = sum(
        1 for r in results if r.status is not JobStatus.FAILED
    )
    service.metrics.record_caches()
    service.metrics.record_arenas()
    stats = service.stats()
    return LoadReport(
        n_requests=len(specs),
        n_shed=n_shed,
        n_completed=n_completed,
        statuses=statuses,
        requests_per_s=(len(results) / makespan) if makespan > 0 else 0.0,
        p95_latency_s=(
            float(np.percentile(latencies, 95)) if latencies.size else 0.0
        ),
        mean_latency_s=float(latencies.mean()) if latencies.size else 0.0,
        makespan_s=makespan,
        counters=service.metrics.counters,
        caches={
            "service.plans": stats["plan_cache"],
            "service.aterm_fields": stats["aterm_cache"],
        },
    )
