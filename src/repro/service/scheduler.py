"""Multi-tenant gridding service: admission -> coalesce -> execute -> fan-out.

:class:`GriddingService` turns the library-direct :class:`~repro.core.IDG`
facade into a shared, bounded resource:

* **Admission control** — one bounded queue for all tenants
  (``max_queue_depth``), an optional per-tenant backlog bound, and a hard
  per-tenant *running* quota (``tenant_quota``) enforced by the dispatch
  loop.  A full queue sheds the request with a typed
  :class:`~repro.service.jobs.Overloaded` instead of queueing without
  bound; quotas keep one chatty tenant from starving the rest.

* **Request coalescing** — jobs are keyed by
  :func:`~repro.service.coalesce.execution_key`.  A submit whose key
  matches a queued *or running* job attaches to it instead of enqueueing
  (single-flight): one execution fans its read-only result out to every
  waiter.  Plans and A-term fields are additionally shared through
  content-hash :class:`~repro.cache.ArtifactCache` instances keyed by
  :func:`~repro.service.coalesce.plan_key`, so even jobs with *different*
  payloads on the same layout share the planning work.

* **Fault isolation** — execution reuses the PR 5 fault-tolerance layer
  (``IDGConfig.max_retries`` / per-job fault plans): a poisoned request is
  retried, then quarantined to dead letters, and surfaces as a
  ``DEAD_LETTERED`` result with its
  :class:`~repro.runtime.recovery.FaultReport`; an injected crash fails
  only its own job (the worker thread survives).  Concurrent tenants'
  results are bit-identical to library-direct execution.

Locking: one condition variable guards all scheduler state; cache lookups,
job execution and result fan-out all happen outside it.  Lock order is
strictly ``GriddingService._cond`` -> (``Telemetry._lock`` |
``ArtifactCache._lock``) and never the reverse.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.cache import ArtifactCache
from repro.core.pipeline import IDG, IDGConfig
from repro.hashing import content_hash
from repro.runtime.faults import InjectedCrash
from repro.runtime.telemetry import Telemetry, monotonic
from repro.service.coalesce import aterm_signature, execution_key, plan_key
from repro.service.jobs import JobKind, JobResult, JobSpec, JobStatus, Overloaded
from repro.service.metrics import ServiceMetrics

__all__ = [
    "GriddingService",
    "JobHandle",
    "ServiceConfig",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunable parameters of one :class:`GriddingService`.

    Attributes
    ----------
    n_workers:
        Worker threads executing jobs (each runs whole jobs; within a job
        the configured backend's own batching applies).
    max_queue_depth:
        Global bound on *queued* (not yet running) jobs; a submit beyond it
        sheds with ``Overloaded("queue_full")``.
    tenant_quota:
        Maximum concurrently *running* jobs per tenant — the dispatch loop
        skips tenants at quota, so a backlogged tenant cannot occupy every
        worker.
    tenant_backlog:
        Optional bound on *queued* jobs per tenant; beyond it the submit
        sheds with ``Overloaded("tenant_backlog")`` even while the global
        queue has room.  ``None`` disables the per-tenant bound.
    coalesce:
        Enable submit-time request coalescing (disabled for A/B
        benchmarking; caches still apply).
    autostart:
        Start the worker pool in the constructor.  Tests and the load
        generator use ``False`` to submit a deterministic batch before any
        execution begins.
    plan_cache_bytes / aterm_cache_bytes:
        Byte budgets of the service's plan and A-term field caches.
    idg:
        The :class:`~repro.core.IDGConfig` every execution runs with
        (fault tolerance comes from its ``max_retries`` /
        ``retry_backoff_s``).  Part of the execution key: services with
        different configs never share results.
    executor:
        How each job executes once dispatched: ``"serial"`` (the plain
        :class:`~repro.core.IDG` facade), ``"threads"``
        (:class:`~repro.parallel.ParallelIDG`), or ``"processes"``
        (:class:`~repro.parallel.process.ProcessShardedIDG`).  All three
        produce bit-identical grids, so coalesced results stay valid
        across a config change — but ``executor`` is part of the service
        config, not the execution key, because it does not affect values.
    executor_workers:
        Threads (``"threads"``) or worker processes (``"processes"``)
        per job.  Ignored by the serial executor.
    executor_start_method:
        ``multiprocessing`` start method for the processes executor
        (``"fork"`` avoids interpreter start-up latency per job on
        Linux; ``"spawn"`` is the portable default).
    """

    n_workers: int = 2
    max_queue_depth: int = 64
    tenant_quota: int = 2
    tenant_backlog: int | None = None
    coalesce: bool = True
    autostart: bool = True
    plan_cache_bytes: int = 256 * 1024 * 1024
    aterm_cache_bytes: int = 128 * 1024 * 1024
    idg: IDGConfig = field(default_factory=IDGConfig)
    executor: str = "serial"
    executor_workers: int = 2
    executor_start_method: str = "spawn"

    def __post_init__(self) -> None:
        if self.n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if self.max_queue_depth <= 0 or self.tenant_quota <= 0:
            raise ValueError("max_queue_depth and tenant_quota must be positive")
        if self.tenant_backlog is not None and self.tenant_backlog <= 0:
            raise ValueError("tenant_backlog must be positive (or None)")
        if self.executor not in ("serial", "threads", "processes"):
            raise ValueError(
                "executor must be one of 'serial', 'threads', 'processes', "
                f"got {self.executor!r}"
            )
        if self.executor_workers <= 0:
            raise ValueError("executor_workers must be positive")


class JobHandle:
    """A waiter's ticket for one submitted job.

    ``result`` blocks until the job retires and returns the
    :class:`~repro.service.jobs.JobResult`; coalesced handles of one
    execution all receive the same shared read-only value array.  The
    handle is written once by the scheduler (event-published), so reading
    it from any thread after ``result``/``done`` is safe.
    """

    __slots__ = ("_event", "_result", "tenant", "submitted_at", "coalesced")

    def __init__(self, tenant: str, submitted_at: float) -> None:
        self._event = threading.Event()
        self._result: JobResult | None = None
        self.tenant = tenant
        self.submitted_at = submitted_at
        self.coalesced = False

    def done(self) -> bool:
        """True once the job has retired (result available)."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> JobResult:
        """Block until the job retires; raises ``TimeoutError`` on expiry."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"job for tenant {self.tenant!r} not finished within {timeout}s"
            )
        result = self._result
        assert result is not None
        return result

    def _finish(self, result: JobResult) -> None:
        self._result = result
        self._event.set()


class _Job:
    """Scheduler bookkeeping for one *execution* (possibly many waiters)."""

    __slots__ = (
        "spec", "plan_key", "exec_key", "handles", "seq", "started_at",
    )

    def __init__(
        self, spec: JobSpec, plan_key_: str, exec_key: str | None, seq: int
    ) -> None:
        self.spec = spec
        self.plan_key = plan_key_
        self.exec_key = exec_key
        self.handles: list[JobHandle] = []
        self.seq = seq
        self.started_at = 0.0


def _plan_nbytes(plan: Any) -> int:
    """Byte cost of a cached plan (its big arrays)."""
    return int(
        plan.items.nbytes + plan.flagged.nbytes + plan.frequencies_hz.nbytes
    )


class GriddingService:
    """Shared multi-tenant front end over the IDG library (module docstring
    has the architecture; DESIGN.md §13 the full keying rules)."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.metrics = ServiceMetrics(telemetry)
        self._cond = threading.Condition()
        # All attributes below are mutated only under ``self._cond``.
        self._pending: list[_Job] = []
        self._by_key: dict[str, _Job] = {}
        self._queued_per_tenant: dict[str, int] = {}
        self._running_per_tenant: dict[str, int] = {}
        self._queued_count = 0
        self._seq = 0
        self._shutdown = False
        self._accepting = True
        self._started = False
        # Mutated only by ``start`` (single transition, outside the lock).
        self._workers: list[threading.Thread] = []
        self._plans = ArtifactCache(
            self.config.plan_cache_bytes, name="service.plans"
        )
        self._aterm_fields = ArtifactCache(
            self.config.aterm_cache_bytes, name="service.aterm_fields"
        )
        if self.config.autostart:
            self.start()

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Start the worker pool (idempotent; no-op after ``close``)."""
        with self._cond:
            if self._started or self._shutdown:
                return
            self._started = True
            n_workers = self.config.n_workers
        for k in range(n_workers):
            thread = threading.Thread(  # idglint: disable=IDG105  (bounded startup loop)
                target=self._worker_loop,
                name=f"svc-worker-{k}",
                daemon=True,
            )
            self._workers.append(thread)
            thread.start()

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting jobs and shut the worker pool down.

        ``drain=True`` (default) lets queued jobs finish first;
        ``drain=False`` fails them immediately with ``FAILED`` results.  A
        service whose workers never started cannot drain — its queued jobs
        are failed either way.
        """
        with self._cond:
            self._accepting = False
            abandoned: tuple[_Job, ...] = ()
            if not (drain and self._started):
                abandoned = tuple(self._pending)
                self._pending.clear()
                for job in abandoned:
                    tenant = job.spec.tenant
                    self._queued_count -= 1
                    self._queued_per_tenant[tenant] -= 1
                    if job.exec_key is not None:
                        self._by_key.pop(job.exec_key, None)
            self._shutdown = True
            self._cond.notify_all()
        for job in abandoned:
            self._fan_out(
                job,
                JobStatus.FAILED,
                value=None,
                error="service closed before execution",
                report=None,
                exec_start=monotonic(),
                exec_end=monotonic(),
                executed=False,
            )
        for thread in self._workers:
            thread.join(timeout)

    def __enter__(self) -> "GriddingService":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close(drain=True)

    # ------------------------------------------------------------ admission

    def submit(self, spec: JobSpec) -> JobHandle:
        """Admit one job; returns immediately with a :class:`JobHandle`.

        Order of decisions: coalesce onto an existing queued/running job
        with the same execution key; else shed if the global queue (or the
        tenant's backlog bound) is full; else enqueue.  Sheds raise
        :class:`~repro.service.jobs.Overloaded` and occupy no queue space.
        """
        pkey = plan_key(spec, self.config.idg)
        ekey = execution_key(spec, pkey, self.config.idg)
        handle = JobHandle(spec.tenant, monotonic())
        shed_reason: str | None = None
        coalesced = False
        with self._cond:
            if not self._accepting:
                raise RuntimeError("service is closed")
            existing = (
                self._by_key.get(ekey)
                if self.config.coalesce and ekey is not None
                else None
            )
            if existing is not None:
                handle.coalesced = True
                existing.handles.append(handle)
                coalesced = True
            elif self._queued_count >= self.config.max_queue_depth:
                shed_reason = "queue_full"
            elif (
                self.config.tenant_backlog is not None
                and self._queued_per_tenant.get(spec.tenant, 0)
                >= self.config.tenant_backlog
            ):
                shed_reason = "tenant_backlog"
            else:
                job = _Job(spec, pkey, ekey, self._seq)
                self._seq += 1
                job.handles.append(handle)
                self._pending.append(job)
                if ekey is not None:
                    self._by_key[ekey] = job
                self._queued_count += 1
                self._queued_per_tenant[spec.tenant] = (
                    self._queued_per_tenant.get(spec.tenant, 0) + 1
                )
                self._cond.notify()
        self.metrics.count("submitted", spec.tenant)
        if shed_reason is not None:
            self.metrics.count("shed", spec.tenant)
            raise Overloaded(shed_reason, spec.tenant)
        if coalesced:
            self.metrics.count("coalesced", spec.tenant)
        return handle

    # ------------------------------------------------------------- dispatch

    def _claim_next(self) -> _Job | None:  # idglint: requires-lock(_cond)
        """Highest-priority pending job whose tenant is under quota (FIFO
        within a priority level), claimed as running; ``None`` when every
        pending job's tenant is at quota (or nothing is pending)."""
        best: _Job | None = None
        for job in self._pending:
            tenant = job.spec.tenant
            if (
                self._running_per_tenant.get(tenant, 0)
                >= self.config.tenant_quota
            ):
                continue
            if best is None or job.spec.priority > best.spec.priority:
                best = job
        if best is None:
            return None
        self._pending.remove(best)
        tenant = best.spec.tenant
        self._queued_count -= 1
        self._queued_per_tenant[tenant] -= 1
        self._running_per_tenant[tenant] = (
            self._running_per_tenant.get(tenant, 0) + 1
        )
        best.started_at = monotonic()
        return best

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                job = self._claim_next()
                while job is None:
                    if self._shutdown and not self._pending:
                        return
                    self._cond.wait()
                    job = self._claim_next()
            self._execute(job)

    # ------------------------------------------------------------ execution

    def _execute(self, job: _Job) -> None:
        """Run one job on the calling worker thread and fan the result out.

        Exception policy: an :class:`~repro.runtime.faults.InjectedCrash`
        (which derives from ``BaseException`` so the retry layer never
        swallows it) and any ``Exception`` fail *this job only* — the
        worker thread survives for the next job.
        """
        start = monotonic()
        value: np.ndarray | None = None
        report: Any = None
        error: str | None = None
        metadata: dict[str, Any] = {}
        status = JobStatus.DONE
        try:
            value, report, metadata = self._run_job(job)
            if report is not None and not report.ok:
                status = JobStatus.DEAD_LETTERED
        except InjectedCrash as exc:
            status = JobStatus.FAILED
            error = f"injected crash: {exc}"
        except Exception as exc:
            status = JobStatus.FAILED
            error = f"{type(exc).__name__}: {exc}"
        end = monotonic()
        self._fan_out(job, status, value, error, report, start, end, metadata=metadata)

    def _run_job(self, job: _Job) -> tuple[np.ndarray, Any, dict[str, Any]]:
        """Execute through the IDG facade, sharing plan and A-term-field
        artifacts through the content-hash caches."""
        spec = job.spec
        if spec.kind is JobKind.SELFCAL:
            return self._run_selfcal(job)
        idg = IDG(spec.gridspec, self.config.idg)
        plan = self._plans.get_or_create(
            job.plan_key,
            lambda: idg.make_plan(
                spec.uvw_m,
                spec.frequencies_hz,
                spec.baselines,
                aterm_schedule=spec.aterm_schedule,
                w_offset=spec.w_offset,
            ),
            nbytes=_plan_nbytes,
        )
        fields = self._fields_for(job, idg, plan)
        if self.config.executor == "serial":
            if spec.kind is JobKind.IMAGE:
                value = idg.grid(
                    plan,
                    spec.uvw_m,
                    spec.visibilities,
                    flags=spec.flags,
                    faults=spec.faults,
                    aterm_fields=fields,
                )
            else:
                value = idg.degrid(
                    plan,
                    spec.uvw_m,
                    spec.model_grid,
                    faults=spec.faults,
                    aterm_fields=fields,
                )
            return value, idg.last_fault_report, {}
        # The parallel executors take fault plans at construction, not per
        # call; all executors produce bit-identical values (the conformance
        # suite pins this), so the choice stays out of the execution key.
        executor: Any
        if self.config.executor == "threads":
            from repro.parallel.executor import ParallelIDG

            executor = ParallelIDG(
                idg, n_workers=self.config.executor_workers, faults=spec.faults
            )
        else:
            from repro.parallel.process import ProcessConfig, ProcessShardedIDG

            executor = ProcessShardedIDG(
                idg,
                ProcessConfig(
                    n_procs=self.config.executor_workers,
                    start_method=self.config.executor_start_method,
                ),
                faults=spec.faults,
            )
        if spec.kind is JobKind.IMAGE:
            value = executor.grid(
                plan,
                spec.uvw_m,
                spec.visibilities,
                flags=spec.flags,
                aterm_fields=fields,
            )
        else:
            value = executor.degrid(
                plan, spec.uvw_m, spec.model_grid, aterm_fields=fields
            )
        return value, executor.last_fault_report, {}

    def _run_selfcal(self, job: _Job) -> tuple[np.ndarray, Any, dict[str, Any]]:
        """Run a full self-calibration loop for one SELFCAL job.

        The job's ``value`` is the ``(n_intervals, n_stations)`` gain
        solution; the model/residual images and per-cycle telemetry travel
        in ``JobResult.metadata``.  The loop builds its own per-plane/facet
        plans, so the service plan cache is not involved.
        """
        from repro.calibration.selfcal import self_calibrate
        from repro.imaging.pipeline import ImagingContext

        spec = job.spec
        context = ImagingContext(
            idg=IDG(spec.gridspec, self.config.idg),
            uvw_m=spec.uvw_m,
            frequencies_hz=spec.frequencies_hz,
            baselines=spec.baselines,
            executor=self.config.executor,
            executor_workers=self.config.executor_workers,
            start_method=self.config.executor_start_method,
        )
        result = self_calibrate(
            context,
            spec.visibilities,
            spec.n_stations,
            config=spec.selfcal,
            kind=spec.ft_kind,
            **(spec.ft_options or {}),
        )
        last = result.history[-1]
        metadata = {
            "n_cycles": result.n_cycles,
            "converged": result.converged,
            "residual_rms": last.residual_rms,
            "dynamic_range": last.dynamic_range,
            "model_image": result.model_image,
            "residual_image": result.residual_image,
            "history": result.history,
        }
        return result.gains, None, metadata

    def _fields_for(
        self, job: _Job, idg: IDG, plan: Any
    ) -> dict[tuple[int, int], np.ndarray] | None:
        """Cached A-term Jones fields for this job (``None`` = identity)."""
        spec = job.spec
        if spec.aterms is None or spec.aterms.is_identity:
            return None
        signature = aterm_signature(spec)
        if signature is None:  # unhashable generator: evaluate privately
            return idg.aterm_fields(plan, spec.aterms)
        key = content_hash("aterm-fields", job.plan_key, signature)
        return self._aterm_fields.get_or_create(
            key, lambda: idg.aterm_fields(plan, spec.aterms)
        )

    def _fan_out(
        self,
        job: _Job,
        status: JobStatus,
        value: np.ndarray | None,
        error: str | None,
        report: Any,
        exec_start: float,
        exec_end: float,
        executed: bool = True,
        metadata: dict[str, Any] | None = None,
    ) -> None:
        """Retire one execution: release its quota slot and publish the
        (shared, read-only) result to every attached handle.
        ``executed=False`` retires a job that never ran (abandoned at
        close): no quota slot to release, no execution span."""
        if value is not None:
            value.setflags(write=False)
        with self._cond:
            tenant = job.spec.tenant
            if executed:
                self._running_per_tenant[tenant] -= 1
            # Unpublish *before* reading handles: no follower can attach
            # after this point, so the tuple below is complete.
            if job.exec_key is not None:
                self._by_key.pop(job.exec_key, None)
            handles = tuple(job.handles)
            self._cond.notify_all()
        if executed:
            self.metrics.record_execution(
                job.seq, exec_start, exec_end, threading.current_thread().name
            )
            self.metrics.count("executed", job.spec.tenant)
        retries = int(getattr(report, "n_retries", 0)) if report is not None else 0
        for handle in handles:
            result = JobResult(
                status=status,
                tenant=handle.tenant,
                value=value,
                error=error,
                fault_report=report,
                coalesced=handle.coalesced,
                queue_wait_s=max(0.0, exec_start - handle.submitted_at),
                execution_s=exec_end - exec_start,
                retries=retries,
                metadata=dict(metadata) if metadata else {},
            )
            handle._finish(result)
            self.metrics.record_outcome(result)

    # ---------------------------------------------------------- observation

    def stats(self) -> dict[str, Any]:
        """Point-in-time scheduler state plus cache snapshots."""
        with self._cond:
            snapshot = {
                "queued": self._queued_count,
                "queued_per_tenant": dict(self._queued_per_tenant),
                "running_per_tenant": dict(self._running_per_tenant),
                "coalescable_keys": len(self._by_key),
                "started": self._started,
                "accepting": self._accepting,
            }
        snapshot["plan_cache"] = self._plans.stats()
        snapshot["aterm_cache"] = self._aterm_fields.stats()
        return snapshot

    def summary(self) -> str:
        """Human-readable run summary (snapshots caches and arenas first)."""
        self.metrics.record_caches()
        self.metrics.record_arenas()
        return self.metrics.summary()
