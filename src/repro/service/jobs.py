"""Job model of the multi-tenant gridding service.

A *job* is one gridding (``IMAGE``) or degridding (``PREDICT``) request
submitted by a *tenant*.  :class:`JobSpec` is the immutable request payload;
:class:`JobResult` is what every waiter receives when the job retires.  The
scheduler (:mod:`repro.service.scheduler`) decides admission and execution;
request identity for coalescing and caching lives in
:mod:`repro.service.coalesce`.

Admission failures are *typed*: an over-committed service raises
:class:`Overloaded` at submit time (load shedding) instead of queueing
without bound — callers see the shed immediately and can back off, and the
service's queue depth stays a hard invariant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.aterms.generators import ATermGenerator
from repro.aterms.schedule import ATermSchedule
from repro.gridspec import GridSpec

__all__ = [
    "JobKind",
    "JobResult",
    "JobSpec",
    "JobStatus",
    "Overloaded",
]


class JobKind(enum.Enum):
    """What the job computes: a master grid, predicted visibilities, or a
    self-calibration solve (gains + model/residual images)."""

    IMAGE = "image"
    PREDICT = "predict"
    SELFCAL = "selfcal"


class JobStatus(enum.Enum):
    """Lifecycle of a job (terminal states: DONE/DEAD_LETTERED/FAILED).

    ``DEAD_LETTERED`` is the PR 5 fault-tolerance outcome: the job ran, some
    work groups were quarantined to dead letters, and the result excludes
    them (``JobResult.fault_report`` has the accounting).  ``FAILED`` means
    no result exists at all (the execution raised, e.g. an injected crash or
    a validation error surfaced late).
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    DEAD_LETTERED = "dead_lettered"
    FAILED = "failed"


class Overloaded(RuntimeError):
    """Admission refused: the service is shedding load.

    ``reason`` is ``"queue_full"`` (global admission queue at capacity) or
    ``"tenant_backlog"`` (this tenant alone has too many queued jobs);
    ``tenant`` names the shed tenant.  Raised synchronously by
    ``GriddingService.submit`` — a shed request never occupies queue space.
    """

    def __init__(self, reason: str, tenant: str) -> None:
        super().__init__(
            f"service overloaded ({reason}) — request from tenant "
            f"{tenant!r} shed"
        )
        self.reason = reason
        self.tenant = tenant


@dataclass(frozen=True, eq=False)
class JobSpec:
    """One immutable gridding/degridding request.

    ``IMAGE`` and ``SELFCAL`` jobs require ``visibilities``; ``PREDICT``
    jobs require ``model_grid``; ``SELFCAL`` additionally requires
    ``n_stations`` (and takes its loop parameters from ``selfcal`` /
    ``ft_kind`` / ``ft_options``).  Arrays are shared with the caller, not
    copied — treat them as frozen once submitted (the coalescing keys hash
    their bytes).  ``faults`` installs a deterministic fault-injection plan
    for this job only; faulted jobs are never coalesced with clean ones.
    """

    kind: JobKind
    tenant: str
    uvw_m: np.ndarray
    frequencies_hz: np.ndarray
    baselines: np.ndarray
    gridspec: GridSpec
    visibilities: np.ndarray | None = None
    model_grid: np.ndarray | None = None
    flags: np.ndarray | None = None
    aterms: ATermGenerator | None = None
    aterm_schedule: ATermSchedule | None = None
    w_offset: float = 0.0
    priority: int = 0
    faults: Any = None
    n_stations: int = 0
    selfcal: Any = None
    ft_kind: str = "2d"
    ft_options: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.uvw_m.ndim != 3 or self.uvw_m.shape[-1] != 3:
            raise ValueError("uvw_m must have shape (n_baselines, n_times, 3)")
        if self.kind is JobKind.IMAGE and self.visibilities is None:
            raise ValueError("IMAGE jobs require visibilities")
        if self.kind is JobKind.PREDICT and self.model_grid is None:
            raise ValueError("PREDICT jobs require model_grid")
        if self.kind is JobKind.SELFCAL:
            if self.visibilities is None:
                raise ValueError("SELFCAL jobs require visibilities")
            if self.n_stations <= 0:
                raise ValueError("SELFCAL jobs require n_stations > 0")

    @property
    def payload(self) -> np.ndarray:
        """The kind-specific input array (visibilities or model grid)."""
        if self.kind is JobKind.PREDICT:
            assert self.model_grid is not None
            return self.model_grid
        assert self.visibilities is not None
        return self.visibilities


@dataclass(frozen=True)
class JobResult:
    """What every waiter of a retired job receives.

    ``value`` is the ``(4, G, G)`` master grid (``IMAGE``) or the predicted
    visibility array (``PREDICT``); coalesced waiters share *the same*
    read-only array object.  ``fault_report`` carries the PR 5 dead-letter
    accounting when fault tolerance was active.  Timings are per-handle:
    ``queue_wait_s`` runs from this handle's submit to execution start (a
    coalesced follower's wait starts at *its own* submit).
    """

    status: JobStatus
    tenant: str
    value: np.ndarray | None = None
    error: str | None = None
    fault_report: Any = None
    coalesced: bool = False
    queue_wait_s: float = 0.0
    execution_s: float = 0.0
    retries: int = 0
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when a full-fidelity result exists (no dead letters)."""
        return self.status is JobStatus.DONE

    def unwrap(self) -> np.ndarray:
        """The result array, raising on FAILED jobs (DEAD_LETTERED results
        are returned — partial by contract, see ``fault_report``)."""
        if self.status is JobStatus.FAILED or self.value is None:
            raise RuntimeError(f"job failed: {self.error or 'no result'}")
        return self.value
