"""Per-tenant service telemetry on top of the PR 2 telemetry layer.

One :class:`ServiceMetrics` wraps one
:class:`~repro.runtime.telemetry.Telemetry` recorder for the lifetime of a
:class:`~repro.service.scheduler.GriddingService`.  Counter naming scheme::

    jobs.submitted / jobs.coalesced / jobs.shed / jobs.executed
    jobs.done / jobs.dead_lettered / jobs.failed / jobs.retries
    tenant.<tenant>.<event>          # same events, per tenant

plus ``service:exec`` spans (one per *execution*, not per waiter), gauges
``cache.<name>.bytes``/``hit_rate`` snapshotted from every live
:class:`~repro.cache.ArtifactCache`, and ``arena.total_bytes``/
``arena.total_trims`` from the scratch-arena registry — the per-thread
high-water marks that previously never reached telemetry.

The reconciliation contract audited by ``BENCH_service.json``: every
submitted request ends in exactly one of coalesced/shed/executed-terminal
state, so ``submitted == coalesced + shed + done + dead_lettered + failed``
(with done/dead_lettered/failed counted per *primary* execution plus one
per coalesced waiter's outcome — the scheduler counts waiter outcomes,
keeping the identity exact).
"""

from __future__ import annotations

from repro.cache import all_cache_stats
from repro.core.scratch import arena_stats
from repro.runtime.telemetry import Telemetry
from repro.service.jobs import JobResult

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Thin recorder: turns service events into telemetry counters/spans.

    Stateless beyond the wrapped (thread-safe) ``Telemetry``; safe to call
    from any scheduler thread without extra locking.
    """

    def __init__(self, telemetry: Telemetry | None = None) -> None:
        self.telemetry = telemetry if telemetry is not None else Telemetry()

    # ------------------------------------------------------------- events

    def count(self, event: str, tenant: str | None = None, delta: float = 1.0) -> None:
        """Bump ``jobs.<event>`` and (when given) ``tenant.<t>.<event>``."""
        self.telemetry.add_counter(f"jobs.{event}", delta)
        if tenant is not None:
            self.telemetry.add_counter(f"tenant.{tenant}.{event}", delta)

    def record_execution(
        self, item: int, start: float, end: float, worker: str
    ) -> None:
        """One span per job execution (coalesced waiters add no span)."""
        self.telemetry.record_span("service:exec", item, start, end, worker)

    def record_outcome(self, result: JobResult) -> None:
        """Terminal accounting for one waiter's result."""
        self.count(result.status.value, result.tenant)
        if result.retries:
            self.count("retries", result.tenant, delta=float(result.retries))
        self.telemetry.add_counter("jobs.queue_wait_s", result.queue_wait_s)

    # ------------------------------------------------------------ snapshots

    def record_caches(self) -> None:
        """Gauge every live artifact cache (hit/miss/bytes)."""
        for stats in all_cache_stats():
            self.telemetry.record_gauge(
                f"cache.{stats.name}.bytes", float(stats.current_bytes)
            )
            self.telemetry.record_gauge(
                f"cache.{stats.name}.hit_rate", stats.hit_rate
            )

    def record_arenas(self) -> None:
        """Gauge the scratch-arena registry: total/peak bytes and trims."""
        snapshots = arena_stats()
        self.telemetry.record_gauge(
            "arena.total_bytes", float(sum(s.nbytes for s in snapshots))
        )
        self.telemetry.record_gauge(
            "arena.peak_bytes", float(sum(s.peak_nbytes for s in snapshots))
        )
        self.telemetry.record_gauge(
            "arena.total_trims", float(sum(s.n_trims for s in snapshots))
        )

    # -------------------------------------------------------------- queries

    @property
    def counters(self) -> dict[str, float]:
        return self.telemetry.counters

    def summary(self) -> str:
        """The wrapped telemetry's human-readable run summary."""
        return self.telemetry.summary()
