"""Request identity: the content-hash keys behind coalescing and caching.

Two tenants asking for the same image should cost the service one
execution — IDG's artifacts are pure functions of their inputs, so identity
can be decided by hashing the inputs themselves (no cooperation between
tenants required).  Identity is layered:

* :func:`plan_key` — identifies the *plan*: uvw coverage, frequencies,
  baselines, grid geometry and the plan-shaping config fields
  (``subgrid_size``/``kernel_support``/``time_max``), plus the A-term
  schedule and w offset.  Jobs sharing a plan key share one cached
  :class:`~repro.core.plan.Plan` (and one cached A-term field evaluation)
  even when their payloads differ.

* :func:`execution_key` — identifies the *result*: the plan key plus the
  job kind, the payload bytes (visibilities or model grid), flags, the
  A-term signature and the full :class:`~repro.core.IDGConfig` (backend,
  batching and fault-tolerance knobs all change the produced bits or their
  failure semantics).  Jobs sharing an execution key are *coalesced*:
  one execution fans its result out to every waiter.

Conservatism rule: when identity cannot be established the answer is
``None`` — the job still runs, it just never shares.  Fault-injected jobs
(``spec.faults``) and A-term generators whose state we cannot hash are the
two cases.  A wrong "not shareable" costs duplicate work; a wrong
"shareable" returns the wrong science — so unknown always means no.
"""

from __future__ import annotations

from repro.core.pipeline import IDGConfig
from repro.hashing import content_hash
from repro.service.jobs import JobKind, JobSpec

__all__ = [
    "aterm_signature",
    "execution_key",
    "plan_key",
]

#: Signature of "no direction-dependent effects" (identity A-terms).
IDENTITY_ATERM_SIGNATURE = "identity"


def aterm_signature(spec: JobSpec) -> str | None:
    """Content signature of the job's A-term generator, or ``None``.

    Identity generators (or none at all) hash to a fixed sentinel.  Other
    generators are hashed by class plus constructor state (``vars``) —
    the repo's generators are parameterised by scalars, so this captures
    their full behaviour.  A generator whose state contains something
    :func:`~repro.hashing.content_hash` cannot digest yields ``None``:
    the job executes normally but is excluded from coalescing and A-term
    field caching.
    """
    aterms = spec.aterms
    if aterms is None or aterms.is_identity:
        return IDENTITY_ATERM_SIGNATURE
    try:
        return content_hash(
            "aterm",
            type(aterms).__module__,
            type(aterms).__qualname__,
            dict(sorted(vars(aterms).items())),
        )
    except TypeError:
        return None


def plan_key(spec: JobSpec, config: IDGConfig) -> str:
    """Cache key of the :class:`~repro.core.plan.Plan` this job needs.

    Hashes exactly the inputs of ``IDG.make_plan``: uvw/frequency/baseline
    geometry, gridspec, the three plan-shaping config fields, the A-term
    schedule and the w offset.  Backend/batching knobs deliberately do not
    participate — they change execution, not the plan.
    """
    return content_hash(
        "plan",
        spec.uvw_m,
        spec.frequencies_hz,
        spec.baselines,
        spec.gridspec,
        config.subgrid_size,
        config.kernel_support,
        config.time_max,
        spec.aterm_schedule,
        float(spec.w_offset),
    )


def execution_key(
    spec: JobSpec, plan_key_: str, config: IDGConfig
) -> str | None:
    """Single-flight key: jobs with equal keys produce identical results.

    ``None`` (never coalesce) for fault-injected jobs, for jobs whose
    A-terms cannot be signed — see the conservatism rule in the module
    docstring — and for ``SELFCAL`` jobs, whose identity would have to
    cover the full loop configuration (an unhashable dataclass-of-knobs);
    an iterative solve is also far past the cheap-hash/expensive-execution
    trade the coalescer is built for.
    """
    if spec.faults is not None or spec.kind is JobKind.SELFCAL:
        return None
    signature = aterm_signature(spec)
    if signature is None:
        return None
    return content_hash(
        "exec",
        spec.kind.value,
        plan_key_,
        spec.payload,
        spec.flags,
        signature,
        config,
    )
