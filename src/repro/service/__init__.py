"""Multi-tenant gridding service (DESIGN.md §13).

Turns the library-direct :class:`~repro.core.IDG` facade into a shared,
bounded, observable resource: a job API with admission control and
per-tenant quotas (:mod:`~repro.service.scheduler`), content-hash request
coalescing (:mod:`~repro.service.coalesce`), artifact sharing through
:class:`~repro.cache.ArtifactCache`, PR 5 fault isolation, and per-tenant
telemetry (:mod:`~repro.service.metrics`).  ``repro serve`` /
``repro bench-service`` are the CLI entry points;
:mod:`~repro.service.loadgen` fabricates deterministic many-client load.
"""

from repro.service.coalesce import aterm_signature, execution_key, plan_key
from repro.service.jobs import (
    JobKind,
    JobResult,
    JobSpec,
    JobStatus,
    Overloaded,
)
from repro.service.loadgen import LoadReport, LoadSpec, build_specs, run_load
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import GriddingService, JobHandle, ServiceConfig

__all__ = [
    "GriddingService",
    "JobHandle",
    "JobKind",
    "JobResult",
    "JobSpec",
    "JobStatus",
    "LoadReport",
    "LoadSpec",
    "Overloaded",
    "ServiceConfig",
    "ServiceMetrics",
    "aterm_signature",
    "build_specs",
    "execution_key",
    "plan_key",
    "run_load",
]
