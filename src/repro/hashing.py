"""Stable content hashing shared by checkpointing, caching and coalescing.

Two families of digests live here:

* :class:`ContentHasher` — an incremental sha256 over *raw* array/scalar byte
  streams.  :func:`repro.runtime.checkpoint.plan_signature` is built on it
  and its byte stream is a compatibility contract: checkpoints written by
  earlier builds must keep validating, so the hasher feeds exactly the bytes
  the original hand-rolled implementation did (no type or shape tags).  The
  regression test ``tests/test_hashing.py`` pins a known digest.
* :func:`content_hash` — a *tagged* digest for cache/coalescing keys.  Every
  part is prefixed with a type tag (and arrays with their dtype + shape), so
  values that merely share a byte representation — ``float64(1.0)`` versus
  ``int64(1)``, a ``(4, 2)`` versus a ``(2, 4)`` array — hash differently.
  Dataclasses (``GridSpec``, ``ATermSchedule``) hash by class name plus
  field values, dicts by sorted key, so digests are stable across processes
  and insertion orders.

Content hashes are *identity* for the serving layer: two requests whose
(layout, gridspec, plan parameters) hash equal share one plan; two identical
image requests share one execution (DESIGN.md §13).
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

import numpy as np

__all__ = ["ContentHasher", "content_hash"]


class ContentHasher:
    """Incremental sha256 over raw array and scalar byte streams.

    The update methods append *untagged* bytes — the caller's update order
    and widths define the format.  Used where the byte stream itself is a
    compatibility contract (checkpoint plan signatures); new code wanting
    collision-resistant structural hashing should prefer
    :func:`content_hash`.
    """

    def __init__(self) -> None:
        self._digest = hashlib.sha256()

    def update_bytes(self, data: bytes) -> "ContentHasher":
        """Append raw bytes."""
        self._digest.update(data)
        return self

    def update_array(self, array: np.ndarray) -> "ContentHasher":
        """Append an array's element bytes (C order, no dtype/shape tag)."""
        self._digest.update(np.ascontiguousarray(array).tobytes())
        return self

    def update_ints(self, *values: int) -> "ContentHasher":
        """Append integers as a packed little ``int64`` array."""
        return self.update_array(np.array(values, dtype=np.int64))

    def update_floats(self, *values: float) -> "ContentHasher":
        """Append floats as a packed little ``float64`` array."""
        return self.update_array(np.array(values, dtype=np.float64))

    def hexdigest(self) -> str:
        """Hex digest of everything appended so far."""
        return self._digest.hexdigest()


def _update_tagged(digest: "hashlib._Hash", part: Any) -> None:
    """Feed one value into ``digest`` with type/shape framing."""
    if part is None:
        digest.update(b"\x00N")
    elif isinstance(part, (bool, np.bool_)):
        digest.update(b"\x00B1" if part else b"\x00B0")
    elif isinstance(part, (int, np.integer)):
        digest.update(b"\x00I" + str(int(part)).encode("ascii"))
    elif isinstance(part, (float, np.floating)):
        digest.update(b"\x00F" + np.float64(part).tobytes())
    elif isinstance(part, (complex, np.complexfloating)):
        digest.update(b"\x00C" + np.complex128(part).tobytes())
    elif isinstance(part, str):
        encoded = part.encode("utf-8")
        digest.update(b"\x00S" + str(len(encoded)).encode("ascii") + b":")
        digest.update(encoded)
    elif isinstance(part, bytes):
        digest.update(b"\x00Y" + str(len(part)).encode("ascii") + b":")
        digest.update(part)
    elif isinstance(part, np.ndarray):
        arr = np.ascontiguousarray(part)
        header = f"{arr.dtype.str}{arr.shape}".encode("ascii")
        digest.update(b"\x00A" + header)
        digest.update(arr.tobytes())
    elif isinstance(part, (tuple, list)):
        digest.update(b"\x00T" + str(len(part)).encode("ascii"))
        for item in part:
            _update_tagged(digest, item)
    elif isinstance(part, dict):
        digest.update(b"\x00D" + str(len(part)).encode("ascii"))
        for key in sorted(part, key=repr):
            _update_tagged(digest, key)
            _update_tagged(digest, part[key])
    elif dataclasses.is_dataclass(part) and not isinstance(part, type):
        fields = dataclasses.fields(part)
        digest.update(
            b"\x00O" + type(part).__name__.encode("ascii", "replace")
        )
        for fld in fields:
            _update_tagged(digest, fld.name)
            _update_tagged(digest, getattr(part, fld.name))
    else:
        raise TypeError(
            f"content_hash cannot digest {type(part).__name__!r}; pass "
            "arrays, scalars, strings, containers or dataclasses"
        )


def content_hash(*parts: Any) -> str:
    """Stable hex digest of a heterogeneous value sequence.

    Accepts numpy arrays (hashed with dtype and shape), numeric/str/bytes
    scalars, ``None``, tuples/lists, dicts (sorted by key) and dataclasses
    (class name + field values, recursively).  Equal values give equal
    digests across processes; structurally different values — including the
    same bytes under a different dtype or shape — give different digests.
    """
    digest = hashlib.sha256()
    for part in parts:
        _update_tagged(digest, part)
    return digest.hexdigest()
