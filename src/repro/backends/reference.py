"""The ``reference`` backend: the loop-level pseudocode oracle.

Wraps the literal Algorithm 1/2 transcriptions of
:mod:`repro.core.reference` behind the work-group interface, so the oracle
participates in the differential harness as a peer backend rather than a
special case inside individual tests.  It always evaluates the direct sum —
one sine/cosine per (pixel, visibility), no channel recurrence, no batching —
which is exactly what makes it authoritative and orders of magnitude slower
than the others; the test corpus keeps its work items tiny.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import DEFAULT_VIS_BATCH, KernelBackend
from repro.constants import COMPLEX_DTYPE
from repro.core.gridder import relative_uvw_wavelengths
from repro.core.plan import Plan
from repro.core.reference import reference_degridder, reference_gridder


class ReferenceBackend(KernelBackend):
    """Direct-sum oracle kernels (explicit Python loops, paper pseudocode)."""

    name = "reference"

    def grid_work_group(
        self,
        plan: Plan,
        start: int,
        stop: int,
        uvw_m: np.ndarray,
        visibilities: np.ndarray,
        taper: np.ndarray,
        lmn: np.ndarray | None = None,
        aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
        vis_batch: int = DEFAULT_VIS_BATCH,
        channel_recurrence: bool = False,
        batched: bool = False,
    ) -> np.ndarray:
        n = plan.subgrid_size
        image_size = plan.gridspec.image_size
        out = np.empty((stop - start, n, n, 2, 2), dtype=COMPLEX_DTYPE)
        for k, index in enumerate(range(start, stop)):
            item = plan.work_item(index)
            u_mid, v_mid = plan.subgrid_centre_uv(index)
            freqs = plan.frequencies_hz[item.channel_start : item.channel_end]
            uvw_block = uvw_m[item.baseline, item.time_start : item.time_end]
            a_p, a_q = _fields_for(aterm_fields, item)
            vis_flat = visibilities[
                item.baseline,
                item.time_start : item.time_end,
                item.channel_start : item.channel_end,
            ].reshape(-1, 2, 2)
            rel = relative_uvw_wavelengths(
                uvw_block, freqs, u_mid, v_mid, plan.w_offset
            )
            out[k] = reference_gridder(
                vis_flat, rel, n, image_size, taper, aterm_p=a_p, aterm_q=a_q
            )
        return out

    def degrid_work_group(
        self,
        plan: Plan,
        start: int,
        stop: int,
        subgrid_images: np.ndarray,
        uvw_m: np.ndarray,
        visibilities_out: np.ndarray,
        taper: np.ndarray,
        lmn: np.ndarray | None = None,
        aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
        vis_batch: int = DEFAULT_VIS_BATCH,
        channel_recurrence: bool = False,
        batched: bool = False,
    ) -> None:
        image_size = plan.gridspec.image_size
        for k, index in enumerate(range(start, stop)):
            item = plan.work_item(index)
            u_mid, v_mid = plan.subgrid_centre_uv(index)
            freqs = plan.frequencies_hz[item.channel_start : item.channel_end]
            uvw_block = uvw_m[item.baseline, item.time_start : item.time_end]
            a_p, a_q = _fields_for(aterm_fields, item)
            rel = relative_uvw_wavelengths(
                uvw_block, freqs, u_mid, v_mid, plan.w_offset
            )
            vis = reference_degridder(
                subgrid_images[k], rel, image_size, taper, aterm_p=a_p, aterm_q=a_q
            ).reshape(item.n_times, item.n_channels, 2, 2)
            visibilities_out[
                item.baseline,
                item.time_start : item.time_end,
                item.channel_start : item.channel_end,
            ] = vis


def _fields_for(aterm_fields, item):
    """(A_p, A_q) Jones fields of a work item (``None`` = identity)."""
    if aterm_fields is None:
        return None, None
    return (
        aterm_fields.get((item.station_p, item.aterm_interval)),
        aterm_fields.get((item.station_q, item.aterm_interval)),
    )
