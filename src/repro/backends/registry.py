"""Backend registry: named kernel implementations, one dispatch point.

Backends register once at import time; everything else — the ``IDG`` facade,
the parallel and streaming executors, the CLI ``--backend`` flag and the
``IDG_BACKEND`` environment variable — resolves names through this module.
Keeping the mapping in one place is what lets a future kernel PR add a
faster backend without touching any executor: register it, and the
differential harness in ``tests/backends/`` holds it to the equivalence
contract automatically.
"""

from __future__ import annotations

import os
from typing import Final

from repro.backends.base import KernelBackend

#: Environment variable consulted when no backend is named explicitly.
IDG_BACKEND_ENV: Final = "IDG_BACKEND"

#: Backend used when neither configuration nor environment names one.
DEFAULT_BACKEND: Final = "vectorized"

_REGISTRY: Final[dict[str, KernelBackend]] = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Register a backend instance under its ``name`` (idempotent per name).

    Re-registering a name replaces the previous instance — deliberate, so a
    test can swap in an instrumented double and restore the original.
    Returns the backend to allow use as a decorator-style one-liner.
    """
    if not backend.name or backend.name == KernelBackend.name:
        raise ValueError(f"backend {backend!r} must define a concrete name")
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> KernelBackend:
    """Look up a registered backend by name.

    Raises ``KeyError`` with the available names — the CLI surfaces this
    message directly, so it must say what *would* have worked.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel backend {name!r}; available: "
            f"{', '.join(available_backends()) or '(none registered)'}"
        ) from None


def resolve_backend(spec: str | KernelBackend | None) -> KernelBackend:
    """Resolve a backend specification to an instance.

    ``None`` falls back to the ``IDG_BACKEND`` environment variable, then to
    :data:`DEFAULT_BACKEND`; a string is looked up in the registry; a
    :class:`KernelBackend` instance passes through (it need not be
    registered — useful for experiments).
    """
    if isinstance(spec, KernelBackend):
        return spec
    if spec is None:
        spec = os.environ.get(IDG_BACKEND_ENV) or DEFAULT_BACKEND
    return get_backend(spec)
