"""The kernel-backend interface: four entry points, one contract.

The paper's core claim is that one IDG algorithm maps onto three
architectures (HASWELL, FIJI, PASCAL) through architecture-specific kernels
that stay *numerically interchangeable*.  :class:`KernelBackend` is this
package's version of that seam: a backend supplies the four kernel entry
points of the pipeline (Fig 4) —

* **gridder**   — work-group batch of Algorithm 1,
* **degridder** — work-group batch of Algorithm 2,
* **subgrid FFT** — the batched image<->Fourier subgrid transforms,
* **adder/splitter** — master-grid accumulation and extraction —

and every executor (:class:`repro.core.IDG`,
:class:`repro.parallel.ParallelIDG`, :class:`repro.runtime.StreamingIDG`)
dispatches through whichever backend the :class:`~repro.core.pipeline.IDG`
was configured with.  The equivalence contract — all registered backends
agree pairwise to ``rtol = 1e-5`` on a shared corpus of plans, and each is
self-adjoint across grid/degrid — is enforced by ``tests/backends/``; a new
backend only has to register itself to be held to it.

Backends must be stateless after construction (no per-call mutable members):
``ParallelIDG`` and ``StreamingIDG`` call one instance from many threads.
"""

from __future__ import annotations

import numpy as np

from repro.core.adder import add_subgrids as _add_subgrids
from repro.core.adder import split_subgrids as _split_subgrids
from repro.core.plan import Plan
from repro.core.subgrid_fft import subgrids_to_fourier as _subgrids_to_fourier
from repro.core.subgrid_fft import subgrids_to_image as _subgrids_to_image

#: Default number of visibilities per kernel batch (mirrors the core kernels).
DEFAULT_VIS_BATCH = 1024


class KernelBackend:
    """Base class of all kernel backends.

    Subclasses must implement :meth:`grid_work_group` and
    :meth:`degrid_work_group` (the two compute-dominant kernels the paper
    specialises per architecture) and may override the subgrid FFT and
    adder/splitter entry points; the defaults delegate to the shared NumPy
    implementations, matching the paper's use of vendor FFT libraries
    (MKL/cuFFT/clFFT) across all three architectures.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    # ------------------------------------------------------------- gridder

    def grid_work_group(
        self,
        plan: Plan,
        start: int,
        stop: int,
        uvw_m: np.ndarray,
        visibilities: np.ndarray,
        taper: np.ndarray,
        lmn: np.ndarray | None = None,
        aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
        vis_batch: int = DEFAULT_VIS_BATCH,
        channel_recurrence: bool = False,
        batched: bool = False,
    ) -> np.ndarray:
        """Grid work items ``start .. stop-1`` (Algorithm 1, batched).

        Same signature and semantics as
        :func:`repro.core.gridder.grid_work_group`; returns the
        ``(stop - start, N, N, 2, 2)`` image-domain subgrids.
        ``channel_recurrence`` is advisory — a backend whose inner loop is
        already organised around the channel-phasor recurrence (``jit``) may
        ignore it, and the ``reference`` oracle always evaluates the direct
        sum.  ``batched`` is likewise advisory: it asks for the
        shape-bucketed batch-of-subgrids execution
        (:mod:`repro.parallel.bucketing`), which only ``vectorized``
        implements; other backends keep their per-item loop.
        """
        raise NotImplementedError

    # ----------------------------------------------------------- degridder

    def degrid_work_group(
        self,
        plan: Plan,
        start: int,
        stop: int,
        subgrid_images: np.ndarray,
        uvw_m: np.ndarray,
        visibilities_out: np.ndarray,
        taper: np.ndarray,
        lmn: np.ndarray | None = None,
        aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
        vis_batch: int = DEFAULT_VIS_BATCH,
        channel_recurrence: bool = False,
        batched: bool = False,
    ) -> None:
        """Degrid work items ``start .. stop-1`` (Algorithm 2, batched).

        Same signature and semantics as
        :func:`repro.core.degridder.degrid_work_group`: predictions are
        written into ``visibilities_out`` in place.  ``batched`` is advisory
        as in :meth:`grid_work_group`.
        """
        raise NotImplementedError

    # --------------------------------------------------------- subgrid FFT

    def subgrids_to_fourier(self, subgrid_images: np.ndarray) -> np.ndarray:
        """Forward batched subgrid FFT (image -> uv domain, ``1/N**2``)."""
        return _subgrids_to_fourier(subgrid_images)

    def subgrids_to_image(self, subgrid_fourier: np.ndarray) -> np.ndarray:
        """Adjoint batched subgrid FFT (uv -> image domain)."""
        return _subgrids_to_image(subgrid_fourier)

    # ------------------------------------------------------ adder/splitter

    def add_subgrids(
        self,
        grid: np.ndarray,
        plan: Plan,
        subgrids_fourier: np.ndarray,
        start: int = 0,
        n_workers: int = 1,
    ) -> None:
        """Accumulate Fourier-domain subgrids onto the master grid in place.

        ``n_workers > 1`` uses the lock-free row-partitioned adder (paper
        Section V-B-d); ``1`` is the serial adder, bit-identical to
        :func:`repro.core.adder.add_subgrids`.
        """
        if n_workers <= 1:
            _add_subgrids(grid, plan, subgrids_fourier, start=start)
        else:
            from repro.parallel.partition import add_subgrids_row_parallel

            add_subgrids_row_parallel(
                grid, plan, subgrids_fourier, start=start, n_workers=n_workers
            )

    def split_subgrids(
        self, grid: np.ndarray, plan: Plan, start: int, stop: int
    ) -> np.ndarray:
        """Extract the uv-domain subgrids of a work-item range (read-only)."""
        return _split_subgrids(grid, plan, start, stop)

    # ------------------------------------------------------------- utility

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
