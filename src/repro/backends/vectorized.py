"""The ``vectorized`` backend: the package's BLAS fast path.

This is the NumPy implementation the pipeline has always run — the phasor
expressed as one complex ``(N**2, M) @ (M, 4)`` matrix product dispatched to
``*gemm``, with the optional channel-phasor recurrence
(:func:`repro.core.gridder.gridder_subgrid_fast`) that trades sine/cosine
evaluations for FMAs exactly as the paper's Section V-B optimisation 2 does.
With ``batched=True`` (the :class:`~repro.core.pipeline.IDGConfig` default)
it executes each work group through the shape-bucketed batch-of-subgrids
drivers of :mod:`repro.parallel.bucketing` instead of the per-item loop:
one stacked ``(G, N**2, T) @ (G, T, 4)`` product per bucket and channel
step, with all scratch drawn from the calling thread's
:class:`~repro.core.scratch.ScratchArena`.  It is the default backend and
the performance yardstick the ``jit`` backend is measured against in
``BENCH_kernels.json``.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import DEFAULT_VIS_BATCH, KernelBackend
from repro.core.degridder import degrid_work_group as _degrid_work_group
from repro.core.gridder import grid_work_group as _grid_work_group
from repro.core.plan import Plan
from repro.parallel.bucketing import (
    degrid_work_group_batched as _degrid_work_group_batched,
)
from repro.parallel.bucketing import (
    grid_work_group_batched as _grid_work_group_batched,
)


class VectorizedBackend(KernelBackend):
    """BLAS-dispatched NumPy kernels (the paper's SIMD reduction, in gemm)."""

    name = "vectorized"

    def grid_work_group(
        self,
        plan: Plan,
        start: int,
        stop: int,
        uvw_m: np.ndarray,
        visibilities: np.ndarray,
        taper: np.ndarray,
        lmn: np.ndarray | None = None,
        aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
        vis_batch: int = DEFAULT_VIS_BATCH,
        channel_recurrence: bool = False,
        batched: bool = False,
    ) -> np.ndarray:
        if batched:
            return _grid_work_group_batched(
                plan, start, stop, uvw_m, visibilities, taper,
                lmn=lmn, aterm_fields=aterm_fields,
                channel_recurrence=channel_recurrence,
            )
        return _grid_work_group(
            plan, start, stop, uvw_m, visibilities, taper,
            lmn=lmn, aterm_fields=aterm_fields, vis_batch=vis_batch,
            channel_recurrence=channel_recurrence,
        )

    def degrid_work_group(
        self,
        plan: Plan,
        start: int,
        stop: int,
        subgrid_images: np.ndarray,
        uvw_m: np.ndarray,
        visibilities_out: np.ndarray,
        taper: np.ndarray,
        lmn: np.ndarray | None = None,
        aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
        vis_batch: int = DEFAULT_VIS_BATCH,
        channel_recurrence: bool = False,
        batched: bool = False,
    ) -> None:
        if batched:
            _degrid_work_group_batched(
                plan, start, stop, subgrid_images, uvw_m, visibilities_out,
                taper, lmn=lmn, aterm_fields=aterm_fields,
                channel_recurrence=channel_recurrence,
            )
            return
        _degrid_work_group(
            plan, start, stop, subgrid_images, uvw_m, visibilities_out, taper,
            lmn=lmn, aterm_fields=aterm_fields, vis_batch=vis_batch,
            channel_recurrence=channel_recurrence,
        )
