"""The ``jit`` backend: the paper's Listing-1 loop, compiled with numba.

Listing 1 of the paper restructures the gridder's inner loop for FMA
throughput: the phase splits into a per-pixel *phase offset*
``B[i] = 2 pi (l, m, n) . (u_mid, v_mid, w_off)`` and a per-(pixel, timestep)
*phase index* ``A[i, t] = 2 pi (l, m, n) . uvw_m[t]``, so the visibility
phase is the affine combination ``alpha = s_c * A[i, t] - B[i]`` with
``s_c = f_c / c``.  For the evenly spaced channels of a subband
``s_c = s_0 + c * ds``, which turns the channel loop into the phasor
recurrence ``phasor_{c+1} = phasor_c * exp(i ds A)`` — one sine/cosine pair
per (pixel, timestep) and pure FMAs per channel, the structure all three of
the paper's architecture-specific kernels share.

The loop bodies here (:func:`_gridder_accumulate_py`,
:func:`_degridder_accumulate_py`) are written in the scalar style numba's
``nopython`` mode compiles to exactly that FMA loop.  When numba is
importable the backend runs the compiled kernels; otherwise it falls back to
the ``vectorized`` backend with a logged warning, so the suite and the CLI
keep working on hosts without numba (the pure-Python loop bodies stay
importable either way and are differential-tested directly).
"""

from __future__ import annotations

import logging
import math

import numpy as np

from repro.aterms.jones import apply_adjoint_sandwich, apply_sandwich, identity_jones_field
from repro.backends.base import DEFAULT_VIS_BATCH, KernelBackend
from repro.backends.vectorized import VectorizedBackend
from repro.constants import ACCUM_DTYPE, COMPLEX_DTYPE, SPEED_OF_LIGHT
from repro.core.gridder import PHASOR_RENORM_INTERVAL, subgrid_lmn
from repro.core.plan import Plan

logger = logging.getLogger(__name__)

try:  # pragma: no cover - exercised via the no-numba CI job
    import numba as _numba
except ImportError:  # pragma: no cover
    _numba = None

#: True when the compiled kernels are available.
HAVE_NUMBA = _numba is not None


def _gridder_accumulate_py(
    lmn: np.ndarray,
    uvw_m: np.ndarray,
    s0: float,
    ds: float,
    offset: np.ndarray,
    vis: np.ndarray,
    acc: np.ndarray,
) -> None:
    """Listing-1 gridder loop: ``acc[i, p] += sum_{t,c} e^{i alpha} V[t,c,p]``.

    ``lmn`` is ``(N**2, 3)`` float64, ``uvw_m`` ``(T, 3)`` metres, ``vis``
    ``(T, C, 4)`` complex, ``offset = (u_mid, v_mid, w_off)`` wavelengths,
    ``s0``/``ds`` the first channel's ``f/c`` and the channel step; ``acc``
    is the ``(N**2, 4)`` complex128 accumulator, updated in place.
    """
    n_pixels = lmn.shape[0]
    n_times = uvw_m.shape[0]
    n_channels = vis.shape[1]
    two_pi = 2.0 * math.pi
    for i in range(n_pixels):
        l = lmn[i, 0]
        m = lmn[i, 1]
        n = lmn[i, 2]
        # phase offset: per pixel, hoisted out of the visibility loops
        phase_offset = two_pi * (l * offset[0] + m * offset[1] + n * offset[2])
        acc0 = 0.0 + 0.0j
        acc1 = 0.0 + 0.0j
        acc2 = 0.0 + 0.0j
        acc3 = 0.0 + 0.0j
        for t in range(n_times):
            # phase index: per (pixel, timestep), in metres
            phase_index = two_pi * (
                l * uvw_m[t, 0] + m * uvw_m[t, 1] + n * uvw_m[t, 2]
            )
            alpha0 = s0 * phase_index - phase_offset
            phasor = complex(math.cos(alpha0), math.sin(alpha0))
            dalpha = ds * phase_index
            step = complex(math.cos(dalpha), math.sin(dalpha))
            for c in range(n_channels):
                if c > 0:
                    phasor = phasor * step
                    if c % PHASOR_RENORM_INTERVAL == 0:
                        phasor = phasor / abs(phasor)
                acc0 += phasor * vis[t, c, 0]
                acc1 += phasor * vis[t, c, 1]
                acc2 += phasor * vis[t, c, 2]
                acc3 += phasor * vis[t, c, 3]
        acc[i, 0] += acc0
        acc[i, 1] += acc1
        acc[i, 2] += acc2
        acc[i, 3] += acc3


def _degridder_accumulate_py(
    lmn: np.ndarray,
    uvw_m: np.ndarray,
    s0: float,
    ds: float,
    offset: np.ndarray,
    pixels: np.ndarray,
    out: np.ndarray,
) -> None:
    """Listing-1 degridder loop: ``out[t, c, p] += sum_i e^{-i alpha} S[i, p]``.

    The exact phase conjugate of :func:`_gridder_accumulate_py`; ``pixels``
    is the ``(N**2, 4)`` corrected subgrid, ``out`` the ``(T, C, 4)``
    complex128 accumulator, updated in place.
    """
    n_pixels = lmn.shape[0]
    n_times = uvw_m.shape[0]
    n_channels = out.shape[1]
    two_pi = 2.0 * math.pi
    for i in range(n_pixels):
        l = lmn[i, 0]
        m = lmn[i, 1]
        n = lmn[i, 2]
        phase_offset = two_pi * (l * offset[0] + m * offset[1] + n * offset[2])
        pix0 = pixels[i, 0]
        pix1 = pixels[i, 1]
        pix2 = pixels[i, 2]
        pix3 = pixels[i, 3]
        for t in range(n_times):
            phase_index = two_pi * (
                l * uvw_m[t, 0] + m * uvw_m[t, 1] + n * uvw_m[t, 2]
            )
            alpha0 = s0 * phase_index - phase_offset
            phasor = complex(math.cos(alpha0), -math.sin(alpha0))
            dalpha = ds * phase_index
            step = complex(math.cos(dalpha), -math.sin(dalpha))
            for c in range(n_channels):
                if c > 0:
                    phasor = phasor * step
                    if c % PHASOR_RENORM_INTERVAL == 0:
                        phasor = phasor / abs(phasor)
                out[t, c, 0] += phasor * pix0
                out[t, c, 1] += phasor * pix1
                out[t, c, 2] += phasor * pix2
                out[t, c, 3] += phasor * pix3


if HAVE_NUMBA:  # compile the loop bodies; the _py originals stay importable
    _gridder_accumulate = _numba.njit(cache=True, fastmath=True, nogil=True)(
        _gridder_accumulate_py
    )
    _degridder_accumulate = _numba.njit(cache=True, fastmath=True, nogil=True)(
        _degridder_accumulate_py
    )
else:
    _gridder_accumulate = _gridder_accumulate_py
    _degridder_accumulate = _degridder_accumulate_py


def _channel_step(scales: np.ndarray) -> float:
    """The uniform ``ds`` of a subband's ``f/c`` ladder (0 for one channel).

    Raises ``ValueError`` for unevenly spaced channels — the recurrence
    needs an arithmetic progression, like the core fast path.
    """
    if scales.size <= 1:
        return 0.0
    steps = np.diff(scales)
    if not np.allclose(steps, steps[0], rtol=1e-9):
        raise ValueError("channel scales must be evenly spaced for the jit backend")
    return float(steps[0])


class JitBackend(KernelBackend):
    """Numba-compiled Listing-1 kernels; ``vectorized`` fallback without numba."""

    name = "jit"

    def __init__(self) -> None:
        self._fallback: VectorizedBackend | None = None
        self._warned = False
        if not HAVE_NUMBA:
            self._fallback = VectorizedBackend()

    @property
    def is_fallback(self) -> bool:
        """True when this instance delegates to ``vectorized`` (no numba)."""
        return self._fallback is not None

    def _warn_fallback(self) -> None:
        """Log the fallback once, on first *use* — registration at import
        must stay silent for users who never select this backend.  A racing
        duplicate warning from concurrent first calls is harmless."""
        if not self._warned:
            self._warned = True
            logger.warning(
                "numba is not importable; the 'jit' backend falls back to "
                "the 'vectorized' backend (install numba for the compiled "
                "Listing-1 kernels)"
            )

    # ------------------------------------------------------------- gridder

    def grid_work_group(
        self,
        plan: Plan,
        start: int,
        stop: int,
        uvw_m: np.ndarray,
        visibilities: np.ndarray,
        taper: np.ndarray,
        lmn: np.ndarray | None = None,
        aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
        vis_batch: int = DEFAULT_VIS_BATCH,
        channel_recurrence: bool = False,
        batched: bool = False,
    ) -> np.ndarray:
        if self._fallback is not None:
            self._warn_fallback()
            return self._fallback.grid_work_group(
                plan, start, stop, uvw_m, visibilities, taper,
                lmn=lmn, aterm_fields=aterm_fields, vis_batch=vis_batch,
                channel_recurrence=channel_recurrence, batched=batched,
            )
        n = plan.subgrid_size
        if lmn is None:
            lmn = subgrid_lmn(n, plan.gridspec.image_size)
        out = np.empty((stop - start, n, n, 2, 2), dtype=COMPLEX_DTYPE)
        for k, index in enumerate(range(start, stop)):
            out[k] = self._grid_item(
                plan, index, uvw_m, visibilities, taper, lmn, aterm_fields
            )
        return out

    def _grid_item(self, plan, index, uvw_m, visibilities, taper, lmn, aterm_fields):
        n = plan.subgrid_size
        item = plan.work_item(index)
        u_mid, v_mid = plan.subgrid_centre_uv(index)
        scales = (
            plan.frequencies_hz[item.channel_start : item.channel_end]
            / SPEED_OF_LIGHT
        )
        uvw_block = np.ascontiguousarray(
            uvw_m[item.baseline, item.time_start : item.time_end], dtype=np.float64
        )
        vis_block = np.ascontiguousarray(
            visibilities[
                item.baseline,
                item.time_start : item.time_end,
                item.channel_start : item.channel_end,
            ].reshape(item.n_times, item.n_channels, 4),
            dtype=ACCUM_DTYPE,
        )
        offset = np.array([u_mid, v_mid, plan.w_offset], dtype=np.float64)
        acc = np.zeros((n * n, 4), dtype=ACCUM_DTYPE)
        _gridder_accumulate(
            lmn, uvw_block, float(scales[0]), _channel_step(scales), offset,
            vis_block, acc,
        )
        subgrid = acc.reshape(n, n, 2, 2)
        a_p, a_q = _fields_for(aterm_fields, item)
        if a_p is not None or a_q is not None:
            a_p = a_p if a_p is not None else identity_jones_field(n)
            a_q = a_q if a_q is not None else identity_jones_field(n)
            subgrid = apply_adjoint_sandwich(a_p, subgrid, a_q)
        subgrid *= taper[:, :, np.newaxis, np.newaxis]
        return subgrid.astype(COMPLEX_DTYPE)

    # ----------------------------------------------------------- degridder

    def degrid_work_group(
        self,
        plan: Plan,
        start: int,
        stop: int,
        subgrid_images: np.ndarray,
        uvw_m: np.ndarray,
        visibilities_out: np.ndarray,
        taper: np.ndarray,
        lmn: np.ndarray | None = None,
        aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
        vis_batch: int = DEFAULT_VIS_BATCH,
        channel_recurrence: bool = False,
        batched: bool = False,
    ) -> None:
        if self._fallback is not None:
            self._warn_fallback()
            self._fallback.degrid_work_group(
                plan, start, stop, subgrid_images, uvw_m, visibilities_out,
                taper, lmn=lmn, aterm_fields=aterm_fields, vis_batch=vis_batch,
                channel_recurrence=channel_recurrence, batched=batched,
            )
            return
        n = plan.subgrid_size
        if lmn is None:
            lmn = subgrid_lmn(n, plan.gridspec.image_size)
        for k, index in enumerate(range(start, stop)):
            item = plan.work_item(index)
            vis = self._degrid_item(
                plan, index, subgrid_images[k], uvw_m, taper, lmn, aterm_fields
            )
            visibilities_out[
                item.baseline,
                item.time_start : item.time_end,
                item.channel_start : item.channel_end,
            ] = vis

    def _degrid_item(self, plan, index, subgrid_image, uvw_m, taper, lmn, aterm_fields):
        n = plan.subgrid_size
        item = plan.work_item(index)
        u_mid, v_mid = plan.subgrid_centre_uv(index)
        scales = (
            plan.frequencies_hz[item.channel_start : item.channel_end]
            / SPEED_OF_LIGHT
        )
        uvw_block = np.ascontiguousarray(
            uvw_m[item.baseline, item.time_start : item.time_end], dtype=np.float64
        )
        corrected = subgrid_image.astype(ACCUM_DTYPE)
        a_p, a_q = _fields_for(aterm_fields, item)
        if a_p is not None or a_q is not None:
            a_p = a_p if a_p is not None else identity_jones_field(n)
            a_q = a_q if a_q is not None else identity_jones_field(n)
            corrected = apply_sandwich(a_p, corrected, a_q)
        corrected = corrected * taper[:, :, np.newaxis, np.newaxis]
        pixels = np.ascontiguousarray(corrected.reshape(n * n, 4))
        offset = np.array([u_mid, v_mid, plan.w_offset], dtype=np.float64)
        out = np.zeros((item.n_times, item.n_channels, 4), dtype=ACCUM_DTYPE)
        _degridder_accumulate(
            lmn, uvw_block, float(scales[0]), _channel_step(scales), offset,
            pixels, out,
        )
        return out.reshape(item.n_times, item.n_channels, 2, 2).astype(COMPLEX_DTYPE)


def _fields_for(aterm_fields, item):
    """(A_p, A_q) Jones fields of a work item (``None`` = identity)."""
    if aterm_fields is None:
        return None, None
    return (
        aterm_fields.get((item.station_p, item.aterm_interval)),
        aterm_fields.get((item.station_q, item.aterm_interval)),
    )
