"""Pluggable kernel backends (the paper's architecture-specific kernels).

One IDG algorithm, several interchangeable kernel implementations — the
software analogue of the paper running the same pipeline on HASWELL, FIJI
and PASCAL.  Three backends register at import time:

* ``reference``  — the loop-level Algorithm 1/2 oracle (slow, authoritative);
* ``vectorized`` — the BLAS fast path (default);
* ``jit``        — the numba-compiled Listing-1 FMA loop with the
  phase-offset/phase-index split and channel-phasor recurrence; falls back
  to ``vectorized`` with a logged warning when numba is missing.

Select a backend with ``IDGConfig(backend="jit")``, the CLI ``--backend``
flag, or the ``IDG_BACKEND`` environment variable.  All registered backends
are held to pairwise ``rtol = 1e-5`` agreement and per-backend
gridder/degridder adjointness by the differential harness in
``tests/backends/``.
"""

from repro.backends.base import KernelBackend
from repro.backends.jit import HAVE_NUMBA, JitBackend
from repro.backends.reference import ReferenceBackend
from repro.backends.registry import (
    DEFAULT_BACKEND,
    IDG_BACKEND_ENV,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.backends.vectorized import VectorizedBackend

register_backend(ReferenceBackend())
register_backend(VectorizedBackend())
register_backend(JitBackend())

__all__ = [
    "KernelBackend",
    "ReferenceBackend",
    "VectorizedBackend",
    "JitBackend",
    "HAVE_NUMBA",
    "DEFAULT_BACKEND",
    "IDG_BACKEND_ENV",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
]
