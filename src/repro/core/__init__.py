"""The paper's primary contribution: Image-Domain Gridding.

Pipeline (paper Fig 4):

* **gridding** — ``gridder`` (Algorithm 1) accumulates visibilities onto
  subgrids, ``subgrid_fft`` Fourier-transforms them, ``adder`` places them on
  the master grid;
* **degridding** — ``adder.split_subgrids`` extracts subgrids, ``subgrid_fft``
  inverse-transforms them, ``degridder`` (Algorithm 2) predicts visibilities.

``plan`` implements the execution plan of Section V-A (greedy covering of
each baseline's uv track by subgrids, work items, work groups);
``reference`` contains literal loop-level transcriptions of Algorithms 1-2
used as test oracles; ``pipeline`` exposes the user-facing :class:`IDG`
facade.
"""

from repro.core.plan import Plan, PlanStatistics, WorkItem
from repro.core.gridder import grid_work_group, gridder_subgrid
from repro.core.degridder import degrid_work_group, degridder_subgrid
from repro.core.subgrid_fft import subgrids_to_fourier, subgrids_to_image
from repro.core.adder import (
    add_grid,
    add_subgrids,
    split_subgrids,
    tree_reduce_grids,
)
from repro.core.pipeline import IDG, IDGConfig
from repro.core.scratch import (
    ArenaStats,
    ScratchArena,
    arena_stats,
    clear_thread_arena,
    thread_arena,
    total_arena_nbytes,
)
from repro.core.wstack import WLayer, WStackedIDG, split_plan_by_w

__all__ = [
    "Plan",
    "PlanStatistics",
    "WorkItem",
    "grid_work_group",
    "gridder_subgrid",
    "degrid_work_group",
    "degridder_subgrid",
    "subgrids_to_fourier",
    "subgrids_to_image",
    "add_grid",
    "add_subgrids",
    "split_subgrids",
    "tree_reduce_grids",
    "IDG",
    "IDGConfig",
    "ArenaStats",
    "ScratchArena",
    "arena_stats",
    "thread_arena",
    "clear_thread_arena",
    "total_arena_nbytes",
    "WLayer",
    "WStackedIDG",
    "split_plan_by_w",
]
