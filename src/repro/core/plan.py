"""The execution plan (paper Section V-A).

Before any kernel runs, the visibilities of every baseline are partitioned
into *work items*: a subgrid position on the master grid plus the contiguous
(time x channel) block of visibilities it covers.  The partitioning is the
paper's greedy algorithm: starting at the first timestep, include as many
timesteps (each with the current channel block) as the subgrid can cover —
where "cover" includes the half-support of the anti-aliasing/A/w kernels
(Fig 5) — then start a new subgrid.  Additional cut conditions:

* ``time_max`` (the paper's T̃_max) bounds the timesteps per subgrid so work
  items stay comparable in cost;
* an A-term update boundary always starts a new subgrid (the correction is
  applied once per subgrid);
* a channel block whose uv spread alone exceeds the subgrid is split in half
  recursively (the paper: "we create a new subgrid ... to cover the
  remaining channels").

Visibilities whose kernel footprint cannot be placed on the master grid at
all are *flagged* and skipped by every kernel (this mirrors production
imagers dropping out-of-range samples).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.aterms.schedule import ATermSchedule
from repro.atomicio import atomic_savez_compressed
from repro.constants import SPEED_OF_LIGHT
from repro.gridspec import GridSpec

#: dtype of the packed work-item metadata table.
WORK_ITEM_DTYPE = np.dtype(
    [
        ("baseline", np.int32),
        ("station_p", np.int32),
        ("station_q", np.int32),
        ("time_start", np.int32),
        ("time_end", np.int32),  # exclusive
        ("channel_start", np.int32),
        ("channel_end", np.int32),  # exclusive
        ("corner_u", np.int32),
        ("corner_v", np.int32),
        ("aterm_interval", np.int32),
    ]
)


@dataclass(frozen=True)
class WorkItem:
    """One subgrid plus the visibility block it covers (paper Fig 6, level 3)."""

    baseline: int
    station_p: int
    station_q: int
    time_start: int
    time_end: int
    channel_start: int
    channel_end: int
    corner_u: int
    corner_v: int
    aterm_interval: int

    @property
    def n_times(self) -> int:
        return self.time_end - self.time_start

    @property
    def n_channels(self) -> int:
        return self.channel_end - self.channel_start

    @property
    def n_visibilities(self) -> int:
        return self.n_times * self.n_channels


@dataclass(frozen=True)
class PlanStatistics:
    """Aggregate plan metrics feeding the performance model (Section VI)."""

    n_subgrids: int
    n_visibilities_total: int
    n_visibilities_gridded: int
    n_visibilities_flagged: int
    mean_visibilities_per_subgrid: float
    max_timesteps_per_subgrid: int
    subgrid_size: int
    grid_size: int

    @property
    def occupancy(self) -> float:
        """Mean covered visibilities per subgrid / (time_max * channels) — a
        proxy for how much phasor work each subgrid amortises."""
        return self.mean_visibilities_per_subgrid


class Plan:
    """Execution plan: work items, work groups, and coverage bookkeeping.

    Build with :meth:`Plan.create`; the constructor takes pre-computed parts
    (used by tests and by the w-stacking driver, which plans each w layer
    separately).
    """

    def __init__(
        self,
        gridspec: GridSpec,
        subgrid_size: int,
        items: np.ndarray,
        flagged: np.ndarray,
        frequencies_hz: np.ndarray,
        kernel_support: int,
        w_offset: float = 0.0,
    ):
        if items.dtype != WORK_ITEM_DTYPE:
            raise ValueError("items must use WORK_ITEM_DTYPE")
        self.gridspec = gridspec
        self.subgrid_size = int(subgrid_size)
        self.items = items
        self.flagged = flagged
        self.frequencies_hz = np.asarray(frequencies_hz, dtype=np.float64)
        self.kernel_support = int(kernel_support)
        self.w_offset = float(w_offset)

    # ------------------------------------------------------------------ API

    @property
    def n_subgrids(self) -> int:
        return len(self.items)

    @property
    def n_channels(self) -> int:
        return self.frequencies_hz.size

    def work_item(self, index: int) -> WorkItem:
        """Materialise one row of the metadata table as a :class:`WorkItem`."""
        row = self.items[index]
        return WorkItem(*(int(row[name]) for name in WORK_ITEM_DTYPE.names))

    def __iter__(self):
        for i in range(self.n_subgrids):
            yield self.work_item(i)

    def work_groups(self, group_size: int) -> Iterator[tuple[int, int]]:
        """Iterate ``(start, stop)`` index ranges — the paper's work groups
        (Fig 6, level 2).  The last group may be smaller."""
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        for start in range(0, self.n_subgrids, group_size):
            yield (start, min(start + group_size, self.n_subgrids))

    def subgrid_centre_uv(self, index: int) -> tuple[float, float]:
        """(u_mid, v_mid) in wavelengths of subgrid ``index``'s centre cell."""
        row = self.items[index]
        du = self.gridspec.cell_size
        half = self.subgrid_size // 2
        g_half = self.gridspec.grid_size // 2
        return (
            (int(row["corner_u"]) + half - g_half) * du,
            (int(row["corner_v"]) + half - g_half) * du,
        )

    @cached_property
    def statistics(self) -> PlanStatistics:
        covered = int(
            sum(
                (int(r["time_end"]) - int(r["time_start"]))
                * (int(r["channel_end"]) - int(r["channel_start"]))
                for r in self.items
            )
        )
        n_total = int(self.flagged.size)
        n_flagged = int(self.flagged.sum())
        max_t = max(
            (int(r["time_end"]) - int(r["time_start"]) for r in self.items), default=0
        )
        return PlanStatistics(
            n_subgrids=self.n_subgrids,
            n_visibilities_total=n_total,
            n_visibilities_gridded=covered,
            n_visibilities_flagged=n_flagged,
            mean_visibilities_per_subgrid=covered / self.n_subgrids if self.n_subgrids else 0.0,
            max_timesteps_per_subgrid=max_t,
            subgrid_size=self.subgrid_size,
            grid_size=self.gridspec.grid_size,
        )

    # -------------------------------------------------------- serialisation

    def save(self, path) -> None:
        """Write the plan to a compressed ``.npz`` (atomically: temp file +
        rename, so a crash mid-save never leaves a truncated plan).

        Plans for large observations take minutes to build (the greedy sweep
        visits every visibility); pipelines reuse one plan across many
        imaging cycles, so persisting it is worthwhile.
        """
        atomic_savez_compressed(
            path,
            plan_version=np.int64(1),
            grid_size=np.int64(self.gridspec.grid_size),
            image_size=np.float64(self.gridspec.image_size),
            subgrid_size=np.int64(self.subgrid_size),
            kernel_support=np.int64(self.kernel_support),
            w_offset=np.float64(self.w_offset),
            items=self.items,
            flagged=self.flagged,
            frequencies_hz=self.frequencies_hz,
        )

    @classmethod
    def load(cls, path) -> "Plan":
        """Read a plan written by :meth:`save`."""
        with np.load(path) as archive:
            version = int(archive["plan_version"])
            if version != 1:
                raise ValueError(f"unsupported plan version {version}")
            gridspec = GridSpec(
                grid_size=int(archive["grid_size"]),
                image_size=float(archive["image_size"]),
            )
            return cls(
                gridspec=gridspec,
                subgrid_size=int(archive["subgrid_size"]),
                items=archive["items"],
                flagged=archive["flagged"],
                frequencies_hz=archive["frequencies_hz"],
                kernel_support=int(archive["kernel_support"]),
                w_offset=float(archive["w_offset"]),
            )

    # ------------------------------------------------------------ creation

    @classmethod
    def create(
        cls,
        uvw_m: np.ndarray,
        frequencies_hz: np.ndarray,
        baselines: np.ndarray,
        gridspec: GridSpec,
        subgrid_size: int = 24,
        kernel_support: int = 8,
        time_max: int = 128,
        aterm_schedule: ATermSchedule | None = None,
        w_offset: float = 0.0,
    ) -> "Plan":
        """Run the greedy partitioner over every baseline.

        Parameters
        ----------
        uvw_m:
            ``(n_baselines, n_times, 3)`` uvw in metres.
        frequencies_hz:
            ``(n_channels,)`` channel frequencies of the subband.
        baselines:
            ``(n_baselines, 2)`` station pairs.
        gridspec:
            Master grid geometry.
        subgrid_size:
            Subgrid pixels per axis (paper benchmark: 24).
        kernel_support:
            Full width, in uv cells, of the taper/A/w kernel footprint that
            must fit around every visibility inside the subgrid (Fig 5's blue
            circles).
        time_max:
            The paper's T̃_max — upper bound on timesteps per subgrid.
        aterm_schedule:
            A-term update cadence; boundaries force subgrid cuts.
        w_offset:
            w-plane centre (wavelengths) when used inside W-stacking; the
            gridder subtracts it from every visibility's w.
        """
        uvw_m = np.asarray(uvw_m, dtype=np.float64)
        if uvw_m.ndim != 3 or uvw_m.shape[2] != 3:
            raise ValueError(f"uvw_m must be (n_baselines, n_times, 3), got {uvw_m.shape}")
        frequencies_hz = np.atleast_1d(np.asarray(frequencies_hz, dtype=np.float64))
        baselines = np.asarray(baselines)
        n_bl, n_times, _ = uvw_m.shape
        n_chan = frequencies_hz.size
        if baselines.shape != (n_bl, 2):
            raise ValueError(f"baselines must be ({n_bl}, 2), got {baselines.shape}")
        if subgrid_size <= 0 or subgrid_size % 2:
            raise ValueError("subgrid_size must be positive and even")
        if not (0 <= kernel_support < subgrid_size):
            raise ValueError("kernel_support must be in [0, subgrid_size)")
        if time_max <= 0:
            raise ValueError("time_max must be positive")
        if subgrid_size > gridspec.grid_size:
            raise ValueError("subgrid larger than the master grid")
        schedule = aterm_schedule or ATermSchedule(0)

        # Pixel-coordinate scale: u_pix = u_m * (f/c) * image_size + G/2.
        # The (T, C) coordinate arrays are computed per baseline inside the
        # loop, not as one (n_bl, T, C) block up front, so planning memory
        # stays O(T * C) — ``uvw_m`` may be a chunked-store memmap backing a
        # dataset far larger than RAM, and the out-of-core RSS bound covers
        # plan construction too.  Per-element arithmetic is identical either
        # way, so the resulting plan is bit-for-bit unchanged.
        scale = frequencies_hz / SPEED_OF_LIGHT  # (C,)
        half_grid = gridspec.grid_size // 2

        half_support = kernel_support / 2.0
        # Span bound: bbox + kernel support must fit the subgrid *after* the
        # subgrid corner is rounded to an integer cell — rounding can shift
        # the coverage window by up to half a cell each way, hence the -2.
        usable = subgrid_size - 2
        grid_size = gridspec.grid_size

        rows: list[tuple] = []
        flagged = np.zeros((n_bl, n_times, n_chan), dtype=bool)

        for b in range(n_bl):
            p_station, q_station = int(baselines[b, 0]), int(baselines[b, 1])
            # (T, C) pixel coordinates of this baseline's visibilities.
            bu = uvw_m[b, :, 0, np.newaxis] * scale * gridspec.image_size + half_grid
            bv = uvw_m[b, :, 1, np.newaxis] * scale * gridspec.image_size + half_grid

            # work queue of (t_start, c0, c1) segments, LIFO order is fine
            segments = [(0, 0, n_chan)]
            while segments:
                t0, c0, c1 = segments.pop()
                if t0 >= n_times:
                    continue
                interval = int(schedule.interval_of(t0))

                def span_ok(umin, umax, vmin, vmax):
                    return (
                        umax - umin + kernel_support <= usable
                        and vmax - vmin + kernel_support <= usable
                    )

                u_slice = bu[t0, c0:c1]
                v_slice = bv[t0, c0:c1]
                umin, umax = float(u_slice.min()), float(u_slice.max())
                vmin, vmax = float(v_slice.min()), float(v_slice.max())

                if not span_ok(umin, umax, vmin, vmax):
                    if c1 - c0 == 1:
                        # A single visibility's footprint exceeds the subgrid
                        # (can only happen with tiny subgrids): flag it.
                        flagged[b, t0, c0] = True
                        segments.append((t0 + 1, c0, c1))
                    else:
                        mid = (c0 + c1) // 2
                        segments.append((t0, mid, c1))
                        segments.append((t0, c0, mid))
                    continue

                # Greedily extend in time.
                t1 = t0 + 1
                while (
                    t1 < n_times
                    and (t1 - t0) < time_max
                    and int(schedule.interval_of(t1)) == interval
                ):
                    u_next = bu[t1, c0:c1]
                    v_next = bv[t1, c0:c1]
                    numin = min(umin, float(u_next.min()))
                    numax = max(umax, float(u_next.max()))
                    nvmin = min(vmin, float(v_next.min()))
                    nvmax = max(vmax, float(v_next.max()))
                    if not span_ok(numin, numax, nvmin, nvmax):
                        break
                    umin, umax, vmin, vmax = numin, numax, nvmin, nvmax
                    t1 += 1

                # Place the subgrid: centre the *coverage window* (cells
                # corner + support/2 .. corner + N-1 - support/2, whose
                # midpoint is corner + (N-1)/2) on the bbox centre, then
                # clamp to the grid.  With the -2 slack in span_ok this
                # placement provably covers the bbox for interior subgrids.
                cu = int(np.rint((umin + umax) / 2.0 - (subgrid_size - 1) / 2.0))
                cv = int(np.rint((vmin + vmax) / 2.0 - (subgrid_size - 1) / 2.0))
                cu = min(max(cu, 0), grid_size - subgrid_size)
                cv = min(max(cv, 0), grid_size - subgrid_size)

                # Verify the clamped subgrid still covers every footprint;
                # otherwise the visibilities fall off the master grid: flag.
                lo_u = cu + half_support
                hi_u = cu + subgrid_size - 1 - half_support
                lo_v = cv + half_support
                hi_v = cv + subgrid_size - 1 - half_support
                if umin < lo_u or umax > hi_u or vmin < lo_v or vmax > hi_v:
                    flagged[b, t0:t1, c0:c1] = True
                else:
                    rows.append(
                        (b, p_station, q_station, t0, t1, c0, c1, cu, cv, interval)
                    )
                segments.append((t1, c0, c1))

        items = np.array(rows, dtype=WORK_ITEM_DTYPE) if rows else np.empty(
            0, dtype=WORK_ITEM_DTYPE
        )
        return cls(
            gridspec=gridspec,
            subgrid_size=subgrid_size,
            items=items,
            flagged=flagged,
            frequencies_hz=frequencies_hz,
            kernel_support=kernel_support,
            w_offset=w_offset,
        )
