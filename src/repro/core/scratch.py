"""Scratch-buffer arenas: reusable workspace for the batched kernels.

The batched gridder/degridder (:func:`repro.core.gridder.gridder_bucket_fast`
and friends) work on stacked ``(G, N**2, T)`` phase/phasor tensors whose
shapes repeat for every bucket of identically-shaped work items.  Allocating
those tensors per bucket would put hundreds of megabytes per gridding pass
through the allocator — the Python-level analogue of the device-buffer churn
the paper's CUDA/OpenCL implementations avoid by reusing one set of device
buffers across kernel launches.  A :class:`ScratchArena` keeps one growable
buffer per *key* (a short string naming the buffer's role) and hands out
correctly-shaped views, so steady-state gridding performs zero large
allocations: a bucket either fits the existing buffer or grows it once,
and every later bucket of equal or smaller shape reuses it.

Arenas are **not** thread-safe and must never be shared between threads —
two gridder workers writing phase tensors into the same buffer would corrupt
each other's work items.  Kernels therefore obtain their arena through
:func:`thread_arena`, which keeps one arena per thread (the executors —
``ParallelIDG`` workers, ``StreamingIDG`` stage threads — each see their
own), while the backends themselves stay stateless as the backend contract
requires.
"""

from __future__ import annotations

import math
import threading

import numpy as np

__all__ = ["ScratchArena", "thread_arena", "clear_thread_arena"]


class ScratchArena:
    """Keyed, growable scratch buffers handing out shaped views.

    Each key owns one flat backing buffer that only ever grows; ``take``
    returns a view of the first ``prod(shape)`` elements reshaped to
    ``shape``.  Views of the *same key* alias each other by design (a new
    ``take`` invalidates the previous one); views of different keys never
    alias.  Contents are unspecified on take — callers must fully overwrite
    (or use explicit ``out=`` stores) before reading.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def take(self, key: str, shape: tuple[int, ...], dtype: np.dtype | type) -> np.ndarray:
        """A ``shape``-shaped view of the buffer registered under ``key``.

        Grows (reallocates) the backing buffer when ``shape`` needs more
        elements than any previous request for this key, or when the dtype
        changed; otherwise reuses the existing allocation.
        """
        n = math.prod(shape)
        dtype = np.dtype(dtype)
        buffer = self._buffers.get(key)
        if buffer is None or buffer.dtype != dtype or buffer.size < n:
            buffer = np.empty(max(n, 1), dtype=dtype)
            self._buffers[key] = buffer
        return buffer[:n].reshape(shape)

    def zeros(self, key: str, shape: tuple[int, ...], dtype: np.dtype | type) -> np.ndarray:
        """Like :meth:`take` but with the view zero-filled."""
        view = self.take(key, shape, dtype)
        view.fill(0)
        return view

    @property
    def nbytes(self) -> int:
        """Total bytes currently held across all backing buffers."""
        return sum(buffer.nbytes for buffer in self._buffers.values())

    @property
    def keys(self) -> tuple[str, ...]:
        """Registered buffer keys, sorted (introspection/tests)."""
        return tuple(sorted(self._buffers))

    def clear(self) -> None:
        """Drop every backing buffer (frees the memory once views die)."""
        self._buffers.clear()

    def __repr__(self) -> str:
        return (
            f"<ScratchArena keys={len(self._buffers)} "
            f"nbytes={self.nbytes}>"
        )


_thread_local = threading.local()


def thread_arena() -> ScratchArena:
    """The calling thread's private :class:`ScratchArena` (created on first
    use).  Concurrent executor workers each get their own arena, so batched
    kernels running in parallel never alias scratch memory."""
    arena = getattr(_thread_local, "arena", None)
    if arena is None:
        arena = ScratchArena()
        _thread_local.arena = arena
    return arena


def clear_thread_arena() -> None:
    """Release the calling thread's arena buffers (tests, memory pressure)."""
    arena = getattr(_thread_local, "arena", None)
    if arena is not None:
        arena.clear()
