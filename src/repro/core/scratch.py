"""Scratch-buffer arenas: reusable workspace for the batched kernels.

The batched gridder/degridder (:func:`repro.core.gridder.gridder_bucket_fast`
and friends) work on stacked ``(G, N**2, T)`` phase/phasor tensors whose
shapes repeat for every bucket of identically-shaped work items.  Allocating
those tensors per bucket would put hundreds of megabytes per gridding pass
through the allocator — the Python-level analogue of the device-buffer churn
the paper's CUDA/OpenCL implementations avoid by reusing one set of device
buffers across kernel launches.  A :class:`ScratchArena` keeps one growable
buffer per *key* (a short string naming the buffer's role) and hands out
correctly-shaped views, so steady-state gridding performs zero large
allocations: a bucket either fits the existing buffer or grows it once,
and every later bucket of equal or smaller shape reuses it.

Buffers grow to the largest request ever seen, which is also a liability
over a long imaging run: one unusually large bucket (say, the first major
cycle before flagging) pins its peak footprint forever.  Arenas therefore
track a per-key *high-water mark* — the largest request since the last trim
— and :meth:`ScratchArena.trim` shrinks every backing buffer down to it
(dropping keys that went entirely unused).  The imaging major cycle calls
:func:`trim_thread_arenas` between cycles, so steady-state memory tracks the
current working set instead of the historical peak.

Arenas are **not** thread-safe and must never be shared between threads —
two gridder workers writing phase tensors into the same buffer would corrupt
each other's work items.  Kernels therefore obtain their arena through
:func:`thread_arena`, which keeps one arena per thread (the executors —
``ParallelIDG`` workers, ``StreamingIDG`` stage threads — each see their
own), while the backends themselves stay stateless as the backend contract
requires.  :func:`trim_thread_arenas` touches every thread's arena and must
only run at quiescent points (between imaging cycles, after executor pools
have retired their work), never concurrently with kernel execution.
"""

from __future__ import annotations

import math
import threading
import weakref
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ArenaStats",
    "ScratchArena",
    "arena_stats",
    "clear_thread_arena",
    "thread_arena",
    "total_arena_nbytes",
    "trim_thread_arenas",
]


@dataclass(frozen=True)
class ArenaStats:
    """Observability snapshot of one arena (per-thread steady-state memory).

    Attributes
    ----------
    thread:
        Name of the thread that created the arena (arenas are
        single-thread by contract).
    nbytes:
        Bytes currently held across the arena's backing buffers.
    peak_nbytes:
        Largest ``nbytes`` the arena ever reached (across trims).
    n_keys:
        Registered buffer keys.
    n_trims:
        Lifetime :meth:`ScratchArena.trim` calls.
    trimmed_bytes:
        Total bytes released by those trims.
    """

    thread: str
    nbytes: int
    peak_nbytes: int
    n_keys: int
    n_trims: int
    trimmed_bytes: int


class ScratchArena:
    """Keyed, growable scratch buffers handing out shaped views.

    Each key owns one flat backing buffer that grows to the largest request
    seen; ``take`` returns a view of the first ``prod(shape)`` elements
    reshaped to ``shape``.  Views of the *same key* alias each other by
    design (a new ``take`` invalidates the previous one); views of different
    keys never alias.  Contents are unspecified on take — callers must fully
    overwrite (or use explicit ``out=`` stores) before reading.
    :meth:`trim` shrinks buffers back to the high-water mark of the current
    workload phase.
    """

    # Every live arena, so trim_thread_arenas can reach the per-thread
    # arenas of pool workers without keeping dead threads' arenas alive.
    _registry: "weakref.WeakSet[ScratchArena]" = weakref.WeakSet()
    _registry_lock = threading.Lock()

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self._watermarks: dict[str, int] = {}
        self._thread = threading.current_thread().name
        self._peak_nbytes = 0
        self._n_trims = 0
        self._trimmed_bytes = 0
        with ScratchArena._registry_lock:
            ScratchArena._registry.add(self)

    def take(self, key: str, shape: tuple[int, ...], dtype: np.dtype | type) -> np.ndarray:
        """A ``shape``-shaped view of the buffer registered under ``key``.

        Grows (reallocates) the backing buffer when ``shape`` needs more
        elements than any previous request for this key, or when the dtype
        changed; otherwise reuses the existing allocation.
        """
        n = math.prod(shape)
        dtype = np.dtype(dtype)
        buffer = self._buffers.get(key)
        if buffer is None or buffer.dtype != dtype or buffer.size < n:
            buffer = np.empty(max(n, 1), dtype=dtype)
            self._buffers[key] = buffer
            total = self.nbytes
            if total > self._peak_nbytes:
                self._peak_nbytes = total
        if n > self._watermarks.get(key, 0):
            self._watermarks[key] = n
        return buffer[:n].reshape(shape)

    def zeros(self, key: str, shape: tuple[int, ...], dtype: np.dtype | type) -> np.ndarray:
        """Like :meth:`take` but with the view zero-filled."""
        view = self.take(key, shape, dtype)
        view.fill(0)
        return view

    @property
    def nbytes(self) -> int:
        """Total bytes currently held across all backing buffers."""
        return sum(buffer.nbytes for buffer in self._buffers.values())

    @property
    def keys(self) -> tuple[str, ...]:
        """Registered buffer keys, sorted (introspection/tests)."""
        return tuple(sorted(self._buffers))

    def trim(self) -> int:
        """Shrink every buffer to its high-water mark since the last trim.

        Keys that saw no ``take`` since the last trim (or creation) are
        dropped entirely; oversized buffers are reallocated at exactly the
        high-water size.  Resets the marks, so repeated trims track each
        phase's working set.  Returns the number of bytes released.
        Invalidates outstanding views — call only between workload phases.
        """
        freed = 0
        for key in list(self._buffers):
            buffer = self._buffers[key]
            mark = self._watermarks.get(key, 0)
            if mark == 0:
                freed += buffer.nbytes
                del self._buffers[key]
            elif buffer.size > mark:
                freed += (buffer.size - mark) * buffer.itemsize
                self._buffers[key] = np.empty(mark, dtype=buffer.dtype)  # idglint: disable=IDG003  (bounded: one shrink per key per trim)
        self._watermarks.clear()
        self._n_trims += 1
        self._trimmed_bytes += freed
        return freed

    def release(self) -> int:
        """Drop every backing buffer and reset the high-water marks; returns
        the bytes released (memory is freed once outstanding views die)."""
        freed = self.nbytes
        self._buffers.clear()
        self._watermarks.clear()
        return freed

    def clear(self) -> None:
        """Drop every backing buffer (frees the memory once views die)."""
        self.release()

    def stats(self) -> ArenaStats:
        """Observability snapshot (see :class:`ArenaStats`).

        Reads the arena's own bookkeeping without synchronisation, matching
        the arena's single-thread contract; :func:`arena_stats` snapshots
        other threads' arenas and is therefore (like
        :func:`trim_thread_arenas`) only exact at quiescent points.
        """
        return ArenaStats(
            thread=self._thread,
            nbytes=self.nbytes,
            peak_nbytes=self._peak_nbytes,
            n_keys=len(self._buffers),
            n_trims=self._n_trims,
            trimmed_bytes=self._trimmed_bytes,
        )

    def __repr__(self) -> str:
        return (
            f"<ScratchArena keys={len(self._buffers)} "
            f"nbytes={self.nbytes}>"
        )


_thread_local = threading.local()


def thread_arena() -> ScratchArena:
    """The calling thread's private :class:`ScratchArena` (created on first
    use).  Concurrent executor workers each get their own arena, so batched
    kernels running in parallel never alias scratch memory."""
    arena = getattr(_thread_local, "arena", None)
    if arena is None:
        arena = ScratchArena()
        _thread_local.arena = arena
    return arena


def clear_thread_arena() -> None:
    """Release the calling thread's arena buffers (tests, memory pressure)."""
    arena = getattr(_thread_local, "arena", None)
    if arena is not None:
        arena.release()


def trim_thread_arenas() -> int:
    """Trim *every* live arena (all threads) to its current high-water mark;
    returns the total bytes released.

    Only safe at quiescent points — the imaging major cycle calls this
    between cycles, after the executors' pools have retired all work.
    """
    with ScratchArena._registry_lock:
        arenas = list(ScratchArena._registry)
    return sum(arena.trim() for arena in arenas)


def arena_stats() -> tuple[ArenaStats, ...]:
    """Snapshots of every live arena (all threads), sorted by thread name.

    This is the telemetry feed for the per-thread scratch high-water marks:
    the streaming runtime and the gridding service turn these into
    ``arena.*`` gauges.  Like :func:`trim_thread_arenas`, exact only at
    quiescent points (arenas are written lock-free by their owning thread).
    """
    with ScratchArena._registry_lock:
        arenas = list(ScratchArena._registry)
    return tuple(sorted((a.stats() for a in arenas), key=lambda s: s.thread))


def total_arena_nbytes() -> int:
    """Bytes currently held across every live arena (all threads)."""
    return sum(s.nbytes for s in arena_stats())
