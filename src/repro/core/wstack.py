"""W-stacked IDG (paper Section IV).

Plain IDG evaluates the w phase exactly per visibility, but the image-domain
screen ``exp(2*pi*i*(w - w_offset)*n(l, m))`` it multiplies into the subgrid
widens the effective uv footprint with ``|w - w_offset|``; once that
footprint outgrows the subgrid's anti-aliasing headroom, accuracy degrades.
The paper's remedy: combine IDG with W-stacking — "larger subgrids (e.g. up
to 64 x 64) can be used in connection with W-stacking to dramatically limit
the number of required W-planes".

The implementation here follows what ASTRON's production IDG later adopted:
every *work item* gets a w-offset equal to its layer's central w.  Work
items are grouped by their mean w into ``n_planes`` layers; each layer is
gridded onto its own master grid (the gridder subtracting the layer's w),
inverse-FFT'd, multiplied by the layer's exact image-domain screen
``exp(+2*pi*i*w_p*n)`` on the *fine* raster, and the corrected layer images
are summed.  Prediction runs the exact reverse.  Because layers partition
the work items (and work items partition the visibilities), prediction
writes are disjoint and imaging adds are independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import ACCUM_DTYPE

from repro.aterms.generators import ATermGenerator
from repro.aterms.schedule import ATermSchedule
from repro.constants import COMPLEX_DTYPE, SPEED_OF_LIGHT
from repro.core.pipeline import IDG
from repro.core.plan import Plan
from repro.kernels.fft import centered_fft2, centered_ifft2
from repro.kernels.spheroidal import grid_correction
from repro.kernels.wkernel import n_term


@dataclass(frozen=True)
class WLayer:
    """One w plane: its central w (wavelengths) and the plan of the work
    items assigned to it."""

    w_centre: float
    plan: Plan

    @property
    def n_subgrids(self) -> int:
        return self.plan.n_subgrids


def item_mean_w(plan: Plan, uvw_m: np.ndarray) -> np.ndarray:
    """Mean w (wavelengths) of every work item's visibility block."""
    out = np.empty(plan.n_subgrids, dtype=np.float64)
    freqs = plan.frequencies_hz
    for k, item in enumerate(plan):
        w_m = uvw_m[item.baseline, item.time_start : item.time_end, 2]
        f_mean = freqs[item.channel_start : item.channel_end].mean()
        out[k] = w_m.mean() * f_mean / SPEED_OF_LIGHT
    return out


def split_plan_by_w(plan: Plan, uvw_m: np.ndarray, n_planes: int) -> list[WLayer]:
    """Partition a plan's work items into w layers.

    Layer centres are uniformly spaced over the observed per-item w range;
    each item joins the nearest centre, and each layer's sub-plan carries
    that centre as its ``w_offset`` (subtracted by the gridder/degridder).
    Empty layers are dropped.
    """
    if n_planes <= 0:
        raise ValueError("n_planes must be positive")
    if plan.n_subgrids == 0:
        return []
    w_item = item_mean_w(plan, uvw_m)
    w_min, w_max = float(w_item.min()), float(w_item.max())
    if n_planes == 1 or w_max == w_min:
        centres = np.array([0.5 * (w_min + w_max)])
        assignment = np.zeros(plan.n_subgrids, dtype=np.int64)
    else:
        centres = np.linspace(w_min, w_max, n_planes)
        step = centres[1] - centres[0]
        assignment = np.clip(
            np.rint((w_item - centres[0]) / step).astype(np.int64), 0, n_planes - 1
        )
    layers = []
    for p, w_p in enumerate(centres):
        mask = assignment == p
        if not mask.any():
            continue
        sub_plan = Plan(
            gridspec=plan.gridspec,
            subgrid_size=plan.subgrid_size,
            items=plan.items[mask],
            flagged=plan.flagged,
            frequencies_hz=plan.frequencies_hz,
            kernel_support=plan.kernel_support,
            w_offset=float(w_p),
        )
        layers.append(WLayer(w_centre=float(w_p), plan=sub_plan))
    return layers


class WStackedIDG:
    """IDG with per-layer w offsets and image-domain layer recombination.

    Parameters
    ----------
    idg:
        The configured IDG pipeline (its subgrid size and taper are shared
        by all layers).
    n_planes:
        Number of w layers.  1 reproduces plain IDG (modulo a constant
        w shift, which the image correction exactly undoes).
    """

    def __init__(self, idg: IDG, n_planes: int = 4):
        if n_planes <= 0:
            raise ValueError("n_planes must be positive")
        self.idg = idg
        self.n_planes = n_planes

    # ------------------------------------------------------------- planning

    def make_layers(
        self,
        uvw_m: np.ndarray,
        frequencies_hz: np.ndarray,
        baselines: np.ndarray,
        aterm_schedule: ATermSchedule | None = None,
    ) -> list[WLayer]:
        """Plan the observation, then split the work items into w layers."""
        plan = self.idg.make_plan(
            uvw_m, frequencies_hz, baselines, aterm_schedule=aterm_schedule
        )
        return split_plan_by_w(plan, uvw_m, self.n_planes)

    def _w_screen(self, w: float, sign: float) -> np.ndarray:
        gs = self.idg.gridspec
        g = gs.grid_size
        coords = (np.arange(g) - g // 2) * (gs.image_size / g)
        n = n_term(coords[np.newaxis, :], coords[:, np.newaxis])
        return np.exp(sign * 2.0j * np.pi * w * n)

    # -------------------------------------------------------------- imaging

    def image(
        self,
        layers: list[WLayer],
        uvw_m: np.ndarray,
        visibilities: np.ndarray,
        aterms: ATermGenerator | None = None,
        weight_sum: float | None = None,
        correct_taper: bool = True,
    ) -> np.ndarray:
        """Dirty image ``(4, G, G)`` with per-layer w correction.

        Equivalent to :func:`repro.imaging.image.dirty_image_from_grid`
        applied per layer with the layer's exact w screen, then summed.
        """
        gs = self.idg.gridspec
        g = gs.grid_size
        accum = np.zeros((4, g, g), dtype=ACCUM_DTYPE)
        total = 0.0
        for layer in layers:
            grid = self.idg.grid(layer.plan, uvw_m, visibilities, aterms=aterms)
            image = centered_ifft2(grid, axes=(-2, -1)) * (g * g)
            accum += image * self._w_screen(layer.w_centre, sign=+1.0)
            total += sum(item.n_visibilities for item in layer.plan)
        if weight_sum is None:
            weight_sum = max(total, 1.0)
        accum /= weight_sum
        if correct_taper:
            accum /= grid_correction(
                g, taper=self.idg.config.taper, beta=self.idg.config.taper_beta
            )
        return accum

    # ------------------------------------------------------------ predicting

    def predict(
        self,
        model_image: np.ndarray,
        layers: list[WLayer],
        uvw_m: np.ndarray,
        aterms: ATermGenerator | None = None,
    ) -> np.ndarray:
        """Predict visibilities of a ``(4, G, G)`` model image.

        The model is taper-pre-corrected once; each layer applies its
        conjugate w screen before the FFT and degrids its own work items —
        layer outputs cover disjoint visibility blocks and are summed.
        """
        gs = self.idg.gridspec
        g = gs.grid_size
        if model_image.shape != (4, g, g):
            raise ValueError(f"model image must be (4, {g}, {g}), got {model_image.shape}")
        if not layers:
            raise ValueError("no layers to predict from")
        pre = model_image / grid_correction(
            g, taper=self.idg.config.taper, beta=self.idg.config.taper_beta
        )
        n_bl, n_times, _ = uvw_m.shape
        n_chan = layers[0].plan.n_channels
        out = np.zeros((n_bl, n_times, n_chan, 2, 2), dtype=COMPLEX_DTYPE)
        for layer in layers:
            screened = pre * self._w_screen(layer.w_centre, sign=-1.0)
            grid = centered_fft2(screened, axes=(-2, -1)).astype(COMPLEX_DTYPE)
            predicted = self.idg.degrid(layer.plan, uvw_m, grid, aterms=aterms)
            out += predicted  # disjoint blocks: plain add is exact
        return out

    # -------------------------------------------------------------- metrics

    def memory_bytes(self) -> int:
        """Peak layered-grid memory (one grid per concurrently-held layer;
        this implementation holds one at a time, but a GPU pipeline holds
        all — the cost the paper's Section IV trades subgrid size against)."""
        g = self.idg.gridspec.grid_size
        return self.n_planes * 4 * g * g * np.dtype(COMPLEX_DTYPE).itemsize
