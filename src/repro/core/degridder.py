"""The degridder kernel (paper Algorithm 2), vectorised.

The degridder is the forward direction: given an image-domain subgrid (split
from the model grid and inverse-FFT'd), it first applies the taper and the
measurement-equation A-term sandwich ``A_p S A_q^H`` per pixel, then predicts
every visibility of the work item as

``V(t, c) = sum_{y,x} S_corr(y, x) * exp(-2*pi*i * ((u-u_mid) l_x
+ (v-v_mid) m_y + (w-w_off) n(l_x, m_y)))``

— the exact conjugate of the gridder's phase, making gridding/degridding an
adjoint pair (a property the test suite checks as an inner-product identity).
As in the gridder, the hot loop is one ``phasor(M, N**2) @ S(N**2, 4)``
complex matrix product plus the ``exp`` (sine/cosine) evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.contracts import shape_checked
from repro.aterms.jones import apply_sandwich, identity_jones_field
from repro.constants import ACCUM_DTYPE, COMPLEX_DTYPE, SPEED_OF_LIGHT
from repro.core.gridder import (
    DEFAULT_VIS_BATCH,
    PHASOR_RENORM_INTERVAL,
    relative_uvw_wavelengths,
    subgrid_lmn,
)
from repro.core.plan import Plan


@shape_checked(
    subgrid_image="(N, N, 2, 2)",
    uvw_rel_wl="(M, 3)",
    lmn="(N**2, 3)",
    taper="(N, N)",
    aterm_p="(N, N, 2, 2)",
    aterm_q="(N, N, 2, 2)",
    returns="(M, 2, 2)",
)
def degridder_subgrid(
    subgrid_image: np.ndarray,
    uvw_rel_wl: np.ndarray,
    lmn: np.ndarray,
    taper: np.ndarray,
    aterm_p: np.ndarray | None = None,
    aterm_q: np.ndarray | None = None,
    vis_batch: int = DEFAULT_VIS_BATCH,
) -> np.ndarray:
    """Algorithm 2 for a single work item.

    Parameters
    ----------
    subgrid_image:
        ``(N, N, 2, 2)`` image-domain subgrid (after the inverse subgrid FFT).
    uvw_rel_wl:
        ``(M, 3)`` relative uvw in wavelengths.
    lmn:
        ``(N**2, 3)`` pixel directions (:func:`repro.core.gridder.subgrid_lmn`).
    taper:
        ``(N, N)`` taper.
    aterm_p, aterm_q:
        Optional ``(N, N, 2, 2)`` Jones fields; ``None`` means identity.

    Returns
    -------
    ``(M, 2, 2)`` complex64 predicted visibilities.
    """
    n = subgrid_image.shape[0]
    if subgrid_image.shape != (n, n, 2, 2):
        raise ValueError(f"subgrid must be (N, N, 2, 2), got {subgrid_image.shape}")
    if lmn.shape != (n * n, 3):
        raise ValueError(f"lmn shape {lmn.shape} does not match subgrid size {n}")

    corrected = subgrid_image.astype(ACCUM_DTYPE)
    if aterm_p is not None or aterm_q is not None:
        a_p = aterm_p if aterm_p is not None else identity_jones_field(n)
        a_q = aterm_q if aterm_q is not None else identity_jones_field(n)
        corrected = apply_sandwich(a_p, corrected, a_q)
    corrected = corrected * taper[:, :, np.newaxis, np.newaxis]
    pixels_flat = corrected.reshape(n * n, 4)

    m_total = uvw_rel_wl.shape[0]
    out = np.empty((m_total, 4), dtype=ACCUM_DTYPE)
    for start in range(0, m_total, vis_batch):
        stop = min(start + vis_batch, m_total)
        phase = (-2.0 * np.pi) * (uvw_rel_wl[start:stop] @ lmn.T)  # (batch, N^2)
        phasor = np.exp(1j * phase)
        out[start:stop] = phasor @ pixels_flat
    return out.reshape(m_total, 2, 2).astype(COMPLEX_DTYPE)


@shape_checked(
    subgrid_image="(N, N, 2, 2)",
    uvw_m="(T, 3)",
    scales="(C,)",
    offset="(3,)",
    lmn="(N**2, 3)",
    taper="(N, N)",
    aterm_p="(N, N, 2, 2)",
    aterm_q="(N, N, 2, 2)",
    returns="(T, C, 2, 2)",
)
def degridder_subgrid_fast(
    subgrid_image: np.ndarray,
    uvw_m: np.ndarray,
    scales: np.ndarray,
    offset: np.ndarray,
    lmn: np.ndarray,
    taper: np.ndarray,
    aterm_p: np.ndarray | None = None,
    aterm_q: np.ndarray | None = None,
) -> np.ndarray:
    """Algorithm 2 with the channel phasor recurrence.

    The degridding phasor is the conjugate of the gridder's, so the same
    separation ``phi(x, t, c) = s_c * A[x, t] - B[x]`` applies: one
    exponential pair per (pixel, timestep) plus a complex multiply per
    channel step (see :func:`repro.core.gridder.gridder_subgrid_fast`).

    Returns ``(T, C, 2, 2)`` predicted visibilities.
    """
    n = subgrid_image.shape[0]
    t_total = uvw_m.shape[0]
    c_total = int(np.asarray(scales).size)
    if c_total > 1:
        steps = np.diff(scales)
        if not np.allclose(steps, steps[0], rtol=1e-9):
            raise ValueError("channel scales must be evenly spaced for the fast path")
        ds = float(steps[0])
    else:
        ds = 0.0

    corrected = subgrid_image.astype(ACCUM_DTYPE)
    if aterm_p is not None or aterm_q is not None:
        a_p = aterm_p if aterm_p is not None else identity_jones_field(n)
        a_q = aterm_q if aterm_q is not None else identity_jones_field(n)
        corrected = apply_sandwich(a_p, corrected, a_q)
    corrected = corrected * taper[:, :, np.newaxis, np.newaxis]
    pixels_flat = corrected.reshape(n * n, 4)

    base = (2.0 * np.pi) * (lmn @ uvw_m.T)  # (N^2, T)
    offset_phase = (2.0 * np.pi) * (lmn @ np.asarray(offset, dtype=np.float64))
    # conjugate of the gridding phasor
    phasor = np.exp(-1j * (float(scales[0]) * base - offset_phase[:, np.newaxis]))
    step = np.exp(-1j * (ds * base)) if c_total > 1 else None

    out = np.empty((t_total, c_total, 4), dtype=ACCUM_DTYPE)
    for c in range(c_total):
        if c > 0:
            phasor = phasor * step
            if c % PHASOR_RENORM_INTERVAL == 0:
                # same magnitude-drift guard as the gridder fast path
                phasor /= np.abs(phasor)
        out[:, c] = phasor.T @ pixels_flat
    return out.reshape(t_total, c_total, 2, 2).astype(COMPLEX_DTYPE)


def degrid_work_group(
    plan: Plan,
    start: int,
    stop: int,
    subgrid_images: np.ndarray,
    uvw_m: np.ndarray,
    visibilities_out: np.ndarray,
    taper: np.ndarray,
    lmn: np.ndarray | None = None,
    aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
    vis_batch: int = DEFAULT_VIS_BATCH,
    channel_recurrence: bool = False,
) -> None:
    """Run the degridder over work items ``start .. stop-1``, writing into
    ``visibilities_out`` (shape ``(n_baselines, n_times, n_channels, 2, 2)``).

    ``subgrid_images`` holds the ``(stop-start, N, N, 2, 2)`` image-domain
    subgrids produced by the splitter + inverse subgrid FFT.
    ``channel_recurrence`` selects :func:`degridder_subgrid_fast`.
    """
    n = plan.subgrid_size
    if lmn is None:
        lmn = subgrid_lmn(n, plan.gridspec.image_size)
    for k, index in enumerate(range(start, stop)):
        item = plan.work_item(index)
        u_mid, v_mid = plan.subgrid_centre_uv(index)
        freqs = plan.frequencies_hz[item.channel_start : item.channel_end]
        uvw_block = uvw_m[item.baseline, item.time_start : item.time_end]
        a_p = a_q = None
        if aterm_fields is not None:
            a_p = aterm_fields.get((item.station_p, item.aterm_interval))
            a_q = aterm_fields.get((item.station_q, item.aterm_interval))
        if channel_recurrence:
            vis = degridder_subgrid_fast(
                subgrid_images[k], uvw_block, freqs / SPEED_OF_LIGHT,
                np.array([u_mid, v_mid, plan.w_offset]), lmn, taper,
                aterm_p=a_p, aterm_q=a_q,
            )
        else:
            rel = relative_uvw_wavelengths(
                uvw_block, freqs, u_mid, v_mid, plan.w_offset
            )
            vis = degridder_subgrid(
                subgrid_images[k], rel, lmn, taper, aterm_p=a_p, aterm_q=a_q,
                vis_batch=vis_batch,
            ).reshape(item.n_times, item.n_channels, 2, 2)
        visibilities_out[
            item.baseline,
            item.time_start : item.time_end,
            item.channel_start : item.channel_end,
        ] = vis
