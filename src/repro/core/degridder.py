"""The degridder kernel (paper Algorithm 2), vectorised.

The degridder is the forward direction: given an image-domain subgrid (split
from the model grid and inverse-FFT'd), it first applies the taper and the
measurement-equation A-term sandwich ``A_p S A_q^H`` per pixel, then predicts
every visibility of the work item as

``V(t, c) = sum_{y,x} S_corr(y, x) * exp(-2*pi*i * ((u-u_mid) l_x
+ (v-v_mid) m_y + (w-w_off) n(l_x, m_y)))``

— the exact conjugate of the gridder's phase, making gridding/degridding an
adjoint pair (a property the test suite checks as an inner-product identity).
As in the gridder, the hot loop is one ``phasor(M, N**2) @ S(N**2, 4)``
complex matrix product plus the ``exp`` (sine/cosine) evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.contracts import shape_checked
from repro.aterms.jones import apply_sandwich, identity_jones_field
from repro.constants import ACCUM_DTYPE, COMPLEX_DTYPE, SPEED_OF_LIGHT
from repro.core.gridder import (
    DEFAULT_VIS_BATCH,
    PHASOR_RENORM_INTERVAL,
    _offset_phase_matrix,
    _phase_tensor,
    _sincos_into,
    relative_uvw_wavelengths,
    subgrid_lmn,
)
from repro.core.plan import Plan
from repro.core.scratch import ScratchArena, thread_arena


@shape_checked(
    subgrid_image="(N, N, 2, 2)",
    uvw_rel_wl="(M, 3)",
    lmn="(N**2, 3)",
    taper="(N, N)",
    aterm_p="(N, N, 2, 2)",
    aterm_q="(N, N, 2, 2)",
    returns="(M, 2, 2)",
)
def degridder_subgrid(
    subgrid_image: np.ndarray,
    uvw_rel_wl: np.ndarray,
    lmn: np.ndarray,
    taper: np.ndarray,
    aterm_p: np.ndarray | None = None,
    aterm_q: np.ndarray | None = None,
    vis_batch: int = DEFAULT_VIS_BATCH,
) -> np.ndarray:
    """Algorithm 2 for a single work item.

    Parameters
    ----------
    subgrid_image:
        ``(N, N, 2, 2)`` image-domain subgrid (after the inverse subgrid FFT).
    uvw_rel_wl:
        ``(M, 3)`` relative uvw in wavelengths.
    lmn:
        ``(N**2, 3)`` pixel directions (:func:`repro.core.gridder.subgrid_lmn`).
    taper:
        ``(N, N)`` taper.
    aterm_p, aterm_q:
        Optional ``(N, N, 2, 2)`` Jones fields; ``None`` means identity.

    Returns
    -------
    ``(M, 2, 2)`` complex64 predicted visibilities.
    """
    n = subgrid_image.shape[0]
    if subgrid_image.shape != (n, n, 2, 2):
        raise ValueError(f"subgrid must be (N, N, 2, 2), got {subgrid_image.shape}")
    if lmn.shape != (n * n, 3):
        raise ValueError(f"lmn shape {lmn.shape} does not match subgrid size {n}")

    corrected = subgrid_image.astype(ACCUM_DTYPE)
    if aterm_p is not None or aterm_q is not None:
        a_p = aterm_p if aterm_p is not None else identity_jones_field(n)
        a_q = aterm_q if aterm_q is not None else identity_jones_field(n)
        corrected = apply_sandwich(a_p, corrected, a_q)
    corrected = corrected * taper[:, :, np.newaxis, np.newaxis]
    pixels_flat = corrected.reshape(n * n, 4)

    m_total = uvw_rel_wl.shape[0]
    out = np.empty((m_total, 4), dtype=ACCUM_DTYPE)
    for start in range(0, m_total, vis_batch):
        stop = min(start + vis_batch, m_total)
        phase = (-2.0 * np.pi) * (uvw_rel_wl[start:stop] @ lmn.T)  # (batch, N^2)
        phasor = np.exp(1j * phase)
        out[start:stop] = phasor @ pixels_flat
    return out.reshape(m_total, 2, 2).astype(COMPLEX_DTYPE)


@shape_checked(
    subgrid_image="(N, N, 2, 2)",
    uvw_m="(T, 3)",
    scales="(C,)",
    offset="(3,)",
    lmn="(N**2, 3)",
    taper="(N, N)",
    aterm_p="(N, N, 2, 2)",
    aterm_q="(N, N, 2, 2)",
    returns="(T, C, 2, 2)",
)
def degridder_subgrid_fast(
    subgrid_image: np.ndarray,
    uvw_m: np.ndarray,
    scales: np.ndarray,
    offset: np.ndarray,
    lmn: np.ndarray,
    taper: np.ndarray,
    aterm_p: np.ndarray | None = None,
    aterm_q: np.ndarray | None = None,
) -> np.ndarray:
    """Algorithm 2 with the channel phasor recurrence.

    The degridding phasor is the conjugate of the gridder's, so the same
    separation ``phi(x, t, c) = s_c * A[x, t] - B[x]`` applies: one
    exponential pair per (pixel, timestep) plus a complex multiply per
    channel step (see :func:`repro.core.gridder.gridder_subgrid_fast`).

    Returns ``(T, C, 2, 2)`` predicted visibilities.
    """
    n = subgrid_image.shape[0]
    t_total = uvw_m.shape[0]
    c_total = int(np.asarray(scales).size)
    if c_total > 1:
        steps = np.diff(scales)
        if not np.allclose(steps, steps[0], rtol=1e-9):
            raise ValueError("channel scales must be evenly spaced for the fast path")
        ds = float(steps[0])
    else:
        ds = 0.0

    corrected = subgrid_image.astype(ACCUM_DTYPE)
    if aterm_p is not None or aterm_q is not None:
        a_p = aterm_p if aterm_p is not None else identity_jones_field(n)
        a_q = aterm_q if aterm_q is not None else identity_jones_field(n)
        corrected = apply_sandwich(a_p, corrected, a_q)
    corrected = corrected * taper[:, :, np.newaxis, np.newaxis]
    pixels_flat = corrected.reshape(n * n, 4)

    base = (2.0 * np.pi) * (lmn @ uvw_m.T)  # (N^2, T)
    offset_phase = (2.0 * np.pi) * (lmn @ np.asarray(offset, dtype=np.float64))
    # conjugate of the gridding phasor
    phasor = np.exp(-1j * (float(scales[0]) * base - offset_phase[:, np.newaxis]))
    step = np.exp(-1j * (ds * base)) if c_total > 1 else None

    out = np.empty((t_total, c_total, 4), dtype=ACCUM_DTYPE)
    magnitude = np.empty(phasor.shape) if c_total > PHASOR_RENORM_INTERVAL else None
    for c in range(c_total):
        if c > 0:
            phasor *= step
            if c % PHASOR_RENORM_INTERVAL == 0:
                # same magnitude-drift guard as the gridder fast path
                np.abs(phasor, out=magnitude)
                phasor /= magnitude
        out[:, c] = phasor.T @ pixels_flat
    return out.reshape(t_total, c_total, 2, 2).astype(COMPLEX_DTYPE)


def _corrected_pixels_bucket(
    subgrid_images: np.ndarray,
    taper: np.ndarray,
    aterm_p: np.ndarray | None,
    aterm_q: np.ndarray | None,
    arena: ScratchArena,
) -> np.ndarray:
    """Taper + A-term-corrected pixels of a bucket, as ``(G, N**2, 4)``
    complex128 (the shared preamble of both batched degridder kernels)."""
    g_total, n = subgrid_images.shape[:2]
    corrected = arena.take("degridder.corrected", (g_total, n, n, 2, 2), ACCUM_DTYPE)
    corrected[...] = subgrid_images
    if aterm_p is not None or aterm_q is not None:
        corrected = apply_sandwich(aterm_p, corrected, aterm_q)
    corrected *= taper[np.newaxis, :, :, np.newaxis, np.newaxis]
    return corrected.reshape(g_total, n * n, 4)


@shape_checked(
    subgrid_images="(G, N, N, 2, 2)",
    uvw_m="(G, T, 3)",
    scale0="(G,)",
    offsets="(G, 3)",
    lmn="(N**2, 3)",
    taper="(N, N)",
    aterm_p="(G, N, N, 2, 2)",
    aterm_q="(G, N, N, 2, 2)",
    returns="(G, T, C, 4)",
)
def degridder_bucket_fast(
    subgrid_images: np.ndarray,
    uvw_m: np.ndarray,
    scale0: np.ndarray,
    ds: float,
    n_channels: int,
    offsets: np.ndarray,
    lmn: np.ndarray,
    taper: np.ndarray,
    aterm_p: np.ndarray | None = None,
    aterm_q: np.ndarray | None = None,
    arena: ScratchArena | None = None,
) -> np.ndarray:
    """Algorithm 2 with the channel phasor recurrence, over a whole bucket.

    The batched form of :func:`degridder_subgrid_fast` — the exact phase
    conjugate of :func:`repro.core.gridder.gridder_bucket_fast`, with one
    stacked ``(G, T, N**2) @ (G, N**2, 4)`` matrix product per channel step
    and the recurrence applied in place on arena buffers.

    Parameters
    ----------
    subgrid_images:
        ``(G, N, N, 2, 2)`` stacked image-domain subgrids.
    uvw_m:
        ``(G, T, 3)`` stacked uvw in metres.
    scale0:
        ``(G,)`` first-channel ``f/c`` per item.
    ds:
        Shared channel step of the ``f/c`` ladder (0 for one channel).
    n_channels:
        Channels per item (``C`` of the bucket shape).
    offsets:
        ``(G, 3)`` per-item subgrid offsets ``u_mid, v_mid, w_offset`` in
        wavelengths.
    lmn, taper, aterm_p, aterm_q:
        As in :func:`gridder_bucket_fast`.
    arena:
        Scratch arena (defaults to the calling thread's).

    Returns
    -------
    ``(G, T, C, 4)`` complex128 predicted visibilities (an arena view —
    the work-group driver scatters it into the output before the next
    batched call on this thread).
    """
    g_total, t_total = uvw_m.shape[:2]
    n_pixels2 = lmn.shape[0]
    if arena is None:
        arena = thread_arena()
    pixels = _corrected_pixels_bucket(subgrid_images, taper, aterm_p, aterm_q, arena)

    base = _phase_tensor(lmn, uvw_m, arena, "bucket.base")
    offset_phase = _offset_phase_matrix(lmn, offsets, arena, "bucket.offset_phase")
    phase = arena.take("bucket.phase", (g_total, n_pixels2, t_total), np.float64)
    phasor = arena.take("bucket.phasor", (g_total, n_pixels2, t_total), ACCUM_DTYPE)
    # conjugate of the gridding phasor: exp(-1j (s0 base - offset))
    np.multiply(base, scale0[:, np.newaxis, np.newaxis], out=phase)
    np.subtract(offset_phase[:, :, np.newaxis], phase, out=phase)
    _sincos_into(phase, phasor)
    if n_channels > 1:
        step = arena.take("bucket.step", (g_total, n_pixels2, t_total), ACCUM_DTYPE)
        np.multiply(base, -ds, out=phase)
        _sincos_into(phase, step)

    out = arena.take("degridder.out", (g_total, t_total, n_channels, 4), ACCUM_DTYPE)
    prod = arena.take("degridder.prod", (g_total, t_total, 4), ACCUM_DTYPE)
    phasor_t = np.swapaxes(phasor, 1, 2)
    np.matmul(phasor_t, pixels, out=prod)
    out[:, :, 0] = prod
    for c in range(1, n_channels):
        np.multiply(phasor, step, out=phasor)
        if c % PHASOR_RENORM_INTERVAL == 0:
            # same magnitude-drift guard as the gridder bucket kernel
            np.abs(phasor, out=phase)
            phasor /= phase
        np.matmul(phasor_t, pixels, out=prod)
        out[:, :, c] = prod
    return out


@shape_checked(
    subgrid_images="(G, N, N, 2, 2)",
    uvw_rel_wl="(G, M, 3)",
    lmn="(N**2, 3)",
    taper="(N, N)",
    aterm_p="(G, N, N, 2, 2)",
    aterm_q="(G, N, N, 2, 2)",
    returns="(G, M, 4)",
)
def degridder_bucket(
    subgrid_images: np.ndarray,
    uvw_rel_wl: np.ndarray,
    lmn: np.ndarray,
    taper: np.ndarray,
    aterm_p: np.ndarray | None = None,
    aterm_q: np.ndarray | None = None,
    arena: ScratchArena | None = None,
) -> np.ndarray:
    """Algorithm 2 as a direct sum, over a whole bucket.

    The batched form of :func:`degridder_subgrid`: one broadcast matmul for
    the stacked ``(G, M, N**2)`` phase, one batched sine/cosine evaluation,
    one stacked ``(G, M, N**2) @ (G, N**2, 4)`` matrix product.

    Parameters
    ----------
    subgrid_images:
        ``(G, N, N, 2, 2)`` stacked image-domain subgrids.
    uvw_rel_wl:
        ``(G, M, 3)`` stacked relative uvw in wavelengths.
    lmn, taper, aterm_p, aterm_q:
        As in :func:`gridder_bucket_fast`.
    arena:
        Scratch arena (defaults to the calling thread's).

    Returns
    -------
    ``(G, M, 4)`` complex128 predicted visibilities (an arena view).
    """
    g_total, m_total = uvw_rel_wl.shape[:2]
    n_pixels2 = lmn.shape[0]
    if arena is None:
        arena = thread_arena()
    pixels = _corrected_pixels_bucket(subgrid_images, taper, aterm_p, aterm_q, arena)

    phase = arena.take("bucket.phase", (g_total, m_total, n_pixels2), np.float64)
    np.matmul(uvw_rel_wl, lmn.T, out=phase)
    phase *= -2.0 * np.pi
    phasor = arena.take("bucket.phasor", (g_total, m_total, n_pixels2), ACCUM_DTYPE)
    _sincos_into(phase, phasor)

    out = arena.take("degridder.out", (g_total, m_total, 4), ACCUM_DTYPE)
    np.matmul(phasor, pixels, out=out)
    return out


def degrid_work_group(
    plan: Plan,
    start: int,
    stop: int,
    subgrid_images: np.ndarray,
    uvw_m: np.ndarray,
    visibilities_out: np.ndarray,
    taper: np.ndarray,
    lmn: np.ndarray | None = None,
    aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
    vis_batch: int = DEFAULT_VIS_BATCH,
    channel_recurrence: bool = False,
) -> None:
    """Run the degridder over work items ``start .. stop-1``, writing into
    ``visibilities_out`` (shape ``(n_baselines, n_times, n_channels, 2, 2)``).

    ``subgrid_images`` holds the ``(stop-start, N, N, 2, 2)`` image-domain
    subgrids produced by the splitter + inverse subgrid FFT.
    ``channel_recurrence`` selects :func:`degridder_subgrid_fast`.
    """
    n = plan.subgrid_size
    if lmn is None:
        lmn = subgrid_lmn(n, plan.gridspec.image_size)
    for k, index in enumerate(range(start, stop)):
        item = plan.work_item(index)
        u_mid, v_mid = plan.subgrid_centre_uv(index)
        freqs = plan.frequencies_hz[item.channel_start : item.channel_end]
        uvw_block = uvw_m[item.baseline, item.time_start : item.time_end]
        a_p = a_q = None
        if aterm_fields is not None:
            a_p = aterm_fields.get((item.station_p, item.aterm_interval))
            a_q = aterm_fields.get((item.station_q, item.aterm_interval))
        if channel_recurrence:
            vis = degridder_subgrid_fast(
                subgrid_images[k], uvw_block, freqs / SPEED_OF_LIGHT,
                np.array([u_mid, v_mid, plan.w_offset]), lmn, taper,
                aterm_p=a_p, aterm_q=a_q,
            )
        else:
            rel = relative_uvw_wavelengths(
                uvw_block, freqs, u_mid, v_mid, plan.w_offset
            )
            vis = degridder_subgrid(
                subgrid_images[k], rel, lmn, taper, aterm_p=a_p, aterm_q=a_q,
                vis_batch=vis_batch,
            ).reshape(item.n_times, item.n_channels, 2, 2)
        visibilities_out[
            item.baseline,
            item.time_start : item.time_end,
            item.channel_start : item.channel_end,
        ] = vis
