"""The gridder kernel (paper Algorithm 1), vectorised.

For one work item the kernel computes every subgrid pixel as a direct sum of
phase-shifted visibilities:

``S(y, x) = sum_{t,c} V(t, c) * exp(+2*pi*i * ((u-u_mid) l_x + (v-v_mid) m_y
+ (w-w_off) n(l_x, m_y)))``

(the conjugate of the measurement-equation phase — gridding is the adjoint of
prediction), then applies the A-term adjoint sandwich ``A_p^H S A_q`` and the
anti-aliasing taper.  The whole inner loop is expressed as one complex
matrix product ``phasor(N^2, M) @ V(M, 4)`` so NumPy dispatches it to BLAS
``*gemm`` — the Python analogue of the paper's FMA-dominated SIMD reduction
(Listing 1) — while the ``exp`` evaluation is the analogue of the SVML/SFU
sine/cosine cost the paper's roofline analysis centres on.

Visibilities are processed in batches of ``vis_batch`` at a time, mirroring
the paper's T_B x C_B batching that bounds the working set.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.contracts import shape_checked
from repro.aterms.jones import apply_adjoint_sandwich, identity_jones_field
from repro.cache import ArtifactCache
from repro.constants import ACCUM_DTYPE, COMPLEX_DTYPE, SPEED_OF_LIGHT
from repro.core.plan import Plan
from repro.core.scratch import ScratchArena, thread_arena
from repro.hashing import content_hash
from repro.kernels.fft import image_coordinates
from repro.kernels.wkernel import n_term

#: Default number of visibilities (timesteps x channels) per batch.
DEFAULT_VIS_BATCH = 1024

#: Channel interval at which the fast path renormalises its recurrent phasor.
#: Each recurrence step multiplies by a unit-magnitude complex number whose
#: rounding error compounds multiplicatively; dividing by ``|phasor|`` every
#: 64 steps keeps wide-band (hundreds of channels) runs at single-precision
#: accuracy for the cost of one |z| per pixel-timestep per interval.
PHASOR_RENORM_INTERVAL = 64


#: Content-hash keyed cache behind :func:`subgrid_lmn` (the PR 4
#: ``lru_cache`` migrated onto the shared artifact-cache layer).  Every call
#: site with the same (subgrid size, image size) — the ``IDG`` facade,
#: work-group kernels called without a precomputed ``lmn``, w-stack layers,
#: service jobs, tests — shares one immutable matrix.
_LMN_CACHE = ArtifactCache(max_bytes=64 * 1024 * 1024, name="core.subgrid_lmn")


def _compute_subgrid_lmn(subgrid_size: int, image_size: float) -> np.ndarray:
    coords = image_coordinates(subgrid_size, image_size)
    ll = np.broadcast_to(coords[np.newaxis, :], (subgrid_size, subgrid_size))
    mm = np.broadcast_to(coords[:, np.newaxis], (subgrid_size, subgrid_size))
    nn = n_term(ll, mm)
    lmn = np.stack([ll.ravel(), mm.ravel(), nn.ravel()], axis=1)
    lmn.setflags(write=False)
    return lmn


@shape_checked(returns="(N**2, 3)")
def subgrid_lmn(subgrid_size: int, image_size: float) -> np.ndarray:
    """The ``(N**2, 3)`` matrix of (l, m, n) per subgrid pixel, row-major.

    Row ``y * N + x`` holds ``(l_x, m_y, n(l_x, m_y))`` for the coarse image
    raster spanning the full field of view.  This matrix is the fixed factor
    of the phasor product, computed once per (subgrid size, image size) and
    cached in the shared :class:`~repro.cache.ArtifactCache`; the returned
    array is shared and read-only.
    """
    subgrid_size, image_size = int(subgrid_size), float(image_size)
    key = content_hash("subgrid_lmn", subgrid_size, image_size)
    return _LMN_CACHE.get_or_create(
        key, lambda: _compute_subgrid_lmn(subgrid_size, image_size)
    )


@shape_checked(
    uvw_m="(n_times, 3)",
    frequencies_hz="(n_channels,)",
    returns="(n_times * n_channels, 3)",
)
def relative_uvw_wavelengths(
    uvw_m: np.ndarray,
    frequencies_hz: np.ndarray,
    u_mid: float,
    v_mid: float,
    w_offset: float = 0.0,
) -> np.ndarray:
    """uvw of a visibility block relative to the subgrid centre, in wavelengths.

    Parameters
    ----------
    uvw_m:
        ``(n_times, 3)`` uvw in metres for the work item's timesteps.
    frequencies_hz:
        ``(n_channels,)`` frequencies for the work item's channels.

    Returns
    -------
    ``(n_times * n_channels, 3)`` array, time-major (channel fastest), with
    ``(u - u_mid, v - v_mid, w - w_offset)`` per visibility.
    """
    scale = np.asarray(frequencies_hz, dtype=np.float64) / SPEED_OF_LIGHT  # (C,)
    uvw_wl = uvw_m[:, np.newaxis, :] * scale[np.newaxis, :, np.newaxis]  # (T, C, 3)
    rel = uvw_wl.reshape(-1, 3).copy()
    rel[:, 0] -= u_mid
    rel[:, 1] -= v_mid
    rel[:, 2] -= w_offset
    return rel


@shape_checked(
    visibilities="(M, 2, 2) | (M, 4)",
    uvw_rel_wl="(M, 3)",
    lmn="(N**2, 3)",
    taper="(N, N)",
    aterm_p="(N, N, 2, 2)",
    aterm_q="(N, N, 2, 2)",
    returns="(N, N, 2, 2)",
)
def gridder_subgrid(
    visibilities: np.ndarray,
    uvw_rel_wl: np.ndarray,
    lmn: np.ndarray,
    taper: np.ndarray,
    aterm_p: np.ndarray | None = None,
    aterm_q: np.ndarray | None = None,
    vis_batch: int = DEFAULT_VIS_BATCH,
) -> np.ndarray:
    """Algorithm 1 for a single work item.

    Parameters
    ----------
    visibilities:
        ``(M, 2, 2)`` or ``(M, 4)`` complex visibilities of the block.
    uvw_rel_wl:
        ``(M, 3)`` relative uvw in wavelengths
        (see :func:`relative_uvw_wavelengths`).
    lmn:
        ``(N**2, 3)`` pixel directions (:func:`subgrid_lmn`).
    taper:
        ``(N, N)`` anti-aliasing taper.
    aterm_p, aterm_q:
        Optional ``(N, N, 2, 2)`` Jones fields of the two stations; ``None``
        means identity (the adjoint sandwich is skipped).
    vis_batch:
        Visibilities per batch (bounds the ``(N**2, batch)`` phasor array).

    Returns
    -------
    ``(N, N, 2, 2)`` complex64 image-domain subgrid (before the FFT).
    """
    n_pixels2 = lmn.shape[0]
    n = int(np.sqrt(n_pixels2))
    if n * n != n_pixels2:
        raise ValueError("lmn row count must be a square")
    vis = np.asarray(visibilities)
    m_total = vis.shape[0]
    vis_flat = vis.reshape(m_total, 4)
    if uvw_rel_wl.shape != (m_total, 3):
        raise ValueError(
            f"uvw_rel_wl shape {uvw_rel_wl.shape} does not match {m_total} visibilities"
        )

    acc = np.zeros((n_pixels2, 4), dtype=ACCUM_DTYPE)
    for start in range(0, m_total, vis_batch):
        stop = min(start + vis_batch, m_total)
        # (N^2, batch) phase; the exp() below is the sine/cosine workload the
        # paper's modified roofline treats as a first-class operation.
        phase = (2.0 * np.pi) * (lmn @ uvw_rel_wl[start:stop].T)
        phasor = np.exp(1j * phase)
        acc += phasor @ vis_flat[start:stop]

    subgrid = acc.reshape(n, n, 2, 2)
    if aterm_p is not None or aterm_q is not None:
        a_p = aterm_p if aterm_p is not None else identity_jones_field(n)
        a_q = aterm_q if aterm_q is not None else identity_jones_field(n)
        subgrid = apply_adjoint_sandwich(a_p, subgrid, a_q)
    subgrid *= taper[:, :, np.newaxis, np.newaxis]
    return subgrid.astype(COMPLEX_DTYPE)


@shape_checked(
    visibilities="(T, C, 2, 2)",
    uvw_m="(T, 3)",
    scales="(C,)",
    offset="(3,)",
    lmn="(N**2, 3)",
    taper="(N, N)",
    aterm_p="(N, N, 2, 2)",
    aterm_q="(N, N, 2, 2)",
    returns="(N, N, 2, 2)",
)
def gridder_subgrid_fast(
    visibilities: np.ndarray,
    uvw_m: np.ndarray,
    scales: np.ndarray,
    offset: np.ndarray,
    lmn: np.ndarray,
    taper: np.ndarray,
    aterm_p: np.ndarray | None = None,
    aterm_q: np.ndarray | None = None,
) -> np.ndarray:
    """Algorithm 1 with the channel phasor recurrence.

    The phase separates as ``phi(x, t, c) = s_c * A[x, t] - B[x]`` with
    ``A = 2 pi lmn . uvw_m`` (metres) , ``B = 2 pi lmn . offset``
    (wavelengths) and ``s_c = f_c / c_light``.  For evenly spaced channels
    ``s_c = s_0 + c * ds``, so

    ``exp(i s_c A) = exp(i s_0 A) * exp(i ds A)**c``

    — one pair of exponentials per (pixel, timestep) plus one complex
    multiply per channel step, instead of one exponential per (pixel,
    timestep, channel).  This is the image-domain analogue of the paper's
    batch sincos precomputation (Section V-B, optimisation 2): it reduces
    the sine/cosine count by a factor ~n_channels at the cost of extra
    FMAs, which both CPUs and GPUs have to spare (rho = 17 leaves the FMA
    pipes underused on sincos-limited architectures).

    Parameters
    ----------
    visibilities:
        ``(T, C, 2, 2)`` block.
    uvw_m:
        ``(T, 3)`` uvw in metres.
    scales:
        ``(C,)`` = frequencies / speed-of-light; must be evenly spaced.
    offset:
        ``(3,)`` = (u_mid, v_mid, w_offset) in wavelengths.
    lmn, taper, aterm_p, aterm_q:
        As in :func:`gridder_subgrid`.
    """
    n_pixels2 = lmn.shape[0]
    n = int(np.sqrt(n_pixels2))
    t_total, c_total = visibilities.shape[:2]
    if c_total > 1:
        steps = np.diff(scales)
        if not np.allclose(steps, steps[0], rtol=1e-9):
            raise ValueError("channel scales must be evenly spaced for the fast path")
        ds = float(steps[0])
    else:
        ds = 0.0

    # (N^2, T): the metre-domain phase; (N^2,): the subgrid-offset phase
    base = (2.0 * np.pi) * (lmn @ uvw_m.T)
    offset_phase = (2.0 * np.pi) * (lmn @ np.asarray(offset, dtype=np.float64))
    phasor = np.exp(1j * (float(scales[0]) * base - offset_phase[:, np.newaxis]))
    step = np.exp(1j * (ds * base)) if c_total > 1 else None

    vis = np.asarray(visibilities).reshape(t_total, c_total, 4)
    acc = np.zeros((n_pixels2, 4), dtype=ACCUM_DTYPE)
    magnitude = np.empty(phasor.shape) if c_total > PHASOR_RENORM_INTERVAL else None
    for c in range(c_total):
        if c > 0:
            phasor *= step
            if c % PHASOR_RENORM_INTERVAL == 0:
                # the recurrence drifts off the unit circle multiplicatively;
                # pull it back before the error reaches single precision
                np.abs(phasor, out=magnitude)
                phasor /= magnitude
        acc += phasor @ vis[:, c]

    subgrid = acc.reshape(n, n, 2, 2)
    if aterm_p is not None or aterm_q is not None:
        a_p = aterm_p if aterm_p is not None else identity_jones_field(n)
        a_q = aterm_q if aterm_q is not None else identity_jones_field(n)
        subgrid = apply_adjoint_sandwich(a_p, subgrid, a_q)
    subgrid *= taper[:, :, np.newaxis, np.newaxis]
    return subgrid.astype(COMPLEX_DTYPE)


def _phase_tensor(
    lmn: np.ndarray, uvw_m: np.ndarray, arena: ScratchArena, key: str
) -> np.ndarray:
    """``(G, N**2, T)`` metre-domain phase ``2 pi lmn . uvw`` of a bucket —
    the stacked analogue of the per-item ``base`` matrix, built with one
    broadcast batched matmul into an arena buffer."""
    g_total, t_total = uvw_m.shape[0], uvw_m.shape[1]
    base = arena.take(key, (g_total, lmn.shape[0], t_total), np.float64)
    np.matmul(lmn, np.swapaxes(uvw_m, 1, 2), out=base)
    base *= 2.0 * np.pi
    return base


def _offset_phase_matrix(
    lmn: np.ndarray, offsets: np.ndarray, arena: ScratchArena, key: str
) -> np.ndarray:
    """``(G, N**2)`` subgrid-offset phase ``2 pi lmn . offset`` per item."""
    out = arena.take(key, (offsets.shape[0], lmn.shape[0]), np.float64)
    np.matmul(offsets, lmn.T, out=out)
    out *= 2.0 * np.pi
    return out


def _sincos_into(phase: np.ndarray, out: np.ndarray) -> None:
    """``out = exp(1j * phase)`` without temporaries: cosine and sine are
    written straight into the complex buffer's real/imaginary views (the
    same two transcendental evaluations ``np.exp`` performs, minus its
    allocations)."""
    np.cos(phase, out=out.real)
    np.sin(phase, out=out.imag)


@shape_checked(
    visibilities="(G, T, C, 4)",
    uvw_m="(G, T, 3)",
    scale0="(G,)",
    offsets="(G, 3)",
    lmn="(N**2, 3)",
    taper="(N, N)",
    aterm_p="(G, N, N, 2, 2)",
    aterm_q="(G, N, N, 2, 2)",
    returns="(G, N, N, 2, 2)",
)
def gridder_bucket_fast(
    visibilities: np.ndarray,
    uvw_m: np.ndarray,
    scale0: np.ndarray,
    ds: float,
    offsets: np.ndarray,
    lmn: np.ndarray,
    taper: np.ndarray,
    aterm_p: np.ndarray | None = None,
    aterm_q: np.ndarray | None = None,
    arena: ScratchArena | None = None,
) -> np.ndarray:
    """Algorithm 1 with the channel phasor recurrence, over a whole bucket.

    The batched form of :func:`gridder_subgrid_fast`: ``G`` identically
    shaped work items are evaluated together — one broadcast matmul for the
    stacked metre-domain phase, one batched sine/cosine pair per (item,
    pixel, timestep), and one stacked ``(G, N**2, T) @ (G, T, 4)`` matrix
    product per channel step, with the recurrence multiply and its
    renormalisation applied in place.  All working memory comes from the
    scratch arena, so a steady stream of equal-shape buckets allocates
    nothing.

    Parameters
    ----------
    visibilities:
        ``(G, T, C, 4)`` stacked visibility blocks.
    uvw_m:
        ``(G, T, 3)`` stacked uvw in metres.
    scale0:
        ``(G,)`` first-channel ``f/c`` per item (items of one shape bucket
        may cover different channel windows).
    ds:
        Shared channel step of the ``f/c`` ladder (0 for one channel).
    offsets:
        ``(G, 3)`` per-item subgrid offsets ``u_mid, v_mid, w_offset`` in
        wavelengths.
    lmn, taper, aterm_p, aterm_q:
        As in :func:`gridder_subgrid_fast`, with the A-term fields stacked
        per item.
    arena:
        Scratch arena (defaults to the calling thread's).

    Returns
    -------
    ``(G, N, N, 2, 2)`` complex128 image-domain subgrids.  The array is a
    view into the arena — copy it out (the work-group drivers assign it
    into their output array) before the next batched call on this thread.
    """
    g_total, t_total, c_total = visibilities.shape[:3]
    n_pixels2 = lmn.shape[0]
    n = int(np.sqrt(n_pixels2))
    if arena is None:
        arena = thread_arena()

    base = _phase_tensor(lmn, uvw_m, arena, "bucket.base")
    offset_phase = _offset_phase_matrix(lmn, offsets, arena, "bucket.offset_phase")
    phase = arena.take("bucket.phase", (g_total, n_pixels2, t_total), np.float64)
    phasor = arena.take("bucket.phasor", (g_total, n_pixels2, t_total), ACCUM_DTYPE)
    np.multiply(base, scale0[:, np.newaxis, np.newaxis], out=phase)
    phase -= offset_phase[:, :, np.newaxis]
    _sincos_into(phase, phasor)
    if c_total > 1:
        step = arena.take("bucket.step", (g_total, n_pixels2, t_total), ACCUM_DTYPE)
        np.multiply(base, ds, out=phase)
        _sincos_into(phase, step)

    acc = arena.take("gridder.acc", (g_total, n_pixels2, 4), ACCUM_DTYPE)
    prod = arena.take("gridder.prod", (g_total, n_pixels2, 4), ACCUM_DTYPE)
    np.matmul(phasor, visibilities[:, :, 0], out=acc)
    for c in range(1, c_total):
        np.multiply(phasor, step, out=phasor)
        if c % PHASOR_RENORM_INTERVAL == 0:
            # same magnitude-drift guard as the per-item fast path; the
            # phase buffer doubles as the magnitude scratch here
            np.abs(phasor, out=phase)
            phasor /= phase
        np.matmul(phasor, visibilities[:, :, c], out=prod)
        acc += prod

    subgrids = acc.reshape(g_total, n, n, 2, 2)
    if aterm_p is not None or aterm_q is not None:
        subgrids = apply_adjoint_sandwich(aterm_p, subgrids, aterm_q)
    subgrids *= taper[np.newaxis, :, :, np.newaxis, np.newaxis]
    return subgrids


@shape_checked(
    visibilities="(G, M, 4)",
    uvw_rel_wl="(G, M, 3)",
    lmn="(N**2, 3)",
    taper="(N, N)",
    aterm_p="(G, N, N, 2, 2)",
    aterm_q="(G, N, N, 2, 2)",
    returns="(G, N, N, 2, 2)",
)
def gridder_bucket(
    visibilities: np.ndarray,
    uvw_rel_wl: np.ndarray,
    lmn: np.ndarray,
    taper: np.ndarray,
    aterm_p: np.ndarray | None = None,
    aterm_q: np.ndarray | None = None,
    arena: ScratchArena | None = None,
) -> np.ndarray:
    """Algorithm 1 as a direct sum, over a whole bucket.

    The batched form of :func:`gridder_subgrid`: one broadcast matmul for
    the stacked ``(G, N**2, M)`` phase, one batched sine/cosine evaluation,
    and one stacked ``(G, N**2, M) @ (G, M, 4)`` matrix product.  Used when
    the channel recurrence is disabled or inapplicable (unevenly spaced
    channels).

    Parameters
    ----------
    visibilities:
        ``(G, M, 4)`` stacked flattened visibility blocks.
    uvw_rel_wl:
        ``(G, M, 3)`` stacked relative uvw in wavelengths.
    lmn, taper, aterm_p, aterm_q:
        As in :func:`gridder_bucket_fast`.
    arena:
        Scratch arena (defaults to the calling thread's).

    Returns
    -------
    ``(G, N, N, 2, 2)`` complex128 subgrids (an arena view — see
    :func:`gridder_bucket_fast`).
    """
    g_total, m_total = visibilities.shape[:2]
    n_pixels2 = lmn.shape[0]
    n = int(np.sqrt(n_pixels2))
    if arena is None:
        arena = thread_arena()

    phase = arena.take("bucket.phase", (g_total, n_pixels2, m_total), np.float64)
    np.matmul(lmn, np.swapaxes(uvw_rel_wl, 1, 2), out=phase)
    phase *= 2.0 * np.pi
    phasor = arena.take("bucket.phasor", (g_total, n_pixels2, m_total), ACCUM_DTYPE)
    _sincos_into(phase, phasor)

    acc = arena.take("gridder.acc", (g_total, n_pixels2, 4), ACCUM_DTYPE)
    np.matmul(phasor, visibilities, out=acc)

    subgrids = acc.reshape(g_total, n, n, 2, 2)
    if aterm_p is not None or aterm_q is not None:
        subgrids = apply_adjoint_sandwich(aterm_p, subgrids, aterm_q)
    subgrids *= taper[np.newaxis, :, :, np.newaxis, np.newaxis]
    return subgrids


def grid_work_group(
    plan: Plan,
    start: int,
    stop: int,
    uvw_m: np.ndarray,
    visibilities: np.ndarray,
    taper: np.ndarray,
    lmn: np.ndarray | None = None,
    aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
    vis_batch: int = DEFAULT_VIS_BATCH,
    channel_recurrence: bool = False,
) -> np.ndarray:
    """Run the gridder kernel over work items ``start .. stop-1``.

    Parameters
    ----------
    plan:
        The execution plan.
    uvw_m:
        ``(n_baselines, n_times, 3)`` uvw in metres (full observation).
    visibilities:
        ``(n_baselines, n_times, n_channels, 2, 2)`` complex visibilities.
    taper:
        ``(N, N)`` taper.
    lmn:
        Optional precomputed :func:`subgrid_lmn` (computed if omitted).
    aterm_fields:
        Maps ``(station, interval)`` to an ``(N, N, 2, 2)`` Jones field;
        ``None`` or missing keys mean identity.
    channel_recurrence:
        Use :func:`gridder_subgrid_fast` (valid for evenly spaced channel
        frequencies, which every subband in this package has).

    Returns
    -------
    ``(stop - start, N, N, 2, 2)`` image-domain subgrids.
    """
    n = plan.subgrid_size
    if lmn is None:
        lmn = subgrid_lmn(n, plan.gridspec.image_size)
    out = np.empty((stop - start, n, n, 2, 2), dtype=COMPLEX_DTYPE)
    for k, index in enumerate(range(start, stop)):
        item = plan.work_item(index)
        u_mid, v_mid = plan.subgrid_centre_uv(index)
        freqs = plan.frequencies_hz[item.channel_start : item.channel_end]
        uvw_block = uvw_m[item.baseline, item.time_start : item.time_end]
        a_p = a_q = None
        if aterm_fields is not None:
            a_p = aterm_fields.get((item.station_p, item.aterm_interval))
            a_q = aterm_fields.get((item.station_q, item.aterm_interval))
        if channel_recurrence:
            vis_block = visibilities[
                item.baseline,
                item.time_start : item.time_end,
                item.channel_start : item.channel_end,
            ]
            out[k] = gridder_subgrid_fast(
                vis_block, uvw_block, freqs / SPEED_OF_LIGHT,
                np.array([u_mid, v_mid, plan.w_offset]), lmn, taper,
                aterm_p=a_p, aterm_q=a_q,
            )
        else:
            vis_flat = visibilities[
                item.baseline,
                item.time_start : item.time_end,
                item.channel_start : item.channel_end,
            ].reshape(-1, 2, 2)
            rel = relative_uvw_wavelengths(
                uvw_block, freqs, u_mid, v_mid, plan.w_offset
            )
            out[k] = gridder_subgrid(
                vis_flat, rel, lmn, taper, aterm_p=a_p, aterm_q=a_q,
                vis_batch=vis_batch,
            )
    return out
