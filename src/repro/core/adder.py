"""Adder and splitter (paper Fig 4, step 3, and Section V-B-d / V-C-e).

The adder accumulates Fourier-domain subgrids into the master grid at their
integer corner positions; because subgrids overlap, concurrent adds to the
same pixels must be serialised (the paper parallelises over grid *rows* on
the CPU and uses atomics on the GPU — :mod:`repro.parallel.partition`
implements the row strategy).  The splitter is the read-only reverse used in
degridding, trivially parallel over subgrids.

Grid layout: ``(4, grid_size, grid_size)`` with polarisation order
XX, XY, YX, YY; the first pixel axis is v (rows), the second u (columns).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.contracts import shape_checked
from repro.core.plan import Plan


def _pol_major(subgrids: np.ndarray) -> np.ndarray:
    """View ``(k, N, N, 2, 2)`` subgrids as ``(k, 4, N, N)`` (pol-major)."""
    k, n = subgrids.shape[0], subgrids.shape[1]
    return subgrids.reshape(k, n, n, 4).transpose(0, 3, 1, 2)


def _pol_minor(subgrids_pol: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_pol_major`: ``(k, 4, N, N)`` -> ``(k, N, N, 2, 2)``."""
    k, _, n, _ = subgrids_pol.shape
    return subgrids_pol.transpose(0, 2, 3, 1).reshape(k, n, n, 2, 2)


@shape_checked(grid="(4, G, G)", subgrids_fourier="(k, N, N, 2, 2)")
def add_subgrids(
    grid: np.ndarray,
    plan: Plan,
    subgrids_fourier: np.ndarray,
    start: int = 0,
) -> None:
    """Accumulate Fourier-domain subgrids into the master grid, in place.

    Parameters
    ----------
    grid:
        ``(4, G, G)`` master grid, modified in place.
    plan:
        The execution plan (supplies each subgrid's corner).
    subgrids_fourier:
        ``(k, N, N, 2, 2)`` uv-domain subgrids for work items
        ``start .. start+k-1``.
    start:
        Index of the first work item in the batch.
    """
    n = plan.subgrid_size
    if grid.shape != (4, plan.gridspec.grid_size, plan.gridspec.grid_size):
        raise ValueError(f"grid shape {grid.shape} does not match plan")
    pol = _pol_major(subgrids_fourier)
    for k in range(subgrids_fourier.shape[0]):
        row = plan.items[start + k]
        cu, cv = int(row["corner_u"]), int(row["corner_v"])
        grid[:, cv : cv + n, cu : cu + n] += pol[k]


def add_grid(master: np.ndarray, partial: np.ndarray) -> None:
    """Accumulate one shard's partial grid into the master grid, in place.

    The shard-local adder entry of the process-sharded executor: each worker
    process folds its work groups into a private ``(4, G, G)`` partial grid
    with :func:`add_subgrids`, and the parent combines the shard grids with
    this (or :func:`tree_reduce_grids`).  Note the combination *reassociates*
    the floating-point sums relative to the serial plan-order fold — see
    DESIGN.md §14 for when that is acceptable.
    """
    if master.shape != partial.shape:
        raise ValueError(
            f"partial grid shape {partial.shape} != master {master.shape}"
        )
    master += partial


def tree_reduce_grids(grids: list[np.ndarray]) -> np.ndarray:
    """Pairwise tree reduction of shard grids in pinned shard-index order.

    Level ``k`` combines neighbours ``(0, 1), (2, 3), ...`` of level
    ``k - 1``; an odd trailing grid is carried up unchanged.  The pairing is
    a pure function of the shard count, so the reduction is deterministic
    run-to-run — but it reassociates floating-point addition relative to the
    serial fold-left, so the result is *not* bit-identical to
    :func:`add_subgrids` applied in plan order (the exact-mode reduction of
    the process executor is; DESIGN.md §14).  The first grid is consumed as
    the accumulator root and must be writable.
    """
    if not grids:
        raise ValueError("tree_reduce_grids needs at least one grid")
    shape = grids[0].shape
    for grid in grids[1:]:
        if grid.shape != shape:
            raise ValueError("all shard grids must share one shape")
    level = list(grids)
    while len(level) > 1:
        merged = []
        for k in range(0, len(level) - 1, 2):
            level[k] += level[k + 1]
            merged.append(level[k])
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
    return level[0]


@shape_checked(grid="(4, G, G)", returns="(k, N, N, 2, 2)")
def split_subgrids(
    grid: np.ndarray,
    plan: Plan,
    start: int,
    stop: int,
) -> np.ndarray:
    """Extract the ``(stop-start, N, N, 2, 2)`` uv-domain subgrids for a
    work-item range (read-only on the grid; safe to run concurrently)."""
    n = plan.subgrid_size
    if grid.shape != (4, plan.gridspec.grid_size, plan.gridspec.grid_size):
        raise ValueError(f"grid shape {grid.shape} does not match plan")
    out_pol = np.empty((stop - start, 4, n, n), dtype=grid.dtype)
    for k, index in enumerate(range(start, stop)):
        row = plan.items[index]
        cu, cv = int(row["corner_u"]), int(row["corner_v"])
        out_pol[k] = grid[:, cv : cv + n, cu : cu + n]
    return _pol_minor(out_pol)
