"""Public IDG facade: plan, grid, degrid (paper Fig 4).

:class:`IDG` wires the kernels together in the paper's order:

* ``grid``   = gridder -> subgrid FFTs -> adder,
* ``degrid`` = splitter -> inverse subgrid FFTs -> degridder,

processing the plan's work items in *work groups* (Fig 6) — the unit the
parallel executor and the GPU stream scheduler of the performance model also
operate on.

Typical use::

    idg = IDG(gridspec)
    plan = idg.make_plan(obs.uvw_m, obs.frequencies_hz, obs.array.baselines())
    grid = idg.grid(plan, obs.uvw_m, visibilities)
    ...
    predicted = idg.degrid(plan, obs.uvw_m, model_grid)

Image <-> grid conversions (dirty image, model prediction, taper grid
correction) live in :mod:`repro.imaging.image`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.aterms.generators import ATermGenerator
from repro.aterms.schedule import ATermSchedule
from repro.constants import COMPLEX_DTYPE
from repro.core.gridder import subgrid_lmn
from repro.core.plan import Plan
from repro.data.store import ChunkedVisibilitySource
from repro.gridspec import GridSpec
from repro.kernels.spheroidal import taper_for


def mask_flagged(
    visibilities: np.ndarray, flags: np.ndarray | None
) -> np.ndarray:
    """Zero flagged samples (RFI etc.) before gridding.

    ``flags`` is an optional ``(n_baselines, n_times, n_channels)`` boolean
    mask; flagged samples are gridded as zeros — remember to subtract their
    count from the image's ``weight_sum``.  Returns ``visibilities``
    unchanged when ``flags`` is ``None``.
    """
    if flags is None:
        return visibilities
    flags = np.asarray(flags, dtype=bool)
    if flags.shape != visibilities.shape[:3]:
        raise ValueError(
            f"flags shape {flags.shape} != {visibilities.shape[:3]}"
        )
    return np.where(flags[..., np.newaxis, np.newaxis], 0, visibilities)


def prepare_visibilities(
    visibilities, flags: np.ndarray | None
) -> np.ndarray | ChunkedVisibilitySource:
    """Apply ``flags`` without materialising out-of-core inputs.

    In-memory arrays go through :func:`mask_flagged` (an O(dataset) masked
    copy, as before).  A :class:`~repro.data.store.ChunkedVisibilitySource`
    instead absorbs the flags into its per-block lazy mask
    (:meth:`~repro.data.store.ChunkedVisibilitySource.with_flags`) — the
    kernels then read masked blocks straight off the memory map, so peak
    memory stays bounded by the work groups in flight, and each block is
    bit-identical to the eager path's slice.
    """
    if isinstance(visibilities, ChunkedVisibilitySource):
        return visibilities.with_flags(flags)
    return mask_flagged(visibilities, flags)


@dataclass(frozen=True)
class IDGConfig:
    """Tunable parameters of the IDG pipeline.

    Attributes
    ----------
    subgrid_size:
        Subgrid pixels per axis (paper benchmark: 24; up to 64 with
        W-stacking).
    kernel_support:
        uv-cell footprint reserved around each visibility in the plan
        (Fig 5).
    time_max:
        T̃_max — maximum timesteps per subgrid.
    taper:
        ``"spheroidal"`` (paper) or ``"kaiser-bessel"``.
    taper_beta:
        Kaiser-Bessel shape parameter (ignored for the spheroidal).
    vis_batch:
        Visibilities per kernel batch (the paper's T_B x C_B batching).
    work_group_size:
        Work items per work group.
    channel_recurrence:
        Evaluate phasors with the channel recurrence (one sincos pair per
        pixel-timestep plus complex multiplies per channel, valid for the
        evenly spaced channels every subband here has) instead of one
        sincos per pixel-visibility.  ~n_channels fewer transcendental
        evaluations; bit-equivalent to well within single precision.
    batched:
        Execute each work group through the shape-bucketed batch-of-subgrids
        drivers (:mod:`repro.parallel.bucketing`): work items of identical
        block shape are gathered into stacked tensors and evaluated with a
        handful of large batched array operations on reusable scratch-arena
        buffers, instead of one small gemm and several allocations per item.
        Advisory — only the ``vectorized`` backend implements it; others
        keep their per-item loop.  Results agree with the per-item path
        within the differential-corpus tolerance (rtol 1e-5).
    backend:
        Named kernel backend dispatching the gridder/degridder/subgrid-FFT/
        adder entry points (``"reference"``, ``"vectorized"``, ``"jit"``,
        or any name registered with
        :func:`repro.backends.register_backend`).  ``None`` (default)
        consults the ``IDG_BACKEND`` environment variable, then falls back
        to ``"vectorized"``.
    max_retries:
        Fault tolerance (DESIGN.md §11): retry attempts per work-group
        stage call before the group is quarantined to a dead letter.  The
        default 0 keeps the legacy fail-fast behaviour (first exception
        propagates) with zero overhead.
    retry_backoff_s:
        Backoff before the first retry; subsequent retries back off
        exponentially (see :class:`repro.runtime.recovery.RetryPolicy`).
    """

    subgrid_size: int = 24
    kernel_support: int = 8
    time_max: int = 128
    taper: str = "spheroidal"
    taper_beta: float = 9.0
    vis_batch: int = 1024
    work_group_size: int = 256
    channel_recurrence: bool = True
    batched: bool = True
    backend: str | None = None
    max_retries: int = 0
    retry_backoff_s: float = 0.05

    def __post_init__(self) -> None:
        if self.subgrid_size <= 0 or self.subgrid_size % 2:
            raise ValueError("subgrid_size must be positive and even")
        if not (0 <= self.kernel_support < self.subgrid_size):
            raise ValueError("kernel_support must be in [0, subgrid_size)")
        if self.time_max <= 0 or self.vis_batch <= 0 or self.work_group_size <= 0:
            raise ValueError("time_max, vis_batch, work_group_size must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be non-negative")


class IDG:
    """Image-Domain Gridding on a fixed master-grid geometry."""

    def __init__(self, gridspec: GridSpec, config: IDGConfig | None = None):
        from repro.backends import resolve_backend

        self.gridspec = gridspec
        self.config = config or IDGConfig()
        n = self.config.subgrid_size
        #: (N, N) anti-aliasing taper applied to every subgrid.
        self.taper = taper_for(n, self.config.taper, beta=self.config.taper_beta)
        #: (N**2, 3) pixel direction matrix shared by all work items.
        self.lmn = subgrid_lmn(n, gridspec.image_size)
        #: The kernel backend every executor dispatches through.
        self.backend = resolve_backend(self.config.backend)
        #: Fault report of the most recent tolerant grid/degrid call
        #: (``None`` when the fault-tolerance layer was inactive).
        self.last_fault_report = None

    # ------------------------------------------------------------- planning

    def make_plan(
        self,
        uvw_m: np.ndarray,
        frequencies_hz: np.ndarray,
        baselines: np.ndarray,
        aterm_schedule: ATermSchedule | None = None,
        w_offset: float = 0.0,
    ) -> Plan:
        """Build the execution plan for a visibility set (Section V-A)."""
        return Plan.create(
            uvw_m=uvw_m,
            frequencies_hz=frequencies_hz,
            baselines=baselines,
            gridspec=self.gridspec,
            subgrid_size=self.config.subgrid_size,
            kernel_support=self.config.kernel_support,
            time_max=self.config.time_max,
            aterm_schedule=aterm_schedule,
            w_offset=w_offset,
        )

    def aterm_fields(
        self, plan: Plan, aterms: ATermGenerator | None
    ) -> dict[tuple[int, int], np.ndarray] | None:
        """Evaluate the Jones field of every (station, interval) the plan uses.

        Returns ``None`` for identity A-terms so the kernels take their fast
        path.  Fields are evaluated on the subgrid raster once and shared by
        all work items (this is why IDG's A-term cost is negligible —
        Section VI-E).
        """
        if aterms is None or aterms.is_identity:
            return None
        keys: set[tuple[int, int]] = set()
        for row in plan.items:
            interval = int(row["aterm_interval"])
            keys.add((int(row["station_p"]), interval))
            keys.add((int(row["station_q"]), interval))
        n = plan.subgrid_size
        return {
            (station, interval): aterms.evaluate_raster(
                station, interval, n, self.gridspec.image_size
            )
            for station, interval in sorted(keys)
        }

    def _work_group_runner(self, faults=None):
        """A :class:`~repro.runtime.recovery.WorkGroupRunner` when fault
        tolerance is active (``max_retries > 0`` or a fault plan is
        installed), else ``None`` — the legacy fail-fast loop runs
        unchanged.  Imported lazily: :mod:`repro.runtime` imports this
        module at class-definition time."""
        if self.config.max_retries <= 0 and faults is None:
            return None
        from repro.runtime.recovery import RetryPolicy, WorkGroupRunner

        policy = RetryPolicy(
            max_retries=self.config.max_retries,
            backoff_s=self.config.retry_backoff_s,
        )
        return WorkGroupRunner(policy, faults=faults)

    # ------------------------------------------------------------- gridding

    def grid(
        self,
        plan: Plan,
        uvw_m: np.ndarray,
        visibilities: np.ndarray,
        aterms: ATermGenerator | None = None,
        grid: np.ndarray | None = None,
        flags: np.ndarray | None = None,
        faults=None,
        aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
    ) -> np.ndarray:
        """Grid a visibility set onto the master grid.

        Parameters
        ----------
        plan:
            Execution plan built by :meth:`make_plan` for this uvw set.
        uvw_m:
            ``(n_baselines, n_times, 3)`` uvw in metres.
        visibilities:
            ``(n_baselines, n_times, n_channels, 2, 2)`` complex — an
            in-memory array or a
            :class:`~repro.data.store.ChunkedVisibilitySource` streaming
            blocks from an on-disk store with bounded resident memory.
        aterms:
            Optional direction-dependent effects (must match the generator
            used when simulating/calibrating the data).
        grid:
            Optional existing ``(4, G, G)`` grid to accumulate into.
        flags:
            Optional ``(n_baselines, n_times, n_channels)`` data flags
            (RFI etc.); flagged samples are gridded as zeros — remember to
            subtract their count from the image's ``weight_sum``.
        faults:
            Optional :class:`~repro.runtime.faults.FaultPlan` for
            deterministic fault injection (tests, benchmarks).
        aterm_fields:
            Pre-evaluated Jones fields (the :meth:`aterm_fields` mapping),
            overriding evaluation from ``aterms``.  The serving layer passes
            cached fields here so coalesced jobs share one evaluation.

        Returns
        -------
        The ``(4, G, G)`` master grid.  With fault tolerance active
        (``config.max_retries > 0`` or ``faults``), quarantined work groups
        are excluded from it and reported on ``last_fault_report`` instead
        of raising.
        """
        self._check_shapes(plan, uvw_m, visibilities)
        visibilities = prepare_visibilities(visibilities, flags)
        source = (
            visibilities
            if isinstance(visibilities, ChunkedVisibilitySource) else None
        )
        if grid is None:
            grid = self.gridspec.allocate_grid(dtype=COMPLEX_DTYPE)
        fields = (
            aterm_fields
            if aterm_fields is not None
            else self.aterm_fields(plan, aterms)
        )
        backend = self.backend
        runner = self._work_group_runner(faults)
        self.last_fault_report = runner.report if runner is not None else None
        groups = list(plan.work_groups(self.config.work_group_size))
        if runner is not None:
            runner.report.n_groups = len(groups)
        for group, (start, stop) in enumerate(groups):
            if runner is None:
                subgrids = backend.grid_work_group(
                    plan, start, stop, uvw_m, visibilities, self.taper,
                    lmn=self.lmn, aterm_fields=fields, vis_batch=self.config.vis_batch,
                    channel_recurrence=self.config.channel_recurrence,
                    batched=self.config.batched,
                )
                backend.add_subgrids(
                    grid, plan, backend.subgrids_to_fourier(subgrids), start=start
                )
                if source is not None:
                    source.drop_caches()
                continue
            from repro.runtime.recovery import Quarantined, group_visibility_count

            n_vis = group_visibility_count(plan, start, stop)

            def grid_body(start: int = start, stop: int = stop) -> np.ndarray:
                return backend.grid_work_group(
                    plan, start, stop, uvw_m, visibilities, self.taper,
                    lmn=self.lmn, aterm_fields=fields, vis_batch=self.config.vis_batch,
                    channel_recurrence=self.config.channel_recurrence,
                    batched=self.config.batched,
                )

            subgrids = runner.run(
                "gridder", group, grid_body,
                start=start, stop=stop, n_visibilities=n_vis,
            )
            if isinstance(subgrids, Quarantined):
                continue
            fourier = runner.run(
                "subgrid_fft", group,
                lambda subgrids=subgrids: backend.subgrids_to_fourier(subgrids),
                start=start, stop=stop, n_visibilities=n_vis,
            )
            if isinstance(fourier, Quarantined):
                continue
            result = runner.run(
                "adder", group,
                lambda start=start, fourier=fourier: backend.add_subgrids(
                    grid, plan, fourier, start=start
                ),
                start=start, stop=stop, n_visibilities=n_vis,
            )
            if not isinstance(result, Quarantined):
                runner.report.n_groups_completed += 1
            if source is not None:
                source.drop_caches()
        return grid

    # ----------------------------------------------------------- degridding

    def degrid(
        self,
        plan: Plan,
        uvw_m: np.ndarray,
        grid: np.ndarray,
        aterms: ATermGenerator | None = None,
        faults=None,
        aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Predict visibilities from a model grid (degridding).

        Returns a ``(n_baselines, n_times, n_channels, 2, 2)`` array; entries
        the plan flagged (unplaceable) are zero.  With fault tolerance
        active, a quarantined work group leaves its visibility block zero
        (the same convention) and is reported on ``last_fault_report``.
        ``aterm_fields`` overrides evaluation from ``aterms`` as in
        :meth:`grid`.  ``out``, when given, receives the prediction in place
        (it must be zero-initialised — e.g. a fresh
        :class:`~repro.data.store.DatasetWriter` visibility map, which lets
        predictions stream to disk instead of RAM) and is returned.
        """
        n_bl, n_times, _ = uvw_m.shape
        expected = (n_bl, n_times, plan.n_channels, 2, 2)
        if out is None:
            out = np.zeros(expected, dtype=COMPLEX_DTYPE)
        elif out.shape != expected:
            raise ValueError(f"out shape {out.shape} != {expected}")
        fields = (
            aterm_fields
            if aterm_fields is not None
            else self.aterm_fields(plan, aterms)
        )
        backend = self.backend
        runner = self._work_group_runner(faults)
        self.last_fault_report = runner.report if runner is not None else None
        groups = list(plan.work_groups(self.config.work_group_size))
        if runner is not None:
            runner.report.n_groups = len(groups)
        for group, (start, stop) in enumerate(groups):
            def degrid_body(start: int = start, stop: int = stop) -> None:
                patches = backend.split_subgrids(grid, plan, start, stop)
                backend.degrid_work_group(
                    plan, start, stop, backend.subgrids_to_image(patches),
                    uvw_m, out, self.taper,
                    lmn=self.lmn, aterm_fields=fields,
                    vis_batch=self.config.vis_batch,
                    channel_recurrence=self.config.channel_recurrence,
                    batched=self.config.batched,
                )

            if runner is None:
                degrid_body()
                continue
            from repro.runtime.recovery import Quarantined, group_visibility_count

            result = runner.run(
                "degridder", group, degrid_body, start=start, stop=stop,
                n_visibilities=group_visibility_count(plan, start, stop),
            )
            if not isinstance(result, Quarantined):
                runner.report.n_groups_completed += 1
        return out

    # ------------------------------------------------------------- utility

    def with_config(self, **kwargs) -> "IDG":
        """A copy of this IDG with some configuration fields replaced."""
        return IDG(self.gridspec, replace(self.config, **kwargs))

    def _check_shapes(self, plan: Plan, uvw_m: np.ndarray, visibilities: np.ndarray) -> None:
        n_bl, n_times, three = uvw_m.shape
        if three != 3:
            raise ValueError("uvw_m must have a trailing axis of 3")
        expected = (n_bl, n_times, plan.n_channels, 2, 2)
        if visibilities.shape != expected:
            raise ValueError(
                f"visibilities shape {visibilities.shape} does not match {expected}"
            )
        if plan.flagged.shape != (n_bl, n_times, plan.n_channels):
            raise ValueError("plan was built for a different observation shape")
