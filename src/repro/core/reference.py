"""Literal, loop-level transcriptions of the paper's Algorithms 1 and 2.

These run orders of magnitude slower than the vectorised kernels and exist
purely as oracles: tests compare :mod:`repro.core.gridder` /
:mod:`repro.core.degridder` against them on small work items, pinning the
vectorised code to the published pseudocode line by line.

The loop structure mirrors the pseudocode exactly: the gridder iterates
pixels (y, x) outermost then visibilities (t, c), evaluating one sine/cosine
pair per (pixel, visibility) followed by the 4-polarisation multiply-add; the
degridder iterates visibilities outermost then pixels.
"""

from __future__ import annotations

import math

import numpy as np

from repro.aterms.jones import apply_adjoint_sandwich, apply_sandwich, identity_jones_field
from repro.constants import ACCUM_DTYPE
from repro.kernels.fft import image_coordinates


def reference_gridder(
    visibilities: np.ndarray,
    uvw_rel_wl: np.ndarray,
    subgrid_size: int,
    image_size: float,
    taper: np.ndarray,
    aterm_p: np.ndarray | None = None,
    aterm_q: np.ndarray | None = None,
) -> np.ndarray:
    """Algorithm 1, executed with explicit Python loops.

    Arguments match :func:`repro.core.gridder.gridder_subgrid` except that the
    subgrid geometry is given by ``(subgrid_size, image_size)`` instead of a
    precomputed lmn matrix.
    """
    coords = image_coordinates(subgrid_size, image_size)
    m_total = uvw_rel_wl.shape[0]
    vis = np.asarray(visibilities).reshape(m_total, 2, 2)
    subgrid = np.zeros((subgrid_size, subgrid_size, 2, 2), dtype=ACCUM_DTYPE)

    for y in range(subgrid_size):
        for x in range(subgrid_size):
            l = coords[x]
            m = coords[y]
            n = 1.0 - math.sqrt(max(0.0, 1.0 - l * l - m * m))
            pixel = np.zeros((2, 2), dtype=ACCUM_DTYPE)  # idglint: disable=IDG003  (oracle: mirrors pseudocode)
            for k in range(m_total):
                u, v, w = uvw_rel_wl[k]
                # Line 7 of Algorithm 1: alpha = f(x, y) . g(u, v, w)
                alpha = 2.0 * math.pi * (u * l + v * m + w * n)
                phi = complex(math.cos(alpha), math.sin(alpha))
                # Lines 9-13: the 4-polarisation multiply-add
                for p in range(2):
                    for q in range(2):
                        pixel[p, q] += phi * vis[k, p, q]
            subgrid[y, x] = pixel

    # apply_aterm(S); apply_spheroidal(S)  (adjoint direction)
    if aterm_p is not None or aterm_q is not None:
        identity = identity_jones_field(subgrid_size)
        a_p = aterm_p if aterm_p is not None else identity
        a_q = aterm_q if aterm_q is not None else identity
        subgrid = apply_adjoint_sandwich(a_p, subgrid, a_q)
    subgrid = subgrid * taper[:, :, np.newaxis, np.newaxis]
    return subgrid


def reference_degridder(
    subgrid_image: np.ndarray,
    uvw_rel_wl: np.ndarray,
    image_size: float,
    taper: np.ndarray,
    aterm_p: np.ndarray | None = None,
    aterm_q: np.ndarray | None = None,
) -> np.ndarray:
    """Algorithm 2, executed with explicit Python loops."""
    subgrid_size = subgrid_image.shape[0]
    coords = image_coordinates(subgrid_size, image_size)

    corrected = subgrid_image.astype(ACCUM_DTYPE)
    # apply_spheroidal(S); apply_aterm(S)  (forward direction)
    if aterm_p is not None or aterm_q is not None:
        identity = identity_jones_field(subgrid_size)
        a_p = aterm_p if aterm_p is not None else identity
        a_q = aterm_q if aterm_q is not None else identity
        corrected = apply_sandwich(a_p, corrected, a_q)
    corrected = corrected * taper[:, :, np.newaxis, np.newaxis]

    m_total = uvw_rel_wl.shape[0]
    out = np.zeros((m_total, 2, 2), dtype=ACCUM_DTYPE)
    for k in range(m_total):
        u, v, w = uvw_rel_wl[k]
        acc = np.zeros((2, 2), dtype=ACCUM_DTYPE)  # idglint: disable=IDG003  (oracle: mirrors pseudocode)
        for y in range(subgrid_size):
            for x in range(subgrid_size):
                l = coords[x]
                m = coords[y]
                n = 1.0 - math.sqrt(max(0.0, 1.0 - l * l - m * m))
                # Line 8 of Algorithm 2 (note the negated phase)
                alpha = -2.0 * math.pi * (u * l + v * m + w * n)
                phi = complex(math.cos(alpha), math.sin(alpha))
                for p in range(2):
                    for q in range(2):
                        acc[p, q] += phi * corrected[y, x, p, q]
        out[k] = acc
    return out
