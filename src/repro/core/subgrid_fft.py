"""Batched subgrid FFTs (paper Fig 4, step 2).

After gridding, every image-domain subgrid is Fourier-transformed (four
``N x N`` FFTs per subgrid, one per polarisation product) before the adder
places it on the master grid; degridding applies the reverse transform after
the splitter.  The paper offloads this embarrassingly parallel step to
MKL/cuFFT/clFFT; here a single batched ``numpy.fft`` call over the stacked
``(n_subgrids, N, N, 2, 2)`` array plays that role.

Normalisation.  Both directions carry a ``1/N**2``:

* ``subgrids_to_fourier = centered_fft2 / N**2`` — an on-cell visibility of
  amplitude V then lands on the master grid as exactly V, so the master
  image ``IFFT(grid) * G**2`` sums visibilities with unit weight;
* ``subgrids_to_image = centered_ifft2`` (which contains ``1/N**2``) — a
  model image FFT'd onto the master grid then degrids to exactly its DFT for
  aligned sources.

With this choice the two transforms are *adjoints* of each other (not
inverses: composing them yields ``1/N**2``), which makes the full degridding
pipeline the exact adjoint of the full gridding pipeline — the property the
property-based tests assert.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.contracts import shape_checked
from repro.kernels.fft import centered_fft2, centered_ifft2


@shape_checked(subgrid_images="(..., N, N, 2, 2)", returns="(..., N, N, 2, 2)")
def subgrids_to_fourier(subgrid_images: np.ndarray) -> np.ndarray:
    """Forward transform: image-domain subgrids -> uv-domain subgrids.

    ``subgrid_images`` has shape ``(..., N, N, 2, 2)``; the FFT acts on the
    two pixel axes and is scaled by ``1/N**2`` (see module docstring).
    """
    n = subgrid_images.shape[-3]
    # Move pol axes ahead of the pixel axes so axes=(-2, -1) are pixels.
    moved = np.moveaxis(subgrid_images, (-2, -1), (0, 1))
    transformed = centered_fft2(moved, axes=(-2, -1)) / (n * n)
    return np.moveaxis(transformed, (0, 1), (-2, -1)).astype(subgrid_images.dtype)


@shape_checked(subgrid_fourier="(..., N, N, 2, 2)", returns="(..., N, N, 2, 2)")
def subgrids_to_image(subgrid_fourier: np.ndarray) -> np.ndarray:
    """Reverse transform: uv-domain subgrids -> image-domain subgrids.

    The centered inverse FFT (its built-in ``1/N**2`` included), i.e. the
    adjoint of :func:`subgrids_to_fourier`.
    """
    moved = np.moveaxis(subgrid_fourier, (-2, -1), (0, 1))
    transformed = centered_ifft2(moved, axes=(-2, -1))
    return np.moveaxis(transformed, (0, 1), (-2, -1)).astype(subgrid_fourier.dtype)
