"""Command-line interface: ``python -m repro <command>``.

The commands cover the full simulate → flag → calibrate → image →
deconvolve → predict loop plus the performance model, all operating on
``.npz`` artefacts:

* ``simulate``  — synthesise a dataset (layout, uvw, sky, optional noise);
* ``info``      — summarise a dataset;
* ``image``     — dirty image (IDG gridding + FFT + grid correction);
* ``clean``     — CLEAN major cycle; writes model + residual images;
* ``predict``   — degrid a model image back to visibilities;
* ``flag``      — sigma-clip RFI flagging;
* ``calibrate`` — StEFCal gain calibration against a point-source model;
* ``selfcal``   — self-calibration major cycles (CLEAN + StEFCal closed
  loop, gain solutions applied as A-terms in the gridder);
* ``perfmodel`` — print the hardware-model predictions for a dataset's plan;
* ``report``    — render the paper's full Section VI evaluation for a
  dataset (all figures, formatted text).

Out-of-core datasets: every command that reads a dataset accepts either a
``.npz`` archive or a schema-v2 chunked store directory
(:mod:`repro.data.store`) — the format is auto-detected.  ``makedata``
synthesises arbitrarily large datasets chunk-at-a-time with bounded memory,
and ``convert-dataset`` converts between the two formats.
"""

from __future__ import annotations

import argparse
import sys
from typing import Final

import numpy as np


def _add_executor_args(parser: argparse.ArgumentParser) -> None:
    """Executor selection shared by the gridding/degridding commands."""
    parser.add_argument(
        "--executor", choices=["serial", "threads", "streaming", "processes"],
        default="serial",
        help="serial IDG, flat thread pool (ParallelIDG), the streaming "
        "stage-graph runtime (StreamingIDG), or shared-memory worker "
        "processes (ProcessShardedIDG)",
    )
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="kernel backend (reference, vectorized, jit, or any registered "
        "name); default: the IDG_BACKEND environment variable, then "
        "'vectorized'",
    )
    parser.add_argument(
        "--batched", dest="batched", action="store_true", default=True,
        help="shape-bucketed batched kernel execution (default; vectorized "
        "backend only — others keep their per-item loop)",
    )
    parser.add_argument(
        "--no-batched", dest="batched", action="store_false",
        help="per-work-item kernel execution",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker threads / processes (threads and processes executors; "
        "default: all cores for threads, 2 for processes)",
    )
    parser.add_argument(
        "--n-buffers", type=int, default=3,
        help="streaming executor: work groups in flight "
        "(1 = serial schedule, 3 = triple buffering)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="streaming executor: write a chrome://tracing JSON of the run",
    )
    parser.add_argument(
        "--max-retries", type=int, default=0,
        help="fault tolerance: retries per work-group stage call before the "
        "group is dead-lettered (0 = fail fast, the default)",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.05, metavar="SECONDS",
        help="backoff before the first retry (doubles per retry, capped)",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="streaming/processes executors: snapshot the grid + completed "
        "work groups to this .npz (atomic) while gridding",
    )
    parser.add_argument(
        "--checkpoint-interval", type=int, default=4, metavar="N",
        help="work groups retired between checkpoint snapshots",
    )
    parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help="streaming/processes executors: resume gridding from a "
        "checkpoint written by a previous run over the same dataset/plan "
        "(bit-exact)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Image-Domain Gridding (IDG) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="synthesise a visibility dataset")
    sim.add_argument("output", help="output dataset (.npz)")
    sim.add_argument("--stations", type=int, default=16)
    sim.add_argument("--times", type=int, default=64)
    sim.add_argument("--channels", type=int, default=8)
    sim.add_argument("--integration", type=float, default=120.0,
                     help="integration time per step [s]")
    sim.add_argument("--radius", type=float, default=3000.0,
                     help="array radius [m]")
    sim.add_argument("--sources", type=int, default=4)
    sim.add_argument("--grid-size", type=int, default=512,
                     help="grid used to size the field of view")
    sim.add_argument("--noise-sefd", type=float, default=0.0,
                     help="SEFD [Jy]; 0 disables thermal noise")
    sim.add_argument("--seed", type=int, default=0)

    make = sub.add_parser(
        "makedata",
        help="synthesise a large noise dataset chunk-at-a-time "
        "(bounded memory; for out-of-core benchmarks)",
    )
    make.add_argument("output",
                      help="output store directory (or .npz with --format npz)")
    make.add_argument("--stations", type=int, default=16)
    make.add_argument("--times", type=int, default=1024)
    make.add_argument("--channels", type=int, default=8)
    make.add_argument("--integration", type=float, default=120.0,
                      help="integration time per step [s]")
    make.add_argument("--radius", type=float, default=3000.0,
                      help="array radius [m]")
    make.add_argument("--seed", type=int, default=0)
    make.add_argument("--format", choices=["chunked", "npz"],
                      default="chunked",
                      help="chunked mmap store directory (default) or a "
                      "v1 .npz archive (materialises in memory)")
    make.add_argument("--time-chunk", type=int, default=256,
                      help="timesteps generated and written per slab")

    conv = sub.add_parser(
        "convert-dataset",
        help="convert between .npz (v1) and chunked store (v2) formats; "
        "direction is inferred from the input",
    )
    conv.add_argument("input", help="dataset (.npz or store directory)")
    conv.add_argument("output", help="converted dataset")
    conv.add_argument("--time-chunk", type=int, default=256,
                      help="timesteps copied per slab when writing a store")

    info = sub.add_parser("info", help="summarise a dataset")
    info.add_argument("dataset", help="dataset (.npz or chunked store)")

    img = sub.add_parser("image", help="make a dirty image")
    img.add_argument("dataset", help="dataset (.npz or chunked store)")
    img.add_argument("output", help="output image (.npz)")
    img.add_argument("--grid-size", type=int, default=512)
    img.add_argument("--subgrid-size", type=int, default=24)
    img.add_argument("--weighting", choices=["natural", "uniform"],
                     default="natural")
    _add_executor_args(img)

    clean = sub.add_parser("clean", help="run the CLEAN major cycle")
    clean.add_argument("dataset")
    clean.add_argument("output", help="output images (.npz: model, residual, psf)")
    clean.add_argument("--grid-size", type=int, default=512)
    clean.add_argument("--subgrid-size", type=int, default=24)
    clean.add_argument("--major-cycles", type=int, default=3)
    clean.add_argument("--minor-iterations", type=int, default=200)
    clean.add_argument("--gain", type=float, default=0.1)

    pred = sub.add_parser("predict", help="degrid a model image to visibilities")
    pred.add_argument("dataset",
                      help="dataset supplying uvw/frequencies "
                      "(.npz or chunked store)")
    pred.add_argument("model", help="model image (.npz with 'model' of shape (G, G))")
    pred.add_argument("output", help="output dataset")
    pred.add_argument("--subgrid-size", type=int, default=24)
    pred.add_argument("--format", choices=["npz", "chunked"], default="npz",
                      help="output format; 'chunked' degrids straight into "
                      "a store's mmap (no in-memory copy of the result)")
    _add_executor_args(pred)

    flag = sub.add_parser("flag", help="sigma-clip RFI flagging")
    flag.add_argument("dataset")
    flag.add_argument("output", help="flagged dataset (.npz)")
    flag.add_argument("--threshold", type=float, default=5.0)

    cal = sub.add_parser("calibrate",
                         help="StEFCal gains against a point-source model")
    cal.add_argument("dataset")
    cal.add_argument("output", help="calibrated dataset (.npz)")
    cal.add_argument("--model-l", type=float, required=True,
                     help="calibrator direction cosine l")
    cal.add_argument("--model-m", type=float, required=True)
    cal.add_argument("--model-flux", type=float, required=True)
    cal.add_argument("--solution-interval", type=int, default=0)

    scal = sub.add_parser(
        "selfcal",
        help="self-calibration major cycles: CLEAN model building and "
        "StEFCal gain solving closed-loop, gains applied as A-terms",
    )
    scal.add_argument("dataset", help="dataset (.npz or chunked store)")
    scal.add_argument("output",
                      help="output (.npz: gains, model, residual, psf)")
    scal.add_argument("--grid-size", type=int, default=512)
    scal.add_argument("--subgrid-size", type=int, default=24)
    scal.add_argument("--cycles", type=int, default=20,
                      help="maximum self-cal major cycles")
    scal.add_argument("--solution-interval", type=int, default=0,
                      help="timesteps per gain solution (0 = whole obs)")
    scal.add_argument("--kind",
                      choices=["2d", "wstack", "facets", "wstack_facets"],
                      default="2d",
                      help="FT processor used for the imaging side")
    scal.add_argument("--w-planes", type=int, default=4,
                      help="w layers (wstack kinds)")
    scal.add_argument("--facets", type=int, default=2,
                      help="facets per axis (facet kinds)")
    scal.add_argument("--threshold-factor", type=float, default=3.0,
                      help="CLEAN auto-threshold: factor x residual rms")
    scal.add_argument("--executor",
                      choices=["serial", "threads", "streaming", "processes"],
                      default="serial")
    scal.add_argument("--workers", type=int, default=2,
                      help="executor workers (ignored by serial)")

    perf = sub.add_parser("perfmodel", help="hardware-model predictions")
    perf.add_argument("dataset")
    perf.add_argument("--grid-size", type=int, default=2048)
    perf.add_argument("--subgrid-size", type=int, default=24)

    rep = sub.add_parser("report", help="full Section VI evaluation report")
    rep.add_argument("dataset")
    rep.add_argument("--grid-size", type=int, default=2048)
    rep.add_argument("--subgrid-size", type=int, default=24)
    rep.add_argument("--output", default=None,
                     help="also write the report to this file")

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant gridding service over a synthetic "
        "many-client load and print per-tenant telemetry",
    )
    _add_service_args(serve)

    bench_svc = sub.add_parser(
        "bench-service",
        help="A/B benchmark the service: coalesced vs uncoalesced "
        "throughput and latency on the same duplicate-heavy load",
    )
    _add_service_args(bench_svc)
    bench_svc.add_argument(
        "--output", default=None, metavar="JSON",
        help="write the benchmark payload (requests/s, p95, speedup, "
        "reconciliation) to this JSON file",
    )

    return parser


def _add_service_args(parser) -> None:
    parser.add_argument("dataset", help="dataset (.npz) supplying the layout")
    parser.add_argument("--grid-size", type=int, default=512)
    parser.add_argument("--subgrid-size", type=int, default=24)
    parser.add_argument("--workers", type=int, default=2,
                        help="service worker threads")
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--requests", type=int, default=6,
                        help="requests per tenant")
    parser.add_argument("--distinct", type=int, default=3,
                        help="distinct payloads spread over all requests "
                        "(duplicates coalesce)")
    parser.add_argument("--tenant-quota", type=int, default=2,
                        help="max concurrently running jobs per tenant")
    parser.add_argument("--queue-depth", type=int, default=256,
                        help="global admission-queue bound (sheds beyond it)")
    parser.add_argument("--tenant-backlog", type=int, default=None,
                        help="per-tenant queued-job bound (default: none)")
    parser.add_argument("--no-coalesce", action="store_true",
                        help="disable request coalescing (caches still apply)")
    parser.add_argument("--backend", default=None,
                        help="kernel backend name (default: IDG_BACKEND or "
                        "'vectorized')")


# --------------------------------------------------------------- commands


def _cmd_simulate(args) -> int:
    from repro.data.dataset import VisibilityDataset
    from repro.data.io import save_dataset
    from repro.data.noise import add_thermal_noise
    from repro.sky.sources import random_sky
    from repro.telescope.observation import ska1_low_observation

    obs = ska1_low_observation(
        n_stations=args.stations, n_times=args.times, n_channels=args.channels,
        integration_time_s=args.integration, max_radius_m=args.radius,
        seed=args.seed,
    )
    gridspec = obs.fitting_gridspec(args.grid_size)
    sky = random_sky(args.sources, gridspec.image_size, seed=args.seed)
    dataset = VisibilityDataset.simulate(obs, sky)
    if args.noise_sefd > 0:
        channel_width = float(np.diff(obs.frequencies_hz).mean()) if obs.n_channels > 1 else 200e3
        dataset = add_thermal_noise(
            dataset, args.noise_sefd, channel_width, args.integration,
            seed=args.seed,
        )
    save_dataset(dataset, args.output)
    print(f"wrote {dataset.n_visibilities:,} visibilities "
          f"({dataset.n_baselines} baselines x {dataset.n_times} x "
          f"{dataset.n_channels}) to {args.output}")
    print(f"sky: {sky.n_sources} sources, {sky.total_flux_xx():.2f} Jy total; "
          f"field of view {np.degrees(gridspec.image_size):.2f} deg")
    return 0


def _open_input(path):
    """``(dataset, store-or-None)`` for any dataset argument.

    Auto-detects the format: a v1 ``.npz`` archive loads in memory
    (``store`` is ``None``); a schema-v2 chunked store directory is opened
    read-only as memory maps — the returned dataset's columns then page
    lazily, and ``store`` carries the handle the gridding commands use to
    stream visibilities (``store.source()``) instead of materialising them.
    """
    from repro.data import open_dataset
    from repro.data.store import ChunkedStore

    opened = open_dataset(path)
    if isinstance(opened, ChunkedStore):
        return opened.as_dataset(), opened
    return opened, None


def _cmd_makedata(args) -> int:
    from repro.data.store import DatasetWriter
    from repro.telescope.observation import ska1_low_observation
    from repro.telescope.uvw import enu_to_equatorial, synthesize_uvw

    obs = ska1_low_observation(
        n_stations=args.stations, n_times=args.times, n_channels=args.channels,
        integration_time_s=args.integration, max_radius_m=args.radius,
        seed=args.seed,
    )
    bvec = enu_to_equatorial(
        obs.array.baseline_vectors_enu(), obs.array.latitude_rad
    )
    hour_angles = obs.hour_angles_rad
    rng = np.random.default_rng(args.seed)
    chunk = max(1, args.time_chunk)

    def noise_vis(n: int):
        """One ``(n_baselines, n, C, 2, 2)`` slab of unit complex noise."""
        shape = (obs.n_baselines, n, obs.n_channels, 2, 2)
        real = rng.standard_normal(shape, dtype=np.float32)
        imag = rng.standard_normal(shape, dtype=np.float32)
        return real + 1j * imag

    if args.format == "npz":
        from repro.data.dataset import VisibilityDataset
        from repro.data.io import save_dataset

        dataset = VisibilityDataset(
            uvw_m=obs.uvw_m,
            visibilities=noise_vis(obs.n_times),
            frequencies_hz=obs.frequencies_hz,
            baselines=obs.array.baselines(),
        )
        save_dataset(dataset, args.output)
        n_vis = dataset.n_visibilities
        vis_bytes = dataset.visibilities.nbytes
    else:
        with DatasetWriter(
            args.output, n_baselines=obs.n_baselines, n_times=obs.n_times,
            n_channels=obs.n_channels,
        ) as writer:
            writer.set_frequencies(obs.frequencies_hz)
            writer.set_baselines(obs.array.baselines())
            for t0 in range(0, obs.n_times, chunk):
                n = min(chunk, obs.n_times - t0)
                uvw = synthesize_uvw(
                    bvec, hour_angles[t0:t0 + n], obs.declination_rad
                )
                writer.write_times(t0, uvw, noise_vis(n))
            store = writer.finalize()
        n_vis = store.n_visibilities
        vis_bytes = store.visibility_nbytes
    print(f"wrote {n_vis:,} visibilities "
          f"({obs.n_baselines} baselines x {obs.n_times} x "
          f"{obs.n_channels}; {vis_bytes / 1e6:.1f} MB of visibilities) "
          f"to {args.output} [{args.format}]")
    return 0


def _cmd_convert_dataset(args) -> int:
    from repro.data.io import save_dataset
    from repro.data.store import is_store, write_store

    ds, store = _open_input(args.input)
    if store is not None:
        if is_store(args.output):
            raise SystemExit(f"error: {args.output} is already a store")
        save_dataset(ds, args.output)
        direction = "store -> npz"
    else:
        write_store(ds, args.output, time_chunk=max(1, args.time_chunk))
        direction = "npz -> store"
    print(f"converted {args.input} -> {args.output} ({direction}, "
          f"{ds.n_visibilities:,} visibilities)")
    return 0


def _cmd_info(args) -> int:
    ds, store = _open_input(args.dataset)
    uv_max = float(np.linalg.norm(ds.uvw_m[:, :, :2], axis=2).max())
    kind = "chunked store (schema v2)" if store is not None else ".npz (v1)"
    print(f"dataset: {args.dataset}  [{kind}]")
    print(f"  baselines: {ds.n_baselines}  times: {ds.n_times}  "
          f"channels: {ds.n_channels}")
    print(f"  visibilities: {ds.n_visibilities:,}  "
          f"flagged: {100 * ds.flag_fraction():.2f}%")
    print(f"  frequencies: {ds.frequencies_hz.min() / 1e6:.2f} - "
          f"{ds.frequencies_hz.max() / 1e6:.2f} MHz")
    print(f"  max |uv|: {uv_max:.1f} m   max |w|: "
          f"{np.abs(ds.uvw_m[:, :, 2]).max():.1f} m")
    if store is not None:
        # Chunk-wise |V| so a dataset far larger than memory still
        # summarises with bounded RSS.
        total = 0.0
        for t0 in range(0, ds.n_times, 256):
            total += float(
                np.abs(store.visibilities[:, t0:t0 + 256]).sum()
            )
            store.drop_caches()
        mean_v = total / max(1, ds.n_visibilities * 4)
    else:
        mean_v = float(np.abs(ds.visibilities).mean())
    print(f"  mean |V|: {mean_v:.4f}")
    return 0


def _make_idg(dataset, grid_size, subgrid_size, backend=None, batched=True,
              max_retries=0, retry_backoff=0.05):
    from repro.constants import SPEED_OF_LIGHT
    from repro.core.pipeline import IDG, IDGConfig
    from repro.gridspec import GridSpec

    max_uv_m = float(np.linalg.norm(dataset.uvw_m[:, :, :2], axis=2).max())
    max_uv = max_uv_m * dataset.frequencies_hz.max() / SPEED_OF_LIGHT
    image_size = min(0.9 * grid_size / (2.0 * max_uv), 1.0)
    gridspec = GridSpec(grid_size=grid_size, image_size=image_size)
    try:
        idg = IDG(
            gridspec,
            IDGConfig(subgrid_size=subgrid_size, backend=backend,
                      batched=batched, max_retries=max_retries,
                      retry_backoff_s=retry_backoff),
        )
    except KeyError as exc:  # unknown --backend / IDG_BACKEND name
        raise SystemExit(f"error: {exc.args[0]}") from exc
    return idg, gridspec


def _make_executor(idg, args):
    """The gridding/degridding engine selected by ``--executor``."""
    if args.executor == "threads":
        from repro.parallel.executor import ParallelIDG

        return ParallelIDG(idg, n_workers=args.workers)
    if args.executor == "streaming":
        from repro.runtime import RuntimeConfig, StreamingIDG

        return StreamingIDG(idg, RuntimeConfig(
            n_buffers=args.n_buffers,
            checkpoint_path=getattr(args, "checkpoint", None),
            checkpoint_interval=getattr(args, "checkpoint_interval", 4),
            resume_from=getattr(args, "resume", None),
        ))
    if args.executor == "processes":
        from repro.parallel.process import ProcessConfig, ProcessShardedIDG

        config = ProcessConfig(
            n_procs=args.workers if args.workers else 2,
            checkpoint_path=getattr(args, "checkpoint", None),
            checkpoint_interval=getattr(args, "checkpoint_interval", 4),
            resume_from=getattr(args, "resume", None),
        )
        return ProcessShardedIDG(idg, config)
    if getattr(args, "checkpoint", None) or getattr(args, "resume", None):
        raise SystemExit(
            "error: --checkpoint/--resume require --executor streaming "
            "or processes"
        )
    return idg


def _report_run(engine, args) -> None:
    """After a tolerant/streaming run: print the fault report and telemetry
    digest, export the trace."""
    report = getattr(engine, "last_fault_report", None)
    if report is not None and (report.n_retries or not report.ok):
        print(report.summary())
    telemetry = getattr(engine, "last_telemetry", None)
    if telemetry is None:
        return
    print(telemetry.summary())
    if args.trace:
        telemetry.write_chrome_trace(args.trace)
        print(f"chrome trace written to {args.trace} "
              "(open in chrome://tracing or ui.perfetto.dev)")


def _cmd_image(args) -> int:
    from repro.imaging.image import dirty_image_from_grid, stokes_i_image
    from repro.imaging.weighting import apply_weights, uniform_weights

    ds, store = _open_input(args.dataset)
    idg, gridspec = _make_idg(
        ds, args.grid_size, args.subgrid_size, backend=args.backend,
        batched=args.batched, max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
    )
    plan = idg.make_plan(ds.uvw_m, ds.frequencies_hz, ds.baselines)

    # Chunked stores stream blocks straight from the mmap (flagged samples
    # masked lazily per block); .npz datasets grid the in-memory array.
    vis = store.source() if store is not None else ds.visibilities
    weight_sum = float(plan.statistics.n_visibilities_gridded)
    if args.weighting == "uniform":
        if store is not None:
            raise SystemExit(
                "error: --weighting uniform materialises a reweighted copy "
                "of the visibilities and is not supported on chunked "
                "stores; convert to .npz first (repro convert-dataset) or "
                "use natural weighting"
            )
        weights = uniform_weights(ds.uvw_m, ds.frequencies_hz, gridspec)
        weights[plan.flagged] = 0.0
        vis = apply_weights(vis, weights)
        weight_sum = float(weights.sum())

    engine = _make_executor(idg, args)
    grid = engine.grid(plan, ds.uvw_m, vis)
    _report_run(engine, args)
    report = getattr(engine, "last_fault_report", None)
    if report is not None and not report.ok and args.weighting == "natural":
        # Dead-lettered work groups never reached the grid; keep the image
        # normalisation consistent with what was actually accumulated.
        weight_sum = report.adjusted_weight_sum(weight_sum)
    image = stokes_i_image(
        dirty_image_from_grid(grid, gridspec, weight_sum=weight_sum)
    )
    np.savez_compressed(args.output, image=image, image_size=gridspec.image_size)
    peak = float(np.abs(image).max())
    print(f"wrote {args.grid_size}x{args.grid_size} dirty image to "
          f"{args.output} (peak {peak:.4f}, rms {image.std():.5f})")
    return 0


def _cmd_clean(args) -> int:
    from repro.imaging.cycle import ImagingCycle

    ds, _ = _open_input(args.dataset)
    idg, gridspec = _make_idg(ds, args.grid_size, args.subgrid_size)
    cycle = ImagingCycle(idg, ds.uvw_m, ds.frequencies_hz, ds.baselines)
    result = cycle.run(
        ds.visibilities, n_major=args.major_cycles,
        minor_iterations=args.minor_iterations, gain=args.gain,
    )
    np.savez_compressed(
        args.output,
        model=result.model_image, residual=result.residual_image,
        psf=result.psf, image_size=gridspec.image_size,
    )
    print(f"{result.n_major_cycles} major cycles; CLEANed flux "
          f"{result.total_clean_flux():.3f}; residual rms "
          + " -> ".join(f"{r:.5f}" for r in result.residual_rms_history))
    print(f"wrote model/residual/psf to {args.output}")
    return 0


def _cmd_predict(args) -> int:
    from repro.data.io import save_dataset
    from repro.data.store import DatasetWriter
    from repro.imaging.image import model_image_to_grid

    ds, _ = _open_input(args.dataset)
    with np.load(args.model) as archive:
        model = archive["model"]
    g = model.shape[-1]
    idg, gridspec = _make_idg(
        ds, g, args.subgrid_size, backend=args.backend, batched=args.batched,
        max_retries=args.max_retries, retry_backoff=args.retry_backoff,
    )
    model4 = np.zeros((4, g, g), dtype=np.complex128)
    model4[0] = model
    model4[3] = model
    plan = idg.make_plan(ds.uvw_m, ds.frequencies_hz, ds.baselines)
    grid = model_image_to_grid(model4, gridspec)
    engine = _make_executor(idg, args)
    if args.format == "chunked":
        # Degrid straight into the output store's visibility map: the
        # prediction streams to disk (fresh w+ maps are zero-filled, the
        # contract degrid's ``out=`` requires) instead of materialising.
        with DatasetWriter(
            args.output, n_baselines=ds.n_baselines, n_times=ds.n_times,
            n_channels=ds.n_channels,
        ) as writer:
            writer.set_frequencies(ds.frequencies_hz)
            writer.set_baselines(ds.baselines)
            writer.uvw_m[:] = ds.uvw_m
            writer.mark_written(0, ds.n_times)
            engine.degrid(plan, ds.uvw_m, grid, out=writer.visibilities)
            writer.finalize()
        _report_run(engine, args)
    else:
        predicted = engine.degrid(plan, ds.uvw_m, grid)
        _report_run(engine, args)
        save_dataset(ds.with_visibilities(predicted), args.output)
    print(f"wrote predicted visibilities to {args.output} [{args.format}]")
    return 0


def _cmd_perfmodel(args) -> int:
    from repro.perfmodel import (
        ALL_ARCHITECTURES,
        attainable_ops,
        energy_efficiency_gflops_per_watt,
        gridder_counts,
        imaging_cycle_runtime,
        throughput_mvis,
    )

    ds, _ = _open_input(args.dataset)
    idg, _ = _make_idg(ds, args.grid_size, args.subgrid_size)
    plan = idg.make_plan(ds.uvw_m, ds.frequencies_hz, ds.baselines)
    counts = gridder_counts(plan)
    print(f"plan: {plan.n_subgrids} subgrids, "
          f"{counts.ops / 1e9:.2f} GOps gridding, rho = {counts.rho:.1f}")
    print(f"{'arch':<8} {'gridder':>20} {'MVis/s':>8} {'cycle s':>9} "
          f"{'GFlops/W':>9}")
    for arch in ALL_ARCHITECTURES:
        perf, bound = attainable_ops(arch, counts)
        cycle = imaging_cycle_runtime(arch, plan)
        print(f"{arch.name:<8} "
              f"{perf / 1e12:6.2f} TOps ({bound:<6}) "
              f"{throughput_mvis(arch, counts):8.1f} "
              f"{cycle.total_seconds:9.4f} "
              f"{energy_efficiency_gflops_per_watt(arch, counts):9.1f}")
    return 0


def _cmd_flag(args) -> int:
    from repro.data.io import save_dataset
    from repro.data.rfi import flag_rfi

    ds, _ = _open_input(args.dataset)
    before = ds.flags.sum()
    flagged = flag_rfi(ds, threshold=args.threshold)
    save_dataset(flagged, args.output)
    new = int(flagged.flags.sum() - before)
    print(f"flagged {new} new samples "
          f"({100 * flagged.flag_fraction():.2f}% total); wrote {args.output}")
    return 0


def _cmd_calibrate(args) -> int:
    from repro.calibration import apply_gains, stefcal
    from repro.data.io import save_dataset
    from repro.sky.model import SkyModel
    from repro.sky.simulate import predict_visibilities

    ds, _ = _open_input(args.dataset)
    n_stations = int(ds.baselines.max()) + 1
    sky = SkyModel.single(args.model_l, args.model_m, flux=args.model_flux)
    model_vis = predict_visibilities(
        ds.uvw_m, ds.frequencies_hz, sky, baselines=ds.baselines
    )
    solution = stefcal(
        ds.visibilities, model_vis, ds.baselines, n_stations=n_stations,
        solution_interval=args.solution_interval,
    )
    if not solution.converged.all():
        print("warning: StEFCal did not converge in every interval")
    # apply the per-interval solutions
    calibrated = ds.visibilities.copy()
    interval = args.solution_interval or ds.n_times
    for k in range(solution.n_intervals):
        t0, t1 = k * interval, min((k + 1) * interval, ds.n_times)
        calibrated[:, t0:t1] = apply_gains(
            calibrated[:, t0:t1], solution.gains[k], ds.baselines
        )
    save_dataset(ds.with_visibilities(calibrated), args.output)
    amp = np.abs(solution.gains)
    print(f"solved {solution.n_intervals} interval(s) for {n_stations} stations; "
          f"gain amplitudes {amp.min():.3f} - {amp.max():.3f}; wrote {args.output}")
    return 0


def _cmd_selfcal(args) -> int:
    from repro.calibration.selfcal import SelfCalConfig, self_calibrate
    from repro.imaging.pipeline import ImagingContext

    ds, _ = _open_input(args.dataset)
    idg, gridspec = _make_idg(ds, args.grid_size, args.subgrid_size)
    n_stations = int(ds.baselines.max()) + 1
    context = ImagingContext(
        idg=idg, uvw_m=ds.uvw_m, frequencies_hz=ds.frequencies_hz,
        baselines=ds.baselines, executor=args.executor,
        executor_workers=args.workers,
    )
    config = SelfCalConfig(
        n_cycles=args.cycles,
        solution_interval=args.solution_interval,
        threshold_factor=args.threshold_factor,
    )
    options = {}
    if args.kind in ("wstack", "wstack_facets"):
        options["n_w_planes"] = args.w_planes
    if args.kind in ("facets", "wstack_facets"):
        options["n_facets"] = args.facets
    result = self_calibrate(
        context, ds.visibilities, n_stations,
        config=config, kind=args.kind, **options,
    )
    np.savez_compressed(
        args.output,
        gains=result.gains, model=result.model_image,
        residual=result.residual_image, psf=result.psf,
        image_size=gridspec.image_size,
    )
    for h in result.history:
        print(f"cycle {h.cycle}: residual rms {h.residual_rms:.5f}  "
              f"dynamic range {h.dynamic_range:.1f}  "
              f"CLEANed flux {h.clean_flux:.3f}  "
              f"gain change {h.gain_change:.5f}")
    amp = np.abs(result.gains)
    state = "converged" if result.converged else "cycle budget exhausted"
    print(f"{result.n_cycles} cycle(s), {state}; {n_stations} stations, "
          f"gain amplitudes {amp.min():.3f} - {amp.max():.3f} "
          f"(reference station amplitude pinned to 1)")
    print(f"wrote gains/model/residual/psf to {args.output}")
    return 0


def _cmd_report(args) -> int:
    from repro.perfmodel.report import evaluation_report

    ds, _ = _open_input(args.dataset)
    idg, _ = _make_idg(ds, args.grid_size, args.subgrid_size)
    plan = idg.make_plan(ds.uvw_m, ds.frequencies_hz, ds.baselines)
    report = evaluation_report(plan)
    print(report)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report)
        print(f"report written to {args.output}")
    return 0


def _service_setup(args, coalesce: bool):
    """(ServiceConfig, job specs) for the serve/bench-service commands."""
    from repro.service import LoadSpec, ServiceConfig, build_specs

    ds, _ = _open_input(args.dataset)
    idg, gridspec = _make_idg(
        ds, args.grid_size, args.subgrid_size, backend=args.backend
    )
    config = ServiceConfig(
        n_workers=args.workers,
        max_queue_depth=args.queue_depth,
        tenant_quota=args.tenant_quota,
        tenant_backlog=args.tenant_backlog,
        coalesce=coalesce,
        idg=idg.config,
    )
    load = LoadSpec(
        n_tenants=args.tenants,
        requests_per_tenant=args.requests,
        n_distinct=args.distinct,
    )
    specs = build_specs(
        load, ds.uvw_m, ds.frequencies_hz, ds.baselines, gridspec,
        ds.visibilities,
    )
    return config, specs


def _print_load_report(title: str, report) -> None:
    print(f"{title}: {report.n_requests} requests "
          f"({report.n_shed} shed), statuses {report.statuses}")
    print(f"  throughput {report.requests_per_s:.2f} req/s   "
          f"p95 latency {report.p95_latency_s * 1e3:.1f} ms   "
          f"makespan {report.makespan_s:.3f} s")
    for name, stats in sorted(report.caches.items()):
        print(f"  cache {name}: {stats.hits} hits / {stats.misses} misses "
              f"({stats.current_bytes:,} bytes)")


def _cmd_serve(args) -> int:
    from repro.service import run_load

    config, specs = _service_setup(args, coalesce=not args.no_coalesce)
    report = run_load(config, specs)
    _print_load_report("service run", report)
    tenants = sorted({spec.tenant for spec in specs})
    for tenant in tenants:
        counters = {
            key.rsplit(".", 1)[1]: int(value)
            for key, value in sorted(report.counters.items())
            if key.startswith(f"tenant.{tenant}.")
            and not key.endswith("queue_wait_s")
        }
        print(f"  {tenant}: {counters}")
    bad = [name for name, ok in report.reconciliation().items() if not ok]
    if bad:
        print(f"counter reconciliation FAILED: {bad}")
        return 1
    print("counter reconciliation: exact")
    return 0


def _cmd_bench_service(args) -> int:
    import json

    from repro.service import run_load

    config_on, specs = _service_setup(args, coalesce=not args.no_coalesce)
    config_off, _ = _service_setup(args, coalesce=False)
    coalesced = run_load(config_on, specs)
    uncoalesced = run_load(config_off, specs)
    _print_load_report("coalesced", coalesced)
    _print_load_report("uncoalesced", uncoalesced)
    speedup = (
        coalesced.requests_per_s / uncoalesced.requests_per_s
        if uncoalesced.requests_per_s > 0 else float("inf")
    )
    print(f"coalescing speedup: {speedup:.2f}x")
    if args.output:
        payload = {
            "coalesced": {
                "requests_per_s": coalesced.requests_per_s,
                "p95_latency_s": coalesced.p95_latency_s,
                "reconciliation": coalesced.reconciliation(),
            },
            "uncoalesced": {
                "requests_per_s": uncoalesced.requests_per_s,
                "p95_latency_s": uncoalesced.p95_latency_s,
                "reconciliation": uncoalesced.reconciliation(),
            },
            "speedup": speedup,
        }
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"benchmark written to {args.output}")
    return 0


_COMMANDS: Final = {
    "simulate": _cmd_simulate,
    "makedata": _cmd_makedata,
    "convert-dataset": _cmd_convert_dataset,
    "report": _cmd_report,
    "flag": _cmd_flag,
    "calibrate": _cmd_calibrate,
    "selfcal": _cmd_selfcal,
    "info": _cmd_info,
    "image": _cmd_image,
    "clean": _cmd_clean,
    "predict": _cmd_predict,
    "perfmodel": _cmd_perfmodel,
    "serve": _cmd_serve,
    "bench-service": _cmd_bench_service,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    # Same opt-in pattern as IDGLINT_SHAPE_CHECKS: IDG_SANITIZE=1 runs the
    # command under the concurrency sanitizer (no-op otherwise).
    from repro.analysis import sanitizer

    sanitizer.maybe_install_from_env()
    args = _build_parser().parse_args(argv)
    code = _COMMANDS[args.command](args)
    active = sanitizer.current()
    if active is not None:
        active.raise_if_reports()
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
