"""repro — Image-Domain Gridding (IDG) for radio interferometry.

A full reproduction of *Image-Domain Gridding on Graphics Processors*
(Veenboer, Petschow & Romein, IPDPS 2017): the IDG gridder/degridder with
execution plans, subgrid FFTs and adder/splitter; the telescope, sky and
A-term substrates needed to generate realistic workloads; W-projection /
W-stacking / AW-projection baselines; a CLEAN-based imaging major cycle; and
the hardware performance & energy model that regenerates the paper's
evaluation figures.

Quickstart::

    import numpy as np
    import repro

    obs = repro.ska1_low_observation(n_stations=20, n_times=128, n_channels=8)
    gridspec = obs.fitting_gridspec(grid_size=512)
    sky = repro.random_sky(5, gridspec.image_size, seed=1)
    vis = repro.predict_visibilities(
        obs.uvw_m, obs.frequencies_hz, sky, baselines=obs.array.baselines())

    idg = repro.IDG(gridspec)
    plan = idg.make_plan(obs.uvw_m, obs.frequencies_hz, obs.array.baselines())
    grid = idg.grid(plan, obs.uvw_m, vis)
    image = repro.stokes_i_image(repro.dirty_image_from_grid(
        grid, gridspec, weight_sum=plan.statistics.n_visibilities_gridded))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.gridspec import GridSpec
from repro.core.pipeline import IDG, IDGConfig
from repro.core.wstack import WStackedIDG
from repro.core.plan import Plan, PlanStatistics, WorkItem
from repro.telescope.observation import (
    Observation,
    ska1_low_observation,
    subband_frequencies,
)
from repro.telescope.array import StationArray, baseline_pairs
from repro.sky.model import GaussianSource, PointSource, SkyModel, brightness_from_stokes
from repro.sky.sources import grid_test_sky, random_sky
from repro.sky.simulate import predict_visibilities
from repro.aterms.generators import (
    GaussianBeamATerm,
    IdentityATerm,
    IonosphereATerm,
    LeakageATerm,
    PointingErrorATerm,
)
from repro.aterms.schedule import ATermSchedule
from repro.data.dataset import VisibilityDataset
from repro.data.io import load_dataset, save_dataset
from repro.data.noise import add_thermal_noise
from repro.imaging.image import dirty_image_from_grid, model_image_to_grid, stokes_i_image, stokes_images
from repro.imaging.clean import hogbom_clean
from repro.imaging.cycle import ImagingCycle
from repro.imaging.restore import restore_image
from repro.imaging.spectral import SpectralImager, make_subbands
from repro.data.rfi import flag_rfi
from repro.calibration import stefcal

__version__ = "1.0.0"

__all__ = [
    "GridSpec",
    "IDG",
    "IDGConfig",
    "WStackedIDG",
    "Plan",
    "PlanStatistics",
    "WorkItem",
    "Observation",
    "ska1_low_observation",
    "subband_frequencies",
    "StationArray",
    "baseline_pairs",
    "GaussianSource",
    "PointSource",
    "SkyModel",
    "brightness_from_stokes",
    "grid_test_sky",
    "random_sky",
    "predict_visibilities",
    "GaussianBeamATerm",
    "IdentityATerm",
    "IonosphereATerm",
    "LeakageATerm",
    "PointingErrorATerm",
    "ATermSchedule",
    "VisibilityDataset",
    "load_dataset",
    "save_dataset",
    "add_thermal_noise",
    "dirty_image_from_grid",
    "model_image_to_grid",
    "stokes_i_image",
    "stokes_images",
    "hogbom_clean",
    "ImagingCycle",
    "restore_image",
    "SpectralImager",
    "make_subbands",
    "flag_rfi",
    "stefcal",
    "__version__",
]
