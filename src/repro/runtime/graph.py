"""Executable stage graph: threads + bounded channels + error propagation.

A :class:`StageGraph` is a small dataflow runtime: a source stage emits
sequence-numbered work items, interior stages transform them, and a sink
stage retires them.  Adjacent stages are linked by bounded
:class:`~repro.runtime.queues.Channel` objects of capacity ``n_buffers``, so
a slow downstream stage exerts real backpressure on its producers — the
executable counterpart of the discrete-event schedule in
:mod:`repro.perfmodel.streams`.

Execution model
---------------
* every stage runs ``workers`` dedicated threads (the heavy stage bodies —
  BLAS products, FFTs — release the GIL, so stages genuinely overlap);
* items are ``(seq, payload)`` pairs; stage functions have the uniform
  signature ``fn(seq, payload) -> payload`` (multi-worker stages may deliver
  out of order — order-sensitive sinks reorder on ``seq``);
* a stage's output channel closes when *all* its workers have finished, which
  cascades shutdown down the pipeline;
* any stage exception aborts every channel and registered abortable, all
  threads unwind promptly (no deadlock, no orphaned producer), and
  :meth:`StageGraph.run` re-raises the first *causal* error: exceptions
  raised while the pipeline is already tearing down (a producer tripping
  over a consumer that aborted after the producer's last successful ``put``,
  a worker whose shared state the abort invalidated) are classified as
  secondary — collected on :attr:`StageGraph.secondary_errors` for
  debugging, never allowed to win the unwind race and mask the root cause.

Telemetry is built in: each worker records a span per item, channels record
depth/occupancy, and :meth:`StageGraph.run` folds the channel statistics into
the run's :class:`~repro.runtime.telemetry.Telemetry`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Protocol

from repro.runtime.queues import Channel, ChannelClosed, PipelineAborted
from repro.runtime.telemetry import Telemetry, monotonic


class Abortable(Protocol):
    """Anything with an ``abort()`` — channels, credit gates."""

    def abort(self) -> None: ...


@dataclass
class _Stage:
    """One node of the graph (internal)."""

    name: str
    fn: Callable[[int, Any], Any] | None  # None for the source
    workers: int
    source: Iterator[Any] | None = None
    in_channel: Channel | None = None
    out_channel: Channel | None = None
    threads: list[threading.Thread] = field(default_factory=list)


class StageGraph:
    """A linear pipeline of stages connected by bounded channels.

    Parameters
    ----------
    name:
        Pipeline label (used in thread names).
    n_buffers:
        Capacity of every inter-stage channel.  With the conventional
        credit-gated source this is the paper's device-buffer-set count:
        1 degenerates to a serial schedule, 3 is triple buffering.
    telemetry:
        Optional shared recorder; a fresh one is created if omitted.
    """

    def __init__(
        self, name: str = "pipeline", n_buffers: int = 3, telemetry: Telemetry | None = None
    ) -> None:
        if n_buffers <= 0:
            raise ValueError("n_buffers must be positive")
        self.name = name
        self.n_buffers = n_buffers
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._stages: list[_Stage] = []
        self._channels: list[Channel] = []
        self._abortables: list[Abortable] = []
        self._error: BaseException | None = None
        self._secondary: list[BaseException] = []
        self._error_lock = threading.Lock()
        # Set (under _error_lock) before any channel is aborted, so a thread
        # that fails *because* of the teardown observes it and classifies its
        # own exception as secondary rather than racing for _error.
        self._aborting = threading.Event()
        self._ran = False

    # ------------------------------------------------------------- building

    def add_source(self, name: str, items: Iterable[Any]) -> None:
        """Set the producer stage: emits ``(seq, item)`` for each item."""
        if self._stages:
            raise ValueError("source must be the first stage")
        self._stages.append(_Stage(name=name, fn=None, workers=1, source=iter(items)))

    def add_stage(self, name: str, fn: Callable[[int, Any], Any], workers: int = 1) -> None:
        """Append a transform stage, linked to its predecessor by a bounded
        channel of capacity ``n_buffers``."""
        if not self._stages:
            raise ValueError("add a source before any stage")
        if workers <= 0:
            raise ValueError("workers must be positive")
        prev = self._stages[-1]
        channel = Channel(
            name=f"{prev.name}->{name}",
            capacity=self.n_buffers,
            n_producers=prev.workers,
            telemetry=self.telemetry,
        )
        prev.out_channel = channel
        self._channels.append(channel)
        self._stages.append(_Stage(name=name, fn=fn, workers=workers, in_channel=channel))

    def add_sink(self, name: str, fn: Callable[[int, Any], Any], workers: int = 1) -> None:
        """Append the terminal stage (same as :meth:`add_stage`; results are
        discarded — the sink retires items by side effect)."""
        self.add_stage(name, fn, workers=workers)

    def add_abortable(self, obj: Abortable) -> None:
        """Register an external primitive (e.g. a credit gate) to abort on
        failure alongside the graph's own channels."""
        self._abortables.append(obj)

    # ------------------------------------------------------------ execution

    def _fail(self, exc: BaseException) -> None:
        """Record a *causal* stage failure and tear the pipeline down.

        Only the first causal exception is re-raised by :meth:`run`; anything
        arriving once teardown has begun lands in ``secondary_errors``.
        """
        with self._error_lock:
            if self._error is None and not self._aborting.is_set():
                self._error = exc
            else:
                self._secondary.append(exc)
        self.abort()

    def _note_secondary(self, exc: BaseException) -> None:
        """Record an exception known to be a consequence of the teardown."""
        with self._error_lock:
            self._secondary.append(exc)

    @property
    def secondary_errors(self) -> tuple[BaseException, ...]:
        """Exceptions raised during teardown, suppressed in favour of the
        causal error (kept for debugging)."""
        with self._error_lock:
            return tuple(self._secondary)

    def abort(self) -> None:
        """Abort every channel and registered abortable (idempotent)."""
        with self._error_lock:
            self._aborting.set()
        for channel in self._channels:
            channel.abort()
        for obj in self._abortables:
            obj.abort()

    def _run_source(self, stage: _Stage) -> None:
        assert stage.source is not None
        out = stage.out_channel
        worker = f"{stage.name}-0"
        seq = 0
        try:
            while True:
                t0 = monotonic()
                try:
                    item = next(stage.source)  # includes any credit-gate wait
                except StopIteration:
                    break
                self.telemetry.record_span(stage.name, seq, t0, monotonic(), worker)
                if out is not None:
                    out.put((seq, item))
                seq += 1
        except (PipelineAborted, ChannelClosed):
            pass
        except BaseException as exc:  # noqa: B036 — propagate any failure
            if self._aborting.is_set():
                # The source tripped over state the teardown invalidated
                # (e.g. a consumer aborted right after our last successful
                # put) — the consumer's exception is the cause, not this one.
                self._note_secondary(exc)
            else:
                self._fail(exc)
        finally:
            if out is not None:
                out.producer_done()

    def _run_worker(self, stage: _Stage, worker_id: int) -> None:
        assert stage.fn is not None and stage.in_channel is not None
        worker = f"{stage.name}-{worker_id}"
        out = stage.out_channel
        try:
            while True:
                try:
                    seq, payload = stage.in_channel.get()
                except (ChannelClosed, PipelineAborted):
                    break
                t0 = monotonic()
                try:
                    result = stage.fn(seq, payload)
                except PipelineAborted:
                    break
                except BaseException as exc:  # noqa: B036 — propagate any failure
                    if self._aborting.is_set():
                        self._note_secondary(exc)
                    else:
                        self._fail(exc)
                    break
                self.telemetry.record_span(stage.name, seq, t0, monotonic(), worker)
                if out is not None:
                    try:
                        out.put((seq, result))
                    except PipelineAborted:
                        break
        finally:
            if out is not None:
                out.producer_done()

    def run(self) -> Telemetry:
        """Execute the pipeline to completion; returns the run's telemetry.

        Re-raises the first stage exception after every thread has unwound
        and every queue has been drained or aborted.
        """
        if len(self._stages) < 2:
            raise ValueError("pipeline needs a source and at least one stage")
        # check-and-set under the lock: two threads racing into run() must
        # not both pass the guard (idgsan-reported TOCTOU)
        with self._error_lock:
            if self._ran:
                raise RuntimeError("StageGraph.run may only be called once")
            self._ran = True

        for stage in self._stages:
            n = 1 if stage.source is not None else stage.workers
            for worker_id in range(n):
                target = (
                    self._run_source
                    if stage.source is not None
                    else self._run_worker
                )
                args = (stage,) if stage.source is not None else (stage, worker_id)
                # bounded startup loop: one thread per stage worker, spawned
                # once per run — not a per-item hot path
                thread = threading.Thread(  # idglint: disable=IDG105
                    target=target,
                    args=args,
                    name=f"{self.name}:{stage.name}-{worker_id}",
                    daemon=True,
                )
                stage.threads.append(thread)
                thread.start()
        try:
            for stage in self._stages:
                for thread in stage.threads:
                    thread.join()
        except BaseException:  # noqa: B036 — e.g. KeyboardInterrupt mid-join
            # Tear the pipeline down before unwinding so no stage thread is
            # left blocked on a channel the caller will never drain.
            self.abort()
            for stage in self._stages:
                for thread in stage.threads:
                    thread.join()
            raise
        for channel in self._channels:
            self.telemetry.record_queue(channel.stats())
        with self._error_lock:
            error = self._error
        if error is not None:
            raise error
        if self._aborting.is_set():
            # Aborted (externally, or via an exception swallowed as
            # PipelineAborted) without a recorded cause: surface it rather
            # than returning a silently-partial result.
            raise PipelineAborted(f"pipeline {self.name} was aborted")
        return self.telemetry
