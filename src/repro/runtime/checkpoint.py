"""Checkpoint/resume for streaming gridding runs.

:class:`~repro.runtime.StreamingIDG` periodically snapshots the master grid
plus the set of retired work-group ids while gridding
(``RuntimeConfig.checkpoint_path`` / ``checkpoint_interval``), and a later
run started with ``RuntimeConfig.resume_from`` (CLI ``--resume``) skips the
completed groups.  Resume is *bit-exact*: the adder stage retires groups in
plan order, so a checkpoint taken after groups ``0..k`` holds exactly the
floating-point prefix sum an uninterrupted run would have at that point, and
resuming adds the remaining groups in the same order onto the same bits.

Snapshots are written atomically (temp file + ``os.replace`` via
:mod:`repro.atomicio`), so a crash mid-checkpoint leaves the previous
complete snapshot in place, never a truncated archive.  Each snapshot embeds
a :func:`plan_signature` — a hash of the plan's work items, geometry and the
work-group size — and :func:`load_checkpoint` refuses to resume against a
mismatched plan instead of silently producing a wrong image.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.atomicio import atomic_savez_compressed
from repro.hashing import ContentHasher

__all__ = [
    "CHECKPOINT_VERSION",
    "GridCheckpoint",
    "load_checkpoint",
    "plan_signature",
    "save_checkpoint",
]

#: On-disk schema version of checkpoint archives.
CHECKPOINT_VERSION = 1


def plan_signature(plan: Any, work_group_size: int) -> str:
    """Hex digest identifying a (plan, work-group partition) pair.

    Two runs may share a checkpoint only when their plans cover the same
    work items on the same grid geometry *and* chunk them into the same
    work groups — otherwise completed-group ids would not line up.

    Built on :class:`repro.hashing.ContentHasher` with the exact byte
    stream of the original implementation (items, frequencies, int64
    geometry, float64 scalars — untagged), so checkpoints written by
    earlier builds keep validating; ``tests/test_hashing.py`` pins a
    known digest.
    """
    hasher = ContentHasher()
    hasher.update_array(plan.items)
    hasher.update_array(plan.frequencies_hz)
    hasher.update_ints(
        plan.subgrid_size,
        plan.kernel_support,
        plan.gridspec.grid_size,
        int(work_group_size),
    )
    hasher.update_floats(plan.gridspec.image_size, plan.w_offset)
    return hasher.hexdigest()


@dataclass(frozen=True)
class GridCheckpoint:
    """One snapshot: the partial master grid plus retirement bookkeeping.

    Attributes
    ----------
    signature:
        :func:`plan_signature` of the run that wrote the snapshot.
    grid:
        ``(4, G, G)`` complex master grid holding the contributions of
        exactly the ``completed`` work groups.
    completed:
        Sorted work-group sequence indices already retired by the adder.
    n_retired:
        Total groups retired (completed plus quarantined) when the
        snapshot was taken.
    """

    signature: str
    grid: np.ndarray
    completed: np.ndarray
    n_retired: int

    @property
    def completed_set(self) -> frozenset[int]:
        return frozenset(int(k) for k in self.completed)


def save_checkpoint(
    path: str | pathlib.Path,
    grid: np.ndarray,
    completed: Any,
    signature: str,
    n_retired: int | None = None,
) -> pathlib.Path:
    """Atomically write a :class:`GridCheckpoint` archive; returns the path
    actually written (a ``.npz`` suffix is appended when missing)."""
    completed_arr = np.asarray(sorted(int(k) for k in completed), dtype=np.int64)
    return atomic_savez_compressed(
        path,
        checkpoint_version=np.int64(CHECKPOINT_VERSION),
        signature=np.str_(signature),
        grid=grid,
        completed=completed_arr,
        n_retired=np.int64(
            n_retired if n_retired is not None else completed_arr.size
        ),
    )


def load_checkpoint(
    path: str | pathlib.Path, signature: str | None = None
) -> GridCheckpoint:
    """Read a checkpoint written by :func:`save_checkpoint`.

    When ``signature`` is given, a mismatch raises ``ValueError`` — the
    checkpoint belongs to a different plan or work-group size and resuming
    from it would corrupt the result.
    """
    with np.load(path) as archive:
        version = int(archive["checkpoint_version"])
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version} "
                f"(this build reads {CHECKPOINT_VERSION})"
            )
        ckpt = GridCheckpoint(
            signature=str(archive["signature"]),
            grid=archive["grid"],
            completed=archive["completed"],
            n_retired=int(archive["n_retired"]),
        )
    if signature is not None and ckpt.signature != signature:
        raise ValueError(
            "checkpoint does not match this run: plan items, grid geometry "
            "or work-group size differ (refusing to resume)"
        )
    return ckpt
