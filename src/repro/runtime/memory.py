"""Process-memory measurement for flat-RSS telemetry.

Out-of-core runs claim bounded memory; these helpers make the claim
measurable instead of asserted.  :func:`rss_bytes` reads the *current*
resident set (``/proc/self/statm``), :func:`peak_rss_bytes` the kernel's
high-water mark (``getrusage(RUSAGE_SELF).ru_maxrss`` — note this never
decreases, so benchmarks comparing paths must isolate each in its own
process), and :func:`record_memory_gauges` snapshots both plus the scratch
arena footprint into a :class:`repro.runtime.telemetry.Telemetry` as
gauges, which the Chrome-trace export renders as counter tracks alongside
the stage spans.
"""

from __future__ import annotations

import os

from repro.core.scratch import total_arena_nbytes

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def rss_bytes() -> int:
    """Current resident set size of this process in bytes (0 if unknown)."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        return 0


def peak_rss_bytes() -> int:
    """Peak (high-water) resident set size in bytes (0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux; the value only ever grows over a
    process's lifetime, so a "peak under budget" check is only meaningful
    when the measured workload runs in its own process.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss_kb) * 1024


def record_memory_gauges(telemetry) -> None:
    """Record rss / peak-rss / arena gauges into ``telemetry`` (if any)."""
    if telemetry is None:
        return
    telemetry.record_gauge("rss_bytes", float(rss_bytes()))
    telemetry.record_gauge("peak_rss_bytes", float(peak_rss_bytes()))
    telemetry.record_gauge("arena_bytes", float(total_arena_nbytes()))
