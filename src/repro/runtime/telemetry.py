"""Built-in telemetry for the streaming runtime (spans, gauges, counters).

Every stage worker records a :class:`Span` per work item; channels and the
credit gate record depth/occupancy gauges; the pipeline records throughput
counters (visibilities gridded).  The collected events export to the Chrome
trace-event JSON format, so a measured run opens directly in
``chrome://tracing`` / Perfetto next to the *predicted* schedule from
:mod:`repro.perfmodel.streams` — the Fig 7 comparison, but with real time on
the x axis.

The recorder is thread-safe and append-only; nothing here is on a kernel hot
path (one span per work *group*, not per visibility).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Any


def monotonic() -> float:
    """The runtime's clock: monotonic seconds (``time.perf_counter``)."""
    return time.perf_counter()


@dataclass(frozen=True)
class Span:
    """One stage execution of one work item on one worker thread."""

    stage: str
    item: int
    worker: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class GaugeSample:
    """An instantaneous value of a named gauge (queue depth, in-flight)."""

    name: str
    time: float
    value: float


@dataclass(frozen=True)
class QueueStats:
    """Lifetime statistics of one bounded channel."""

    name: str
    capacity: int
    n_put: int
    n_get: int
    max_depth: int
    blocked_put_seconds: float
    blocked_get_seconds: float
    occupancy: float  # time-averaged depth / capacity over the channel's life


class Telemetry:
    """Thread-safe recorder for one pipeline run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._gauges: list[GaugeSample] = []
        self._counters: dict[str, float] = {}
        self._queues: list[QueueStats] = []
        self._stage_order: list[str] = []
        self.t0 = monotonic()

    # ------------------------------------------------------------ recording

    def record_span(
        self, stage: str, item: int, start: float, end: float, worker: str = ""
    ) -> None:
        with self._lock:
            if stage not in self._stage_order:
                self._stage_order.append(stage)
            self._spans.append(Span(stage, item, worker or stage, start, end))

    def record_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges.append(GaugeSample(name, monotonic(), value))

    def add_counter(self, name: str, delta: float) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + delta

    def record_queue(self, stats: QueueStats) -> None:
        with self._lock:
            self._queues.append(stats)

    # ------------------------------------------------------------- querying

    @property
    def stages(self) -> tuple[str, ...]:
        """Stage names in first-execution order."""
        with self._lock:
            return tuple(self._stage_order)

    @property
    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    @property
    def queues(self) -> tuple[QueueStats, ...]:
        with self._lock:
            return tuple(self._queues)

    def spans(self, stage: str | None = None) -> tuple[Span, ...]:
        with self._lock:
            spans = tuple(self._spans)
        if stage is None:
            return spans
        return tuple(s for s in spans if s.stage == stage)

    def stage_durations(self, stage: str) -> list[float]:
        """Per-item busy seconds of one stage, ordered by item index."""
        return [s.duration for s in sorted(self.spans(stage), key=lambda s: s.item)]

    def stage_busy_seconds(self, stage: str) -> float:
        return sum(s.duration for s in self.spans(stage))

    def makespan(self) -> float:
        """Wall-clock seconds from the first span start to the last span end."""
        spans = self.spans()
        if not spans:
            return 0.0
        return max(s.end for s in spans) - min(s.start for s in spans)

    def throughput(self, counter: str = "visibilities") -> float:
        """Counter units per second over the makespan (0 if unmeasured)."""
        span = self.makespan()
        if span <= 0.0:
            return 0.0
        return self.counters.get(counter, 0.0) / span

    # ------------------------------------------------------------ exporting

    def chrome_trace(self) -> dict[str, Any]:
        """The run as a Chrome trace-event document (``chrome://tracing``).

        Stage spans become complete (``"ph": "X"``) events, one trace *tid*
        per worker thread; gauges become counter (``"ph": "C"``) events.
        Timestamps are microseconds relative to the telemetry epoch.
        """
        with self._lock:
            spans = list(self._spans)
            gauges = list(self._gauges)
            counters = dict(self._counters)
            queues = list(self._queues)
        workers = sorted({s.worker for s in spans})
        tids = {worker: tid for tid, worker in enumerate(workers)}
        events: list[dict[str, Any]] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": worker},
            }
            for worker, tid in tids.items()
        ]
        for s in spans:
            events.append(
                {
                    "name": s.stage,
                    "cat": "stage",
                    "ph": "X",
                    "pid": 1,
                    "tid": tids[s.worker],
                    "ts": (s.start - self.t0) * 1e6,
                    "dur": s.duration * 1e6,
                    "args": {"item": s.item},
                }
            )
        for g in gauges:
            events.append(
                {
                    "name": g.name,
                    "cat": "gauge",
                    "ph": "C",
                    "pid": 1,
                    "tid": 0,
                    "ts": (g.time - self.t0) * 1e6,
                    "args": {"value": g.value},
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "counters": counters,
                "queues": [
                    {
                        "name": q.name,
                        "capacity": q.capacity,
                        "occupancy": q.occupancy,
                        "max_depth": q.max_depth,
                        "blocked_put_seconds": q.blocked_put_seconds,
                        "blocked_get_seconds": q.blocked_get_seconds,
                    }
                    for q in queues
                ],
            },
        }

    def write_chrome_trace(self, path: str) -> None:
        """Write :meth:`chrome_trace` as JSON (open in ``chrome://tracing``)."""
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)

    def summary(self) -> str:
        """Human-readable per-stage/per-queue digest of the run."""
        lines = [f"makespan {self.makespan() * 1e3:9.2f} ms"]
        rate = self.throughput()
        if rate > 0.0:
            lines[0] += f"   {rate / 1e6:.3f} MVis/s"
        makespan = self.makespan() or 1.0
        for stage in self.stages:
            spans = self.spans(stage)
            busy = self.stage_busy_seconds(stage)
            lines.append(
                f"  {stage:<14} {len(spans):4d} items  busy {busy * 1e3:9.2f} ms"
                f"  ({100.0 * busy / makespan:5.1f}% of makespan)"
            )
        for q in self.queues:
            lines.append(
                f"  queue {q.name:<20} cap {q.capacity}  occupancy "
                f"{100.0 * q.occupancy:5.1f}%  max depth {q.max_depth}  "
                f"blocked put/get {q.blocked_put_seconds * 1e3:.1f}/"
                f"{q.blocked_get_seconds * 1e3:.1f} ms"
            )
        return "\n".join(lines)
